file(REMOVE_RECURSE
  "CMakeFiles/fig14_production.dir/fig14_production.cpp.o"
  "CMakeFiles/fig14_production.dir/fig14_production.cpp.o.d"
  "fig14_production"
  "fig14_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
