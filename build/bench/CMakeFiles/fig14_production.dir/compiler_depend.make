# Empty compiler generated dependencies file for fig14_production.
# This may be replaced when dependencies are built.
