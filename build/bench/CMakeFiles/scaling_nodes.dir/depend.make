# Empty dependencies file for scaling_nodes.
# This may be replaced when dependencies are built.
