# Empty compiler generated dependencies file for fig08_threshold.
# This may be replaced when dependencies are built.
