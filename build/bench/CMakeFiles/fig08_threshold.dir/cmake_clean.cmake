file(REMOVE_RECURSE
  "CMakeFiles/fig08_threshold.dir/fig08_threshold.cpp.o"
  "CMakeFiles/fig08_threshold.dir/fig08_threshold.cpp.o.d"
  "fig08_threshold"
  "fig08_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
