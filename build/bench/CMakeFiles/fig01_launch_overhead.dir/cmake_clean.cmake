file(REMOVE_RECURSE
  "CMakeFiles/fig01_launch_overhead.dir/fig01_launch_overhead.cpp.o"
  "CMakeFiles/fig01_launch_overhead.dir/fig01_launch_overhead.cpp.o.d"
  "fig01_launch_overhead"
  "fig01_launch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_launch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
