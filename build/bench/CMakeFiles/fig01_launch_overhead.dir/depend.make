# Empty dependencies file for fig01_launch_overhead.
# This may be replaced when dependencies are built.
