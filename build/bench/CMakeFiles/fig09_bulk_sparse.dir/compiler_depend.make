# Empty compiler generated dependencies file for fig09_bulk_sparse.
# This may be replaced when dependencies are built.
