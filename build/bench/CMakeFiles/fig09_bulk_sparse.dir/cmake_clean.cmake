file(REMOVE_RECURSE
  "CMakeFiles/fig09_bulk_sparse.dir/fig09_bulk_sparse.cpp.o"
  "CMakeFiles/fig09_bulk_sparse.dir/fig09_bulk_sparse.cpp.o.d"
  "fig09_bulk_sparse"
  "fig09_bulk_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bulk_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
