# Empty dependencies file for table1_qualitative.
# This may be replaced when dependencies are built.
