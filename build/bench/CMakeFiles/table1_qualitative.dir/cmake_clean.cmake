file(REMOVE_RECURSE
  "CMakeFiles/table1_qualitative.dir/table1_qualitative.cpp.o"
  "CMakeFiles/table1_qualitative.dir/table1_qualitative.cpp.o.d"
  "table1_qualitative"
  "table1_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
