# Empty dependencies file for micro_ddt_pack.
# This may be replaced when dependencies are built.
