file(REMOVE_RECURSE
  "CMakeFiles/micro_ddt_pack.dir/micro_ddt_pack.cpp.o"
  "CMakeFiles/micro_ddt_pack.dir/micro_ddt_pack.cpp.o.d"
  "micro_ddt_pack"
  "micro_ddt_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ddt_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
