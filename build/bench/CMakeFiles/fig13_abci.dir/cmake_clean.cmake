file(REMOVE_RECURSE
  "CMakeFiles/fig13_abci.dir/fig13_abci.cpp.o"
  "CMakeFiles/fig13_abci.dir/fig13_abci.cpp.o.d"
  "fig13_abci"
  "fig13_abci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_abci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
