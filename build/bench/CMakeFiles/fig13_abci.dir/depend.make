# Empty dependencies file for fig13_abci.
# This may be replaced when dependencies are built.
