# Empty dependencies file for fig12_lassen.
# This may be replaced when dependencies are built.
