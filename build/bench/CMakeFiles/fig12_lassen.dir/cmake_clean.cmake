file(REMOVE_RECURSE
  "CMakeFiles/fig12_lassen.dir/fig12_lassen.cpp.o"
  "CMakeFiles/fig12_lassen.dir/fig12_lassen.cpp.o.d"
  "fig12_lassen"
  "fig12_lassen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_lassen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
