# Empty dependencies file for fig10_bulk_dense.
# This may be replaced when dependencies are built.
