file(REMOVE_RECURSE
  "CMakeFiles/fig10_bulk_dense.dir/fig10_bulk_dense.cpp.o"
  "CMakeFiles/fig10_bulk_dense.dir/fig10_bulk_dense.cpp.o.d"
  "fig10_bulk_dense"
  "fig10_bulk_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bulk_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
