# Empty compiler generated dependencies file for dkf.
# This may be replaced when dependencies are built.
