file(REMOVE_RECURSE
  "libdkf.a"
)
