
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_util/experiment.cpp" "src/CMakeFiles/dkf.dir/bench_util/experiment.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/bench_util/experiment.cpp.o.d"
  "/root/repo/src/bench_util/sweeps.cpp" "src/CMakeFiles/dkf.dir/bench_util/sweeps.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/bench_util/sweeps.cpp.o.d"
  "/root/repo/src/bench_util/table.cpp" "src/CMakeFiles/dkf.dir/bench_util/table.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/bench_util/table.cpp.o.d"
  "/root/repo/src/common/check.cpp" "src/CMakeFiles/dkf.dir/common/check.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/common/check.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/dkf.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/dkf.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/dkf.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/common/units.cpp.o.d"
  "/root/repo/src/core/request_list.cpp" "src/CMakeFiles/dkf.dir/core/request_list.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/core/request_list.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/dkf.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/threshold_model.cpp" "src/CMakeFiles/dkf.dir/core/threshold_model.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/core/threshold_model.cpp.o.d"
  "/root/repo/src/ddt/datatype.cpp" "src/CMakeFiles/dkf.dir/ddt/datatype.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/ddt/datatype.cpp.o.d"
  "/root/repo/src/ddt/layout.cpp" "src/CMakeFiles/dkf.dir/ddt/layout.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/ddt/layout.cpp.o.d"
  "/root/repo/src/ddt/pack.cpp" "src/CMakeFiles/dkf.dir/ddt/pack.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/ddt/pack.cpp.o.d"
  "/root/repo/src/gpu/gpu.cpp" "src/CMakeFiles/dkf.dir/gpu/gpu.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/gpu/gpu.cpp.o.d"
  "/root/repo/src/gpu/memory.cpp" "src/CMakeFiles/dkf.dir/gpu/memory.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/gpu/memory.cpp.o.d"
  "/root/repo/src/hw/cluster.cpp" "src/CMakeFiles/dkf.dir/hw/cluster.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/hw/cluster.cpp.o.d"
  "/root/repo/src/hw/machines.cpp" "src/CMakeFiles/dkf.dir/hw/machines.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/hw/machines.cpp.o.d"
  "/root/repo/src/hw/spec.cpp" "src/CMakeFiles/dkf.dir/hw/spec.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/hw/spec.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/CMakeFiles/dkf.dir/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/mpi/collectives.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/CMakeFiles/dkf.dir/mpi/runtime.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/mpi/runtime.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/dkf.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/dkf.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/net/link.cpp.o.d"
  "/root/repo/src/schemes/adaptive_gdr.cpp" "src/CMakeFiles/dkf.dir/schemes/adaptive_gdr.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/schemes/adaptive_gdr.cpp.o.d"
  "/root/repo/src/schemes/cpu_gpu_hybrid.cpp" "src/CMakeFiles/dkf.dir/schemes/cpu_gpu_hybrid.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/schemes/cpu_gpu_hybrid.cpp.o.d"
  "/root/repo/src/schemes/ddt_engine.cpp" "src/CMakeFiles/dkf.dir/schemes/ddt_engine.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/schemes/ddt_engine.cpp.o.d"
  "/root/repo/src/schemes/factory.cpp" "src/CMakeFiles/dkf.dir/schemes/factory.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/schemes/factory.cpp.o.d"
  "/root/repo/src/schemes/fusion_engine.cpp" "src/CMakeFiles/dkf.dir/schemes/fusion_engine.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/schemes/fusion_engine.cpp.o.d"
  "/root/repo/src/schemes/gpu_async.cpp" "src/CMakeFiles/dkf.dir/schemes/gpu_async.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/schemes/gpu_async.cpp.o.d"
  "/root/repo/src/schemes/gpu_sync.cpp" "src/CMakeFiles/dkf.dir/schemes/gpu_sync.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/schemes/gpu_sync.cpp.o.d"
  "/root/repo/src/schemes/hybrid_fusion.cpp" "src/CMakeFiles/dkf.dir/schemes/hybrid_fusion.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/schemes/hybrid_fusion.cpp.o.d"
  "/root/repo/src/schemes/naive_copy.cpp" "src/CMakeFiles/dkf.dir/schemes/naive_copy.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/schemes/naive_copy.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/dkf.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/sync.cpp" "src/CMakeFiles/dkf.dir/sim/sync.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/sim/sync.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/dkf.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/sim/trace.cpp.o.d"
  "/root/repo/src/workloads/halo_exchanger.cpp" "src/CMakeFiles/dkf.dir/workloads/halo_exchanger.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/workloads/halo_exchanger.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/CMakeFiles/dkf.dir/workloads/workloads.cpp.o" "gcc" "src/CMakeFiles/dkf.dir/workloads/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
