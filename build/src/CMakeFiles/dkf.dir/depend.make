# Empty dependencies file for dkf.
# This may be replaced when dependencies are built.
