
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bench_util.cpp" "tests/CMakeFiles/dkf_tests.dir/test_bench_util.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_bench_util.cpp.o.d"
  "/root/repo/tests/test_collectives.cpp" "tests/CMakeFiles/dkf_tests.dir/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/dkf_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core_fusion.cpp" "tests/CMakeFiles/dkf_tests.dir/test_core_fusion.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_core_fusion.cpp.o.d"
  "/root/repo/tests/test_cpu_timeline.cpp" "tests/CMakeFiles/dkf_tests.dir/test_cpu_timeline.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_cpu_timeline.cpp.o.d"
  "/root/repo/tests/test_ddt_datatype.cpp" "tests/CMakeFiles/dkf_tests.dir/test_ddt_datatype.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_ddt_datatype.cpp.o.d"
  "/root/repo/tests/test_ddt_pack.cpp" "tests/CMakeFiles/dkf_tests.dir/test_ddt_pack.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_ddt_pack.cpp.o.d"
  "/root/repo/tests/test_ddt_properties.cpp" "tests/CMakeFiles/dkf_tests.dir/test_ddt_properties.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_ddt_properties.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/dkf_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_gpu_device.cpp" "tests/CMakeFiles/dkf_tests.dir/test_gpu_device.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_gpu_device.cpp.o.d"
  "/root/repo/tests/test_gpu_memory.cpp" "tests/CMakeFiles/dkf_tests.dir/test_gpu_memory.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_gpu_memory.cpp.o.d"
  "/root/repo/tests/test_halo_exchanger.cpp" "tests/CMakeFiles/dkf_tests.dir/test_halo_exchanger.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_halo_exchanger.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/dkf_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_mpi.cpp" "tests/CMakeFiles/dkf_tests.dir/test_mpi.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_mpi.cpp.o.d"
  "/root/repo/tests/test_mpi_fuzz.cpp" "tests/CMakeFiles/dkf_tests.dir/test_mpi_fuzz.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_mpi_fuzz.cpp.o.d"
  "/root/repo/tests/test_mpi_protocols.cpp" "tests/CMakeFiles/dkf_tests.dir/test_mpi_protocols.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_mpi_protocols.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/dkf_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_persistent.cpp" "tests/CMakeFiles/dkf_tests.dir/test_persistent.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_persistent.cpp.o.d"
  "/root/repo/tests/test_schemes.cpp" "tests/CMakeFiles/dkf_tests.dir/test_schemes.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_schemes.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/dkf_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_threshold_model.cpp" "tests/CMakeFiles/dkf_tests.dir/test_threshold_model.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_threshold_model.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/dkf_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/dkf_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/dkf_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dkf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
