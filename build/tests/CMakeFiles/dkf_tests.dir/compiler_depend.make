# Empty compiler generated dependencies file for dkf_tests.
# This may be replaced when dependencies are built.
