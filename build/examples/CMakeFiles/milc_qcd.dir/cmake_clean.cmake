file(REMOVE_RECURSE
  "CMakeFiles/milc_qcd.dir/milc_qcd.cpp.o"
  "CMakeFiles/milc_qcd.dir/milc_qcd.cpp.o.d"
  "milc_qcd"
  "milc_qcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milc_qcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
