# Empty dependencies file for milc_qcd.
# This may be replaced when dependencies are built.
