file(REMOVE_RECURSE
  "CMakeFiles/ddtbench_suite.dir/ddtbench_suite.cpp.o"
  "CMakeFiles/ddtbench_suite.dir/ddtbench_suite.cpp.o.d"
  "ddtbench_suite"
  "ddtbench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddtbench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
