# Empty compiler generated dependencies file for ddtbench_suite.
# This may be replaced when dependencies are built.
