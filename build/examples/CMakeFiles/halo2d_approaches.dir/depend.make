# Empty dependencies file for halo2d_approaches.
# This may be replaced when dependencies are built.
