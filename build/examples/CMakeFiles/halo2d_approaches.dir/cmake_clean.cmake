file(REMOVE_RECURSE
  "CMakeFiles/halo2d_approaches.dir/halo2d_approaches.cpp.o"
  "CMakeFiles/halo2d_approaches.dir/halo2d_approaches.cpp.o.d"
  "halo2d_approaches"
  "halo2d_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo2d_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
