# Empty compiler generated dependencies file for halo3d.
# This may be replaced when dependencies are built.
