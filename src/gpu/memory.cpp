#include "gpu/memory.hpp"

#include <algorithm>

#include "fault/fault_plan.hpp"

namespace dkf::gpu {

namespace {
std::size_t roundUp(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}
}  // namespace

DeviceMemory::DeviceMemory(std::size_t capacity, int device_id)
    : arena_(capacity), device_id_(device_id) {
  free_list_.push_back(FreeBlock{0, capacity});
}

MemSpan DeviceMemory::allocate(std::size_t bytes, std::size_t align) {
  const MemSpan span = findFit(bytes, align);
  DKF_CHECK_MSG(span.size() == bytes,
                "device " << device_id_ << " out of memory allocating "
                          << bytes << " bytes (in use: " << in_use_ << "/"
                          << arena_.size() << ")");
  return span;
}

MemSpan DeviceMemory::tryAllocate(std::size_t bytes, std::size_t align) {
  if (faults_ && faults_->failAlloc()) return {};
  return findFit(bytes, align);
}

MemSpan DeviceMemory::findFit(std::size_t bytes, std::size_t align) {
  DKF_CHECK(bytes > 0);
  DKF_CHECK_MSG((align & (align - 1)) == 0, "alignment must be a power of two");
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    FreeBlock& blk = free_list_[i];
    const std::size_t aligned = roundUp(blk.offset, align);
    if (aligned + bytes > blk.offset + blk.len) continue;

    const std::size_t front_pad = aligned - blk.offset;
    const std::size_t back_len = blk.offset + blk.len - (aligned + bytes);
    if (front_pad > 0 && back_len > 0) {
      const std::size_t back_off = aligned + bytes;
      blk.len = front_pad;
      free_list_.insert(free_list_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                        FreeBlock{back_off, back_len});
    } else if (front_pad > 0) {
      blk.len = front_pad;
    } else if (back_len > 0) {
      blk.offset = aligned + bytes;
      blk.len = back_len;
    } else {
      free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    live_.emplace(aligned, bytes);
    in_use_ += bytes;
    return MemSpan{std::span(arena_).subspan(aligned, bytes), MemSpace::Device,
                   device_id_};
  }
  return {};
}

std::size_t DeviceMemory::offsetOf(const MemSpan& span) const {
  DKF_CHECK_MSG(span.space == MemSpace::Device && span.device == device_id_,
                "span does not belong to device " << device_id_);
  const std::byte* base = arena_.data();
  DKF_CHECK(span.bytes.data() >= base &&
            span.bytes.data() + span.bytes.size() <= base + arena_.size());
  return static_cast<std::size_t>(span.bytes.data() - base);
}

void DeviceMemory::deallocate(const MemSpan& span) {
  const std::size_t offset = offsetOf(span);
  auto it = live_.find(offset);
  DKF_CHECK_MSG(it != live_.end(), "double free or unknown allocation at offset "
                                       << offset);
  const std::size_t len = it->second;
  DKF_CHECK_MSG(span.bytes.size() == len,
                "deallocate size mismatch: " << span.bytes.size() << " vs "
                                             << len);
  live_.erase(it);
  in_use_ -= len;

  // Insert keeping offset order, then coalesce with neighbors.
  auto pos = std::lower_bound(
      free_list_.begin(), free_list_.end(), offset,
      [](const FreeBlock& b, std::size_t off) { return b.offset < off; });
  pos = free_list_.insert(pos, FreeBlock{offset, len});
  // Coalesce with next.
  if (auto next = pos + 1;
      next != free_list_.end() && pos->offset + pos->len == next->offset) {
    pos->len += next->len;
    free_list_.erase(next);
  }
  // Coalesce with previous.
  if (pos != free_list_.begin()) {
    auto prev = pos - 1;
    if (prev->offset + prev->len == pos->offset) {
      prev->len += pos->len;
      free_list_.erase(pos);
    }
  }
}

}  // namespace dkf::gpu
