// Device memory emulation.
//
// Each simulated GPU owns a host-side byte arena standing in for its HBM.
// Every pack/unpack/copy in the simulator moves real bytes inside these
// arenas, so data correctness is testable end-to-end. `MemSpan` tags a span
// with the memory space it lives in; the cost models dispatch on the tag
// (host<->device copies cross the CPU-GPU link, device-local ones use HBM).
//
// The allocator is a first-fit free list with coalescing — enough to let
// long benchmark runs allocate and release staging buffers without growing
// the arena, and simple enough to verify exhaustively in tests.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace dkf::fault {
class FaultPlan;
}

namespace dkf::gpu {

enum class MemSpace { Host, Device };

/// A typed view into simulation memory. `device` is the owning GPU's global
/// id for Device spans, -1 for Host.
struct MemSpan {
  std::span<std::byte> bytes{};
  MemSpace space{MemSpace::Host};
  int device{-1};

  std::size_t size() const { return bytes.size(); }
  bool onDevice() const { return space == MemSpace::Device; }

  MemSpan subspan(std::size_t offset, std::size_t len) const {
    DKF_CHECK(offset + len <= bytes.size());
    return MemSpan{bytes.subspan(offset, len), space, device};
  }

  /// Wrap host memory.
  static MemSpan host(std::span<std::byte> s) {
    return MemSpan{s, MemSpace::Host, -1};
  }
};

/// First-fit free-list allocator over one GPU's arena.
class DeviceMemory {
 public:
  DeviceMemory(std::size_t capacity, int device_id);

  /// Allocate `bytes` aligned to `align` (power of two). Throws
  /// CheckFailure on exhaustion — simulated out-of-memory is a bug in the
  /// experiment setup, not a recoverable condition.
  MemSpan allocate(std::size_t bytes, std::size_t align = 256);

  /// Fallible allocation for callers with a degradation path (staging
  /// buffers that can live in host memory instead): returns an empty span
  /// on genuine exhaustion or when an attached FaultPlan injects an
  /// allocation failure. allocate() never injects — setup allocations
  /// stay exempt from fault plans.
  MemSpan tryAllocate(std::size_t bytes, std::size_t align = 256);

  /// Attach a fault plan consulted by tryAllocate(). nullptr to detach.
  void setFaultPlan(fault::FaultPlan* plan) { faults_ = plan; }

  /// Return a span previously obtained from allocate(). Frees by start
  /// address; partial frees are not supported.
  void deallocate(const MemSpan& span);

  std::size_t capacity() const { return arena_.size(); }
  std::size_t bytesInUse() const { return in_use_; }
  std::size_t bytesFree() const { return arena_.size() - in_use_; }
  std::size_t liveAllocations() const { return live_.size(); }
  int deviceId() const { return device_id_; }

  /// The whole arena (for assertions and fabric copies).
  std::span<std::byte> arena() { return arena_; }

 private:
  struct FreeBlock {
    std::size_t offset;
    std::size_t len;
  };

  std::size_t offsetOf(const MemSpan& span) const;
  /// First-fit search; empty span when nothing fits.
  MemSpan findFit(std::size_t bytes, std::size_t align);

  fault::FaultPlan* faults_{nullptr};
  std::vector<std::byte> arena_;
  std::vector<FreeBlock> free_list_;           // sorted by offset
  std::map<std::size_t, std::size_t> live_;    // offset -> padded length
  std::size_t in_use_{0};
  int device_id_;
};

}  // namespace dkf::gpu
