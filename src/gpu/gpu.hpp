// The GPU device model.
//
// Timing model (DESIGN.md §4.2):
//  - Streams are in-order queues; each tracks the virtual time its last
//    operation completes.
//  - A kernel is a list of `Op`s (pack / unpack / strided copy). Each op is
//    decomposed into thread blocks (~64 KiB of payload per block, at least
//    one). Blocks execute in waves over sm_count*blocks_per_sm slots; a
//    wave's duration is the slowest block in it, where a block streams its
//    bytes at min(per-block peak, HBM/active-blocks) scaled by the layout's
//    access efficiency (short strided runs waste bandwidth).
//  - Each op *completes at the end of the wave running its last block* and
//    fires its completion callback right then — this is the cooperative-
//    group property the fusion framework relies on (paper Fig. 6): requests
//    in a fused kernel finish and are signalled individually, without any
//    host-side synchronization at the kernel boundary.
//  - The actual byte movement of an op happens at its completion event, so
//    all data dependencies in the simulator respect the modeled timing.
//
// CPU-side costs (kernel launch ~10 us, driver calls ~1 us) are charged by
// the *callers* (the DDT-processing schemes), because attributing them is
// exactly what the paper's Fig. 11 breakdown measures.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "ddt/layout.hpp"
#include "ddt/pack.hpp"
#include "gpu/memory.hpp"
#include "hw/spec.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"

namespace dkf::gpu {

class Gpu {
 public:
  using StreamId = std::size_t;
  using EventId = std::size_t;

  /// One work item inside a (possibly fused) kernel. Move-only: the
  /// completion hook is an inline callback handed to exactly one
  /// completion event.
  struct Op {
    enum class Kind { Pack, Unpack, StridedCopy };

    Kind kind{Kind::Pack};
    ddt::LayoutPtr layout;       ///< origin layout (pack: src side; unpack: dst side)
    ddt::LayoutPtr dst_layout;   ///< StridedCopy only: destination layout
    std::span<const std::byte> src{};
    std::span<std::byte> dst{};
    sim::SmallCallback on_complete{};  ///< fired at op completion time

    std::size_t bytes() const { return layout ? layout->size() : 0; }

    /// Explicit copy for launch-retry loops. The completion hook is
    /// move-only and not duplicated — callers that retry must re-attach
    /// it (the single-op schemes pass none).
    Op clone() const {
      Op c;
      c.kind = kind;
      c.layout = layout;
      c.dst_layout = dst_layout;
      c.src = src;
      c.dst = dst;
      return c;
    }
  };

  struct KernelHandle {
    sim::Gate* done{nullptr};   ///< opens when the whole kernel finishes
    TimeNs start{0};            ///< GPU-side start (after queueing)
    TimeNs end{0};              ///< GPU-side completion
    std::size_t blocks{0};
    std::size_t waves{0};
    /// Injected launch failure (cudaLaunchKernel error): nothing was
    /// queued, no op ran and no callback will fire — the caller must
    /// retry or degrade. Only ever true with a FaultPlan attached.
    bool failed{false};
  };

  struct CopyHandle {
    sim::Gate* done{nullptr};
    TimeNs end{0};
  };

  Gpu(sim::Engine& eng, const hw::NodeSpec& node, int global_id);

  const hw::GpuSpec& spec() const { return node_->gpu; }
  const hw::NodeSpec& nodeSpec() const { return *node_; }
  int id() const { return id_; }
  DeviceMemory& memory() { return memory_; }

  StreamId createStream();
  std::size_t streamCount() const { return streams_.size(); }
  TimeNs streamReadyTime(StreamId s) const;
  bool streamIdle(StreamId s) const;

  /// Kernel-level completion fan-in: one hook invoked with the op index as
  /// each op completes, instead of one captured closure per op. Bulk
  /// submitters (core::FusionScheduler) pay one capture per kernel rather
  /// than one per op; per-op `Op::on_complete` hooks still fire.
  using OpCompleteFn =
      sim::InlineFunction<void(std::size_t), sim::kSmallCallbackBytes>;

  /// Queue a kernel of `ops` on stream `s`. GPU-side only; callers charge
  /// spec().kernel_launch_overhead to their own CPU timeline. Ops whose
  /// completion lands in the same wave share one engine event (their
  /// completion order — op index order — is unchanged; MODEL.md §13).
  KernelHandle launchKernel(StreamId s, std::vector<Op> ops,
                            OpCompleteFn on_op_complete = {});

  /// Single-op convenience (ops are move-only, so brace-list construction
  /// of the vector is unavailable).
  KernelHandle launchKernel(StreamId s, Op op) {
    std::vector<Op> ops;
    ops.push_back(std::move(op));
    return launchKernel(s, std::move(ops));
  }

  /// Queue an async contiguous copy on stream `s`; routed over the right
  /// path (HBM, CPU-GPU link, or GPU-GPU peer link) with per-path
  /// serialization. Callers charge spec().driver_call_overhead.
  CopyHandle memcpyAsync(StreamId s, MemSpan dst, MemSpan src);

  EventId createEvent();
  /// Capture the current position of stream `s` into the event.
  void eventRecord(EventId e, StreamId s);
  /// Has the captured stream position been reached? (cudaEventQuery)
  bool eventQuery(EventId e) const;
  /// Coroutine: wait for the event (cudaEventSynchronize).
  sim::Task<void> eventSynchronize(EventId e);
  /// Coroutine: wait for everything queued on the stream so far.
  sim::Task<void> streamSynchronize(StreamId s);

  /// Attach a tracer: kernels and copies emit spans on per-stream tracks.
  void setTracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Attach a fault plan: launchKernel may fail (KernelHandle::failed) and
  /// the arena's tryAllocate may refuse. nullptr to detach.
  void setFaultPlan(fault::FaultPlan* plan) {
    faults_ = plan;
    memory_.setFaultPlan(plan);
  }

  /// Aggregate counters for ablation benches.
  std::size_t kernelsLaunched() const { return kernels_launched_; }
  std::size_t copiesIssued() const { return copies_issued_; }
  DurationNs busyTime() const { return busy_time_; }

 private:
  struct Stream {
    TimeNs ready{0};
  };
  struct Event {
    TimeNs position{0};
    bool recorded{false};
  };

  /// Per-block effective bandwidth in bytes/ns given layout efficiency and
  /// the number of concurrently active blocks.
  double blockBandwidth(double efficiency, std::size_t active) const;

  sim::Engine* eng_;
  const hw::NodeSpec* node_;
  sim::Tracer* tracer_{nullptr};
  fault::FaultPlan* faults_{nullptr};
  int id_;
  DeviceMemory memory_;
  std::vector<Stream> streams_;
  std::vector<Event> events_;
  std::vector<std::unique_ptr<sim::Gate>> gates_;  // stable addresses

  // Copy-path serializers (busy-until per path).
  TimeNs h2d_busy_{0};
  TimeNs d2h_busy_{0};
  TimeNs local_busy_{0};
  TimeNs peer_busy_{0};

  std::size_t kernels_launched_{0};
  std::size_t copies_issued_{0};
  DurationNs busy_time_{0};
};

}  // namespace dkf::gpu
