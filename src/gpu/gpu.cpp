#include "gpu/gpu.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "fault/fault_plan.hpp"

namespace dkf::gpu {

namespace {
/// Payload bytes one thread block handles before the kernel adds another.
constexpr std::size_t kBlockPayloadTarget = 64 * 1024;
}  // namespace

Gpu::Gpu(sim::Engine& eng, const hw::NodeSpec& node, int global_id)
    : eng_(&eng),
      node_(&node),
      id_(global_id),
      memory_(node.gpu.arena_bytes, global_id) {
  createStream();  // stream 0: the default stream
}

Gpu::StreamId Gpu::createStream() {
  streams_.push_back(Stream{});
  return streams_.size() - 1;
}

TimeNs Gpu::streamReadyTime(StreamId s) const {
  DKF_CHECK(s < streams_.size());
  return streams_[s].ready;
}

bool Gpu::streamIdle(StreamId s) const {
  return streamReadyTime(s) <= eng_->now();
}

double Gpu::blockBandwidth(double efficiency, std::size_t active) const {
  const double hbm = spec().hbm_bandwidth.bytesPerNs();
  // A single thread block cannot saturate HBM; cap at the per-block peak
  // (two SMs' worth of streaming throughput).
  const double per_block_peak =
      hbm * 2.0 / static_cast<double>(spec().sm_count);
  const double share = hbm / static_cast<double>(std::max<std::size_t>(active, 1));
  return std::min(per_block_peak, share) * efficiency;
}

Gpu::KernelHandle Gpu::launchKernel(StreamId s, std::vector<Op> ops,
                                    OpCompleteFn on_op_complete) {
  DKF_CHECK(s < streams_.size());
  DKF_CHECK(!ops.empty());
  if (faults_ && faults_->failLaunch()) {
    if (tracer_ && tracer_->isEnabled()) {
      const auto track = tracer_->track(
          "gpu" + std::to_string(id_) + ".stream" + std::to_string(s));
      tracer_->instant(track, "launch_failed", eng_->now(), "fault");
    }
    KernelHandle failed;
    failed.start = failed.end = eng_->now();
    failed.failed = true;
    return failed;
  }
  Stream& stream = streams_[s];

  const TimeNs start =
      std::max(eng_->now(), stream.ready) + spec().kernel_fixed_cost;
  const std::size_t slots = spec().totalBlockSlots();

  // Decompose ops into thread blocks (cooperative-group partition, Fig. 6).
  struct Block {
    std::size_t op;
    std::size_t bytes;
    double efficiency;
  };
  std::vector<Block> blocks;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const std::size_t bytes = op.bytes();
    std::size_t nblocks =
        std::clamp<std::size_t>((bytes + kBlockPayloadTarget - 1) / kBlockPayloadTarget,
                                1, slots);
    double run = op.layout ? op.layout->meanBlock() : 0.0;
    if (op.kind == Op::Kind::StridedCopy && op.dst_layout) {
      run = std::min(run, op.dst_layout->meanBlock());
    }
    const double eff = spec().accessEfficiency(run);
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t lo = bytes * b / nblocks;
      const std::size_t hi = bytes * (b + 1) / nblocks;
      blocks.push_back(Block{i, hi - lo, eff});
    }
  }

  // Wave-by-wave schedule; remember when each op's last block finishes.
  std::vector<TimeNs> op_complete(ops.size(), start);
  TimeNs t = start;
  std::size_t waves = 0;
  for (std::size_t w = 0; w < blocks.size(); w += slots) {
    const std::size_t active = std::min(slots, blocks.size() - w);
    DurationNs wave_dur = 0;
    for (std::size_t b = w; b < w + active; ++b) {
      const double bw = blockBandwidth(blocks[b].efficiency, active);
      const auto dur = static_cast<DurationNs>(
          std::ceil(static_cast<double>(blocks[b].bytes) / bw));
      wave_dur = std::max(wave_dur, dur);
    }
    t += wave_dur + spec().wave_overhead;
    ++waves;
    for (std::size_t b = w; b < w + active; ++b) {
      op_complete[blocks[b].op] = t;
    }
  }
  const TimeNs end = t;

  stream.ready = end;
  ++kernels_launched_;
  busy_time_ += end - start;

  if (tracer_ && tracer_->isEnabled()) {
    const auto track = tracer_->track(
        "gpu" + std::to_string(id_) + ".stream" + std::to_string(s));
    tracer_->span(track,
                  "kernel[" + std::to_string(ops.size()) + " ops, " +
                      std::to_string(blocks.size()) + " blocks]",
                  start, end, "kernel");
  }

  auto gate = std::make_unique<sim::Gate>(*eng_);
  sim::Gate* gate_ptr = gate.get();
  gates_.push_back(std::move(gate));

  // Keep the ops (and the fan-in hook) alive until the completion events
  // run the data movement.
  struct KernelCtx {
    std::vector<Op> ops;
    OpCompleteFn on_op;
  };
  auto ctx = std::make_shared<KernelCtx>(
      KernelCtx{std::move(ops), std::move(on_op_complete)});
  // op_complete[] is non-decreasing in op index (blocks are emitted in op
  // order, so a later op's last wave is never earlier). Ops finishing in
  // the same wave used to get back-to-back events with contiguous seqs at
  // one timestamp — nothing could pop between them — so running the whole
  // equal-time run inside one event is order-identical and turns O(ops)
  // events into O(waves).
  for (std::size_t lo = 0; lo < ctx->ops.size();) {
    std::size_t hi = lo + 1;
    while (hi < ctx->ops.size() && op_complete[hi] == op_complete[lo]) ++hi;
    eng_->scheduleAt(op_complete[lo], [ctx, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) {
        Op& op = ctx->ops[i];
        switch (op.kind) {
          case Op::Kind::Pack:
            ddt::packCpu(*op.layout, op.src, op.dst);
            break;
          case Op::Kind::Unpack:
            ddt::unpackCpu(*op.layout, op.src, op.dst);
            break;
          case Op::Kind::StridedCopy:
            ddt::copyStrided(*op.layout, op.src, *op.dst_layout, op.dst);
            break;
        }
        if (op.on_complete) op.on_complete();
        if (ctx->on_op) ctx->on_op(i);
      }
    });
    lo = hi;
  }
  eng_->scheduleAt(end, [gate_ptr] { gate_ptr->open(); });

  return KernelHandle{gate_ptr, start, end, blocks.size(), waves};
}

Gpu::CopyHandle Gpu::memcpyAsync(StreamId s, MemSpan dst, MemSpan src) {
  DKF_CHECK(s < streams_.size());
  DKF_CHECK_MSG(dst.size() >= src.size(),
                "memcpy destination smaller than source");
  Stream& stream = streams_[s];

  // Route: pick the path's latency/bandwidth and its busy-until serializer.
  DurationNs latency;
  double bw;
  TimeNs* busy;
  if (!src.onDevice() && dst.onDevice()) {
    latency = node_->cpu_gpu.latency;
    bw = node_->cpu_gpu.bandwidth.bytesPerNs();
    busy = &h2d_busy_;
  } else if (src.onDevice() && !dst.onDevice()) {
    latency = node_->cpu_gpu.latency;
    bw = node_->cpu_gpu.bandwidth.bytesPerNs();
    busy = &d2h_busy_;
  } else if (src.onDevice() && dst.onDevice() && src.device != dst.device) {
    latency = node_->gpu_gpu.latency;
    bw = node_->gpu_gpu.bandwidth.bytesPerNs();
    busy = &peer_busy_;
  } else if (src.onDevice() && dst.onDevice()) {
    latency = spec().local_copy_latency;
    bw = spec().hbm_bandwidth.bytesPerNs() / 2.0;  // read + write on HBM
    busy = &local_busy_;
  } else {
    latency = node_->host_memcpy_latency;
    bw = node_->host_memcpy_bandwidth.bytesPerNs();
    busy = &local_busy_;
  }

  const TimeNs start = std::max({eng_->now(), stream.ready, *busy});
  const auto dur =
      latency + static_cast<DurationNs>(
                    std::ceil(static_cast<double>(src.size()) / bw));
  const TimeNs end = start + dur;
  stream.ready = end;
  *busy = end;
  ++copies_issued_;
  busy_time_ += dur;

  if (tracer_ && tracer_->isEnabled()) {
    const auto track = tracer_->track(
        "gpu" + std::to_string(id_) + ".stream" + std::to_string(s));
    tracer_->span(track, "memcpy[" + std::to_string(src.size()) + " B]",
                  start, end, "copy");
  }

  auto gate = std::make_unique<sim::Gate>(*eng_);
  sim::Gate* gate_ptr = gate.get();
  gates_.push_back(std::move(gate));

  eng_->scheduleAt(end, [gate_ptr, dst, src] {
    std::memcpy(dst.bytes.data(), src.bytes.data(), src.size());
    gate_ptr->open();
  });
  return CopyHandle{gate_ptr, end};
}

Gpu::EventId Gpu::createEvent() {
  events_.push_back(Event{});
  return events_.size() - 1;
}

void Gpu::eventRecord(EventId e, StreamId s) {
  DKF_CHECK(e < events_.size());
  DKF_CHECK(s < streams_.size());
  events_[e] = Event{std::max(streams_[s].ready, eng_->now()), true};
}

bool Gpu::eventQuery(EventId e) const {
  DKF_CHECK(e < events_.size());
  const Event& ev = events_[e];
  return ev.recorded && eng_->now() >= ev.position;
}

sim::Task<void> Gpu::eventSynchronize(EventId e) {
  DKF_CHECK(e < events_.size());
  const Event ev = events_[e];
  DKF_CHECK_MSG(ev.recorded, "synchronizing an unrecorded event");
  if (ev.position > eng_->now()) {
    co_await eng_->delay(ev.position - eng_->now());
  }
}

sim::Task<void> Gpu::streamSynchronize(StreamId s) {
  DKF_CHECK(s < streams_.size());
  const TimeNs target = streams_[s].ready;
  if (target > eng_->now()) {
    co_await eng_->delay(target - eng_->now());
  }
}

}  // namespace dkf::gpu
