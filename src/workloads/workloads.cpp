#include "workloads/workloads.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dkf::workloads {

namespace {

/// Deterministic irregular boundary list: `n` strictly increasing element
/// displacements with pseudo-random gaps of 1..5 elements — the shape of an
/// unstructured-mesh boundary (SPECFEM3D).
std::vector<std::int64_t> boundaryList(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> displs(n);
  std::int64_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    displs[i] = cursor;
    cursor += 1 + static_cast<std::int64_t>(rng.range(1, 4));
  }
  return displs;
}

}  // namespace

Workload specfem3dOc(std::size_t dim) {
  DKF_CHECK(dim > 0);
  const std::size_t points = 32 * dim;
  const auto displs = boundaryList(points, /*seed=*/0x0C);
  const std::vector<std::size_t> lens(points, 1);
  auto type = ddt::Datatype::indexed(lens, displs, ddt::Datatype::float32());
  return Workload{"specfem3D_oc", std::move(type), 1, /*sparse=*/true};
}

Workload specfem3dCm(std::size_t dim) {
  DKF_CHECK(dim > 0);
  const std::size_t points = 16 * dim;
  const auto displs = boundaryList(points, /*seed=*/0xC3);
  const std::vector<std::size_t> lens(points, 1);
  auto field = ddt::Datatype::indexed(lens, displs, ddt::Datatype::float32());

  // Three displacement fields (x, y, z) stored as separate arrays; the
  // struct places each field's indexed pattern at its array base.
  const auto field_extent = static_cast<std::int64_t>(field->extent());
  const std::vector<std::size_t> slens{1, 1, 1};
  const std::vector<std::int64_t> sdispls{0, field_extent, 2 * field_extent};
  const std::vector<ddt::DatatypePtr> stypes{field, field, field};
  auto type = ddt::Datatype::struct_(slens, sdispls, stypes);
  return Workload{"specfem3D_cm", std::move(type), 1, /*sparse=*/true};
}

Workload milcZdown(std::size_t dim) {
  DKF_CHECK(dim >= 2);
  // One lattice site carries an su3 vector: 3 complex doubles, 48 B.
  auto su3 = ddt::Datatype::contiguous(3, ddt::Datatype::complexDouble());
  // The z-face: dim rows, each a contiguous run of dim/2 sites, strided by
  // a full row of dim sites (nested-vector construction as in ddtbench).
  auto inner = ddt::Datatype::vector(dim / 2, 1, 1, su3);
  auto type = ddt::Datatype::hvector(
      dim, 1, static_cast<std::int64_t>(48 * dim), inner);
  return Workload{"MILC", std::move(type), 1, /*sparse=*/false};
}

Workload nasMgFace(std::size_t dim) {
  DKF_CHECK(dim > 0);
  // y-face of a dim^3 double grid: dim rows of dim contiguous doubles,
  // strided by a dim^2 plane.
  auto type = ddt::Datatype::vector(
      dim, dim, static_cast<std::int64_t>(dim * dim),
      ddt::Datatype::float64());
  return Workload{"NAS_MG", std::move(type), 1, /*sparse=*/false};
}

std::vector<Workload> paperWorkloads(std::size_t dim) {
  return {specfem3dOc(dim), specfem3dCm(dim), milcZdown(dim), nasMgFace(dim)};
}

Workload wrfXzPlane(std::size_t dim) {
  DKF_CHECK(dim >= 2);
  // One variable's x-z ghost plane: subarray [dim, 1, dim] at y = dim-1 of
  // a dim^3 float grid.
  const std::vector<std::size_t> sizes{dim, dim, dim};
  const std::vector<std::size_t> subsizes{dim, 1, dim};
  const std::vector<std::size_t> starts{0, dim - 1, 0};
  auto plane = ddt::Datatype::subarray(sizes, subsizes, starts,
                                       ddt::Datatype::Order::C,
                                       ddt::Datatype::float32());
  // Two field variables stored back to back (struct-of-subarrays, as the
  // ddtbench wrf_*_vec tests build from the WRF halo code).
  const auto var_extent = static_cast<std::int64_t>(plane->extent());
  const std::vector<std::size_t> lens{1, 1};
  const std::vector<std::int64_t> displs{0, var_extent};
  const std::vector<ddt::DatatypePtr> members{plane, plane};
  auto type = ddt::Datatype::struct_(lens, displs, members);
  return Workload{"WRF", std::move(type), 1, /*sparse=*/false};
}

Workload lammpsFull(std::size_t dim) {
  DKF_CHECK(dim > 0);
  // 16*dim exchanged atoms at irregular indices; each atom carries an
  // 8-double record (x, v, q, ...) = 64 contiguous bytes.
  const std::size_t atoms = 16 * dim;
  Rng rng(0x1A44);
  std::vector<std::int64_t> displs(atoms);
  std::int64_t cursor = 0;
  for (std::size_t i = 0; i < atoms; ++i) {
    displs[i] = cursor;
    cursor += 1 + static_cast<std::int64_t>(rng.range(0, 3));
  }
  auto record = ddt::Datatype::contiguous(8, ddt::Datatype::float64());
  auto type = ddt::Datatype::indexedBlock(1, displs, record);
  return Workload{"LAMMPS_full", std::move(type), 1, /*sparse=*/true};
}

std::vector<Workload> extendedWorkloads(std::size_t dim) {
  auto wls = paperWorkloads(dim);
  wls.push_back(wrfXzPlane(dim));
  wls.push_back(lammpsFull(dim));
  return wls;
}

std::vector<HaloFace> halo3dFaces(std::size_t n, std::size_t ghost) {
  DKF_CHECK(n > 2 * ghost);
  // Local block of (n+2g)^3 doubles including ghost shells.
  const std::size_t total = n + 2 * ghost;
  const std::vector<std::size_t> sizes{total, total, total};
  auto dbl = ddt::Datatype::float64();

  std::vector<HaloFace> faces;
  for (int axis = 0; axis < 3; ++axis) {
    for (int dir = -1; dir <= 1; dir += 2) {
      HaloFace face{};
      face.neighbor_dx[0] = face.neighbor_dx[1] = face.neighbor_dx[2] = 0;
      face.neighbor_dx[axis] = dir;

      std::vector<std::size_t> subsizes{n, n, n};
      subsizes[static_cast<std::size_t>(axis)] = ghost;

      // Send the owned boundary layer adjacent to the neighbor...
      std::vector<std::size_t> send_start{ghost, ghost, ghost};
      send_start[static_cast<std::size_t>(axis)] =
          dir < 0 ? ghost : ghost + n - ghost;
      face.send_type = ddt::Datatype::subarray(
          sizes, subsizes, send_start, ddt::Datatype::Order::C, dbl);

      // ...into the neighbor's ghost shell on the opposite side.
      std::vector<std::size_t> recv_start{ghost, ghost, ghost};
      recv_start[static_cast<std::size_t>(axis)] =
          dir < 0 ? 0 : ghost + n;
      face.recv_type = ddt::Datatype::subarray(
          sizes, subsizes, recv_start, ddt::Datatype::Order::C, dbl);

      faces.push_back(std::move(face));
    }
  }
  return faces;
}

}  // namespace dkf::workloads
