#include "workloads/halo_exchanger.hpp"

#include "common/check.hpp"

namespace dkf::workloads {

HaloExchanger::HaloExchanger(mpi::Proc& proc, gpu::MemSpan block,
                             Config config)
    : proc_(&proc), block_(block), config_(config) {
  const std::size_t total = config_.n + 2 * config_.ghost;
  DKF_CHECK_MSG(block_.size() >= total * total * total * 8,
                "halo block too small: need "
                    << total * total * total * 8 << " bytes, got "
                    << block_.size());
  const int grid_ranks =
      config_.grid[0] * config_.grid[1] * config_.grid[2];
  DKF_CHECK_MSG(proc.rank() < grid_ranks,
                "rank " << proc.rank() << " outside the " << grid_ranks
                        << "-rank grid");

  // Node-major rank layout: rank = (x * gy + y) * gz + z.
  coords_ = {proc.rank() / (config_.grid[1] * config_.grid[2]),
             (proc.rank() / config_.grid[2]) % config_.grid[1],
             proc.rank() % config_.grid[2]};

  const auto faces = halo3dFaces(config_.n, config_.ghost);
  plan_.reserve(faces.size());
  for (std::size_t f = 0; f < faces.size(); ++f) {
    const auto& face = faces[f];
    FacePlan p;
    p.neighbor = rankAt({coords_[0] + face.neighbor_dx[0],
                         coords_[1] + face.neighbor_dx[1],
                         coords_[2] + face.neighbor_dx[2]});
    // Face f pairs with the mirrored face f^1 on the neighbor.
    p.send_tag = static_cast<int>(f);
    p.recv_tag = static_cast<int>(f ^ 1);
    p.send_type = face.send_type;
    p.recv_type = face.recv_type;
    bytes_per_exchange_ += p.send_type->size();
    plan_.push_back(std::move(p));
  }
}

int HaloExchanger::rankAt(std::array<int, 3> c) const {
  auto wrap = [](int v, int m) { return ((v % m) + m) % m; };
  const int x = wrap(c[0], config_.grid[0]);
  const int y = wrap(c[1], config_.grid[1]);
  const int z = wrap(c[2], config_.grid[2]);
  return (x * config_.grid[1] + y) * config_.grid[2] + z;
}

sim::Task<void> HaloExchanger::exchange() {
  std::vector<mpi::RequestPtr> reqs;
  reqs.reserve(plan_.size() * 2);
  for (const FacePlan& p : plan_) {
    reqs.push_back(
        co_await proc_->irecv(block_, p.recv_type, 1, p.neighbor, p.recv_tag));
    reqs.push_back(
        co_await proc_->isend(block_, p.send_type, 1, p.neighbor, p.send_tag));
  }
  co_await proc_->waitall(std::move(reqs));
  ++exchanges_;
}

}  // namespace dkf::workloads
