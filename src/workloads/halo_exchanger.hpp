// HaloExchanger: a persistent, high-level halo-exchange helper over the
// MPI runtime — the API shape a domain-decomposition application (Comb,
// SPECFEM3D, MILC) would adopt instead of hand-rolling Algorithm 1/2/3.
//
// The application registers its local block, the rank grid, and the ghost
// width once; the exchanger derives the subarray datatypes and neighbor
// mapping (periodic torus), and each exchange() posts all non-blocking
// face transfers and waits — which is exactly the bulk pattern the fusion
// engine batches.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "mpi/runtime.hpp"
#include "workloads/workloads.hpp"

namespace dkf::workloads {

class HaloExchanger {
 public:
  struct Config {
    std::size_t n{16};         ///< owned cells per dimension
    std::size_t ghost{1};      ///< ghost-shell width
    std::array<int, 3> grid{2, 2, 2};  ///< ranks per dimension (periodic)
  };

  /// `block` must hold (n+2*ghost)^3 doubles on the proc's GPU.
  HaloExchanger(mpi::Proc& proc, gpu::MemSpan block, Config config);

  /// Perform one full 6-face halo exchange (12 non-blocking operations).
  sim::Task<void> exchange();

  /// Number of point-to-point operations per exchange (sends + recvs).
  std::size_t messagesPerExchange() const { return plan_.size() * 2; }
  /// Payload bytes moved per exchange (sum over faces, one direction).
  std::size_t bytesPerExchange() const { return bytes_per_exchange_; }
  std::size_t exchangesDone() const { return exchanges_; }

  const Config& config() const { return config_; }
  /// This rank's coordinates in the rank grid.
  std::array<int, 3> coords() const { return coords_; }
  /// The rank at grid coordinates (periodic wrap).
  int rankAt(std::array<int, 3> c) const;

 private:
  struct FacePlan {
    int neighbor;
    int send_tag;
    int recv_tag;
    ddt::DatatypePtr send_type;
    ddt::DatatypePtr recv_type;
  };

  mpi::Proc* proc_;
  gpu::MemSpan block_;
  Config config_;
  std::array<int, 3> coords_{};
  std::vector<FacePlan> plan_;
  std::size_t bytes_per_exchange_{0};
  std::size_t exchanges_{0};
};

}  // namespace dkf::workloads
