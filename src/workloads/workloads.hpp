// Application-kernel workloads (§V-A).
//
// The paper evaluates four representative datatype layouts, built after the
// ddtbench micro-applications [32]:
//
//   specfem3D_oc  — MPI_Type_indexed over single floats: the ocean-crust
//                   boundary list of the SPECFEM3D seismic code. SPARSE:
//                   thousands of tiny blocks at irregular offsets.
//   specfem3D_cm  — struct-on-indexed (three field arrays share one
//                   boundary list): SPECFEM3D crust-mantle. SPARSE.
//   MILC          — nested vectors over su3 vectors (3 complex doubles):
//                   the z-face of the 4-D MILC lattice. DENSE: fewer,
//                   larger blocks.
//   NAS_MG        — MPI_Type_vector: the y-face of the NAS MG 3-D grid.
//                   DENSE.
//
// `dim` is the "dimension size" on the x-axis of Figs. 9/10/12/13; each
// builder documents how it scales block count and block size.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ddt/datatype.hpp"
#include "ddt/layout.hpp"

namespace dkf::workloads {

struct Workload {
  std::string name;
  ddt::DatatypePtr type;
  std::size_t count{1};  ///< elements of `type` per operation
  bool sparse{false};    ///< the paper's layout classification

  /// Bytes of origin buffer one operation touches (count * extent).
  std::size_t regionBytes() const {
    return count * type->extent();
  }
  /// Packed payload size of one operation.
  std::size_t packedBytes() const { return count * type->size(); }
};

/// Sparse: `32*dim` single-float blocks at irregular (deterministic)
/// displacements, as produced by SPECFEM3D's ocean-crust boundary mesh.
Workload specfem3dOc(std::size_t dim);

/// Sparse: struct over three indexed field arrays sharing one irregular
/// boundary list of `16*dim` points each (48*dim blocks total).
Workload specfem3dCm(std::size_t dim);

/// Dense: nested vector of su3 vectors — `dim` blocks of `24*dim` bytes
/// (the MILC z-face, blocklength dim/2 sites of 48 B each).
Workload milcZdown(std::size_t dim);

/// Dense: `dim` rows of `8*dim` contiguous bytes out of a dim^3 double
/// grid (the NAS MG y-face).
Workload nasMgFace(std::size_t dim);

/// The four workloads in the order the paper's figures present them.
std::vector<Workload> paperWorkloads(std::size_t dim);

// ---- Extended workloads (the paper's future work: "evaluate the proposed
// designs with more application workloads") — two further ddtbench [32]
// patterns with different sparsity characteristics. ----

/// WRF (weather): struct over two field variables, each exchanging the x-z
/// ghost plane of a dim^3 float grid — medium-dense blocks of 4*dim bytes,
/// 2*dim of them.
Workload wrfXzPlane(std::size_t dim);

/// LAMMPS (molecular dynamics, "full" atom style): an indexed-block pick of
/// 16*dim atoms, each an 8-double property record (64 B) at irregular
/// positions — semi-sparse: many medium blocks.
Workload lammpsFull(std::size_t dim);

/// All six workloads (paper four + extended two).
std::vector<Workload> extendedWorkloads(std::size_t dim);

/// 3-D domain-decomposition halo description (Comb [33] style): for a
/// rank at `coords` in a `grid` of ranks over a `n`^3 local block of
/// doubles, enumerate the 6 face exchanges with subarray datatypes.
struct HaloFace {
  int neighbor_dx[3];        ///< offset of the neighbor in the rank grid
  ddt::DatatypePtr send_type;  ///< subarray over the local block (send side)
  ddt::DatatypePtr recv_type;  ///< subarray over the local block (recv side)
};
std::vector<HaloFace> halo3dFaces(std::size_t n, std::size_t ghost = 1);

}  // namespace dkf::workloads
