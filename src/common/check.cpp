#include "common/check.hpp"

namespace dkf::detail {

void checkFailed(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "DKF_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace dkf::detail
