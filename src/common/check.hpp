// Lightweight invariant checking. DKF_CHECK is always on (simulation
// correctness beats the last few percent of host speed); failures throw
// `dkf::CheckFailure` so tests can assert on them and long experiment runs
// fail loudly instead of corrupting results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dkf {

/// Thrown when a DKF_CHECK fails. Carries file/line and the failed expression.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void checkFailed(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace dkf

/// Assert `cond`; on failure throws dkf::CheckFailure with location info.
#define DKF_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) ::dkf::detail::checkFailed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Assert with a streamed message: DKF_CHECK_MSG(x > 0, "x=" << x).
#define DKF_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream dkf_check_os_;                                   \
      dkf_check_os_ << stream_expr;                                       \
      ::dkf::detail::checkFailed(#cond, __FILE__, __LINE__,               \
                                 dkf_check_os_.str());                    \
    }                                                                     \
  } while (false)
