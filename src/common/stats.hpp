// Small statistics helpers used by the benchmark harness and the schemes'
// internal instrumentation (time-breakdown counters for Fig. 11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dkf {

/// Streaming mean/min/max/stddev accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Stores all samples; supports exact percentiles. Used for per-iteration
/// latencies where the paper reports averages of 500 iterations.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void clear() { samples_.clear(); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double percentile(double p) const;  ///< p in [0,100]; exact, nearest-rank.
  double min() const { return percentile(0.0); }
  double median() const { return percentile(50.0); }
  double max() const { return percentile(100.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// The five cost categories of the paper's Fig. 11 time breakdown, accumulated
/// in virtual nanoseconds by the DDT-processing schemes.
struct TimeBreakdown {
  DurationNs pack_unpack{0};  ///< time inside pack/unpack GPU kernels / CPU copies
  DurationNs launching{0};    ///< CPU-side kernel/copy launch (driver) overhead
  DurationNs scheduling{0};   ///< event record / fusion scheduler enqueue+dequeue
  DurationNs synchronize{0};  ///< CPU-GPU completion sync (stream sync, event query, polling)
  DurationNs communication{0};  ///< observed (non-overlapped) network time

  TimeBreakdown& operator+=(const TimeBreakdown& o);
  DurationNs total() const {
    return pack_unpack + launching + scheduling + synchronize + communication;
  }
  void reset() { *this = TimeBreakdown{}; }
};

}  // namespace dkf
