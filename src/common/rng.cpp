#include "common/rng.hpp"

#include "common/check.hpp"

namespace dkf {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  DKF_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  DKF_CHECK(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace dkf
