// Deterministic random number generation.
//
// Everything in the simulator that needs randomness (workload data fills,
// property-test sweeps, randomized fuzzing of the request list) draws from
// this xoshiro256** generator seeded explicitly, so every experiment and test
// is bit-reproducible across runs and platforms. std::mt19937 is avoided in
// hot paths (large state, slower) and distributions from <random> are avoided
// entirely because their output is implementation-defined.
#pragma once

#include <cstdint>
#include <limits>

namespace dkf {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain algorithm), seeded via
/// SplitMix64 so any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw with probability p.
  bool chance(double p) { return uniform01() < p; }

  // UniformRandomBitGenerator interface so std::shuffle works.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4]{};
};

}  // namespace dkf
