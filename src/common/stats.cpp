#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dkf {

void RunningStat::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  DKF_CHECK(!samples_.empty());
  DKF_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::max<std::size_t>(rank, 1) - 1];
}

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& o) {
  pack_unpack += o.pack_unpack;
  launching += o.launching;
  scheduling += o.scheduling;
  synchronize += o.synchronize;
  communication += o.communication;
  return *this;
}

}  // namespace dkf
