// Tenant identity for the multi-tenant serving plane (MODEL.md §14).
//
// A TenantId names one job/communicator sharing the cluster. Tenant 0 is
// the default tenant: every request, transfer and cache access that never
// mentions a tenant belongs to it, so single-tenant configurations behave
// (and time) exactly as before the serving plane existed. Tenant ids are
// small dense integers — per-tenant state everywhere is a vector grown on
// demand, never a hash map on the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dkf {

using TenantId = std::uint32_t;
inline constexpr TenantId kDefaultTenant = 0;

/// Relative service weights for weighted arbitration and shared-link
/// bandwidth splitting. Unlisted (or non-positive) tenants weigh 1.0, so an
/// empty TenantWeights is plain fair sharing.
struct TenantWeights {
  std::vector<double> weights;

  double weightOf(TenantId t) const {
    return t < weights.size() && weights[t] > 0.0 ? weights[t] : 1.0;
  }
  void set(TenantId t, double w) {
    if (t >= weights.size()) weights.resize(t + 1, 0.0);
    weights[t] = w;
  }
};

}  // namespace dkf
