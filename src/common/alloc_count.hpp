// Opt-in global allocation counting (CMake option DKF_COUNT_ALLOCS).
//
// When the option is ON, alloc_count.cpp replaces the global operator
// new/delete family with counting versions, and allocCount() reads the
// process-lifetime allocation total. Benches subtract two snapshots around
// a measured pass to report steady-state allocations per message — the
// payload plane's headline metric (MODEL.md §15). When the option is OFF
// (the default), the counters read zero and allocCountingEnabled() lets
// callers skip the measurement instead of reporting a misleading 0.
#pragma once

#include <cstdint>

namespace dkf {

/// True when this build replaces global new/delete with counting versions.
bool allocCountingEnabled() noexcept;

/// Allocations (operator new family calls) since process start; 0 when
/// counting is disabled.
std::uint64_t allocCount() noexcept;

/// Deallocations since process start; 0 when counting is disabled.
std::uint64_t deallocCount() noexcept;

}  // namespace dkf
