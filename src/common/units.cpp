#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace dkf {

DurationNs BytesPerSecond::transferTime(std::size_t bytes) const {
  if (bytes == 0 || value <= 0.0) return 0;
  const double t = static_cast<double>(bytes) / bytesPerNs();
  return static_cast<DurationNs>(std::ceil(t));
}

std::string formatDuration(DurationNs d) {
  char buf[64];
  if (d < 10'000ull) {
    std::snprintf(buf, sizeof buf, "%llu ns", static_cast<unsigned long long>(d));
  } else if (d < 10'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.2f us", toUs(d));
  } else if (d < 10'000'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.2f ms", toMs(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", toSec(d));
  }
  return buf;
}

std::string formatBytes(std::size_t bytes) {
  char buf[64];
  if (bytes < 1024ull) {
    std::snprintf(buf, sizeof buf, "%zu B", bytes);
  } else if (bytes < 1024ull * 1024ull) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", static_cast<double>(bytes) / 1024.0);
  } else if (bytes < 1024ull * 1024ull * 1024ull) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace dkf
