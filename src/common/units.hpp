// Time and size units used throughout the simulator.
//
// All simulated time is kept in integral nanoseconds (`TimeNs` for absolute
// virtual time, `DurationNs` for intervals). Integral time keeps the
// discrete-event engine fully deterministic: there is no floating-point
// accumulation anywhere on the clock path. Bandwidth/latency models compute
// in double precision and round to whole nanoseconds at the event boundary.
#pragma once

#include <cstdint>
#include <string>

namespace dkf {

/// Absolute virtual time in nanoseconds since the start of a simulation.
using TimeNs = std::uint64_t;
/// A span of virtual time in nanoseconds.
using DurationNs = std::uint64_t;

/// Construct durations readably: `us(12)` is 12 microseconds.
constexpr DurationNs ns(std::uint64_t v) { return v; }
constexpr DurationNs us(std::uint64_t v) { return v * 1000ull; }
constexpr DurationNs ms(std::uint64_t v) { return v * 1000'000ull; }
constexpr DurationNs sec(std::uint64_t v) { return v * 1000'000'000ull; }

/// Convert a duration to double microseconds/milliseconds for reporting.
constexpr double toUs(DurationNs d) { return static_cast<double>(d) / 1e3; }
constexpr double toMs(DurationNs d) { return static_cast<double>(d) / 1e6; }
constexpr double toSec(DurationNs d) { return static_cast<double>(d) / 1e9; }

/// Byte-size helpers.
constexpr std::size_t KiB(std::size_t v) { return v * 1024ull; }
constexpr std::size_t MiB(std::size_t v) { return v * 1024ull * 1024ull; }
constexpr std::size_t GiB(std::size_t v) { return v * 1024ull * 1024ull * 1024ull; }

/// Bandwidth expressed in bytes per second; stored as double because link
/// speeds (e.g. 75 GB/s) exceed what fits comfortably in per-ns integers.
struct BytesPerSecond {
  double value{0.0};

  constexpr double bytesPerNs() const { return value / 1e9; }

  /// Time to move `bytes` at this bandwidth, rounded up to whole ns.
  DurationNs transferTime(std::size_t bytes) const;
};

/// `GBps(75)` == 75 gigabytes per second (decimal GB, as vendors quote).
constexpr BytesPerSecond GBps(double v) { return BytesPerSecond{v * 1e9}; }
constexpr BytesPerSecond MBps(double v) { return BytesPerSecond{v * 1e6}; }

/// Human-readable formatting for reports: "12.3 us", "4.56 ms".
std::string formatDuration(DurationNs d);
/// Human-readable byte counts: "512 KiB", "3.0 MiB".
std::string formatBytes(std::size_t bytes);

}  // namespace dkf
