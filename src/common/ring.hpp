// Capacity-retaining FIFO ring (MODEL.md §15).
//
// std::deque frees and reallocates its ~512-byte blocks as the queue
// drains and refills, which puts one heap round-trip every few messages
// on the payload hot path (a LinkBatcher entry is ~176 bytes — two per
// block). RingQueue is the drop-in replacement for strict
// push_back/front/pop_front use: a power-of-two circular buffer that
// grows by doubling and never shrinks, so a warmed queue enqueues and
// dequeues with zero allocations no matter how often it empties.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace dkf {

template <class T>
class RingQueue {
 public:
  RingQueue() = default;
  RingQueue(RingQueue&& o) noexcept
      : storage_(o.storage_), cap_(o.cap_), head_(o.head_), tail_(o.tail_) {
    o.storage_ = nullptr;
    o.cap_ = o.head_ = o.tail_ = 0;
  }
  RingQueue& operator=(RingQueue&& o) noexcept {
    if (this != &o) {
      destroyAll();
      storage_ = o.storage_;
      cap_ = o.cap_;
      head_ = o.head_;
      tail_ = o.tail_;
      o.storage_ = nullptr;
      o.cap_ = o.head_ = o.tail_ = 0;
    }
    return *this;
  }
  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;
  ~RingQueue() { destroyAll(); }

  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return tail_ - head_; }

  T& front() { return *slot(head_); }
  const T& front() const { return *slot(head_); }
  T& back() { return *slot(tail_ - 1); }
  const T& back() const { return *slot(tail_ - 1); }

  void push_back(T&& v) { emplace_back(std::move(v)); }
  void push_back(const T& v) { emplace_back(v); }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size() == cap_) grow();
    T* p = new (slot(tail_)) T(std::forward<Args>(args)...);
    ++tail_;
    return *p;
  }

  void pop_front() {
    slot(head_)->~T();
    ++head_;
  }

  void clear() {
    while (!empty()) pop_front();
  }

 private:
  T* slot(std::size_t i) const {
    return static_cast<T*>(storage_) + (i & (cap_ - 1));
  }

  static void* allocStorage(std::size_t cap) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return ::operator new(cap * sizeof(T), std::align_val_t(alignof(T)));
    } else {
      return ::operator new(cap * sizeof(T));
    }
  }

  static void freeStorage(void* p) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(p, std::align_val_t(alignof(T)));
    } else {
      ::operator delete(p);
    }
  }

  void grow() {
    const std::size_t new_cap = cap_ ? cap_ * 2 : 8;
    void* ns = allocStorage(new_cap);
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      T* src = slot(head_ + i);
      new (static_cast<T*>(ns) + i) T(std::move(*src));
      src->~T();
    }
    freeStorage(storage_);
    storage_ = ns;
    cap_ = new_cap;
    head_ = 0;
    tail_ = n;
  }

  void destroyAll() {
    clear();
    freeStorage(storage_);
    storage_ = nullptr;
    cap_ = head_ = tail_ = 0;
  }

  void* storage_{nullptr};
  std::size_t cap_{0};
  // Monotonic positions masked into the ring; size() = tail_ - head_.
  std::size_t head_{0};
  std::size_t tail_{0};
};

}  // namespace dkf
