#include "common/alloc_count.hpp"

#if DKF_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* countedAlloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* countedAlignedAlloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // posix_memalign demands a pointer-size multiple for the alignment.
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : 1) != 0) throw std::bad_alloc();
  return p;
}

void countedFree(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) { return countedAlloc(n); }
void* operator new[](std::size_t n) { return countedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}

void operator delete(void* p) noexcept { countedFree(p); }
void operator delete[](void* p) noexcept { countedFree(p); }
void operator delete(void* p, std::size_t) noexcept { countedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { countedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { countedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { countedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  countedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  countedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  countedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  countedFree(p);
}

namespace dkf {

bool allocCountingEnabled() noexcept { return true; }
std::uint64_t allocCount() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}
std::uint64_t deallocCount() noexcept {
  return g_frees.load(std::memory_order_relaxed);
}

}  // namespace dkf

#else  // !DKF_COUNT_ALLOCS

namespace dkf {

bool allocCountingEnabled() noexcept { return false; }
std::uint64_t allocCount() noexcept { return 0; }
std::uint64_t deallocCount() noexcept { return 0; }

}  // namespace dkf

#endif
