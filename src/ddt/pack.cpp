#include "ddt/pack.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace dkf::ddt {

std::size_t packCpu(const Layout& layout, std::span<const std::byte> origin,
                    std::span<std::byte> packed) {
  DKF_CHECK_MSG(packed.size() >= layout.size(),
                "packed buffer too small: " << packed.size() << " < "
                                            << layout.size());
  std::size_t out = 0;
  for (const Segment& s : layout.segments()) {
    DKF_CHECK_MSG(s.offset >= 0, "negative segment offset " << s.offset);
    DKF_CHECK_MSG(static_cast<std::size_t>(s.offset) + s.len <= origin.size(),
                  "segment [" << s.offset << ", " << s.offset + static_cast<std::int64_t>(s.len)
                              << ") exceeds origin size " << origin.size());
    std::memcpy(packed.data() + out, origin.data() + s.offset, s.len);
    out += s.len;
  }
  return out;
}

std::size_t unpackCpu(const Layout& layout, std::span<const std::byte> packed,
                      std::span<std::byte> origin) {
  DKF_CHECK_MSG(packed.size() >= layout.size(),
                "packed buffer too small: " << packed.size() << " < "
                                            << layout.size());
  std::size_t in = 0;
  for (const Segment& s : layout.segments()) {
    DKF_CHECK_MSG(s.offset >= 0, "negative segment offset " << s.offset);
    DKF_CHECK_MSG(static_cast<std::size_t>(s.offset) + s.len <= origin.size(),
                  "segment exceeds origin buffer");
    std::memcpy(origin.data() + s.offset, packed.data() + in, s.len);
    in += s.len;
  }
  return in;
}

std::size_t copyStrided(const Layout& src_layout,
                        std::span<const std::byte> src,
                        const Layout& dst_layout, std::span<std::byte> dst) {
  DKF_CHECK_MSG(src_layout.size() == dst_layout.size(),
                "strided copy size mismatch: " << src_layout.size() << " vs "
                                               << dst_layout.size());
  // Walk both segment lists in lockstep, splitting runs on the shorter side.
  auto si = src_layout.segments().begin();
  auto di = dst_layout.segments().begin();
  std::size_t s_used = 0, d_used = 0, total = 0;
  while (si != src_layout.segments().end() &&
         di != dst_layout.segments().end()) {
    const std::size_t chunk = std::min(si->len - s_used, di->len - d_used);
    const auto s_off = static_cast<std::size_t>(si->offset) + s_used;
    const auto d_off = static_cast<std::size_t>(di->offset) + d_used;
    DKF_CHECK(si->offset >= 0 && di->offset >= 0);
    DKF_CHECK(s_off + chunk <= src.size());
    DKF_CHECK(d_off + chunk <= dst.size());
    std::memcpy(dst.data() + d_off, src.data() + s_off, chunk);
    s_used += chunk;
    d_used += chunk;
    total += chunk;
    if (s_used == si->len) {
      ++si;
      s_used = 0;
    }
    if (d_used == di->len) {
      ++di;
      d_used = 0;
    }
  }
  return total;
}

}  // namespace dkf::ddt
