#include "ddt/pack.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace dkf::ddt {

// The hot paths iterate the compressed form directly — group x run x memcpy
// loop nests with no materialized segment list, so a bulk-sparse request
// (thousands of runs x hundreds of elements) moves bytes with O(groups)
// bookkeeping instead of O(total runs) cache-hostile pointer chasing.

std::size_t packCpu(const Layout& layout, std::span<const std::byte> origin,
                    std::span<std::byte> packed) {
  DKF_CHECK_MSG(packed.size() >= layout.size(),
                "packed buffer too small: " << packed.size() << " < "
                                            << layout.size());
  std::size_t out = 0;
  layout.forEachRun([&](std::int64_t offset, std::size_t len) {
    DKF_CHECK_MSG(offset >= 0, "negative segment offset " << offset);
    DKF_CHECK_MSG(static_cast<std::size_t>(offset) + len <= origin.size(),
                  "segment [" << offset << ", "
                              << offset + static_cast<std::int64_t>(len)
                              << ") exceeds origin size " << origin.size());
    std::memcpy(packed.data() + out, origin.data() + offset, len);
    out += len;
  });
  return out;
}

std::size_t unpackCpu(const Layout& layout, std::span<const std::byte> packed,
                      std::span<std::byte> origin) {
  DKF_CHECK_MSG(packed.size() >= layout.size(),
                "packed buffer too small: " << packed.size() << " < "
                                            << layout.size());
  std::size_t in = 0;
  layout.forEachRun([&](std::int64_t offset, std::size_t len) {
    DKF_CHECK_MSG(offset >= 0, "negative segment offset " << offset);
    DKF_CHECK_MSG(static_cast<std::size_t>(offset) + len <= origin.size(),
                  "segment exceeds origin buffer");
    std::memcpy(origin.data() + offset, packed.data() + in, len);
    in += len;
  });
  return in;
}

std::size_t copyStrided(const Layout& src_layout,
                        std::span<const std::byte> src,
                        const Layout& dst_layout, std::span<std::byte> dst) {
  DKF_CHECK_MSG(src_layout.size() == dst_layout.size(),
                "strided copy size mismatch: " << src_layout.size() << " vs "
                                               << dst_layout.size());
  // Walk both compressed layouts in lockstep — two O(1)-state group cursors,
  // splitting runs on the shorter side; neither segment list exists.
  auto si = src_layout.runs();
  auto di = dst_layout.runs();
  std::size_t s_used = 0, d_used = 0, total = 0;
  while (!si.done() && !di.done()) {
    const std::size_t chunk = std::min(si.len() - s_used, di.len() - d_used);
    DKF_CHECK(si.offset() >= 0 && di.offset() >= 0);
    const auto s_off = static_cast<std::size_t>(si.offset()) + s_used;
    const auto d_off = static_cast<std::size_t>(di.offset()) + d_used;
    DKF_CHECK(s_off + chunk <= src.size());
    DKF_CHECK(d_off + chunk <= dst.size());
    std::memcpy(dst.data() + d_off, src.data() + s_off, chunk);
    s_used += chunk;
    d_used += chunk;
    total += chunk;
    if (s_used == si.len()) {
      si.next();
      s_used = 0;
    }
    if (d_used == di.len()) {
      di.next();
      d_used = 0;
    }
  }
  return total;
}

}  // namespace dkf::ddt
