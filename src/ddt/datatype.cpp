#include "ddt/datatype.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/check.hpp"

namespace dkf::ddt {

namespace {

/// Envelope [lo, hi) in bytes occupied by a child entry.
struct Envelope {
  std::int64_t lo;
  std::int64_t hi;
};

Envelope childEnvelope(const DatatypePtr& type, std::size_t blocklength,
                       std::int64_t displ) {
  const auto span =
      static_cast<std::int64_t>(blocklength * type->extent());
  return Envelope{displ + type->lb(), displ + type->lb() + span};
}

}  // namespace

std::uint64_t Datatype::nextId() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

DatatypePtr Datatype::makePrimitive(std::string name, std::size_t size) {
  auto t = std::shared_ptr<Datatype>(new Datatype());
  t->kind_ = Kind::Primitive;
  t->id_ = nextId();
  t->name_ = std::move(name);
  t->size_ = size;
  t->extent_ = size;
  return t;
}

DatatypePtr Datatype::byte() {
  static const DatatypePtr t = makePrimitive("byte", 1);
  return t;
}
DatatypePtr Datatype::char_() {
  static const DatatypePtr t = makePrimitive("char", 1);
  return t;
}
DatatypePtr Datatype::int32() {
  static const DatatypePtr t = makePrimitive("int32", 4);
  return t;
}
DatatypePtr Datatype::int64() {
  static const DatatypePtr t = makePrimitive("int64", 8);
  return t;
}
DatatypePtr Datatype::float32() {
  static const DatatypePtr t = makePrimitive("float", 4);
  return t;
}
DatatypePtr Datatype::float64() {
  static const DatatypePtr t = makePrimitive("double", 8);
  return t;
}
DatatypePtr Datatype::complexDouble() {
  static const DatatypePtr t = makePrimitive("complex<double>", 16);
  return t;
}

DatatypePtr Datatype::contiguous(std::size_t count, DatatypePtr old) {
  DKF_CHECK(old != nullptr);
  auto t = std::shared_ptr<Datatype>(new Datatype());
  t->kind_ = Kind::Contiguous;
  t->id_ = nextId();
  t->desc_a_ = static_cast<std::int64_t>(count);
  t->desc_old_ = old;
  if (count > 0) t->children_.push_back(Child{old, count, 0});
  t->size_ = count * old->size();
  t->lb_ = count > 0 ? old->lb() : 0;
  t->extent_ = count * old->extent();
  return t;
}

DatatypePtr Datatype::vector(std::size_t count, std::size_t blocklength,
                             std::int64_t stride, DatatypePtr old) {
  DKF_CHECK(old != nullptr);
  return hvector(count, blocklength,
                 stride * static_cast<std::int64_t>(old->extent()), old);
}

DatatypePtr Datatype::hvector(std::size_t count, std::size_t blocklength,
                              std::int64_t stride_bytes, DatatypePtr old) {
  DKF_CHECK(old != nullptr);
  auto t = std::shared_ptr<Datatype>(new Datatype());
  t->kind_ = Kind::Hvector;
  t->id_ = nextId();
  t->desc_a_ = stride_bytes;
  t->desc_b_ = static_cast<std::int64_t>(blocklength);
  t->desc_old_ = old;
  t->children_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    t->children_.push_back(
        Child{old, blocklength, static_cast<std::int64_t>(i) * stride_bytes});
  }
  t->size_ = count * blocklength * old->size();
  std::int64_t lo = 0, hi = 0;
  bool first = true;
  for (const Child& c : t->children_) {
    const Envelope e = childEnvelope(c.type, c.blocklength, c.displacement_bytes);
    lo = first ? e.lo : std::min(lo, e.lo);
    hi = first ? e.hi : std::max(hi, e.hi);
    first = false;
  }
  t->lb_ = lo;
  t->extent_ = static_cast<std::size_t>(hi - lo);
  return t;
}

DatatypePtr Datatype::indexed(std::span<const std::size_t> blocklengths,
                              std::span<const std::int64_t> displacements,
                              DatatypePtr old) {
  DKF_CHECK(old != nullptr);
  DKF_CHECK(blocklengths.size() == displacements.size());
  std::vector<std::int64_t> byte_displs(displacements.size());
  for (std::size_t i = 0; i < displacements.size(); ++i) {
    byte_displs[i] =
        displacements[i] * static_cast<std::int64_t>(old->extent());
  }
  return hindexedAs(Kind::Indexed, blocklengths, byte_displs, std::move(old));
}

DatatypePtr Datatype::hindexed(std::span<const std::size_t> blocklengths,
                               std::span<const std::int64_t> displacement_bytes,
                               DatatypePtr old) {
  return hindexedAs(Kind::Hindexed, blocklengths, displacement_bytes,
                    std::move(old));
}

DatatypePtr Datatype::hindexedAs(Kind kind,
                                 std::span<const std::size_t> blocklengths,
                                 std::span<const std::int64_t> displacement_bytes,
                                 DatatypePtr old) {
  DKF_CHECK(old != nullptr);
  DKF_CHECK(blocklengths.size() == displacement_bytes.size());
  auto t = std::shared_ptr<Datatype>(new Datatype());
  t->kind_ = kind;
  t->id_ = nextId();
  t->desc_old_ = old;
  t->children_.reserve(blocklengths.size());
  std::size_t total = 0;
  std::int64_t lo = 0, hi = 0;
  bool first = true;
  for (std::size_t i = 0; i < blocklengths.size(); ++i) {
    t->children_.push_back(Child{old, blocklengths[i], displacement_bytes[i]});
    total += blocklengths[i] * old->size();
    const Envelope e = childEnvelope(old, blocklengths[i], displacement_bytes[i]);
    lo = first ? e.lo : std::min(lo, e.lo);
    hi = first ? e.hi : std::max(hi, e.hi);
    first = false;
  }
  t->size_ = total;
  t->lb_ = first ? 0 : lo;
  t->extent_ = first ? 0 : static_cast<std::size_t>(hi - lo);
  return t;
}

DatatypePtr Datatype::indexedBlock(std::size_t blocklength,
                                   std::span<const std::int64_t> displacements,
                                   DatatypePtr old) {
  DKF_CHECK(old != nullptr);
  std::vector<std::size_t> blocklengths(displacements.size(), blocklength);
  std::vector<std::int64_t> byte_displs(displacements.size());
  for (std::size_t i = 0; i < displacements.size(); ++i) {
    byte_displs[i] =
        displacements[i] * static_cast<std::int64_t>(old->extent());
  }
  return hindexedAs(Kind::IndexedBlock, blocklengths, byte_displs,
                    std::move(old));
}

DatatypePtr Datatype::struct_(std::span<const std::size_t> blocklengths,
                              std::span<const std::int64_t> displacement_bytes,
                              std::span<const DatatypePtr> types) {
  DKF_CHECK(blocklengths.size() == displacement_bytes.size());
  DKF_CHECK(blocklengths.size() == types.size());
  auto t = std::shared_ptr<Datatype>(new Datatype());
  t->kind_ = Kind::Struct;
  t->id_ = nextId();
  std::size_t total = 0;
  std::int64_t lo = 0, hi = 0;
  bool first = true;
  for (std::size_t i = 0; i < types.size(); ++i) {
    DKF_CHECK(types[i] != nullptr);
    t->children_.push_back(
        Child{types[i], blocklengths[i], displacement_bytes[i]});
    total += blocklengths[i] * types[i]->size();
    const Envelope e =
        childEnvelope(types[i], blocklengths[i], displacement_bytes[i]);
    lo = first ? e.lo : std::min(lo, e.lo);
    hi = first ? e.hi : std::max(hi, e.hi);
    first = false;
  }
  t->size_ = total;
  t->lb_ = first ? 0 : lo;
  t->extent_ = first ? 0 : static_cast<std::size_t>(hi - lo);
  return t;
}

DatatypePtr Datatype::subarray(std::span<const std::size_t> sizes,
                               std::span<const std::size_t> subsizes,
                               std::span<const std::size_t> starts,
                               Order order, DatatypePtr old) {
  DKF_CHECK(old != nullptr);
  const std::size_t ndims = sizes.size();
  DKF_CHECK(ndims > 0);
  DKF_CHECK(subsizes.size() == ndims && starts.size() == ndims);
  for (std::size_t d = 0; d < ndims; ++d) {
    DKF_CHECK_MSG(starts[d] + subsizes[d] <= sizes[d],
                  "subarray dim " << d << " out of bounds");
  }

  // Normalize to C order internally (dimension ndims-1 fastest-varying).
  std::vector<std::size_t> cs(sizes.begin(), sizes.end());
  std::vector<std::size_t> csub(subsizes.begin(), subsizes.end());
  std::vector<std::size_t> cstart(starts.begin(), starts.end());
  if (order == Order::Fortran) {
    std::reverse(cs.begin(), cs.end());
    std::reverse(csub.begin(), csub.end());
    std::reverse(cstart.begin(), cstart.end());
  }

  auto t = std::shared_ptr<Datatype>(new Datatype());
  t->kind_ = Kind::Subarray;
  t->id_ = nextId();
  t->desc_a_ = static_cast<std::int64_t>(ndims);
  t->desc_old_ = old;

  // Row strides (in elements of `old`) for each dimension, C order.
  std::vector<std::size_t> stride(ndims, 1);
  for (std::size_t d = ndims - 1; d > 0; --d) {
    stride[d - 1] = stride[d] * cs[d];
  }

  // Enumerate every contiguous "row" (a run along the fastest dimension).
  std::size_t nrows = 1;
  for (std::size_t d = 0; d + 1 < ndims; ++d) nrows *= csub[d];
  const std::size_t rowlen = ndims > 0 ? csub[ndims - 1] : 0;

  bool empty = rowlen == 0;
  for (std::size_t d = 0; d < ndims; ++d) empty = empty || csub[d] == 0;

  if (!empty) {
    t->children_.reserve(nrows);
    std::vector<std::size_t> idx(ndims > 1 ? ndims - 1 : 0, 0);
    for (std::size_t r = 0; r < nrows; ++r) {
      std::size_t elem_off = cstart[ndims - 1] * stride[ndims - 1];
      for (std::size_t d = 0; d + 1 < ndims; ++d) {
        elem_off += (cstart[d] + idx[d]) * stride[d];
      }
      t->children_.push_back(Child{
          old, rowlen,
          static_cast<std::int64_t>(elem_off * old->extent())});
      // Odometer increment over the slower dimensions.
      for (std::size_t d = ndims - 1; d-- > 0;) {
        if (++idx[d] < csub[d]) break;
        idx[d] = 0;
      }
    }
  }

  std::size_t nelem = 1;
  for (std::size_t d = 0; d < ndims; ++d) nelem *= csub[d];
  std::size_t full = 1;
  for (std::size_t d = 0; d < ndims; ++d) full *= cs[d];
  t->size_ = empty ? 0 : nelem * old->size();
  t->lb_ = 0;
  // Per MPI, a subarray's extent spans the whole containing array.
  t->extent_ = full * old->extent();
  return t;
}

DatatypePtr Datatype::resized(std::int64_t lb, std::size_t extent,
                              DatatypePtr old) {
  DKF_CHECK(old != nullptr);
  auto t = std::shared_ptr<Datatype>(new Datatype());
  t->kind_ = Kind::Resized;
  t->id_ = nextId();
  t->desc_old_ = old;
  t->children_.push_back(Child{std::move(old), 1, 0});
  t->size_ = t->children_[0].type->size();
  t->lb_ = lb;
  t->extent_ = extent;
  return t;
}

bool Datatype::isContiguousType() const {
  // With non-overlapping types (all of ours), size == extent and lb == 0
  // implies a single gap-free run starting at the element origin.
  return size_ == extent_ && lb_ == 0;
}

std::string Datatype::describe() const {
  if (!name_.empty()) return name_;
  std::ostringstream os;
  switch (kind_) {
    case Kind::Primitive:
      return "<anonymous>";
    case Kind::Contiguous:
      os << "contiguous(" << desc_a_ << ", " << desc_old_->describe() << ")";
      break;
    case Kind::Vector:
    case Kind::Hvector:
      os << "hvector(" << children_.size() << ", " << desc_b_ << ", "
         << desc_a_ << "B, " << desc_old_->describe() << ")";
      break;
    case Kind::Indexed:
    case Kind::Hindexed:
    case Kind::IndexedBlock:
      os << "hindexed(" << children_.size() << " blocks, "
         << desc_old_->describe() << ")";
      break;
    case Kind::Struct:
      os << "struct(" << children_.size() << " members)";
      break;
    case Kind::Subarray:
      os << "subarray(" << desc_a_ << "D, " << desc_old_->describe() << ")";
      break;
    case Kind::Resized:
      os << "resized(lb=" << lb_ << ", extent=" << extent_ << ", "
         << desc_old_->describe() << ")";
      break;
  }
  name_ = os.str();
  return name_;
}

}  // namespace dkf::ddt
