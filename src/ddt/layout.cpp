#include "ddt/layout.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace dkf::ddt {

namespace {

/// Sort by offset, drop empty runs, coalesce adjacent runs, reject overlap.
std::vector<Segment> canonicalize(std::vector<Segment> segments) {
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) {
              return a.offset < b.offset;
            });
  std::vector<Segment> merged;
  merged.reserve(segments.size());
  for (const Segment& s : segments) {
    if (s.len == 0) continue;
    if (!merged.empty() &&
        merged.back().offset + static_cast<std::int64_t>(merged.back().len) ==
            s.offset) {
      merged.back().len += s.len;
    } else {
      DKF_CHECK_MSG(
          merged.empty() ||
              s.offset >= merged.back().offset +
                              static_cast<std::int64_t>(merged.back().len),
          "overlapping segments in layout");
      merged.push_back(s);
    }
  }
  return merged;
}

/// Greedily collapse maximal arithmetic progressions of equal-length runs
/// into groups. Input must be canonical; ragged sequences degenerate to
/// run_count == 1 groups (the ungrouped fallback).
std::vector<RunGroup> groupRuns(const std::vector<Segment>& segments) {
  std::vector<RunGroup> groups;
  for (const Segment& s : segments) {
    if (!groups.empty()) {
      RunGroup& g = groups.back();
      if (s.len == g.run_len) {
        if (g.run_count == 1) {
          g.stride = s.offset - g.base_offset;
          g.run_count = 2;
          continue;
        }
        if (s.offset ==
            g.base_offset +
                static_cast<std::int64_t>(g.run_count) * g.stride) {
          ++g.run_count;
          continue;
        }
      }
    }
    groups.push_back(RunGroup{s.offset, s.len, 0, 1});
  }
  return groups;
}

std::int64_t groupEnd(const RunGroup& g) {
  return g.base_offset +
         static_cast<std::int64_t>(g.run_count - 1) * g.stride +
         static_cast<std::int64_t>(g.run_len);
}

}  // namespace

// --------------------------------------------------------------- Layout ----

Layout::Layout(std::vector<Segment> segments, std::size_t extent) {
  head_ = groupRuns(canonicalize(std::move(segments)));
  finalize(extent);
}

Layout Layout::fromElement(std::vector<Segment> elem, std::size_t elem_extent,
                           std::size_t count) {
  Layout l;
  if (count == 0 || elem.empty()) {
    l.finalize(count * elem_extent);
    return l;
  }
  if (count == 1) {
    l.body_ = groupRuns(elem);
    l.body_reps_ = 1;
    // Not used for emission (rep 0 is unshifted) but keeps the signature of
    // a single element equal to that of any count of a cleanly repeating
    // type — count-independence must include count == 1.
    l.body_stride_ = static_cast<std::int64_t>(elem_extent);
    l.finalize(elem_extent);
    return l;
  }

  const std::int64_t e = static_cast<std::int64_t>(elem_extent);
  const std::int64_t first = elem.front().offset;
  const std::int64_t span_end =
      elem.back().offset + static_cast<std::int64_t>(elem.back().len);

  if (span_end > first + e) {
    // Non-periodic: the element overhangs its extent (resized() can shrink
    // it), so consecutive elements interleave. Materialize and re-sort —
    // the one case the compressed form cannot express symbolically.
    std::vector<Segment> all;
    all.reserve(elem.size() * count);
    for (std::size_t r = 0; r < count; ++r) {
      const std::int64_t shift = static_cast<std::int64_t>(r) * e;
      for (const Segment& s : elem) {
        all.push_back(Segment{s.offset + shift, s.len});
      }
    }
    l.head_ = groupRuns(canonicalize(std::move(all)));
    l.finalize(count * elem_extent);
    return l;
  }

  if (span_end == first + e) {
    // The element's last run touches the next element's first run: they
    // coalesce at every boundary, exactly as the seed's global sort+merge
    // produced.
    if (elem.size() == 1) {
      // Gap-free element: the whole layout is one contiguous run.
      l.body_.push_back(
          RunGroup{first, count * elem_extent, 0, 1});
      l.body_reps_ = 1;
    } else {
      // head: the first element's first run, intact.
      // body: runs 1..k-2 plus the merged (last + next-first) run, once per
      //       boundary — count-1 repetitions spaced by the extent.
      // tail: the last element's runs 1..k-1 (its first run was absorbed by
      //       the final merged run).
      const Segment& s0 = elem.front();
      const Segment& sk = elem.back();
      l.head_ = groupRuns({s0});
      std::vector<Segment> period(elem.begin() + 1, elem.end() - 1);
      period.push_back(Segment{sk.offset, sk.len + s0.len});
      l.body_ = groupRuns(period);
      l.body_reps_ = count - 1;
      l.body_stride_ = e;
      const std::int64_t last_shift = static_cast<std::int64_t>(count - 1) * e;
      std::vector<Segment> tail(elem.begin() + 1, elem.end());
      for (Segment& s : tail) s.offset += last_shift;
      l.tail_ = groupRuns(tail);
    }
    l.finalize(count * elem_extent);
    return l;
  }

  // Clean repetition: elements neither touch nor interleave.
  l.body_ = groupRuns(elem);
  l.body_reps_ = count;
  l.body_stride_ = e;
  l.finalize(count * elem_extent);
  return l;
}

void Layout::finalize(std::size_t extent) {
  extent_ = extent;
  size_ = 0;
  block_count_ = 0;
  min_block_ = 0;
  max_block_ = 0;
  const auto accumulate = [&](const std::vector<RunGroup>& groups,
                              std::size_t reps) {
    for (const RunGroup& g : groups) {
      size_ += reps * g.run_count * g.run_len;
      block_count_ += reps * g.run_count;
      min_block_ = min_block_ == 0 ? g.run_len
                                   : std::min(min_block_, g.run_len);
      max_block_ = std::max(max_block_, g.run_len);
    }
  };
  accumulate(head_, 1);
  accumulate(body_, body_reps_);
  accumulate(tail_, 1);
  if (body_reps_ == 0) body_.clear();

  min_offset_ = 0;
  end_offset_ = 0;
  if (!head_.empty()) {
    min_offset_ = head_.front().base_offset;
  } else if (!body_.empty()) {
    min_offset_ = body_.front().base_offset;
  } else if (!tail_.empty()) {
    min_offset_ = tail_.front().base_offset;
  }
  if (!tail_.empty()) {
    end_offset_ = groupEnd(tail_.back());
  } else if (!body_.empty()) {
    end_offset_ = groupEnd(body_.back()) +
                  static_cast<std::int64_t>(body_reps_ - 1) * body_stride_;
  } else if (!head_.empty()) {
    end_offset_ = groupEnd(head_.back());
  }

  // Canonical signature: FNV-1a over the group structure, excluding
  // body_reps_ and extent, with tail offsets shifted back by the body span —
  // see Layout::signature() for the count-independence contract.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mixGroup = [&](const RunGroup& g, std::int64_t shift) {
    mix(static_cast<std::uint64_t>(g.base_offset - shift));
    mix(g.run_len);
    mix(static_cast<std::uint64_t>(g.stride));
    mix(g.run_count);
  };
  mix(head_.size());
  for (const RunGroup& g : head_) mixGroup(g, 0);
  mix(body_.size());
  mix(static_cast<std::uint64_t>(body_stride_));
  for (const RunGroup& g : body_) mixGroup(g, 0);
  mix(tail_.size());
  const std::int64_t tail_shift =
      static_cast<std::int64_t>(body_reps_) * body_stride_;
  for (const RunGroup& g : tail_) mixGroup(g, tail_shift);
  signature_ = h;
}

double Layout::meanBlock() const {
  if (block_count_ == 0) return 0.0;
  return static_cast<double>(size_) / static_cast<double>(block_count_);
}

double Layout::density() const {
  if (extent_ == 0) return 1.0;
  return static_cast<double>(size_) / static_cast<double>(extent_);
}

std::vector<Segment> Layout::materialize() const {
  std::vector<Segment> segments;
  segments.reserve(block_count_);
  forEachRun([&](std::int64_t offset, std::size_t len) {
    segments.push_back(Segment{offset, len});
  });
  return segments;
}

const std::vector<RunGroup>* Layout::RunCursor::groups() const {
  switch (section_) {
    case 0: return &l_->head_;
    case 1: return &l_->body_;
    default: return &l_->tail_;
  }
}

void Layout::RunCursor::settle() {
  while (section_ < 3) {
    if (section_ == 1 && l_->body_reps_ == 0) {
      ++section_;
      continue;
    }
    if (groups()->empty()) {
      ++section_;
      continue;
    }
    return;
  }
}

void Layout::RunCursor::next() {
  const RunGroup& g = (*groups())[group_];
  if (++run_ < g.run_count) return;
  run_ = 0;
  if (++group_ < groups()->size()) return;
  group_ = 0;
  if (section_ == 1 && ++rep_ < l_->body_reps_) return;
  rep_ = 0;
  ++section_;
  settle();
}

// -------------------------------------------------------------- flatten ----

Layout flatten(const DatatypePtr& type, std::size_t count) {
  DKF_CHECK(type != nullptr);
  std::vector<Segment> elem;
  type->forEachBlock(1, [&](std::int64_t offset, std::size_t len) {
    elem.push_back(Segment{offset, len});
  });
  return Layout::fromElement(canonicalize(std::move(elem)), type->extent(),
                             count);
}

// ---------------------------------------------------------- LayoutCache ----

LayoutCache::LayoutCache(LayoutCacheLimits limits) : limits_(limits) {}

void LayoutCache::touch(Entry& e) {
  lru_.splice(lru_.begin(), lru_, e.lru);
}

void LayoutCache::insert(Key key, Entry e) {
  lru_.push_front(key);
  e.lru = lru_.begin();
  resident_bytes_ += e.bytes;
  if (key.elem) {
    ++element_entries_;
  } else {
    ++derived_entries_;
  }
  cache_.emplace(key, std::move(e));
}

void LayoutCache::enforceBudget(const Key& keep0, const Key& keep1) {
  const auto overBudget = [&] {
    return (limits_.max_entries != 0 && cache_.size() > limits_.max_entries) ||
           (limits_.max_bytes != 0 && resident_bytes_ > limits_.max_bytes);
  };
  auto victim = lru_.end();
  while (overBudget() && victim != lru_.begin()) {
    --victim;
    if (*victim == keep0 || *victim == keep1) continue;
    const Key key = *victim;
    const auto it = cache_.find(key);
    victim = lru_.erase(victim);
    resident_bytes_ -= it->second.bytes;
    if (key.elem) {
      --element_entries_;
    } else {
      --derived_entries_;
    }
    cache_.erase(it);
    ++counters_.evictions;
    if (tracer_ && tracer_->isEnabled()) {
      tracer_->counter(trace_name_ + ".evictions", clock_->now(),
                       static_cast<double>(counters_.evictions));
    }
  }
}

void LayoutCache::sampleTrace() {
  if (!tracer_ || !tracer_->isEnabled()) return;
  const TimeNs now = clock_->now();
  tracer_->counter(trace_name_ + ".resident_bytes", now,
                   static_cast<double>(resident_bytes_));
  tracer_->counter(trace_name_ + ".entries", now,
                   static_cast<double>(cache_.size()));
}

LayoutPtr LayoutCache::get(const DatatypePtr& type, std::size_t count) {
  DKF_CHECK(type != nullptr);
  const Key derived_key{type->id(), count, false};
  if (const auto it = cache_.find(derived_key); it != cache_.end()) {
    ++counters_.hits;
    touch(it->second);
    return it->second.layout;
  }

  // Element form: one flatten per distinct type, ever.
  const Key elem_key{type->id(), 0, true};
  std::shared_ptr<const ElementForm> form;
  if (const auto it = cache_.find(elem_key); it != cache_.end()) {
    ++counters_.hits;
    ++counters_.derivations;
    touch(it->second);
    form = it->second.form;
  } else {
    ++counters_.misses;
    auto fresh = std::make_shared<ElementForm>();
    type->forEachBlock(1, [&](std::int64_t offset, std::size_t len) {
      fresh->segments.push_back(Segment{offset, len});
    });
    fresh->segments = canonicalize(std::move(fresh->segments));
    fresh->extent = type->extent();
    form = fresh;
    Entry e;
    e.form = form;
    e.bytes = form->heapBytes();
    insert(elem_key, std::move(e));
  }

  auto layout = std::make_shared<const Layout>(
      Layout::fromElement(form->segments, form->extent, count));
  Entry e;
  e.layout = layout;
  e.bytes = layout->compressedBytes();
  insert(derived_key, std::move(e));
  enforceBudget(derived_key, elem_key);
  sampleTrace();
  return layout;
}

void LayoutCache::clear() {
  cache_.clear();
  lru_.clear();
  counters_ = LayoutCacheCounters{};
  resident_bytes_ = 0;
  derived_entries_ = 0;
  element_entries_ = 0;
}

void LayoutCache::setTracer(sim::Tracer* tracer, const sim::Engine* clock,
                            const std::string& name) {
  tracer_ = tracer;
  clock_ = clock;
  trace_name_ = name;
}

}  // namespace dkf::ddt
