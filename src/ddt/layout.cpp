#include "ddt/layout.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dkf::ddt {

Layout::Layout(std::vector<Segment> segments, std::size_t extent)
    : segments_(std::move(segments)), extent_(extent) {
  // Canonicalize: sort by offset, then coalesce adjacent runs.
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.offset < b.offset;
            });
  std::vector<Segment> merged;
  merged.reserve(segments_.size());
  for (const Segment& s : segments_) {
    if (s.len == 0) continue;
    if (!merged.empty() &&
        merged.back().offset + static_cast<std::int64_t>(merged.back().len) ==
            s.offset) {
      merged.back().len += s.len;
    } else {
      DKF_CHECK_MSG(
          merged.empty() ||
              s.offset >= merged.back().offset +
                              static_cast<std::int64_t>(merged.back().len),
          "overlapping segments in layout");
      merged.push_back(s);
    }
  }
  segments_ = std::move(merged);
  size_ = 0;
  min_block_ = 0;
  max_block_ = 0;
  for (const Segment& s : segments_) {
    size_ += s.len;
    min_block_ = min_block_ == 0 ? s.len : std::min(min_block_, s.len);
    max_block_ = std::max(max_block_, s.len);
  }
}

double Layout::meanBlock() const {
  if (segments_.empty()) return 0.0;
  return static_cast<double>(size_) / static_cast<double>(segments_.size());
}

double Layout::density() const {
  if (extent_ == 0) return 1.0;
  return static_cast<double>(size_) / static_cast<double>(extent_);
}

std::int64_t Layout::endOffset() const {
  return segments_.empty()
             ? 0
             : segments_.back().offset +
                   static_cast<std::int64_t>(segments_.back().len);
}

Layout flatten(const DatatypePtr& type, std::size_t count) {
  DKF_CHECK(type != nullptr);
  std::vector<Segment> segments;
  type->forEachBlock(count, [&](std::int64_t offset, std::size_t len) {
    segments.push_back(Segment{offset, len});
  });
  return Layout(std::move(segments), count * type->extent());
}

LayoutPtr LayoutCache::get(const DatatypePtr& type, std::size_t count) {
  const auto key = std::make_pair(type->id(), count);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto layout = std::make_shared<const Layout>(flatten(type, count));
  cache_.emplace(key, layout);
  return layout;
}

void LayoutCache::clear() {
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace dkf::ddt
