// Bit-exact reference pack/unpack over compressed canonical layouts.
//
// These host-side routines are the semantic ground truth for every scheme in
// the simulator: the GPU pack kernels, the GDRCopy hybrid path, DirectIPC,
// and the naive per-block copies all reduce to these byte movements (what
// differs between schemes is *when* and *at what modeled cost* they happen).
#pragma once

#include <cstddef>
#include <span>

#include "ddt/layout.hpp"

namespace dkf::ddt {

/// Gather: copy every layout run of `origin` into `packed` back-to-back.
/// `origin` must cover [minOffset, endOffset) of the layout; `packed` must
/// hold at least layout.size() bytes. Returns the number of bytes packed.
std::size_t packCpu(const Layout& layout, std::span<const std::byte> origin,
                    std::span<std::byte> packed);

/// Scatter: inverse of packCpu.
std::size_t unpackCpu(const Layout& layout, std::span<const std::byte> packed,
                      std::span<std::byte> origin);

/// Direct strided copy between two non-contiguous buffers with identical
/// total size (the DirectIPC operation of [24]): logically pack(src) followed
/// by unpack(dst) without materializing the intermediate buffer.
std::size_t copyStrided(const Layout& src_layout,
                        std::span<const std::byte> src,
                        const Layout& dst_layout, std::span<std::byte> dst);

}  // namespace dkf::ddt
