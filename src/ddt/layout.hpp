// Flattened datatype layouts and the layout cache.
//
// `flatten(type, count)` lowers a datatype tree to its canonical list of
// contiguous byte runs ("flattening on the fly", Träff et al. [35]): adjacent
// runs are coalesced and the list carries the statistics the schemes use for
// their heuristics — block count, min/mean block size, density. The paper's
// sparse-vs-dense classification (§V-A: sparse ≥ thousands of small blocks)
// is computed here.
//
// `LayoutCache` memoizes flattening keyed by (datatype id, count), the layout
// caching scheme of Chu et al. [24] that the fusion framework's requests
// reference ("data layout: the cached data layout entry", §IV-A1).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ddt/datatype.hpp"

namespace dkf::ddt {

/// One contiguous byte run: `offset` bytes from the buffer origin, `len`
/// bytes long. Offsets may be produced negative by exotic lb/stride types;
/// packing requires them non-negative and checks.
struct Segment {
  std::int64_t offset{0};
  std::size_t len{0};

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Canonical flattened layout of (type, count).
class Layout {
 public:
  Layout() = default;
  Layout(std::vector<Segment> segments, std::size_t extent);

  const std::vector<Segment>& segments() const { return segments_; }
  /// Total data bytes (sum of segment lengths).
  std::size_t size() const { return size_; }
  /// Byte span covered in the origin buffer (count * type extent).
  std::size_t extent() const { return extent_; }
  std::size_t blockCount() const { return segments_.size(); }
  std::size_t minBlock() const { return min_block_; }
  std::size_t maxBlock() const { return max_block_; }
  /// Average contiguous run length; the GPU access-efficiency model and the
  /// hybrid scheme's dense/sparse heuristic key off this.
  double meanBlock() const;
  /// size / extent in (0,1]; 1 means gap-free.
  double density() const;
  bool isContiguous() const {
    return segments_.size() <= 1 && size_ == extent_;
  }
  /// Lowest byte offset touched (0 for empty layouts).
  std::int64_t minOffset() const {
    return segments_.empty() ? 0 : segments_.front().offset;
  }
  /// One past the highest byte offset touched.
  std::int64_t endOffset() const;

 private:
  std::vector<Segment> segments_;  // sorted by offset, coalesced
  std::size_t size_{0};
  std::size_t extent_{0};
  std::size_t min_block_{0};
  std::size_t max_block_{0};
};

using LayoutPtr = std::shared_ptr<const Layout>;

/// Flatten `count` elements of `type` into a canonical layout.
Layout flatten(const DatatypePtr& type, std::size_t count);

/// Memoizing cache over flatten(), keyed by (type id, count).
class LayoutCache {
 public:
  /// Returns the cached layout, flattening on first use.
  LayoutPtr get(const DatatypePtr& type, std::size_t count);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t entries() const { return cache_.size(); }
  void clear();

 private:
  std::map<std::pair<std::uint64_t, std::size_t>, LayoutPtr> cache_;
  std::size_t hits_{0};
  std::size_t misses_{0};
};

}  // namespace dkf::ddt
