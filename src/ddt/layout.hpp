// Count-compressed canonical datatype layouts and the layout cache.
//
// `flatten(type, count)` lowers a datatype tree to its canonical sequence of
// contiguous byte runs ("flattening on the fly", Träff et al. [35]): runs are
// sorted by offset and adjacent runs are coalesced. Unlike a flat segment
// list, the canonical form is *count-compressed* (the TEMPI canonical strided
// representation of Pearson et al.): equal-length, equally-spaced runs
// collapse into a single `RunGroup`, and the `count`-fold repetition of the
// single-element layout is kept symbolic as a body section repeated `count`
// times at the type's extent. Flattening therefore costs O(blocks-per-element)
// regardless of `count`, and a layout occupies O(blocks-per-element) memory
// where the seed implementation materialized count x blocks segments.
//
// The layout carries the statistics the schemes use for their heuristics —
// block count, min/mean block size, density — all computed in O(groups) and
// bit-identical to the segment-materialized values. The paper's
// sparse-vs-dense classification (§V-A: sparse >= thousands of small blocks)
// is computed here.
//
// `LayoutCache` memoizes flattening, the layout caching scheme of Chu et
// al. [24] that the fusion framework's requests reference ("data layout: the
// cached data layout entry", §IV-A1). It caches the *per-element* canonical
// form keyed by datatype id — so a count sweep over one type flattens exactly
// once — plus an LRU of derived (type, count) layouts bounded by a
// configurable entry/byte budget.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "ddt/datatype.hpp"

namespace dkf::sim {
class Tracer;
class Engine;
}  // namespace dkf::sim

namespace dkf::ddt {

/// One contiguous byte run: `offset` bytes from the buffer origin, `len`
/// bytes long. Offsets may be produced negative by exotic lb/stride types;
/// packing requires them non-negative and checks.
struct Segment {
  std::int64_t offset{0};
  std::size_t len{0};

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// `run_count` runs of `run_len` bytes each, the first at `base_offset` and
/// consecutive run starts `stride` bytes apart. A group with run_count == 1
/// is a single ungrouped run (stride 0 by convention); ragged layouts whose
/// runs form no arithmetic progression degenerate to all-ungrouped groups.
struct RunGroup {
  std::int64_t base_offset{0};
  std::size_t run_len{0};
  std::int64_t stride{0};
  std::size_t run_count{1};

  friend bool operator==(const RunGroup&, const RunGroup&) = default;
};

/// Canonical count-compressed layout of (type, count).
///
/// The run sequence is three sections emitted in order:
///   head  — groups emitted once (prologue of a boundary-coalesced repeat);
///   body  — groups emitted `bodyRepetitions()` times, instance r shifted by
///           r * bodyStride() bytes (the element-repetition descriptor);
///   tail  — groups emitted once (epilogue, already shifted).
/// The concatenated sequence is sorted by offset with adjacent runs merged —
/// exactly the seed's canonical segment list, never materialized.
class Layout {
 public:
  Layout() = default;
  /// Canonicalize an explicit run list (sort, coalesce, reject overlap) into
  /// a head-only layout, grouping whatever arithmetic progressions exist.
  Layout(std::vector<Segment> segments, std::size_t extent);

  /// Build the layout of `count` elements from the *canonical* (sorted,
  /// coalesced) single-element run list, in O(runs-per-element) for periodic
  /// layouts. Non-periodic layouts (element span overhanging the extent, as
  /// resized() can produce) fall back to materializing all count x runs.
  static Layout fromElement(std::vector<Segment> element_segments,
                            std::size_t element_extent, std::size_t count);

  /// Total data bytes (sum of run lengths).
  std::size_t size() const { return size_; }
  /// Byte span covered in the origin buffer (count * type extent).
  std::size_t extent() const { return extent_; }
  std::size_t blockCount() const { return block_count_; }
  std::size_t minBlock() const { return min_block_; }
  std::size_t maxBlock() const { return max_block_; }
  /// Average contiguous run length; the GPU access-efficiency model and the
  /// hybrid scheme's dense/sparse heuristic key off this.
  double meanBlock() const;
  /// size / extent in (0,1]; 1 means gap-free.
  double density() const;
  bool isContiguous() const { return block_count_ <= 1 && size_ == extent_; }
  /// Lowest byte offset touched (0 for empty layouts).
  std::int64_t minOffset() const { return min_offset_; }
  /// One past the highest byte offset touched.
  std::int64_t endOffset() const { return end_offset_; }

  /// Canonical structural signature (FNV-1a over the compressed sections).
  /// *Count-independent* for periodic layouts: the hash covers head/body/tail
  /// group structure and the body stride but NOT the repetition count (tail
  /// offsets are normalized by the body span), so (type, m) and (type, n)
  /// hash equal for any m, n >= 1 of a cleanly repeating type and any
  /// m, n >= 2 of a boundary-coalescing one. Only the non-periodic
  /// materialized fallback (overhanging resized types) and fully contiguous
  /// layouts keep a count-dependent signature — their structure genuinely
  /// changes with count. This is the plan-cache key: one compiled FusionPlan
  /// serves a whole count sweep over the same datatype.
  std::uint64_t signature() const { return signature_; }

  // ---- Run enumeration (canonical order, nothing materialized) ----

  /// Visit every run as (offset, len), sorted by offset and coalesced.
  template <class F>
  void forEachRun(F&& emit) const {
    for (const RunGroup& g : head_) emitGroup(g, 0, emit);
    for (std::size_t r = 0; r < body_reps_; ++r) {
      const std::int64_t shift =
          static_cast<std::int64_t>(r) * body_stride_;
      for (const RunGroup& g : body_) emitGroup(g, shift, emit);
    }
    for (const RunGroup& g : tail_) emitGroup(g, 0, emit);
  }

  /// O(1)-state cursor over the run sequence; lets two layouts be walked in
  /// lockstep (copyStrided) without materializing either side.
  class RunCursor {
   public:
    explicit RunCursor(const Layout& layout) : l_(&layout) { settle(); }
    bool done() const { return section_ == 3; }
    std::int64_t offset() const {
      const RunGroup& g = (*groups())[group_];
      std::int64_t off = g.base_offset +
                         static_cast<std::int64_t>(run_) * g.stride;
      if (section_ == 1) off += static_cast<std::int64_t>(rep_) * l_->body_stride_;
      return off;
    }
    std::size_t len() const { return (*groups())[group_].run_len; }
    void next();

   private:
    const std::vector<RunGroup>* groups() const;
    void settle();

    const Layout* l_;
    int section_{0};  // 0 = head, 1 = body, 2 = tail, 3 = end
    std::size_t group_{0};
    std::size_t rep_{0};
    std::size_t run_{0};
  };

  RunCursor runs() const { return RunCursor(*this); }

  /// Materialize the full segment list (tests and per-run consumers only —
  /// O(count x runs) memory, the cost the compressed form exists to avoid).
  std::vector<Segment> materialize() const;

  // ---- Compressed-form introspection ----

  /// Run groups across all three sections.
  std::size_t groupCount() const {
    return head_.size() + body_.size() + tail_.size();
  }
  std::size_t bodyRepetitions() const { return body_reps_; }
  std::int64_t bodyStride() const { return body_stride_; }
  /// Heap bytes held by the compressed representation.
  std::size_t compressedBytes() const {
    return (head_.capacity() + body_.capacity() + tail_.capacity()) *
           sizeof(RunGroup);
  }

 private:
  template <class F>
  static void emitGroup(const RunGroup& g, std::int64_t shift, F&& emit) {
    std::int64_t off = g.base_offset + shift;
    for (std::size_t j = 0; j < g.run_count; ++j, off += g.stride) {
      emit(off, g.run_len);
    }
  }

  /// Compute the cached statistics from the populated sections.
  void finalize(std::size_t extent);

  std::vector<RunGroup> head_;
  std::vector<RunGroup> body_;
  std::vector<RunGroup> tail_;
  std::size_t body_reps_{0};
  std::int64_t body_stride_{0};

  std::size_t size_{0};
  std::size_t extent_{0};
  std::size_t block_count_{0};
  std::size_t min_block_{0};
  std::size_t max_block_{0};
  std::int64_t min_offset_{0};
  std::int64_t end_offset_{0};
  std::uint64_t signature_{0};
};

using LayoutPtr = std::shared_ptr<const Layout>;

/// Flatten `count` elements of `type` into a canonical compressed layout in
/// O(blocks-per-element) (plus the one-off cost of the non-periodic
/// fallback, which only ragged resized/overhanging types take).
Layout flatten(const DatatypePtr& type, std::size_t count);

/// Entry/byte budget for the layout cache (see LayoutCache).
struct LayoutCacheLimits {
  /// Max resident entries (derived layouts + element forms). 0 = unbounded.
  std::size_t max_entries{4096};
  /// Max resident compressed-form bytes. 0 = unbounded.
  std::size_t max_bytes{8u << 20};
};

/// Lifetime counters of the cache. A *miss* is a get() that had to flatten
/// the element form (the only O(blocks) work); everything else — including a
/// new count derived from a cached element form — is a *hit*.
struct LayoutCacheCounters {
  std::size_t hits{0};
  std::size_t misses{0};
  /// Hits that built a count-specific layout from the cached element form.
  std::size_t derivations{0};
  std::size_t evictions{0};
};

/// Memoizing cache over flatten(). Two levels, one LRU:
///   element forms, keyed by type id  — the canonical single-element run
///     list; one flatten per distinct type, any count derivable in O(runs);
///   derived layouts, keyed by (type id, count) — the shared Layout handles
///     requests reference.
/// Both levels live in one LRU list bounded by LayoutCacheLimits.
class LayoutCache {
 public:
  LayoutCache() : LayoutCache(LayoutCacheLimits{}) {}
  explicit LayoutCache(LayoutCacheLimits limits);

  /// Returns the cached layout, flattening the element form on first use of
  /// the type and deriving the (type, count) layout on first use of the pair.
  LayoutPtr get(const DatatypePtr& type, std::size_t count);

  const LayoutCacheCounters& counters() const { return counters_; }
  std::size_t hits() const { return counters_.hits; }
  std::size_t misses() const { return counters_.misses; }
  std::size_t evictions() const { return counters_.evictions; }
  /// Compressed-form bytes currently resident (both levels).
  std::size_t residentBytes() const { return resident_bytes_; }
  /// Derived (type, count) layouts resident.
  std::size_t entries() const { return derived_entries_; }
  /// Per-element canonical forms resident.
  std::size_t elementForms() const { return element_entries_; }
  const LayoutCacheLimits& limits() const { return limits_; }

  /// Drop all entries and reset the counters.
  void clear();

  /// Attach a tracer (nullptr detaches): resident bytes/entries become a
  /// counter series named "<name>.*" sampled at `clock`'s current time, and
  /// evictions emit instants. `clock` outlives the cache.
  void setTracer(sim::Tracer* tracer, const sim::Engine* clock,
                 const std::string& name = "layout_cache");

 private:
  struct ElementForm {
    std::vector<Segment> segments;  // canonical: sorted, coalesced
    std::size_t extent{0};
    std::size_t heapBytes() const {
      return segments.capacity() * sizeof(Segment);
    }
  };
  /// count is meaningless for element forms (flagged by `elem`).
  struct Key {
    std::uint64_t id{0};
    std::size_t count{0};
    bool elem{false};
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Entry {
    LayoutPtr layout;                         // derived entries
    std::shared_ptr<const ElementForm> form;  // element entries
    std::size_t bytes{0};
    std::list<Key>::iterator lru;
  };

  void touch(Entry& e);
  void insert(Key key, Entry e);
  /// Evict LRU entries until within budget, never touching `keep0`/`keep1`
  /// (the entries serving the current get()).
  void enforceBudget(const Key& keep0, const Key& keep1);
  void sampleTrace();

  LayoutCacheLimits limits_;
  std::map<Key, Entry> cache_;
  std::list<Key> lru_;  // front = most recently used
  LayoutCacheCounters counters_;
  std::size_t resident_bytes_{0};
  std::size_t derived_entries_{0};
  std::size_t element_entries_{0};

  sim::Tracer* tracer_{nullptr};
  const sim::Engine* clock_{nullptr};
  std::string trace_name_;
};

}  // namespace dkf::ddt
