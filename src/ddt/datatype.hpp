// MPI derived-datatype algebra.
//
// `Datatype` is an immutable tree mirroring the MPI type constructors the
// paper's workloads use (vector for NAS_MG, nested vector for MILC, indexed
// for specfem3D_oc, struct-on-indexed for specfem3D_cm, plus the rest of the
// standard constructors for completeness). Types are built through static
// factories returning shared_ptr<const Datatype>; sharing makes nested types
// cheap and gives each distinct type a stable `id()` used as the layout-cache
// key.
//
// Units follow MPI semantics:
//  - vector/indexed displacements and strides count in multiples of the old
//    type's *extent*;
//  - hvector/hindexed/struct displacements count in *bytes*.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace dkf::ddt {

class Datatype;
using DatatypePtr = std::shared_ptr<const Datatype>;

class Datatype {
 public:
  enum class Kind {
    Primitive,
    Contiguous,
    Vector,
    Hvector,
    Indexed,
    Hindexed,
    IndexedBlock,
    Struct,
    Subarray,
    Resized,
  };

  /// Array storage order for subarray types.
  enum class Order { C, Fortran };

  // ---- Predefined primitives (singletons) ----
  static DatatypePtr byte();
  static DatatypePtr char_();
  static DatatypePtr int32();
  static DatatypePtr int64();
  static DatatypePtr float32();
  static DatatypePtr float64();
  /// A 2-double complex, as used by MILC su3 matrices.
  static DatatypePtr complexDouble();

  // ---- Derived constructors (MPI_Type_create_*) ----
  static DatatypePtr contiguous(std::size_t count, DatatypePtr old);
  static DatatypePtr vector(std::size_t count, std::size_t blocklength,
                            std::int64_t stride, DatatypePtr old);
  static DatatypePtr hvector(std::size_t count, std::size_t blocklength,
                             std::int64_t stride_bytes, DatatypePtr old);
  static DatatypePtr indexed(std::span<const std::size_t> blocklengths,
                             std::span<const std::int64_t> displacements,
                             DatatypePtr old);
  static DatatypePtr hindexed(std::span<const std::size_t> blocklengths,
                              std::span<const std::int64_t> displacement_bytes,
                              DatatypePtr old);
  static DatatypePtr indexedBlock(std::size_t blocklength,
                                  std::span<const std::int64_t> displacements,
                                  DatatypePtr old);
  static DatatypePtr struct_(std::span<const std::size_t> blocklengths,
                             std::span<const std::int64_t> displacement_bytes,
                             std::span<const DatatypePtr> types);
  static DatatypePtr subarray(std::span<const std::size_t> sizes,
                              std::span<const std::size_t> subsizes,
                              std::span<const std::size_t> starts,
                              Order order, DatatypePtr old);
  static DatatypePtr resized(std::int64_t lb, std::size_t extent,
                             DatatypePtr old);

  Kind kind() const { return kind_; }
  /// Unique, process-wide stable identifier (layout-cache key component).
  std::uint64_t id() const { return id_; }
  /// Number of data bytes one element of this type carries (MPI_Type_size).
  std::size_t size() const { return size_; }
  /// Lower bound in bytes (usually 0; settable via resized()).
  std::int64_t lb() const { return lb_; }
  /// Extent in bytes: the stride between consecutive elements of this type
  /// in an array (MPI_Type_get_extent; no alignment epsilon is applied).
  std::size_t extent() const { return extent_; }
  /// True if the type describes one gap-free byte run.
  bool isContiguousType() const;
  /// Human-readable description, e.g. "hvector(16, 4, 32B, double)".
  /// Computed on first use and cached: eager construction cost O(depth^2)
  /// string work per nested constructor, which dominated type building for
  /// deep trees.
  std::string describe() const;

  /// Visit every contiguous byte run of `count` elements of this type laid
  /// out starting at byte offset 0 (elements spaced by extent()). Runs are
  /// emitted in type-definition order and are NOT coalesced; callers wanting
  /// a canonical layout use flatten() from layout.hpp.
  template <class F>
  void forEachBlock(std::size_t count, F&& emit) const {
    for (std::size_t i = 0; i < count; ++i) {
      emitBlocks(static_cast<std::int64_t>(i * extent_) + lbOffsetFix(), emit);
    }
  }

  ~Datatype() = default;

 private:
  struct Child {
    DatatypePtr type;
    std::size_t blocklength{1};
    std::int64_t displacement_bytes{0};
  };

  Datatype() = default;

  template <class F>
  void emitBlocks(std::int64_t base, F&& emit) const;

  std::int64_t lbOffsetFix() const { return 0; }

  static DatatypePtr makePrimitive(std::string name, std::size_t size);
  /// Shared builder behind indexed()/hindexed()/indexedBlock(): identical
  /// layout algebra, `kind` threaded through for accurate introspection.
  static DatatypePtr hindexedAs(Kind kind,
                                std::span<const std::size_t> blocklengths,
                                std::span<const std::int64_t> displacement_bytes,
                                DatatypePtr old);
  static std::uint64_t nextId();

  Kind kind_{Kind::Primitive};
  std::uint64_t id_{0};
  /// Cached describe() text: set eagerly for primitives (a fixed string),
  /// built on demand for derived types from the describe parameters below.
  mutable std::string name_;
  // describe() parameters, meaning per kind (see describe()).
  std::int64_t desc_a_{0};
  std::int64_t desc_b_{0};
  DatatypePtr desc_old_;
  std::size_t size_{0};
  std::int64_t lb_{0};
  std::size_t extent_{0};
  // Generic child list: every derived constructor lowers to
  // (type, blocklength, byte displacement) triples, which keeps
  // flattening a single recursion.
  std::vector<Child> children_;
};

template <class F>
void Datatype::emitBlocks(std::int64_t base, F&& emit) const {
  if (kind_ == Kind::Primitive) {
    if (size_ > 0) emit(base, size_);
    return;
  }
  for (const Child& c : children_) {
    const std::int64_t start = base + c.displacement_bytes;
    if (c.type->isContiguousType()) {
      // A run of `blocklength` contiguous elements collapses to one block.
      const std::size_t len = c.blocklength * c.type->size();
      if (len > 0) emit(start, len);
    } else {
      for (std::size_t b = 0; b < c.blocklength; ++b) {
        c.type->emitBlocks(
            start + static_cast<std::int64_t>(b * c.type->extent()), emit);
      }
    }
  }
}

}  // namespace dkf::ddt
