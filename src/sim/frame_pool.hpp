// Per-thread free lists for coroutine frames (sim/task.hpp hooks these
// into every Task promise).
//
// The hot paths create one frame per message (activation coroutines) plus
// a handful per wait poll (progressOnce/progressPass/flush) — with the
// payload plane (net/payload.hpp) and the request arena
// (mpi/request_arena.hpp) in place, frames were the last steady-state
// allocation per message. Frames round up to a 64-byte granule and
// recycle through a per-thread bucket array; blocks freed on a different
// thread than they were allocated simply migrate to the freeing thread's
// cache (each cache is thread-local, so there is no sharing to race on —
// parallelFor sweeps run whole engines per worker thread).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dkf::sim {

/// Calling thread's lifetime counters: `heap_allocs` hit the allocator,
/// `reuses` came from the cache.
struct FramePoolStats {
  std::uint64_t heap_allocs{0};
  std::uint64_t reuses{0};
};

void* frameAlloc(std::size_t bytes);
void frameFree(void* p, std::size_t bytes) noexcept;
const FramePoolStats& framePoolStats() noexcept;

}  // namespace dkf::sim
