// Execution tracing: records spans (begin/end) and instant events on named
// tracks in virtual time and exports Chrome trace-event JSON
// (chrome://tracing, Perfetto). Used to visualize the communication flows
// of the paper's Fig. 2/Fig. 7 — who launches what, when kernels run, when
// packets fly, and where the overlap happens.
//
// Tracing is opt-in and zero-cost when disabled: a null Tracer drops all
// records. Components take a Tracer& and emit through it; the default
// global tracer is disabled.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dkf::sim {

class Tracer {
 public:
  /// A disabled tracer drops everything (the default).
  Tracer() = default;
  /// An enabled tracer records into memory until exportJson().
  static Tracer enabled() {
    Tracer t;
    t.enabled_ = true;
    return t;
  }

  bool isEnabled() const { return enabled_; }

  /// A track groups related spans (rendered as one row): e.g. "rank0.cpu",
  /// "gpu0.stream2", "fabric.ib0->1". Returns a stable id.
  std::uint32_t track(const std::string& name);

  /// Record a span [begin, end) on `track_id`.
  void span(std::uint32_t track_id, const std::string& name, TimeNs begin,
            TimeNs end, const std::string& category = "span");

  /// Record an instantaneous event.
  void instant(std::uint32_t track_id, const std::string& name, TimeNs at,
               const std::string& category = "event");

  /// Record a counter sample (rendered as a graph in the viewer).
  void counter(const std::string& name, TimeNs at, double value);

  std::size_t eventCount() const {
    return spans_.size() + instants_.size() + counters_.size();
  }

  /// Write Chrome trace-event JSON ("traceEvents" array format).
  /// Timestamps are exported in microseconds (the format's unit) with
  /// nanosecond precision preserved as fractions.
  void exportJson(std::ostream& os) const;

 private:
  struct Span {
    std::uint32_t track;
    std::string name;
    std::string category;
    TimeNs begin;
    TimeNs end;
  };
  struct Instant {
    std::uint32_t track;
    std::string name;
    std::string category;
    TimeNs at;
  };
  struct Counter {
    std::string name;
    TimeNs at;
    double value;
  };

  bool enabled_{false};
  std::vector<std::string> tracks_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<Counter> counters_;
};

/// RAII helper: opens a span at construction time, closes it at the
/// engine's current time when finish() is called (or never records if the
/// tracer is disabled).
class TraceSpan {
 public:
  TraceSpan(Tracer& tracer, std::uint32_t track_id, std::string name,
            TimeNs begin)
      : tracer_(&tracer), track_(track_id), name_(std::move(name)),
        begin_(begin) {}

  void finish(TimeNs end, const std::string& category = "span") {
    if (!finished_ && tracer_->isEnabled()) {
      tracer_->span(track_, name_, begin_, end, category);
    }
    finished_ = true;
  }

 private:
  Tracer* tracer_;
  std::uint32_t track_;
  std::string name_;
  TimeNs begin_;
  bool finished_{false};
};

}  // namespace dkf::sim
