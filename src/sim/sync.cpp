#include "sim/sync.hpp"

#include <utility>

namespace dkf::sim {

void Gate::open() {
  if (open_) return;
  open_ = true;
  auto waiters = std::exchange(waiters_, {});
  for (auto h : waiters) {
    eng_->schedule(0, [h] { h.resume(); });
  }
}

void CondVar::notifyAll() {
  auto waiters = std::exchange(waiters_, {});
  for (auto h : waiters) {
    eng_->schedule(0, [h] { h.resume(); });
  }
}

void Latch::countDown() {
  DKF_CHECK(remaining_ > 0);
  if (--remaining_ == 0) gate_.open();
}

}  // namespace dkf::sim
