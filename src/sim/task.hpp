// Coroutine task type for simulation actors.
//
// `sim::Task<T>` is a lazy coroutine: creating one does not run any code;
// it starts either when awaited by another task (symmetric transfer) or when
// handed to `Engine::spawn`. Blocking simulation primitives (delays, gates,
// condition variables, GPU/NIC completions) are awaitables that suspend the
// task and resume it from a scheduled event, so a rank's "program" reads like
// straight-line MPI code while executing inside the single-threaded
// discrete-event engine.
//
// Ownership: the Task object owns the coroutine frame (RAII destroy). A task
// awaited by a parent completes before the parent resumes, so the child frame
// outlives its use. Detached (spawned) tasks are kept alive by the Engine
// until completion.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "sim/frame_pool.hpp"

namespace dkf::sim {

template <class T>
class Task;

namespace detail {

/// Final awaiter: transfers control back to whoever co_awaited this task,
/// or parks (noop) for root/detached tasks. Detached tasks additionally
/// fire the owner's completion hook (Engine::spawn installs it) so the
/// engine retires finished frames without scanning — the hook runs while
/// the coroutine sits at its final suspend point, so the owner must defer
/// frame destruction until the resume unwinds.
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <class Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto& p = h.promise();
    p.finished = true;
    if (p.on_final) p.on_final(p.on_final_ctx, p.on_final_slot);
    if (p.continuation) return p.continuation;
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};
  bool finished{false};

  /// Completion hook for detached tasks (see FinalAwaiter).
  void (*on_final)(void* ctx, std::size_t slot) noexcept {nullptr};
  void* on_final_ctx{nullptr};
  std::size_t on_final_slot{0};

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }

  // Frames recycle through per-thread free lists (sim/frame_pool.hpp):
  // the hot paths spawn one coroutine per message plus several per wait
  // poll, and with payloads and requests pooled these were the last
  // steady-state allocations.
  static void* operator new(std::size_t n) { return frameAlloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    frameFree(p, n);
  }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns its frame.
template <class T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.promise().finished; }

  /// Start a root task (resume from the initial suspend point).
  void start() {
    DKF_CHECK(handle_ && !handle_.done());
    handle_.resume();
  }

  /// Rethrow any exception that escaped the coroutine body.
  void rethrowIfFailed() {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Result access for completed root tasks (awaiting parents use
  /// await_resume instead).
  T& result() {
    DKF_CHECK(done());
    rethrowIfFailed();
    return handle_.promise().value;
  }

  // co_await support: starts the child, suspends the parent until done.
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer: start the child now
  }
  T await_resume() {
    rethrowIfFailed();
    return std::move(handle_.promise().value);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

/// void specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.promise().finished; }

  void start() {
    DKF_CHECK(handle_ && !handle_.done());
    handle_.resume();
  }

  void rethrowIfFailed() {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Install the detached-completion hook (must be suspended, not done).
  /// `fn(ctx, slot)` runs from the final suspend point; see FinalAwaiter.
  void onFinalSuspend(void (*fn)(void*, std::size_t) noexcept, void* ctx,
                      std::size_t slot) {
    DKF_CHECK(handle_ && !handle_.promise().finished);
    auto& p = handle_.promise();
    p.on_final = fn;
    p.on_final_ctx = ctx;
    p.on_final_slot = slot;
  }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() { rethrowIfFailed(); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

}  // namespace dkf::sim
