#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>

namespace dkf::sim {

namespace {
/// 4-ary heap: shallower than binary for the same size, so pops touch
/// fewer cache lines; children of i are [4i+1, 4i+4].
constexpr std::size_t kHeapArity = 4;

/// Calendar sizing bounds. Bucket count tracks the population (one event
/// per bucket on average); width tracks the population's time span so one
/// "year" covers the pending horizon.
constexpr std::size_t kCalMinBuckets = 256;
constexpr std::size_t kCalMaxBuckets = std::size_t{1} << 22;
constexpr unsigned kCalMaxShift = 40;

// Read per construction, not cached: engines are built rarely, and tests
// toggle DKF_AUDIT between worlds inside one process.
bool auditRequestedByEnv() {
  const char* v = std::getenv("DKF_AUDIT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
}  // namespace

Engine::Engine() : audit_(auditRequestedByEnv()) {}

std::uint32_t Engine::allocSlot(Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(cb));
  }
  return slot;
}

void Engine::pushKey(const EventKey& key) {
  if (tier_ == QueueTier::Heap) {
    heap_.push_back(key);
    siftUp(heap_.size() - 1);
    if (calendar_engage_ != 0 && heap_.size() >= calendar_engage_) {
      engageCalendar();
    }
  } else {
    calInsert(key);
  }
  peak_pending_ = std::max(peak_pending_, queueSize());
}

void Engine::scheduleAt(TimeNs t, Callback cb) {
  DKF_CHECK_MSG(t >= now_, "event scheduled in the past: t=" << t << " now=" << now_);
  pushKey(EventKey{t, seq_++, allocSlot(std::move(cb))});
}

void Engine::scheduleAtSeq(TimeNs t, std::uint64_t seq, Callback cb) {
  DKF_CHECK_MSG(t >= now_, "event scheduled in the past: t=" << t << " now=" << now_);
  DKF_CHECK_MSG(seq < seq_, "scheduleAtSeq with an unreserved seq: " << seq);
  pushKey(EventKey{t, seq, allocSlot(std::move(cb))});
}

void Engine::setCalendarThreshold(std::size_t engage) {
  calendar_engage_ = engage;
  if (tier_ == QueueTier::Calendar &&
      (engage == 0 || cal_size_ < engage / 4)) {
    disengageCalendar();
  } else if (tier_ == QueueTier::Heap && engage != 0 &&
             heap_.size() >= engage) {
    engageCalendar();
  }
}

// ------------------------------------------------------------ heap tier ----

void Engine::siftUp(std::size_t i) {
  const EventKey key = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!before(key, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = key;
}

void Engine::siftDown(std::size_t i) {
  const EventKey key = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * kHeapArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kHeapArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], key)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = key;
}

Engine::EventKey Engine::heapPop() {
  const EventKey top = heap_.front();
  const EventKey last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    siftDown(0);
  }
  return top;
}

// -------------------------------------------------------- calendar tier ----

void Engine::calInsert(const EventKey& key) {
  const std::size_t b = calBucketOf(key.time);
  cal_buckets_[b].push_back(key);
  ++cal_size_;
  // Appends never move existing elements, so the cached min location stays
  // valid; it only needs updating when the newcomer beats it.
  if (cal_min_valid_ &&
      before(key, cal_buckets_[cal_min_bucket_][cal_min_index_])) {
    cal_min_bucket_ = b;
    cal_min_index_ = cal_buckets_[b].size() - 1;
  }
  if (cal_size_ > 4 * cal_buckets_.size() &&
      cal_buckets_.size() < kCalMaxBuckets) {
    calRebuild();
  }
}

void Engine::calFindMin() const {
  if (cal_min_valid_) return;
  DKF_CHECK(cal_size_ > 0);
  const std::size_t nb = cal_buckets_.size();
  // Every pending event has time >= now_, so the search starts at now_'s
  // "day" (bucket-width window). Within the day being scanned, only events
  // of that day are candidates — others in the same bucket belong to later
  // years and lose to any event found in an earlier day.
  std::uint64_t day = now_ >> cal_shift_;
  for (std::size_t step = 0; step < nb; ++step, ++day) {
    const std::vector<EventKey>& bucket = cal_buckets_[day & cal_mask_];
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if ((bucket[i].time >> cal_shift_) != day) continue;
      if (!found || before(bucket[i], bucket[best])) {
        best = i;
        found = true;
      }
    }
    if (found) {
      cal_min_bucket_ = day & cal_mask_;
      cal_min_index_ = best;
      cal_min_valid_ = true;
      return;
    }
  }
  // A whole year is empty: the population sits further out than one year.
  // Direct search — rare, and the rebuild policy keeps years matched to
  // the pending horizon.
  bool found = false;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::vector<EventKey>& bucket = cal_buckets_[b];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (!found || before(bucket[i],
                           cal_buckets_[cal_min_bucket_][cal_min_index_])) {
        cal_min_bucket_ = b;
        cal_min_index_ = i;
        found = true;
      }
    }
  }
  DKF_CHECK(found);
  cal_min_valid_ = true;
}

Engine::EventKey Engine::calPop() {
  calFindMin();
  std::vector<EventKey>& bucket = cal_buckets_[cal_min_bucket_];
  const EventKey key = bucket[cal_min_index_];
  bucket[cal_min_index_] = bucket.back();
  bucket.pop_back();
  --cal_size_;
  cal_min_valid_ = false;
  return key;
}

void Engine::calRebuild() {
  // Bucket count: one pending event per bucket on average. Width: the
  // pending horizon divided across one year of buckets, so consecutive
  // days cover the population densely (pow2 for shift/mask addressing).
  std::vector<EventKey> all;
  all.reserve(cal_size_);
  for (std::vector<EventKey>& bucket : cal_buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  const std::size_t nb = std::clamp(std::bit_ceil(all.size()),
                                    kCalMinBuckets, kCalMaxBuckets);
  TimeNs max_t = now_;
  for (const EventKey& k : all) max_t = std::max(max_t, k.time);
  const TimeNs span = std::max<TimeNs>(max_t - now_ + 1, 1);
  const TimeNs target_width =
      std::max<TimeNs>(std::bit_ceil((span + nb - 1) / nb), 1);
  cal_shift_ = std::min(
      static_cast<unsigned>(std::bit_width(target_width) - 1), kCalMaxShift);
  cal_mask_ = nb - 1;
  cal_buckets_.assign(nb, {});
  cal_min_valid_ = false;
  cal_size_ = 0;
  for (const EventKey& k : all) calInsert(k);
}

void Engine::engageCalendar() {
  tier_ = QueueTier::Calendar;
  ++calendar_engagements_;
  cal_buckets_.assign(1, {});
  cal_mask_ = 0;
  cal_size_ = heap_.size();
  cal_buckets_[0] = std::move(heap_);
  heap_.clear();
  cal_min_valid_ = false;
  calRebuild();
}

void Engine::disengageCalendar() {
  std::vector<EventKey> all;
  all.reserve(cal_size_);
  for (std::vector<EventKey>& bucket : cal_buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  std::sort(all.begin(), all.end(),
            [](const EventKey& a, const EventKey& b) { return before(a, b); });
  heap_ = std::move(all);  // a sorted array satisfies the heap property
  cal_buckets_.clear();
  cal_size_ = 0;
  cal_mask_ = 0;
  cal_min_valid_ = false;
  tier_ = QueueTier::Heap;
}

// ------------------------------------------------------------- stepping ----

const Engine::EventKey& Engine::peekMin() const {
  if (tier_ == QueueTier::Heap) return heap_.front();
  calFindMin();
  return cal_buckets_[cal_min_bucket_][cal_min_index_];
}

bool Engine::step() {
  drainFinished();
  if (empty()) return false;
  // Watchdog fires *before* the offending event is removed: the dump below
  // describes an intact queue (the event at `top.time` is still its head),
  // so post-mortem inspection sees exactly the state that tripped it.
  const EventKey& top = peekMin();
  DKF_CHECK_MSG(
      !watchdog_armed_ || top.time <= watchdog_deadline_,
      "sim watchdog tripped: next event at t=" << top.time
          << " ns exceeds the liveness deadline " << watchdog_deadline_
          << " ns (now=" << now_ << " ns, processed=" << processed_
          << " events, pending=" << queueSize()
          << ", suspended tasks=" << live_tasks_
          << "; queue left intact, offending event still at the head) "
             "— a lost control packet or un-acked transfer is likely "
             "spinning a progress loop");
  const EventKey key = tier_ == QueueTier::Heap ? heapPop() : calPop();
  if (tier_ == QueueTier::Calendar && calendar_engage_ != 0 &&
      cal_size_ < calendar_engage_ / 4) {
    disengageCalendar();
  }
  Callback cb = std::move(slots_[key.slot]);
  free_slots_.push_back(key.slot);
  now_ = key.time;
  ++processed_;
  cb();
  if (audit_) auditInvariants();
  drainFinished();
  return true;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Engine::runUntil(TimeNs t) {
  while (!empty() && peekMin().time <= t) step();
  drainFinished();
  now_ = std::max(now_, t);
}

// ------------------------------------------------------------- auditing ----

void Engine::auditInvariants() const {
  std::vector<EventKey> keys;
  if (tier_ == QueueTier::Heap) {
    keys = heap_;
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      const std::size_t parent = (i - 1) / kHeapArity;
      DKF_CHECK_MSG(!before(heap_[i], heap_[parent]),
                    "heap order violated at index "
                        << i << ": child (t=" << heap_[i].time
                        << ", seq=" << heap_[i].seq << ") before parent (t="
                        << heap_[parent].time << ", seq=" << heap_[parent].seq
                        << ")");
    }
  } else {
    keys.reserve(cal_size_);
    std::size_t counted = 0;
    for (std::size_t b = 0; b < cal_buckets_.size(); ++b) {
      for (const EventKey& k : cal_buckets_[b]) {
        DKF_CHECK_MSG(calBucketOf(k.time) == b,
                      "calendar event in the wrong bucket: t=" << k.time
                          << " seq=" << k.seq << " stored in bucket " << b
                          << " but maps to " << calBucketOf(k.time));
        keys.push_back(k);
        ++counted;
      }
    }
    DKF_CHECK_MSG(counted == cal_size_,
                  "calendar size drift: counted " << counted << " events, "
                      << "cal_size_=" << cal_size_);
    if (cal_min_valid_) {
      const EventKey& cached =
          cal_buckets_[cal_min_bucket_][cal_min_index_];
      for (const EventKey& k : keys) {
        DKF_CHECK_MSG(!before(k, cached),
                      "calendar min cache stale: cached (t=" << cached.time
                          << ", seq=" << cached.seq << ") but (t=" << k.time
                          << ", seq=" << k.seq << ") is earlier");
      }
    }
  }

  // Slot-pool consistency: every queued key owns a distinct live slot,
  // every free-list entry is distinct, and together they cover the pool.
  std::vector<std::uint8_t> seen(slots_.size(), 0);
  for (const EventKey& k : keys) {
    DKF_CHECK_MSG(k.time >= now_, "queued event in the past: t=" << k.time
                                      << " now=" << now_);
    DKF_CHECK_MSG(k.seq < seq_, "queued event with unissued seq " << k.seq);
    DKF_CHECK_MSG(k.slot < slots_.size(),
                  "event slot " << k.slot << " out of range");
    DKF_CHECK_MSG(!seen[k.slot], "slot " << k.slot << " referenced twice");
    seen[k.slot] = 1;
  }
  for (const std::uint32_t s : free_slots_) {
    DKF_CHECK_MSG(s < slots_.size(), "free slot " << s << " out of range");
    DKF_CHECK_MSG(!seen[s], "slot " << s << " both queued and free");
    seen[s] = 2;
  }
  DKF_CHECK_MSG(keys.size() + free_slots_.size() == slots_.size(),
                "slot pool leak: " << keys.size() << " queued + "
                    << free_slots_.size() << " free != " << slots_.size()
                    << " slots");

  // Key uniqueness: (time, seq) is a total order, so no two queued events
  // may share a seq.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(keys.size());
  for (const EventKey& k : keys) seqs.push_back(k.seq);
  std::sort(seqs.begin(), seqs.end());
  DKF_CHECK_MSG(std::adjacent_find(seqs.begin(), seqs.end()) == seqs.end(),
                "duplicate event sequence number in the queue");
}

// ------------------------------------------------------ detached tasks ----

void Engine::spawn(Task<void> task) {
  DKF_CHECK(task.valid());
  task.start();
  if (task.done()) {
    task.rethrowIfFailed();
    return;
  }
  std::uint32_t slot;
  if (!task_free_.empty()) {
    slot = task_free_.back();
    task_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(spawned_.size());
    spawned_.emplace_back();
  }
  // Final-suspend hook: the frame reports its slot when the body finishes,
  // replacing the seed's O(spawned) post-event scan.
  task.onFinalSuspend(
      [](void* ctx, std::size_t s) noexcept {
        static_cast<Engine*>(ctx)->noteSpawnedDone(s);
      },
      this, slot);
  spawned_[slot] = std::move(task);
  ++live_tasks_;
}

void Engine::drainFinished() {
  while (!finished_.empty()) {
    const std::uint32_t slot = finished_.back();
    finished_.pop_back();
    Task<void> done = std::move(spawned_[slot]);
    task_free_.push_back(slot);
    // May throw: the frame is destroyed during unwind (RAII), and any
    // remaining finished slots are retired on the next step()/run().
    done.rethrowIfFailed();
  }
}

}  // namespace dkf::sim
