#include "sim/engine.hpp"

#include <algorithm>

namespace dkf::sim {

namespace {
/// 4-ary heap: shallower than binary for the same size, so pops touch
/// fewer cache lines; children of i are [4i+1, 4i+4].
constexpr std::size_t kHeapArity = 4;
}  // namespace

void Engine::scheduleAt(TimeNs t, Callback cb) {
  DKF_CHECK_MSG(t >= now_, "event scheduled in the past: t=" << t << " now=" << now_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(cb));
  }
  heap_.push_back(EventKey{t, seq_++, slot});
  siftUp(heap_.size() - 1);
}

void Engine::siftUp(std::size_t i) {
  const EventKey key = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!before(key, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = key;
}

void Engine::siftDown(std::size_t i) {
  const EventKey key = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * kHeapArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kHeapArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], key)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = key;
}

Engine::EventKey Engine::heapPop() {
  const EventKey top = heap_.front();
  const EventKey last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    siftDown(0);
  }
  return top;
}

bool Engine::step() {
  drainFinished();
  if (heap_.empty()) return false;
  // Watchdog fires *before* the offending event is removed: the dump below
  // describes an intact queue (the event at `top.time` is still its head),
  // so post-mortem inspection sees exactly the state that tripped it.
  const EventKey& top = heap_.front();
  DKF_CHECK_MSG(
      !watchdog_armed_ || top.time <= watchdog_deadline_,
      "sim watchdog tripped: next event at t=" << top.time
          << " ns exceeds the liveness deadline " << watchdog_deadline_
          << " ns (now=" << now_ << " ns, processed=" << processed_
          << " events, pending=" << heap_.size()
          << ", suspended tasks=" << live_tasks_
          << "; queue left intact, offending event still at the head) "
             "— a lost control packet or un-acked transfer is likely "
             "spinning a progress loop");
  const EventKey key = heapPop();
  Callback cb = std::move(slots_[key.slot]);
  free_slots_.push_back(key.slot);
  now_ = key.time;
  ++processed_;
  cb();
  drainFinished();
  return true;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Engine::runUntil(TimeNs t) {
  while (!heap_.empty() && heap_.front().time <= t) step();
  drainFinished();
  now_ = std::max(now_, t);
}

void Engine::spawn(Task<void> task) {
  DKF_CHECK(task.valid());
  task.start();
  if (task.done()) {
    task.rethrowIfFailed();
    return;
  }
  std::uint32_t slot;
  if (!task_free_.empty()) {
    slot = task_free_.back();
    task_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(spawned_.size());
    spawned_.emplace_back();
  }
  // Final-suspend hook: the frame reports its slot when the body finishes,
  // replacing the seed's O(spawned) post-event scan.
  task.onFinalSuspend(
      [](void* ctx, std::size_t s) noexcept {
        static_cast<Engine*>(ctx)->noteSpawnedDone(s);
      },
      this, slot);
  spawned_[slot] = std::move(task);
  ++live_tasks_;
}

void Engine::drainFinished() {
  while (!finished_.empty()) {
    const std::uint32_t slot = finished_.back();
    finished_.pop_back();
    Task<void> done = std::move(spawned_[slot]);
    task_free_.push_back(slot);
    // May throw: the frame is destroyed during unwind (RAII), and any
    // remaining finished slots are retired on the next step()/run().
    done.rethrowIfFailed();
  }
}

}  // namespace dkf::sim
