#include "sim/engine.hpp"

#include <algorithm>

namespace dkf::sim {

void Engine::scheduleAt(TimeNs t, Callback cb) {
  DKF_CHECK_MSG(t >= now_, "event scheduled in the past: t=" << t << " now=" << now_);
  queue_.push(Event{t, seq_++, std::move(cb)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent, so
  // copy the callback handle instead (std::function copy of the top).
  Event ev = queue_.top();
  queue_.pop();
  DKF_CHECK_MSG(
      !watchdog_armed_ || ev.time <= watchdog_deadline_,
      "sim watchdog tripped: next event at t=" << ev.time
          << " ns exceeds the liveness deadline " << watchdog_deadline_
          << " ns (now=" << now_ << " ns, processed=" << processed_
          << " events, pending=" << queue_.size() + 1
          << ", suspended tasks=" << spawned_.size()
          << ") — a lost control packet or un-acked transfer is likely "
             "spinning a progress loop");
  now_ = ev.time;
  ++processed_;
  ev.cb();
  reapSpawned();
  return true;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Engine::runUntil(TimeNs t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  now_ = std::max(now_, t);
}

void Engine::spawn(Task<void> task) {
  DKF_CHECK(task.valid());
  task.start();
  if (task.done()) {
    task.rethrowIfFailed();
    return;
  }
  spawned_.push_back(std::move(task));
}

void Engine::reapSpawned() {
  // Compact completed detached tasks, surfacing any stored exception.
  auto first_done =
      std::find_if(spawned_.begin(), spawned_.end(),
                   [](const Task<void>& t) { return t.done(); });
  if (first_done == spawned_.end()) return;
  for (auto& t : spawned_) {
    if (t.done()) t.rethrowIfFailed();
  }
  std::erase_if(spawned_, [](const Task<void>& t) { return t.done(); });
}

Task<void> pollUntil(Engine& eng, std::function<bool()> pred, DurationNs interval) {
  while (!pred()) {
    co_await eng.delay(interval);
  }
}

}  // namespace dkf::sim
