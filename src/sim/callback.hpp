// Small-buffer-optimized move-only callables for the event hot path.
//
// `sim::InlineFunction<Sig, N>` stores any callable whose capture fits in N
// bytes directly inside the object — no heap allocation, no type-erased
// copy — and falls back to a single heap allocation only for oversized (or
// over-aligned, or potentially-throwing-move) captures. It is move-only,
// which is what lets the event queue hand a callback to exactly one
// execution site instead of copying `std::function` state on every pop.
//
// Capacity budgets (see docs/MODEL.md §10): the hooks *stored inside*
// fabric/GPU events use the small budget; the engine's own event slots use
// the large budget, sized so that every fabric delivery closure — two
// MemSpans plus a completion hook plus a still-wanted predicate — stays
// inline. Nesting is the reason the two budgets differ: an event callback
// routinely captures a user callback, so the outer budget must exceed the
// inner object size.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "common/check.hpp"

namespace dkf::sim {

/// Inline capture budget for user-facing completion hooks (bytes).
inline constexpr std::size_t kSmallCallbackBytes = 48;
/// Inline capture budget for engine event slots (bytes): must hold a
/// fabric delivery closure (2 MemSpans + SmallCallback + predicate).
inline constexpr std::size_t kEventCallbackBytes = 160;

template <class Sig, std::size_t N = kSmallCallbackBytes>
class InlineFunction;

template <class R, class... Args, std::size_t N>
class InlineFunction<R(Args...), N> {
  static_assert(N >= sizeof(void*), "capacity must hold at least a pointer");

 public:
  static constexpr std::size_t inline_capacity = N;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& o) noexcept : vt_(o.vt_) {
    if (vt_) {
      vt_->relocate(o.buf_, buf_);
      o.vt_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_) {
        vt_->relocate(o.buf_, buf_);
        o.vt_ = nullptr;
      }
    }
    return *this;
  }

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InlineFunction& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// True when the stored callable overflowed to the heap (bench/tests).
  bool heapAllocated() const noexcept { return vt_ && vt_->on_heap; }

  R operator()(Args... args) {
    DKF_CHECK_MSG(vt_ != nullptr, "calling an empty InlineFunction");
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// Move-construct dst from src, then destroy src. Storage-relocation
    /// only runs on object moves, never on heap growth of the event pool.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
    bool on_heap;
  };

  template <class D>
  static constexpr bool fits_inline =
      sizeof(D) <= N && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <class D>
  static constexpr VTable kInlineVTable{
      [](void* p, Args&&... a) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(a)...);
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      /*on_heap=*/false,
  };

  template <class D>
  static constexpr VTable kHeapVTable{
      [](void* p, Args&&... a) -> R {
        return (**static_cast<D**>(p))(std::forward<Args>(a)...);
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* p) noexcept { delete *static_cast<D**>(p); },
      /*on_heap=*/true,
  };

  template <class F>
  void emplace(F&& f) {
    using D = std::remove_cvref_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVTable<D>;
    }
  }

  const VTable* vt_{nullptr};
  alignas(std::max_align_t) std::byte buf_[N];
};

/// The issue-facing alias: a void() inline callback with capture budget N.
template <std::size_t N = kSmallCallbackBytes>
using InlineCallback = InlineFunction<void(), N>;

/// Completion hooks stored inside fabric/GPU events.
using SmallCallback = InlineCallback<kSmallCallbackBytes>;
/// Delivery-gating predicates (`still_wanted`): captures are tiny.
using SmallPredicate = InlineFunction<bool(), 32>;
/// Engine event slots: sized for nested fabric delivery closures.
using EventCallback = InlineCallback<kEventCallbackBytes>;

}  // namespace dkf::sim
