// Deterministic single-threaded discrete-event engine.
//
// Events are (time, sequence, callback) triples in a 4-ary min-heap; ties
// on time break by insertion sequence, which makes every simulation
// replayable bit-for-bit. All "hardware" in the simulator (GPU kernels, DMA
// engines, NICs, links) runs by scheduling events; all "software" (MPI
// ranks, progress engines, schedulers) runs as coroutines that suspend on
// awaitables resumed from events.
//
// Hot-path layout: the heap orders 24-byte keys only; callbacks live in a
// free-listed slot pool and never move while queued. Popping moves the
// callback out of its slot exactly once (no type-erased copy), and the
// inline-callback type keeps every capture that fits its budget off the
// heap — the steady-state event loop performs zero allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sim/callback.hpp"
#include "sim/task.hpp"

namespace dkf::sim {

class Engine {
 public:
  using Callback = EventCallback;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  TimeNs now() const { return now_; }

  /// Schedule `cb` to run `delay` ns from now.
  void schedule(DurationNs delay, Callback cb) { scheduleAt(now_ + delay, std::move(cb)); }

  /// Schedule `cb` at absolute virtual time `t` (must not be in the past).
  void scheduleAt(TimeNs t, Callback cb);

  /// Run the earliest event; returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains (or `max_events` processed).
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run events with time <= t, then set now() = t.
  void runUntil(TimeNs t);

  bool empty() const { return heap_.empty(); }
  std::size_t pendingEvents() const { return heap_.size(); }
  std::size_t processedEvents() const { return processed_; }

  /// Liveness watchdog: the first event whose timestamp exceeds `deadline`
  /// (absolute virtual time) throws CheckFailure with a diagnostic dump
  /// instead of running. A lost FIN or dropped CTS leaves progress loops
  /// re-polling forever — the event queue never drains, run() spins, and
  /// nothing fails; the watchdog converts that livelock into a loud,
  /// attributable error. The check happens *before* the offending event is
  /// removed, so the queue (including the event itself) stays intact for
  /// post-mortem inspection.
  void setWatchdog(TimeNs deadline) {
    watchdog_deadline_ = deadline;
    watchdog_armed_ = true;
  }
  void clearWatchdog() { watchdog_armed_ = false; }
  bool watchdogArmed() const { return watchdog_armed_; }

  /// Start a detached coroutine; the engine keeps its frame alive until it
  /// completes. Completion is push-driven: the task's final suspend
  /// notifies the engine, which retires the frame after the current event —
  /// there is no per-step scan over suspended tasks. Exceptions escaping a
  /// spawned task are rethrown from run()/step() at retire time so tests
  /// fail loudly.
  void spawn(Task<void> task);

  /// Spawned coroutines still suspended. Nonzero after run() drains the
  /// event queue means a deadlock (a task waits on a gate nothing opens).
  std::size_t unfinishedTasks() const { return live_tasks_; }

  /// Awaitable: suspend the current coroutine for `d` virtual ns.
  auto delay(DurationNs d) {
    struct Awaiter {
      Engine& eng;
      DurationNs dur;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng.schedule(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: yield to the event loop, resuming at the same virtual time
  /// (after already-queued events at this time).
  auto yield() { return delay(0); }

 private:
  /// Heap element: ordering key plus the index of the callback's pool
  /// slot. Sifts move 24 bytes; the callback itself never moves while
  /// queued.
  struct EventKey {
    TimeNs time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool before(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  EventKey heapPop();

  /// Final-suspend notification from a spawned task (called while the
  /// coroutine sits at its final suspend point; retirement is deferred to
  /// drainFinished so the frame is never destroyed mid-resume).
  void noteSpawnedDone(std::size_t slot) {
    finished_.push_back(static_cast<std::uint32_t>(slot));
    --live_tasks_;
  }

  /// Retire completed detached tasks, surfacing any stored exception.
  void drainFinished();

  TimeNs now_{0};
  std::uint64_t seq_{0};
  std::size_t processed_{0};
  TimeNs watchdog_deadline_{0};
  bool watchdog_armed_{false};

  std::vector<EventKey> heap_;        // 4-ary min-heap on (time, seq)
  std::vector<Callback> slots_;       // callback pool, indexed by EventKey::slot
  std::vector<std::uint32_t> free_slots_;

  std::vector<Task<void>> spawned_;   // detached-task pool (free-listed)
  std::vector<std::uint32_t> task_free_;
  std::vector<std::uint32_t> finished_;  // slots awaiting retirement
  std::size_t live_tasks_{0};
};

/// Coroutine helper: poll `pred` every `interval` until it returns true.
/// Used to model CPU polling loops (progress engines, event queries); the
/// caller accounts any per-poll CPU cost separately. Templated on the
/// predicate so call sites pay no type-erasure allocation.
template <class Pred>
Task<void> pollUntil(Engine& eng, Pred pred, DurationNs interval) {
  while (!pred()) {
    co_await eng.delay(interval);
  }
}

}  // namespace dkf::sim
