// Deterministic single-threaded discrete-event engine.
//
// Events are (time, sequence, callback) triples in a min-heap; ties on time
// break by insertion sequence, which makes every simulation replayable
// bit-for-bit. All "hardware" in the simulator (GPU kernels, DMA engines,
// NICs, links) runs by scheduling events; all "software" (MPI ranks, progress
// engines, schedulers) runs as coroutines that suspend on awaitables resumed
// from events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"
#include "sim/task.hpp"

namespace dkf::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  TimeNs now() const { return now_; }

  /// Schedule `cb` to run `delay` ns from now.
  void schedule(DurationNs delay, Callback cb) { scheduleAt(now_ + delay, std::move(cb)); }

  /// Schedule `cb` at absolute virtual time `t` (must not be in the past).
  void scheduleAt(TimeNs t, Callback cb);

  /// Run the earliest event; returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains (or `max_events` processed).
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run events with time <= t, then set now() = t.
  void runUntil(TimeNs t);

  bool empty() const { return queue_.empty(); }
  std::size_t pendingEvents() const { return queue_.size(); }
  std::size_t processedEvents() const { return processed_; }

  /// Liveness watchdog: the first event whose timestamp exceeds `deadline`
  /// (absolute virtual time) throws CheckFailure with a diagnostic dump
  /// instead of running. A lost FIN or dropped CTS leaves progress loops
  /// re-polling forever — the event queue never drains, run() spins, and
  /// nothing fails; the watchdog converts that livelock into a loud,
  /// attributable error.
  void setWatchdog(TimeNs deadline) {
    watchdog_deadline_ = deadline;
    watchdog_armed_ = true;
  }
  void clearWatchdog() { watchdog_armed_ = false; }
  bool watchdogArmed() const { return watchdog_armed_; }

  /// Start a detached coroutine; the engine keeps its frame alive until it
  /// completes. Exceptions escaping a spawned task are rethrown from
  /// run()/step() at reap time so tests fail loudly.
  void spawn(Task<void> task);

  /// Spawned coroutines still suspended. Nonzero after run() drains the
  /// event queue means a deadlock (a task waits on a gate nothing opens).
  std::size_t unfinishedTasks() const { return spawned_.size(); }

  /// Awaitable: suspend the current coroutine for `d` virtual ns.
  auto delay(DurationNs d) {
    struct Awaiter {
      Engine& eng;
      DurationNs dur;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng.schedule(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: yield to the event loop, resuming at the same virtual time
  /// (after already-queued events at this time).
  auto yield() { return delay(0); }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void reapSpawned();

  TimeNs now_{0};
  std::uint64_t seq_{0};
  std::size_t processed_{0};
  TimeNs watchdog_deadline_{0};
  bool watchdog_armed_{false};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Task<void>> spawned_;
};

/// Coroutine helper: poll `pred` every `interval` until it returns true.
/// Used to model CPU polling loops (progress engines, event queries); the
/// caller accounts any per-poll CPU cost separately.
Task<void> pollUntil(Engine& eng, std::function<bool()> pred, DurationNs interval);

}  // namespace dkf::sim
