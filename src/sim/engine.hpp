// Deterministic single-threaded discrete-event engine.
//
// Events are (time, sequence, callback) triples; ties on time break by
// insertion sequence, which makes every simulation replayable bit-for-bit.
// All "hardware" in the simulator (GPU kernels, DMA engines, NICs, links)
// runs by scheduling events; all "software" (MPI ranks, progress engines,
// schedulers) runs as coroutines that suspend on awaitables resumed from
// events.
//
// Hot-path layout: the queue orders 24-byte keys only; callbacks live in a
// free-listed slot pool and never move while queued. Popping moves the
// callback out of its slot exactly once (no type-erased copy), and the
// inline-callback type keeps every capture that fits its budget off the
// heap — the steady-state event loop performs zero allocations.
//
// Queue tiers (MODEL.md §13): the pending set lives in a 4-ary min-heap
// while it is small (sift depth ~log4 n, cache-friendly) and migrates to a
// calendar queue — O(1) bucketed insert, near-O(1) pop — once it crosses
// the heap's sweet spot (setCalendarThreshold). Both tiers pop the exact
// global (time, seq) minimum, so the event order is identical whichever
// tier is active and whenever the switch happens; the tier is purely a
// host-performance decision. DKF_AUDIT=1 (or setAudit) re-verifies the
// structural invariants of the active tier after every step.
//
// Batched event keys: external coalescers (net::LinkBatcher) reserve one
// sequence number per logical event with allocSeq() at the time the event
// would have been scheduled, park the work outside the engine, and later
// arm a real event with scheduleAtSeq() under the reserved key. Because
// the key is the one the event would have carried anyway, lazily-armed
// events interleave with everything else exactly as if each had been
// scheduled eagerly — the engine queue just stays small.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sim/callback.hpp"
#include "sim/task.hpp"

namespace dkf::sim {

class Engine {
 public:
  using Callback = EventCallback;

  enum class QueueTier : std::uint8_t { Heap, Calendar };

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  TimeNs now() const { return now_; }

  /// Schedule `cb` to run `delay` ns from now.
  void schedule(DurationNs delay, Callback cb) { scheduleAt(now_ + delay, std::move(cb)); }

  /// Schedule `cb` at absolute virtual time `t` (must not be in the past).
  void scheduleAt(TimeNs t, Callback cb);

  /// Reserve the sequence number the *next* scheduled event would get.
  /// Pair with scheduleAtSeq: a coalescer that hands out keys at issue
  /// time and arms the engine event lazily preserves the total order
  /// exactly (see net::LinkBatcher). Each reserved seq must be armed at
  /// most once.
  std::uint64_t allocSeq() { return seq_++; }

  /// Schedule under a previously reserved sequence number (the batched
  /// event key). `t` must not be in the past and `seq` must come from
  /// allocSeq().
  void scheduleAtSeq(TimeNs t, std::uint64_t seq, Callback cb);

  /// Run the earliest event; returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains (or `max_events` processed).
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run events with time <= t, then set now() = t.
  void runUntil(TimeNs t);

  bool empty() const { return queueSize() == 0; }
  std::size_t pendingEvents() const { return queueSize(); }
  std::size_t processedEvents() const { return processed_; }

  /// Active queue implementation (host-performance detail; the event order
  /// is identical in both tiers).
  QueueTier queueTier() const { return tier_; }
  /// Times the pending set migrated heap -> calendar.
  std::size_t calendarEngagements() const { return calendar_engagements_; }
  /// High-water mark of the pending-event set over the engine's lifetime.
  std::size_t peakPending() const { return peak_pending_; }
  /// Pending-event count at which the calendar tier engages (it disengages
  /// below a quarter of this, giving hysteresis). 0 disables the calendar
  /// tier entirely. Takes effect on the next schedule/pop.
  void setCalendarThreshold(std::size_t engage);
  std::size_t calendarThreshold() const { return calendar_engage_; }

  /// Liveness watchdog: the first event whose timestamp exceeds `deadline`
  /// (absolute virtual time) throws CheckFailure with a diagnostic dump
  /// instead of running. A lost FIN or dropped CTS leaves progress loops
  /// re-polling forever — the event queue never drains, run() spins, and
  /// nothing fails; the watchdog converts that livelock into a loud,
  /// attributable error. The check happens *before* the offending event is
  /// removed, so the queue (including the event itself) stays intact for
  /// post-mortem inspection.
  void setWatchdog(TimeNs deadline) {
    watchdog_deadline_ = deadline;
    watchdog_armed_ = true;
  }
  void clearWatchdog() { watchdog_armed_ = false; }
  bool watchdogArmed() const { return watchdog_armed_; }

  /// Structural invariant audit of the active queue tier: heap ordering /
  /// calendar bucket placement, slot-pool consistency (no dangling, no
  /// double-free, every slot accounted), key uniqueness, no event in the
  /// past. Throws CheckFailure on violation. Runs automatically after
  /// every step while auditing is enabled (setAudit(true) or environment
  /// DKF_AUDIT=1) — O(pending) per step, so test/debug only.
  void auditInvariants() const;
  void setAudit(bool on) { audit_ = on; }
  bool auditEnabled() const { return audit_; }

  /// Start a detached coroutine; the engine keeps its frame alive until it
  /// completes. Completion is push-driven: the task's final suspend
  /// notifies the engine, which retires the frame after the current event —
  /// there is no per-step scan over suspended tasks. Exceptions escaping a
  /// spawned task are rethrown from run()/step() at retire time so tests
  /// fail loudly.
  void spawn(Task<void> task);

  /// Spawned coroutines still suspended. Nonzero after run() drains the
  /// event queue means a deadlock (a task waits on a gate nothing opens).
  std::size_t unfinishedTasks() const { return live_tasks_; }

  /// Awaitable: suspend the current coroutine for `d` virtual ns.
  auto delay(DurationNs d) {
    struct Awaiter {
      Engine& eng;
      DurationNs dur;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng.schedule(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: yield to the event loop, resuming at the same virtual time
  /// (after already-queued events at this time).
  auto yield() { return delay(0); }

 private:
  /// Queue element: ordering key plus the index of the callback's pool
  /// slot. Heap sifts and calendar moves touch 24 bytes; the callback
  /// itself never moves while queued.
  struct EventKey {
    TimeNs time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool before(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::size_t queueSize() const {
    return tier_ == QueueTier::Heap ? heap_.size() : cal_size_;
  }

  std::uint32_t allocSlot(Callback cb);
  void pushKey(const EventKey& key);

  // ---- Heap tier ----
  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  EventKey heapPop();

  // ---- Calendar tier ----
  std::size_t calBucketOf(TimeNs t) const {
    return static_cast<std::size_t>(t >> cal_shift_) & cal_mask_;
  }
  void calInsert(const EventKey& key);
  /// Locate (and cache) the global minimum; cal_size_ must be > 0.
  void calFindMin() const;
  EventKey calPop();
  /// Move every pending event heap -> calendar (or back), picking bucket
  /// count and width from the population. Order-neutral by construction.
  void engageCalendar();
  void disengageCalendar();
  /// Rebuild with capacity/width suited to the current population.
  void calRebuild();

  /// Earliest pending key (either tier); queue must be non-empty.
  const EventKey& peekMin() const;

  /// Final-suspend notification from a spawned task (called while the
  /// coroutine sits at its final suspend point; retirement is deferred to
  /// drainFinished so the frame is never destroyed mid-resume).
  void noteSpawnedDone(std::size_t slot) {
    finished_.push_back(static_cast<std::uint32_t>(slot));
    --live_tasks_;
  }

  /// Retire completed detached tasks, surfacing any stored exception.
  void drainFinished();

  TimeNs now_{0};
  std::uint64_t seq_{0};
  std::size_t processed_{0};
  TimeNs watchdog_deadline_{0};
  bool watchdog_armed_{false};
  bool audit_{false};

  QueueTier tier_{QueueTier::Heap};
  std::size_t calendar_engage_{8192};
  std::size_t calendar_engagements_{0};
  std::size_t peak_pending_{0};

  std::vector<EventKey> heap_;        // 4-ary min-heap on (time, seq)

  std::vector<std::vector<EventKey>> cal_buckets_;
  std::size_t cal_size_{0};
  std::size_t cal_mask_{0};           // buckets.size() - 1 (power of two)
  unsigned cal_shift_{10};            // bucket width = 1 << shift ns
  // Cached location of the current minimum (mutable: peek is const).
  mutable bool cal_min_valid_{false};
  mutable std::size_t cal_min_bucket_{0};
  mutable std::size_t cal_min_index_{0};

  std::vector<Callback> slots_;       // callback pool, indexed by EventKey::slot
  std::vector<std::uint32_t> free_slots_;

  std::vector<Task<void>> spawned_;   // detached-task pool (free-listed)
  std::vector<std::uint32_t> task_free_;
  std::vector<std::uint32_t> finished_;  // slots awaiting retirement
  std::size_t live_tasks_{0};
};

/// Coroutine helper: poll `pred` every `interval` until it returns true.
/// Used to model CPU polling loops (progress engines, event queries); the
/// caller accounts any per-poll CPU cost separately. Templated on the
/// predicate so call sites pay no type-erasure allocation.
template <class Pred>
Task<void> pollUntil(Engine& eng, Pred pred, DurationNs interval) {
  while (!pred()) {
    co_await eng.delay(interval);
  }
}

}  // namespace dkf::sim
