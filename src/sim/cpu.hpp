// CpuTimeline: a serializing resource modeling one CPU thread.
//
// Each MPI rank runs its application, progress engine, and DDT-engine
// driver calls on a single thread (the configuration the paper evaluates,
// §IV-A2). In the simulator several coroutines can be active for one rank
// (the rank program plus spawned unpack handlers); without serialization
// their modeled CPU costs would overlap in virtual time — impossible on
// real hardware and flattering to synchronous schemes. Every CPU-side cost
// (kernel launch, driver call, GDRCopy loop, blocking synchronization)
// reserves this timeline instead of sleeping on the raw engine clock.
//
// Reservation is eager: busy() claims [max(now, busy_until), +d) at call
// time, so concurrent claimants queue in call order — deterministic and
// FIFO, like a run-to-completion event loop.
#pragma once

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace dkf::sim {

class CpuTimeline {
 public:
  explicit CpuTimeline(Engine& eng) : eng_(&eng) {}

  /// Occupy the CPU for `d` ns (after any previously reserved work) and
  /// resume the caller when the slice completes.
  Task<void> busy(DurationNs d) {
    const TimeNs start = std::max(eng_->now(), busy_until_);
    busy_until_ = start + d;
    total_busy_ += d;
    const TimeNs wake = busy_until_;
    if (wake > eng_->now()) co_await eng_->delay(wake - eng_->now());
  }

  /// Hold the CPU (busy-wait) until at least time `t` — the shape of
  /// cudaStreamSynchronize / cudaEventSynchronize: the thread spins until
  /// the device reaches the sync point. Returns the time actually spent
  /// spinning (zero if the device was already past `t`), which is what a
  /// breakdown should attribute to synchronization — queueing behind other
  /// CPU work is not sync cost.
  Task<DurationNs> holdUntil(TimeNs t) {
    const TimeNs start = std::max(eng_->now(), busy_until_);
    const TimeNs end = std::max(start, t);
    const DurationNs held = end - start;
    total_busy_ += held;
    busy_until_ = end;
    if (end > eng_->now()) co_await eng_->delay(end - eng_->now());
    co_return held;
  }

  TimeNs busyUntil() const { return busy_until_; }
  /// Cumulative reserved CPU time (for utilization reporting).
  DurationNs totalBusy() const { return total_busy_; }

 private:
  Engine* eng_;
  TimeNs busy_until_{0};
  DurationNs total_busy_{0};
};

}  // namespace dkf::sim
