// Coroutine synchronization primitives for the simulation.
//
// - Gate: one-shot latch. `open()` releases every current and future waiter.
//   Models completion flags (kernel done, message delivered, request ready).
// - CondVar: broadcast condition. `notifyAll()` wakes the waiters present at
//   the call; later waiters sleep until the next notify. Models progress-
//   engine wakeups.
// - Latch: counts down from N; waiters release at zero. Models "all ranks
//   finished" joins in the experiment drivers.
//
// All wakeups are deferred through the engine (scheduled at +0 ns) rather
// than resumed inline, so a notifier's state mutations complete before any
// waiter observes them — the same reason real code signals after releasing
// locks.
#pragma once

#include <coroutine>
#include <vector>

#include "common/check.hpp"
#include "sim/engine.hpp"

namespace dkf::sim {

class Gate {
 public:
  explicit Gate(Engine& eng) : eng_(&eng) {}

  bool isOpen() const { return open_; }

  /// Release all waiters; idempotent.
  void open();

  /// Awaitable; resumes immediately if already open.
  auto wait() {
    struct Awaiter {
      Gate& gate;
      bool await_ready() const noexcept { return gate.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        gate.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* eng_;
  bool open_{false};
  std::vector<std::coroutine_handle<>> waiters_;
};

class CondVar {
 public:
  explicit CondVar(Engine& eng) : eng_(&eng) {}

  /// Wake all coroutines currently waiting.
  void notifyAll();

  auto wait() {
    struct Awaiter {
      CondVar& cv;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { cv.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t waiterCount() const { return waiters_.size(); }

 private:
  Engine* eng_;
  std::vector<std::coroutine_handle<>> waiters_;
};

class Latch {
 public:
  Latch(Engine& eng, std::size_t count) : gate_(eng), remaining_(count) {
    if (remaining_ == 0) gate_.open();
  }

  void countDown();
  auto wait() { return gate_.wait(); }
  std::size_t remaining() const { return remaining_; }

 private:
  Gate gate_;
  std::size_t remaining_;
};

}  // namespace dkf::sim
