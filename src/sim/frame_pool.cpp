#include "sim/frame_pool.hpp"

#include <array>
#include <new>
#include <vector>

namespace dkf::sim {

namespace {

constexpr std::size_t kGranule = 64;
constexpr std::size_t kBuckets = 128;  // frames up to 8128 bytes recycle
constexpr std::size_t kMaxCachedPerBucket = 4096;

struct Cache {
  std::array<std::vector<void*>, kBuckets> buckets;
  FramePoolStats stats;

  ~Cache() {
    for (auto& b : buckets) {
      for (void* p : b) ::operator delete(p);
    }
  }
};

Cache& cache() {
  thread_local Cache c;
  return c;
}

constexpr std::size_t bucketOf(std::size_t bytes) {
  return (bytes + kGranule - 1) / kGranule;
}

}  // namespace

void* frameAlloc(std::size_t bytes) {
  Cache& c = cache();
  const std::size_t b = bucketOf(bytes);
  if (b < kBuckets) {
    auto& list = c.buckets[b];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      ++c.stats.reuses;
      return p;
    }
    ++c.stats.heap_allocs;
    return ::operator new(b * kGranule);
  }
  ++c.stats.heap_allocs;
  return ::operator new(bytes);
}

void frameFree(void* p, std::size_t bytes) noexcept {
  Cache& c = cache();
  const std::size_t b = bucketOf(bytes);
  if (b < kBuckets && c.buckets[b].size() < kMaxCachedPerBucket) {
    try {
      c.buckets[b].push_back(p);
      return;
    } catch (...) {
      // fall through: the cache vector could not grow
    }
  }
  ::operator delete(p);
}

const FramePoolStats& framePoolStats() noexcept { return cache().stats; }

}  // namespace dkf::sim
