#include "sim/trace.hpp"

#include <ostream>

#include "common/check.hpp"

namespace dkf::sim {

namespace {

/// Minimal JSON string escaping for names we generate ourselves.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// ns -> microsecond string with fractional precision ("12.345").
std::string usStamp(TimeNs t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(t / 1000),
                static_cast<unsigned long long>(t % 1000));
  return buf;
}

}  // namespace

std::uint32_t Tracer::track(const std::string& name) {
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return i;
  }
  tracks_.push_back(name);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void Tracer::span(std::uint32_t track_id, const std::string& name,
                  TimeNs begin, TimeNs end, const std::string& category) {
  if (!enabled_) return;
  DKF_CHECK(track_id < tracks_.size());
  DKF_CHECK_MSG(end >= begin, "span '" << name << "' ends before it begins");
  spans_.push_back(Span{track_id, name, category, begin, end});
}

void Tracer::instant(std::uint32_t track_id, const std::string& name,
                     TimeNs at, const std::string& category) {
  if (!enabled_) return;
  DKF_CHECK(track_id < tracks_.size());
  instants_.push_back(Instant{track_id, name, category, at});
}

void Tracer::counter(const std::string& name, TimeNs at, double value) {
  if (!enabled_) return;
  counters_.push_back(Counter{name, at, value});
}

void Tracer::exportJson(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  // Thread-name metadata gives each track a labeled row.
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << i
       << ",\"args\":{\"name\":\"" << escape(tracks_[i]) << "\"}}";
  }
  for (const Span& s : spans_) {
    sep();
    os << "{\"name\":\"" << escape(s.name) << "\",\"cat\":\""
       << escape(s.category) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << s.track << ",\"ts\":" << usStamp(s.begin)
       << ",\"dur\":" << usStamp(s.end - s.begin) << "}";
  }
  for (const Instant& i : instants_) {
    sep();
    os << "{\"name\":\"" << escape(i.name) << "\",\"cat\":\""
       << escape(i.category) << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
       << "\"tid\":" << i.track << ",\"ts\":" << usStamp(i.at) << "}";
  }
  for (const Counter& c : counters_) {
    sep();
    os << "{\"name\":\"" << escape(c.name)
       << "\",\"ph\":\"C\",\"pid\":1,\"ts\":" << usStamp(c.at)
       << ",\"args\":{\"value\":" << c.value << "}}";
  }
  os << "]}";
}

}  // namespace dkf::sim
