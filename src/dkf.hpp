// Umbrella header for the dkf library: the complete public API surface.
//
// Downstream code can include this single header; fine-grained headers
// remain available for faster builds. See README.md for the architecture
// map and docs/MODEL.md for the cost model.
#pragma once

// Foundations
#include "common/check.hpp"    // DKF_CHECK invariants
#include "common/rng.hpp"      // deterministic xoshiro256**
#include "common/stats.hpp"    // RunningStat, SampleSet, TimeBreakdown
#include "common/units.hpp"    // TimeNs, DurationNs, BytesPerSecond

// Simulation substrate
#include "sim/cpu.hpp"     // CpuTimeline (one thread per rank)
#include "sim/engine.hpp"  // discrete-event engine
#include "sim/sync.hpp"    // Gate, CondVar, Latch
#include "sim/task.hpp"    // coroutine Task<T>
#include "sim/trace.hpp"   // Chrome-trace export

// Hardware models
#include "gpu/gpu.hpp"      // GPU device: streams, events, fused kernels
#include "gpu/memory.hpp"   // device arenas, MemSpan
#include "hw/cluster.hpp"   // nodes + fabric assembly
#include "hw/machines.hpp"  // Lassen, ABCI (Table II)
#include "hw/spec.hpp"      // LinkSpec, GpuSpec, MachineSpec
#include "net/fabric.hpp"   // interconnect + RDMA verbs
#include "net/link.hpp"

// MPI datatypes
#include "ddt/datatype.hpp"  // type constructors
#include "ddt/layout.hpp"    // flatten + layout cache
#include "ddt/pack.hpp"      // reference pack/unpack

// The contribution: dynamic kernel fusion
#include "core/request_list.hpp"     // §IV-A1 circular request buffer
#include "core/scheduler.hpp"        // §IV-A2 fusion scheduler
#include "core/threshold_model.hpp"  // future-work threshold prediction

// DDT-processing schemes (the evaluation's contenders)
#include "schemes/adaptive_gdr.hpp"
#include "schemes/cpu_gpu_hybrid.hpp"
#include "schemes/ddt_engine.hpp"
#include "schemes/factory.hpp"
#include "schemes/fusion_engine.hpp"
#include "schemes/gpu_async.hpp"
#include "schemes/gpu_sync.hpp"
#include "schemes/hybrid_fusion.hpp"
#include "schemes/naive_copy.hpp"

// CUDA-aware MPI runtime
#include "mpi/collectives.hpp"  // bcast/reduce/allreduce/neighborAlltoallw
#include "mpi/request.hpp"
#include "mpi/runtime.hpp"      // Proc, Runtime, isend/irecv/wait/persistent

// Workloads and experiment harness
#include "bench_util/experiment.hpp"
#include "bench_util/sweeps.hpp"
#include "bench_util/table.hpp"
#include "workloads/halo_exchanger.hpp"
#include "workloads/workloads.hpp"
