// Parallel deterministic sweep runner.
//
// Figure benches evaluate grids of mutually independent simulation cells —
// (machine, scheme, workload, iteration) tuples where every cell builds its
// own sim::Engine and hw::Cluster. Cells therefore parallelize trivially:
// `parallelFor` fans indices out over a std::thread pool and the caller
// writes each cell's result into pre-sized per-index storage, so the merged
// output (tables, JSON) is byte-identical to a serial loop regardless of
// completion order.
//
// Determinism contract: a cell must not touch shared mutable state. Each
// cell constructs its own engine/cluster/runtime (runBulkExchange already
// does), and workloads are built *inside* the cell — composite ddt types
// lazily cache their description string, so sharing one Workload across
// threads would race on that cache.
#pragma once

#include <cstddef>
#include <functional>

namespace dkf::bench {

/// Worker threads a sweep uses. Precedence: setSweepThreads() override,
/// then the DKF_SWEEP_THREADS environment variable, then hardware
/// concurrency. Always >= 1.
unsigned sweepThreadCount();

/// Force the sweep thread count (0 = back to automatic). Returns the
/// previous override. Tests use this to compare serial vs parallel output.
unsigned setSweepThreads(unsigned n);

/// Run fn(0), ..., fn(n-1), each exactly once, across sweepThreadCount()
/// workers (inline when that is 1 or n <= 1). Blocks until all cells
/// finish; the first exception thrown by any cell is rethrown after the
/// pool joins.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Same, but never more than `max_workers` threads (0 = no extra cap).
/// Sweeps whose cells hold large working sets (thousand-rank collective
/// worlds) cap the fan-out so peak memory stays bounded.
void parallelFor(std::size_t n, std::size_t max_workers,
                 const std::function<void(std::size_t)>& fn);

}  // namespace dkf::bench
