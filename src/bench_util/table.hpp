// Minimal fixed-width table/series printer for the benchmark binaries:
// every bench prints the same rows/series the corresponding paper figure
// plots, so EXPERIMENTS.md can quote them directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dkf::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);
  /// Render with column auto-sizing to `os`.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision helpers for table cells.
std::string cell(double value, int precision = 2);
std::string cellUs(double microseconds);

/// Section banner printed before each figure's output.
void banner(std::ostream& os, const std::string& title,
            const std::string& subtitle = "");

}  // namespace dkf::bench
