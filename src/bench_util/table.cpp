#include "bench_util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace dkf::bench {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  DKF_CHECK_MSG(cells.size() == headers_.size(),
                "row width " << cells.size() << " != header width "
                             << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto printRow = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  printRow(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) printRow(row);
}

std::string cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string cellUs(double microseconds) {
  char buf[64];
  if (microseconds >= 10'000.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", microseconds / 1000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f us", microseconds);
  }
  return buf;
}

void banner(std::ostream& os, const std::string& title,
            const std::string& subtitle) {
  os << '\n' << std::string(78, '=') << '\n' << title << '\n';
  if (!subtitle.empty()) os << subtitle << '\n';
  os << std::string(78, '=') << '\n';
}

}  // namespace dkf::bench
