// Shared nearest-rank percentile summary for the serving benches.
//
// Every bench that reports tail latency (fig14_production,
// multitenant_trace, throughput_msgplane) summarizes through this helper
// instead of ad-hoc sorting, so "p99" means the same nearest-rank
// estimator everywhere: rank = ceil(p/100 * n), 1-based, on the sorted
// samples — the estimator SampleSet::percentile already implements.
#pragma once

#include <vector>

#include "common/stats.hpp"

namespace dkf::bench {

struct PercentileSummary {
  double p50{0.0};
  double p99{0.0};
  double p999{0.0};
};

/// Nearest-rank p50/p99/p999 of `s` (zeroes when empty).
PercentileSummary summarizePercentiles(const SampleSet& s);

/// Same, from a raw sample vector (taken by value: sorted internally).
PercentileSummary summarizePercentiles(std::vector<double> samples);

}  // namespace dkf::bench
