#include "bench_util/sweeps.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "bench_util/parallel.hpp"
#include "bench_util/table.hpp"
#include "core/threshold_model.hpp"

namespace dkf::bench {

namespace {

double runOne(const hw::MachineSpec& machine, schemes::Scheme scheme,
              const workloads::Workload& wl, int n_ops, int iterations,
              int warmup) {
  ExchangeConfig cfg;
  cfg.machine = machine;
  cfg.scheme = scheme;
  cfg.workload = wl;
  cfg.n_ops = n_ops;
  cfg.iterations = iterations;
  cfg.warmup = warmup;
  if (scheme == schemes::Scheme::ProposedTuned) {
    // "Proposed-Tuned" uses the model-based threshold prediction (the
    // paper's future work, core/threshold_model.hpp) instead of the
    // heuristic 512 KB default.
    const core::ThresholdModel model(machine.node.gpu,
                                     machine.internode.bandwidth);
    cfg.tuned_threshold = model.predict(ddt::flatten(wl.type, wl.count));
  }
  return runBulkExchange(cfg).meanLatencyUs();
}

std::vector<std::string> headersFor(
    const std::string& lead, const std::vector<schemes::Scheme>& scheme_list) {
  std::vector<std::string> headers{lead};
  for (auto s : scheme_list) headers.emplace_back(schemes::schemeName(s));
  headers.emplace_back("Speedup vs best other");
  return headers;
}

void addSweepRow(Table& table, std::string label,
                 const std::vector<schemes::Scheme>& scheme_list,
                 const std::vector<double>& lat) {
  std::vector<std::string> row{std::move(label)};
  double proposed = 0.0;
  double best_other = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < scheme_list.size(); ++i) {
    row.push_back(cellUs(lat[i]));
    if (scheme_list[i] == schemes::Scheme::Proposed ||
        scheme_list[i] == schemes::Scheme::ProposedTuned) {
      proposed = proposed == 0.0 ? lat[i] : std::min(proposed, lat[i]);
    } else {
      best_other = std::min(best_other, lat[i]);
    }
  }
  if (proposed > 0.0 && best_other < std::numeric_limits<double>::infinity()) {
    row.push_back(cell(best_other / proposed, 2) + "x");
  } else {
    row.emplace_back("-");
  }
  table.addRow(std::move(row));
}

}  // namespace

void schemeSweepTable(
    std::ostream& os, const hw::MachineSpec& machine,
    const std::function<workloads::Workload(std::size_t)>& make_workload,
    const std::vector<std::size_t>& dims,
    const std::vector<schemes::Scheme>& scheme_list, int n_ops,
    int iterations, int warmup) {
  // Every (dim, scheme) cell is an independent simulation: fan the grid
  // out over the sweep pool, then merge in index order so the table is
  // byte-identical to the serial sweep. The workload is rebuilt inside
  // each cell — cells share no mutable state.
  const std::size_t n_schemes = scheme_list.size();
  std::vector<double> lat(dims.size() * n_schemes);
  parallelFor(lat.size(), [&](std::size_t cell) {
    const std::size_t d = cell / n_schemes;
    const std::size_t s = cell % n_schemes;
    const auto wl = make_workload(dims[d]);
    lat[cell] = runOne(machine, scheme_list[s], wl, n_ops, iterations, warmup);
  });

  Table table(headersFor("dim (packed size)", scheme_list));
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const auto wl = make_workload(dims[d]);
    addSweepRow(table,
                std::to_string(dims[d]) + " (" +
                    formatBytes(wl.packedBytes()) + ")",
                scheme_list,
                {lat.begin() + static_cast<std::ptrdiff_t>(d * n_schemes),
                 lat.begin() + static_cast<std::ptrdiff_t>((d + 1) * n_schemes)});
  }
  table.print(os);
}

void neighborSweepTable(std::ostream& os, const hw::MachineSpec& machine,
                        const workloads::Workload& workload,
                        const std::vector<int>& neighbor_counts,
                        const std::vector<schemes::Scheme>& scheme_list,
                        int iterations, int warmup) {
  // The workload is shared across cells: eagerly populate the lazily
  // cached datatype description so concurrent cells only read it.
  workload.type->describe();

  const std::size_t n_schemes = scheme_list.size();
  std::vector<double> lat(neighbor_counts.size() * n_schemes);
  parallelFor(lat.size(), [&](std::size_t cell) {
    const std::size_t r = cell / n_schemes;
    const std::size_t s = cell % n_schemes;
    lat[cell] = runOne(machine, scheme_list[s], workload,
                       neighbor_counts[r], iterations, warmup);
  });

  Table table(headersFor("#buffers", scheme_list));
  for (std::size_t r = 0; r < neighbor_counts.size(); ++r) {
    addSweepRow(table, std::to_string(neighbor_counts[r]), scheme_list,
                {lat.begin() + static_cast<std::ptrdiff_t>(r * n_schemes),
                 lat.begin() +
                     static_cast<std::ptrdiff_t>((r + 1) * n_schemes)});
  }
  table.print(os);
}

}  // namespace dkf::bench
