#include "bench_util/experiment.hpp"

#include <algorithm>
#include <array>
#include <optional>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "hw/cluster.hpp"
#include "schemes/fusion_engine.hpp"

namespace dkf::bench {

DurationNs ExchangeResult::observedCommunication() const {
  // CPU-attributed categories only: (Un)Pack is GPU-side kernel time that
  // overlaps the CPU timeline (and, for synchronous schemes, is already
  // covered by the Sync. busy-wait).
  const DurationNs attributed = breakdown.launching + breakdown.scheduling +
                                breakdown.synchronize;
  return total_elapsed > attributed ? total_elapsed - attributed : 0;
}

namespace {

struct RankState {
  std::vector<gpu::MemSpan> send_bufs;
  std::vector<gpu::MemSpan> recv_bufs;
};

sim::Task<void> rankBody(mpi::Proc& proc, const ExchangeConfig& cfg,
                         RankState& bufs, int peer, bool timing_rank,
                         ExchangeResult& result) {
  const int total_iters = cfg.warmup + cfg.iterations;
  const bool sender_side = proc.rank() < peer;

  for (int iter = 0; iter < total_iters; ++iter) {
    co_await proc.barrier(2);
    if (timing_rank && iter == cfg.warmup) {
      // Discard warmup costs from the breakdown and the clock.
      proc.ddtEngine().breakdown().reset();
      result.total_elapsed = 0;
    }
    const TimeNs t0 = proc.engine().now();

    std::vector<mpi::RequestPtr> reqs;
    reqs.reserve(static_cast<std::size_t>(2 * cfg.n_ops));
    for (int i = 0; i < cfg.n_ops; ++i) {
      if (cfg.bidirectional || !sender_side) {
        reqs.push_back(co_await proc.irecv(bufs.recv_bufs[i],
                                           cfg.workload.type,
                                           cfg.workload.count, peer, i));
      }
    }
    for (int i = 0; i < cfg.n_ops; ++i) {
      if (cfg.bidirectional || sender_side) {
        reqs.push_back(co_await proc.isend(bufs.send_bufs[i],
                                           cfg.workload.type,
                                           cfg.workload.count, peer, i));
      }
    }
    co_await proc.waitall(std::move(reqs));

    const TimeNs t1 = proc.engine().now();
    if (timing_rank && iter >= cfg.warmup) {
      result.latency_us.add(toUs(t1 - t0));
      result.total_elapsed += (t1 - t0);
    }
  }
}

}  // namespace

ExchangeResult runBulkExchange(const ExchangeConfig& cfg) {
  DKF_CHECK(cfg.n_ops > 0 && cfg.iterations > 0);

  sim::Engine eng;
  hw::MachineSpec machine = cfg.machine;

  // Size the device arenas to the experiment: each rank keeps n_ops send +
  // n_ops recv regions plus packing staging and headroom.
  const std::size_t region =
      std::max<std::size_t>(cfg.workload.regionBytes(), 64);
  const std::size_t needed =
      region * static_cast<std::size_t>(cfg.n_ops) * 3 + (8u << 20);
  machine.node.gpu.arena_bytes = std::max(machine.node.gpu.arena_bytes, needed);

  // Only two ranks participate; provision one GPU per node (two for the
  // intra-node case) so arenas for unused GPUs are never allocated.
  machine.node.gpus_per_node = cfg.intra_node ? 2 : 1;
  hw::Cluster cluster(eng, machine, cfg.intra_node ? 1 : 2);

  std::optional<fault::FaultPlan> plan;
  if (cfg.inject_faults) {
    plan.emplace(eng, cfg.faults);
    cluster.setFaultPlan(&*plan);
  }
  if (cfg.watchdog > 0) eng.setWatchdog(cfg.watchdog);

  mpi::RuntimeConfig rt_cfg;
  rt_cfg.scheme = cfg.scheme;
  rt_cfg.tuned_threshold = cfg.tuned_threshold;
  rt_cfg.tuned_list_capacity = cfg.list_capacity;
  rt_cfg.tuned_max_requests = cfg.max_requests_per_kernel;
  rt_cfg.enable_direct_ipc = cfg.enable_direct_ipc;
  rt_cfg.rendezvous = cfg.rendezvous;
  rt_cfg.reliability = cfg.reliability;
  rt_cfg.batched_message_plane = cfg.batched_message_plane;
  mpi::Runtime rt(cluster, rt_cfg);

  const int rank_a = 0;
  const int rank_b = 1;

  // Allocate and fill the exchange buffers once, outside the timed loop.
  std::array<RankState, 2> states;
  std::array<mpi::Proc*, 2> procs{&rt.proc(rank_a), &rt.proc(rank_b)};
  Rng rng(0xBEEF);
  for (int side = 0; side < 2; ++side) {
    for (int i = 0; i < cfg.n_ops; ++i) {
      auto s = procs[side]->allocDevice(region);
      auto r = procs[side]->allocDevice(region);
      for (auto& b : s.bytes) b = static_cast<std::byte>(rng.below(256));
      states[side].send_bufs.push_back(s);
      states[side].recv_bufs.push_back(r);
    }
  }

  ExchangeResult result;
  eng.spawn(rankBody(*procs[0], cfg, states[0], rank_b, /*timing_rank=*/true,
                     result));
  eng.spawn(rankBody(*procs[1], cfg, states[1], rank_a, /*timing_rank=*/false,
                     result));
  eng.run();
  DKF_CHECK_MSG(eng.unfinishedTasks() == 0,
                "experiment deadlocked with " << eng.unfinishedTasks()
                                              << " suspended rank task(s)");

  result.breakdown = procs[0]->ddtEngine().breakdown();
  // Per-iteration averages (the paper reports mean latency of the loop).
  if (cfg.iterations > 0) {
    const auto n = static_cast<DurationNs>(cfg.iterations);
    result.breakdown.pack_unpack /= n;
    result.breakdown.launching /= n;
    result.breakdown.scheduling /= n;
    result.breakdown.synchronize /= n;
    result.breakdown.communication /= n;
    result.total_elapsed /= n;
  }
  result.breakdown.communication = result.observedCommunication();
  if (auto* fe =
          dynamic_cast<schemes::FusionEngine*>(&procs[0]->ddtEngine())) {
    result.fused_kernels = fe->scheduler().fusedKernelsLaunched();
    result.fallbacks = fe->fallbacks();
  }
  if (plan) result.fault_counters = plan->counters();
  for (const mpi::Proc* p : procs) {
    result.transport.retransmissions += p->transport().retransmissions;
    result.transport.acks_sent += p->transport().acks_sent;
    result.transport.duplicates_ignored += p->transport().duplicates_ignored;
    result.transport.host_staging_fallbacks +=
        p->transport().host_staging_fallbacks;
  }
  for (mpi::Proc* p : procs) {
    result.plan_cache.hits += p->planCache().hits();
    result.plan_cache.misses += p->planCache().misses();
    result.plan_cache.evictions += p->planCache().evictions();
    result.plan_cache.fallbacks += p->planCache().counters().fallbacks;
  }
  result.end_time = eng.now();
  std::uint64_t h = 14695981039346656037ull;
  for (const RankState& st : states) {
    for (const gpu::MemSpan& r : st.recv_bufs) {
      for (const std::byte b : r.bytes) {
        h ^= static_cast<std::uint64_t>(b);
        h *= 1099511628211ull;
      }
    }
  }
  result.recv_bytes_hash = h;
  return result;
}

}  // namespace dkf::bench
