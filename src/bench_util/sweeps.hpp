// Shared sweep drivers for the figure benches: scheme-comparison tables
// over a workload-size sweep (Figs. 12/13) or a neighbor-count sweep
// (Figs. 9/10).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "bench_util/experiment.hpp"

namespace dkf::bench {

/// Print a table: rows = `dims` (workload sizes), columns = `schemes`,
/// cells = mean bulk-exchange latency; plus a speedup column of
/// best-other / Proposed. `make_workload` maps a dim to the workload.
void schemeSweepTable(
    std::ostream& os, const hw::MachineSpec& machine,
    const std::function<workloads::Workload(std::size_t)>& make_workload,
    const std::vector<std::size_t>& dims,
    const std::vector<schemes::Scheme>& scheme_list, int n_ops,
    int iterations = 30, int warmup = 5);

/// Print a table: rows = neighbor counts (number of buffers), columns =
/// schemes (Figs. 9/10).
void neighborSweepTable(std::ostream& os, const hw::MachineSpec& machine,
                        const workloads::Workload& workload,
                        const std::vector<int>& neighbor_counts,
                        const std::vector<schemes::Scheme>& scheme_list,
                        int iterations = 30, int warmup = 5);

}  // namespace dkf::bench
