// Shared experiment harness for the paper's figures.
//
// `runBulkExchange` reproduces the paper's measurement loop (§V-A): two
// ranks on different nodes (or the same node for DirectIPC studies) perform
// `n_ops` back-to-back non-blocking exchanges of one workload datatype per
// iteration, separated by barriers; the reported latency is the mean over
// `iterations` timed iterations after `warmup` discarded ones (the paper
// uses 500 + 50; benches default lower where the sweep is wide, which
// changes nothing in virtual time — the simulation is deterministic).
#pragma once

#include <cstddef>
#include <string>

#include "common/stats.hpp"
#include "fault/fault_plan.hpp"
#include "hw/spec.hpp"
#include "mpi/runtime.hpp"
#include "schemes/factory.hpp"
#include "workloads/workloads.hpp"

namespace dkf::bench {

struct ExchangeConfig {
  hw::MachineSpec machine;
  schemes::Scheme scheme{schemes::Scheme::Proposed};
  std::size_t tuned_threshold{0};  ///< ProposedTuned override (bytes)
  std::size_t list_capacity{0};    ///< ProposedTuned request-list override
  std::size_t max_requests_per_kernel{0};  ///< ProposedTuned batch cap
  bool enable_direct_ipc{true};
  workloads::Workload workload;
  int n_ops{32};         ///< concurrent Isend/Irecv pairs per rank
  int iterations{100};   ///< timed iterations
  int warmup{10};        ///< discarded iterations
  bool intra_node{false};  ///< place both ranks on one node (DirectIPC)
  bool bidirectional{true};  ///< halo exchange (both directions at once)
  mpi::Protocol rendezvous{mpi::Protocol::RGet};
  /// Route progress through the batched message plane (the production
  /// path); false replays through the seed per-request coroutines — the
  /// shadow used for received-bytes equivalence checks.
  bool batched_message_plane{true};

  // ---- Fault injection (off by default: identical to the seed harness) --
  bool inject_faults{false};      ///< attach `faults` as a FaultPlan
  fault::FaultSpec faults{};      ///< what to inject (when enabled)
  mpi::ReliabilityConfig reliability{};  ///< retransmission layer
  DurationNs watchdog{0};  ///< >0: trip the sim watchdog past this deadline
};

struct ExchangeResult {
  SampleSet latency_us;        ///< per-iteration end-to-end latency
  TimeBreakdown breakdown;     ///< rank-0 engine costs over timed iterations
  DurationNs total_elapsed{0};  ///< timed virtual time on rank 0
  std::size_t fused_kernels{0};
  std::size_t fallbacks{0};

  /// Injected faults that actually fired (zeroes without a FaultPlan).
  fault::FaultCounters fault_counters{};
  /// Reliable-transport work summed over both ranks.
  mpi::TransportCounters transport{};
  /// Compiled-plan cache traffic summed over both ranks: repeat-layout
  /// exchanges should show misses bounded by distinct (op, structure)
  /// pairs and everything else hitting.
  core::PlanCacheCounters plan_cache{};
  /// Final virtual time of the whole run (determinism/replay checks).
  TimeNs end_time{0};
  /// FNV-1a over every recv buffer of both ranks at run end. Two configs
  /// that deliver the same payloads hash identically — the batched plane
  /// vs. seed-path shadow check keys on this.
  std::uint64_t recv_bytes_hash{0};

  double meanLatencyUs() const { return latency_us.mean(); }
  /// Residual "observed communication" time per Fig. 11: elapsed minus the
  /// CPU-attributed categories.
  DurationNs observedCommunication() const;
};

ExchangeResult runBulkExchange(const ExchangeConfig& cfg);

}  // namespace dkf::bench
