#include "bench_util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dkf::bench {

namespace {

std::atomic<unsigned> g_thread_override{0};

unsigned envThreads() {
  static const unsigned cached = [] {
    if (const char* env = std::getenv("DKF_SWEEP_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return 0u;
  }();
  return cached;
}

}  // namespace

unsigned sweepThreadCount() {
  if (const unsigned n = g_thread_override.load(std::memory_order_relaxed)) {
    return n;
  }
  if (const unsigned n = envThreads()) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

unsigned setSweepThreads(unsigned n) {
  return g_thread_override.exchange(n, std::memory_order_relaxed);
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallelFor(n, 0, fn);
}

void parallelFor(std::size_t n, std::size_t max_workers,
                 const std::function<void(std::size_t)>& fn) {
  std::size_t want = std::min<std::size_t>(sweepThreadCount(), n);
  if (max_workers > 0) want = std::min(want, max_workers);
  const unsigned threads = static_cast<unsigned>(want);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dkf::bench
