#include "bench_util/percentiles.hpp"

#include <algorithm>
#include <cmath>

namespace dkf::bench {

namespace {

double nearestRank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

PercentileSummary summarizePercentiles(const SampleSet& s) {
  return summarizePercentiles(s.samples());
}

PercentileSummary summarizePercentiles(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  PercentileSummary out;
  out.p50 = nearestRank(samples, 50.0);
  out.p99 = nearestRank(samples, 99.0);
  out.p999 = nearestRank(samples, 99.9);
  return out;
}

}  // namespace dkf::bench
