// The fusion framework's request list (§IV-A1).
//
// A fixed-capacity circular buffer of requests. Each entry carries exactly
// the fields the paper enumerates: UID, requested operation (Packing /
// Unpacking / DirectIPC), origin buffer, target buffer, cached data layout,
// request status (written by the host-side scheduler) and response status
// (written only by the "GPU" — in the simulator, by the fused kernel's
// per-op completion events). The scheduler maintains Head and Tail indices
// to know which requests are pending to be fused.
//
// Every hot operation is O(1) regardless of capacity (the progress engine
// touches this structure on every enqueue, launch and query, so at the
// bulk-transfer capacities of Figs. 9-10 a linear scan would dominate the
// simulator's wall-clock):
//   - an intrusive free list threads the Idle slots, so tryEnqueue pops a
//     slot without scanning for holes left by out-of-order retirement;
//   - a FIFO ring of pending slot indices is maintained in UID order (UIDs
//     are assigned monotonically at enqueue, so insertion order IS UID
//     order), so claimPendingBatch needs no scan-then-sort;
//   - a UID->slot window ring exploits UID monotonicity: live UIDs lie in
//     [lowestLiveUid(), nextUid()), and because the window is kept at most
//     as wide as the ring, `uid & (ring_size - 1)` addresses each live UID
//     uniquely. Retired entries are tombstoned and the window front
//     advances lazily.
//
// When the list is full, tryEnqueue returns a negative UID and the caller
// takes its fallback path (§IV-A2 ①). Querying that sentinel — or any UID
// never returned by tryEnqueue — is a caller bug and throws CheckFailure:
// "unknown" is distinguished from "already retired" so a caller that fell
// back on rejection can never observe a phantom completion.
#pragma once

#include <cstdint>
#include <vector>

#include "common/tenant.hpp"
#include "ddt/layout.hpp"
#include "gpu/memory.hpp"

namespace dkf::core {

enum class FusionOp : std::uint8_t { Packing, Unpacking, DirectIPC };

enum class Status : std::uint8_t { Idle, Pending, Busy, Completed };

struct FusionRequest {
  std::int64_t uid{-1};
  FusionOp op{FusionOp::Packing};
  gpu::MemSpan origin{};            ///< non-contiguous src (pack/direct) or
                                    ///< contiguous src (unpack)
  gpu::MemSpan target{};            ///< contiguous dst (pack) or
                                    ///< non-contiguous dst (unpack/direct)
  ddt::LayoutPtr layout{};          ///< layout of the non-contiguous side
  ddt::LayoutPtr target_layout{};   ///< DirectIPC only: dst layout
  TenantId tenant{kDefaultTenant};  ///< traffic class (MODEL.md §14)
  Status request_status{Status::Idle};
  Status response_status{Status::Idle};

  std::size_t bytes() const { return layout ? layout->size() : 0; }
};

class RequestList {
 public:
  /// Sentinel slot index ("no slot").
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit RequestList(std::size_t capacity);

  std::size_t capacity() const { return slots_.size(); }
  /// Requests enqueued but not yet handed to a fused kernel.
  std::size_t pendingCount() const { return pending_; }
  /// Sum of bytes over pending requests — the fusion-threshold input.
  std::size_t pendingBytes() const { return pending_bytes_; }
  /// True if any pending (unclaimed) request belongs to `tenant`.
  /// O(pending). Used by admission backpressure (MODEL.md §14): a blocked
  /// tenant flushes only when it has work of its own to drain, so it never
  /// shatters another tenant's kernel batching.
  bool hasPendingFor(TenantId tenant) const;
  /// Requests currently executing on the GPU.
  std::size_t busyCount() const { return busy_; }
  /// Entries occupied (pending + busy + completed-not-yet-retired).
  std::size_t occupied() const { return occupied_; }
  bool full() const { return occupied_ == slots_.size(); }
  bool empty() const { return occupied_ == 0; }

  /// ① Insert at Tail. Returns the assigned UID, or -1 if the list is full
  /// (caller falls back). The entry starts in Pending. O(1).
  std::int64_t tryEnqueue(FusionRequest req);

  /// Collect up to `max_requests` pending slot indices (oldest first) and
  /// mark them Busy — the batch for one fused kernel (② in Fig. 5).
  /// O(batch size).
  std::vector<std::size_t> claimPendingBatch(std::size_t max_requests);

  /// Weighted-fair claim (MODEL.md §14): pick up to `max_requests` pending
  /// entries by deficit round robin over tenants — per visit a tenant's
  /// credit grows by quantum_bytes x its weight and pays per claimed byte,
  /// so an oversubscribed batch drains tenants in proportion to their
  /// weights instead of arrival order. Within a tenant, oldest first; the
  /// returned batch is in UID order. Degenerates to claimPendingBatch when
  /// everything pending fits in one batch. O(pending).
  std::vector<std::size_t> claimPendingBatchWeighted(
      std::size_t max_requests, const TenantWeights& weights,
      std::size_t quantum_bytes);

  /// ③ GPU-side completion: the fused kernel signals a request by writing
  /// its response status (no host synchronization involved). O(1).
  void signalCompletion(std::size_t slot);

  /// ④ Status query by UID: Completed entries are retired (slot recycled to
  /// Idle and returned to the free list). Returns true once the request has
  /// been retired (now or earlier), false while it is still in flight.
  /// UIDs never issued by tryEnqueue — negative values (including the -1
  /// rejection sentinel) and values >= nextUid() — throw CheckFailure.
  /// Amortized O(1).
  bool queryAndRetire(std::int64_t uid);

  /// Direct slot access for the fused-kernel builder.
  FusionRequest& slot(std::size_t index);
  const FusionRequest& slot(std::size_t index) const;

  std::size_t totalEnqueued() const { return total_enqueued_; }
  std::size_t totalRejected() const { return total_rejected_; }
  std::size_t totalRetired() const { return total_retired_; }

  /// UID the next tryEnqueue will assign; all issued UIDs are < this.
  std::int64_t nextUid() const { return next_uid_; }
  /// Smallest UID not yet retired (== nextUid() when nothing is live).
  /// Every UID below this has completed its full lifecycle.
  std::int64_t lowestLiveUid() const { return lowest_live_uid_; }

  /// Debug toggle: when on, every mutating operation re-audits the full
  /// structure via checkInvariants(). O(capacity) per op — tests only.
  void setAudit(bool on) { audit_ = on; }

  /// Invariant audit used by tests: counters match a full scan, the free
  /// list threads exactly the Idle slots, the pending ring holds exactly
  /// the Pending slots in UID order, and the UID window maps every
  /// occupied slot (and nothing else).
  void checkInvariants() const;

 private:
  /// Slot currently holding `uid`, or npos if that UID is retired.
  /// Precondition: 0 <= uid < next_uid_. O(1).
  std::size_t slotOfUid(std::int64_t uid) const;
  /// Double the UID window ring (rare: only when the span of live UIDs
  /// outgrows it because one old request lingers unretired).
  void growUidRing();
  void maybeAudit() const {
    if (audit_) checkInvariants();
  }

  std::vector<FusionRequest> slots_;

  /// Intrusive free list of Idle slots: free_next_[s] chains slot s to the
  /// next free slot (npos terminates). Replaces the Tail scan for holes.
  std::vector<std::size_t> free_next_;
  std::size_t free_head_{npos};

  /// Ring of pending slot indices in UID (= insertion) order.
  /// pending_ring_ has the same capacity as slots_; pending_ is the
  /// occupancy and pending_head_ the oldest entry.
  std::vector<std::size_t> pending_ring_;
  std::size_t pending_head_{0};

  /// UID->slot window: uid_ring_[uid & uid_mask_] == slot holding `uid`
  /// for live UIDs, npos tombstone for UIDs retired inside the window
  /// [lowest_live_uid_, next_uid_). Power-of-two sized.
  std::vector<std::size_t> uid_ring_;
  std::size_t uid_mask_{0};

  std::size_t occupied_{0};
  std::size_t pending_{0};
  std::size_t pending_bytes_{0};
  std::size_t busy_{0};
  std::int64_t next_uid_{0};
  std::int64_t lowest_live_uid_{0};
  std::size_t total_enqueued_{0};
  std::size_t total_rejected_{0};
  std::size_t total_retired_{0};
  bool audit_{false};
};

}  // namespace dkf::core
