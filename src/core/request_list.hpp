// The fusion framework's request list (§IV-A1).
//
// A fixed-capacity circular buffer of requests. Each entry carries exactly
// the fields the paper enumerates: UID, requested operation (Packing /
// Unpacking / DirectIPC), origin buffer, target buffer, cached data layout,
// request status (written by the host-side scheduler) and response status
// (written only by the "GPU" — in the simulator, by the fused kernel's
// per-op completion events). The scheduler maintains Head and Tail indices
// to know which requests are pending to be fused.
//
// When the list is full, tryEnqueue returns a negative UID and the caller
// takes its fallback path (§IV-A2 ①).
#pragma once

#include <cstdint>
#include <vector>

#include "ddt/layout.hpp"
#include "gpu/memory.hpp"

namespace dkf::core {

enum class FusionOp : std::uint8_t { Packing, Unpacking, DirectIPC };

enum class Status : std::uint8_t { Idle, Pending, Busy, Completed };

struct FusionRequest {
  std::int64_t uid{-1};
  FusionOp op{FusionOp::Packing};
  gpu::MemSpan origin{};            ///< non-contiguous src (pack/direct) or
                                    ///< contiguous src (unpack)
  gpu::MemSpan target{};            ///< contiguous dst (pack) or
                                    ///< non-contiguous dst (unpack/direct)
  ddt::LayoutPtr layout{};          ///< layout of the non-contiguous side
  ddt::LayoutPtr target_layout{};   ///< DirectIPC only: dst layout
  Status request_status{Status::Idle};
  Status response_status{Status::Idle};

  std::size_t bytes() const { return layout ? layout->size() : 0; }
};

class RequestList {
 public:
  explicit RequestList(std::size_t capacity);

  std::size_t capacity() const { return slots_.size(); }
  /// Requests enqueued but not yet handed to a fused kernel.
  std::size_t pendingCount() const { return pending_; }
  /// Sum of bytes over pending requests — the fusion-threshold input.
  std::size_t pendingBytes() const { return pending_bytes_; }
  /// Requests currently executing on the GPU.
  std::size_t busyCount() const { return busy_; }
  /// Entries occupied (pending + busy + completed-not-yet-retired).
  std::size_t occupied() const { return occupied_; }
  bool full() const { return occupied_ == slots_.size(); }
  bool empty() const { return occupied_ == 0; }

  /// ① Insert at Tail. Returns the assigned UID, or -1 if the list is full
  /// (caller falls back). The entry starts in Pending.
  std::int64_t tryEnqueue(FusionRequest req);

  /// Collect up to `max_requests` pending slot indices (oldest first) and
  /// mark them Busy — the batch for one fused kernel (② in Fig. 5).
  std::vector<std::size_t> claimPendingBatch(std::size_t max_requests);

  /// ③ GPU-side completion: the fused kernel signals a request by writing
  /// its response status (no host synchronization involved).
  void signalCompletion(std::size_t slot);

  /// ④ Status query by UID: Completed entries are retired (slot recycled to
  /// Idle, Head advances past retired prefixes). Unknown UIDs are treated
  /// as already retired — they were completed and reclaimed earlier.
  bool queryAndRetire(std::int64_t uid);

  /// Direct slot access for the fused-kernel builder.
  FusionRequest& slot(std::size_t index);
  const FusionRequest& slot(std::size_t index) const;

  std::size_t totalEnqueued() const { return total_enqueued_; }
  std::size_t totalRejected() const { return total_rejected_; }
  std::size_t totalRetired() const { return total_retired_; }

  /// Invariant audit used by tests: counters match a full scan.
  void checkInvariants() const;

 private:
  std::size_t slotOfUid(std::int64_t uid) const;

  std::vector<FusionRequest> slots_;
  std::size_t tail_{0};  ///< insertion scan position ("Tail moves to the
                         ///< next IDLE entry", §IV-A2); the Head of the
                         ///< paper is implicit — batches claim the oldest
                         ///< pending requests by UID order
  std::size_t occupied_{0};
  std::size_t pending_{0};
  std::size_t pending_bytes_{0};
  std::size_t busy_{0};
  std::int64_t next_uid_{0};
  std::size_t total_enqueued_{0};
  std::size_t total_rejected_{0};
  std::size_t total_retired_{0};
};

}  // namespace dkf::core
