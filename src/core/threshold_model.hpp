// Model-based fusion-threshold prediction — the paper's stated future work
// (§IV-C: "In future work, we plan to develop a model-based prediction to
// dynamically figure out the optimal threshold for kernel fusion that can
// maximize the overlap between the fused kernel and communication.").
//
// The model follows the paper's own principle: "make sure the running time
// of the fused kernel is longer than the kernel launch overhead, either
// through fusing more kernels or fusing more data in each kernel", balanced
// against the cost of delaying communication.
//
// For a batch of B bytes with mean contiguous run r:
//   t_kernel(B)  = kernel_fixed + B / (eff(r) * pack_bw)   fused kernel time
//   t_launch     = kernel_launch_overhead                   paid once per batch
//   t_wire(B)    = B / net_bw                               transfer time
//
// Under-fused: B too small -> t_kernel(B) << t_launch, launches dominate.
// Over-fused:  B too large -> the first message is delayed by t_kernel(B)
//              with nothing on the wire to overlap it.
//
// The predictor picks the smallest B where the launch overhead is amortized
// to at most `launch_amortization` of the batch's kernel time AND the
// kernel time does not exceed `max_delay_fraction` of the batch's wire time
// (so the delayed communication can still be fully overlapped by the next
// batch's kernel). The result is clamped to sane bounds and quantized to
// whole operations.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "ddt/layout.hpp"
#include "hw/spec.hpp"

namespace dkf::core {

struct ThresholdModelParams {
  /// Target: launch overhead <= this fraction of fused-kernel time.
  double launch_amortization{0.25};
  /// Target: fused-kernel time <= this multiple of its own wire time
  /// (larger batches delay communication past the overlap window).
  double max_delay_fraction{1.0};
  std::size_t min_threshold{16 * 1024};
  std::size_t max_threshold{64ull * 1024 * 1024};
};

class ThresholdModel {
 public:
  ThresholdModel(const hw::GpuSpec& gpu, BytesPerSecond network_bandwidth,
                 ThresholdModelParams params = {});

  /// Effective fused-kernel packing bandwidth (bytes/ns) for layouts with
  /// mean contiguous run `mean_run_bytes`, assuming enough requests to
  /// occupy the device.
  double packBandwidth(double mean_run_bytes) const;

  /// Predicted fused-kernel execution time for a batch of `bytes`.
  DurationNs kernelTime(std::size_t bytes, double mean_run_bytes) const;

  /// Predicted wire time for `bytes`.
  DurationNs wireTime(std::size_t bytes) const;

  /// The model's threshold for a workload whose operations carry
  /// `op_bytes` payload with mean contiguous run `mean_run_bytes`.
  std::size_t predict(std::size_t op_bytes, double mean_run_bytes) const;

  /// Convenience: predict from a flattened layout.
  std::size_t predict(const ddt::Layout& layout) const {
    return predict(layout.size(), layout.meanBlock());
  }

  const ThresholdModelParams& params() const { return params_; }

 private:
  hw::GpuSpec gpu_;
  BytesPerSecond net_;
  ThresholdModelParams params_;
};

}  // namespace dkf::core
