#include "core/threshold_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dkf::core {

ThresholdModel::ThresholdModel(const hw::GpuSpec& gpu,
                               BytesPerSecond network_bandwidth,
                               ThresholdModelParams params)
    : gpu_(gpu), net_(network_bandwidth), params_(params) {
  DKF_CHECK(params_.launch_amortization > 0.0);
  DKF_CHECK(params_.max_delay_fraction > 0.0);
  DKF_CHECK(params_.min_threshold <= params_.max_threshold);
}

double ThresholdModel::packBandwidth(double mean_run_bytes) const {
  // A well-occupied fused kernel streams at HBM peak scaled by the
  // access efficiency of the layout's contiguous runs.
  return gpu_.hbm_bandwidth.bytesPerNs() *
         gpu_.accessEfficiency(mean_run_bytes);
}

DurationNs ThresholdModel::kernelTime(std::size_t bytes,
                                      double mean_run_bytes) const {
  const double bw = packBandwidth(mean_run_bytes);
  return gpu_.kernel_fixed_cost +
         static_cast<DurationNs>(std::ceil(static_cast<double>(bytes) / bw));
}

DurationNs ThresholdModel::wireTime(std::size_t bytes) const {
  return net_.transferTime(bytes);
}

std::size_t ThresholdModel::predict(std::size_t op_bytes,
                                    double mean_run_bytes) const {
  DKF_CHECK(op_bytes > 0);

  // Lower bound: enough bytes that ONE launch overhead is no more than
  // `launch_amortization` of the fused kernel's execution time.
  //   launch <= a * (fixed + B/bw)  =>  B >= bw * (launch/a - fixed)
  const double bw = packBandwidth(mean_run_bytes);
  const double launch = static_cast<double>(gpu_.kernel_launch_overhead);
  const double fixed = static_cast<double>(gpu_.kernel_fixed_cost);
  double min_bytes = bw * (launch / params_.launch_amortization - fixed);
  min_bytes = std::max(min_bytes, 0.0);

  // Upper bound: the batch's kernel must not outlast `max_delay_fraction`
  // of its own wire time, or delayed communication stops overlapping.
  //   fixed + B/bw <= d * B/net  =>  B * (d/net - 1/bw) >= fixed
  const double net = net_.bytesPerNs();
  const double lhs = params_.max_delay_fraction / net - 1.0 / bw;
  double max_bytes = static_cast<double>(params_.max_threshold);
  if (lhs > 0.0) {
    // Any batch above fixed/lhs satisfies the constraint: packing is
    // faster than the wire, so delay never accumulates — no upper bound.
  } else {
    // Packing is slower than the wire: batches beyond the point where the
    // kernel alone exceeds the wire time of the data already accumulated
    // start starving the network. Cap at the break-even batch.
    //   fixed + B/bw == d * B/net  has no positive solution when
    //   1/bw > d/net for all B, so cap at the bytes whose kernel time
    //   equals the wire time of one additional batch round:
    const double cap = params_.max_delay_fraction * bw * net /
                       std::max(net - params_.max_delay_fraction * bw, 1e-9) *
                       (fixed / std::max(launch, 1.0) + 1.0);
    max_bytes = std::min(max_bytes, std::max(cap, min_bytes));
  }

  // Quantize up to whole operations and clamp.
  const double ops = std::ceil(min_bytes / static_cast<double>(op_bytes));
  std::size_t threshold =
      static_cast<std::size_t>(std::max(ops, 1.0)) * op_bytes;
  threshold = std::clamp(threshold,
                         params_.min_threshold,
                         static_cast<std::size_t>(
                             std::max(max_bytes,
                                      static_cast<double>(params_.min_threshold))));
  return threshold;
}

}  // namespace dkf::core
