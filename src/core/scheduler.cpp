#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "ddt/pack.hpp"

namespace dkf::core {

FusionScheduler::FusionScheduler(sim::Engine& eng, sim::CpuTimeline& cpu,
                                 gpu::Gpu& gpu, FusionPolicy policy)
    : eng_(&eng),
      cpu_(&cpu),
      gpu_(&gpu),
      policy_(policy),
      list_(policy.list_capacity),
      stream_(gpu.createStream()) {
  counters_.batch_size_hist.resize(policy_.max_requests_per_kernel + 1, 0);
}

void FusionScheduler::setTracer(sim::Tracer* tracer, const std::string& name) {
  tracer_ = tracer;
  trace_name_ = name;
  if (tracer_ && tracer_->isEnabled()) {
    trace_track_ = tracer_->track(name + ".sched");
  }
}

void FusionScheduler::traceBacklog() {
  if (!tracer_ || !tracer_->isEnabled()) return;
  tracer_->counter(trace_name_ + ".pending_bytes", eng_->now(),
                   static_cast<double>(list_.pendingBytes()));
  tracer_->counter(trace_name_ + ".pending_requests", eng_->now(),
                   static_cast<double>(list_.pendingCount()));
}

sim::Task<std::int64_t> FusionScheduler::enqueue(FusionRequest req) {
  co_await cpu_->busy(policy_.enqueue_cost);
  const std::int64_t uid = list_.tryEnqueue(std::move(req));
  if (uid < 0) {
    // Full list: the caller re-runs this operation on its fallback path,
    // which accounts for it there — book the wasted attempt separately so
    // Fig. 11 breakdowns don't count the message twice.
    rejected_scheduling_ += policy_.enqueue_cost;
    ++counters_.rejections;
    if (tracer_ && tracer_->isEnabled()) {
      tracer_->instant(trace_track_, "reject", eng_->now(), "fusion");
    }
    co_return uid;  // caller falls back (§IV-A2 ①)
  }
  breakdown_.scheduling += policy_.enqueue_cost;
  ++counters_.enqueues;
  if (tracer_ && tracer_->isEnabled()) {
    tracer_->instant(trace_track_, "enqueue uid=" + std::to_string(uid),
                     eng_->now(), "fusion");
    traceBacklog();
  }

  if (list_.pendingBytes() >= policy_.threshold_bytes ||
      list_.pendingCount() >= policy_.max_requests_per_kernel) {
    co_await launchBatch();  // scenario 2: enough work to hide the launch
  }
  co_return uid;
}

sim::Task<void> FusionScheduler::flush() {
  while (list_.pendingCount() > 0) {
    co_await launchBatch();  // scenario 1: progress engine is blocking
  }
}

DurationNs FusionScheduler::retryBackoff(std::size_t attempt) const {
  // Exponential backoff with a hard ceiling. Shifting by the raw attempt
  // number is UB once it reaches the width of DurationNs (max_launch_attempts
  // is policy, not a constant), so clamp the exponent first: past
  // kMaxBackoffShift the unclamped value already exceeds any sane ceiling.
  constexpr std::size_t kMaxBackoffShift = 32;
  const DurationNs base = std::max<DurationNs>(policy_.launch_retry_backoff, 1);
  const DurationNs cap =
      std::max<DurationNs>(policy_.max_launch_retry_backoff, base);
  if (attempt >= kMaxBackoffShift) return cap;
  return std::min<DurationNs>(base << attempt, cap);
}

sim::Task<void> FusionScheduler::launchBatch() {
  const std::vector<std::size_t> batch =
      policy_.weighted_fair
          ? list_.claimPendingBatchWeighted(policy_.max_requests_per_kernel,
                                            policy_.tenant_weights,
                                            policy_.fair_quantum_bytes)
          : list_.claimPendingBatch(policy_.max_requests_per_kernel);
  if (batch.empty()) co_return;

  std::size_t batch_bytes = 0;
  for (const std::size_t slot_index : batch) {
    const FusionRequest& r = list_.slot(slot_index);
    batch_bytes += r.bytes();
    if (r.tenant >= counters_.tenant_fused.size()) {
      counters_.tenant_fused.resize(r.tenant + 1, 0);
    }
    ++counters_.tenant_fused[r.tenant];
  }

  // Lower each request to its kernel-op template ONCE per batch (the
  // request's op kind fixes the kernel op — nothing here depends on the
  // attempt). launchKernel consumes its vector and an injected launch
  // failure queues nothing, so retries clone the templates and re-attach
  // the move-only completion hooks.
  std::vector<gpu::Gpu::Op> op_templates;
  op_templates.reserve(batch.size());
  for (const std::size_t slot_index : batch) {
    FusionRequest& r = list_.slot(slot_index);
    gpu::Gpu::Op op;
    switch (r.op) {
      case FusionOp::Packing:
        op.kind = gpu::Gpu::Op::Kind::Pack;
        break;
      case FusionOp::Unpacking:
        op.kind = gpu::Gpu::Op::Kind::Unpack;
        break;
      case FusionOp::DirectIPC:
        op.kind = gpu::Gpu::Op::Kind::StridedCopy;
        op.dst_layout = r.target_layout;
        break;
    }
    op.layout = r.layout;
    op.src = r.origin.bytes;
    op.dst = r.target.bytes;
    op_templates.push_back(std::move(op));
  }
  const auto build_ops = [&op_templates] {
    std::vector<gpu::Gpu::Op> ops;
    ops.reserve(op_templates.size());
    for (const gpu::Gpu::Op& tpl : op_templates) {
      ops.push_back(tpl.clone());
    }
    return ops;
  };
  // ③: the GPU thread block signals the response status directly — one
  // kernel-level fan-in hook for the whole batch instead of a captured
  // closure per op (the batch->slot map is shared across retry attempts).
  auto batch_slots = std::make_shared<std::vector<std::size_t>>(batch);
  const auto completion_fanin = [this, batch_slots] {
    return gpu::Gpu::OpCompleteFn(
        [list = &list_, batch_slots](std::size_t op_index) {
          list->signalCompletion((*batch_slots)[op_index]);
        });
  };

  const TimeNs launch_begin = eng_->now();

  gpu::Gpu::KernelHandle handle;
  for (std::size_t attempt = 0;; ++attempt) {
    // ONE kernel launch overhead for the whole batch — the point of fusion.
    co_await cpu_->busy(gpu_->spec().kernel_launch_overhead);
    breakdown_.launching += gpu_->spec().kernel_launch_overhead;
    handle = gpu_->launchKernel(stream_, build_ops(), completion_fanin());
    if (!handle.failed) break;
    ++counters_.launch_failures;
    if (tracer_ && tracer_->isEnabled()) {
      tracer_->instant(trace_track_,
                       "launch_failed attempt=" + std::to_string(attempt + 1),
                       eng_->now(), "fault");
    }
    if (attempt + 1 >= policy_.max_launch_attempts) {
      co_await runBatchOnCpu(batch, batch_bytes);
      co_return;
    }
    co_await eng_->delay(retryBackoff(attempt));
  }
  breakdown_.pack_unpack += handle.end - handle.start;
  ++kernels_;
  requests_fused_ += batch.size();
  ++counters_.batches;
  ++counters_.batch_size_hist[batch.size()];
  if (tracer_ && tracer_->isEnabled()) {
    tracer_->span(trace_track_,
                  "fused[" + std::to_string(batch.size()) + " reqs, " +
                      std::to_string(batch_bytes) + " B]",
                  launch_begin, handle.end, "fusion");
    traceBacklog();
  }
}

sim::Task<void> FusionScheduler::runBatchOnCpu(
    const std::vector<std::size_t>& batch, std::size_t batch_bytes) {
  // The device refused this batch repeatedly: keep the requests alive by
  // doing their data movement on the host at CPU pack speed. Slower than
  // any fused kernel, but every request still completes and retires
  // through the normal query path.
  const TimeNs begin = eng_->now();
  const auto cost = static_cast<DurationNs>(std::ceil(
      static_cast<double>(batch_bytes) / policy_.cpu_fallback_bytes_per_ns));
  co_await cpu_->busy(cost);
  breakdown_.pack_unpack += cost;
  for (const std::size_t slot_index : batch) {
    FusionRequest& r = list_.slot(slot_index);
    switch (r.op) {
      case FusionOp::Packing:
        ddt::packCpu(*r.layout, r.origin.bytes, r.target.bytes);
        break;
      case FusionOp::Unpacking:
        ddt::unpackCpu(*r.layout, r.origin.bytes, r.target.bytes);
        break;
      case FusionOp::DirectIPC:
        ddt::copyStrided(*r.layout, r.origin.bytes, *r.target_layout,
                         r.target.bytes);
        break;
    }
    list_.signalCompletion(slot_index);
    ++counters_.cpu_fallback_requests;
  }
  ++counters_.cpu_fallback_batches;
  ++counters_.batches;
  ++counters_.batch_size_hist[batch.size()];
  if (tracer_ && tracer_->isEnabled()) {
    tracer_->span(trace_track_,
                  "cpu_fallback[" + std::to_string(batch.size()) + " reqs, " +
                      std::to_string(batch_bytes) + " B]",
                  begin, eng_->now(), "fault");
    traceBacklog();
  }
}

bool FusionScheduler::query(std::int64_t uid) {
  breakdown_.synchronize += policy_.query_cost;
  return list_.queryAndRetire(uid);
}

}  // namespace dkf::core
