#include "core/scheduler.hpp"

namespace dkf::core {

FusionScheduler::FusionScheduler(sim::Engine& eng, sim::CpuTimeline& cpu,
                                 gpu::Gpu& gpu, FusionPolicy policy)
    : eng_(&eng),
      cpu_(&cpu),
      gpu_(&gpu),
      policy_(policy),
      list_(policy.list_capacity),
      stream_(gpu.createStream()) {
  counters_.batch_size_hist.resize(policy_.max_requests_per_kernel + 1, 0);
}

void FusionScheduler::setTracer(sim::Tracer* tracer, const std::string& name) {
  tracer_ = tracer;
  trace_name_ = name;
  if (tracer_ && tracer_->isEnabled()) {
    trace_track_ = tracer_->track(name + ".sched");
  }
}

void FusionScheduler::traceBacklog() {
  if (!tracer_ || !tracer_->isEnabled()) return;
  tracer_->counter(trace_name_ + ".pending_bytes", eng_->now(),
                   static_cast<double>(list_.pendingBytes()));
  tracer_->counter(trace_name_ + ".pending_requests", eng_->now(),
                   static_cast<double>(list_.pendingCount()));
}

sim::Task<std::int64_t> FusionScheduler::enqueue(FusionRequest req) {
  co_await cpu_->busy(policy_.enqueue_cost);
  const std::int64_t uid = list_.tryEnqueue(std::move(req));
  if (uid < 0) {
    // Full list: the caller re-runs this operation on its fallback path,
    // which accounts for it there — book the wasted attempt separately so
    // Fig. 11 breakdowns don't count the message twice.
    rejected_scheduling_ += policy_.enqueue_cost;
    ++counters_.rejections;
    if (tracer_ && tracer_->isEnabled()) {
      tracer_->instant(trace_track_, "reject", eng_->now(), "fusion");
    }
    co_return uid;  // caller falls back (§IV-A2 ①)
  }
  breakdown_.scheduling += policy_.enqueue_cost;
  ++counters_.enqueues;
  if (tracer_ && tracer_->isEnabled()) {
    tracer_->instant(trace_track_, "enqueue uid=" + std::to_string(uid),
                     eng_->now(), "fusion");
    traceBacklog();
  }

  if (list_.pendingBytes() >= policy_.threshold_bytes ||
      list_.pendingCount() >= policy_.max_requests_per_kernel) {
    co_await launchBatch();  // scenario 2: enough work to hide the launch
  }
  co_return uid;
}

sim::Task<void> FusionScheduler::flush() {
  while (list_.pendingCount() > 0) {
    co_await launchBatch();  // scenario 1: progress engine is blocking
  }
}

sim::Task<void> FusionScheduler::launchBatch() {
  const std::vector<std::size_t> batch =
      list_.claimPendingBatch(policy_.max_requests_per_kernel);
  if (batch.empty()) co_return;

  std::vector<gpu::Gpu::Op> ops;
  ops.reserve(batch.size());
  std::size_t batch_bytes = 0;
  for (const std::size_t slot_index : batch) {
    FusionRequest& r = list_.slot(slot_index);
    batch_bytes += r.bytes();
    gpu::Gpu::Op op;
    switch (r.op) {
      case FusionOp::Packing:
        op.kind = gpu::Gpu::Op::Kind::Pack;
        op.layout = r.layout;
        op.src = r.origin.bytes;
        op.dst = r.target.bytes;
        break;
      case FusionOp::Unpacking:
        op.kind = gpu::Gpu::Op::Kind::Unpack;
        op.layout = r.layout;
        op.src = r.origin.bytes;
        op.dst = r.target.bytes;
        break;
      case FusionOp::DirectIPC:
        op.kind = gpu::Gpu::Op::Kind::StridedCopy;
        op.layout = r.layout;
        op.dst_layout = r.target_layout;
        op.src = r.origin.bytes;
        op.dst = r.target.bytes;
        break;
    }
    // ③: the GPU thread block signals the response status directly.
    RequestList* list = &list_;
    op.on_complete = [list, slot_index] { list->signalCompletion(slot_index); };
    ops.push_back(std::move(op));
  }

  const TimeNs launch_begin = eng_->now();

  // ONE kernel launch overhead for the whole batch — the point of fusion.
  co_await cpu_->busy(gpu_->spec().kernel_launch_overhead);
  breakdown_.launching += gpu_->spec().kernel_launch_overhead;

  const auto handle = gpu_->launchKernel(stream_, std::move(ops));
  breakdown_.pack_unpack += handle.end - handle.start;
  ++kernels_;
  requests_fused_ += batch.size();
  ++counters_.batches;
  ++counters_.batch_size_hist[batch.size()];
  if (tracer_ && tracer_->isEnabled()) {
    tracer_->span(trace_track_,
                  "fused[" + std::to_string(batch.size()) + " reqs, " +
                      std::to_string(batch_bytes) + " B]",
                  launch_begin, handle.end, "fusion");
    traceBacklog();
  }
}

bool FusionScheduler::query(std::int64_t uid) {
  breakdown_.synchronize += policy_.query_cost;
  return list_.queryAndRetire(uid);
}

}  // namespace dkf::core
