#include "core/scheduler.hpp"

namespace dkf::core {

FusionScheduler::FusionScheduler(sim::Engine& eng, sim::CpuTimeline& cpu,
                                 gpu::Gpu& gpu, FusionPolicy policy)
    : eng_(&eng),
      cpu_(&cpu),
      gpu_(&gpu),
      policy_(policy),
      list_(policy.list_capacity),
      stream_(gpu.createStream()) {}

sim::Task<std::int64_t> FusionScheduler::enqueue(FusionRequest req) {
  co_await cpu_->busy(policy_.enqueue_cost);
  breakdown_.scheduling += policy_.enqueue_cost;
  const std::int64_t uid = list_.tryEnqueue(std::move(req));
  if (uid < 0) co_return uid;  // full: caller falls back (§IV-A2 ①)

  if (list_.pendingBytes() >= policy_.threshold_bytes ||
      list_.pendingCount() >= policy_.max_requests_per_kernel) {
    co_await launchBatch();  // scenario 2: enough work to hide the launch
  }
  co_return uid;
}

sim::Task<void> FusionScheduler::flush() {
  while (list_.pendingCount() > 0) {
    co_await launchBatch();  // scenario 1: progress engine is blocking
  }
}

sim::Task<void> FusionScheduler::launchBatch() {
  const std::vector<std::size_t> batch =
      list_.claimPendingBatch(policy_.max_requests_per_kernel);
  if (batch.empty()) co_return;

  std::vector<gpu::Gpu::Op> ops;
  ops.reserve(batch.size());
  for (const std::size_t slot_index : batch) {
    FusionRequest& r = list_.slot(slot_index);
    gpu::Gpu::Op op;
    switch (r.op) {
      case FusionOp::Packing:
        op.kind = gpu::Gpu::Op::Kind::Pack;
        op.layout = r.layout;
        op.src = r.origin.bytes;
        op.dst = r.target.bytes;
        break;
      case FusionOp::Unpacking:
        op.kind = gpu::Gpu::Op::Kind::Unpack;
        op.layout = r.layout;
        op.src = r.origin.bytes;
        op.dst = r.target.bytes;
        break;
      case FusionOp::DirectIPC:
        op.kind = gpu::Gpu::Op::Kind::StridedCopy;
        op.layout = r.layout;
        op.dst_layout = r.target_layout;
        op.src = r.origin.bytes;
        op.dst = r.target.bytes;
        break;
    }
    // ③: the GPU thread block signals the response status directly.
    RequestList* list = &list_;
    op.on_complete = [list, slot_index] { list->signalCompletion(slot_index); };
    ops.push_back(std::move(op));
  }

  // ONE kernel launch overhead for the whole batch — the point of fusion.
  co_await cpu_->busy(gpu_->spec().kernel_launch_overhead);
  breakdown_.launching += gpu_->spec().kernel_launch_overhead;

  const auto handle = gpu_->launchKernel(stream_, std::move(ops));
  breakdown_.pack_unpack += handle.end - handle.start;
  ++kernels_;
  requests_fused_ += batch.size();
}

bool FusionScheduler::query(std::int64_t uid) {
  breakdown_.synchronize += policy_.query_cost;
  return list_.queryAndRetire(uid);
}

}  // namespace dkf::core
