#include "core/fusion_plan.hpp"

#include <utility>

#include "common/check.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace dkf::core {

// ----------------------------------------------------------- FusionPlan ----

FusionPlan& FusionPlan::addPack(ddt::LayoutPtr layout) {
  DKF_CHECK(layout != nullptr);
  ops_.push_back(PlanOp{FusionOp::Packing, std::move(layout), nullptr});
  return *this;
}

FusionPlan& FusionPlan::addUnpack(ddt::LayoutPtr layout) {
  DKF_CHECK(layout != nullptr);
  ops_.push_back(PlanOp{FusionOp::Unpacking, std::move(layout), nullptr});
  return *this;
}

FusionPlan& FusionPlan::addStridedCopy(ddt::LayoutPtr src_layout,
                                       ddt::LayoutPtr dst_layout) {
  DKF_CHECK(src_layout != nullptr);
  DKF_CHECK(dst_layout != nullptr);
  ops_.push_back(PlanOp{FusionOp::DirectIPC, std::move(src_layout),
                        std::move(dst_layout)});
  return *this;
}

bool FusionPlan::needsDirect() const {
  for (const PlanOp& op : ops_) {
    if (op.op == FusionOp::DirectIPC) return true;
  }
  return false;
}

std::size_t FusionPlan::totalBytes() const {
  std::size_t total = 0;
  for (const PlanOp& op : ops_) total += op.layout ? op.layout->size() : 0;
  return total;
}

std::uint64_t FusionPlan::signature() const {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(ops_.size());
  for (const PlanOp& op : ops_) {
    mix(static_cast<std::uint64_t>(op.op));
    mix(op.layout ? op.layout->signature() : 0);
    mix(op.target_layout ? op.target_layout->signature() : 0);
  }
  return h;
}

// --------------------------------------------------------- CompiledStep ----

FusionRequest CompiledStep::bind(ddt::LayoutPtr live_layout,
                                 ddt::LayoutPtr live_target,
                                 gpu::MemSpan origin,
                                 gpu::MemSpan target) const {
  DKF_CHECK(live_layout != nullptr);
  DKF_CHECK((live_target != nullptr) == (op == FusionOp::DirectIPC));
  FusionRequest req;
  req.op = op;
  req.layout = std::move(live_layout);
  req.target_layout = std::move(live_target);
  req.origin = origin;
  req.target = target;
  return req;
}

// ------------------------------------------------------------ PlanCache ----

PlanCache::PlanCache(PlanCacheLimits limits) : limits_(limits) {}

PlanCacheCounters& PlanCache::tenantSlot(TenantId t) {
  if (t >= tenant_counters_.size()) tenant_counters_.resize(t + 1);
  return tenant_counters_[t];
}

CompiledPlanPtr PlanCache::find(const PlanKey& key, TenantId tenant) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++counters_.misses;
    ++tenantSlot(tenant).misses;
    return nullptr;
  }
  ++counters_.hits;
  ++tenantSlot(tenant).hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  sampleTrace();
  return it->second.plan;
}

void PlanCache::insert(const PlanKey& key, CompiledPlanPtr plan,
                       TenantId tenant) {
  DKF_CHECK(plan != nullptr);
  if (plan->fallback && plan->solver_scheme < 0) {
    ++counters_.fallbacks;
    ++tenantSlot(tenant).fallbacks;
  }
  if (const auto it = cache_.find(key); it != cache_.end()) {
    resident_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    cache_.erase(it);
  }
  Entry e;
  e.bytes = plan->heapBytes();
  e.plan = std::move(plan);
  lru_.push_front(key);
  e.lru = lru_.begin();
  resident_bytes_ += e.bytes;
  cache_.emplace(key, std::move(e));
  enforceBudget(key);
  sampleTrace();
}

void PlanCache::enforceBudget(const PlanKey& keep) {
  const auto overBudget = [&] {
    return (limits_.max_entries != 0 && cache_.size() > limits_.max_entries) ||
           (limits_.max_bytes != 0 && resident_bytes_ > limits_.max_bytes);
  };
  auto victim = lru_.end();
  while (overBudget() && victim != lru_.begin()) {
    --victim;
    if (*victim == keep) continue;
    const PlanKey key = *victim;
    const auto it = cache_.find(key);
    victim = lru_.erase(victim);
    resident_bytes_ -= it->second.bytes;
    cache_.erase(it);
    ++counters_.evictions;
    if (tracer_ && tracer_->isEnabled()) {
      tracer_->counter(trace_name_ + ".evictions", clock_->now(),
                       static_cast<double>(counters_.evictions));
    }
  }
}

void PlanCache::sampleTrace() {
  if (!tracer_ || !tracer_->isEnabled()) return;
  const TimeNs now = clock_->now();
  tracer_->counter(trace_name_ + ".entries", now,
                   static_cast<double>(cache_.size()));
  tracer_->counter(trace_name_ + ".resident_bytes", now,
                   static_cast<double>(resident_bytes_));
  tracer_->counter(trace_name_ + ".hits", now,
                   static_cast<double>(counters_.hits));
  tracer_->counter(trace_name_ + ".misses", now,
                   static_cast<double>(counters_.misses));
}

void PlanCache::clear() {
  cache_.clear();
  lru_.clear();
  counters_ = PlanCacheCounters{};
  tenant_counters_.clear();
  resident_bytes_ = 0;
}

void PlanCache::setTracer(sim::Tracer* tracer, const sim::Engine* clock,
                          const std::string& name) {
  tracer_ = tracer;
  clock_ = clock;
  trace_name_ = name;
}

}  // namespace dkf::core
