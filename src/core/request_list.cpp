#include "core/request_list.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dkf::core {

namespace {

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

RequestList::RequestList(std::size_t capacity)
    : slots_(capacity),
      free_next_(capacity, npos),
      pending_ring_(capacity, npos) {
  DKF_CHECK(capacity > 0);
  // Thread the free list through all slots in index order.
  for (std::size_t i = 0; i + 1 < capacity; ++i) free_next_[i] = i + 1;
  free_head_ = 0;
  // The UID window starts at 2x capacity so it only ever grows when one
  // stale request pins the window open across many enqueue/retire cycles.
  uid_ring_.assign(roundUpPow2(2 * capacity), npos);
  uid_mask_ = uid_ring_.size() - 1;
}

std::int64_t RequestList::tryEnqueue(FusionRequest req) {
  if (full()) {
    ++total_rejected_;
    return -1;
  }
  // Tail == free-list head: pop the next Idle slot (out-of-order retirement
  // leaves holes anywhere in the ring; the free list threads them).
  const std::size_t slot_index = free_head_;
  free_head_ = free_next_[slot_index];
  free_next_[slot_index] = npos;

  req.uid = next_uid_++;
  req.request_status = Status::Pending;
  req.response_status = Status::Idle;
  const std::size_t bytes = req.bytes();
  const std::int64_t uid = req.uid;
  slots_[slot_index] = std::move(req);

  // Publish the UID -> slot mapping; widen the window ring first if one
  // unretired straggler has kept it open past the ring size.
  if (static_cast<std::size_t>(next_uid_ - lowest_live_uid_) >
      uid_ring_.size()) {
    growUidRing();
  }
  uid_ring_[static_cast<std::size_t>(uid) & uid_mask_] = slot_index;

  // Append to the pending FIFO; UIDs are monotonic so insertion order is
  // UID order.
  pending_ring_[(pending_head_ + pending_) % pending_ring_.size()] =
      slot_index;

  ++occupied_;
  ++pending_;
  pending_bytes_ += bytes;
  ++total_enqueued_;
  maybeAudit();
  return uid;
}

bool RequestList::hasPendingFor(TenantId tenant) const {
  std::size_t cursor = pending_head_;
  for (std::size_t i = 0; i < pending_; ++i) {
    if (slots_[pending_ring_[cursor]].tenant == tenant) return true;
    cursor = (cursor + 1) % pending_ring_.size();
  }
  return false;
}

std::vector<std::size_t> RequestList::claimPendingBatch(
    std::size_t max_requests) {
  const std::size_t n = std::min(max_requests, pending_);
  std::vector<std::size_t> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot_index = pending_ring_[pending_head_];
    pending_ring_[pending_head_] = npos;
    pending_head_ = (pending_head_ + 1) % pending_ring_.size();
    FusionRequest& r = slots_[slot_index];
    r.request_status = Status::Busy;
    --pending_;
    pending_bytes_ -= r.bytes();
    ++busy_;
    batch.push_back(slot_index);
  }
  maybeAudit();
  return batch;
}

std::vector<std::size_t> RequestList::claimPendingBatchWeighted(
    std::size_t max_requests, const TenantWeights& weights,
    std::size_t quantum_bytes) {
  const std::size_t n = std::min(max_requests, pending_);
  // Taking everything pending is order-insensitive — the fused kernel runs
  // the whole batch either way — so the FIFO claim's O(batch) path serves.
  if (n == pending_) return claimPendingBatch(max_requests);
  if (quantum_bytes == 0) quantum_bytes = 64 * 1024;

  // Snapshot the pending slots (UID order) grouped per tenant.
  std::vector<std::vector<std::size_t>> per_tenant;
  for (std::size_t i = 0; i < pending_; ++i) {
    const std::size_t s =
        pending_ring_[(pending_head_ + i) % pending_ring_.size()];
    const TenantId t = slots_[s].tenant;
    if (t >= per_tenant.size()) per_tenant.resize(t + 1);
    per_tenant[t].push_back(s);
  }

  // Deficit round robin over the tenant groups: each full rotation credits
  // every backlogged tenant quantum x weight, heads are claimed while the
  // credit covers their bytes. Progress is guaranteed — credit accumulates
  // across rotations until the cheapest head is payable.
  std::vector<double> deficit(per_tenant.size(), 0.0);
  std::vector<std::size_t> cursor(per_tenant.size(), 0);
  std::vector<std::size_t> batch;
  batch.reserve(n);
  while (batch.size() < n) {
    for (TenantId t = 0; t < per_tenant.size() && batch.size() < n; ++t) {
      if (cursor[t] >= per_tenant[t].size()) continue;
      deficit[t] += static_cast<double>(quantum_bytes) * weights.weightOf(t);
      while (cursor[t] < per_tenant[t].size() && batch.size() < n) {
        const std::size_t s = per_tenant[t][cursor[t]];
        const double cost = static_cast<double>(slots_[s].bytes());
        if (deficit[t] < cost) break;
        deficit[t] -= cost;
        ++cursor[t];
        batch.push_back(s);
      }
    }
  }

  // Mark the claimed entries Busy and rebuild the pending ring from the
  // survivors — their relative UID order is untouched, preserving the
  // ring's strictly-increasing-UID invariant.
  std::vector<bool> claimed(slots_.size(), false);
  for (const std::size_t s : batch) {
    claimed[s] = true;
    FusionRequest& r = slots_[s];
    r.request_status = Status::Busy;
    --pending_;
    pending_bytes_ -= r.bytes();
    ++busy_;
  }
  std::vector<std::size_t> survivors;
  survivors.reserve(pending_);
  const std::size_t old_head = pending_head_;
  const std::size_t scanned = pending_ + batch.size();
  for (std::size_t i = 0; i < scanned; ++i) {
    const std::size_t idx = (old_head + i) % pending_ring_.size();
    const std::size_t s = pending_ring_[idx];
    if (!claimed[s]) survivors.push_back(s);
    pending_ring_[idx] = npos;
  }
  pending_head_ = 0;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    pending_ring_[i] = survivors[i];
  }

  // Hand the batch back in UID order (slot order is arbitrary): the fused
  // kernel's op layout is then independent of the claim rotation.
  std::sort(batch.begin(), batch.end(),
            [this](std::size_t a, std::size_t b) {
              return slots_[a].uid < slots_[b].uid;
            });
  maybeAudit();
  return batch;
}

void RequestList::signalCompletion(std::size_t slot_index) {
  FusionRequest& r = slot(slot_index);
  DKF_CHECK_MSG(r.request_status == Status::Busy,
                "completion signalled for non-busy slot " << slot_index);
  r.response_status = Status::Completed;
  r.request_status = Status::Completed;
  --busy_;
  maybeAudit();
}

bool RequestList::queryAndRetire(std::int64_t uid) {
  DKF_CHECK_MSG(uid >= 0 && uid < next_uid_,
                "query for uid " << uid << " that was never enqueued (issued "
                                 << "uids are [0, " << next_uid_ << "))");
  if (uid < lowest_live_uid_) return true;  // retired earlier
  const std::size_t index = slotOfUid(uid);
  if (index == npos) return true;  // retired earlier, window not yet advanced
  FusionRequest& r = slots_[index];
  if (r.response_status != Status::Completed) return false;
  // Retire: recycle the slot onto the free list, tombstone the UID.
  r = FusionRequest{};
  free_next_[index] = free_head_;
  free_head_ = index;
  uid_ring_[static_cast<std::size_t>(uid) & uid_mask_] = npos;
  while (lowest_live_uid_ < next_uid_ &&
         uid_ring_[static_cast<std::size_t>(lowest_live_uid_) & uid_mask_] ==
             npos) {
    ++lowest_live_uid_;
  }
  DKF_CHECK(occupied_ > 0);
  --occupied_;
  ++total_retired_;
  maybeAudit();
  return true;
}

FusionRequest& RequestList::slot(std::size_t index) {
  DKF_CHECK(index < slots_.size());
  return slots_[index];
}

const FusionRequest& RequestList::slot(std::size_t index) const {
  DKF_CHECK(index < slots_.size());
  return slots_[index];
}

std::size_t RequestList::slotOfUid(std::int64_t uid) const {
  DKF_CHECK(uid >= lowest_live_uid_ && uid < next_uid_);
  return uid_ring_[static_cast<std::size_t>(uid) & uid_mask_];
}

void RequestList::growUidRing() {
  std::vector<std::size_t> grown(uid_ring_.size() * 2, npos);
  const std::size_t mask = grown.size() - 1;
  // Called from tryEnqueue after next_uid_ was bumped but before the new
  // UID's mapping is published, so only [lowest_live_uid_, next_uid_ - 1)
  // holds valid entries (the new UID's old-ring position aliases the
  // window front exactly when growth is needed).
  for (std::int64_t uid = lowest_live_uid_; uid < next_uid_ - 1; ++uid) {
    grown[static_cast<std::size_t>(uid) & mask] =
        uid_ring_[static_cast<std::size_t>(uid) & uid_mask_];
  }
  uid_ring_ = std::move(grown);
  uid_mask_ = mask;
}

void RequestList::checkInvariants() const {
  std::size_t pending = 0, busy = 0, occupied = 0, pending_bytes = 0;
  for (const FusionRequest& r : slots_) {
    switch (r.request_status) {
      case Status::Idle:
        break;
      case Status::Pending:
        ++pending;
        ++occupied;
        pending_bytes += r.bytes();
        break;
      case Status::Busy:
        ++busy;
        ++occupied;
        break;
      case Status::Completed:
        ++occupied;
        break;
    }
  }
  DKF_CHECK(pending == pending_);
  DKF_CHECK(busy == busy_);
  DKF_CHECK(occupied == occupied_);
  DKF_CHECK(pending_bytes == pending_bytes_);
  DKF_CHECK(total_enqueued_ == total_retired_ + occupied_);

  // Free list <-> Idle slots: the chain is cycle-free, every chained slot
  // is Idle, and its length equals the number of Idle slots.
  std::size_t free_len = 0;
  for (std::size_t s = free_head_; s != npos; s = free_next_[s]) {
    DKF_CHECK(s < slots_.size());
    DKF_CHECK(slots_[s].request_status == Status::Idle);
    ++free_len;
    DKF_CHECK_MSG(free_len <= slots_.size(), "free-list cycle");
  }
  DKF_CHECK(free_len == slots_.size() - occupied_);

  // Pending ring <-> Pending slots, in strictly increasing UID order.
  std::int64_t prev_uid = -1;
  for (std::size_t i = 0; i < pending_; ++i) {
    const std::size_t s =
        pending_ring_[(pending_head_ + i) % pending_ring_.size()];
    DKF_CHECK(s < slots_.size());
    DKF_CHECK(slots_[s].request_status == Status::Pending);
    DKF_CHECK(slots_[s].uid > prev_uid);
    prev_uid = slots_[s].uid;
  }

  // UID window <-> occupied slots: the window is exactly
  // [lowest_live_uid_, next_uid_), fits the ring, maps every occupied
  // slot back to itself, and contains nothing else.
  DKF_CHECK(lowest_live_uid_ >= 0 && lowest_live_uid_ <= next_uid_);
  DKF_CHECK(static_cast<std::size_t>(next_uid_ - lowest_live_uid_) <=
            uid_ring_.size());
  std::size_t live = 0;
  for (std::int64_t uid = lowest_live_uid_; uid < next_uid_; ++uid) {
    const std::size_t s = uid_ring_[static_cast<std::size_t>(uid) & uid_mask_];
    if (s == npos) continue;
    DKF_CHECK(s < slots_.size());
    DKF_CHECK(slots_[s].request_status != Status::Idle);
    DKF_CHECK(slots_[s].uid == uid);
    ++live;
  }
  DKF_CHECK(live == occupied_);
  if (lowest_live_uid_ < next_uid_) {
    // The window front is always a live UID (advanced eagerly on retire).
    DKF_CHECK(uid_ring_[static_cast<std::size_t>(lowest_live_uid_) &
                        uid_mask_] != npos);
  }
}

}  // namespace dkf::core
