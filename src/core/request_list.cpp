#include "core/request_list.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dkf::core {

RequestList::RequestList(std::size_t capacity) : slots_(capacity) {
  DKF_CHECK(capacity > 0);
}

std::int64_t RequestList::tryEnqueue(FusionRequest req) {
  if (full()) {
    ++total_rejected_;
    return -1;
  }
  // Move Tail to the next IDLE entry (out-of-order retirement can leave
  // holes anywhere in the ring).
  while (slots_[tail_].request_status != Status::Idle) {
    tail_ = (tail_ + 1) % slots_.size();
  }
  const std::size_t slot_index = tail_;
  tail_ = (tail_ + 1) % slots_.size();

  req.uid = next_uid_++;
  req.request_status = Status::Pending;
  req.response_status = Status::Idle;
  const std::size_t bytes = req.bytes();
  slots_[slot_index] = std::move(req);

  ++occupied_;
  ++pending_;
  pending_bytes_ += bytes;
  ++total_enqueued_;
  return slots_[slot_index].uid;
}

std::vector<std::size_t> RequestList::claimPendingBatch(
    std::size_t max_requests) {
  std::vector<std::size_t> batch;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].request_status == Status::Pending) batch.push_back(i);
  }
  std::sort(batch.begin(), batch.end(),
            [this](std::size_t a, std::size_t b) {
              return slots_[a].uid < slots_[b].uid;
            });
  if (batch.size() > max_requests) batch.resize(max_requests);
  for (std::size_t i : batch) {
    FusionRequest& r = slots_[i];
    r.request_status = Status::Busy;
    --pending_;
    pending_bytes_ -= r.bytes();
    ++busy_;
  }
  return batch;
}

void RequestList::signalCompletion(std::size_t slot_index) {
  FusionRequest& r = slot(slot_index);
  DKF_CHECK_MSG(r.request_status == Status::Busy,
                "completion signalled for non-busy slot " << slot_index);
  r.response_status = Status::Completed;
  r.request_status = Status::Completed;
  --busy_;
}

bool RequestList::queryAndRetire(std::int64_t uid) {
  const std::size_t index = slotOfUid(uid);
  if (index == slots_.size()) return true;  // already retired
  FusionRequest& r = slots_[index];
  if (r.response_status != Status::Completed) return false;
  // Retire: recycle the slot.
  r = FusionRequest{};
  DKF_CHECK(occupied_ > 0);
  --occupied_;
  ++total_retired_;
  return true;
}

FusionRequest& RequestList::slot(std::size_t index) {
  DKF_CHECK(index < slots_.size());
  return slots_[index];
}

const FusionRequest& RequestList::slot(std::size_t index) const {
  DKF_CHECK(index < slots_.size());
  return slots_[index];
}

std::size_t RequestList::slotOfUid(std::int64_t uid) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].request_status != Status::Idle && slots_[i].uid == uid) {
      return i;
    }
  }
  return slots_.size();
}

void RequestList::checkInvariants() const {
  std::size_t pending = 0, busy = 0, occupied = 0, pending_bytes = 0;
  for (const FusionRequest& r : slots_) {
    switch (r.request_status) {
      case Status::Idle:
        break;
      case Status::Pending:
        ++pending;
        ++occupied;
        pending_bytes += r.bytes();
        break;
      case Status::Busy:
        ++busy;
        ++occupied;
        break;
      case Status::Completed:
        ++occupied;
        break;
    }
  }
  DKF_CHECK(pending == pending_);
  DKF_CHECK(busy == busy_);
  DKF_CHECK(occupied == occupied_);
  DKF_CHECK(pending_bytes == pending_bytes_);
  DKF_CHECK(total_enqueued_ == total_retired_ + occupied_);
}

}  // namespace dkf::core
