// The fusion scheduler (§IV-A2, Fig. 5) — the dynamic heart of the paper.
//
// Four functions, exactly as in the paper:
//   ① enqueue()      — take a pack/unpack/DirectIPC operation from the
//                      progress engine, fill a request-list entry, return a
//                      UID (negative if the list is full -> caller falls
//                      back to its non-fused path).
//   ② launch         — when the pending batch meets the fusion condition
//                      (accumulated bytes >= threshold, or a flush), launch
//                      ONE fused kernel whose thread blocks are partitioned
//                      across the batch via cooperative groups (Fig. 6).
//   ③ completion     — each request's blocks signal the response status the
//                      moment they finish; no host-side synchronization at
//                      the kernel boundary.
//   ④ query()        — the progress engine polls by UID; completed entries
//                      are retired and their slots recycled.
//
// The launch policy implements §IV-C: *under-fused* (threshold too low —
// frequent launches, overhead dominates) and *over-fused* (threshold too
// high — communication is delayed past the overlap window) are both real
// failure modes; 512 KB is the paper's sweet spot on both machines, and
// Fig. 8 is reproduced by sweeping FusionPolicy::threshold_bytes.
//
// The scheduler is observable: attach a sim::Tracer (setTracer) and every
// enqueue/rejection becomes an instant, every fused batch a span, and the
// pending backlog a counter series in the Chrome trace output; the
// SchedulerCounters aggregate (enqueues, rejections, batches, batch-size
// histogram) is always maintained, tracer or not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/request_list.hpp"
#include "gpu/gpu.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace dkf::core {

struct FusionPolicy {
  /// Launch a fused kernel once pending payload reaches this many bytes.
  std::size_t threshold_bytes{512 * 1024};
  /// Never batch more requests than this into one kernel.
  std::size_t max_requests_per_kernel{128};
  /// Request-list capacity.
  std::size_t list_capacity{256};
  /// CPU cost to enqueue + later dequeue one request (the paper reports the
  /// scheduler adds <= 2 us per message; we charge 1 us at enqueue and the
  /// remainder across queries).
  DurationNs enqueue_cost{ns(1000)};
  /// CPU cost of one UID status query (request vs. response comparison).
  DurationNs query_cost{ns(150)};

  // ---- Fault tolerance (only exercised with a FaultPlan attached) ----
  /// Total launch tries per batch before degrading to the CPU pack path.
  std::size_t max_launch_attempts{4};
  /// Wait before re-attempting a failed launch; doubles per failure up to
  /// `max_launch_retry_backoff`.
  DurationNs launch_retry_backoff{us(2)};
  /// Ceiling on the doubled backoff. Also guards the doubling itself: with
  /// a caller-chosen max_launch_attempts the naive `backoff << attempt` is
  /// undefined behaviour once attempt reaches the width of DurationNs.
  DurationNs max_launch_retry_backoff{ms(2)};
  /// Host-side streaming rate (bytes/ns) of the degraded CPU pack path.
  double cpu_fallback_bytes_per_ns{4.0};

  // ---- Multi-tenant serving plane (MODEL.md §14) ----
  /// Claim fused batches by deficit round robin over tenants (weighted by
  /// `tenant_weights`) instead of global FIFO order. Off (default) keeps
  /// the seed claim byte-identical.
  bool weighted_fair{false};
  TenantWeights tenant_weights{};
  /// DRR credit per tenant per claim rotation, in bytes.
  std::size_t fair_quantum_bytes{64 * 1024};
};

/// Lifetime counters of the scheduler's hot path. The batch-size histogram
/// is exact: bucket i counts fused kernels that carried i requests
/// (i <= max_requests_per_kernel by construction).
struct SchedulerCounters {
  std::size_t enqueues{0};
  std::size_t rejections{0};
  std::size_t batches{0};
  /// Injected kernel-launch failures observed (each costs one retry).
  std::size_t launch_failures{0};
  /// Batches that exhausted their launch retries and ran on the CPU.
  std::size_t cpu_fallback_batches{0};
  std::size_t cpu_fallback_requests{0};
  std::vector<std::size_t> batch_size_hist;
  /// Requests fused per tenant (index = tenant id; grown on demand).
  std::vector<std::size_t> tenant_fused;
};

class FusionScheduler {
 public:
  FusionScheduler(sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu,
                  FusionPolicy policy);

  const FusionPolicy& policy() const { return policy_; }
  RequestList& requests() { return list_; }
  const RequestList& requests() const { return list_; }

  /// Attach a tracer; scheduler activity is emitted on tracks named
  /// "<name>.sched". Pass nullptr to detach.
  void setTracer(sim::Tracer* tracer, const std::string& name = "fusion");

  /// ① Enqueue an operation; returns its UID or a negative value when the
  /// request list is full. Charges the enqueue CPU cost and, if the fusion
  /// condition is now met, launches the fused kernel (scenario 2 of §IV-C).
  sim::Task<std::int64_t> enqueue(FusionRequest req);

  /// Launch whatever is pending immediately — scenario 1 of §IV-C: the
  /// progress engine has no more operations and reached a synchronization
  /// point, so waiting any longer only wastes cycles.
  sim::Task<void> flush();

  /// ④ Poll a request by UID. True once the GPU has signalled completion
  /// (the entry is retired as a side effect). Charges the query CPU cost
  /// to the breakdown but is itself non-blocking.
  bool query(std::int64_t uid);

  /// Time-breakdown contributions of the scheduler + its fused kernels.
  TimeBreakdown& breakdown() { return breakdown_; }

  /// CPU time spent on enqueue attempts that were REJECTED (full list).
  /// Kept out of breakdown_.scheduling: the rejected operation re-runs on
  /// the caller's fallback path, which does its own Fig. 11 accounting, so
  /// folding this in would double-count the message (the Fig. 11 bars sum
  /// per-category over exactly the work each message's winning path did).
  DurationNs rejectedSchedulingCost() const { return rejected_scheduling_; }

  const SchedulerCounters& counters() const { return counters_; }

  std::size_t fusedKernelsLaunched() const { return kernels_; }
  std::size_t requestsFused() const { return requests_fused_; }
  /// Mean batch size over all fused kernels so far.
  double meanBatchSize() const {
    return kernels_ ? static_cast<double>(requests_fused_) /
                          static_cast<double>(kernels_)
                    : 0.0;
  }

 private:
  /// ② Claim the pending batch and launch one fused kernel for it.
  /// Injected launch failures are retried with exponential backoff up to
  /// FusionPolicy::max_launch_attempts; after that the batch degrades to
  /// the CPU pack path (graceful degradation, never a lost request).
  sim::Task<void> launchBatch();
  /// Degraded path: run the batch's data movement on the host and signal
  /// each request's completion.
  sim::Task<void> runBatchOnCpu(const std::vector<std::size_t>& batch,
                                std::size_t batch_bytes);
  /// Exponential launch-retry backoff, clamped so neither the shift nor the
  /// resulting delay can overflow however large max_launch_attempts is.
  DurationNs retryBackoff(std::size_t attempt) const;
  void traceBacklog();

  sim::Engine* eng_;
  sim::CpuTimeline* cpu_;
  gpu::Gpu* gpu_;
  FusionPolicy policy_;
  RequestList list_;
  gpu::Gpu::StreamId stream_;
  TimeBreakdown breakdown_;
  DurationNs rejected_scheduling_{0};
  SchedulerCounters counters_;
  std::size_t kernels_{0};
  std::size_t requests_fused_{0};
  sim::Tracer* tracer_{nullptr};
  std::string trace_name_;
  std::uint32_t trace_track_{0};
};

}  // namespace dkf::core
