// Compiled fusion plans (ROADMAP item 1) — the decide-once/execute-many
// API the paper's amortization argument rests on.
//
// The persistent communicators the evaluation targets replay the same
// derived datatypes every iteration, so the per-message decisions — which
// scheme can serve this op sequence on this hardware, what kernel op each
// step lowers to — are loop-invariant. A `FusionPlan` *declares* the op
// sequence (one pack/unpack/strided-copy per destination, the MIOpen
// fusion-plan idiom: create plan, add operators, compile, execute);
// compilation resolves it once against the solver registry in
// `schemes/solver.hpp`; the resulting immutable `CompiledPlan` is executed
// per message with the live buffers bound at execution time, exactly like
// MIOpen's SetArgs — so one compiled plan serves every message and every
// count of the same canonical layout structure.
//
// Compiled plans are memoized in a `PlanCache` keyed by
// (plan signature, scheme, hw signature). The plan signature is built from
// `ddt::Layout::signature()`, which is count-independent for periodic
// layouts: a count sweep over one datatype compiles exactly once. The cache
// mirrors `ddt::LayoutCache` operationally — single LRU, entry/byte
// budgets, hit/miss/eviction counters, optional tracer series.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/tenant.hpp"
#include "core/request_list.hpp"
#include "ddt/layout.hpp"

namespace dkf::sim {
class Tracer;
class Engine;
}  // namespace dkf::sim

namespace dkf::core {

/// One declared operation of a plan (one destination of a bulk transfer).
struct PlanOp {
  FusionOp op{FusionOp::Packing};
  ddt::LayoutPtr layout{};         ///< layout of the non-contiguous side
  ddt::LayoutPtr target_layout{};  ///< DirectIPC only: destination layout
};

/// The declaration stage: an ordered op sequence over canonical layouts.
/// Cheap value type; all the expensive work happens at compile time.
class FusionPlan {
 public:
  FusionPlan& addPack(ddt::LayoutPtr layout);
  FusionPlan& addUnpack(ddt::LayoutPtr layout);
  FusionPlan& addStridedCopy(ddt::LayoutPtr src_layout,
                             ddt::LayoutPtr dst_layout);

  const std::vector<PlanOp>& ops() const { return ops_; }
  std::size_t opCount() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  /// Any strided-copy (DirectIPC) step — only direct-capable solvers apply.
  bool needsDirect() const;
  /// Sum of the declared layouts' data bytes (representative: execution may
  /// bind layouts of a different count with the same signature).
  std::size_t totalBytes() const;

  /// Canonical signature: op kinds x layout signatures, order-sensitive.
  /// Inherits the count-independence of ddt::Layout::signature().
  std::uint64_t signature() const;

 private:
  std::vector<PlanOp> ops_;
};

/// One executable step of a compiled plan. The layouts stored here are the
/// *declared* (representative) ones; `bind` produces the request for the
/// live message, which may carry a same-signature layout of another count.
struct CompiledStep {
  FusionOp op{FusionOp::Packing};
  ddt::LayoutPtr layout{};
  ddt::LayoutPtr target_layout{};

  /// Instantiate the request template with this message's layouts/buffers —
  /// the only per-execution work left after compilation.
  FusionRequest bind(ddt::LayoutPtr live_layout, ddt::LayoutPtr live_target,
                     gpu::MemSpan origin, gpu::MemSpan target) const;
};

/// The immutable result of compiling a FusionPlan against the solver
/// registry. `solver_scheme` is the scheme whose solver accepted the plan
/// (as an int to keep core/ independent of schemes/); -1 with `fallback`
/// set means no registered solver applies and execution takes the engine's
/// own degraded path — the "reported fallback" of the solver contract.
struct CompiledPlan {
  std::uint64_t plan_signature{0};
  int solver_scheme{-1};
  std::string solver_name;
  bool fallback{false};
  std::string fallback_reason;
  std::vector<CompiledStep> steps;

  std::size_t heapBytes() const {
    return steps.capacity() * sizeof(CompiledStep) +
           solver_name.capacity() + fallback_reason.capacity();
  }
};

using CompiledPlanPtr = std::shared_ptr<const CompiledPlan>;

/// Cache key: what the compilation result depends on — the plan's canonical
/// structure, the preferred scheme, and the hardware context.
struct PlanKey {
  std::uint64_t plan_sig{0};
  std::uint64_t hw_sig{0};
  int scheme{-1};
  friend auto operator<=>(const PlanKey&, const PlanKey&) = default;
};

/// Entry/byte budget for the plan cache (see PlanCache).
struct PlanCacheLimits {
  /// Max resident compiled plans. 0 = unbounded.
  std::size_t max_entries{1024};
  /// Max resident compiled-plan heap bytes. 0 = unbounded.
  std::size_t max_bytes{2u << 20};
};

/// Lifetime counters. A *fallback* counts an inserted plan that no solver
/// accepted (CompiledPlan::fallback with solver_scheme < 0 reports why).
struct PlanCacheCounters {
  std::size_t hits{0};
  std::size_t misses{0};
  std::size_t evictions{0};
  std::size_t fallbacks{0};

  /// Summing across ranks (benches report whole-world cache traffic).
  PlanCacheCounters& operator+=(const PlanCacheCounters& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    fallbacks += o.fallbacks;
    return *this;
  }

  double hitRate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// LRU memo of compiled plans, operationally modeled on ddt::LayoutCache:
/// one LRU list, entry/byte budgets, counters always on, tracer optional.
/// Compilation itself lives in schemes/solver.hpp (it needs the registry);
/// the cache only stores results, so core/ stays scheme-agnostic.
class PlanCache {
 public:
  PlanCache() : PlanCache(PlanCacheLimits{}) {}
  explicit PlanCache(PlanCacheLimits limits);

  /// Cached plan for `key`, or nullptr. Counts a hit or a miss (globally
  /// and against `tenant`'s counters) and refreshes LRU order on hit.
  CompiledPlanPtr find(const PlanKey& key, TenantId tenant = kDefaultTenant);

  /// Insert a freshly compiled plan and enforce the budgets (the new entry
  /// itself is never the victim). Re-inserting an existing key replaces it.
  void insert(const PlanKey& key, CompiledPlanPtr plan,
              TenantId tenant = kDefaultTenant);

  const PlanCacheCounters& counters() const { return counters_; }
  /// Per-tenant hit/miss/fallback attribution (index = tenant id; evictions
  /// are a shared-budget effect and stay global-only). May be shorter than
  /// the tenant count if high tenants never compiled.
  const std::vector<PlanCacheCounters>& tenantCounters() const {
    return tenant_counters_;
  }
  std::size_t hits() const { return counters_.hits; }
  std::size_t misses() const { return counters_.misses; }
  std::size_t evictions() const { return counters_.evictions; }
  std::size_t entries() const { return cache_.size(); }
  std::size_t residentBytes() const { return resident_bytes_; }
  const PlanCacheLimits& limits() const { return limits_; }

  /// Drop all entries and reset the counters.
  void clear();

  /// Zero the counters, keeping the resident entries — benches call this
  /// after a warmup pass so the reported hit rate covers only measured
  /// traffic (compiled plans stay hot).
  void resetCounters() {
    counters_ = PlanCacheCounters{};
    tenant_counters_.clear();
  }

  /// Attach a tracer (nullptr detaches): resident entries/bytes and the
  /// hit/miss counts become counter series named "<name>.*" sampled at
  /// `clock`'s current time. `clock` outlives the cache.
  void setTracer(sim::Tracer* tracer, const sim::Engine* clock,
                 const std::string& name = "plan_cache");

 private:
  struct Entry {
    CompiledPlanPtr plan;
    std::size_t bytes{0};
    std::list<PlanKey>::iterator lru;
  };

  void enforceBudget(const PlanKey& keep);
  void sampleTrace();
  PlanCacheCounters& tenantSlot(TenantId t);

  PlanCacheLimits limits_;
  std::map<PlanKey, Entry> cache_;
  std::list<PlanKey> lru_;  // front = most recently used
  PlanCacheCounters counters_;
  std::vector<PlanCacheCounters> tenant_counters_;
  std::size_t resident_bytes_{0};

  sim::Tracer* tracer_{nullptr};
  const sim::Engine* clock_{nullptr};
  std::string trace_name_;
};

}  // namespace dkf::core
