#include "fault/fault_plan.hpp"

namespace dkf::fault {

namespace {
/// Log cap: long lossy benches keep counters exact but stop appending to
/// the replay log once it would dominate memory.
constexpr std::size_t kMaxLogEntries = 1u << 16;

/// Per-category seed derivation (SplitMix-style odd constants) so streams
/// are decorrelated and adding one fault category never perturbs another.
std::uint64_t sub(std::uint64_t seed, std::uint64_t salt) {
  return seed ^ (salt * 0x9e3779b97f4a7c15ull);
}
}  // namespace

const char* faultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::DataDrop: return "data_drop";
    case FaultKind::ControlDrop: return "control_drop";
    case FaultKind::NicStall: return "nic_stall";
    case FaultKind::LinkDegraded: return "link_degraded";
    case FaultKind::LaunchFailure: return "launch_failure";
    case FaultKind::AllocFailure: return "alloc_failure";
  }
  return "unknown";
}

FaultPlan::FaultPlan(sim::Engine& eng, FaultSpec spec)
    : eng_(&eng),
      spec_(std::move(spec)),
      data_rng_(sub(spec_.seed, 1)),
      control_rng_(sub(spec_.seed, 2)),
      stall_rng_(sub(spec_.seed, 3)),
      launch_rng_(sub(spec_.seed, 4)),
      alloc_rng_(sub(spec_.seed, 5)) {}

void FaultPlan::setTracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ && tracer_->isEnabled()) track_ = tracer_->track("faults");
}

void FaultPlan::record(FaultKind kind) {
  if (log_.size() < kMaxLogEntries) log_.push_back({eng_->now(), kind});
  if (tracer_ && tracer_->isEnabled()) {
    tracer_->instant(track_, faultKindName(kind), eng_->now(), "fault");
  }
}

bool FaultPlan::dropData() {
  if (spec_.data_loss <= 0 || counters_.data_drops >= spec_.max_data_drops ||
      !data_rng_.chance(spec_.data_loss)) {
    return false;
  }
  ++counters_.data_drops;
  record(FaultKind::DataDrop);
  return true;
}

bool FaultPlan::dropControl() {
  if (spec_.control_loss <= 0 ||
      counters_.control_drops >= spec_.max_control_drops ||
      !control_rng_.chance(spec_.control_loss)) {
    return false;
  }
  ++counters_.control_drops;
  record(FaultKind::ControlDrop);
  return true;
}

DurationNs FaultPlan::nicStallDelay() {
  if (spec_.nic_stall_prob <= 0 || !stall_rng_.chance(spec_.nic_stall_prob)) {
    return 0;
  }
  ++counters_.nic_stalls;
  record(FaultKind::NicStall);
  return spec_.nic_stall;
}

bool FaultPlan::failLaunch() {
  if (spec_.launch_failure <= 0 ||
      counters_.launch_failures >= spec_.max_launch_failures ||
      !launch_rng_.chance(spec_.launch_failure)) {
    return false;
  }
  ++counters_.launch_failures;
  record(FaultKind::LaunchFailure);
  return true;
}

bool FaultPlan::failAlloc() {
  if (spec_.alloc_failure <= 0 ||
      counters_.alloc_failures >= spec_.max_alloc_failures ||
      !alloc_rng_.chance(spec_.alloc_failure)) {
    return false;
  }
  ++counters_.alloc_failures;
  record(FaultKind::AllocFailure);
  return true;
}

double FaultPlan::linkScaleAt(TimeNs t) const {
  double scale = 1.0;
  // Overlapping windows compound (a flap inside a degradation window).
  for (const LinkFaultWindow& w : spec_.link_windows) {
    if (t >= w.begin && t < w.end) scale *= w.bandwidth_scale;
  }
  return scale;
}

void FaultPlan::noteDegraded() {
  ++counters_.degraded_transfers;
  record(FaultKind::LinkDegraded);
}

}  // namespace dkf::fault
