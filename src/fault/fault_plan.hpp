// Deterministic fault injection (the robustness axis of the ROADMAP).
//
// A FaultPlan is a seeded, virtual-time schedule of failures: dropped data
// and control packets, NIC send stalls, link-degradation windows (bandwidth
// scaled down, or 0 = link down / flap), kernel-launch failures, and
// device-arena allocation failures. Components consult the plan at the
// moment they would act (Fabric before scheduling a delivery, Gpu before
// queueing a kernel, DeviceMemory inside tryAllocate), so the draw order is
// fixed by the single-threaded event engine and every injected fault
// sequence is bit-reproducible from the seed.
//
// Each fault category draws from its own xoshiro256** stream, so e.g.
// adding a launch-failure rate does not perturb which packets get dropped.
// Every injected fault is counted, appended to a bounded replay log
// (timestamp + kind), and optionally emitted as a Chrome-trace instant on a
// "faults" track.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace dkf::fault {

enum class FaultKind : std::uint8_t {
  DataDrop,      ///< data/eager/RDMA payload lost after the wire
  ControlDrop,   ///< RTS/CTS/FIN/ACK packet lost
  NicStall,      ///< NIC pauses before putting the message on the wire
  LinkDegraded,  ///< transfer ran inside a degradation window
  LaunchFailure, ///< kernel launch returned an error
  AllocFailure,  ///< device-arena allocation refused
};

const char* faultKindName(FaultKind k);

/// A virtual-time window during which every transfer's streaming bandwidth
/// is scaled by `bandwidth_scale`; 0 means the link is down (transfers in
/// the window are dropped outright). Several windows model flapping links.
struct LinkFaultWindow {
  TimeNs begin{0};
  TimeNs end{0};
  double bandwidth_scale{1.0};
};

struct FaultSpec {
  std::uint64_t seed{0x5EEDull};

  /// Per-message Bernoulli drop probabilities.
  double data_loss{0.0};
  double control_loss{0.0};
  /// Stop dropping after this many losses (makes targeted "drop the first
  /// N packets, then heal" tests deterministic and convergent).
  std::size_t max_data_drops{SIZE_MAX};
  std::size_t max_control_drops{SIZE_MAX};

  /// Probability that the NIC stalls a send, and for how long.
  double nic_stall_prob{0.0};
  DurationNs nic_stall{us(20)};

  /// Probability a kernel launch fails (capped at max_launch_failures).
  double launch_failure{0.0};
  std::size_t max_launch_failures{SIZE_MAX};

  /// Probability a device staging allocation is refused (capped).
  double alloc_failure{0.0};
  std::size_t max_alloc_failures{SIZE_MAX};

  std::vector<LinkFaultWindow> link_windows;

  bool any() const {
    return data_loss > 0 || control_loss > 0 || nic_stall_prob > 0 ||
           launch_failure > 0 || alloc_failure > 0 || !link_windows.empty();
  }
};

struct FaultCounters {
  std::size_t data_drops{0};
  std::size_t control_drops{0};
  std::size_t nic_stalls{0};
  std::size_t degraded_transfers{0};
  std::size_t launch_failures{0};
  std::size_t alloc_failures{0};

  std::size_t total() const {
    return data_drops + control_drops + nic_stalls + degraded_transfers +
           launch_failures + alloc_failures;
  }
  bool operator==(const FaultCounters&) const = default;
};

/// One replay-log entry: when a fault fired and what kind it was. Two runs
/// with the same seed must produce identical logs (the determinism test);
/// distinct seeds must diverge.
struct FaultEvent {
  TimeNs at{0};
  FaultKind kind{FaultKind::DataDrop};

  bool operator==(const FaultEvent&) const = default;
};

class FaultPlan {
 public:
  FaultPlan(sim::Engine& eng, FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// Attach a tracer: injected faults appear as instants on a "faults"
  /// track. Pass nullptr to detach.
  void setTracer(sim::Tracer* tracer);

  // ---- Draw points (called by the instrumented components). Each draw
  // advances only its own category's stream, counts, and logs. ----
  bool dropData();
  bool dropControl();
  /// 0 = no stall this time.
  DurationNs nicStallDelay();
  bool failLaunch();
  bool failAlloc();

  /// Bandwidth scale for a transfer starting at `t` (1.0 = healthy,
  /// 0 = link down). Pure schedule lookup — no randomness is consumed; the
  /// caller records the degradation via noteDegraded() when it applies.
  double linkScaleAt(TimeNs t) const;
  void noteDegraded();

  const FaultCounters& counters() const { return counters_; }
  const std::vector<FaultEvent>& log() const { return log_; }

 private:
  void record(FaultKind kind);

  sim::Engine* eng_;
  FaultSpec spec_;
  Rng data_rng_;
  Rng control_rng_;
  Rng stall_rng_;
  Rng launch_rng_;
  Rng alloc_rng_;
  FaultCounters counters_;
  std::vector<FaultEvent> log_;
  sim::Tracer* tracer_{nullptr};
  std::uint32_t track_{0};
};

}  // namespace dkf::fault
