// The cluster interconnect: per-ordered-pair InfiniBand channels between
// nodes, plus an intra-node IPC path per node (NVLink peer transfers).
//
// The fabric moves real bytes: data transfers copy the payload span into the
// destination span at delivery time and then run the completion callback.
// The sender must keep the payload stable until completion — which the MPI
// runtime guarantees (buffers are owned by requests until FIN).
//
// GPUDirect is modeled by capping the streaming bandwidth of a transfer at
// the machine's gpuDirectBandwidth() whenever an endpoint is device memory;
// on Lassen (NVLink 75 > IB 25) the cap never binds, on ABCI (PCIe ~12 < IB
// 25) it does — the asymmetry §V-C attributes ABCI's different behaviour to.
#pragma once

#include <memory>
#include <vector>

#include "common/tenant.hpp"
#include "fault/fault_plan.hpp"
#include "gpu/memory.hpp"
#include "hw/spec.hpp"
#include "net/arbiter.hpp"
#include "net/link.hpp"
#include "net/link_batcher.hpp"
#include "net/payload.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace dkf::net {

/// Multi-tenant contention model (MODEL.md §14). Off by default: the fabric
/// is the seed single-tenant FIFO wire and every existing golden stays
/// byte-identical. Enabled, each link becomes a weighted processor-sharing
/// wire (Link::setSharing) and each batcher arbitrates same-instant
/// deliveries with deficit round robin over per-tenant queues.
struct ContentionConfig {
  bool enabled{false};
  TenantWeights weights{};
  std::size_t quantum_bytes{64 * 1024};
};

class Fabric {
 public:
  /// Delivery/completion hooks are move-only inline callbacks: they are
  /// captured into engine event slots, so a small budget here keeps the
  /// whole delivery closure allocation-free (sim/callback.hpp).
  using Callback = sim::SmallCallback;
  using Predicate = sim::SmallPredicate;
  /// Receivers take the payload as a pool-backed ref (net/payload.hpp):
  /// the delivery closure, any parked batcher entry and the receiver's
  /// handler all share the sender's single capture.
  using MessageCallback =
      sim::InlineFunction<void(PayloadRef), sim::kSmallCallbackBytes>;

  Fabric(sim::Engine& eng, const hw::MachineSpec& machine, std::size_t nodes);

  std::size_t nodeCount() const { return nodes_; }

  /// Two-sided data message src_node -> dst_node. Copies `payload` into
  /// `dst` at delivery, then runs `on_delivered`. Returns the delivery time.
  TimeNs sendData(int src_node, int dst_node, gpu::MemSpan payload,
                  gpu::MemSpan dst, Callback on_delivered,
                  TenantId tenant = kDefaultTenant);

  /// Small control packet (RTS/CTS/FIN). 64 bytes on the wire.
  TimeNs sendControl(int src_node, int dst_node, Callback on_delivered,
                     TenantId tenant = kDefaultTenant);

  /// Two-sided message with *sender-side capture*: the payload is
  /// snapshotted at call time (MPI eager semantics — the sender may reuse
  /// its buffer immediately) into the payload pool and handed to the
  /// receiver as a ref at delivery. Used for eager-protocol data whose
  /// destination buffer is not known until matching happens at the
  /// receiver.
  TimeNs sendMessage(int src_node, int dst_node, gpu::MemSpan payload,
                     MessageCallback on_delivered,
                     TenantId tenant = kDefaultTenant);

  /// Two-sided message whose payload was already captured into the pool:
  /// the ref rides the wire (a bump, not a copy), so a reliable
  /// transport's retransmission reuses the original capture byte-for-byte.
  /// `payload_src` is the span the bytes came from — it carries the memory
  /// space for the GPUDirect bandwidth cap, exactly as sendMessage saw it.
  TimeNs sendPayload(int src_node, int dst_node, gpu::MemSpan payload_src,
                     PayloadRef payload, MessageCallback on_delivered,
                     TenantId tenant = kDefaultTenant);

  /// The slab pool behind every captured payload (staging buffers and
  /// collective chunk staging draw from it too).
  PayloadPool& payloadPool() { return pool_; }

  /// One-sided RDMA READ issued by `reader_node` against `target_node`:
  /// a request propagates to the target, then data streams back. The copy
  /// into `dst` happens at delivery, then `on_done` runs at the reader.
  /// `still_wanted` (optional) is consulted at delivery time: when it
  /// returns false the transfer is quietly discarded — no copy, no
  /// callback. Retransmitting transports use it so a late duplicate of a
  /// merely-slow (not dropped) transfer cannot scribble over spans that
  /// were re-used after the first copy landed.
  TimeNs rdmaRead(int reader_node, int target_node, gpu::MemSpan src,
                  gpu::MemSpan dst, Callback on_done,
                  Predicate still_wanted = {},
                  TenantId tenant = kDefaultTenant);

  /// One-sided RDMA WRITE issued by `writer_node` into `target_node`.
  /// `still_wanted` as for rdmaRead.
  TimeNs rdmaWrite(int writer_node, int target_node, gpu::MemSpan src,
                   gpu::MemSpan dst, Callback on_done,
                   Predicate still_wanted = {},
                   TenantId tenant = kDefaultTenant);

  std::size_t totalBytesCarried() const;
  std::size_t totalMessages() const;

  /// Attach a tracer: every transfer emits a span on its channel's track.
  void setTracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Attach a fault plan: sends consult it for NIC stalls, packet drops
  /// and link-degradation windows. A dropped transfer still occupies the
  /// wire (the bytes were transmitted, then lost) but its delivery
  /// callback — and for data, the memcpy — never runs. Pass nullptr to
  /// detach (the default: a loss-free fabric).
  void setFaultPlan(fault::FaultPlan* plan) { faults_ = plan; }

  /// Route deliveries through per-link LinkBatchers (default on; with a
  /// zero window the event stream is identical to eager scheduling —
  /// link_batcher.hpp). Off = schedule every delivery eagerly, kept as the
  /// shadow path for speedup reporting. Only meaningful before traffic.
  void setDeliveryBatching(bool on) { batching_ = on; }
  bool deliveryBatching() const { return batching_; }

  /// Coalescing window applied by every link's batcher. 0 (default) is
  /// exact; > 0 models NIC interrupt moderation (link_batcher.hpp).
  void setBatchWindow(DurationNs w);
  DurationNs batchWindow() const { return batch_window_; }

  // Aggregate batcher counters (bench/tests).
  std::size_t batchedDeliveries() const;
  std::size_t batchedArmedEvents() const;
  std::size_t coalescedDeliveries() const;

  /// Enable the multi-tenant contention model: shared-bandwidth links and
  /// DRR batchers. Only meaningful before traffic (links and batchers are
  /// configured as they materialize).
  void setContention(const ContentionConfig& cfg);
  const ContentionConfig& contention() const { return contention_; }

  /// Contention model: deliveries served per tenant, summed over links.
  std::vector<std::size_t> tenantDeliveries() const;

 private:
  Link& linkBetween(int src_node, int dst_node);
  LinkBatcher& batcherBetween(int src_node, int dst_node);
  /// Hand a delivery closure to the channel's batcher (or the engine
  /// directly in shadow mode).
  void deliver(int src_node, int dst_node, TimeNs t, TenantId tenant,
               std::size_t bytes, LinkBatcher::Callback cb);
  /// Wire reservation under the active model: shared per-tenant when
  /// contention is enabled, plain FIFO otherwise.
  TimeNs reserveWire(Link& link, TenantId tenant, TimeNs earliest,
                     std::size_t bytes, double cap);
  /// Bandwidth cap (bytes/ns) for a transfer touching these spans; 0 = none.
  double directCap(const gpu::MemSpan& a, const gpu::MemSpan& b) const;

  /// Earliest wire time for a send issued now (NIC overhead + any injected
  /// NIC stall).
  TimeNs departureTime(DurationNs nic_cost);
  /// Fold the active link-degradation scale into a bandwidth cap.
  /// Returns the effective cap (0 = uncapped) and sets `down` when the
  /// link is inside a zero-bandwidth window.
  double degradedCap(double cap, const Link& link, bool& down);

  void traceTransfer(int src_node, int dst_node, const char* what,
                     std::size_t bytes, TimeNs begin, TimeNs delivery);
  void traceDrop(int src_node, int dst_node, const char* what);

  sim::Engine* eng_;
  sim::Tracer* tracer_{nullptr};
  fault::FaultPlan* faults_{nullptr};
  hw::MachineSpec machine_;
  std::size_t nodes_;
  bool batching_{true};
  DurationNs batch_window_{ns(0)};
  ContentionConfig contention_{};
  // Declared before links_/batchers_: parked batcher deliveries hold
  // payload refs, so the pool must be destroyed after them.
  PayloadPool pool_;
  // links_[src * nodes_ + dst]; diagonal entries are the intra-node path.
  std::vector<std::unique_ptr<Link>> links_;
  // One batcher per materialized channel, same indexing.
  std::vector<std::unique_ptr<LinkBatcher>> batchers_;
};

}  // namespace dkf::net
