// Pluggable delivery arbitration for per-link batchers (MODEL.md §14).
//
// A LinkBatcher serves parked deliveries under one of two head policies:
//
//   Fifo  the seed policy — one global FIFO per link, exact reserved-seq
//         arming, byte-identical to eager scheduling at window 0. The
//         default everywhere; every existing golden/conformance suite runs
//         on it unchanged.
//
//   Drr   deficit round robin over per-tenant per-link queues. Each tenant
//         parks its deliveries in its own queue (per-tenant delivery times
//         are non-decreasing under both wire models, so each queue stays
//         time-sorted even when the global stream is not), only the
//         earliest ripe head occupies the engine queue, and when it fires
//         every ripe entry is served in deficit-round-robin order: a
//         tenant's deficit grows by quantum_bytes x weight per round and
//         pays per delivered byte, so over any backlog interval tenants
//         drain in proportion to their weights instead of arrival order.
//
// The DRR policy is what makes delivery batching work at all under the
// shared-bandwidth contention model: per-tenant completion times are not
// globally monotone, so the FIFO policy's wire-order invariant cannot hold
// across tenants — but it holds per tenant, which is exactly the queue
// granularity DRR arbitrates over.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/tenant.hpp"

namespace dkf::net {

enum class ArbiterPolicy : std::uint8_t { Fifo, Drr };

/// How a batcher arbitrates parked deliveries. `weights` is borrowed (the
/// owner — Fabric, or a test — must outlive the batcher); nullptr means
/// every tenant weighs 1.0.
struct ArbiterConfig {
  ArbiterPolicy policy{ArbiterPolicy::Fifo};
  const TenantWeights* weights{nullptr};
  /// DRR credit added per tenant per service round, in bytes (scaled by the
  /// tenant's weight). Larger quanta trade scheduling granularity for fewer
  /// rotation steps; any positive value preserves the weighted shares.
  std::size_t quantum_bytes{64 * 1024};
};

}  // namespace dkf::net
