#include "net/fabric.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace dkf::net {

namespace {
constexpr std::size_t kControlPacketBytes = 64;
}

Fabric::Fabric(sim::Engine& eng, const hw::MachineSpec& machine,
               std::size_t nodes)
    : eng_(&eng), machine_(machine), nodes_(nodes) {
  DKF_CHECK(nodes > 0);
  // Channels materialize on first use: a 1024-node cluster declares a
  // million ordered pairs, but a tree collective touches a few thousand.
  links_.resize(nodes * nodes);
  batchers_.resize(nodes * nodes);
}

LinkBatcher& Fabric::batcherBetween(int src_node, int dst_node) {
  auto& slot = batchers_[static_cast<std::size_t>(src_node) * nodes_ +
                         static_cast<std::size_t>(dst_node)];
  if (!slot) {
    slot = std::make_unique<LinkBatcher>(*eng_, batch_window_);
    if (contention_.enabled) {
      ArbiterConfig cfg;
      cfg.policy = ArbiterPolicy::Drr;
      cfg.weights = &contention_.weights;
      cfg.quantum_bytes = contention_.quantum_bytes;
      slot->setArbiter(cfg);
    }
  }
  return *slot;
}

void Fabric::deliver(int src_node, int dst_node, TimeNs t, TenantId tenant,
                     std::size_t bytes, LinkBatcher::Callback cb) {
  if (batching_) {
    batcherBetween(src_node, dst_node).enqueue(t, tenant, bytes,
                                               std::move(cb));
  } else {
    eng_->scheduleAt(t, std::move(cb));
  }
}

TimeNs Fabric::reserveWire(Link& link, TenantId tenant, TimeNs earliest,
                           std::size_t bytes, double cap) {
  if (contention_.enabled) {
    return link.transferSharedAt(tenant, earliest, bytes, cap);
  }
  return link.transferAt(earliest, bytes, cap);
}

void Fabric::setContention(const ContentionConfig& cfg) {
  contention_ = cfg;
  if (contention_.quantum_bytes == 0) contention_.quantum_bytes = 64 * 1024;
  if (!contention_.enabled) return;
  for (auto& l : links_) {
    if (l) l->setSharing(&contention_.weights);
  }
  for (auto& b : batchers_) {
    if (b) {
      ArbiterConfig bcfg;
      bcfg.policy = ArbiterPolicy::Drr;
      bcfg.weights = &contention_.weights;
      bcfg.quantum_bytes = contention_.quantum_bytes;
      b->setArbiter(bcfg);
    }
  }
}

std::vector<std::size_t> Fabric::tenantDeliveries() const {
  std::vector<std::size_t> sums;
  for (const auto& b : batchers_) {
    if (!b) continue;
    const auto& per = b->tenantDeliveries();
    if (per.size() > sums.size()) sums.resize(per.size(), 0);
    for (std::size_t t = 0; t < per.size(); ++t) sums[t] += per[t];
  }
  return sums;
}

void Fabric::setBatchWindow(DurationNs w) {
  batch_window_ = w;
  for (auto& b : batchers_) {
    if (b) b->setWindow(w);
  }
}

std::size_t Fabric::batchedDeliveries() const {
  std::size_t total = 0;
  for (const auto& b : batchers_) {
    if (b) total += b->deliveries();
  }
  return total;
}

std::size_t Fabric::batchedArmedEvents() const {
  std::size_t total = 0;
  for (const auto& b : batchers_) {
    if (b) total += b->armedEvents();
  }
  return total;
}

std::size_t Fabric::coalescedDeliveries() const {
  std::size_t total = 0;
  for (const auto& b : batchers_) {
    if (b) total += b->coalescedDeliveries();
  }
  return total;
}

Link& Fabric::linkBetween(int src_node, int dst_node) {
  DKF_CHECK(src_node >= 0 && static_cast<std::size_t>(src_node) < nodes_);
  DKF_CHECK(dst_node >= 0 && static_cast<std::size_t>(dst_node) < nodes_);
  auto& slot = links_[static_cast<std::size_t>(src_node) * nodes_ +
                      static_cast<std::size_t>(dst_node)];
  if (!slot) {
    const hw::LinkSpec& spec =
        src_node == dst_node ? machine_.node.gpu_gpu : machine_.internode;
    slot = std::make_unique<Link>(*eng_, spec);
    if (contention_.enabled) slot->setSharing(&contention_.weights);
  }
  return *slot;
}

void Fabric::traceTransfer(int src_node, int dst_node, const char* what,
                           std::size_t bytes, TimeNs begin, TimeNs delivery) {
  if (!tracer_ || !tracer_->isEnabled()) return;
  const auto track = tracer_->track("fabric." + std::to_string(src_node) +
                                    "->" + std::to_string(dst_node));
  tracer_->span(track,
                std::string(what) + "[" + std::to_string(bytes) + " B]",
                begin, delivery, "comm");
}

double Fabric::directCap(const gpu::MemSpan& a, const gpu::MemSpan& b) const {
  if (a.onDevice() || b.onDevice()) {
    return machine_.gpuDirectBandwidth().bytesPerNs();
  }
  return 0.0;
}

TimeNs Fabric::departureTime(DurationNs nic_cost) {
  TimeNs t = eng_->now() + nic_cost;
  if (faults_) t += faults_->nicStallDelay();
  return t;
}

double Fabric::degradedCap(double cap, const Link& link, bool& down) {
  down = false;
  if (!faults_) return cap;
  const double scale = faults_->linkScaleAt(eng_->now());
  if (scale >= 1.0) return cap;
  faults_->noteDegraded();
  if (scale <= 0.0) {
    down = true;  // link down: the transfer is lost outright
    return cap;
  }
  const double scaled = link.spec().bandwidth.bytesPerNs() * scale;
  return cap > 0.0 ? std::min(cap, scaled) : scaled;
}

void Fabric::traceDrop(int src_node, int dst_node, const char* what) {
  if (!tracer_ || !tracer_->isEnabled()) return;
  const auto track = tracer_->track("fabric." + std::to_string(src_node) +
                                    "->" + std::to_string(dst_node));
  tracer_->instant(track, std::string("drop:") + what, eng_->now(), "fault");
}

TimeNs Fabric::sendData(int src_node, int dst_node, gpu::MemSpan payload,
                        gpu::MemSpan dst, Fabric::Callback on_delivered,
                        TenantId tenant) {
  DKF_CHECK_MSG(dst.size() >= payload.size(),
                "fabric destination too small: " << dst.size() << " < "
                                                 << payload.size());
  Link& link = linkBetween(src_node, dst_node);
  const double cap =
      src_node == dst_node ? 0.0 : directCap(payload, dst);
  bool down = false;
  const double eff_cap = degradedCap(cap, link, down);
  const TimeNs delivery = reserveWire(
      link, tenant, departureTime(machine_.nic_per_message), payload.size(),
      eff_cap);
  traceTransfer(src_node, dst_node, "data", payload.size(), eng_->now(),
                delivery);
  if (down || (faults_ && faults_->dropData())) {
    traceDrop(src_node, dst_node, "data");
    return delivery;  // wire time was spent; the payload never lands
  }
  deliver(src_node, dst_node, delivery, tenant, payload.size(),
          [payload, dst, cb = std::move(on_delivered)]() mutable {
            std::memcpy(dst.bytes.data(), payload.bytes.data(),
                        payload.size());
            if (cb) cb();
          });
  return delivery;
}

TimeNs Fabric::sendControl(int src_node, int dst_node,
                           Fabric::Callback on_delivered, TenantId tenant) {
  Link& link = linkBetween(src_node, dst_node);
  bool down = false;
  const double eff_cap = degradedCap(0.0, link, down);
  const TimeNs delivery = reserveWire(
      link, tenant, departureTime(machine_.nic_per_message),
      kControlPacketBytes, eff_cap);
  traceTransfer(src_node, dst_node, "ctrl", kControlPacketBytes, eng_->now(),
                delivery);
  if (down || (faults_ && faults_->dropControl())) {
    traceDrop(src_node, dst_node, "ctrl");
    return delivery;
  }
  deliver(src_node, dst_node, delivery, tenant, kControlPacketBytes,
          [cb = std::move(on_delivered)]() mutable {
            if (cb) cb();
          });
  return delivery;
}

TimeNs Fabric::sendMessage(
    int src_node, int dst_node, gpu::MemSpan payload,
    Fabric::MessageCallback on_delivered, TenantId tenant) {
  // Single-shot capture into the pool (one memcpy, recycled storage) —
  // the seed's reserve+insert vector snapshot, minus the allocator.
  return sendPayload(src_node, dst_node, payload,
                     pool_.capture({payload.bytes.data(), payload.size()}),
                     std::move(on_delivered), tenant);
}

TimeNs Fabric::sendPayload(int src_node, int dst_node, gpu::MemSpan payload_src,
                           PayloadRef payload,
                           Fabric::MessageCallback on_delivered,
                           TenantId tenant) {
  DKF_CHECK_MSG(payload.size() == payload_src.size(),
                "captured payload does not match its source span: "
                    << payload.size() << " != " << payload_src.size());
  Link& link = linkBetween(src_node, dst_node);
  const double cap = src_node == dst_node
                         ? 0.0
                         : directCap(payload_src, gpu::MemSpan{});
  bool down = false;
  const double eff_cap = degradedCap(cap, link, down);
  const TimeNs delivery = reserveWire(
      link, tenant, departureTime(machine_.nic_per_message), payload.size(),
      eff_cap);
  traceTransfer(src_node, dst_node, "eager", payload.size(), eng_->now(),
                delivery);
  if (down || (faults_ && faults_->dropData())) {
    traceDrop(src_node, dst_node, "eager");
    return delivery;  // wire time was spent; the ref drops here
  }
  // The ref moves through the delivery closure into the receiver's handler:
  // zero copies past the capture, and a retransmission's closure shares the
  // same slab. Read the byte count before the move — PayloadRef's move ctor
  // zeroes the source, and deliver()'s bytes drive DRR deficit accounting.
  const std::size_t bytes = payload.size();
  auto closure = [data = std::move(payload),
                  cb = std::move(on_delivered)]() mutable {
    if (cb) cb(std::move(data));
  };
  static_assert(sizeof(closure) <= sim::kEventCallbackBytes,
                "payload delivery closure must fit an engine event slot");
  deliver(src_node, dst_node, delivery, tenant, bytes, std::move(closure));
  return delivery;
}

TimeNs Fabric::rdmaRead(int reader_node, int target_node, gpu::MemSpan src,
                        gpu::MemSpan dst, Fabric::Callback on_done,
                        Fabric::Predicate still_wanted, TenantId tenant) {
  DKF_CHECK(dst.size() >= src.size());
  // Request propagation to the target, then the data streams back over the
  // target->reader channel.
  Link& back = linkBetween(target_node, reader_node);
  const TimeNs request_arrival =
      departureTime(machine_.rdma_setup) +
      (reader_node == target_node ? ns(0) : machine_.internode.latency);
  bool down = false;
  const double eff_cap = degradedCap(directCap(src, dst), back, down);
  const TimeNs delivery =
      reserveWire(back, tenant, request_arrival, src.size(), eff_cap);
  traceTransfer(target_node, reader_node, "rdma_read", src.size(),
                eng_->now(), delivery);
  if (down || (faults_ && faults_->dropData())) {
    traceDrop(target_node, reader_node, "rdma_read");
    return delivery;
  }
  deliver(target_node, reader_node, delivery, tenant, src.size(),
          [src, dst, cb = std::move(on_done),
           want = std::move(still_wanted)]() mutable {
            if (want && !want()) return;  // superseded by an earlier delivery
            std::memcpy(dst.bytes.data(), src.bytes.data(), src.size());
            if (cb) cb();
          });
  return delivery;
}

TimeNs Fabric::rdmaWrite(int writer_node, int target_node, gpu::MemSpan src,
                         gpu::MemSpan dst, Fabric::Callback on_done,
                         Fabric::Predicate still_wanted, TenantId tenant) {
  DKF_CHECK(dst.size() >= src.size());
  Link& fwd = linkBetween(writer_node, target_node);
  bool down = false;
  const double eff_cap = degradedCap(directCap(src, dst), fwd, down);
  const TimeNs delivery = reserveWire(
      fwd, tenant, departureTime(machine_.rdma_setup), src.size(), eff_cap);
  traceTransfer(writer_node, target_node, "rdma_write", src.size(),
                eng_->now(), delivery);
  if (down || (faults_ && faults_->dropData())) {
    traceDrop(writer_node, target_node, "rdma_write");
    return delivery;
  }
  deliver(writer_node, target_node, delivery, tenant, src.size(),
          [src, dst, cb = std::move(on_done),
           want = std::move(still_wanted)]() mutable {
            if (want && !want()) return;  // superseded by an earlier delivery
            std::memcpy(dst.bytes.data(), src.bytes.data(), src.size());
            if (cb) cb();
          });
  return delivery;
}

std::size_t Fabric::totalBytesCarried() const {
  std::size_t total = 0;
  for (const auto& l : links_) {
    if (l) total += l->bytesCarried();
  }
  return total;
}

std::size_t Fabric::totalMessages() const {
  std::size_t total = 0;
  for (const auto& l : links_) {
    if (l) total += l->messagesCarried();
  }
  return total;
}

}  // namespace dkf::net
