#include "net/link_batcher.hpp"

#include <utility>

#include "common/check.hpp"

namespace dkf::net {

void LinkBatcher::enqueue(TimeNs t, Callback cb) {
  DKF_CHECK_MSG(fifo_.empty() || t >= fifo_.back().time,
                "link deliveries must be enqueued in wire order: " << t
                    << " after " << fifo_.back().time);
  fifo_.push_back(Entry{t, eng_->allocSeq(), std::move(cb)});
  // A delivery enqueued from inside fire() (a completion callback that
  // immediately sends again) is picked up by fire()'s re-arm instead.
  if (!armed_ && !firing_) arm();
}

void LinkBatcher::arm() {
  const Entry& head = fifo_.front();
  armed_ = true;
  ++armed_events_;
  eng_->scheduleAtSeq(head.time + window_, head.seq, [this] { fire(); });
}

void LinkBatcher::fire() {
  armed_ = false;
  firing_ = true;
  const TimeNs now = eng_->now();
  Entry head = std::move(fifo_.front());
  fifo_.pop_front();
  ++deliveries_;
  head.cb();
  std::uint64_t prev_seq = head.seq;
  std::size_t run = 1;
  while (!fifo_.empty()) {
    const Entry& next = fifo_.front();
    const bool joins = window_ > 0
                           ? next.time <= now
                           : next.time == now && next.seq == prev_seq + 1;
    if (!joins) break;
    Entry e = std::move(fifo_.front());
    fifo_.pop_front();
    prev_seq = e.seq;
    ++deliveries_;
    ++run;
    e.cb();
  }
  if (run > 1) {
    ++coalesced_runs_;
    coalesced_deliveries_ += run - 1;
  }
  firing_ = false;
  if (!fifo_.empty()) arm();
}

}  // namespace dkf::net
