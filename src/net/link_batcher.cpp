#include "net/link_batcher.hpp"

#include <utility>

#include "common/check.hpp"

namespace dkf::net {

void LinkBatcher::setArbiter(const ArbiterConfig& cfg) {
  DKF_CHECK_MSG(pending() == 0,
                "arbiter policy must be chosen before traffic");
  arbiter_ = cfg;
  if (arbiter_.quantum_bytes == 0) arbiter_.quantum_bytes = 64 * 1024;
}

void LinkBatcher::enqueue(TimeNs t, TenantId tenant, std::size_t bytes,
                          Callback cb) {
  if (arbiter_.policy == ArbiterPolicy::Fifo) {
    DKF_CHECK_MSG(fifo_.empty() || t >= fifo_.back().time,
                  "link deliveries must be enqueued in wire order: " << t
                      << " after " << fifo_.back().time);
    fifo_.push_back(Entry{t, eng_->allocSeq(), std::move(cb)});
    // A delivery enqueued from inside fire() (a completion callback that
    // immediately sends again) is picked up by fire()'s re-arm instead.
    if (!armed_ && !firing_) arm();
    return;
  }

  if (tenant >= queues_.size()) queues_.resize(tenant + 1);
  TenantQueue& tq = queues_[tenant];
  DKF_CHECK_MSG(tq.q.empty() || t >= tq.q.back().time,
                "per-tenant link deliveries must be enqueued in wire order: "
                    << t << " after " << tq.q.back().time << " (tenant "
                    << tenant << ")");
  tq.q.push_back(DrrEntry{t, bytes, std::move(cb)});
  ++drr_pending_;
  if (!firing_) armDrr();
}

// -------------------------------------------------------- FIFO policy ----

void LinkBatcher::arm() {
  const Entry& head = fifo_.front();
  armed_ = true;
  ++armed_events_;
  eng_->scheduleAtSeq(head.time + window_, head.seq, [this] { fire(); });
}

void LinkBatcher::fire() {
  armed_ = false;
  firing_ = true;
  const TimeNs now = eng_->now();
  Entry head = std::move(fifo_.front());
  fifo_.pop_front();
  ++deliveries_;
  head.cb();
  std::uint64_t prev_seq = head.seq;
  std::size_t run = 1;
  while (!fifo_.empty()) {
    const Entry& next = fifo_.front();
    const bool joins = window_ > 0
                           ? next.time <= now
                           : next.time == now && next.seq == prev_seq + 1;
    if (!joins) break;
    Entry e = std::move(fifo_.front());
    fifo_.pop_front();
    prev_seq = e.seq;
    ++deliveries_;
    ++run;
    e.cb();
  }
  if (run > 1) {
    ++coalesced_runs_;
    coalesced_deliveries_ += run - 1;
  }
  firing_ = false;
  if (!fifo_.empty()) arm();
}

// --------------------------------------------------------- DRR policy ----

TimeNs LinkBatcher::earliestHead() const {
  TimeNs earliest = kNever;
  for (const TenantQueue& tq : queues_) {
    if (!tq.q.empty() && tq.q.front().time < earliest) {
      earliest = tq.q.front().time;
    }
  }
  return earliest;
}

void LinkBatcher::armDrr() {
  const TimeNs head = earliestHead();
  if (head == kNever) return;
  if (armed_ && armed_time_ <= head) return;  // the armed event fires first
  // A later-armed event may still be in the engine queue; the generation
  // bump turns it into a no-op when it eventually pops.
  armed_ = true;
  armed_time_ = head;
  const std::uint64_t gen = ++arm_generation_;
  ++armed_events_;
  eng_->scheduleAt(head + window_, [this, gen] { fireDrr(gen); });
}

void LinkBatcher::fireDrr(std::uint64_t generation) {
  if (generation != arm_generation_) return;  // superseded by a re-arm
  armed_ = false;
  armed_time_ = kNever;
  firing_ = true;
  const TimeNs now = eng_->now();

  // Serve every ripe entry (delivery time reached) in deficit-round-robin
  // order: visit tenants in index order from the rotation cursor, credit
  // quantum x weight per visit, and drain ripe heads while the deficit
  // covers their bytes. A queue left without ripe work forfeits its credit
  // (standard DRR — no hoarding across idle periods). Entries becoming ripe
  // *because* callbacks ran (same-instant re-sends) are picked up by the
  // outer loop, so one event drains everything due at `now`.
  std::size_t run = 0;
  bool served_any = true;
  while (served_any) {
    served_any = false;
    const std::size_t n = queues_.size();
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t t = (drr_cursor_ + step) % n;
      TenantQueue& tq = queues_[t];
      if (tq.q.empty() || tq.q.front().time > now) {
        tq.deficit = 0.0;
        continue;
      }
      const double w = arbiter_.weights ? arbiter_.weights->weightOf(
                                              static_cast<TenantId>(t))
                                        : 1.0;
      tq.deficit += static_cast<double>(arbiter_.quantum_bytes) * w;
      while (!tq.q.empty() && tq.q.front().time <= now &&
             tq.deficit >= static_cast<double>(tq.q.front().bytes)) {
        DrrEntry e = std::move(tq.q.front());
        tq.q.pop_front();
        tq.deficit -= static_cast<double>(e.bytes);
        --drr_pending_;
        ++deliveries_;
        ++run;
        if (t >= tenant_deliveries_.size()) tenant_deliveries_.resize(t + 1);
        ++tenant_deliveries_[t];
        served_any = true;
        e.cb();
      }
      if (tq.q.empty() || tq.q.front().time > now) tq.deficit = 0.0;
    }
    if (served_any) drr_cursor_ = (drr_cursor_ + 1) % queues_.size();
  }
  if (run > 1) {
    ++coalesced_runs_;
    coalesced_deliveries_ += run - 1;
  }
  firing_ = false;
  armDrr();
}

}  // namespace dkf::net
