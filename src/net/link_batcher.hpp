// Per-link delivery coalescing (MODEL.md §13) with a pluggable head policy
// (MODEL.md §14).
//
// Every transfer on a link completes at a delivery time computed by
// Link::transferAt, which serializes the wire: per link, delivery times are
// non-decreasing in issue order. The batcher exploits that: instead of one
// engine event per delivery, deliveries park in a per-link FIFO and only the
// FIFO *head* occupies the engine queue. When the head fires, the batcher
// runs it plus any immediately-following deliveries that are provably next
// in the global event order, then re-arms the new head — one heap push and
// one pop carry N completions.
//
// Exactness (FIFO policy). Each delivery reserves its engine sequence
// number with Engine::allocSeq() at enqueue time — the seq an eager
// scheduleAt would have consumed — and the head is armed under that
// reserved (time, seq) key via scheduleAtSeq. The armed event therefore
// pops exactly when the eager event would have. In-event coalescing is
// restricted to *contiguous-seq same-time runs*: a parked entry (t, s+1)
// directly following the fired entry (t, s) can run in the same event
// because no foreign event can sit between them in the total order (seqs
// are unique, everything ordered before (t, s+1) has already run, and
// events scheduled from inside the current event get strictly larger seqs).
// With the default window of 0 the batched event stream is byte-identical
// to the unbatched one.
//
// DRR policy (setArbiter with ArbiterPolicy::Drr). Deliveries park in
// per-tenant queues (each provably time-sorted: both wire models make a
// tenant's delivery times non-decreasing), the earliest head across the
// queues is armed under a fresh engine key, and a fired event serves every
// ripe entry (time <= now) in deficit-round-robin order over the tenants —
// see arbiter.hpp. Timing is untouched (every entry still runs at its own
// delivery time); the policy decides ordering among same-instant ripe
// entries and keeps the engine queue collapsed to one event per busy link
// even when the global delivery stream is not monotone.
//
// Window. An optional coalescing window W > 0 delivers every parked entry
// with time <= head.time + W at head.time + W — NIC interrupt moderation.
// That trades exact per-message timing (bounded by W) for fewer events and
// is OFF by default; everything that gates on byte-identity keeps W = 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ring.hpp"
#include "common/tenant.hpp"
#include "common/units.hpp"
#include "net/arbiter.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"

namespace dkf::net {

class LinkBatcher {
 public:
  /// Same budget as an engine event slot: delivery closures (payload spans,
  /// owned eager snapshots, completion hooks) park here unchanged.
  using Callback = sim::EventCallback;

  explicit LinkBatcher(sim::Engine& eng, DurationNs window = ns(0))
      : eng_(&eng), window_(window) {}
  LinkBatcher(const LinkBatcher&) = delete;
  LinkBatcher& operator=(const LinkBatcher&) = delete;

  /// Park a delivery that completes at `t`. FIFO policy: `t` must be >= the
  /// previously enqueued delivery time (guaranteed by Link wire
  /// serialization). Deliveries enqueued this way belong to the default
  /// tenant under the DRR policy.
  void enqueue(TimeNs t, Callback cb) {
    enqueue(t, kDefaultTenant, /*bytes=*/0, std::move(cb));
  }

  /// Park a delivery of `bytes` payload bytes for `tenant`. Under FIFO the
  /// tenant and size are ignored (wire order is the policy); under DRR `t`
  /// must be >= the previously enqueued delivery time *of this tenant*.
  void enqueue(TimeNs t, TenantId tenant, std::size_t bytes, Callback cb);

  /// Select the head policy (arbiter.hpp). Only meaningful before traffic:
  /// switching with deliveries parked would strand them.
  void setArbiter(const ArbiterConfig& cfg);
  ArbiterPolicy policy() const { return arbiter_.policy; }

  /// Coalescing window; 0 (default) keeps the event stream exact.
  void setWindow(DurationNs w) { window_ = w; }
  DurationNs window() const { return window_; }

  std::size_t pending() const { return fifo_.size() + drr_pending_; }

  // ---- Instrumentation (tests + bench) ----
  /// Deliveries executed.
  std::size_t deliveries() const { return deliveries_; }
  /// Engine events armed; deliveries() - armedFires() were coalesced.
  std::size_t armedEvents() const { return armed_events_; }
  /// Events that carried more than one delivery.
  std::size_t coalescedRuns() const { return coalesced_runs_; }
  /// Deliveries that rode along in another delivery's event.
  std::size_t coalescedDeliveries() const { return coalesced_deliveries_; }
  /// DRR only: deliveries served per tenant (index = tenant id).
  const std::vector<std::size_t>& tenantDeliveries() const {
    return tenant_deliveries_;
  }

 private:
  struct Entry {
    TimeNs time;
    std::uint64_t seq;  // reserved engine key (allocSeq at enqueue)
    Callback cb;
  };
  struct DrrEntry {
    TimeNs time;
    std::size_t bytes;
    Callback cb;
  };
  struct TenantQueue {
    RingQueue<DrrEntry> q;
    double deficit{0.0};
  };

  // ---- FIFO policy (the seed path, byte-identical) ----
  /// Put the FIFO head into the engine queue under its reserved key.
  void arm();
  /// Head event fired: deliver it plus any provably-next parked entries,
  /// then re-arm the new head.
  void fire();

  // ---- DRR policy ----
  /// Earliest parked delivery time across tenant queues (kNever if none).
  TimeNs earliestHead() const;
  /// Arm (or bring forward) the engine event for the earliest head.
  void armDrr();
  /// Serve every ripe entry in deficit-round-robin order, then re-arm.
  void fireDrr(std::uint64_t generation);

  static constexpr TimeNs kNever = ~TimeNs{0};

  sim::Engine* eng_;
  DurationNs window_;
  RingQueue<Entry> fifo_;
  bool armed_{false};
  bool firing_{false};

  ArbiterConfig arbiter_{};
  std::vector<TenantQueue> queues_;  // DRR: per-tenant, grown on demand
  std::size_t drr_pending_{0};
  std::size_t drr_cursor_{0};        // rotation start for the next round
  TimeNs armed_time_{kNever};
  std::uint64_t arm_generation_{0};  // invalidates superseded armed events

  std::size_t deliveries_{0};
  std::size_t armed_events_{0};
  std::size_t coalesced_runs_{0};
  std::size_t coalesced_deliveries_{0};
  std::vector<std::size_t> tenant_deliveries_;
};

}  // namespace dkf::net
