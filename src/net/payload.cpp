#include "net/payload.hpp"

#include <algorithm>
#include <exception>
#include <new>

#include "common/check.hpp"

namespace dkf::net {

PayloadPool::PayloadPool(PayloadPoolConfig cfg) : cfg_(cfg) {}

PayloadPool::~PayloadPool() {
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    detail::SlabHeader* h = free_[cls];
    free_[cls] = nullptr;
    while (h != nullptr) {
      detail::SlabHeader* next = h->next;
      ::operator delete(h);
      h = next;
    }
  }
  // Orphan still-checked-out slabs: a ref held by an engine event slot (the
  // engine outlives the fabric) releases into plain delete once it runs.
  for (detail::SlabHeader* h = live_head_; h != nullptr;) {
    detail::SlabHeader* next = h->next;
    h->pool = nullptr;
    h->prev = nullptr;
    h->next = nullptr;
    h = next;
  }
  live_head_ = nullptr;
}

void PayloadPool::checkQuiescent() const {
  DKF_CHECK_MSG(live_buffers_ == 0,
                "payload pool not quiescent: " << live_buffers_
                    << " live buffer(s) (" << live_bytes_
                    << " bytes) still hold refs");
}

std::uint32_t PayloadPool::classOf(std::size_t bytes) {
  std::size_t cap = kMinSlabBytes;
  for (std::uint32_t cls = 0; cls < kClasses; ++cls, cap <<= 1) {
    if (bytes <= cap) return cls;
  }
  return kOversizeClass;
}

detail::SlabHeader* PayloadPool::acquire(std::size_t bytes) {
  const std::uint32_t cls = classOf(bytes);
  detail::SlabHeader* h;
  if (cls != kOversizeClass && free_[cls] != nullptr) {
    h = free_[cls];
    free_[cls] = h->next;
    cached_bytes_ -= h->capacity;
    ++counters_.slab_reuses;
  } else {
    const std::size_t cap = cls != kOversizeClass ? classBytes(cls) : bytes;
    void* raw = ::operator new(sizeof(detail::SlabHeader) + cap);
    h = new (raw) detail::SlabHeader{};
    h->capacity = cap;
    if (cls == kOversizeClass) {
      ++counters_.oversize_allocs;
    } else {
      ++counters_.slab_allocs;
    }
  }
  h->pool = this;
  h->refs = 1;
  h->size_class = cls;
  h->prev = nullptr;
  h->next = live_head_;
  if (live_head_ != nullptr) live_head_->prev = h;
  live_head_ = h;
  ++live_buffers_;
  live_bytes_ += h->capacity;
  peak_live_buffers_ = std::max(peak_live_buffers_, live_buffers_);
  peak_live_bytes_ = std::max(peak_live_bytes_, live_bytes_);
  return h;
}

void PayloadPool::recycle(detail::SlabHeader* h) noexcept {
  // Unlink from the live list.
  if (h->prev != nullptr) {
    h->prev->next = h->next;
  } else {
    live_head_ = h->next;
  }
  if (h->next != nullptr) h->next->prev = h->prev;
  --live_buffers_;
  live_bytes_ -= h->capacity;

  const bool cacheable =
      h->size_class != kOversizeClass &&
      cached_bytes_ + h->capacity <= cfg_.max_cached_bytes;
  if (!cacheable) {
    if (h->size_class != kOversizeClass) ++counters_.trims;
    ::operator delete(h);
    return;
  }
  h->prev = nullptr;
  h->next = free_[h->size_class];
  free_[h->size_class] = h;
  cached_bytes_ += h->capacity;
}

void PayloadPool::release(detail::SlabHeader* h) noexcept {
  if (--h->refs != 0) return;
  if (h->pool != nullptr) {
    h->pool->recycle(h);
  } else {
    ::operator delete(h);  // the pool died first; the slab was orphaned
  }
}

PayloadRef PayloadPool::capture(std::span<const std::byte> bytes) {
  ++counters_.captures;
  PayloadRef r;
  r.size_ = static_cast<std::uint32_t>(bytes.size());
  DKF_CHECK_MSG(r.size_ == bytes.size(),
                "payload too large for the pool: " << bytes.size());
  if (bytes.size() <= kInlinePayloadBytes) {
    ++counters_.inline_captures;
    if (!bytes.empty()) std::memcpy(r.inline_, bytes.data(), bytes.size());
    return r;
  }
  r.slab_ = acquire(bytes.size());
  std::memcpy(r.slab_->data(), bytes.data(), bytes.size());
  return r;
}

PayloadRef PayloadPool::allocate(std::size_t bytes) {
  ++counters_.captures;
  PayloadRef r;
  r.size_ = static_cast<std::uint32_t>(bytes);
  DKF_CHECK_MSG(r.size_ == bytes, "payload too large for the pool: " << bytes);
  r.slab_ = acquire(bytes);
  std::memset(r.slab_->data(), 0, bytes);
  return r;
}

double PayloadPool::hitRate() const noexcept {
  const std::size_t checkouts = counters_.slab_reuses + counters_.slab_allocs +
                                counters_.oversize_allocs;
  if (checkouts == 0) return 1.0;
  return static_cast<double>(counters_.slab_reuses) /
         static_cast<double>(checkouts);
}

}  // namespace dkf::net
