// A one-way communication channel with latency, bandwidth, and FIFO
// serialization. Used for InfiniBand rails between nodes and NVLink paths
// inside a node. Transfers reserve the channel eagerly (deterministic
// busy-until bookkeeping), so overlapping messages queue behind each other
// exactly once regardless of event ordering.
//
// Two wire models share the bookkeeping:
//   - FIFO (default): one busy_until_ for the whole channel; every transfer
//     queues behind every earlier one regardless of who issued it.
//   - Shared (setSharing): per-tenant busy_until, and a transfer streams at
//     the link rate scaled by its tenant's weight share among the tenants
//     with a live backlog — weighted processor sharing, the link-level
//     contention model of MODEL.md §14. A tenant queues only behind its own
//     backlog, so per-tenant delivery times stay non-decreasing (the
//     invariant the per-tenant arbiter queues rely on) while an adversarial
//     tenant can no longer park its whole window in front of everyone else.
#pragma once

#include <cstddef>
#include <vector>

#include "common/tenant.hpp"
#include "common/units.hpp"
#include "hw/spec.hpp"
#include "sim/engine.hpp"

namespace dkf::net {

class Link {
 public:
  Link(sim::Engine& eng, hw::LinkSpec spec);

  const hw::LinkSpec& spec() const { return spec_; }

  /// Reserve the channel for `bytes` starting no earlier than `earliest`.
  /// Returns the delivery time (serialization + propagation latency).
  /// `bandwidth_override` (bytes/ns) caps the streaming rate below the
  /// link's own — used for GPUDirect paths bottlenecked elsewhere; pass 0
  /// to use the link's native bandwidth.
  TimeNs transferAt(TimeNs earliest, std::size_t bytes,
                    double bandwidth_override = 0.0);

  /// Convenience: transferAt(now, ...).
  TimeNs transfer(std::size_t bytes, double bandwidth_override = 0.0);

  /// Switch to the shared (weighted processor-sharing) wire model. The
  /// weights object must outlive the link; nullptr restores pure FIFO.
  /// Only meaningful before traffic.
  void setSharing(const TenantWeights* weights) { sharing_ = weights; }
  bool sharing() const { return sharing_ != nullptr; }

  /// Shared-model reservation for one tenant: the transfer starts after the
  /// tenant's own backlog and streams at the link rate times the tenant's
  /// weight share among tenants busy at that start time. Falls back to
  /// transferAt when sharing is off.
  TimeNs transferSharedAt(TenantId tenant, TimeNs earliest, std::size_t bytes,
                          double bandwidth_override = 0.0);

  TimeNs busyUntil() const { return busy_until_; }
  /// Shared model: when the given tenant's backlog drains (0 = untouched).
  TimeNs tenantBusyUntil(TenantId t) const {
    return t < tenant_busy_.size() ? tenant_busy_[t] : 0;
  }
  std::size_t bytesCarried() const { return bytes_carried_; }
  std::size_t messagesCarried() const { return messages_; }

 private:
  sim::Engine* eng_;
  hw::LinkSpec spec_;
  TimeNs busy_until_{0};
  std::size_t bytes_carried_{0};
  std::size_t messages_{0};

  const TenantWeights* sharing_{nullptr};
  std::vector<TimeNs> tenant_busy_;  // shared model only, grown on demand
};

}  // namespace dkf::net
