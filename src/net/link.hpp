// A one-way communication channel with latency, bandwidth, and FIFO
// serialization. Used for InfiniBand rails between nodes and NVLink paths
// inside a node. Transfers reserve the channel eagerly (deterministic
// busy-until bookkeeping), so overlapping messages queue behind each other
// exactly once regardless of event ordering.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "hw/spec.hpp"
#include "sim/engine.hpp"

namespace dkf::net {

class Link {
 public:
  Link(sim::Engine& eng, hw::LinkSpec spec);

  const hw::LinkSpec& spec() const { return spec_; }

  /// Reserve the channel for `bytes` starting no earlier than `earliest`.
  /// Returns the delivery time (serialization + propagation latency).
  /// `bandwidth_override` (bytes/ns) caps the streaming rate below the
  /// link's own — used for GPUDirect paths bottlenecked elsewhere; pass 0
  /// to use the link's native bandwidth.
  TimeNs transferAt(TimeNs earliest, std::size_t bytes,
                    double bandwidth_override = 0.0);

  /// Convenience: transferAt(now, ...).
  TimeNs transfer(std::size_t bytes, double bandwidth_override = 0.0);

  TimeNs busyUntil() const { return busy_until_; }
  std::size_t bytesCarried() const { return bytes_carried_; }
  std::size_t messagesCarried() const { return messages_; }

 private:
  sim::Engine* eng_;
  hw::LinkSpec spec_;
  TimeNs busy_until_{0};
  std::size_t bytes_carried_{0};
  std::size_t messages_{0};
};

}  // namespace dkf::net
