// Zero-copy payload plane: refcounted slab buffers for the message hot
// path (MODEL.md §15).
//
// Every payload that crossed the fabric used to be snapshotted into a
// fresh std::vector<std::byte> — one heap allocation per message, and
// another per retransmission. PayloadRef/PayloadPool replace that with:
//
//   * inline storage for small payloads (<= kInlinePayloadBytes): the
//     bytes live inside the handle itself, copies are memcpys, no heap;
//   * slab storage for everything else: a pool-owned block with an
//     intrusive refcount, so handing a payload to the delivery closure,
//     the receiver, or a retransmission is a ref bump, never a copy;
//   * power-of-two size-class free lists in the pool (intrusive, through
//     the slab headers), so steady-state traffic recycles slabs instead
//     of touching the allocator at all.
//
// The pool only changes *when memory is allocated*, never what bytes move
// when — wire timing and event order are untouched, which the conformance
// and shadow suites enforce.
//
// Ownership rules (who may hold a ref across virtual time) are documented
// in MODEL.md §15. The pool is engine-adjacent state: single-threaded,
// like the engine that drives it — parallel sweeps give every cell its own
// cluster and therefore its own pool.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

namespace dkf::net {

class PayloadPool;

/// Payloads at or under this size live inside the PayloadRef itself: no
/// slab, no refcount, copies are 64-byte memcpys. Sized to cover protocol
/// control payloads and the small tail of eager traffic while keeping
/// sizeof(PayloadRef) small enough that delivery closures still fit the
/// engine's inline event slots (fabric.cpp static_asserts the budget).
inline constexpr std::size_t kInlinePayloadBytes = 64;

namespace detail {

/// Header of one pool slab; the payload bytes follow in the same block.
/// `next`/`prev` double as the live-list links while checked out and as
/// the free-list link while cached.
struct alignas(alignof(std::max_align_t)) SlabHeader {
  PayloadPool* pool;         ///< nullptr once the owning pool died (orphan)
  SlabHeader* prev;
  SlabHeader* next;
  std::size_t capacity;      ///< usable payload bytes in this block
  std::uint32_t refs;
  std::uint32_t size_class;  ///< kOversizeClass for direct allocations

  std::byte* data() { return reinterpret_cast<std::byte*>(this + 1); }
};
static_assert(sizeof(SlabHeader) % alignof(std::max_align_t) == 0,
              "slab payload bytes must start max-aligned");

}  // namespace detail

/// Shared handle to one captured payload. Cheap to copy (ref bump or an
/// inline memcpy), nothrow-movable (so it stays inside the engine's inline
/// callback storage), releases its slab back to the pool when the last ref
/// dies. Slab-backed copies alias one buffer — captured payloads are
/// treated as immutable once on the wire; only allocate()d staging buffers
/// (single-ref by construction) are written through the handle.
class PayloadRef {
 public:
  PayloadRef() noexcept = default;

  PayloadRef(const PayloadRef& o) noexcept : slab_(o.slab_), size_(o.size_) {
    if (slab_ != nullptr) {
      ++slab_->refs;
    } else if (size_ > 0) {
      std::memcpy(inline_, o.inline_, size_);
    }
  }

  PayloadRef(PayloadRef&& o) noexcept : slab_(o.slab_), size_(o.size_) {
    if (slab_ == nullptr && size_ > 0) std::memcpy(inline_, o.inline_, size_);
    o.slab_ = nullptr;
    o.size_ = 0;
  }

  PayloadRef& operator=(const PayloadRef& o) noexcept {
    if (this == &o) return *this;
    detail::SlabHeader* s = o.slab_;  // bump first: o may share our slab
    if (s != nullptr) ++s->refs;
    reset();
    slab_ = s;
    size_ = o.size_;
    if (s == nullptr && size_ > 0) std::memcpy(inline_, o.inline_, size_);
    return *this;
  }

  PayloadRef& operator=(PayloadRef&& o) noexcept {
    if (this == &o) return *this;
    reset();
    slab_ = o.slab_;
    size_ = o.size_;
    if (slab_ == nullptr && size_ > 0) {
      std::memcpy(inline_, o.inline_, size_);
    }
    o.slab_ = nullptr;
    o.size_ = 0;
    return *this;
  }

  ~PayloadRef() { reset(); }

  /// Drop this handle's claim (slab refs recycle at zero).
  void reset() noexcept;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  /// True while the bytes live inside this handle (no slab behind it).
  bool isInline() const noexcept { return slab_ == nullptr; }
  /// Current reference count: 1 for non-empty inline handles, 0 when empty.
  std::uint32_t refCount() const noexcept {
    if (slab_ != nullptr) return slab_->refs;
    return size_ > 0 ? 1u : 0u;
  }

  std::byte* data() noexcept {
    return slab_ != nullptr ? slab_->data() : inline_;
  }
  const std::byte* data() const noexcept {
    return slab_ != nullptr ? slab_->data() : inline_;
  }
  std::span<std::byte> span() noexcept { return {data(), size_}; }
  std::span<const std::byte> span() const noexcept {
    return {data(), size_};
  }

 private:
  friend class PayloadPool;

  detail::SlabHeader* slab_{nullptr};
  std::uint32_t size_{0};
  std::byte inline_[kInlinePayloadBytes];
};

static_assert(std::is_nothrow_move_constructible_v<PayloadRef>,
              "PayloadRef must stay inline-eligible for callback slots");

/// Lifetime counters (bench JSON, tests). `captures` counts every
/// capture()/allocate(); a slab checkout is served either from a free list
/// (`slab_reuses`) or the allocator (`slab_allocs`/`oversize_allocs`).
struct PayloadPoolCounters {
  std::size_t captures{0};
  std::size_t inline_captures{0};
  std::size_t slab_reuses{0};
  std::size_t slab_allocs{0};
  std::size_t oversize_allocs{0};
  std::size_t trims{0};  ///< releases freed outright by the cache budget
};

struct PayloadPoolConfig {
  /// Free-list byte budget: slabs released beyond it are freed, not
  /// cached. Generous default — the pool's steady state is the in-flight
  /// window of one engine's traffic.
  std::size_t max_cached_bytes{64u << 20};
};

/// Engine-owned slab allocator behind every fabric payload. Single
/// threaded (one pool per fabric per engine). Destruction orphans any
/// still-checked-out slab — a ref parked in an engine event slot that
/// outlives the fabric releases safely into ::operator delete. Leak
/// detection is explicit instead (checkQuiescent — a throwing destructor
/// would poison every type that embeds a Fabric): Runtime::runAll calls it
/// once the engine has drained and nothing is legitimately parked.
class PayloadPool {
 public:
  explicit PayloadPool(PayloadPoolConfig cfg = {});
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;
  ~PayloadPool();

  /// Snapshot `bytes` into an owned payload — the single-shot replacement
  /// for the reserve+insert vector idiom (exactly one memcpy, pooled
  /// storage, inline when small).
  PayloadRef capture(std::span<const std::byte> bytes);

  /// Zero-filled owned buffer of `bytes`, always slab-backed so the block
  /// address is stable across handle moves (host-staging MemSpans point
  /// into it).
  PayloadRef allocate(std::size_t bytes);

  // ---- occupancy / steady-state telemetry ----
  std::size_t liveBuffers() const noexcept { return live_buffers_; }
  std::size_t liveBytes() const noexcept { return live_bytes_; }
  std::size_t peakLiveBuffers() const noexcept { return peak_live_buffers_; }
  std::size_t peakLiveBytes() const noexcept { return peak_live_bytes_; }
  std::size_t cachedBytes() const noexcept { return cached_bytes_; }
  const PayloadPoolCounters& counters() const noexcept { return counters_; }
  /// Fraction of slab checkouts served without touching the allocator.
  double hitRate() const noexcept;

  /// Leak check: DKF_CHECK-fails if any buffer is still checked out.
  /// Only meaningful at a quiescent point — engine drained, no payloads
  /// parked awaiting a match (Runtime::runAll verifies both).
  void checkQuiescent() const;

 private:
  friend class PayloadRef;

  // Size classes are powers of two from kMinSlabBytes up; anything larger
  // allocates exactly and is never cached.
  static constexpr std::size_t kMinSlabBytes = 128;
  static constexpr std::size_t kClasses = 14;  // 128 B .. 1 MiB
  static constexpr std::uint32_t kOversizeClass = 0xffffffffu;

  static std::size_t classBytes(std::uint32_t cls) {
    return kMinSlabBytes << cls;
  }
  static std::uint32_t classOf(std::size_t bytes);

  /// Last ref died: recycle (or free) the slab. Static because the pool
  /// pointer lives in the header — and may be null (orphaned slab).
  static void release(detail::SlabHeader* h) noexcept;

  detail::SlabHeader* acquire(std::size_t bytes);
  void recycle(detail::SlabHeader* h) noexcept;

  PayloadPoolConfig cfg_;
  PayloadPoolCounters counters_;

  std::array<detail::SlabHeader*, kClasses> free_{};  // intrusive LIFO
  detail::SlabHeader* live_head_{nullptr};

  std::size_t live_buffers_{0};
  std::size_t live_bytes_{0};
  std::size_t peak_live_buffers_{0};
  std::size_t peak_live_bytes_{0};
  std::size_t cached_bytes_{0};
};

inline void PayloadRef::reset() noexcept {
  if (slab_ != nullptr) {
    PayloadPool::release(slab_);
    slab_ = nullptr;
  }
  size_ = 0;
}

}  // namespace dkf::net
