#include "net/link.hpp"

#include <algorithm>
#include <cmath>

namespace dkf::net {

Link::Link(sim::Engine& eng, hw::LinkSpec spec)
    : eng_(&eng), spec_(std::move(spec)) {}

TimeNs Link::transferAt(TimeNs earliest, std::size_t bytes,
                        double bandwidth_override) {
  double bw = spec_.bandwidth.bytesPerNs();
  if (bandwidth_override > 0.0) bw = std::min(bw, bandwidth_override);
  const TimeNs start = std::max({earliest, eng_->now(), busy_until_});
  const auto serialization = static_cast<DurationNs>(
      std::ceil(static_cast<double>(bytes) / bw));
  busy_until_ = start + serialization;
  bytes_carried_ += bytes;
  ++messages_;
  return busy_until_ + spec_.latency;
}

TimeNs Link::transfer(std::size_t bytes, double bandwidth_override) {
  return transferAt(eng_->now(), bytes, bandwidth_override);
}

TimeNs Link::transferSharedAt(TenantId tenant, TimeNs earliest,
                              std::size_t bytes, double bandwidth_override) {
  if (!sharing_) return transferAt(earliest, bytes, bandwidth_override);

  if (tenant >= tenant_busy_.size()) tenant_busy_.resize(tenant + 1, 0);
  const TimeNs start =
      std::max({earliest, eng_->now(), tenant_busy_[tenant]});

  // Weighted processor sharing: the transfer streams at the link rate times
  // this tenant's weight share among the tenants whose backlog is still
  // live at the start instant. A lone tenant gets the full rate — the
  // single-tenant wire is numerically the FIFO wire.
  double active_weight = 0.0;
  for (TenantId u = 0; u < tenant_busy_.size(); ++u) {
    if (u != tenant && tenant_busy_[u] > start) {
      active_weight += sharing_->weightOf(u);
    }
  }
  const double own = sharing_->weightOf(tenant);
  const double share =
      active_weight > 0.0 ? own / (own + active_weight) : 1.0;

  double bw = spec_.bandwidth.bytesPerNs();
  if (bandwidth_override > 0.0) bw = std::min(bw, bandwidth_override);
  bw *= share;
  const auto serialization = static_cast<DurationNs>(
      std::ceil(static_cast<double>(bytes) / bw));
  tenant_busy_[tenant] = start + serialization;
  busy_until_ = std::max(busy_until_, tenant_busy_[tenant]);
  bytes_carried_ += bytes;
  ++messages_;
  return tenant_busy_[tenant] + spec_.latency;
}

}  // namespace dkf::net
