#include "net/link.hpp"

#include <algorithm>
#include <cmath>

namespace dkf::net {

Link::Link(sim::Engine& eng, hw::LinkSpec spec)
    : eng_(&eng), spec_(std::move(spec)) {}

TimeNs Link::transferAt(TimeNs earliest, std::size_t bytes,
                        double bandwidth_override) {
  double bw = spec_.bandwidth.bytesPerNs();
  if (bandwidth_override > 0.0) bw = std::min(bw, bandwidth_override);
  const TimeNs start = std::max({earliest, eng_->now(), busy_until_});
  const auto serialization = static_cast<DurationNs>(
      std::ceil(static_cast<double>(bytes) / bw));
  busy_until_ = start + serialization;
  bytes_carried_ += bytes;
  ++messages_;
  return busy_until_ + spec_.latency;
}

TimeNs Link::transfer(std::size_t bytes, double bandwidth_override) {
  return transferAt(eng_->now(), bytes, bandwidth_override);
}

}  // namespace dkf::net
