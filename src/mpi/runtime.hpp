// The CUDA-aware MPI-like runtime (DESIGN.md §4.5).
//
// One `Proc` per rank (one rank per GPU), all driven by the shared
// discrete-event engine. Non-contiguous sends/receives route through the
// process's pluggable DDT engine; small messages go eager, large ones use
// rendezvous (RGET by default, RPUT selectable), intra-node transfers can
// use the DirectIPC zero-copy path when the engine supports it.
//
// The progress engine runs on the same thread as the application (the
// configuration the paper evaluates, §IV-A2): wait/waitall poll it, and it
// flushes the DDT engine whenever it has no more submissions outstanding —
// the paper's launch scenario 1.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/tenant.hpp"
#include "core/fusion_plan.hpp"
#include "ddt/datatype.hpp"
#include "ddt/layout.hpp"
#include "hw/cluster.hpp"
#include "net/fabric.hpp"
#include "net/payload.hpp"
#include "mpi/match_table.hpp"
#include "mpi/msg_plane.hpp"
#include "mpi/request.hpp"
#include "mpi/request_arena.hpp"
#include "schemes/factory.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace dkf::mpi {

/// Sequence-numbered delivery with ACK / timeout / retransmission. Only
/// meaningful when a FaultPlan can drop packets; OFF by default so the
/// fault-free wire protocol (and its timing) is untouched.
struct ReliabilityConfig {
  bool enabled{false};
  /// First retransmission fires this long after the original send.
  DurationNs base_timeout{us(150)};
  /// Timeout multiplier per retransmission (exponential backoff).
  double backoff{2.0};
  /// Backoff ceiling.
  DurationNs max_timeout{ms(8)};
  /// Give up (DKF_CHECK failure) after this many retransmissions of one
  /// message — a plain bug, not a fault, once loss rates are < 100%.
  std::size_t max_retries{30};
};

/// Lifetime counters of the reliable transport, per rank.
struct TransportCounters {
  std::size_t retransmissions{0};
  std::size_t acks_sent{0};
  std::size_t duplicates_ignored{0};
  /// Receive stagings that fell back to host memory after a (possibly
  /// injected) device-arena allocation failure.
  std::size_t host_staging_fallbacks{0};
};

/// Per-tenant serving-plane counters, per rank (MODEL.md §14). All zeros
/// for tenants that never submitted, and for every tenant when admission
/// control is off.
struct TenantStats {
  std::size_t admitted{0};        ///< sends that entered the wire pipeline
  std::size_t inflight{0};        ///< admission tokens currently held
  std::size_t peak_inflight{0};
  std::size_t throttle_waits{0};  ///< activations that had to block
  DurationNs throttled_ns{0};     ///< virtual time spent admission-blocked
};

struct RuntimeConfig {
  schemes::Scheme scheme{schemes::Scheme::Proposed};
  /// Overrides for ProposedTuned (0 = keep the FusionPolicy default).
  std::size_t tuned_threshold{0};
  std::size_t tuned_list_capacity{0};
  std::size_t tuned_max_requests{0};
  /// Rendezvous sub-protocol (§IV-B1).
  Protocol rendezvous{Protocol::RGet};
  /// Allow intra-node DirectIPC when the engine supports it.
  bool enable_direct_ipc{true};
  /// Progress-engine poll period while blocked in wait/waitall.
  DurationNs poll_interval{ns(250)};
  /// Fixed bookkeeping cost per MPI call.
  DurationNs call_overhead{ns(150)};
  /// Retransmission layer (see ReliabilityConfig).
  ReliabilityConfig reliability{};
  /// Per-rank layout-cache budget (entries/bytes; 0 = unbounded).
  ddt::LayoutCacheLimits layout_cache{};
  /// Per-rank compiled-plan cache budget (entries/bytes; 0 = unbounded).
  core::PlanCacheLimits plan_cache{};
  /// Advance requests through the table-driven state machines
  /// (msg_plane.hpp) instead of one coroutine frame per request per poll.
  /// Off = the seed coroutine path, kept as the shadow for the determinism
  /// fuzz test and the throughput bench baseline. Event-stream-identical
  /// either way.
  bool batched_message_plane{true};
  /// Route fabric deliveries through per-link LinkBatchers (applied to the
  /// cluster fabric at Runtime construction; net/link_batcher.hpp).
  bool delivery_batching{true};
  /// Fabric delivery coalescing window: 0 (default) is exact; > 0 models
  /// NIC interrupt moderation and trades per-message timing (bounded by
  /// the window) for fewer events.
  DurationNs msg_batch_window{ns(0)};

  // ---- Multi-tenant serving plane (MODEL.md §14) ----
  /// Link-level contention model + DRR delivery arbitration (applied to
  /// the cluster fabric at Runtime construction). Off = the seed
  /// single-tenant FIFO wire, byte-identical.
  net::ContentionConfig contention{};
  /// Per-tenant admission window: a send blocks in activation while its
  /// tenant already holds this many un-landed sends on this rank.
  /// 0 = unlimited (no admission control, the default).
  /// Admission tokens are released when the payload lands (or is ACKed
  /// with reliability on); with admission on and data loss injected,
  /// reliability must also be on, or tokens leak with the lost payloads.
  std::size_t tenant_inflight_limit{0};
  /// Weighted fair batching in the fusion scheduler: when a fused batch is
  /// claimed, pending requests are taken per-tenant in proportion to the
  /// contention weights instead of strict FIFO order.
  bool weighted_fair_batching{false};
};

class Runtime;

/// First tag of the collective tag space. Tags below it belong to the
/// application's point-to-point traffic; everything at or above is handed
/// out by Proc::allocCollectiveTags. (The seed hard-coded one `1 << 2x`
/// base per collective, which collided once a collective's per-rank tags
/// spilled into the next base — at ~2k ranks for allreduce.)
inline constexpr int kCollectiveTagBase = 1 << 20;

class Proc {
 public:
  Proc(Runtime& rt, int rank, gpu::Gpu& gpu);

  int rank() const { return rank_; }
  int worldSize() const;
  gpu::Gpu& gpu() { return *gpu_; }
  sim::Engine& engine();
  /// This rank's (single) progress/application thread.
  sim::CpuTimeline& cpu() { return *cpu_; }
  schemes::DdtEngine& ddtEngine() { return *engine_; }
  ddt::LayoutCache& layoutCache() { return layout_cache_; }
  core::PlanCache& planCache() { return plan_cache_; }

  /// Device-buffer management on this rank's GPU.
  gpu::MemSpan allocDevice(std::size_t bytes);
  void freeDevice(const gpu::MemSpan& span);

  // ---- Point-to-point (MPI_Isend / MPI_Irecv / MPI_Wait*) ----
  sim::Task<RequestPtr> isend(gpu::MemSpan buf, ddt::DatatypePtr type,
                              std::size_t count, int dst, int tag);
  sim::Task<RequestPtr> irecv(gpu::MemSpan buf, ddt::DatatypePtr type,
                              std::size_t count, int src, int tag);

  // ---- Bulk submission (the batched message plane's front door) ----
  // One MPI call overhead is charged for the whole batch, and back-to-back
  // wire sends to one link reserve contiguous engine keys — exactly the
  // shape LinkBatcher coalesces. Semantically identical to issuing the
  // specs one by one.
  struct SendSpec {
    gpu::MemSpan buf;
    ddt::DatatypePtr type;
    std::size_t count{1};
    int peer{0};
    int tag{0};
    TenantId tenant{kDefaultTenant};
  };
  using RecvSpec = SendSpec;  // peer may be kAnySource, tag kAnyTag
  sim::Task<std::vector<RequestPtr>> isendBatch(std::vector<SendSpec> specs);
  sim::Task<std::vector<RequestPtr>> irecvBatch(std::vector<RecvSpec> specs);
  sim::Task<void> wait(RequestPtr req);
  sim::Task<void> waitall(std::vector<RequestPtr> reqs);
  /// Non-blocking completion check (MPI_Test): runs one progress pass
  /// (including the engine flush) and reports the request's status.
  sim::Task<bool> test(RequestPtr req);
  /// MPI_Testall analogue over a set of requests.
  sim::Task<bool> testall(const std::vector<RequestPtr>& reqs);

  // ---- Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start) --
  // Iterative halo applications set up their exchange once and start it
  // every timestep; starting a persistent request skips argument checking
  // and layout lookup.
  sim::Task<RequestPtr> sendInit(gpu::MemSpan buf, ddt::DatatypePtr type,
                                 std::size_t count, int dst, int tag);
  sim::Task<RequestPtr> recvInit(gpu::MemSpan buf, ddt::DatatypePtr type,
                                 std::size_t count, int src, int tag);
  /// Activate a persistent request (it must not already be active).
  sim::Task<void> start(RequestPtr req);
  sim::Task<void> startall(const std::vector<RequestPtr>& reqs);

  // ---- Explicit blocking pack/unpack (MPI_Pack / MPI_Unpack, Alg. 1) ----
  sim::Task<void> pack(gpu::MemSpan origin, ddt::DatatypePtr type,
                       std::size_t count, gpu::MemSpan packed);
  sim::Task<void> unpack(gpu::MemSpan packed, gpu::MemSpan origin,
                         ddt::DatatypePtr type, std::size_t count);

  /// Simple dissemination-free barrier over the runtime (control latency
  /// is charged; used by experiment drivers between iterations).
  /// `participants` ranks must arrive (0 = the whole world).
  sim::Task<void> barrier(std::size_t participants = 0);

  /// Active (incomplete) requests owned by this rank. (The batched plane
  /// sweeps handler-completed requests lazily, so count, don't size().)
  std::size_t inFlight() const {
    return static_cast<std::size_t>(
        std::count_if(active_.begin(), active_.end(),
                      [](const RequestPtr& r) { return !r->complete; }));
  }

  /// Reliable-transport counters (all zero when reliability is off).
  const TransportCounters& transport() const { return transport_; }

  // ---- Multi-tenant serving plane (MODEL.md §14) ----
  /// Tenant stamped onto requests issued from now on by this rank's
  /// application code (isend/irecv/...); SendSpec::tenant overrides per
  /// entry in the batch front door.
  void setTenant(TenantId t) { current_tenant_ = t; }
  TenantId tenant() const { return current_tenant_; }
  /// Per-tenant admission/serving counters (index = tenant id; may be
  /// shorter than the tenant count if high tenants never sent).
  const std::vector<TenantStats>& tenantStats() const {
    return tenant_stats_;
  }

  /// The runtime's configuration (collectives read the preferred scheme
  /// when pre-compiling their per-hop fusion plans).
  const RuntimeConfig& config() const;

  /// The fabric's slab pool: every captured payload, staging fallback and
  /// collective chunk staging draws from it (net/payload.hpp).
  net::PayloadPool& payloadPool();

  /// Reserve `span` consecutive tags for one collective invocation and
  /// return the first. The counter is per-rank but stays synchronized
  /// across the world because collectives are invoked in the same order on
  /// every rank (the MPI ordering rule); concurrent collectives therefore
  /// always draw disjoint spans. DKF_CHECK-fails on exhaustion instead of
  /// wrapping into live tag ranges.
  int allocCollectiveTags(int span);

 private:
  friend class Runtime;
  friend struct MsgPlane;  // the table-driven hot path advances requests

  // Inbound protocol events (called at fabric delivery time).
  void onEager(int src_rank, int msg_tag, std::uint64_t seq,
               RequestPtr sender_req, net::PayloadRef data);
  void onEagerAck(RequestPtr sender_req);
  void onRts(RequestPtr sender_req);
  void onCts(RequestPtr sender_req, gpu::MemSpan recv_staging);
  void onFin(RequestPtr sender_req);

  /// Try to match an inbound message against posted receives.
  RequestPtr matchPosted(int src_rank, int msg_tag);

  /// Hand a matched eager payload / RTS to the receive request.
  void startEagerDelivery(RequestPtr recv, net::PayloadRef data);
  void startRendezvousDelivery(RequestPtr recv, RequestPtr sender_req);

  /// Packed data has landed in the receive staging — unpack (or finish).
  void finishRecvData(RequestPtr recv);
  void releaseRecvStaging(Request& r);
  /// Attempt the DirectIPC enqueue; re-arms direct_retry if the list is full.
  sim::Task<void> tryDirect(RequestPtr recv);

  /// One pass of the progress engine.
  sim::Task<void> progressOnce();
  /// One batched-plane pass over the requests that can actually act: the
  /// timed set (DDT tickets, armed retransmissions) plus the requests an
  /// event marked dirty since the last pass, advanced in activation order.
  /// Falls back to the seed-order full scan whenever a DirectIPC retry is
  /// pending, because that path suspends and flag flips arriving across
  /// the suspension must stay visible to later requests in the same pass.
  sim::Task<void> progressPass();
  /// Register a freshly activated request with the progress plane
  /// (activation order, active list, amortized sweep of completed entries).
  void registerActive(const RequestPtr& req);
  /// An event enabled an action on `req`: advance it on the next pass.
  void markDirty(const RequestPtr& req);
  /// `req` needs polling every pass while its ticket or deadline is live.
  void markTimed(const RequestPtr& req);
  /// Advance a single request's state machine — the seed coroutine path,
  /// kept intact as the shadow for batched_message_plane = false.
  sim::Task<void> progressRequest(RequestPtr req);
  /// Coroutine tail for the table-driven path: the one genuinely
  /// suspending action (the DirectIPC enqueue).
  sim::Task<void> progressSlow(RequestPtr req);
  /// A receive's DDT-engine ticket (unpack / direct copy) finished:
  /// release staging, FIN a DirectIPC sender, complete the request.
  void finishTicketedRecv(const RequestPtr& req);

  // Never suspend (wire pushes + local bookkeeping only): plain functions
  // so the hot path pays no coroutine frame for them.
  void issueEagerData(const RequestPtr& req);
  void issueRts(const RequestPtr& req);

  // ---- Reliable transport (no-ops while ReliabilityConfig is off) ----
  bool reliabilityOn() const;
  /// Arm (or re-arm) a request's retransmission deadline and join the
  /// timed set so the batched plane keeps polling it.
  void armRetrans(const RequestPtr& req);
  /// True when the request's deadline passed: books one retransmission,
  /// backs the timeout off, re-arms. DKF_CHECKs against max_retries.
  bool retransDue(Request& req);
  /// Receive staging with graceful degradation: device arena first, host
  /// memory when the (possibly injected) allocation fails.
  gpu::MemSpan allocStaging(Request& req, std::size_t bytes);
  /// Wire-only halves of the issue* calls, reused by retransmission.
  void sendEagerOnWire(const RequestPtr& req);
  void sendRtsOnWire(const RequestPtr& req);
  /// RGet data phase (receiver-driven RDMA read + FIN); idempotent under
  /// duplicate deliveries from retried reads.
  void issueRgetRead(const RequestPtr& recv, const RequestPtr& sender_req);
  /// RPut data phase (sender-driven RDMA write); idempotent likewise.
  void issueRputData(const RequestPtr& req);
  /// A duplicate RTS means one of our control packets was lost — repeat
  /// the CTS/FIN the sender is evidently still waiting for.
  void answerDuplicateRts(const RequestPtr& sender_req);

  /// Fill the immutable fields of a new request (layout, sizes, flags).
  RequestPtr makeRequest(Request::Kind kind, gpu::MemSpan buf,
                         const ddt::DatatypePtr& type, std::size_t count,
                         int peer, int tag);
  /// Compiled plan for a single-op sequence over `layout` (and, for
  /// DirectIPC, `target_layout`) — memoized in the per-rank plan cache, so
  /// repeat-layout traffic compiles once per canonical signature and the
  /// engine executes the cached template. Host-side memoization like
  /// LayoutCache: charges no virtual time.
  core::CompiledPlanPtr planFor(core::FusionOp op,
                                const ddt::LayoutPtr& layout,
                                const ddt::LayoutPtr& target_layout = nullptr,
                                TenantId tenant = kDefaultTenant);
  /// Reset per-activation protocol state (persistent restarts).
  static void resetActivationState(Request& req);
  /// Per-tenant state slot (grown on demand).
  TenantStats& tenantState(TenantId t);
  /// Block until the request's tenant is under its inflight window, then
  /// take an admission token. No-op (and no suspension) when
  /// tenant_inflight_limit is 0.
  sim::Task<void> admitSend(const RequestPtr& req);
  /// Stamp completion (latency bookkeeping) — every path that sets
  /// `complete = true` funnels through here.
  void noteComplete(Request& req);
  /// Return the admission token held by a send whose payload has landed
  /// (delivery/ACK/FIN/RPut data). Idempotent; separate from noteComplete
  /// because unreliable eager sends complete at issue, long before the
  /// wire drains.
  void releaseSendToken(Request& req);
  /// Run the send-side activation (protocol choice, pack submission).
  sim::Task<void> activateSend(RequestPtr req);
  /// Run the recv-side activation (matching, posting).
  sim::Task<void> activateRecv(RequestPtr req);

  Runtime* rt_;
  int rank_;
  gpu::Gpu* gpu_;
  std::unique_ptr<sim::CpuTimeline> cpu_;
  std::unique_ptr<schemes::DdtEngine> engine_;
  ddt::LayoutCache layout_cache_;
  core::PlanCache plan_cache_;

  std::vector<RequestPtr> active_;          // all incomplete requests
  std::vector<RequestPtr> progress_scratch_;  // reused per-poll snapshot

  // Change-driven progress state (batched plane only; see progressPass).
  std::vector<RequestPtr> timed_;        // ticket/deadline holders, polled
  std::vector<RequestPtr> dirty_;        // event-marked since the last pass
  std::vector<RequestPtr> pass_scratch_; // reused per-pass work list
  std::uint64_t next_progress_order_{0};
  std::size_t sweep_watermark_{64};      // amortized active_ sweep trigger
  MatchTable posted_recvs_;                 // unmatched posted receives
  /// Eager payloads that arrived before their receive was posted (refs
  /// into the payload pool — parking is free).
  ArrivalQueue<net::PayloadRef> unexpected_eager_;
  std::deque<RequestPtr> unexpected_rts_;   // sender reqs awaiting a match

  // Next unissued collective tag (see allocCollectiveTags).
  int next_collective_tag_{kCollectiveTagBase};

  // Multi-tenant serving plane.
  TenantId current_tenant_{kDefaultTenant};
  std::vector<TenantStats> tenant_stats_;

  // Request control blocks recycle through a per-rank arena
  // (mpi/request_arena.hpp): shared_ptr-owned because control blocks
  // embed the allocator and may outlive the Proc via weak refs.
  std::shared_ptr<detail::ArenaBlocks> request_arena_;

  // Reliable-transport state.
  TransportCounters transport_;
  std::uint64_t next_seq_{1};
  /// Eager sequence numbers already delivered, per source rank (dedup of
  /// retransmitted payloads whose ACK was lost).
  std::unordered_map<int, std::unordered_set<std::uint64_t>> eager_seen_;
};

class Runtime {
 public:
  Runtime(hw::Cluster& cluster, RuntimeConfig config);

  int worldSize() const { return static_cast<int>(procs_.size()); }
  Proc& proc(int rank);
  const RuntimeConfig& config() const { return config_; }
  hw::Cluster& cluster() { return *cluster_; }
  sim::Engine& engine() { return cluster_->engine(); }

  int nodeOfRank(int rank) const;
  bool sameNode(int a, int b) const { return nodeOfRank(a) == nodeOfRank(b); }

  /// Run `body` on every rank and drive the simulation to completion.
  void runAll(const std::function<sim::Task<void>(Proc&)>& body);

  /// Aggregate time breakdown over all ranks' DDT engines (Fig. 11).
  TimeBreakdown aggregateBreakdown() const;

 private:
  friend class Proc;

  // Barrier bookkeeping.
  std::size_t barrier_waiting_{0};
  std::uint64_t barrier_generation_{0};
  std::unique_ptr<sim::CondVar> barrier_cv_;

  hw::Cluster* cluster_;
  RuntimeConfig config_;
  std::vector<std::unique_ptr<Proc>> procs_;
};

}  // namespace dkf::mpi
