#include "mpi/msg_plane.hpp"

#include <array>

#include "mpi/runtime.hpp"

namespace dkf::mpi {

MsgPlane::Phase MsgPlane::classify(const Request& r) {
  if (r.kind == Request::Kind::Send) {
    if (!r.pack_done) return Phase::Idle;  // the DDT engine owns it
    switch (r.protocol) {
      case Protocol::Eager:
        return Phase::SendEager;
      case Protocol::RGet:
        return Phase::SendRget;
      case Protocol::RPut:
        return Phase::SendRput;
      case Protocol::DirectIpc:
        return Phase::SendDirect;
    }
    return Phase::Idle;
  }
  if (r.direct_retry) return Phase::RecvDirectRetry;
  if (r.rget_sender && !r.data_delivered) return Phase::RecvRgetRetry;
  return Phase::Idle;
}

bool MsgPlane::advance(Proc& p, const RequestPtr& req) {
  if (req->complete) return true;

  if (req->ticket_pending && p.engine_->done(req->ticket)) {
    req->ticket_pending = false;
    if (req->kind == Request::Kind::Send) {
      req->pack_done = true;  // fall through to the protocol phase below
    } else {
      p.finishTicketedRecv(req);
      return true;
    }
  }

  const Phase phase = classify(*req);
  if (phase == Phase::RecvDirectRetry) return false;

  static constexpr std::array<Handler,
                              static_cast<std::size_t>(Phase::Count)>
      kHandlers{
          &MsgPlane::idle,           // Idle
          &MsgPlane::sendEager,      // SendEager
          &MsgPlane::sendRget,       // SendRget
          &MsgPlane::sendRput,       // SendRput
          &MsgPlane::sendDirect,     // SendDirect
          &MsgPlane::recvRgetRetry,  // RecvRgetRetry
          &MsgPlane::idle,           // RecvDirectRetry (handled above)
      };
  kHandlers[static_cast<std::size_t>(phase)](p, req);
  return true;
}

// Each handler mirrors one arm of the seed coroutine's protocol switch
// exactly — same actions, same order — minus the frame.

void MsgPlane::idle(Proc&, const RequestPtr&) {}

void MsgPlane::sendEager(Proc& p, const RequestPtr& req) {
  if (!req->data_in_flight) {
    p.issueEagerData(req);
  } else if (!req->complete && p.retransDue(*req)) {
    p.sendEagerOnWire(req);  // un-ACKed: back on the wire
  }
}

void MsgPlane::sendRget(Proc& p, const RequestPtr& req) {
  if (!req->rts_sent) {
    p.issueRts(req);
  } else if (!req->complete && p.retransDue(*req)) {
    p.sendRtsOnWire(req);  // RTS (or its FIN) was lost
  }
}

void MsgPlane::sendRput(Proc& p, const RequestPtr& req) {
  if (!req->cts_received) {
    if (req->rts_sent && p.retransDue(*req)) p.sendRtsOnWire(req);
  } else if (!req->data_in_flight) {
    req->data_in_flight = true;
    p.issueRputData(req);
    p.armRetrans(req);  // data phase gets its own (fresh) backoff
  } else if (!req->data_delivered && p.retransDue(*req)) {
    p.issueRputData(req);  // the RDMA write was dropped
  }
  if (req->data_delivered && !req->complete) {
    if (req->staging_owned) {
      p.freeDevice(req->staging);
      req->staging_owned = false;
    }
    req->paired.reset();
    req->retrans_deadline = 0;
    p.releaseSendToken(*req);
    p.noteComplete(*req);
  }
}

void MsgPlane::sendDirect(Proc& p, const RequestPtr& req) {
  // Receiver-driven; FIN completes us. A lost RTS or FIN surfaces as a
  // timeout here, and the receiver answers duplicates idempotently.
  if (!req->complete && p.retransDue(*req)) p.sendRtsOnWire(req);
}

void MsgPlane::recvRgetRetry(Proc& p, const RequestPtr& req) {
  if (p.retransDue(*req)) {
    p.issueRgetRead(req, req->rget_sender);  // the RDMA read was dropped
  }
}

}  // namespace dkf::mpi
