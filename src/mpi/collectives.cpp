#include "mpi/collectives.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "schemes/solver.hpp"

namespace dkf::mpi {

namespace {

std::size_t elementSize(ReduceType t) {
  switch (t) {
    case ReduceType::Float64: return sizeof(double);
    case ReduceType::Int64: return sizeof(std::int64_t);
  }
  DKF_CHECK_MSG(false, "unhandled ReduceType " << static_cast<int>(t));
}

/// Validate `op` up front so every rank fails before any traffic, no
/// matter which topology would have folded the data.
void validateReduceOp(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
    case ReduceOp::Min:
    case ReduceOp::Max:
      return;
  }
  DKF_CHECK_MSG(false, "unhandled ReduceOp " << static_cast<int>(op));
}

template <class T>
T combine(T a, T b, ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return a + b;
    case ReduceOp::Min: return std::min(a, b);
    case ReduceOp::Max: return std::max(a, b);
  }
  DKF_CHECK_MSG(false, "unhandled ReduceOp " << static_cast<int>(op));
}

template <class T>
void combineSpans(std::span<std::byte> dst, std::span<const std::byte> src,
                  std::size_t count, ReduceOp op) {
  for (std::size_t i = 0; i < count; ++i) {
    T a, b;
    std::memcpy(&a, dst.data() + i * sizeof(T), sizeof(T));
    std::memcpy(&b, src.data() + i * sizeof(T), sizeof(T));
    a = combine(a, b, op);
    std::memcpy(dst.data() + i * sizeof(T), &a, sizeof(T));
  }
}

/// Apply `op` element-wise: dst[i] = dst[i] op src[i].
void applyReduce(std::span<std::byte> dst, std::span<const std::byte> src,
                 std::size_t count, ReduceType type, ReduceOp op) {
  DKF_CHECK(dst.size() >= count * elementSize(type));
  DKF_CHECK(src.size() >= count * elementSize(type));
  switch (type) {
    case ReduceType::Float64:
      combineSpans<double>(dst, src, count, op);
      return;
    case ReduceType::Int64:
      combineSpans<std::int64_t>(dst, src, count, op);
      return;
  }
  DKF_CHECK_MSG(false, "unhandled ReduceType " << static_cast<int>(type));
}

ddt::DatatypePtr elemDatatype(ReduceType t) {
  switch (t) {
    case ReduceType::Float64: return ddt::Datatype::float64();
    case ReduceType::Int64: return ddt::Datatype::int64();
  }
  DKF_CHECK_MSG(false, "unhandled ReduceType " << static_cast<int>(t));
}

/// Rank relative to the root (so the tree algorithms can assume root 0).
int relRank(int rank, int root, int n) { return (rank - root + n) % n; }
int absRank(int rel, int root, int n) { return (rel + root) % n; }

// ---- Block resolution + per-hop plan warming --------------------------

/// A VBlock resolved against its buffer: canonical layout, packed size and
/// extent, all bounds-checked. Zero-count blocks resolve to an empty view.
struct BlockView {
  ddt::LayoutPtr layout;
  std::size_t packed{0};
  std::size_t extent{0};
  std::size_t offset{0};
};

BlockView resolveBlock(Proc& proc, const VBlock& b, const gpu::MemSpan& buf,
                       const char* what) {
  if (b.count == 0) return BlockView{nullptr, 0, 0, b.offset};
  DKF_CHECK_MSG(b.type != nullptr, what << " block has no datatype");
  auto layout = proc.layoutCache().get(b.type, b.count);
  DKF_CHECK_MSG(layout->minOffset() >= 0,
                what << " block layout reaches below its offset");
  const auto extent = static_cast<std::size_t>(layout->endOffset());
  DKF_CHECK_MSG(b.offset + extent <= buf.size(),
                what << " block exceeds its buffer: offset " << b.offset
                     << " + extent " << extent << " > " << buf.size());
  return BlockView{layout, layout->size(), extent, b.offset};
}

/// The span a typed send/recv of this block binds to.
gpu::MemSpan blockSpan(const gpu::MemSpan& buf, const BlockView& bv) {
  return buf.subspan(bv.offset, bv.extent);
}

/// Pre-compile the pack or unpack plan of every distinct layout signature
/// among `views` through the per-rank PlanCache. The per-peer loop that
/// follows then binds the one cached CompiledPlan per signature instead of
/// re-running the solver for every destination — the "compile once per
/// hop" contract of MODEL.md §12. (Proc::planFor builds the identical
/// single-op plan, so its cache key matches these entries exactly.)
void warmBlockPlans(Proc& proc, core::FusionOp op,
                    const std::vector<BlockView>& views) {
  for (const BlockView& bv : views) {
    if (!bv.layout || bv.packed == 0) continue;
    core::FusionPlan plan;
    if (op == core::FusionOp::Packing) {
      plan.addPack(bv.layout);
    } else {
      plan.addUnpack(bv.layout);
    }
    schemes::compilePlanCached(proc.planCache(), plan, proc.config().scheme,
                               proc.gpu().nodeSpec());
  }
}

std::vector<std::size_t> prefixOffsets(const std::vector<std::size_t>& sizes) {
  std::vector<std::size_t> offs(sizes.size() + 1, 0);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    offs[i + 1] = offs[i] + sizes[i];
  }
  return offs;
}

// ---- Byte-transport primitives ----------------------------------------
//
// All reduction/allgather topologies are built from four transports over
// already-packed bytes. `sizes` is indexed by absolute rank and must be
// identical on every rank (v-collectives can compute it locally because
// every rank knows every block's datatype). `full` is the rank-major
// concatenation buffer with prefix offsets of `sizes`.

/// Direct sends to every peer; every rank ends with the full concatenation.
sim::Task<void> flatAllgatherBytes(Proc& proc,
                                   const std::vector<std::size_t>& sizes,
                                   const std::vector<std::size_t>& offs,
                                   gpu::MemSpan mine, gpu::MemSpan full,
                                   int tag) {
  const int n = proc.worldSize();
  const int me = proc.rank();
  if (sizes[me] > 0) {
    std::memcpy(full.bytes.data() + offs[me], mine.bytes.data(), sizes[me]);
  }
  std::vector<RequestPtr> reqs;
  for (int r = 0; r < n; ++r) {
    if (r == me) continue;
    if (sizes[r] > 0) {
      reqs.push_back(co_await proc.irecv(full.subspan(offs[r], sizes[r]),
                                         ddt::Datatype::byte(), sizes[r], r,
                                         tag + r));
    }
    if (sizes[me] > 0) {
      reqs.push_back(co_await proc.isend(mine, ddt::Datatype::byte(),
                                         sizes[me], r, tag + me));
    }
  }
  co_await proc.waitall(std::move(reqs));
}

/// Classic ring allgather: n-1 steps, each step forwards the block that
/// arrived the step before to the right neighbor. Two messages in flight
/// per rank per step regardless of n.
sim::Task<void> ringAllgatherBytes(Proc& proc,
                                   const std::vector<std::size_t>& sizes,
                                   const std::vector<std::size_t>& offs,
                                   gpu::MemSpan mine, gpu::MemSpan full,
                                   int tag) {
  const int n = proc.worldSize();
  const int me = proc.rank();
  if (sizes[me] > 0) {
    std::memcpy(full.bytes.data() + offs[me], mine.bytes.data(), sizes[me]);
  }
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  for (int s = 1; s < n; ++s) {
    const int src_out = (me - s + 1 + n) % n;  // block I forward this step
    const int src_in = (me - s + n) % n;       // block that arrives
    std::vector<RequestPtr> reqs;
    if (sizes[src_in] > 0) {
      reqs.push_back(co_await proc.irecv(
          full.subspan(offs[src_in], sizes[src_in]), ddt::Datatype::byte(),
          sizes[src_in], left, tag + s));
    }
    if (sizes[src_out] > 0) {
      reqs.push_back(co_await proc.isend(
          full.subspan(offs[src_out], sizes[src_out]), ddt::Datatype::byte(),
          sizes[src_out], right, tag + s));
    }
    co_await proc.waitall(std::move(reqs));
  }
}

/// Star gather: everyone sends its payload straight to `root`, which ends
/// with the full concatenation (other ranks' `full` stays untouched).
sim::Task<void> flatGatherBytes(Proc& proc, int root,
                                const std::vector<std::size_t>& sizes,
                                const std::vector<std::size_t>& offs,
                                gpu::MemSpan mine, gpu::MemSpan full,
                                int tag) {
  const int n = proc.worldSize();
  const int me = proc.rank();
  if (me == root) {
    if (sizes[me] > 0) {
      std::memcpy(full.bytes.data() + offs[me], mine.bytes.data(), sizes[me]);
    }
    std::vector<RequestPtr> reqs;
    for (int r = 0; r < n; ++r) {
      if (r == root || sizes[r] == 0) continue;
      reqs.push_back(co_await proc.irecv(full.subspan(offs[r], sizes[r]),
                                         ddt::Datatype::byte(), sizes[r], r,
                                         tag + r));
    }
    co_await proc.waitall(std::move(reqs));
  } else if (sizes[me] > 0) {
    auto req = co_await proc.isend(mine, ddt::Datatype::byte(), sizes[me],
                                   root, tag + me);
    co_await proc.wait(req);
  }
}

// ---- k-ary range tree -------------------------------------------------
//
// The node that owns the contiguous relative-rank range [lo, hi) is rel
// rank lo; the remainder [lo+1, hi) splits into <= radix contiguous child
// ranges. Child order is pinned (increasing rank), and because subtree
// ranges are contiguous, a subtree's rank-major payload concatenation has
// locally computable offsets — interior nodes receive each child's whole
// subtree buffer into the right slot and forward one aggregate message.

struct TreeNode {
  int lo{0};
  int hi{0};
  int parent{-1};  // rel rank of the parent node; -1 at the root
};

std::vector<std::pair<int, int>> treeChildren(int lo, int hi, int radix) {
  std::vector<std::pair<int, int>> out;
  const int m = hi - (lo + 1);
  if (m <= 0) return out;
  const int k = std::min(radix, m);
  const int base = m / k;
  const int extra = m % k;
  int cur = lo + 1;
  for (int i = 0; i < k; ++i) {
    const int len = base + (i < extra ? 1 : 0);
    out.emplace_back(cur, cur + len);
    cur += len;
  }
  return out;
}

TreeNode treeNodeOf(int rel, int n, int radix) {
  TreeNode node{0, n, -1};
  while (node.lo != rel) {
    const int parent = node.lo;
    for (const auto& [clo, chi] : treeChildren(node.lo, node.hi, radix)) {
      if (rel >= clo && rel < chi) {
        node = TreeNode{clo, chi, parent};
        break;
      }
    }
  }
  return node;
}

/// Gather the rel-rank-major concatenation of per-rank payloads to the
/// root. `sizes` is indexed by absolute rank; at the rank `root` the
/// result lands in `full` (rel-rank-major: slot i holds the payload of
/// absolute rank absRank(i, root, n)). Other ranks' `full` is unused.
sim::Task<void> treeGatherBytes(Proc& proc, int root, int radix,
                                const std::vector<std::size_t>& sizes,
                                gpu::MemSpan mine, gpu::MemSpan full,
                                int tag) {
  const int n = proc.worldSize();
  const int me_rel = relRank(proc.rank(), root, n);
  std::vector<std::size_t> rel_sizes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rel_sizes[static_cast<std::size_t>(i)] =
        sizes[static_cast<std::size_t>(absRank(i, root, n))];
  }
  const auto offs = prefixOffsets(rel_sizes);
  const TreeNode node = treeNodeOf(me_rel, n, radix);
  const std::size_t sub_off = offs[static_cast<std::size_t>(node.lo)];
  const std::size_t sub_bytes =
      offs[static_cast<std::size_t>(node.hi)] - sub_off;

  gpu::MemSpan buf{};
  bool owned = false;
  if (me_rel == 0) {
    DKF_CHECK(full.size() >= sub_bytes);
    buf = full;
  } else if (sub_bytes > 0) {
    buf = proc.allocDevice(sub_bytes);
    owned = true;
  }
  if (rel_sizes[static_cast<std::size_t>(me_rel)] > 0) {
    std::memcpy(buf.bytes.data(), mine.bytes.data(),
                rel_sizes[static_cast<std::size_t>(me_rel)]);
  }
  std::vector<RequestPtr> reqs;
  for (const auto& [clo, chi] : treeChildren(node.lo, node.hi, radix)) {
    const std::size_t child_bytes =
        offs[static_cast<std::size_t>(chi)] - offs[static_cast<std::size_t>(clo)];
    if (child_bytes == 0) continue;
    reqs.push_back(co_await proc.irecv(
        buf.subspan(offs[static_cast<std::size_t>(clo)] - sub_off, child_bytes),
        ddt::Datatype::byte(), child_bytes, absRank(clo, root, n), tag + clo));
  }
  co_await proc.waitall(std::move(reqs));
  if (node.parent >= 0 && sub_bytes > 0) {
    auto req = co_await proc.isend(buf.subspan(0, sub_bytes),
                                   ddt::Datatype::byte(), sub_bytes,
                                   absRank(node.parent, root, n),
                                   tag + node.lo);
    co_await proc.wait(req);
  }
  if (owned) proc.freeDevice(buf);
}

/// Send `bytes` of `buf` from the root down the same range tree; on exit
/// every rank's `buf` holds the payload.
sim::Task<void> treeBcastBytes(Proc& proc, int root, int radix,
                               gpu::MemSpan buf, std::size_t bytes,
                               int tag) {
  if (bytes == 0) co_return;
  const int n = proc.worldSize();
  const int me_rel = relRank(proc.rank(), root, n);
  const TreeNode node = treeNodeOf(me_rel, n, radix);
  if (me_rel != 0) {
    auto req = co_await proc.irecv(buf.subspan(0, bytes),
                                   ddt::Datatype::byte(), bytes,
                                   absRank(node.parent, root, n),
                                   tag + node.lo);
    co_await proc.wait(req);
  }
  std::vector<RequestPtr> reqs;
  for (const auto& [clo, chi] : treeChildren(node.lo, node.hi, radix)) {
    reqs.push_back(co_await proc.isend(buf.subspan(0, bytes),
                                       ddt::Datatype::byte(), bytes,
                                       absRank(clo, root, n), tag + clo));
  }
  co_await proc.waitall(std::move(reqs));
}

// ---- Canonical fold ---------------------------------------------------

/// res := contribution of abs rank 0, then folded with abs ranks 1..n-1 in
/// order. `slot_of(r)` maps an absolute rank to its slot index inside the
/// concatenation (identity for abs-major buffers, rel-rank remap for tree
/// gathers rooted elsewhere). The pinned order is what makes Float64
/// results byte-identical across flat/ring/tree.
void foldContributions(gpu::MemSpan res, const gpu::MemSpan& full,
                       const std::vector<std::size_t>& offs, int n,
                       const std::function<int(int)>& slot_of,
                       std::size_t elems, ReduceType type, ReduceOp op) {
  const std::size_t bytes = elems * elementSize(type);
  std::memcpy(res.bytes.data(),
              full.bytes.data() + offs[static_cast<std::size_t>(slot_of(0))],
              bytes);
  for (int r = 1; r < n; ++r) {
    applyReduce(res.bytes,
                full.bytes.subspan(
                    offs[static_cast<std::size_t>(slot_of(r))], bytes),
                elems, type, op);
  }
}

void validateTuning(const CollTuning& tuning) {
  DKF_CHECK_MSG(tuning.radix >= 2,
                "collective tree radix must be >= 2, got " << tuning.radix);
}

// ---- Bruck-style store-and-forward alltoallv --------------------------

/// Rounds needed to route any relative distance delta < n in base `radix`
/// digits.
int bruckRounds(int n, int radix) {
  int rounds = 0;
  std::uint64_t span = 1;
  while (span < static_cast<std::uint64_t>(n)) {
    span *= static_cast<std::uint64_t>(radix);
    ++rounds;
  }
  return rounds;
}

/// Tag offset inside a Bruck invocation's span: round k, digit value d
/// (1-based), `which` = 0 for the size message, 1 for the payload.
int bruckTag(int k, int d, int which, int radix) {
  return ((k * (radix - 1) + (d - 1)) * 2) + which;
}

struct BruckChunk {
  int src{0};
  int dst{0};
  net::PayloadRef bytes;  // staged in the payload pool (single capture)
};

constexpr std::size_t kBruckHeaderBytes =
    sizeof(std::int32_t) * 2 + sizeof(std::uint64_t);

void writeChunkHeader(std::byte* out, const BruckChunk& c) {
  const auto src = static_cast<std::int32_t>(c.src);
  const auto dst = static_cast<std::int32_t>(c.dst);
  const auto len = static_cast<std::uint64_t>(c.bytes.size());
  std::memcpy(out, &src, sizeof(src));
  std::memcpy(out + sizeof(src), &dst, sizeof(dst));
  std::memcpy(out + sizeof(src) + sizeof(dst), &len, sizeof(len));
}

/// Store-and-forward alltoallv: each block is packed once at its origin,
/// then routed as an opaque chunk tagged (src, dst, len). In round k a
/// chunk whose remaining relative distance has digit d at position k
/// (base radix) rides the aggregated payload to (cur + d*radix^k) mod n;
/// after ceil(log_radix n) rounds every chunk has reached its destination,
/// where it is unpacked through the receiver's block plan. Intermediate
/// hops never touch the datatype — pack and unpack happen exactly once.
sim::Task<void> bruckAlltoallv(Proc& proc, gpu::MemSpan send,
                               gpu::MemSpan recv,
                               const std::vector<VBlock>& send_blocks,
                               const std::vector<VBlock>& recv_blocks,
                               const std::vector<BlockView>& send_views,
                               const std::vector<BlockView>& recv_views,
                               int radix, int rounds, int tag) {
  const int n = proc.worldSize();
  const int me = proc.rank();

  // Pack every outgoing block at the origin (self already handled by the
  // caller). The pack plan was warmed once; every iteration binds it.
  std::vector<BruckChunk> pending;
  std::size_t max_packed = 0;
  for (int d = 0; d < n; ++d) {
    if (d != me) max_packed = std::max(max_packed, send_views[d].packed);
  }
  if (max_packed > 0) {
    auto scratch = proc.allocDevice(max_packed);
    for (int d = 0; d < n; ++d) {
      const BlockView& bv = send_views[static_cast<std::size_t>(d)];
      if (d == me || bv.packed == 0) continue;
      co_await proc.pack(blockSpan(send, bv),
                         send_blocks[static_cast<std::size_t>(d)].type,
                         send_blocks[static_cast<std::size_t>(d)].count,
                         scratch.subspan(0, bv.packed));
      BruckChunk c;
      c.src = me;
      c.dst = d;
      c.bytes = proc.payloadPool().capture(
          {scratch.bytes.data(), bv.packed});
      pending.push_back(std::move(c));
    }
    proc.freeDevice(scratch);
  }

  std::uint64_t step = 1;
  for (int k = 0; k < rounds; ++k, step *= static_cast<std::uint64_t>(radix)) {
    std::vector<RequestPtr> send_reqs;
    std::vector<gpu::MemSpan> round_scratch;
    for (int d = 1; d < radix; ++d) {
      const std::uint64_t dist = static_cast<std::uint64_t>(d) * step;
      if (dist >= static_cast<std::uint64_t>(n)) break;  // digit can't occur
      const int dest = static_cast<int>(
          (static_cast<std::uint64_t>(me) + dist) % static_cast<std::uint64_t>(n));
      // Chunks whose remaining distance has digit d at position k.
      std::vector<BruckChunk> out;
      for (auto it = pending.begin(); it != pending.end();) {
        const auto delta = static_cast<std::uint64_t>((it->dst - me + n) % n);
        if ((delta / step) % static_cast<std::uint64_t>(radix) ==
            static_cast<std::uint64_t>(d)) {
          out.push_back(std::move(*it));
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
      std::size_t payload_bytes = 0;
      for (const BruckChunk& c : out) {
        payload_bytes += kBruckHeaderBytes + c.bytes.size();
      }
      auto size_span = proc.allocDevice(sizeof(std::uint64_t));
      round_scratch.push_back(size_span);
      const auto sz = static_cast<std::uint64_t>(payload_bytes);
      std::memcpy(size_span.bytes.data(), &sz, sizeof(sz));
      send_reqs.push_back(co_await proc.isend(
          size_span, ddt::Datatype::byte(), sizeof(std::uint64_t), dest,
          tag + bruckTag(k, d, 0, radix)));
      if (payload_bytes > 0) {
        auto payload = proc.allocDevice(payload_bytes);
        round_scratch.push_back(payload);
        std::size_t pos = 0;
        for (const BruckChunk& c : out) {
          writeChunkHeader(payload.bytes.data() + pos, c);
          pos += kBruckHeaderBytes;
          std::memcpy(payload.bytes.data() + pos, c.bytes.data(),
                      c.bytes.size());
          pos += c.bytes.size();
        }
        send_reqs.push_back(co_await proc.isend(
            payload, ddt::Datatype::byte(), payload_bytes, dest,
            tag + bruckTag(k, d, 1, radix)));
      }
    }

    for (int d = 1; d < radix; ++d) {
      const std::uint64_t dist = static_cast<std::uint64_t>(d) * step;
      if (dist >= static_cast<std::uint64_t>(n)) break;
      const int src = static_cast<int>(
          (static_cast<std::uint64_t>(me) + static_cast<std::uint64_t>(n) -
           dist % static_cast<std::uint64_t>(n)) %
          static_cast<std::uint64_t>(n));
      auto size_span = proc.allocDevice(sizeof(std::uint64_t));
      auto req = co_await proc.irecv(size_span, ddt::Datatype::byte(),
                                     sizeof(std::uint64_t), src,
                                     tag + bruckTag(k, d, 0, radix));
      co_await proc.wait(req);
      std::uint64_t payload_bytes = 0;
      std::memcpy(&payload_bytes, size_span.bytes.data(),
                  sizeof(payload_bytes));
      proc.freeDevice(size_span);
      if (payload_bytes == 0) continue;
      auto payload = proc.allocDevice(payload_bytes);
      auto preq = co_await proc.irecv(payload, ddt::Datatype::byte(),
                                      payload_bytes, src,
                                      tag + bruckTag(k, d, 1, radix));
      co_await proc.wait(preq);
      std::size_t pos = 0;
      while (pos < payload_bytes) {
        std::int32_t csrc = 0, cdst = 0;
        std::uint64_t clen = 0;
        std::memcpy(&csrc, payload.bytes.data() + pos, sizeof(csrc));
        std::memcpy(&cdst, payload.bytes.data() + pos + sizeof(csrc),
                    sizeof(cdst));
        std::memcpy(&clen,
                    payload.bytes.data() + pos + sizeof(csrc) + sizeof(cdst),
                    sizeof(clen));
        pos += kBruckHeaderBytes;
        DKF_CHECK(pos + clen <= payload_bytes);
        if (cdst == me) {
          const BlockView& bv = recv_views[static_cast<std::size_t>(csrc)];
          DKF_CHECK_MSG(clen == bv.packed,
                        "alltoallv block size mismatch: rank "
                            << csrc << " sent " << clen << " bytes, rank "
                            << me << " expects " << bv.packed);
          co_await proc.unpack(payload.subspan(pos, clen),
                               blockSpan(recv, bv),
                               recv_blocks[static_cast<std::size_t>(csrc)].type,
                               recv_blocks[static_cast<std::size_t>(csrc)].count);
        } else {
          BruckChunk c;
          c.src = csrc;
          c.dst = cdst;
          c.bytes = proc.payloadPool().capture(
              {payload.bytes.data() + pos, clen});
          pending.push_back(std::move(c));
        }
        pos += clen;
      }
      proc.freeDevice(payload);
    }

    co_await proc.waitall(std::move(send_reqs));
    for (const auto& span : round_scratch) proc.freeDevice(span);
  }
  DKF_CHECK_MSG(pending.empty(),
                "bruck alltoallv finished with " << pending.size()
                                                 << " undelivered chunks");
}

}  // namespace

const char* collAlgoName(CollAlgo algo) {
  switch (algo) {
    case CollAlgo::Flat: return "flat";
    case CollAlgo::Ring: return "ring";
    case CollAlgo::Tree: return "tree";
  }
  DKF_CHECK_MSG(false, "unhandled CollAlgo " << static_cast<int>(algo));
}

sim::Task<void> bcast(Proc& proc, gpu::MemSpan buf, ddt::DatatypePtr type,
                      std::size_t count, int root) {
  const int n = proc.worldSize();
  DKF_CHECK(root >= 0 && root < n);
  const int tag = proc.allocCollectiveTags(n);
  const int me = relRank(proc.rank(), root, n);

  // Binomial tree: in round k (mask = 1<<k), ranks below the mask send to
  // rank + mask.
  int mask = 1;
  // Receive phase: find my parent (the lowest set bit of my relative rank).
  if (me != 0) {
    while ((me & mask) == 0) mask <<= 1;
    const int parent = absRank(me - mask, root, n);
    auto req = co_await proc.irecv(buf, type, count, parent, tag + me);
    co_await proc.wait(req);
  } else {
    while (mask < n) mask <<= 1;
  }
  // Send phase: forward to children (me + mask/2, me + mask/4, ...).
  mask >>= 1;
  std::vector<RequestPtr> sends;
  while (mask > 0) {
    if (me + mask < n && (me & (mask - 1)) == 0 && (me & mask) == 0) {
      const int child_rel = me + mask;
      sends.push_back(co_await proc.isend(buf, type, count,
                                          absRank(child_rel, root, n),
                                          tag + child_rel));
    }
    mask >>= 1;
  }
  co_await proc.waitall(std::move(sends));
}

sim::Task<void> reduce(Proc& proc, gpu::MemSpan buf, std::size_t count,
                       ReduceType type, ReduceOp op, int root,
                       const CollTuning& tuning) {
  const int n = proc.worldSize();
  DKF_CHECK(root >= 0 && root < n);
  validateReduceOp(op);
  validateTuning(tuning);
  const std::size_t bytes = count * elementSize(type);
  DKF_CHECK(buf.size() >= bytes);
  const int me = proc.rank();
  const std::vector<std::size_t> sizes(static_cast<std::size_t>(n), bytes);
  const auto offs = prefixOffsets(sizes);
  const gpu::MemSpan mine = buf.subspan(0, bytes);
  const int tag = proc.allocCollectiveTags(n);

  // Transport the raw contributions to the root (topology per `tuning`),
  // then fold them in absolute rank order — the combine order is pinned,
  // so every algorithm produces bit-identical Float64 results.
  gpu::MemSpan full{};
  const bool need_full =
      tuning.algo == CollAlgo::Ring || me == root;
  if (need_full) full = proc.allocDevice(std::max<std::size_t>(offs.back(), 1));
  switch (tuning.algo) {
    case CollAlgo::Flat:
      co_await flatGatherBytes(proc, root, sizes, offs, mine, full, tag);
      break;
    case CollAlgo::Ring:
      co_await ringAllgatherBytes(proc, sizes, offs, mine, full, tag);
      break;
    case CollAlgo::Tree:
      co_await treeGatherBytes(proc, root, tuning.radix, sizes, mine, full,
                               tag);
      break;
  }
  if (me == root) {
    // Tree gathers concatenate in rel-rank order when rooted off rank 0.
    const auto slot_of = [&](int r) {
      return tuning.algo == CollAlgo::Tree ? relRank(r, root, n) : r;
    };
    foldContributions(mine, full, offs, n, slot_of, count, type, op);
  }
  if (need_full) proc.freeDevice(full);
}

sim::Task<void> allreduce(Proc& proc, gpu::MemSpan buf, std::size_t count,
                          ReduceType type, ReduceOp op,
                          const CollTuning& tuning) {
  co_await allreduceDdt(proc, buf, elemDatatype(type), count, type, op,
                        tuning);
}

sim::Task<void> allreduceDdt(Proc& proc, gpu::MemSpan buf,
                             ddt::DatatypePtr type, std::size_t count,
                             ReduceType elem, ReduceOp op,
                             const CollTuning& tuning) {
  const int n = proc.worldSize();
  validateReduceOp(op);
  validateTuning(tuning);
  const std::size_t esize = elementSize(elem);
  DKF_CHECK(count > 0);
  const BlockView bv =
      resolveBlock(proc, VBlock{type, count, 0}, buf, "allreduce");
  DKF_CHECK_MSG(bv.packed > 0, "allreduce layout selects no bytes");
  DKF_CHECK_MSG(bv.packed % esize == 0,
                "allreduce layout packs " << bv.packed
                                          << " bytes, not a multiple of "
                                          << esize);
  const std::size_t bytes = bv.packed;
  const std::size_t elems = bytes / esize;
  const int me = proc.rank();

  // Contiguous layouts contribute in place; strided ones pack once through
  // the cached plan (and scatter the result back the same way).
  const bool contiguous = bv.layout->isContiguous() && bv.layout->minOffset() == 0;
  gpu::MemSpan contrib{};
  if (contiguous) {
    contrib = buf.subspan(0, bytes);
  } else {
    const std::vector<BlockView> views{bv};
    warmBlockPlans(proc, core::FusionOp::Packing, views);
    warmBlockPlans(proc, core::FusionOp::Unpacking, views);
    contrib = proc.allocDevice(bytes);
    co_await proc.pack(blockSpan(buf, bv), type, count, contrib);
  }

  const std::vector<std::size_t> sizes(static_cast<std::size_t>(n), bytes);
  const auto offs = prefixOffsets(sizes);
  auto res = proc.allocDevice(bytes);
  const auto identity = [](int r) { return r; };

  switch (tuning.algo) {
    case CollAlgo::Flat:
    case CollAlgo::Ring: {
      // Allgather the raw contributions; every rank folds the identical
      // pinned sequence locally.
      const int tag = proc.allocCollectiveTags(n);
      auto full = proc.allocDevice(offs.back());
      if (tuning.algo == CollAlgo::Flat) {
        co_await flatAllgatherBytes(proc, sizes, offs, contrib, full, tag);
      } else {
        co_await ringAllgatherBytes(proc, sizes, offs, contrib, full, tag);
      }
      foldContributions(res, full, offs, n, identity, elems, elem, op);
      proc.freeDevice(full);
      break;
    }
    case CollAlgo::Tree: {
      // Gather to rank 0 over the range tree, fold once, broadcast the
      // folded bytes back down the same tree.
      const int tag_up = proc.allocCollectiveTags(n);
      const int tag_down = proc.allocCollectiveTags(n);
      gpu::MemSpan full{};
      if (me == 0) full = proc.allocDevice(offs.back());
      co_await treeGatherBytes(proc, /*root=*/0, tuning.radix, sizes, contrib,
                               full, tag_up);
      if (me == 0) {
        foldContributions(res, full, offs, n, identity, elems, elem, op);
        proc.freeDevice(full);
      }
      co_await treeBcastBytes(proc, /*root=*/0, tuning.radix, res, bytes,
                              tag_down);
      break;
    }
  }

  if (contiguous) {
    std::memcpy(buf.bytes.data(), res.bytes.data(), bytes);
  } else {
    co_await proc.unpack(res, blockSpan(buf, bv), type, count);
    proc.freeDevice(contrib);
  }
  proc.freeDevice(res);
}

sim::Task<void> gather(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                       std::size_t bytes_per_rank, int root) {
  const int n = proc.worldSize();
  const int tag = proc.allocCollectiveTags(n);
  if (proc.rank() == root) {
    DKF_CHECK(send.size() >= bytes_per_rank);
    DKF_CHECK(recv.size() >= bytes_per_rank * static_cast<std::size_t>(n));
    std::vector<RequestPtr> reqs;
    for (int r = 0; r < n; ++r) {
      if (r == root) {
        std::memcpy(recv.bytes.data() +
                        static_cast<std::size_t>(r) * bytes_per_rank,
                    send.bytes.data(), bytes_per_rank);
        continue;
      }
      reqs.push_back(co_await proc.irecv(
          recv.subspan(static_cast<std::size_t>(r) * bytes_per_rank,
                       bytes_per_rank),
          ddt::Datatype::byte(), bytes_per_rank, r, tag + r));
    }
    co_await proc.waitall(std::move(reqs));
  } else {
    DKF_CHECK(send.size() >= bytes_per_rank);
    auto req = co_await proc.isend(send, ddt::Datatype::byte(),
                                   bytes_per_rank, root,
                                   tag + proc.rank());
    co_await proc.wait(req);
  }
}

sim::Task<void> alltoall(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                         std::size_t bytes_per_rank) {
  const int n = proc.worldSize();
  const int tag = proc.allocCollectiveTags(n);
  DKF_CHECK(send.size() >= bytes_per_rank * static_cast<std::size_t>(n));
  DKF_CHECK(recv.size() >= bytes_per_rank * static_cast<std::size_t>(n));
  std::vector<RequestPtr> reqs;
  for (int r = 0; r < n; ++r) {
    const auto off = static_cast<std::size_t>(r) * bytes_per_rank;
    if (r == proc.rank()) {
      std::memcpy(recv.bytes.data() + off, send.bytes.data() + off,
                  bytes_per_rank);
      continue;
    }
    reqs.push_back(co_await proc.irecv(recv.subspan(off, bytes_per_rank),
                                       ddt::Datatype::byte(), bytes_per_rank,
                                       r, tag + proc.rank()));
    reqs.push_back(co_await proc.isend(send.subspan(off, bytes_per_rank),
                                       ddt::Datatype::byte(), bytes_per_rank,
                                       r, tag + r));
  }
  co_await proc.waitall(std::move(reqs));
}

sim::Task<void> alltoallv(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                          const std::vector<VBlock>& send_blocks,
                          const std::vector<VBlock>& recv_blocks,
                          const CollTuning& tuning) {
  const int n = proc.worldSize();
  const int me = proc.rank();
  validateTuning(tuning);
  DKF_CHECK_MSG(send_blocks.size() == static_cast<std::size_t>(n) &&
                    recv_blocks.size() == static_cast<std::size_t>(n),
                "alltoallv needs one send and one recv block per rank");
  std::vector<BlockView> send_views, recv_views;
  send_views.reserve(send_blocks.size());
  recv_views.reserve(recv_blocks.size());
  for (int r = 0; r < n; ++r) {
    send_views.push_back(resolveBlock(
        proc, send_blocks[static_cast<std::size_t>(r)], send, "alltoallv send"));
    recv_views.push_back(resolveBlock(
        proc, recv_blocks[static_cast<std::size_t>(r)], recv, "alltoallv recv"));
  }
  warmBlockPlans(proc, core::FusionOp::Packing, send_views);
  warmBlockPlans(proc, core::FusionOp::Unpacking, recv_views);

  // The self block moves locally through the same pack/unpack plans every
  // topology uses, so all variants write identical bytes.
  if (send_views[static_cast<std::size_t>(me)].packed > 0) {
    const BlockView& sv = send_views[static_cast<std::size_t>(me)];
    const BlockView& rv = recv_views[static_cast<std::size_t>(me)];
    DKF_CHECK_MSG(sv.packed == rv.packed,
                  "alltoallv self block sizes disagree: " << sv.packed
                                                          << " vs "
                                                          << rv.packed);
    auto scratch = proc.allocDevice(sv.packed);
    co_await proc.pack(blockSpan(send, sv),
                       send_blocks[static_cast<std::size_t>(me)].type,
                       send_blocks[static_cast<std::size_t>(me)].count,
                       scratch);
    co_await proc.unpack(scratch, blockSpan(recv, rv),
                         recv_blocks[static_cast<std::size_t>(me)].type,
                         recv_blocks[static_cast<std::size_t>(me)].count);
    proc.freeDevice(scratch);
  }

  switch (tuning.algo) {
    case CollAlgo::Flat: {
      // Direct typed sends to every peer — the engine packs each message
      // through the one warmed plan per signature.
      const int tag = proc.allocCollectiveTags(n);
      std::vector<RequestPtr> reqs;
      for (int r = 0; r < n; ++r) {
        if (r == me) continue;
        const BlockView& rv = recv_views[static_cast<std::size_t>(r)];
        if (rv.packed > 0) {
          reqs.push_back(co_await proc.irecv(
              blockSpan(recv, rv), recv_blocks[static_cast<std::size_t>(r)].type,
              recv_blocks[static_cast<std::size_t>(r)].count, r, tag + r));
        }
        const BlockView& sv = send_views[static_cast<std::size_t>(r)];
        if (sv.packed > 0) {
          reqs.push_back(co_await proc.isend(
              blockSpan(send, sv), send_blocks[static_cast<std::size_t>(r)].type,
              send_blocks[static_cast<std::size_t>(r)].count, r, tag + me));
        }
      }
      co_await proc.waitall(std::move(reqs));
      break;
    }
    case CollAlgo::Ring: {
      // Staged pairwise exchange: in step s, send to (me+s) and receive
      // from (me-s) — two messages in flight per step regardless of n.
      const int tag = proc.allocCollectiveTags(n);
      for (int s = 1; s < n; ++s) {
        const int out = (me + s) % n;
        const int in = (me - s + n) % n;
        std::vector<RequestPtr> reqs;
        const BlockView& rv = recv_views[static_cast<std::size_t>(in)];
        if (rv.packed > 0) {
          reqs.push_back(co_await proc.irecv(
              blockSpan(recv, rv),
              recv_blocks[static_cast<std::size_t>(in)].type,
              recv_blocks[static_cast<std::size_t>(in)].count, in, tag + s));
        }
        const BlockView& sv = send_views[static_cast<std::size_t>(out)];
        if (sv.packed > 0) {
          reqs.push_back(co_await proc.isend(
              blockSpan(send, sv),
              send_blocks[static_cast<std::size_t>(out)].type,
              send_blocks[static_cast<std::size_t>(out)].count, out,
              tag + s));
        }
        co_await proc.waitall(std::move(reqs));
      }
      break;
    }
    case CollAlgo::Tree: {
      const int rounds = bruckRounds(n, tuning.radix);
      const int tag =
          proc.allocCollectiveTags(std::max(1, rounds * (tuning.radix - 1) * 2));
      co_await bruckAlltoallv(proc, send, recv, send_blocks, recv_blocks,
                              send_views, recv_views, tuning.radix, rounds,
                              tag);
      break;
    }
  }
}

sim::Task<void> allgatherv(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                           const std::vector<VBlock>& blocks,
                           const CollTuning& tuning) {
  const int n = proc.worldSize();
  const int me = proc.rank();
  validateTuning(tuning);
  DKF_CHECK_MSG(blocks.size() == static_cast<std::size_t>(n),
                "allgatherv needs one block per rank");
  std::vector<BlockView> views;
  views.reserve(blocks.size());
  std::vector<std::size_t> sizes(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    // Every rank's block must fit the *recv* buffer everywhere; the send
    // buffer only has to cover this rank's own block.
    views.push_back(resolveBlock(proc, blocks[static_cast<std::size_t>(r)],
                                 recv, "allgatherv"));
    sizes[static_cast<std::size_t>(r)] = views.back().packed;
  }
  const BlockView& mine_view = views[static_cast<std::size_t>(me)];
  DKF_CHECK_MSG(mine_view.offset + mine_view.extent <= send.size(),
                "allgatherv own block exceeds the send buffer");
  warmBlockPlans(proc, core::FusionOp::Packing, {mine_view});
  warmBlockPlans(proc, core::FusionOp::Unpacking, views);

  const auto offs = prefixOffsets(sizes);
  const std::size_t total = offs.back();
  gpu::MemSpan mine{};
  if (mine_view.packed > 0) {
    mine = proc.allocDevice(mine_view.packed);
    co_await proc.pack(blockSpan(send, mine_view),
                       blocks[static_cast<std::size_t>(me)].type,
                       blocks[static_cast<std::size_t>(me)].count, mine);
  }
  auto full = proc.allocDevice(std::max<std::size_t>(total, 1));

  switch (tuning.algo) {
    case CollAlgo::Flat: {
      const int tag = proc.allocCollectiveTags(n);
      co_await flatAllgatherBytes(proc, sizes, offs, mine, full, tag);
      break;
    }
    case CollAlgo::Ring: {
      const int tag = proc.allocCollectiveTags(n);
      co_await ringAllgatherBytes(proc, sizes, offs, mine, full, tag);
      break;
    }
    case CollAlgo::Tree: {
      // Gather the rank-major concatenation to rank 0, then broadcast the
      // whole concatenation down the same tree (root 0: rel == abs).
      const int tag_up = proc.allocCollectiveTags(n);
      const int tag_down = proc.allocCollectiveTags(n);
      co_await treeGatherBytes(proc, /*root=*/0, tuning.radix, sizes, mine,
                               full, tag_up);
      co_await treeBcastBytes(proc, /*root=*/0, tuning.radix, full, total,
                              tag_down);
      break;
    }
  }

  // Every contribution — own included — lands in recv through the same
  // warmed unpack plan, in pinned rank order.
  for (int r = 0; r < n; ++r) {
    const BlockView& bv = views[static_cast<std::size_t>(r)];
    if (bv.packed == 0) continue;
    co_await proc.unpack(full.subspan(offs[static_cast<std::size_t>(r)],
                                      bv.packed),
                         blockSpan(recv, bv),
                         blocks[static_cast<std::size_t>(r)].type,
                         blocks[static_cast<std::size_t>(r)].count);
  }
  proc.freeDevice(full);
  if (mine_view.packed > 0) proc.freeDevice(mine);
}

sim::Task<void> neighborAlltoallw(Proc& proc, gpu::MemSpan buf,
                                  const std::vector<NeighborOp>& ops) {
  // One invocation reserves max(tag)+1 tags; the neighborhood's tag values
  // must therefore span the same range on every rank (they do for the halo
  // face sets, which use 0..faces-1 everywhere).
  int span = 1;
  for (const NeighborOp& op : ops) {
    span = std::max(span, std::max(op.send_tag, op.recv_tag) + 1);
  }
  const int tag = proc.allocCollectiveTags(span);
  std::vector<RequestPtr> reqs;
  reqs.reserve(ops.size() * 2);
  for (const NeighborOp& op : ops) {
    reqs.push_back(co_await proc.irecv(buf, op.recv_type, 1, op.neighbor,
                                       tag + op.recv_tag));
    reqs.push_back(co_await proc.isend(buf, op.send_type, 1, op.neighbor,
                                       tag + op.send_tag));
  }
  co_await proc.waitall(std::move(reqs));
}

}  // namespace dkf::mpi
