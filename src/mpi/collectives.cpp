#include "mpi/collectives.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/check.hpp"

namespace dkf::mpi {

namespace {

std::size_t elementSize(ReduceType t) {
  switch (t) {
    case ReduceType::Float64: return sizeof(double);
    case ReduceType::Int64: return sizeof(std::int64_t);
  }
  DKF_CHECK_MSG(false, "unhandled ReduceType " << static_cast<int>(t));
}

template <class T>
T combine(T a, T b, ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return a + b;
    case ReduceOp::Min: return std::min(a, b);
    case ReduceOp::Max: return std::max(a, b);
  }
  DKF_CHECK_MSG(false, "unhandled ReduceOp " << static_cast<int>(op));
}

template <class T>
void combineSpans(std::span<std::byte> dst, std::span<const std::byte> src,
                  std::size_t count, ReduceOp op) {
  for (std::size_t i = 0; i < count; ++i) {
    T a, b;
    std::memcpy(&a, dst.data() + i * sizeof(T), sizeof(T));
    std::memcpy(&b, src.data() + i * sizeof(T), sizeof(T));
    a = combine(a, b, op);
    std::memcpy(dst.data() + i * sizeof(T), &a, sizeof(T));
  }
}

/// Apply `op` element-wise: dst[i] = dst[i] op src[i].
void applyReduce(std::span<std::byte> dst, std::span<const std::byte> src,
                 std::size_t count, ReduceType type, ReduceOp op) {
  DKF_CHECK(dst.size() >= count * elementSize(type));
  DKF_CHECK(src.size() >= count * elementSize(type));
  switch (type) {
    case ReduceType::Float64:
      combineSpans<double>(dst, src, count, op);
      return;
    case ReduceType::Int64:
      combineSpans<std::int64_t>(dst, src, count, op);
      return;
  }
  DKF_CHECK_MSG(false, "unhandled ReduceType " << static_cast<int>(type));
}

/// Rank relative to the root (so the tree algorithms can assume root 0).
int relRank(int rank, int root, int n) { return (rank - root + n) % n; }
int absRank(int rel, int root, int n) { return (rel + root) % n; }

}  // namespace

sim::Task<void> bcast(Proc& proc, gpu::MemSpan buf, ddt::DatatypePtr type,
                      std::size_t count, int root, int tag_base) {
  const int n = proc.worldSize();
  DKF_CHECK(root >= 0 && root < n);
  const int me = relRank(proc.rank(), root, n);

  // Binomial tree: in round k (mask = 1<<k), ranks below the mask send to
  // rank + mask.
  int mask = 1;
  // Receive phase: find my parent (the lowest set bit of my relative rank).
  if (me != 0) {
    while ((me & mask) == 0) mask <<= 1;
    const int parent = absRank(me - mask, root, n);
    auto req = co_await proc.irecv(buf, type, count, parent, tag_base + me);
    co_await proc.wait(req);
  } else {
    while (mask < n) mask <<= 1;
  }
  // Send phase: forward to children (me + mask/2, me + mask/4, ...).
  mask >>= 1;
  std::vector<RequestPtr> sends;
  while (mask > 0) {
    if (me + mask < n && (me & (mask - 1)) == 0 && (me & mask) == 0) {
      const int child_rel = me + mask;
      sends.push_back(co_await proc.isend(buf, type, count,
                                          absRank(child_rel, root, n),
                                          tag_base + child_rel));
    }
    mask >>= 1;
  }
  co_await proc.waitall(std::move(sends));
}

sim::Task<void> reduce(Proc& proc, gpu::MemSpan buf, std::size_t count,
                       ReduceType type, ReduceOp op, int root, int tag_base) {
  const int n = proc.worldSize();
  DKF_CHECK(root >= 0 && root < n);
  const int me = relRank(proc.rank(), root, n);
  const std::size_t bytes = count * elementSize(type);
  DKF_CHECK(buf.size() >= bytes);

  // Binomial reduction: in round k, ranks with bit k set send their
  // partial result to (me - mask) and leave; others receive and combine.
  auto scratch = proc.allocDevice(std::max<std::size_t>(bytes, 1));
  for (int mask = 1; mask < n; mask <<= 1) {
    if (me & mask) {
      auto req = co_await proc.isend(buf.subspan(0, bytes),
                                     ddt::Datatype::byte(), bytes,
                                     absRank(me - mask, root, n),
                                     tag_base + me);
      co_await proc.wait(req);
      break;  // sent my partial up; done participating
    }
    if (me + mask < n) {
      auto req = co_await proc.irecv(scratch, ddt::Datatype::byte(), bytes,
                                     absRank(me + mask, root, n),
                                     tag_base + me + mask);
      co_await proc.wait(req);
      applyReduce(buf.bytes, scratch.bytes, count, type, op);
    }
  }
  proc.freeDevice(scratch);
}

sim::Task<void> allreduce(Proc& proc, gpu::MemSpan buf, std::size_t count,
                          ReduceType type, ReduceOp op, int tag_base) {
  co_await reduce(proc, buf, count, type, op, /*root=*/0, tag_base);
  co_await bcast(proc, buf, ddt::Datatype::byte(),
                 count * elementSize(type), /*root=*/0,
                 tag_base + (1 << 10));
}

sim::Task<void> gather(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                       std::size_t bytes_per_rank, int root, int tag_base) {
  const int n = proc.worldSize();
  if (proc.rank() == root) {
    DKF_CHECK(send.size() >= bytes_per_rank);
    DKF_CHECK(recv.size() >= bytes_per_rank * static_cast<std::size_t>(n));
    std::vector<RequestPtr> reqs;
    for (int r = 0; r < n; ++r) {
      if (r == root) {
        std::memcpy(recv.bytes.data() +
                        static_cast<std::size_t>(r) * bytes_per_rank,
                    send.bytes.data(), bytes_per_rank);
        continue;
      }
      reqs.push_back(co_await proc.irecv(
          recv.subspan(static_cast<std::size_t>(r) * bytes_per_rank,
                       bytes_per_rank),
          ddt::Datatype::byte(), bytes_per_rank, r, tag_base + r));
    }
    co_await proc.waitall(std::move(reqs));
  } else {
    DKF_CHECK(send.size() >= bytes_per_rank);
    auto req = co_await proc.isend(send, ddt::Datatype::byte(),
                                   bytes_per_rank, root,
                                   tag_base + proc.rank());
    co_await proc.wait(req);
  }
}

sim::Task<void> alltoall(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                         std::size_t bytes_per_rank, int tag_base) {
  const int n = proc.worldSize();
  DKF_CHECK(send.size() >= bytes_per_rank * static_cast<std::size_t>(n));
  DKF_CHECK(recv.size() >= bytes_per_rank * static_cast<std::size_t>(n));
  std::vector<RequestPtr> reqs;
  for (int r = 0; r < n; ++r) {
    const auto off = static_cast<std::size_t>(r) * bytes_per_rank;
    if (r == proc.rank()) {
      std::memcpy(recv.bytes.data() + off, send.bytes.data() + off,
                  bytes_per_rank);
      continue;
    }
    reqs.push_back(co_await proc.irecv(recv.subspan(off, bytes_per_rank),
                                       ddt::Datatype::byte(), bytes_per_rank,
                                       r, tag_base + proc.rank()));
    reqs.push_back(co_await proc.isend(send.subspan(off, bytes_per_rank),
                                       ddt::Datatype::byte(), bytes_per_rank,
                                       r, tag_base + r));
  }
  co_await proc.waitall(std::move(reqs));
}

sim::Task<void> neighborAlltoallw(Proc& proc, gpu::MemSpan buf,
                                  const std::vector<NeighborOp>& ops,
                                  int tag_base) {
  std::vector<RequestPtr> reqs;
  reqs.reserve(ops.size() * 2);
  for (const NeighborOp& op : ops) {
    reqs.push_back(co_await proc.irecv(buf, op.recv_type, 1, op.neighbor,
                                       tag_base + op.recv_tag));
    reqs.push_back(co_await proc.isend(buf, op.send_type, 1, op.neighbor,
                                       tag_base + op.send_tag));
  }
  co_await proc.waitall(std::move(reqs));
}

}  // namespace dkf::mpi
