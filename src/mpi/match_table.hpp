// O(1) MPI message matching (MODEL.md §13).
//
// The seed matched inbound messages by linearly scanning the post-order
// list of unmatched receives — O(posted) per arrival, O(n²) for a window
// of n in-flight messages, the first thing that melts at million-message
// scale. These structures replace the scans while preserving MPI matching
// semantics *exactly*: the winner is always the earliest-posted (resp.
// earliest-arrived) matching entry, the same entry the linear scan finds.
//
// MatchTable splits posted receives into the four wildcard classes a
// receive can be in — (src, tag), (src, *), (*, tag), (*, *) — each a FIFO
// keyed by its concrete parts. An inbound (src, tag) can only match the
// *head* of each class's one candidate queue (FIFOs are appended in post
// order, so heads carry the smallest post id), and taking the head with
// the minimum post id across the ≤ 4 candidates is exactly the scan's
// earliest-posted-matching answer. Lookup cost: 4 hash probes.
//
// ArrivalQueue is the dual for unexpected arrivals: entries have concrete
// (src, tag) keys, receives may carry wildcards. A concrete receive probes
// one queue; a wildcard receive scans queue *heads* only (one per distinct
// live key, not per message). The min-arrival-id winner is again identical
// to scanning the arrival-order list, and — because winners are chosen by
// id, never by hash iteration order — results are deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "mpi/request.hpp"

namespace dkf::mpi {

namespace detail {
/// One hashable key for a concrete (src, tag) pair.
inline std::uint64_t packKey(int src, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(tag);
}
}  // namespace detail

class MatchTable {
 public:
  /// Append a posted receive (its peer/tag may be wildcards).
  void post(RequestPtr req) {
    const std::uint64_t id = next_id_++;
    Request& r = *req;
    if (r.peer == kAnySource && r.tag == kAnyTag) {
      any_both_.push_back(Posted{id, std::move(req)});
    } else if (r.peer == kAnySource) {
      any_src_[r.tag].push_back(Posted{id, std::move(req)});
    } else if (r.tag == kAnyTag) {
      any_tag_[r.peer].push_back(Posted{id, std::move(req)});
    } else {
      exact_[detail::packKey(r.peer, r.tag)].push_back(
          Posted{id, std::move(req)});
    }
    ++size_;
  }

  /// Remove and return the earliest-posted receive matching a concrete
  /// inbound (src, tag); nullptr when nothing matches.
  RequestPtr match(int src_rank, int msg_tag) {
    Queue* best = nullptr;
    auto consider = [&best](Queue* q) {
      if (q && !q->empty() &&
          (!best || q->front().id < best->front().id)) {
        best = q;
      }
    };
    consider(find(exact_, detail::packKey(src_rank, msg_tag)));
    consider(find(any_tag_, src_rank));
    consider(find(any_src_, msg_tag));
    consider(any_both_.empty() ? nullptr : &any_both_);
    if (!best) return nullptr;
    RequestPtr req = std::move(best->front().req);
    best->pop_front();
    --size_;
    return req;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Posted {
    std::uint64_t id;
    RequestPtr req;
  };
  using Queue = std::deque<Posted>;

  template <class Map, class Key>
  static Queue* find(Map& map, Key key) {
    const auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  }

  std::unordered_map<std::uint64_t, Queue> exact_;  // (src, tag) concrete
  std::unordered_map<int, Queue> any_tag_;          // keyed by src
  std::unordered_map<int, Queue> any_src_;          // keyed by tag
  Queue any_both_;
  std::uint64_t next_id_{0};
  std::size_t size_{0};
};

/// FIFO of unexpected arrivals with concrete (src, tag) keys, taken by a
/// (possibly wildcard) receive in exact arrival order.
template <class T>
class ArrivalQueue {
 public:
  void push(int src, int tag, T value) {
    by_key_[detail::packKey(src, tag)].push_back(
        Item{next_id_++, std::move(value)});
    ++size_;
  }

  /// Remove and return the earliest arrival matching a receive posted for
  /// (`peer`, `tag`) — either may be a wildcard. False when none matches.
  bool take(int peer, int tag, T& out) {
    if (size_ == 0) return false;
    if (peer != kAnySource && tag != kAnyTag) {
      const auto it = by_key_.find(detail::packKey(peer, tag));
      if (it == by_key_.end()) return false;
      out = popFront(it);
      return true;
    }
    // Wildcard receive: only queue heads can win (each queue is in
    // arrival order), and the min arrival id decides — identical to
    // scanning the global arrival list, independent of hash order.
    auto best = by_key_.end();
    for (auto it = by_key_.begin(); it != by_key_.end(); ++it) {
      const int src = static_cast<int>(
          static_cast<std::int32_t>(it->first >> 32));
      const int msg_tag = static_cast<int>(
          static_cast<std::int32_t>(it->first & 0xffffffffu));
      if (peer != kAnySource && peer != src) continue;
      if (tag != kAnyTag && tag != msg_tag) continue;
      if (best == by_key_.end() ||
          it->second.front().id < best->second.front().id) {
        best = it;
      }
    }
    if (best == by_key_.end()) return false;
    out = popFront(best);
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Item {
    std::uint64_t id;
    T value;
  };
  using Map = std::unordered_map<std::uint64_t, std::deque<Item>>;

  T popFront(typename Map::iterator it) {
    T value = std::move(it->second.front().value);
    it->second.pop_front();
    if (it->second.empty()) by_key_.erase(it);
    --size_;
    return value;
  }

  Map by_key_;
  std::uint64_t next_id_{0};
  std::size_t size_{0};
};

}  // namespace dkf::mpi
