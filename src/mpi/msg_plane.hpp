// Table-driven message state machines — the hot progress path (MODEL.md
// §13).
//
// The seed advanced every request with a coroutine (`progressRequest`):
// one frame per request per poll, even though the hot protocol actions —
// put eager data on the wire, send/answer an RTS, kick a retransmission —
// never suspend. The batched plane classifies a request into a protocol
// phase with a pure function over its flags and dispatches through a
// constexpr table of plain function pointers: zero frames, zero
// allocations, identical actions in identical order.
//
// Coroutines remain for the cold/control paths that genuinely suspend:
// pack submission (activateSend) and the DirectIPC enqueue (`tryDirect`,
// reached when advance() returns false). `RuntimeConfig::
// batched_message_plane = false` routes progress back through the seed
// coroutine per request — the shadow used by the determinism fuzz test and
// the throughput bench's speedup baseline.
#pragma once

#include <cstdint>

#include "mpi/request.hpp"

namespace dkf::mpi {

class Proc;

struct MsgPlane {
  /// Protocol phase of a request at progress time. Classification is a
  /// pure function of the request's flags; the phase indexes the handler
  /// table 1:1.
  enum class Phase : std::uint8_t {
    Idle,             ///< nothing to do this pass (awaiting pack / data)
    SendEager,        ///< eager data to issue, or un-ACKed and retrans-due
    SendRget,         ///< RTS to issue, or RTS/FIN lost and retrans-due
    SendRput,         ///< CTS wait / data phase / completion
    SendDirect,       ///< receiver-driven; only retransmits its RTS
    RecvRgetRetry,    ///< RGet read may need re-issuing on timeout
    RecvDirectRetry,  ///< DirectIPC enqueue retry — coroutine slow path
    Count
  };

  static Phase classify(const Request& r);

  /// Advance one request through the phase table. Returns false when the
  /// request needs the coroutine slow path (Phase::RecvDirectRetry);
  /// everything else is fully handled.
  static bool advance(Proc& p, const RequestPtr& req);

 private:
  using Handler = void (*)(Proc&, const RequestPtr&);

  static void idle(Proc&, const RequestPtr&);
  static void sendEager(Proc& p, const RequestPtr& req);
  static void sendRget(Proc& p, const RequestPtr& req);
  static void sendRput(Proc& p, const RequestPtr& req);
  static void sendDirect(Proc& p, const RequestPtr& req);
  static void recvRgetRetry(Proc& p, const RequestPtr& req);
};

}  // namespace dkf::mpi
