// MPI-style request objects for the runtime's non-blocking operations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/tenant.hpp"
#include "common/units.hpp"
#include "ddt/layout.hpp"
#include "gpu/memory.hpp"
#include "net/payload.hpp"
#include "schemes/ddt_engine.hpp"

namespace dkf::mpi {

inline constexpr int kAnyTag = -1;
inline constexpr int kAnySource = -1;

/// Wire protocol chosen for a message.
enum class Protocol : std::uint8_t {
  Eager,      ///< small: data travels with the match
  RGet,       ///< rendezvous: RTS after pack, receiver RDMA-READs
  RPut,       ///< rendezvous: RTS first, sender RDMA-WRITEs after CTS
  DirectIpc,  ///< intra-node zero-copy strided transfer [24]
};

struct Request {
  enum class Kind : std::uint8_t { Send, Recv };

  Kind kind{Kind::Send};
  int owner_rank{-1};
  int peer{-1};
  int tag{0};
  Protocol protocol{Protocol::Eager};

  // ---- Multi-tenant serving plane (MODEL.md §14) ----
  TenantId tenant{kDefaultTenant};  ///< whose traffic class this is
  TimeNs posted_at{0};              ///< isend/irecv issue time (latency base)
  TimeNs completed_at{0};           ///< completion stamp (0 = still open)
  bool counted_inflight{false};     ///< holds one admission token

  gpu::MemSpan user_buf{};       ///< the application buffer (origin)
  ddt::LayoutPtr layout{};       ///< flattened layout of user_buf
  bool is_contiguous{true};
  std::size_t data_bytes{0};     ///< packed payload size

  // Staging for packed data (owned -> freed at completion).
  gpu::MemSpan staging{};
  bool staging_owned{false};
  // Eager payload parked at the receiver until unpack finishes (a ref into
  // the sender node's payload pool — no copy on the park).
  net::PayloadRef eager_data;

  // DDT-engine work in flight (pack on the sender, unpack/direct on the
  // receiver).
  schemes::Ticket ticket{};
  bool ticket_pending{false};

  // Protocol state machine.
  bool pack_done{false};
  bool rts_sent{false};
  bool cts_received{false};
  bool data_in_flight{false};
  bool data_delivered{false};
  gpu::MemSpan remote_staging{};      ///< peer's packed buffer (RGet/RPut)
  ddt::LayoutPtr remote_layout{};     ///< DirectIpc: sender-side layout
  gpu::MemSpan remote_origin{};       ///< DirectIpc: sender-side buffer
  bool direct_retry{false};           ///< DirectIpc enqueue must be retried
  std::shared_ptr<Request> paired{};  ///< peer request during rendezvous
                                      ///< data movement (cleared at
                                      ///< completion to break the cycle)

  bool complete{false};

  // ---- Change-driven progress bookkeeping (batched message plane) ----
  // The batched plane only advances requests whose state could have moved:
  // `progress_order` pins the activation (= seed scan) order, and the two
  // membership flags dedupe entries on the owning Proc's timed/dirty sets.
  // All three are inert when the seed shadow path is active.
  std::uint64_t progress_order{0};  ///< activation order, the pass sort key
  bool in_timed{false};             ///< on the proc's every-poll timed set
  bool in_dirty{false};             ///< marked for the next progress pass

  // ---- Reliable-transport state (ReliabilityConfig::enabled) ----
  // A send is sequence-numbered the first time it touches the wire; the
  // receiver ACKs (eager) or answers duplicate RTSs (rendezvous), and the
  // sender retransmits on timeout with exponential backoff. All fields stay
  // at their defaults when reliability is off, so the fault-free protocol
  // is bit-identical to the unreliable one.
  std::uint64_t seq{0};
  bool seq_assigned{false};
  TimeNs retrans_deadline{0};    ///< 0 = no retransmission armed
  DurationNs retrans_timeout{0};
  std::size_t retransmissions{0};
  bool rndv_matched{false};            ///< receiver already matched this RTS
  std::weak_ptr<Request> rndv_recv;    ///< the matched receive (receiver-set)
  std::shared_ptr<Request> rget_sender{};  ///< RGet recv: sender for re-reads
  gpu::MemSpan delivery_span{};        ///< recv: where packed bytes land
  net::PayloadRef host_staging;        ///< degraded host staging (alloc fail)
  // Eager wire capture, taken once when the payload first departs. A
  // retransmission bumps this ref instead of re-snapshotting the staging
  // buffer, so every attempt carries byte-identical data. Released on ACK
  // (or immediately after send when reliability is off).
  net::PayloadRef wire_payload;
  bool payload_captured{false};

  // Persistent-request support (MPI_Send_init / MPI_Recv_init):
  bool persistent{false};  ///< a reusable operation template
  bool active{false};      ///< started and not yet completed+waited

  /// Matching key check for receives (peer may be kAnySource, tag kAnyTag).
  bool matches(int src_rank, int msg_tag) const {
    return (peer == kAnySource || peer == src_rank) &&
           (tag == kAnyTag || tag == msg_tag);
  }
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace dkf::mpi
