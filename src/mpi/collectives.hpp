// Collective operations layered on the point-to-point runtime.
//
// The halo applications the paper targets use neighborhood collectives
// (MPI_Neighbor_alltoallw is exactly "send one derived-datatype face to
// each neighbor"), and the MVAPICH context the fusion framework ships in
// provides the full collective set. These implementations are textbook
// algorithms built purely on isend/irecv/waitall, so every collective's
// non-contiguous traffic automatically flows through the configured DDT
// engine — a neighbor_alltoallw over subarray types is the fusion
// framework's best case.
//
//   bcast            binomial tree
//   reduce           binomial tree (data actually reduced)
//   allreduce        reduce + bcast
//   gather           flat to root
//   alltoall         posted pairwise exchange
//   neighborAlltoallw  per-neighbor derived datatypes (halo collective)
//
// All take a `Comm`-like participant list: a contiguous range of ranks
// [0, nranks) of the runtime (the benchmarks' world).
#pragma once

#include <functional>
#include <vector>

#include "mpi/runtime.hpp"

namespace dkf::mpi {

/// Binary reduction operator over raw element bytes.
enum class ReduceOp { Sum, Min, Max };

/// Element type for reductions (the collective needs arithmetic, not just
/// bytes).
enum class ReduceType { Float64, Int64 };

/// Broadcast `count` elements of `type` from `root` over a binomial tree.
/// Every rank calls this with its own proc and buffer.
sim::Task<void> bcast(Proc& proc, gpu::MemSpan buf, ddt::DatatypePtr type,
                      std::size_t count, int root, int tag_base = 1 << 20);

/// Reduce element-wise into root's buffer (binomial tree). `buf` holds the
/// rank's contribution on entry; on the root it holds the result on exit.
sim::Task<void> reduce(Proc& proc, gpu::MemSpan buf, std::size_t count,
                       ReduceType type, ReduceOp op, int root,
                       int tag_base = 1 << 21);

/// Allreduce = reduce to rank 0 + bcast.
sim::Task<void> allreduce(Proc& proc, gpu::MemSpan buf, std::size_t count,
                          ReduceType type, ReduceOp op,
                          int tag_base = 1 << 22);

/// Gather `bytes_per_rank` from every rank into root's `recv` buffer
/// (rank-major).
sim::Task<void> gather(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                       std::size_t bytes_per_rank, int root,
                       int tag_base = 1 << 23);

/// All ranks exchange `bytes_per_rank` with every other rank; `send` and
/// `recv` are rank-major matrices of worldSize() blocks.
sim::Task<void> alltoall(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                         std::size_t bytes_per_rank, int tag_base = 1 << 24);

/// Neighborhood alltoall-w: for each neighbor i, send `send_types[i]` from
/// `buf` and receive `recv_types[i]` into `buf` — the derived-datatype halo
/// collective (MPI_Neighbor_alltoallw over a cartesian communicator). Tags
/// pair send i with the neighbor's recv pair_of[i].
struct NeighborOp {
  int neighbor;
  ddt::DatatypePtr send_type;
  ddt::DatatypePtr recv_type;
  int send_tag;
  int recv_tag;
};
sim::Task<void> neighborAlltoallw(Proc& proc, gpu::MemSpan buf,
                                  const std::vector<NeighborOp>& ops,
                                  int tag_base = 1 << 25);

}  // namespace dkf::mpi
