// Fusion-aware collective operations layered on the point-to-point runtime.
//
// The halo applications the paper targets use neighborhood collectives
// (MPI_Neighbor_alltoallw is exactly "send one derived-datatype face to
// each neighbor"), and the MVAPICH context the fusion framework ships in
// provides the full collective set. The v-collectives here route derived-
// datatype traffic over selectable topologies (MODEL.md §12):
//
//   flat   direct sends to every peer (the seed's textbook algorithms)
//   ring   staged pairwise/ring exchange, two messages in flight per step
//   tree   k-ary range tree (gather/bcast) or radix-digit store-and-forward
//          (alltoallv), pinned child order = increasing rank
//
// The pack/unpack stage of every hop is compiled once per distinct layout
// signature through the PR 5 FusionPlan/PlanCache — collectives pre-resolve
// their block plans before the peer loop, so all destinations sharing a
// layout signature execute one cached CompiledPlan instead of re-running
// the solver per peer.
//
// Determinism: every reduction folds the ranks' raw contributions in
// absolute rank order 0..n-1 no matter which topology carried them, so
// Float64 results are byte-identical across flat/ring/tree and across
// sweep threads (FP addition is non-associative; a topology-shaped combine
// order would make the algorithms disagree in the last ulp).
//
// Tags: each collective invocation reserves a fresh tag span from
// Proc::allocCollectiveTags — no fixed `1 << 2x` bases, so concurrent
// collectives at large rank counts cannot collide (the seed's allreduce
// overflowed its reduce phase into its bcast phase past ~2k ranks).
//
// All take a `Comm`-like participant list: a contiguous range of ranks
// [0, nranks) of the runtime (the benchmarks' world).
#pragma once

#include <functional>
#include <vector>

#include "mpi/runtime.hpp"

namespace dkf::mpi {

/// Binary reduction operator over raw element bytes.
enum class ReduceOp { Sum, Min, Max };

/// Element type for reductions (the collective needs arithmetic, not just
/// bytes).
enum class ReduceType { Float64, Int64 };

/// Which topology a collective routes over.
enum class CollAlgo { Flat, Ring, Tree };

const char* collAlgoName(CollAlgo algo);

/// Per-invocation algorithm selection. `radix` is the tree fan-out (k-ary
/// range tree for gather/bcast-shaped collectives, digit base for the
/// store-and-forward alltoallv); it must be >= 2 and is ignored by the
/// flat and ring variants.
struct CollTuning {
  CollAlgo algo{CollAlgo::Tree};
  int radix{2};
};

/// One rank's slice of a v-collective buffer: `count` elements of `type`
/// starting `offset` bytes into the buffer. The layout's extent must fit
/// inside the buffer and may not reach below the offset (minOffset >= 0).
struct VBlock {
  ddt::DatatypePtr type;
  std::size_t count{1};
  std::size_t offset{0};
};

/// Broadcast `count` elements of `type` from `root` over a binomial tree.
/// Every rank calls this with its own proc and buffer.
sim::Task<void> bcast(Proc& proc, gpu::MemSpan buf, ddt::DatatypePtr type,
                      std::size_t count, int root);

/// Reduce element-wise into root's buffer. `buf` holds the rank's
/// contribution on entry; on the root it holds the result on exit (other
/// ranks' buffers are left untouched). The combine folds contributions in
/// absolute rank order regardless of `tuning`.
sim::Task<void> reduce(Proc& proc, gpu::MemSpan buf, std::size_t count,
                       ReduceType type, ReduceOp op, int root,
                       const CollTuning& tuning = {});

/// Allreduce over contiguous elements; result lands on every rank.
sim::Task<void> allreduce(Proc& proc, gpu::MemSpan buf, std::size_t count,
                          ReduceType type, ReduceOp op,
                          const CollTuning& tuning = {});

/// Derived-datatype allreduce: the elements selected by (type, count) over
/// `buf` — packed order — are reduced element-wise across ranks and the
/// result is scattered back through the same layout. The packed size must
/// be a whole number of `elem` elements.
sim::Task<void> allreduceDdt(Proc& proc, gpu::MemSpan buf,
                             ddt::DatatypePtr type, std::size_t count,
                             ReduceType elem, ReduceOp op,
                             const CollTuning& tuning = {});

/// Gather `bytes_per_rank` from every rank into root's `recv` buffer
/// (rank-major).
sim::Task<void> gather(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                       std::size_t bytes_per_rank, int root);

/// All ranks exchange `bytes_per_rank` with every other rank; `send` and
/// `recv` are rank-major matrices of worldSize() blocks.
sim::Task<void> alltoall(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                         std::size_t bytes_per_rank);

/// Derived-datatype alltoallv: send_blocks[d] describes the block this
/// rank sends to rank d inside `send`; recv_blocks[s] describes where the
/// block from rank s lands inside `recv` (both vectors are worldSize()
/// long; the self block is moved locally through the same pack/unpack
/// plans). Matching blocks must have equal packed sizes.
sim::Task<void> alltoallv(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                          const std::vector<VBlock>& send_blocks,
                          const std::vector<VBlock>& recv_blocks,
                          const CollTuning& tuning = {});

/// Derived-datatype allgatherv: every rank contributes the block
/// `blocks[rank]` read from its own `send` buffer, and every rank's `recv`
/// buffer receives all n contributions, each unpacked through its own
/// blocks[r] (identical send/recv type maps; `blocks` is worldSize() long
/// and identical on every rank, so all block sizes are locally known).
sim::Task<void> allgatherv(Proc& proc, gpu::MemSpan send, gpu::MemSpan recv,
                           const std::vector<VBlock>& blocks,
                           const CollTuning& tuning = {});

/// Neighborhood alltoall-w: for each neighbor i, send `send_types[i]` from
/// `buf` and receive `recv_types[i]` into `buf` — the derived-datatype halo
/// collective (MPI_Neighbor_alltoallw over a cartesian communicator). Tags
/// pair send i with the neighbor's recv pair_of[i].
struct NeighborOp {
  int neighbor;
  ddt::DatatypePtr send_type;
  ddt::DatatypePtr recv_type;
  int send_tag;
  int recv_tag;
};
sim::Task<void> neighborAlltoallw(Proc& proc, gpu::MemSpan buf,
                                  const std::vector<NeighborOp>& ops);

}  // namespace dkf::mpi
