// Pooled allocation for Request control blocks.
//
// makeRequest used to be one std::make_shared<Request> heap allocation per
// message. allocate_shared through this allocator recycles the combined
// (control block + Request) blocks on a per-Proc free list instead: the
// block size is fixed for a given libstdc++, so after the first window the
// steady state allocates nothing. The allocator state is shared_ptr-owned
// because shared_ptr control blocks embed an allocator copy that must stay
// valid until the last weak_ptr dies — potentially after the Proc itself
// (Request::rndv_recv weak refs).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace dkf::mpi::detail {

/// One size's worth of recycled blocks. Only the allocate_shared<Request>
/// block size flows through in practice; anything else (e.g. a weak-count
/// side allocation on an exotic library) falls through to the allocator.
struct ArenaBlocks {
  std::size_t block_size{0};  ///< recorded on first allocation
  std::vector<void*> free_blocks;
  std::size_t max_cached{1u << 16};
  std::size_t heap_allocs{0};
  std::size_t reuses{0};

  ~ArenaBlocks() {
    for (void* p : free_blocks) ::operator delete(p);
  }
};

template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(std::shared_ptr<ArenaBlocks> s)
      : state_(std::move(s)) {}

  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& o) : state_(o.state_) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    ArenaBlocks& st = *state_;
    // Free-listed blocks came from default-aligned operator new (the
    // deallocate path only caches those), so an over-aligned T must never
    // be served from the list even when the byte size matches.
    if constexpr (alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      if (st.block_size == 0) st.block_size = bytes;
      if (bytes == st.block_size && !st.free_blocks.empty()) {
        void* p = st.free_blocks.back();
        st.free_blocks.pop_back();
        ++st.reuses;
        return static_cast<T*>(p);
      }
    }
    ++st.heap_allocs;
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return static_cast<T*>(
          ::operator new(bytes, std::align_val_t(alignof(T))));
    } else {
      return static_cast<T*>(::operator new(bytes));
    }
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    ArenaBlocks& st = *state_;
    if constexpr (alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      if (bytes == st.block_size &&
          st.free_blocks.size() < st.max_cached) {
        try {
          st.free_blocks.push_back(p);
          return;
        } catch (...) {
          // fall through: the free list could not grow
        }
      }
      ::operator delete(p);
    } else {
      ::operator delete(p, std::align_val_t(alignof(T)));
    }
  }

  template <class U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return state_ == o.state_;
  }

  std::shared_ptr<ArenaBlocks> state_;
};

}  // namespace dkf::mpi::detail
