#include "mpi/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.hpp"
#include "schemes/solver.hpp"

namespace dkf::mpi {

// ---------------------------------------------------------------- Proc ----

Proc::Proc(Runtime& rt, int rank, gpu::Gpu& gpu)
    : rt_(&rt),
      rank_(rank),
      gpu_(&gpu),
      cpu_(std::make_unique<sim::CpuTimeline>(rt.engine())),
      layout_cache_(rt.config().layout_cache),
      plan_cache_(rt.config().plan_cache),
      request_arena_(std::make_shared<detail::ArenaBlocks>()) {
  core::FusionPolicy tuned;
  const RuntimeConfig& cfg = rt.config();
  if (cfg.tuned_threshold > 0) tuned.threshold_bytes = cfg.tuned_threshold;
  if (cfg.tuned_list_capacity > 0) tuned.list_capacity = cfg.tuned_list_capacity;
  if (cfg.tuned_max_requests > 0) {
    tuned.max_requests_per_kernel = cfg.tuned_max_requests;
  }
  if (cfg.weighted_fair_batching) {
    tuned.weighted_fair = true;
    tuned.tenant_weights = cfg.contention.weights;
    tuned.fair_quantum_bytes = cfg.contention.quantum_bytes;
  }
  engine_ = schemes::makeEngine(cfg.scheme, rt.engine(), *cpu_, gpu, tuned);
}

int Proc::worldSize() const { return rt_->worldSize(); }

sim::Engine& Proc::engine() { return rt_->engine(); }

const RuntimeConfig& Proc::config() const { return rt_->config(); }

net::PayloadPool& Proc::payloadPool() {
  return rt_->cluster().fabric().payloadPool();
}

int Proc::allocCollectiveTags(int span) {
  DKF_CHECK(span > 0);
  const int base = next_collective_tag_;
  DKF_CHECK_MSG(span <= std::numeric_limits<int>::max() - base,
                "collective tag space exhausted: next tag " << base
                    << " cannot reserve a span of " << span);
  next_collective_tag_ = base + span;
  return base;
}

gpu::MemSpan Proc::allocDevice(std::size_t bytes) {
  return gpu_->memory().allocate(bytes);
}

// ------------------------------------- multi-tenant serving plane ----

TenantStats& Proc::tenantState(TenantId t) {
  if (t >= tenant_stats_.size()) tenant_stats_.resize(t + 1);
  return tenant_stats_[t];
}

sim::Task<void> Proc::admitSend(const RequestPtr& req) {
  releaseSendToken(*req);  // persistent restart: drop any stale token
  const std::size_t limit = rt_->config().tenant_inflight_limit;
  if (limit > 0 && tenantState(req->tenant).inflight >= limit) {
    // Backpressure: the tenant's pending ring is full. Keep the progress
    // engine turning (completions free tokens) and re-check each poll.
    // Flush the DDT engine ONLY while this tenant has its own unlaunched
    // batched work — that work must reach the wire for its tokens to come
    // back. An unconditional flush here would let a throttled tenant
    // shatter every other tenant's kernel batching into per-request
    // launches: cross-tenant interference through the flush path.
    ++tenantState(req->tenant).throttle_waits;
    const TimeNs blocked_from = rt_->engine().now();
    while (tenantState(req->tenant).inflight >= limit) {
      co_await progressOnce();
      if (engine_->hasPendingFusedWork(req->tenant)) {
        co_await engine_->flush();
      }
      co_await engine().delay(rt_->config().poll_interval);
    }
    tenantState(req->tenant).throttled_ns +=
        rt_->engine().now() - blocked_from;
  }
  TenantStats& ts = tenantState(req->tenant);
  ++ts.admitted;
  ++ts.inflight;
  ts.peak_inflight = std::max(ts.peak_inflight, ts.inflight);
  req->counted_inflight = true;
}

void Proc::noteComplete(Request& req) {
  if (req.complete) return;
  req.complete = true;
  req.completed_at = rt_->engine().now();
}

void Proc::releaseSendToken(Request& req) {
  if (!req.counted_inflight) return;
  req.counted_inflight = false;
  TenantStats& ts = tenantState(req.tenant);
  DKF_CHECK(ts.inflight > 0);
  --ts.inflight;
}

void Proc::freeDevice(const gpu::MemSpan& span) {
  gpu_->memory().deallocate(span);
}

core::CompiledPlanPtr Proc::planFor(core::FusionOp op,
                                    const ddt::LayoutPtr& layout,
                                    const ddt::LayoutPtr& target_layout,
                                    TenantId tenant) {
  core::FusionPlan plan;
  switch (op) {
    case core::FusionOp::Packing:
      plan.addPack(layout);
      break;
    case core::FusionOp::Unpacking:
      plan.addUnpack(layout);
      break;
    case core::FusionOp::DirectIPC:
      plan.addStridedCopy(layout, target_layout);
      break;
  }
  return schemes::compilePlanCached(plan_cache_, plan, rt_->config().scheme,
                                    gpu_->nodeSpec(), tenant);
}

RequestPtr Proc::makeRequest(Request::Kind kind, gpu::MemSpan buf,
                             const ddt::DatatypePtr& type, std::size_t count,
                             int peer, int tag) {
  auto layout = layout_cache_.get(type, count);
  auto req = std::allocate_shared<Request>(
      detail::ArenaAllocator<Request>(request_arena_));
  req->kind = kind;
  req->owner_rank = rank_;
  req->peer = peer;
  req->tag = tag;
  req->user_buf = buf;
  req->layout = layout;
  req->data_bytes = layout->size();
  req->is_contiguous = layout->isContiguous() && layout->minOffset() == 0;
  req->tenant = current_tenant_;
  req->posted_at = rt_->engine().now();
  return req;
}

void Proc::resetActivationState(Request& req) {
  req.staging = {};
  req.staging_owned = false;
  req.eager_data.reset();
  req.seq = 0;
  req.seq_assigned = false;  // a restart is a new message -> new seq
  req.retrans_deadline = 0;
  req.retrans_timeout = 0;
  req.retransmissions = 0;
  req.rndv_matched = false;
  req.rndv_recv.reset();
  req.rget_sender.reset();
  req.delivery_span = {};
  req.host_staging.reset();
  req.wire_payload.reset();
  req.payload_captured = false;
  req.ticket = {};
  req.ticket_pending = false;
  req.pack_done = false;
  req.rts_sent = false;
  req.cts_received = false;
  req.data_in_flight = false;
  req.data_delivered = false;
  req.remote_staging = {};
  req.remote_layout = {};
  req.remote_origin = {};
  req.direct_retry = false;
  req.paired.reset();
  req.complete = false;
  req.completed_at = 0;
  // counted_inflight is deliberately left alone: the previous activation's
  // admission token is still held until its payload drains off the wire
  // (admitSend reconciles it).
}

sim::Task<void> Proc::activateSend(RequestPtr req) {
  co_await admitSend(req);
  const auto& machine = rt_->cluster().machine();
  const bool intra = rt_->sameNode(rank_, req->peer);

  if (!req->is_contiguous && intra && rt_->config().enable_direct_ipc &&
      engine_->supportsDirect()) {
    // Zero-copy path: no packing at all; the receiver pulls with a strided
    // kernel over NVLink ([24]). The RTS carries the layout handle.
    req->protocol = Protocol::DirectIpc;
    req->pack_done = true;
    issueRts(req);
  } else {
    if (req->is_contiguous) {
      req->staging = req->data_bytes > 0
                         ? req->user_buf.subspan(0, req->data_bytes)
                         : req->user_buf.subspan(0, 0);
      req->pack_done = true;
    } else {
      DKF_CHECK_MSG(req->user_buf.onDevice(),
                    "non-contiguous send buffers must be GPU-resident");
      req->staging = allocDevice(req->data_bytes);
      req->staging_owned = true;
      const auto plan =
          planFor(core::FusionOp::Packing, req->layout, nullptr, req->tenant);
      engine_->setActiveTenant(req->tenant);
      req->ticket = co_await engine_->submitPlanStep(
          *plan, 0, req->layout, nullptr, req->user_buf, req->staging);
      req->ticket_pending = true;
      if (engine_->done(req->ticket)) {
        req->ticket_pending = false;
        req->pack_done = true;
      } else {
        markTimed(req);  // poll the pack ticket every pass
      }
    }
    req->protocol = req->data_bytes <= machine.eager_threshold
                        ? Protocol::Eager
                        : rt_->config().rendezvous;
    if (req->protocol == Protocol::RPut) {
      // RPUT sends the RTS before the pack completes so the handshake
      // overlaps the packing kernel (§IV-B1).
      issueRts(req);
    }
    if (req->pack_done) {
      if (req->protocol == Protocol::Eager) {
        issueEagerData(req);
      } else if (req->protocol == Protocol::RGet) {
        issueRts(req);
      }
    }
  }
  registerActive(req);
}

sim::Task<void> Proc::activateRecv(RequestPtr req) {
  registerActive(req);
  // Unexpected-message queues first (arrival order preserved).
  net::PayloadRef data;
  if (unexpected_eager_.take(req->peer, req->tag, data)) {
    startEagerDelivery(req, std::move(data));
    co_return;
  }
  for (auto it = unexpected_rts_.begin(); it != unexpected_rts_.end(); ++it) {
    if (req->matches((*it)->owner_rank, (*it)->tag)) {
      RequestPtr sender_req = *it;
      unexpected_rts_.erase(it);
      startRendezvousDelivery(req, std::move(sender_req));
      co_return;
    }
  }
  posted_recvs_.post(req);
}

sim::Task<RequestPtr> Proc::isend(gpu::MemSpan buf, ddt::DatatypePtr type,
                                  std::size_t count, int dst, int tag) {
  DKF_CHECK(dst >= 0 && dst < worldSize());
  co_await cpu_->busy(rt_->config().call_overhead);
  auto req = makeRequest(Request::Kind::Send, buf, type, count, dst, tag);
  co_await activateSend(req);
  co_return req;
}

sim::Task<RequestPtr> Proc::irecv(gpu::MemSpan buf, ddt::DatatypePtr type,
                                  std::size_t count, int src, int tag) {
  DKF_CHECK(src == kAnySource || (src >= 0 && src < worldSize()));
  co_await cpu_->busy(rt_->config().call_overhead);
  auto req = makeRequest(Request::Kind::Recv, buf, type, count, src, tag);
  co_await activateRecv(req);
  co_return req;
}

sim::Task<std::vector<RequestPtr>> Proc::isendBatch(
    std::vector<SendSpec> specs) {
  // One MPI call overhead for the whole batch — the bulk front door. The
  // activations run back to back, so eager sends to one peer land on the
  // wire with contiguous engine keys (the shape LinkBatcher coalesces).
  co_await cpu_->busy(rt_->config().call_overhead);
  std::vector<RequestPtr> reqs;
  reqs.reserve(specs.size());
  for (const SendSpec& s : specs) {
    DKF_CHECK(s.peer >= 0 && s.peer < worldSize());
    auto req =
        makeRequest(Request::Kind::Send, s.buf, s.type, s.count, s.peer, s.tag);
    req->tenant = s.tenant;
    co_await activateSend(req);
    reqs.push_back(std::move(req));
  }
  co_return reqs;
}

sim::Task<std::vector<RequestPtr>> Proc::irecvBatch(
    std::vector<RecvSpec> specs) {
  co_await cpu_->busy(rt_->config().call_overhead);
  std::vector<RequestPtr> reqs;
  reqs.reserve(specs.size());
  for (const RecvSpec& s : specs) {
    DKF_CHECK(s.peer == kAnySource || (s.peer >= 0 && s.peer < worldSize()));
    auto req =
        makeRequest(Request::Kind::Recv, s.buf, s.type, s.count, s.peer, s.tag);
    req->tenant = s.tenant;
    co_await activateRecv(req);
    reqs.push_back(std::move(req));
  }
  co_return reqs;
}

sim::Task<RequestPtr> Proc::sendInit(gpu::MemSpan buf, ddt::DatatypePtr type,
                                     std::size_t count, int dst, int tag) {
  DKF_CHECK(dst >= 0 && dst < worldSize());
  co_await cpu_->busy(rt_->config().call_overhead);
  auto req = makeRequest(Request::Kind::Send, buf, type, count, dst, tag);
  req->persistent = true;
  co_return req;
}

sim::Task<RequestPtr> Proc::recvInit(gpu::MemSpan buf, ddt::DatatypePtr type,
                                     std::size_t count, int src, int tag) {
  DKF_CHECK(src == kAnySource || (src >= 0 && src < worldSize()));
  co_await cpu_->busy(rt_->config().call_overhead);
  auto req = makeRequest(Request::Kind::Recv, buf, type, count, src, tag);
  req->persistent = true;
  co_return req;
}

sim::Task<void> Proc::start(RequestPtr req) {
  DKF_CHECK_MSG(req->persistent, "start() requires a persistent request");
  DKF_CHECK_MSG(!req->active, "persistent request started twice");
  // Starting skips argument validation and layout lookup: cheaper than a
  // fresh isend/irecv (half the per-call bookkeeping).
  co_await cpu_->busy(rt_->config().call_overhead / 2);
  resetActivationState(*req);
  req->active = true;
  if (req->kind == Request::Kind::Send) {
    co_await activateSend(req);
  } else {
    co_await activateRecv(req);
  }
}

sim::Task<void> Proc::startall(const std::vector<RequestPtr>& reqs) {
  for (const RequestPtr& req : reqs) {
    co_await start(req);
  }
}

RequestPtr Proc::matchPosted(int src_rank, int msg_tag) {
  return posted_recvs_.match(src_rank, msg_tag);
}

// ------------------------------------------------- reliable transport ----

bool Proc::reliabilityOn() const { return rt_->config().reliability.enabled; }

void Proc::armRetrans(const RequestPtr& req) {
  if (!reliabilityOn()) return;
  const ReliabilityConfig& rc = rt_->config().reliability;
  if (req->retrans_timeout == 0) req->retrans_timeout = rc.base_timeout;
  req->retrans_deadline = rt_->engine().now() + req->retrans_timeout;
  markTimed(req);
}

bool Proc::retransDue(Request& req) {
  if (!reliabilityOn() || req.retrans_deadline == 0) return false;
  if (rt_->engine().now() < req.retrans_deadline) return false;
  const ReliabilityConfig& rc = rt_->config().reliability;
  DKF_CHECK_MSG(req.retransmissions < rc.max_retries,
                "transport gave up: rank " << rank_ << " -> " << req.peer
                    << " tag " << req.tag << " seq " << req.seq
                    << " still undelivered after " << req.retransmissions
                    << " retransmissions");
  ++req.retransmissions;
  ++transport_.retransmissions;
  req.retrans_timeout = std::min<DurationNs>(
      static_cast<DurationNs>(static_cast<double>(req.retrans_timeout) *
                              rc.backoff),
      rc.max_timeout);
  req.retrans_deadline = rt_->engine().now() + req.retrans_timeout;
  return true;
}

gpu::MemSpan Proc::allocStaging(Request& req, std::size_t bytes) {
  gpu::MemSpan span = gpu_->memory().tryAllocate(bytes);
  if (span.size() == bytes) {
    req.staging = span;
    req.staging_owned = true;
    return span;
  }
  // Device arena refused (exhausted or injected failure): degrade to host
  // staging. Unpack still works — the DDT engines accept host spans — it
  // just loses the GPU-resident fast path. allocate() is always
  // slab-backed, so the span's address is stable for the ref's lifetime.
  ++transport_.host_staging_fallbacks;
  req.host_staging = payloadPool().allocate(bytes);
  req.staging = gpu::MemSpan::host(req.host_staging.span());
  req.staging_owned = false;
  return req.staging;
}

void Proc::sendEagerOnWire(const RequestPtr& req) {
  Runtime* rt = rt_;
  const int src_rank = rank_;
  const int dst_rank = req->peer;
  const int tag = req->tag;
  const std::uint64_t seq = req->seq;
  // Capture the payload exactly once, on the first wire departure. A
  // retransmission re-enters here and bumps the original capture's
  // refcount instead of re-snapshotting the staging buffer, so every
  // attempt carries byte-identical data.
  if (!req->payload_captured) {
    req->wire_payload = payloadPool().capture(
        {req->staging.bytes.data(), req->staging.size()});
    req->payload_captured = true;
  }
  rt->cluster().fabric().sendPayload(
      rt->nodeOfRank(src_rank), rt->nodeOfRank(dst_rank), req->staging,
      req->wire_payload,  // lvalue: the send copies (ref bump), req keeps one
      [rt, src_rank, dst_rank, tag, seq, req](net::PayloadRef data) {
        // The payload has drained off the wire: the sender's admission
        // token frees even though the send itself completed at issue.
        rt->proc(src_rank).releaseSendToken(*req);
        rt->proc(dst_rank).onEager(src_rank, tag, seq, req, std::move(data));
      },
      req->tenant);
  if (!reliabilityOn()) {
    // No ACK is coming; the wire closure holds the only ref still needed.
    req->wire_payload.reset();
  }
}

void Proc::sendRtsOnWire(const RequestPtr& req) {
  Runtime* rt = rt_;
  const int dst_rank = req->peer;
  rt->cluster().fabric().sendControl(
      rt->nodeOfRank(rank_), rt->nodeOfRank(dst_rank),
      [rt, dst_rank, req] { rt->proc(dst_rank).onRts(req); }, req->tenant);
}

// --------------------------------------------------------------------------

// Plain functions (they only push bytes on the wire and flip flags): the
// activation and progress paths call them frame-free.
void Proc::issueEagerData(const RequestPtr& req) {
  if (!req->seq_assigned) {
    req->seq = next_seq_++;
    req->seq_assigned = true;
  }
  sendEagerOnWire(req);
  req->data_in_flight = true;
  if (reliabilityOn()) {
    // Completion is deferred to the ACK; the wire capture (wire_payload)
    // survives so a retransmission is a ref bump, not a re-snapshot.
    armRetrans(req);
    return;
  }
  // Eager sends complete locally: the payload was captured on the wire.
  // (The admission token stays held until the delivery callback runs.)
  if (req->staging_owned) {
    freeDevice(req->staging);
    req->staging_owned = false;
  }
  noteComplete(*req);
}

void Proc::issueRts(const RequestPtr& req) {
  req->rts_sent = true;
  if (!req->seq_assigned) {
    req->seq = next_seq_++;
    req->seq_assigned = true;
  }
  sendRtsOnWire(req);
  armRetrans(req);
}

void Proc::onEager(int src_rank, int msg_tag, std::uint64_t seq,
                   RequestPtr sender_req, net::PayloadRef data) {
  if (reliabilityOn()) {
    // Always ACK, even duplicates: the sender retransmitting means our
    // previous ACK was lost (or still in flight), and dup ACKs are ignored.
    Runtime* rt = rt_;
    const int sender_rank = src_rank;
    rt->cluster().fabric().sendControl(
        rt->nodeOfRank(rank_), rt->nodeOfRank(sender_rank),
        [rt, sender_rank, sender_req] {
          rt->proc(sender_rank).onEagerAck(sender_req);
        },
        sender_req->tenant);
    ++transport_.acks_sent;
    if (!eager_seen_[src_rank].insert(seq).second) {
      ++transport_.duplicates_ignored;
      return;
    }
  }
  RequestPtr recv = matchPosted(src_rank, msg_tag);
  if (!recv) {
    unexpected_eager_.push(src_rank, msg_tag, std::move(data));
    return;
  }
  startEagerDelivery(std::move(recv), std::move(data));
}

void Proc::onEagerAck(RequestPtr sender_req) {
  if (sender_req->complete) {
    ++transport_.duplicates_ignored;
    return;
  }
  if (sender_req->staging_owned) {
    freeDevice(sender_req->staging);
    sender_req->staging_owned = false;
  }
  sender_req->wire_payload.reset();  // no further retransmissions
  sender_req->retrans_deadline = 0;
  releaseSendToken(*sender_req);
  noteComplete(*sender_req);
}

void Proc::startEagerDelivery(RequestPtr recv, net::PayloadRef data) {
  DKF_CHECK_MSG(data.size() <= recv->data_bytes,
                "eager message longer than the posted receive ("
                    << data.size() << " > " << recv->data_bytes << ")");
  if (recv->is_contiguous) {
    std::memcpy(recv->user_buf.bytes.data(), data.data(), data.size());
    noteComplete(*recv);
    return;
  }
  // Park the payload ref in the request and unpack through the DDT engine
  // straight out of the shared slab (read-only; the sender may hold a
  // retransmission ref to the same bytes).
  recv->eager_data = std::move(data);
  Proc* self = this;
  engine().spawn([](Proc& p, RequestPtr r) -> sim::Task<void> {
    const gpu::MemSpan packed = gpu::MemSpan::host(r->eager_data.span());
    const auto plan = p.planFor(core::FusionOp::Unpacking, r->layout,
                                nullptr, r->tenant);
    p.engine_->setActiveTenant(r->tenant);
    r->ticket = co_await p.engine_->submitPlanStep(*plan, 0, r->layout,
                                                   nullptr, packed,
                                                   r->user_buf);
    r->ticket_pending = true;
    if (p.engine_->done(r->ticket)) {
      r->ticket_pending = false;
      r->eager_data.reset();
      p.noteComplete(*r);
    } else {
      p.markTimed(r);  // poll the unpack ticket every pass
    }
  }(*self, std::move(recv)));
}

void Proc::onRts(RequestPtr sender_req) {
  if (reliabilityOn()) {
    if (sender_req->complete) {
      ++transport_.duplicates_ignored;
      return;
    }
    if (sender_req->rndv_matched) {
      ++transport_.duplicates_ignored;
      answerDuplicateRts(sender_req);
      return;
    }
    for (const RequestPtr& queued : unexpected_rts_) {
      if (queued == sender_req) {  // retransmitted before we matched it
        ++transport_.duplicates_ignored;
        return;
      }
    }
  }
  RequestPtr recv = matchPosted(sender_req->owner_rank, sender_req->tag);
  if (!recv) {
    unexpected_rts_.push_back(std::move(sender_req));
    return;
  }
  startRendezvousDelivery(std::move(recv), std::move(sender_req));
}

void Proc::answerDuplicateRts(const RequestPtr& sender_req) {
  Runtime* rt = rt_;
  const int my_node = rt->nodeOfRank(rank_);
  const int sender_node = rt->nodeOfRank(sender_req->owner_rank);
  const int sender_rank = sender_req->owner_rank;
  const RequestPtr prior = sender_req->rndv_recv.lock();
  switch (sender_req->protocol) {
    case Protocol::RPut:
      if (prior && !prior->data_delivered) {
        // The CTS was lost: repeat the staging address.
        const gpu::MemSpan dst = prior->delivery_span;
        rt->cluster().fabric().sendControl(
            my_node, sender_node,
            [rt, sender_rank, sender_req, dst] {
              rt->proc(sender_rank).onCts(sender_req, dst);
            },
            sender_req->tenant);
      }
      break;
    case Protocol::RGet:
      if (!prior || prior->data_delivered) {
        // The data landed but the FIN was lost: repeat it. (An expired
        // weak_ptr means the receive retired long ago.)
        rt->cluster().fabric().sendControl(
            my_node, sender_node,
            [rt, sender_rank, sender_req] {
              rt->proc(sender_rank).onFin(sender_req);
            },
            sender_req->tenant);
      }
      break;
    case Protocol::DirectIpc:
      if (!prior || prior->complete) {
        rt->cluster().fabric().sendControl(
            my_node, sender_node,
            [rt, sender_rank, sender_req] {
              rt->proc(sender_rank).onFin(sender_req);
            },
            sender_req->tenant);
      }
      break;
    case Protocol::Eager:
      break;  // eager never sends an RTS
  }
}

void Proc::startRendezvousDelivery(RequestPtr recv, RequestPtr sender_req) {
  DKF_CHECK(sender_req->data_bytes <= recv->data_bytes);
  Runtime* rt = rt_;
  const int my_node = rt->nodeOfRank(rank_);
  const int sender_node = rt->nodeOfRank(sender_req->owner_rank);

  if (reliabilityOn()) {
    sender_req->rndv_matched = true;
    sender_req->rndv_recv = recv;
  }

  switch (sender_req->protocol) {
    case Protocol::DirectIpc: {
      recv->remote_layout = sender_req->layout;
      recv->remote_origin = sender_req->user_buf;
      recv->paired = sender_req;
      recv->direct_retry = true;  // progress loop performs the enqueue
      markDirty(recv);
      break;
    }
    case Protocol::RGet: {
      if (recv->is_contiguous) {
        recv->delivery_span = recv->user_buf.subspan(0, sender_req->data_bytes);
      } else {
        recv->delivery_span = allocStaging(*recv, sender_req->data_bytes);
      }
      recv->rget_sender = sender_req;  // kept for timed-out re-reads
      armRetrans(recv);
      issueRgetRead(recv, sender_req);
      break;
    }
    case Protocol::RPut: {
      if (recv->is_contiguous) {
        recv->delivery_span = recv->user_buf.subspan(0, sender_req->data_bytes);
      } else {
        recv->delivery_span = allocStaging(*recv, sender_req->data_bytes);
      }
      // CTS hands the sender our staging address; the sender RDMA-WRITEs
      // once its packing finished (overlap with the handshake, §IV-B1).
      const int sender_rank = sender_req->owner_rank;
      sender_req->paired = recv;
      const gpu::MemSpan dst = recv->delivery_span;
      rt->cluster().fabric().sendControl(
          my_node, sender_node,
          [rt, sender_rank, sender_req, dst] {
            rt->proc(sender_rank).onCts(sender_req, dst);
          },
          sender_req->tenant);
      break;
    }
    case Protocol::Eager:
      DKF_CHECK_MSG(false, "eager messages do not use rendezvous delivery");
  }
}

void Proc::issueRgetRead(const RequestPtr& recv, const RequestPtr& sender_req) {
  Runtime* rt = rt_;
  Proc* self = this;
  const int my_node = rt->nodeOfRank(rank_);
  const int sender_node = rt->nodeOfRank(sender_req->owner_rank);
  rt->cluster().fabric().rdmaRead(
      my_node, sender_node, sender_req->staging, recv->delivery_span,
      [self, rt, recv, sender_req, my_node, sender_node] {
        if (recv->data_delivered) return;  // a retried read already landed
        recv->data_delivered = true;
        recv->rget_sender.reset();
        recv->retrans_deadline = 0;
        // FIN releases the sender's packed buffer.
        const int sender_rank = sender_req->owner_rank;
        rt->cluster().fabric().sendControl(
            my_node, sender_node,
            [rt, sender_rank, sender_req] {
              rt->proc(sender_rank).onFin(sender_req);
            },
            sender_req->tenant);
        self->finishRecvData(recv);
      },
      [recv] { return !recv->data_delivered; }, sender_req->tenant);
}

void Proc::issueRputData(const RequestPtr& req) {
  Runtime* rt = rt_;
  Proc* self = this;
  RequestPtr recv = req->paired;
  Proc* receiver = &rt->proc(req->peer);
  rt->cluster().fabric().rdmaWrite(
      rt->nodeOfRank(rank_), rt->nodeOfRank(req->peer), req->staging,
      req->remote_staging, [self, req, recv, receiver] {
        // Delivery: sender may release; receiver unpacks.
        if (req->data_delivered) return;  // a retried write already landed
        req->data_delivered = true;
        self->markDirty(req);  // sender's completion block runs next pass
        if (recv) {
          recv->data_delivered = true;
          receiver->finishRecvData(recv);
        }
      },
      [req] { return !req->data_delivered; }, req->tenant);
}

void Proc::onCts(RequestPtr sender_req, gpu::MemSpan recv_staging) {
  if (sender_req->cts_received) {  // duplicate from an answered dup-RTS
    ++transport_.duplicates_ignored;
    return;
  }
  sender_req->cts_received = true;
  sender_req->remote_staging = recv_staging;
  // Fresh backoff for the data phase.
  sender_req->retrans_deadline = 0;
  sender_req->retrans_timeout = 0;
  markDirty(sender_req);  // the data phase can start on the next pass
}

void Proc::onFin(RequestPtr sender_req) {
  if (sender_req->complete) {  // duplicate from an answered dup-RTS
    ++transport_.duplicates_ignored;
    return;
  }
  if (sender_req->staging_owned) {
    freeDevice(sender_req->staging);
    sender_req->staging_owned = false;
  }
  sender_req->paired.reset();
  sender_req->retrans_deadline = 0;
  releaseSendToken(*sender_req);
  noteComplete(*sender_req);
}

void Proc::finishRecvData(RequestPtr recv) {
  if (recv->is_contiguous) {
    noteComplete(*recv);
    return;
  }
  Proc* self = this;
  engine().spawn([](Proc& p, RequestPtr r) -> sim::Task<void> {
    const auto plan = p.planFor(core::FusionOp::Unpacking, r->layout,
                                nullptr, r->tenant);
    p.engine_->setActiveTenant(r->tenant);
    r->ticket = co_await p.engine_->submitPlanStep(*plan, 0, r->layout,
                                                   nullptr, r->staging,
                                                   r->user_buf);
    r->ticket_pending = true;
    if (p.engine_->done(r->ticket)) {
      r->ticket_pending = false;
      p.releaseRecvStaging(*r);
      p.noteComplete(*r);
    } else {
      p.markTimed(r);  // poll the unpack ticket every pass
    }
  }(*self, std::move(recv)));
}

void Proc::releaseRecvStaging(Request& r) {
  if (r.staging_owned) {
    freeDevice(r.staging);
    r.staging_owned = false;
  }
  r.eager_data.reset();
  r.host_staging.reset();
  r.delivery_span = {};
}

sim::Task<void> Proc::tryDirect(RequestPtr recv) {
  const auto plan = planFor(core::FusionOp::DirectIPC, recv->remote_layout,
                            recv->layout, recv->tenant);
  engine_->setActiveTenant(recv->tenant);
  const auto t = co_await engine_->submitPlanStep(
      *plan, 0, recv->remote_layout, recv->layout, recv->remote_origin,
      recv->user_buf);
  if (!t.valid()) {
    recv->direct_retry = true;  // request list full: retry on next pass
    markDirty(recv);
    co_return;
  }
  recv->ticket = t;
  recv->ticket_pending = true;
  markTimed(recv);
}

void Proc::finishTicketedRecv(const RequestPtr& req) {
  // Unpack or DirectIPC finished: the receive is done.
  releaseRecvStaging(*req);
  if (req->paired) {
    // DirectIPC: tell the sender its buffer is consumed.
    Runtime* rt = rt_;
    RequestPtr sender_req = std::move(req->paired);
    req->paired.reset();
    const int sender_rank = sender_req->owner_rank;
    rt->cluster().fabric().sendControl(
        rt->nodeOfRank(rank_), rt->nodeOfRank(sender_rank),
        [rt, sender_rank, sender_req] {
          rt->proc(sender_rank).onFin(sender_req);
        },
        sender_req->tenant);
  }
  noteComplete(*req);
}

sim::Task<void> Proc::progressRequest(RequestPtr req) {
  if (req->complete) co_return;

  if (req->ticket_pending && engine_->done(req->ticket)) {
    req->ticket_pending = false;
    if (req->kind == Request::Kind::Send) {
      req->pack_done = true;
    } else {
      finishTicketedRecv(req);
      co_return;
    }
  }

  if (req->kind == Request::Kind::Send && req->pack_done) {
    switch (req->protocol) {
      case Protocol::Eager:
        if (!req->data_in_flight) {
          issueEagerData(req);
        } else if (!req->complete && retransDue(*req)) {
          sendEagerOnWire(req);  // un-ACKed: back on the wire
        }
        break;
      case Protocol::RGet:
        if (!req->rts_sent) {
          issueRts(req);
        } else if (!req->complete && retransDue(*req)) {
          sendRtsOnWire(req);  // RTS (or its FIN) was lost
        }
        break;
      case Protocol::RPut:
        if (!req->cts_received) {
          if (req->rts_sent && retransDue(*req)) sendRtsOnWire(req);
        } else if (!req->data_in_flight) {
          req->data_in_flight = true;
          issueRputData(req);
          armRetrans(req);  // data phase gets its own (fresh) backoff
        } else if (!req->data_delivered && retransDue(*req)) {
          issueRputData(req);  // the RDMA write was dropped
        }
        if (req->data_delivered && !req->complete) {
          if (req->staging_owned) {
            freeDevice(req->staging);
            req->staging_owned = false;
          }
          req->paired.reset();
          req->retrans_deadline = 0;
          releaseSendToken(*req);
          noteComplete(*req);
        }
        break;
      case Protocol::DirectIpc:
        // Receiver-driven; FIN completes us. A lost RTS or FIN surfaces as
        // a timeout here, and the receiver answers duplicates idempotently.
        if (!req->complete && retransDue(*req)) sendRtsOnWire(req);
        break;
    }
  } else if (req->kind == Request::Kind::Recv) {
    if (req->direct_retry) {
      req->direct_retry = false;
      co_await tryDirect(req);
    } else if (req->rget_sender && !req->data_delivered &&
               retransDue(*req)) {
      issueRgetRead(req, req->rget_sender);  // the RDMA read was dropped
    }
  }
}

sim::Task<void> Proc::progressSlow(RequestPtr req) {
  // The one genuinely suspending progress action: the DirectIPC enqueue
  // submits through the DDT engine. Mirrors the recv arm of the seed path.
  if (req->direct_retry) {
    req->direct_retry = false;
    co_await tryDirect(req);
  }
}

void Proc::registerActive(const RequestPtr& req) {
  req->progress_order = next_progress_order_++;
  if (req->complete) return;
  if (active_.size() >= sweep_watermark_) {
    // Amortized O(1) per activation: handler-completed requests linger in
    // active_ until the list doubles, keeping residency within 2x of live.
    std::erase_if(active_, [](const RequestPtr& r) { return r->complete; });
    sweep_watermark_ = std::max<std::size_t>(64, active_.size() * 2);
  }
  active_.push_back(req);
}

void Proc::markDirty(const RequestPtr& req) {
  if (!rt_->config().batched_message_plane) return;  // shadow never reads it
  if (req->complete || req->in_dirty) return;
  req->in_dirty = true;
  dirty_.push_back(req);
}

void Proc::markTimed(const RequestPtr& req) {
  if (!rt_->config().batched_message_plane) return;  // shadow never reads it
  if (req->complete || req->in_timed) return;
  req->in_timed = true;
  timed_.push_back(req);
}

sim::Task<void> Proc::progressPass() {
  // Capture this pass's candidates up front; marks arriving mid-pass (only
  // possible across a DirectIPC suspension) land in a fresh dirty_ and are
  // picked up by the next pass.
  pass_scratch_.assign(timed_.begin(), timed_.end());
  bool slow = false;
  for (const RequestPtr& r : pass_scratch_) {
    slow |= !r->complete && r->direct_retry;
  }
  for (RequestPtr& r : dirty_) {
    r->in_dirty = false;
    slow |= !r->complete && r->direct_retry;
    if (!r->in_timed) pass_scratch_.push_back(std::move(r));
  }
  dirty_.clear();

  if (slow) {
    // A DirectIPC enqueue suspends, and flag flips arriving across the
    // suspension must stay visible to requests advanced later in the same
    // pass — exactly the seed's snapshot semantics, so scan like the seed:
    // every active request, activation order, index bound at entry
    // (activations during the suspension wait a pass). Completed-but-
    // unswept entries return from advance() immediately and emit nothing.
    const std::size_t bound = active_.size();
    for (std::size_t i = 0; i < bound; ++i) {
      if (!MsgPlane::advance(*this, active_[i])) {
        RequestPtr req = active_[i];  // pin across the suspension
        co_await progressSlow(req);
      }
    }
  } else {
    // Pure table pass, fully synchronous: no suspension can interleave an
    // event, so the candidate set is complete and classification is
    // stable. Activation order keeps the emitted action stream identical
    // to the seed's full scan (every skipped request is a proven no-op).
    std::sort(pass_scratch_.begin(), pass_scratch_.end(),
              [](const RequestPtr& a, const RequestPtr& b) {
                return a->progress_order < b->progress_order;
              });
    for (const RequestPtr& req : pass_scratch_) {
      const bool fast = MsgPlane::advance(*this, req);
      DKF_CHECK(fast);  // direct_retry would have forced the slow scan
    }
  }
  pass_scratch_.clear();
  std::erase_if(timed_, [](const RequestPtr& r) {
    const bool keep =
        !r->complete && (r->ticket_pending || r->retrans_deadline != 0);
    if (!keep) r->in_timed = false;
    return !keep;
  });
  std::erase_if(active_, [](const RequestPtr& r) { return r->complete; });
  sweep_watermark_ = std::max<std::size_t>(64, active_.size() * 2);
}

sim::Task<void> Proc::progressOnce() {
  co_await engine_->progress();
  if (rt_->config().batched_message_plane) {
    // Hot path: change-driven. Steady-state requests complete inside
    // fabric/engine handlers; a pass only runs while some request holds a
    // live ticket or armed deadline (timed_) or an event enabled an action
    // since the last poll (dirty_). An idle poll costs O(1).
    if (!timed_.empty() || !dirty_.empty()) co_await progressPass();
    co_return;
  }
  // Seed shadow: one coroutine frame per request per poll, iterating a
  // snapshot (handlers may append to active_) reused across polls so
  // steady-state polling does not allocate.
  progress_scratch_.assign(active_.begin(), active_.end());
  for (RequestPtr& req : progress_scratch_) {
    co_await progressRequest(req);
  }
  progress_scratch_.clear();
  std::erase_if(active_,
                [](const RequestPtr& r) { return r->complete; });
}

sim::Task<void> Proc::wait(RequestPtr req) {
  std::vector<RequestPtr> one{std::move(req)};
  co_await waitall(std::move(one));
}

sim::Task<void> Proc::waitall(std::vector<RequestPtr> reqs) {
  co_await cpu_->busy(rt_->config().call_overhead);
  // Completion is sticky while waiting, so resume the scan where the last
  // poll left off instead of rescanning the completed prefix every poll —
  // O(n + polls) amortized instead of O(n * polls) on deep windows.
  std::size_t cursor = 0;
  while (true) {
    co_await progressOnce();
    // Launch scenario 1 (§IV-C): the progress engine is out of work and
    // blocked at a synchronization point — flush batched operations now.
    co_await engine_->flush();
    while (cursor < reqs.size() && reqs[cursor]->complete) ++cursor;
    if (cursor == reqs.size()) {
      // Persistent requests become inactive (restartable) once waited.
      for (const RequestPtr& r : reqs) {
        if (r->persistent) r->active = false;
      }
      co_return;
    }
    co_await engine().delay(rt_->config().poll_interval);
  }
}

sim::Task<bool> Proc::test(RequestPtr req) {
  co_await cpu_->busy(rt_->config().call_overhead);
  co_await progressOnce();
  co_await engine_->flush();
  co_return req->complete;
}

sim::Task<bool> Proc::testall(const std::vector<RequestPtr>& reqs) {
  co_await cpu_->busy(rt_->config().call_overhead);
  co_await progressOnce();
  co_await engine_->flush();
  co_return std::all_of(reqs.begin(), reqs.end(),
                        [](const RequestPtr& r) { return r->complete; });
}

sim::Task<void> Proc::pack(gpu::MemSpan origin, ddt::DatatypePtr type,
                           std::size_t count, gpu::MemSpan packed) {
  co_await cpu_->busy(rt_->config().call_overhead);
  auto layout = layout_cache_.get(type, count);
  DKF_CHECK(packed.size() >= layout->size());
  const auto plan =
      planFor(core::FusionOp::Packing, layout, nullptr, current_tenant_);
  engine_->setActiveTenant(current_tenant_);
  const auto t = co_await engine_->submitPlanStep(*plan, 0, layout, nullptr,
                                                  origin, packed);
  while (!engine_->done(t)) {
    co_await engine_->flush();
    co_await engine().delay(rt_->config().poll_interval);
  }
}

sim::Task<void> Proc::unpack(gpu::MemSpan packed, gpu::MemSpan origin,
                             ddt::DatatypePtr type, std::size_t count) {
  co_await cpu_->busy(rt_->config().call_overhead);
  auto layout = layout_cache_.get(type, count);
  DKF_CHECK(packed.size() >= layout->size());
  const auto plan =
      planFor(core::FusionOp::Unpacking, layout, nullptr, current_tenant_);
  engine_->setActiveTenant(current_tenant_);
  const auto t = co_await engine_->submitPlanStep(*plan, 0, layout, nullptr,
                                                  packed, origin);
  while (!engine_->done(t)) {
    co_await engine_->flush();
    co_await engine().delay(rt_->config().poll_interval);
  }
}

sim::Task<void> Proc::barrier(std::size_t participants) {
  co_await cpu_->busy(rt_->config().call_overhead);
  Runtime& rt = *rt_;
  if (participants == 0) participants = static_cast<std::size_t>(rt.worldSize());
  const std::uint64_t gen = rt.barrier_generation_;
  if (++rt.barrier_waiting_ == participants) {
    rt.barrier_waiting_ = 0;
    ++rt.barrier_generation_;
    // Release wave: one fabric round-trip worth of latency.
    co_await engine().delay(2 * rt.cluster().machine().internode.latency);
    rt.barrier_cv_->notifyAll();
    co_return;
  }
  while (rt.barrier_generation_ == gen) {
    co_await rt.barrier_cv_->wait();
  }
}

// ------------------------------------------------------------- Runtime ----

Runtime::Runtime(hw::Cluster& cluster, RuntimeConfig config)
    : cluster_(&cluster), config_(config) {
  cluster.fabric().setDeliveryBatching(config_.delivery_batching);
  cluster.fabric().setBatchWindow(config_.msg_batch_window);
  if (config_.contention.enabled) {
    cluster.fabric().setContention(config_.contention);
  }
  barrier_cv_ = std::make_unique<sim::CondVar>(cluster.engine());
  const std::size_t ranks = cluster.gpuCount();
  procs_.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    procs_.push_back(
        std::make_unique<Proc>(*this, static_cast<int>(r), cluster.gpu(r)));
  }
}

Proc& Runtime::proc(int rank) {
  DKF_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < procs_.size());
  return *procs_[rank];
}

int Runtime::nodeOfRank(int rank) const {
  return cluster_->nodeOfGpu(static_cast<std::size_t>(rank));
}

void Runtime::runAll(const std::function<sim::Task<void>(Proc&)>& body) {
  for (auto& p : procs_) {
    engine().spawn(body(*p));
  }
  engine().run();
  // Payload-plane leak check: the engine has drained, so every delivery
  // closure has run and released its ref. Unless a payload is legitimately
  // parked awaiting a match (a send the application never received) or a
  // reliable send is still waiting for its ACK on an incomplete request,
  // a live pool buffer here means a dropped-on-the-floor PayloadRef.
  std::size_t parked = 0;
  for (auto& p : procs_) {
    parked += p->unexpected_eager_.size();
    parked += static_cast<std::size_t>(
        std::count_if(p->active_.begin(), p->active_.end(),
                      [](const RequestPtr& r) { return !r->complete; }));
  }
  if (parked == 0) cluster_->fabric().payloadPool().checkQuiescent();
}

TimeBreakdown Runtime::aggregateBreakdown() const {
  TimeBreakdown total;
  for (const auto& p : procs_) {
    total += p->engine_->breakdown();
  }
  return total;
}

}  // namespace dkf::mpi
