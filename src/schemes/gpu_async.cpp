#include "schemes/gpu_async.hpp"

namespace dkf::schemes {

namespace {
/// Injected launch failures (FaultPlan) are retried with doubling backoff.
constexpr std::size_t kMaxLaunchAttempts = 10;
constexpr DurationNs kLaunchRetryBackoff = us(2);
}  // namespace

GpuAsyncEngine::GpuAsyncEngine(sim::Engine& eng, sim::CpuTimeline& cpu,
                               gpu::Gpu& gpu, std::size_t streams)
    : eng_(&eng), cpu_(&cpu), gpu_(&gpu) {
  DKF_CHECK(streams > 0);
  streams_.reserve(streams);
  for (std::size_t i = 0; i < streams; ++i) {
    streams_.push_back(gpu.createStream());
  }
}

sim::Task<Ticket> GpuAsyncEngine::launchOne(gpu::Gpu::Op op) {
  ++submissions_;
  const gpu::Gpu::StreamId stream = streams_[next_stream_];
  next_stream_ = (next_stream_ + 1) % streams_.size();

  // Kernel launch (full overhead) ...
  gpu::Gpu::KernelHandle handle;
  for (std::size_t attempt = 0;; ++attempt) {
    co_await cpu_->busy(gpu_->spec().kernel_launch_overhead);
    breakdown_.launching += gpu_->spec().kernel_launch_overhead;
    std::vector<gpu::Gpu::Op> ops;
    ops.push_back(op.clone());
    handle = gpu_->launchKernel(stream, std::move(ops));
    if (!handle.failed) break;
    DKF_CHECK_MSG(attempt + 1 < kMaxLaunchAttempts,
                  "GPU-Async kernel launch failed " << kMaxLaunchAttempts
                                                    << " times in a row");
    co_await eng_->delay(kLaunchRetryBackoff << attempt);
  }
  breakdown_.pack_unpack += handle.end - handle.start;

  // ... plus cudaEventRecord so completion can be tracked without a sync.
  // The paper books this under "Scheduling" (Fig. 11).
  co_await cpu_->busy(gpu_->spec().driver_call_overhead);
  breakdown_.scheduling += gpu_->spec().driver_call_overhead;
  const auto event = gpu_->createEvent();
  gpu_->eventRecord(event, stream);

  const Ticket t{next_id_++};
  events_.emplace(t.id, event);
  co_return t;
}

sim::Task<Ticket> GpuAsyncEngine::submitPack(ddt::LayoutPtr layout,
                                             gpu::MemSpan origin,
                                             gpu::MemSpan packed) {
  gpu::Gpu::Op op;
  op.kind = gpu::Gpu::Op::Kind::Pack;
  op.layout = std::move(layout);
  op.src = origin.bytes;
  op.dst = packed.bytes;
  co_return co_await launchOne(std::move(op));
}

sim::Task<Ticket> GpuAsyncEngine::submitUnpack(ddt::LayoutPtr layout,
                                               gpu::MemSpan packed,
                                               gpu::MemSpan origin) {
  gpu::Gpu::Op op;
  op.kind = gpu::Gpu::Op::Kind::Unpack;
  op.layout = std::move(layout);
  op.src = packed.bytes;
  op.dst = origin.bytes;
  co_return co_await launchOne(std::move(op));
}

bool GpuAsyncEngine::done(const Ticket& t) {
  if (!t.valid()) return false;
  // Issued ids are [0, next_id_); anything else was never submitted here
  // and "done" would be a phantom completion, not an already-retired one.
  DKF_CHECK_MSG(t.id < next_id_,
                "done() for ticket " << t.id << " never issued (issued ids "
                                     << "are [0, " << next_id_ << "))");
  auto it = events_.find(t.id);
  if (it == events_.end()) return true;  // already retired
  // Every completion check is a cudaEventQuery driver call; its CPU time
  // is paid at the next progress() pass (done() itself must stay
  // non-blocking). These repeated queries are the extra synchronization
  // penalty the paper blames for GPU-Async losing to GPU-Sync when the
  // kernels are too short to hide driver overhead (§V-B).
  deferred_query_cost_ += gpu_->spec().driver_call_overhead;
  if (!gpu_->eventQuery(it->second)) return false;
  events_.erase(it);
  return true;
}

sim::Task<void> GpuAsyncEngine::progress() {
  if (deferred_query_cost_ == 0) co_return;
  const DurationNs cost = deferred_query_cost_;
  deferred_query_cost_ = 0;
  co_await cpu_->busy(cost);
  breakdown_.synchronize += cost;
}

}  // namespace dkf::schemes
