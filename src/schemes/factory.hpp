// Scheme registry: maps the evaluation's scheme names to engine factories.
#pragma once

#include <memory>
#include <string_view>

#include "core/scheduler.hpp"
#include "gpu/gpu.hpp"
#include "sim/cpu.hpp"
#include "schemes/ddt_engine.hpp"
#include "sim/engine.hpp"

namespace dkf::schemes {

enum class Scheme {
  GpuSync,        ///< [8], [22]
  GpuAsync,       ///< [23]
  CpuGpuHybrid,   ///< [24]
  NaiveCopy,      ///< SpectrumMPI / OpenMPI production behaviour
  AdaptiveGdr,    ///< MVAPICH2-GDR production behaviour
  Proposed,       ///< this paper, default 512 KB threshold
  ProposedTuned,  ///< this paper, per-workload tuned threshold
  ProposedHybrid, ///< this paper + [24]'s adaptive GDRCopy (Related Work)
};

/// Display name matching the paper's legends.
std::string_view schemeName(Scheme s);

/// All schemes in the order the paper's figures list them.
inline constexpr Scheme kAllSchemes[] = {
    Scheme::GpuSync,        Scheme::GpuAsync, Scheme::CpuGpuHybrid,
    Scheme::NaiveCopy,      Scheme::AdaptiveGdr, Scheme::Proposed,
    Scheme::ProposedTuned,  Scheme::ProposedHybrid,
};

/// Construct an engine for `scheme` on `gpu`. `tuned_policy` only affects
/// ProposedTuned (Proposed always uses the paper's defaults).
std::unique_ptr<DdtEngine> makeEngine(Scheme scheme, sim::Engine& eng,
                                      sim::CpuTimeline& cpu, gpu::Gpu& gpu,
                                      core::FusionPolicy tuned_policy = {});

}  // namespace dkf::schemes
