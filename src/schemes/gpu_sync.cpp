#include "schemes/gpu_sync.hpp"

namespace dkf::schemes {

namespace {
/// Kernel launches can fail under an injected FaultPlan; retry with
/// doubling backoff before declaring the run broken.
constexpr std::size_t kMaxLaunchAttempts = 10;
constexpr DurationNs kLaunchRetryBackoff = us(2);
}  // namespace

GpuSyncEngine::GpuSyncEngine(sim::Engine& eng, sim::CpuTimeline& cpu,
                             gpu::Gpu& gpu)
    : eng_(&eng), cpu_(&cpu), gpu_(&gpu), stream_(gpu.createStream()) {}

sim::Task<Ticket> GpuSyncEngine::runOne(gpu::Gpu::Op op) {
  ++submissions_;

  // Launch one kernel for this single operation...
  gpu::Gpu::KernelHandle handle;
  for (std::size_t attempt = 0;; ++attempt) {
    co_await cpu_->busy(gpu_->spec().kernel_launch_overhead);
    breakdown_.launching += gpu_->spec().kernel_launch_overhead;
    std::vector<gpu::Gpu::Op> ops;
    ops.push_back(op.clone());
    handle = gpu_->launchKernel(stream_, std::move(ops));
    if (!handle.failed) break;
    DKF_CHECK_MSG(attempt + 1 < kMaxLaunchAttempts,
                  "GPU-Sync kernel launch failed " << kMaxLaunchAttempts
                                                   << " times in a row");
    co_await eng_->delay(kLaunchRetryBackoff << attempt);
  }
  breakdown_.pack_unpack += handle.end - handle.start;

  // ...and busy-wait at its boundary (the defining cost of this scheme:
  // cudaStreamSynchronize holds the progress thread).
  const DurationNs held = co_await cpu_->holdUntil(handle.end);
  co_await cpu_->busy(gpu_->spec().driver_call_overhead);
  breakdown_.synchronize += held + gpu_->spec().driver_call_overhead;

  co_return Ticket{next_id_++};
}

sim::Task<Ticket> GpuSyncEngine::submitPack(ddt::LayoutPtr layout,
                                            gpu::MemSpan origin,
                                            gpu::MemSpan packed) {
  gpu::Gpu::Op op;
  op.kind = gpu::Gpu::Op::Kind::Pack;
  op.layout = std::move(layout);
  op.src = origin.bytes;
  op.dst = packed.bytes;
  co_return co_await runOne(std::move(op));
}

sim::Task<Ticket> GpuSyncEngine::submitUnpack(ddt::LayoutPtr layout,
                                              gpu::MemSpan packed,
                                              gpu::MemSpan origin) {
  gpu::Gpu::Op op;
  op.kind = gpu::Gpu::Op::Kind::Unpack;
  op.layout = std::move(layout);
  op.src = packed.bytes;
  op.dst = origin.bytes;
  co_return co_await runOne(std::move(op));
}

bool GpuSyncEngine::done(const Ticket& t) {
  return t.valid();  // submissions block until complete
}

sim::Task<void> GpuSyncEngine::progress() { co_return; }

}  // namespace dkf::schemes
