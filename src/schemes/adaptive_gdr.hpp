// AdaptiveGdr: the MVAPICH2-GDR production baseline of Fig. 14 — an
// adaptive selection between the CPU-GPU-Hybrid GDRCopy path and GPU-Sync
// kernels (§V-C: "the optimized scheme in MVAPICH2-GDR, which adaptively
// uses CPU-GPU-Hybrid and GPU-Sync schemes"). Structurally identical to
// CpuGpuHybridEngine but with the production library's more conservative
// switch-over thresholds.
#pragma once

#include "schemes/cpu_gpu_hybrid.hpp"

namespace dkf::schemes {

class AdaptiveGdrEngine final : public DdtEngine {
 public:
  AdaptiveGdrEngine(sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu);

  std::string_view name() const override { return "MVAPICH2-GDR"; }

  /// Per-op adaptive routing decisions (GDRCopy vs. GPU-Sync kernel) are
  /// emitted as instants on an "MVAPICH2-GDR" track.
  void setTracer(sim::Tracer* tracer) override;

  sim::Task<Ticket> submitPack(ddt::LayoutPtr layout, gpu::MemSpan origin,
                               gpu::MemSpan packed) override;
  sim::Task<Ticket> submitUnpack(ddt::LayoutPtr layout, gpu::MemSpan packed,
                                 gpu::MemSpan origin) override;
  bool done(const Ticket& t) override;
  sim::Task<void> progress() override;

 private:
  void traceRoute(const ddt::Layout& layout, const char* what);

  sim::Engine* eng_;
  CpuGpuHybridEngine inner_;
  sim::Tracer* tracer_{nullptr};
  std::uint32_t track_{0};
};

}  // namespace dkf::schemes
