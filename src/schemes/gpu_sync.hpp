// GPU-Sync [8], [22]: one packing/unpacking kernel per operation, followed
// by an explicit cudaStreamSynchronize. Simple and correct, but the CPU
// stays busy synchronizing at every kernel boundary, so there is zero
// overlap between DDT processing and communication — the SYNCHRONOUS lane
// of the paper's Fig. 2.
#pragma once

#include "gpu/gpu.hpp"
#include "sim/cpu.hpp"
#include "schemes/ddt_engine.hpp"
#include "sim/engine.hpp"

namespace dkf::schemes {

class GpuSyncEngine final : public DdtEngine {
 public:
  GpuSyncEngine(sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu);

  std::string_view name() const override { return "GPU-Sync"; }

  sim::Task<Ticket> submitPack(ddt::LayoutPtr layout, gpu::MemSpan origin,
                               gpu::MemSpan packed) override;
  sim::Task<Ticket> submitUnpack(ddt::LayoutPtr layout, gpu::MemSpan packed,
                                 gpu::MemSpan origin) override;
  bool done(const Ticket& t) override;
  sim::Task<void> progress() override;

 private:
  sim::Task<Ticket> runOne(gpu::Gpu::Op op);

  sim::Engine* eng_;
  sim::CpuTimeline* cpu_;
  gpu::Gpu* gpu_;
  gpu::Gpu::StreamId stream_;
  std::int64_t next_id_{0};
};

}  // namespace dkf::schemes
