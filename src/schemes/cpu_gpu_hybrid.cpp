#include "schemes/cpu_gpu_hybrid.hpp"

#include <cmath>

#include "ddt/pack.hpp"

namespace dkf::schemes {

CpuGpuHybridEngine::CpuGpuHybridEngine(sim::Engine& eng, sim::CpuTimeline& cpu,
                                       gpu::Gpu& gpu, Tuning tuning)
    : eng_(&eng),
      cpu_(&cpu),
      gpu_(&gpu),
      tuning_(tuning),
      gpu_path_(eng, cpu, gpu) {}

bool CpuGpuHybridEngine::usesCpuPath(const ddt::Layout& layout) const {
  if (!gpu_->nodeSpec().gdrcopy.available) return false;
  return layout.size() <= tuning_.cpu_max_bytes &&
         layout.blockCount() <= tuning_.cpu_max_blocks;
}

sim::Task<void> CpuGpuHybridEngine::cpuCopy(const ddt::Layout& layout,
                                            bool is_pack,
                                            std::span<const std::byte> src,
                                            std::span<std::byte> dst) {
  const auto& gdr = gpu_->nodeSpec().gdrcopy;
  // Model [24]'s pipelined load/store loop: one BAR1 transaction setup,
  // streaming at the write-combined bandwidth, plus a fixed per-block cost.
  const auto stream_time = static_cast<DurationNs>(
      std::ceil(static_cast<double>(layout.size()) /
                gdr.write_bandwidth.bytesPerNs()));
  const DurationNs total =
      gdr.latency + stream_time +
      tuning_.per_block_cost * static_cast<DurationNs>(layout.blockCount());
  co_await cpu_->busy(total);
  breakdown_.pack_unpack += total;
  if (is_pack) {
    ddt::packCpu(layout, src, dst);
  } else {
    ddt::unpackCpu(layout, src, dst);
  }
}

sim::Task<Ticket> CpuGpuHybridEngine::submitPack(ddt::LayoutPtr layout,
                                                 gpu::MemSpan origin,
                                                 gpu::MemSpan packed) {
  ++submissions_;
  if (usesCpuPath(*layout)) {
    ++cpu_ops_;
    co_await cpuCopy(*layout, /*is_pack=*/true, origin.bytes, packed.bytes);
    co_return Ticket{next_id_++};
  }
  ++gpu_ops_;
  co_await gpu_path_.submitPack(std::move(layout), origin, packed);
  breakdown_ += gpu_path_.breakdown();
  gpu_path_.breakdown().reset();
  co_return Ticket{next_id_++};
}

sim::Task<Ticket> CpuGpuHybridEngine::submitUnpack(ddt::LayoutPtr layout,
                                                   gpu::MemSpan packed,
                                                   gpu::MemSpan origin) {
  ++submissions_;
  if (usesCpuPath(*layout)) {
    ++cpu_ops_;
    co_await cpuCopy(*layout, /*is_pack=*/false, packed.bytes, origin.bytes);
    co_return Ticket{next_id_++};
  }
  ++gpu_ops_;
  co_await gpu_path_.submitUnpack(std::move(layout), packed, origin);
  breakdown_ += gpu_path_.breakdown();
  gpu_path_.breakdown().reset();
  co_return Ticket{next_id_++};
}

bool CpuGpuHybridEngine::done(const Ticket& t) {
  return t.valid();  // both paths complete before returning
}

sim::Task<void> CpuGpuHybridEngine::progress() { co_return; }

}  // namespace dkf::schemes
