// The pluggable DDT-processing engine interface.
//
// The MPI runtime routes every non-contiguous pack/unpack through one of
// these engines; each implementation reproduces one scheme from the paper's
// evaluation (§V-A):
//
//   GpuSyncEngine       "GPU-Sync"        [8], [22]
//   GpuAsyncEngine      "GPU-Async"       [23]
//   CpuGpuHybridEngine  "CPU-GPU-Hybrid"  [24]
//   NaiveCopyEngine     SpectrumMPI / OpenMPI per-block cudaMemcpyAsync
//   AdaptiveGdrEngine   MVAPICH2-GDR adaptive (hybrid / sync by layout)
//   FusionEngine        "Proposed" / "Proposed-Tuned" (this paper)
//
// Submissions are coroutines: a synchronous engine may block inside (that IS
// its defining cost), an asynchronous one charges its CPU-side launch cost
// and returns a ticket immediately. Every engine accumulates the Fig. 11
// time-breakdown categories as it goes.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/stats.hpp"
#include "common/tenant.hpp"
#include "core/fusion_plan.hpp"
#include "ddt/layout.hpp"
#include "gpu/memory.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace dkf::schemes {

/// Handle to an asynchronous engine operation. Invalid tickets (negative id)
/// mean the engine could not accept the operation (e.g. the fusion request
/// list is full, §IV-A2 ①) and the caller must fall back.
struct Ticket {
  std::int64_t id{-1};
  bool valid() const { return id >= 0; }
};

class DdtEngine {
 public:
  virtual ~DdtEngine() = default;

  virtual std::string_view name() const = 0;

  /// Attach a tracer for Chrome-trace observability (nullptr detaches).
  /// Engines with internal machinery (the fusion scheduler, the hybrid
  /// router) emit their decisions on tracks named after the scheme; the
  /// default is a no-op for engines whose only activity is already traced
  /// at the GPU/fabric layer.
  virtual void setTracer(sim::Tracer*) {}

  /// Gather layout bytes of `origin` into contiguous `packed`.
  virtual sim::Task<Ticket> submitPack(ddt::LayoutPtr layout,
                                       gpu::MemSpan origin,
                                       gpu::MemSpan packed) = 0;

  /// Scatter contiguous `packed` into layout bytes of `origin`.
  virtual sim::Task<Ticket> submitUnpack(ddt::LayoutPtr layout,
                                         gpu::MemSpan packed,
                                         gpu::MemSpan origin) = 0;

  /// True if submitDirect() can succeed on this engine. The runtime only
  /// offers the DirectIPC path to capable engines, so the sender never
  /// skips packing for a receiver that cannot strided-copy.
  virtual bool supportsDirect() const { return false; }

  /// Direct strided copy between two non-contiguous device buffers over
  /// NVLink/PCIe (the DirectIPC operation of [24]). Engines without the
  /// capability return an invalid ticket; the runtime then falls back to
  /// pack + transfer + unpack.
  virtual sim::Task<Ticket> submitDirect(ddt::LayoutPtr src_layout,
                                         gpu::MemSpan src,
                                         ddt::LayoutPtr dst_layout,
                                         gpu::MemSpan dst);

  /// Execute one step of a compiled FusionPlan with this message's live
  /// layouts and buffers (`live_target` is the DirectIPC destination layout,
  /// nullptr otherwise). The live layouts may differ in count from the
  /// plan's declared ones — compiled plans are count-independent. The
  /// default dispatches to the submit* entry points; engines with their own
  /// request machinery (FusionEngine) override for a template-bound path.
  /// DirectIPC steps keep submitDirect's contract: an engine without the
  /// capability returns an invalid ticket and the caller falls back.
  virtual sim::Task<Ticket> submitPlanStep(const core::CompiledPlan& plan,
                                           std::size_t step,
                                           ddt::LayoutPtr live_layout,
                                           ddt::LayoutPtr live_target,
                                           gpu::MemSpan origin,
                                           gpu::MemSpan target);

  /// Non-blocking completion check; may retire internal bookkeeping for
  /// completed tickets (the fusion scheduler recycles the request slot).
  /// Querying an already-retired ticket returns true.
  virtual bool done(const Ticket& t) = 0;

  /// Advance internal machinery (query events, poll response statuses).
  /// Called from the runtime's progress loop.
  virtual sim::Task<void> progress() = 0;

  /// The runtime is entering a wait with no further submissions pending —
  /// launch/flush anything batched (fusion launch scenario 1, §IV-C).
  virtual sim::Task<void> flush();

  /// True if `tenant` has batched work sitting unlaunched inside the
  /// engine (MODEL.md §14). Admission backpressure flushes only when this
  /// holds, so a throttled tenant never force-launches another tenant's
  /// half-built batch. Engines without internal batching answer true
  /// (conservative: their flush is a cheap no-op anyway).
  virtual bool hasPendingFusedWork(TenantId) const { return true; }

  /// Fig. 11 cost categories accumulated so far.
  TimeBreakdown& breakdown() { return breakdown_; }
  const TimeBreakdown& breakdown() const { return breakdown_; }

  /// Operations accepted since construction (pack + unpack + direct).
  std::size_t submissions() const { return submissions_; }

  /// Tenant attribution for the NEXT submissions (MODEL.md §14). The
  /// runtime sets this right before each submit*/submitPlanStep call;
  /// engines with internal queues (FusionEngine) stamp it onto the
  /// requests they enqueue so weighted-fair batching can tell tenants
  /// apart. Engines without queues may ignore it.
  void setActiveTenant(TenantId t) { active_tenant_ = t; }
  TenantId activeTenant() const { return active_tenant_; }

 protected:
  TimeBreakdown breakdown_;
  std::size_t submissions_{0};
  TenantId active_tenant_{kDefaultTenant};
};

}  // namespace dkf::schemes
