#include "schemes/fusion_engine.hpp"

namespace dkf::schemes {

FusionEngine::FusionEngine(sim::Engine& eng, sim::CpuTimeline& cpu,
                           gpu::Gpu& gpu, core::FusionPolicy policy,
                           std::string_view display_name)
    : eng_(&eng),
      scheduler_(eng, cpu, gpu, policy),
      fallback_path_(eng, cpu, gpu),
      display_name_(display_name) {}

sim::Task<Ticket> FusionEngine::enqueueOrFallback(core::FusionRequest req) {
  ++submissions_;
  req.tenant = active_tenant_;  // weighted-fair batching keys on this
  const std::int64_t uid = co_await scheduler_.enqueue(std::move(req));
  if (uid >= 0) co_return Ticket{uid};
  co_return Ticket{-1};  // list full; caller decides (we handle below)
}

sim::Task<Ticket> FusionEngine::submitPack(ddt::LayoutPtr layout,
                                           gpu::MemSpan origin,
                                           gpu::MemSpan packed) {
  core::FusionRequest req;
  req.op = core::FusionOp::Packing;
  req.layout = layout;
  req.origin = origin;
  req.target = packed;
  Ticket t = co_await enqueueOrFallback(std::move(req));
  if (t.valid()) co_return t;
  // Fallback: request list full — run this one synchronously (§IV-A2 ①).
  ++fallbacks_;
  co_await fallback_path_.submitPack(std::move(layout), origin, packed);
  breakdown_ += fallback_path_.breakdown();
  fallback_path_.breakdown().reset();
  co_return Ticket{next_fallback_id_++};
}

sim::Task<Ticket> FusionEngine::submitUnpack(ddt::LayoutPtr layout,
                                             gpu::MemSpan packed,
                                             gpu::MemSpan origin) {
  core::FusionRequest req;
  req.op = core::FusionOp::Unpacking;
  req.layout = layout;
  req.origin = packed;
  req.target = origin;
  Ticket t = co_await enqueueOrFallback(std::move(req));
  if (t.valid()) co_return t;
  ++fallbacks_;
  co_await fallback_path_.submitUnpack(std::move(layout), packed, origin);
  breakdown_ += fallback_path_.breakdown();
  fallback_path_.breakdown().reset();
  co_return Ticket{next_fallback_id_++};
}

sim::Task<Ticket> FusionEngine::submitDirect(ddt::LayoutPtr src_layout,
                                             gpu::MemSpan src,
                                             ddt::LayoutPtr dst_layout,
                                             gpu::MemSpan dst) {
  core::FusionRequest req;
  req.op = core::FusionOp::DirectIPC;
  req.layout = std::move(src_layout);
  req.target_layout = std::move(dst_layout);
  req.origin = src;
  req.target = dst;
  co_return co_await enqueueOrFallback(std::move(req));
  // Note: on a full list the invalid ticket propagates; the runtime falls
  // back to pack + transfer + unpack for DirectIPC, matching the paper.
}

sim::Task<Ticket> FusionEngine::submitPlanStep(const core::CompiledPlan& plan,
                                               std::size_t step,
                                               ddt::LayoutPtr live_layout,
                                               ddt::LayoutPtr live_target,
                                               gpu::MemSpan origin,
                                               gpu::MemSpan target) {
  const core::CompiledStep& s = plan.steps.at(step);
  Ticket t = co_await enqueueOrFallback(
      s.bind(live_layout, live_target, origin, target));
  if (t.valid()) co_return t;
  if (s.op == core::FusionOp::DirectIPC) {
    co_return t;  // invalid ticket propagates; the runtime re-plans as
                  // pack + transfer + unpack (same as submitDirect)
  }
  // Request list full: run this one synchronously (§IV-A2 ①), exactly as
  // the per-message entry points do.
  ++fallbacks_;
  if (s.op == core::FusionOp::Packing) {
    co_await fallback_path_.submitPack(std::move(live_layout), origin, target);
  } else {
    co_await fallback_path_.submitUnpack(std::move(live_layout), origin,
                                         target);
  }
  breakdown_ += fallback_path_.breakdown();
  fallback_path_.breakdown().reset();
  co_return Ticket{next_fallback_id_++};
}

bool FusionEngine::done(const Ticket& t) {
  if (!t.valid()) return false;
  if (t.id >= kFallbackBase) return true;  // fallback ops are synchronous
  return scheduler_.query(t.id);
}

sim::Task<void> FusionEngine::progress() {
  // Completion is GPU-signalled into the request list; nothing to poll
  // beyond the per-query cost already charged in done(). Fold the
  // scheduler's cost counters into this engine's breakdown so callers see
  // a single up-to-date view.
  breakdown_ += scheduler_.breakdown();
  scheduler_.breakdown().reset();
  co_return;
}

sim::Task<void> FusionEngine::flush() {
  co_await scheduler_.flush();
  breakdown_ += scheduler_.breakdown();
  scheduler_.breakdown().reset();
}

}  // namespace dkf::schemes
