// The proposed scheme: dynamic kernel fusion (this paper, §IV).
//
// A thin DdtEngine adapter over core::FusionScheduler. Pack, unpack, and
// DirectIPC operations are enqueued into the request list; the scheduler
// launches fused kernels per its threshold policy; tickets map to request
// UIDs and completion is the scheduler's ④ query. If the request list is
// full, the engine takes the paper's fallback path (an inline GPU-Sync
// operation) rather than failing.
//
// "Proposed" uses the 512 KB default threshold; "Proposed-Tuned" is the same
// engine constructed with the per-workload best threshold found by the
// Fig. 8 sweep.
#pragma once

#include <memory>

#include "core/scheduler.hpp"
#include "schemes/ddt_engine.hpp"
#include "schemes/gpu_sync.hpp"

namespace dkf::schemes {

class FusionEngine final : public DdtEngine {
 public:
  FusionEngine(sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu,
               core::FusionPolicy policy = {},
               std::string_view display_name = "Proposed");

  std::string_view name() const override { return display_name_; }

  /// Scheduler activity (enqueues, rejections, fused batches, backlog)
  /// appears on "<display name>.sched" tracks.
  void setTracer(sim::Tracer* tracer) override {
    scheduler_.setTracer(tracer, display_name_);
  }

  sim::Task<Ticket> submitPack(ddt::LayoutPtr layout, gpu::MemSpan origin,
                               gpu::MemSpan packed) override;
  sim::Task<Ticket> submitUnpack(ddt::LayoutPtr layout, gpu::MemSpan packed,
                                 gpu::MemSpan origin) override;
  bool supportsDirect() const override { return true; }
  sim::Task<Ticket> submitDirect(ddt::LayoutPtr src_layout, gpu::MemSpan src,
                                 ddt::LayoutPtr dst_layout,
                                 gpu::MemSpan dst) override;
  /// Compiled-plan path: the step template binds straight into a request —
  /// no per-message op dispatch — and enqueues with the same full-list
  /// fallback semantics as the submit* entry points.
  sim::Task<Ticket> submitPlanStep(const core::CompiledPlan& plan,
                                   std::size_t step, ddt::LayoutPtr live_layout,
                                   ddt::LayoutPtr live_target,
                                   gpu::MemSpan origin,
                                   gpu::MemSpan target) override;
  bool done(const Ticket& t) override;
  sim::Task<void> progress() override;
  sim::Task<void> flush() override;
  bool hasPendingFusedWork(TenantId tenant) const override {
    return scheduler_.requests().hasPendingFor(tenant);
  }

  core::FusionScheduler& scheduler() { return scheduler_; }
  std::size_t fallbacks() const { return fallbacks_; }

 private:
  /// Tickets at or above this id mark fallback (already-complete) ops.
  static constexpr std::int64_t kFallbackBase = std::int64_t{1} << 62;

  sim::Task<Ticket> enqueueOrFallback(core::FusionRequest req);

  sim::Engine* eng_;
  core::FusionScheduler scheduler_;
  GpuSyncEngine fallback_path_;
  std::string display_name_;
  std::size_t fallbacks_{0};
  std::int64_t next_fallback_id_{kFallbackBase};
};

}  // namespace dkf::schemes
