#include "schemes/solver.hpp"

#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "schemes/adaptive_gdr.hpp"
#include "schemes/cpu_gpu_hybrid.hpp"
#include "schemes/fusion_engine.hpp"
#include "schemes/gpu_async.hpp"
#include "schemes/gpu_sync.hpp"
#include "schemes/hybrid_fusion.hpp"
#include "schemes/naive_copy.hpp"

namespace dkf::schemes {

namespace {

/// Pack/unpack-only solver over an engine constructible as (eng, cpu, gpu).
/// Covers every scheme whose engine has no DirectIPC path and no further
/// hardware requirement.
template <Scheme S, class EngineT>
class PackOnlySolver : public Solver {
 public:
  Scheme scheme() const override { return S; }
  bool isApplicable(const core::FusionPlan& plan,
                    const hw::NodeSpec&) const override {
    return !plan.empty() && !plan.needsDirect();
  }
  std::unique_ptr<DdtEngine> makeEngine(sim::Engine& eng,
                                        sim::CpuTimeline& cpu, gpu::Gpu& gpu,
                                        core::FusionPolicy) const override {
    return std::make_unique<EngineT>(eng, cpu, gpu);
  }
};

/// CPU-GPU-Hybrid [24]: additionally requires GDRCopy — without it the
/// engine exists but every op silently lands on its GPU-Sync escape hatch,
/// which the applicability contract forbids passing off as this scheme.
class CpuGpuHybridSolver final
    : public PackOnlySolver<Scheme::CpuGpuHybrid, CpuGpuHybridEngine> {
 public:
  bool isApplicable(const core::FusionPlan& plan,
                    const hw::NodeSpec& hw) const override {
    return PackOnlySolver::isApplicable(plan, hw) && hw.gdrcopy.available;
  }
};

/// The proposed fusion schemes: any non-empty op sequence, strided copies
/// included (FusionEngine::supportsDirect()).
class ProposedSolver : public Solver {
 public:
  explicit ProposedSolver(Scheme s) : scheme_(s) {}
  Scheme scheme() const override { return scheme_; }
  bool isApplicable(const core::FusionPlan& plan,
                    const hw::NodeSpec&) const override {
    return !plan.empty();
  }
  std::unique_ptr<DdtEngine> makeEngine(
      sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu,
      core::FusionPolicy tuned_policy) const override {
    switch (scheme_) {
      case Scheme::Proposed:
        return std::make_unique<FusionEngine>(eng, cpu, gpu,
                                              core::FusionPolicy{}, "Proposed");
      case Scheme::ProposedTuned:
        return std::make_unique<FusionEngine>(eng, cpu, gpu, tuned_policy,
                                              "Proposed-Tuned");
      case Scheme::ProposedHybrid:
        return std::make_unique<HybridFusionEngine>(eng, cpu, gpu);
      default:
        DKF_CHECK_MSG(false, "ProposedSolver built for non-fusion scheme");
        return nullptr;
    }
  }

 private:
  Scheme scheme_;
};

}  // namespace

SolverRegistry::SolverRegistry() {
  solvers_.push_back(
      std::make_unique<PackOnlySolver<Scheme::GpuSync, GpuSyncEngine>>());
  solvers_.push_back(
      std::make_unique<PackOnlySolver<Scheme::GpuAsync, GpuAsyncEngine>>());
  solvers_.push_back(std::make_unique<CpuGpuHybridSolver>());
  solvers_.push_back(
      std::make_unique<PackOnlySolver<Scheme::NaiveCopy, NaiveCopyEngine>>());
  solvers_.push_back(
      std::make_unique<
          PackOnlySolver<Scheme::AdaptiveGdr, AdaptiveGdrEngine>>());
  solvers_.push_back(std::make_unique<ProposedSolver>(Scheme::Proposed));
  solvers_.push_back(std::make_unique<ProposedSolver>(Scheme::ProposedTuned));
  solvers_.push_back(std::make_unique<ProposedSolver>(Scheme::ProposedHybrid));
  view_.reserve(solvers_.size());
  for (const auto& s : solvers_) view_.push_back(s.get());
}

const SolverRegistry& SolverRegistry::instance() {
  static const SolverRegistry registry;
  return registry;
}

const Solver& SolverRegistry::at(Scheme s) const {
  for (const Solver* solver : view_) {
    if (solver->scheme() == s) return *solver;
  }
  DKF_CHECK_MSG(false, "unknown scheme");
  return *view_.front();
}

const Solver* SolverRegistry::firstApplicable(const core::FusionPlan& plan,
                                              const hw::NodeSpec& hw) const {
  for (const Solver* solver : view_) {
    if (solver->isApplicable(plan, hw)) return solver;
  }
  return nullptr;
}

std::uint64_t hwSignature(const hw::NodeSpec& hw) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(hw.gdrcopy.available ? 1 : 0);
  mix(hw.gpus_per_node);
  mix(hw.gpu.sm_count);
  mix(hw.gpu.blocks_per_sm);
  return h;
}

core::CompiledPlanPtr compilePlan(const core::FusionPlan& plan,
                                  Scheme preferred, const hw::NodeSpec& hw) {
  const SolverRegistry& registry = SolverRegistry::instance();
  auto compiled = std::make_shared<core::CompiledPlan>();
  compiled->plan_signature = plan.signature();

  const Solver& wanted = registry.at(preferred);
  const Solver* chosen = nullptr;
  if (wanted.isApplicable(plan, hw)) {
    chosen = &wanted;
  } else {
    compiled->fallback = true;
    chosen = registry.firstApplicable(plan, hw);
    std::ostringstream why;
    why << wanted.name() << " not applicable to this plan on this hardware";
    if (chosen != nullptr) {
      why << "; rerouted to " << chosen->name();
    } else {
      why << "; no registered solver applies — engine degraded path";
    }
    compiled->fallback_reason = why.str();
  }
  if (chosen != nullptr) {
    compiled->solver_scheme = static_cast<int>(chosen->scheme());
    compiled->solver_name = std::string(chosen->name());
  }

  compiled->steps.reserve(plan.ops().size());
  for (const core::PlanOp& op : plan.ops()) {
    compiled->steps.push_back(
        core::CompiledStep{op.op, op.layout, op.target_layout});
  }
  return compiled;
}

core::CompiledPlanPtr compilePlanCached(core::PlanCache& cache,
                                        const core::FusionPlan& plan,
                                        Scheme preferred,
                                        const hw::NodeSpec& hw,
                                        TenantId tenant) {
  const core::PlanKey key{plan.signature(), hwSignature(hw),
                          static_cast<int>(preferred)};
  if (auto cached = cache.find(key, tenant)) return cached;
  auto compiled = compilePlan(plan, preferred, hw);
  cache.insert(key, compiled, tenant);
  return compiled;
}

}  // namespace dkf::schemes
