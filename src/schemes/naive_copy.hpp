// NaiveCopy: the production-library baseline (SpectrumMPI, OpenMPI+UCX).
//
// These libraries have no optimized GPU datatype engine: they walk the
// flattened layout and issue one cudaMemcpyAsync per contiguous run, staging
// through the CPU-GPU link, then synchronize. Every run costs a driver call
// on the CPU and a full link round on the device side — for sparse layouts
// with thousands of blocks this is catastrophically slow, which is exactly
// the "orders of magnitude" gap Fig. 14 reports.
//
// The per-run copies are folded into one analytic completion event rather
// than thousands of simulator events; the modeled time is identical
// (the copies serialize on the same link) and the benchmark stays fast.
#pragma once

#include "gpu/gpu.hpp"
#include "sim/cpu.hpp"
#include "schemes/ddt_engine.hpp"
#include "sim/engine.hpp"

namespace dkf::schemes {

class NaiveCopyEngine final : public DdtEngine {
 public:
  NaiveCopyEngine(sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu);

  std::string_view name() const override { return "NaiveCopy(SpectrumMPI/OpenMPI)"; }

  sim::Task<Ticket> submitPack(ddt::LayoutPtr layout, gpu::MemSpan origin,
                               gpu::MemSpan packed) override;
  sim::Task<Ticket> submitUnpack(ddt::LayoutPtr layout, gpu::MemSpan packed,
                                 gpu::MemSpan origin) override;
  bool done(const Ticket& t) override;
  sim::Task<void> progress() override;

  std::size_t copyCallsIssued() const { return copy_calls_; }

 private:
  sim::Task<void> perBlockCopies(const ddt::Layout& layout, bool is_pack,
                                 std::span<const std::byte> src,
                                 std::span<std::byte> dst);

  sim::Engine* eng_;
  sim::CpuTimeline* cpu_;
  gpu::Gpu* gpu_;
  std::size_t copy_calls_{0};
  std::int64_t next_id_{0};
};

}  // namespace dkf::schemes
