#include "schemes/hybrid_fusion.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dkf::schemes {

namespace {

/// The combination only routes to GDRCopy where the CPU path beats a FUSED
/// launch (whose overhead is amortized, unlike standalone hybrid's
/// comparison against per-op GPU-Sync launches): roughly one kernel-launch
/// overhead worth of BAR1 streaming.
HybridTuning combinedTuning(HybridTuning base) {
  base.cpu_max_bytes = std::min<std::size_t>(base.cpu_max_bytes, 16 * 1024);
  base.cpu_max_blocks = std::min<std::size_t>(base.cpu_max_blocks, 64);
  return base;
}

}  // namespace

HybridFusionEngine::HybridFusionEngine(sim::Engine& eng, sim::CpuTimeline& cpu,
                                       gpu::Gpu& gpu,
                                       core::FusionPolicy policy,
                                       HybridTuning tuning)
    : eng_(&eng),
      cpu_path_(eng, cpu, gpu, combinedTuning(tuning)),
      fusion_path_(eng, cpu, gpu, policy, "Proposed+Hybrid") {}

void HybridFusionEngine::setTracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  fusion_path_.setTracer(tracer);
  if (tracer_ && tracer_->isEnabled()) {
    cpu_track_ = tracer_->track("Proposed+Hybrid.cpu");
  }
}

Ticket HybridFusionEngine::tagCpu(Ticket t) {
  if (!t.valid()) return t;
  DKF_CHECK_MSG(t.id < kCpuTag, "CPU-path ticket id overflows the tag space");
  return Ticket{t.id | kCpuTag};
}

Ticket HybridFusionEngine::checkedFusion(Ticket t) {
  DKF_CHECK_MSG((t.id & kCpuTag) == 0,
                "fusion-path ticket " << t.id
                                      << " collides with the CPU tag bit");
  return t;
}

sim::Task<Ticket> HybridFusionEngine::submitPack(ddt::LayoutPtr layout,
                                                 gpu::MemSpan origin,
                                                 gpu::MemSpan packed) {
  ++submissions_;
  if (cpu_path_.usesCpuPath(*layout)) {
    if (tracer_ && tracer_->isEnabled()) {
      tracer_->instant(cpu_track_,
                       "cpu pack[" + std::to_string(layout->size()) + " B]",
                       eng_->now(), "hybrid");
    }
    Ticket t = co_await cpu_path_.submitPack(std::move(layout), origin, packed);
    breakdown_ += cpu_path_.breakdown();
    cpu_path_.breakdown().reset();
    co_return tagCpu(t);
  }
  co_return checkedFusion(co_await fusion_path_.submitPack(std::move(layout),
                                                           origin, packed));
}

sim::Task<Ticket> HybridFusionEngine::submitUnpack(ddt::LayoutPtr layout,
                                                   gpu::MemSpan packed,
                                                   gpu::MemSpan origin) {
  ++submissions_;
  if (cpu_path_.usesCpuPath(*layout)) {
    if (tracer_ && tracer_->isEnabled()) {
      tracer_->instant(cpu_track_,
                       "cpu unpack[" + std::to_string(layout->size()) + " B]",
                       eng_->now(), "hybrid");
    }
    Ticket t =
        co_await cpu_path_.submitUnpack(std::move(layout), packed, origin);
    breakdown_ += cpu_path_.breakdown();
    cpu_path_.breakdown().reset();
    co_return tagCpu(t);
  }
  co_return checkedFusion(co_await fusion_path_.submitUnpack(std::move(layout),
                                                             packed, origin));
}

sim::Task<Ticket> HybridFusionEngine::submitDirect(ddt::LayoutPtr src_layout,
                                                   gpu::MemSpan src,
                                                   ddt::LayoutPtr dst_layout,
                                                   gpu::MemSpan dst) {
  ++submissions_;
  co_return checkedFusion(co_await fusion_path_.submitDirect(
      std::move(src_layout), src, std::move(dst_layout), dst));
}

bool HybridFusionEngine::done(const Ticket& t) {
  if (!t.valid()) return false;
  if (t.id & kCpuTag) return true;  // CPU path completes synchronously
  return fusion_path_.done(t);
}

sim::Task<void> HybridFusionEngine::progress() {
  co_await fusion_path_.progress();
  breakdown_ += fusion_path_.breakdown();
  fusion_path_.breakdown().reset();
}

sim::Task<void> HybridFusionEngine::flush() {
  co_await fusion_path_.flush();
  breakdown_ += fusion_path_.breakdown();
  fusion_path_.breakdown().reset();
}

}  // namespace dkf::schemes
