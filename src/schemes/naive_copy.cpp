#include "schemes/naive_copy.hpp"

#include <cmath>

#include "ddt/pack.hpp"

namespace dkf::schemes {

NaiveCopyEngine::NaiveCopyEngine(sim::Engine& eng, sim::CpuTimeline& cpu,
                                 gpu::Gpu& gpu)
    : eng_(&eng), cpu_(&cpu), gpu_(&gpu) {}

sim::Task<void> NaiveCopyEngine::perBlockCopies(
    const ddt::Layout& layout, bool is_pack, std::span<const std::byte> src,
    std::span<std::byte> dst) {
  const std::size_t blocks = std::max<std::size_t>(layout.blockCount(), 1);
  copy_calls_ += blocks;

  // CPU side: one cudaMemcpyAsync issue per contiguous run.
  const DurationNs cpu_cost =
      gpu_->spec().driver_call_overhead * static_cast<DurationNs>(blocks);
  breakdown_.launching += cpu_cost;

  // Device side: each run is a separate staged transfer over the CPU-GPU
  // link — per-copy latency plus its share of serialization.
  const auto& link = gpu_->nodeSpec().cpu_gpu;
  const auto stream_time = static_cast<DurationNs>(std::ceil(
      static_cast<double>(layout.size()) / link.bandwidth.bytesPerNs()));
  const DurationNs device_cost =
      link.latency * static_cast<DurationNs>(blocks) + stream_time;
  breakdown_.pack_unpack += device_cost;

  // The issue loop occupies the CPU; the staged copies stream on the link
  // concurrently; the final cudaStreamSynchronize busy-waits for the last
  // copy to land.
  const TimeNs issue_start = std::max(eng_->now(), cpu_->busyUntil());
  co_await cpu_->busy(cpu_cost);
  const DurationNs sync_cost = gpu_->spec().driver_call_overhead;
  breakdown_.synchronize += sync_cost;
  const DurationNs held = co_await cpu_->holdUntil(issue_start + device_cost);
  breakdown_.synchronize += held;
  co_await cpu_->busy(sync_cost);

  if (is_pack) {
    ddt::packCpu(layout, src, dst);
  } else {
    ddt::unpackCpu(layout, src, dst);
  }
}

sim::Task<Ticket> NaiveCopyEngine::submitPack(ddt::LayoutPtr layout,
                                              gpu::MemSpan origin,
                                              gpu::MemSpan packed) {
  ++submissions_;
  co_await perBlockCopies(*layout, /*is_pack=*/true, origin.bytes,
                          packed.bytes);
  co_return Ticket{next_id_++};
}

sim::Task<Ticket> NaiveCopyEngine::submitUnpack(ddt::LayoutPtr layout,
                                                gpu::MemSpan packed,
                                                gpu::MemSpan origin) {
  ++submissions_;
  co_await perBlockCopies(*layout, /*is_pack=*/false, packed.bytes,
                          origin.bytes);
  co_return Ticket{next_id_++};
}

bool NaiveCopyEngine::done(const Ticket& t) { return t.valid(); }

sim::Task<void> NaiveCopyEngine::progress() { co_return; }

}  // namespace dkf::schemes
