#include "schemes/factory.hpp"

#include "common/check.hpp"
#include "schemes/adaptive_gdr.hpp"
#include "schemes/cpu_gpu_hybrid.hpp"
#include "schemes/fusion_engine.hpp"
#include "schemes/gpu_async.hpp"
#include "schemes/gpu_sync.hpp"
#include "schemes/hybrid_fusion.hpp"
#include "schemes/naive_copy.hpp"

namespace dkf::schemes {

std::string_view schemeName(Scheme s) {
  switch (s) {
    case Scheme::GpuSync: return "GPU-Sync";
    case Scheme::GpuAsync: return "GPU-Async";
    case Scheme::CpuGpuHybrid: return "CPU-GPU-Hybrid";
    case Scheme::NaiveCopy: return "SpectrumMPI/OpenMPI";
    case Scheme::AdaptiveGdr: return "MVAPICH2-GDR";
    case Scheme::Proposed: return "Proposed";
    case Scheme::ProposedTuned: return "Proposed-Tuned";
    case Scheme::ProposedHybrid: return "Proposed+Hybrid";
  }
  return "?";
}

std::unique_ptr<DdtEngine> makeEngine(Scheme scheme, sim::Engine& eng,
                                      sim::CpuTimeline& cpu, gpu::Gpu& gpu,
                                      core::FusionPolicy tuned_policy) {
  switch (scheme) {
    case Scheme::GpuSync:
      return std::make_unique<GpuSyncEngine>(eng, cpu, gpu);
    case Scheme::GpuAsync:
      return std::make_unique<GpuAsyncEngine>(eng, cpu, gpu);
    case Scheme::CpuGpuHybrid:
      return std::make_unique<CpuGpuHybridEngine>(eng, cpu, gpu);
    case Scheme::NaiveCopy:
      return std::make_unique<NaiveCopyEngine>(eng, cpu, gpu);
    case Scheme::AdaptiveGdr:
      return std::make_unique<AdaptiveGdrEngine>(eng, cpu, gpu);
    case Scheme::Proposed:
      return std::make_unique<FusionEngine>(eng, cpu, gpu, core::FusionPolicy{},
                                            "Proposed");
    case Scheme::ProposedTuned:
      return std::make_unique<FusionEngine>(eng, cpu, gpu, tuned_policy,
                                            "Proposed-Tuned");
    case Scheme::ProposedHybrid:
      return std::make_unique<HybridFusionEngine>(eng, cpu, gpu);
  }
  DKF_CHECK_MSG(false, "unknown scheme");
  return nullptr;
}

}  // namespace dkf::schemes
