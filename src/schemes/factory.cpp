#include "schemes/factory.hpp"

#include "schemes/solver.hpp"

namespace dkf::schemes {

std::string_view schemeName(Scheme s) {
  switch (s) {
    case Scheme::GpuSync: return "GPU-Sync";
    case Scheme::GpuAsync: return "GPU-Async";
    case Scheme::CpuGpuHybrid: return "CPU-GPU-Hybrid";
    case Scheme::NaiveCopy: return "SpectrumMPI/OpenMPI";
    case Scheme::AdaptiveGdr: return "MVAPICH2-GDR";
    case Scheme::Proposed: return "Proposed";
    case Scheme::ProposedTuned: return "Proposed-Tuned";
    case Scheme::ProposedHybrid: return "Proposed+Hybrid";
  }
  return "?";
}

std::unique_ptr<DdtEngine> makeEngine(Scheme scheme, sim::Engine& eng,
                                      sim::CpuTimeline& cpu, gpu::Gpu& gpu,
                                      core::FusionPolicy tuned_policy) {
  // Each scheme's engine factory now lives with its solver; the registry
  // replaces the old per-scheme switch.
  return SolverRegistry::instance().at(scheme).makeEngine(eng, cpu, gpu,
                                                          tuned_policy);
}

}  // namespace dkf::schemes
