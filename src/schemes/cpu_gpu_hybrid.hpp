// CPU-GPU-Hybrid [24]: adaptively pick a CPU-driven GDRCopy load/store loop
// (no GPU driver involvement at all) for small, dense layouts, and fall back
// to the GPU kernel path otherwise. With the GDRCopy kernel module the CPU
// path completely removes launch overhead, which is why this scheme wins
// the small-dense corner of Fig. 12(c) — and why it collapses for sparse
// layouts (per-block CPU loop cost) and large messages (BAR1 bandwidth).
// On machines without GDRCopy (ABCI), every operation takes the GPU path.
//
// Layout flattening is cached ([24]'s layout cache) by the MPI runtime; the
// engine sees already-flattened layouts.
#pragma once

#include "gpu/gpu.hpp"
#include "hw/spec.hpp"
#include "sim/cpu.hpp"
#include "schemes/ddt_engine.hpp"
#include "schemes/gpu_sync.hpp"
#include "sim/engine.hpp"

namespace dkf::schemes {

/// Switch-over heuristics for the hybrid scheme.
struct HybridTuning {
  /// CPU path only below this total payload.
  std::size_t cpu_max_bytes{256 * 1024};
  /// CPU path only below this many contiguous blocks.
  std::size_t cpu_max_blocks{512};
  /// Per-block bookkeeping cost of the CPU load/store loop.
  DurationNs per_block_cost{ns(55)};
};

class CpuGpuHybridEngine final : public DdtEngine {
 public:
  using Tuning = HybridTuning;

  CpuGpuHybridEngine(sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu,
                     Tuning tuning = {});

  std::string_view name() const override { return "CPU-GPU-Hybrid"; }

  sim::Task<Ticket> submitPack(ddt::LayoutPtr layout, gpu::MemSpan origin,
                               gpu::MemSpan packed) override;
  sim::Task<Ticket> submitUnpack(ddt::LayoutPtr layout, gpu::MemSpan packed,
                                 gpu::MemSpan origin) override;
  bool done(const Ticket& t) override;
  sim::Task<void> progress() override;

  /// True if this layout takes the CPU (GDRCopy) path on this machine.
  bool usesCpuPath(const ddt::Layout& layout) const;

  std::size_t cpuPathOps() const { return cpu_ops_; }
  std::size_t gpuPathOps() const { return gpu_ops_; }

 private:
  /// Blocking CPU-driven gdrcopy pack/unpack; returns when bytes are moved.
  sim::Task<void> cpuCopy(const ddt::Layout& layout, bool is_pack,
                          std::span<const std::byte> src,
                          std::span<std::byte> dst);

  sim::Engine* eng_;
  sim::CpuTimeline* cpu_;
  gpu::Gpu* gpu_;
  Tuning tuning_;
  GpuSyncEngine gpu_path_;
  std::size_t cpu_ops_{0};
  std::size_t gpu_ops_{0};
  std::int64_t next_id_{0};
};

}  // namespace dkf::schemes
