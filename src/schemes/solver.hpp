// The solver registry: every scheme as a pluggable FusionPlan solver.
//
// Modeled on MIOpen's fusion-plan solver machinery: a plan is *compiled* by
// asking each registered solver whether it applies (`isApplicable`), and
// unsupported combinations are reported rather than silently degraded. Each
// solver wraps one scheme from `factory.hpp` and owns its engine factory,
// so `makeEngine` is now a registry lookup instead of a switch.
//
// Applicability contract (MODEL.md §11): a solver accepts a plan only if
// its engine executes every declared op on the given hardware through the
// scheme's *defining* data path —
//   - non-direct engines reject plans containing strided-copy (DirectIPC)
//     steps (their submitDirect would bounce the op back to the caller);
//   - CPU-GPU-Hybrid rejects hardware without GDRCopy (its defining
//     host-driven path does not exist there; the engine would silently run
//     everything on its GPU-Sync escape hatch);
//   - every solver rejects the empty plan (nothing to solve).
// Applicability is *structural*: it reads layouts' canonical form, never
// their count, so one verdict is valid for every message a cached compiled
// plan serves.
//
// `compilePlan` resolves the preferred scheme first; if its solver declines
// it scans the registry in the paper's figure order and reports the switch
// in `CompiledPlan::fallback_reason`. When no solver applies at all, the
// compiled plan still executes (the engine's own degraded path) but carries
// solver_scheme == -1 and the reason — the reported fallback.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/fusion_plan.hpp"
#include "hw/spec.hpp"
#include "schemes/factory.hpp"

namespace dkf::schemes {

class Solver {
 public:
  virtual ~Solver() = default;

  virtual Scheme scheme() const = 0;
  std::string_view name() const { return schemeName(scheme()); }

  /// True if this solver's engine can execute every op of `plan` on `hw`
  /// through its defining data path (see the contract above).
  virtual bool isApplicable(const core::FusionPlan& plan,
                            const hw::NodeSpec& hw) const = 0;

  /// Construct this solver's engine. `tuned_policy` only affects
  /// ProposedTuned, exactly as the old factory switch did.
  virtual std::unique_ptr<DdtEngine> makeEngine(
      sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu,
      core::FusionPolicy tuned_policy) const = 0;
};

/// All eight scheme solvers, in the paper's figure order (kAllSchemes).
class SolverRegistry {
 public:
  static const SolverRegistry& instance();

  const Solver& at(Scheme s) const;
  const std::vector<const Solver*>& all() const { return view_; }
  /// First applicable solver in registration order, or nullptr.
  const Solver* firstApplicable(const core::FusionPlan& plan,
                                const hw::NodeSpec& hw) const;

 private:
  SolverRegistry();

  std::vector<std::unique_ptr<Solver>> solvers_;
  std::vector<const Solver*> view_;
};

/// Hash of the NodeSpec fields solver applicability reads — the hardware
/// component of core::PlanKey. Two nodes with equal signatures compile any
/// plan identically.
std::uint64_t hwSignature(const hw::NodeSpec& hw);

/// Compile: resolve `plan` to a solver (preferred first, then registry
/// order) and lower each declared op to its request template. Never fails —
/// an unsolvable plan compiles to a reported fallback.
core::CompiledPlanPtr compilePlan(const core::FusionPlan& plan,
                                  Scheme preferred, const hw::NodeSpec& hw);

/// Memoized compilePlan through `cache`, keyed by
/// (plan.signature(), hwSignature(hw), preferred). `tenant` only
/// attributes the hit/miss to that tenant's cache counters — compiled
/// plans themselves are shared across tenants (same key, same plan).
core::CompiledPlanPtr compilePlanCached(core::PlanCache& cache,
                                        const core::FusionPlan& plan,
                                        Scheme preferred,
                                        const hw::NodeSpec& hw,
                                        TenantId tenant = kDefaultTenant);

}  // namespace dkf::schemes
