#include "schemes/ddt_engine.hpp"

#include <utility>

#include "common/check.hpp"

namespace dkf::schemes {

sim::Task<Ticket> DdtEngine::submitDirect(ddt::LayoutPtr, gpu::MemSpan,
                                          ddt::LayoutPtr, gpu::MemSpan) {
  co_return Ticket{};  // not supported: caller falls back
}

sim::Task<Ticket> DdtEngine::submitPlanStep(const core::CompiledPlan& plan,
                                            std::size_t step,
                                            ddt::LayoutPtr live_layout,
                                            ddt::LayoutPtr live_target,
                                            gpu::MemSpan origin,
                                            gpu::MemSpan target) {
  DKF_CHECK(step < plan.steps.size());
  const core::CompiledStep& s = plan.steps[step];
  switch (s.op) {
    case core::FusionOp::Packing:
      co_return co_await submitPack(std::move(live_layout), origin, target);
    case core::FusionOp::Unpacking:
      co_return co_await submitUnpack(std::move(live_layout), origin, target);
    case core::FusionOp::DirectIPC:
      co_return co_await submitDirect(std::move(live_layout), origin,
                                      std::move(live_target), target);
  }
  DKF_CHECK_MSG(false, "unhandled FusionOp " << static_cast<int>(s.op));
  co_return Ticket{};
}

sim::Task<void> DdtEngine::flush() { co_return; }

}  // namespace dkf::schemes
