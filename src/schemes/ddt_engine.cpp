#include "schemes/ddt_engine.hpp"

namespace dkf::schemes {

sim::Task<Ticket> DdtEngine::submitDirect(ddt::LayoutPtr, gpu::MemSpan,
                                          ddt::LayoutPtr, gpu::MemSpan) {
  co_return Ticket{};  // not supported: caller falls back
}

sim::Task<void> DdtEngine::flush() { co_return; }

}  // namespace dkf::schemes
