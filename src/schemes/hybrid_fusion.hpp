// Proposed+Hybrid: the combination the paper's Related Work suggests —
// "The proposed framework can be combined with [24]'s adaptive protocol as
// an additional option."
//
// Routing per operation:
//   small + dense layout  -> GDRCopy CPU path (no GPU driver at all), the
//                            corner where CPU-GPU-Hybrid beats everything;
//   everything else       -> the dynamic-fusion scheduler.
//
// This engine should therefore dominate BOTH pure schemes across the whole
// MILC sweep: hybrid's small-dense win plus fusion's bulk win, with no
// crossover penalty. `bench/ablation_fusion` (section F) and the MILC
// example quantify it.
#pragma once

#include "schemes/cpu_gpu_hybrid.hpp"
#include "schemes/fusion_engine.hpp"

namespace dkf::schemes {

class HybridFusionEngine final : public DdtEngine {
 public:
  HybridFusionEngine(sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu,
                     core::FusionPolicy policy = {},
                     HybridTuning tuning = {});

  std::string_view name() const override { return "Proposed+Hybrid"; }

  /// Fusion-path activity lands on "Proposed+Hybrid.sched" tracks; CPU-path
  /// routing decisions are emitted as instants on "Proposed+Hybrid.cpu".
  void setTracer(sim::Tracer* tracer) override;

  sim::Task<Ticket> submitPack(ddt::LayoutPtr layout, gpu::MemSpan origin,
                               gpu::MemSpan packed) override;
  sim::Task<Ticket> submitUnpack(ddt::LayoutPtr layout, gpu::MemSpan packed,
                                 gpu::MemSpan origin) override;
  bool supportsDirect() const override { return true; }
  sim::Task<Ticket> submitDirect(ddt::LayoutPtr src_layout, gpu::MemSpan src,
                                 ddt::LayoutPtr dst_layout,
                                 gpu::MemSpan dst) override;
  bool done(const Ticket& t) override;
  sim::Task<void> progress() override;
  sim::Task<void> flush() override;

  std::size_t cpuPathOps() const { return cpu_path_.cpuPathOps(); }
  std::size_t fusedOps() const { return fusion_path_.submissions(); }

  /// CPU-path tickets carry this tag bit; the two id spaces are disjoint
  /// BY CONSTRUCTION, not by magnitude: fusion-path ids (request-list UIDs
  /// and the fallback range at 2^62) never set bit 61, which done() checks,
  /// so a long run can never alias a fusion ticket into the CPU space the
  /// way a plain `id >= base` comparison eventually would.
  static constexpr std::int64_t kCpuTag = std::int64_t{1} << 61;

 private:
  /// Tag a CPU-path ticket / assert a fusion-path ticket stays untagged.
  static Ticket tagCpu(Ticket t);
  static Ticket checkedFusion(Ticket t);

  sim::Engine* eng_;
  CpuGpuHybridEngine cpu_path_;
  FusionEngine fusion_path_;
  sim::Tracer* tracer_{nullptr};
  std::uint32_t cpu_track_{0};
};

}  // namespace dkf::schemes
