// Proposed+Hybrid: the combination the paper's Related Work suggests —
// "The proposed framework can be combined with [24]'s adaptive protocol as
// an additional option."
//
// Routing per operation:
//   small + dense layout  -> GDRCopy CPU path (no GPU driver at all), the
//                            corner where CPU-GPU-Hybrid beats everything;
//   everything else       -> the dynamic-fusion scheduler.
//
// This engine should therefore dominate BOTH pure schemes across the whole
// MILC sweep: hybrid's small-dense win plus fusion's bulk win, with no
// crossover penalty. `bench/ablation_fusion` (section F) and the MILC
// example quantify it.
#pragma once

#include "schemes/cpu_gpu_hybrid.hpp"
#include "schemes/fusion_engine.hpp"

namespace dkf::schemes {

class HybridFusionEngine final : public DdtEngine {
 public:
  HybridFusionEngine(sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu,
                     core::FusionPolicy policy = {},
                     HybridTuning tuning = {});

  std::string_view name() const override { return "Proposed+Hybrid"; }

  sim::Task<Ticket> submitPack(ddt::LayoutPtr layout, gpu::MemSpan origin,
                               gpu::MemSpan packed) override;
  sim::Task<Ticket> submitUnpack(ddt::LayoutPtr layout, gpu::MemSpan packed,
                                 gpu::MemSpan origin) override;
  bool supportsDirect() const override { return true; }
  sim::Task<Ticket> submitDirect(ddt::LayoutPtr src_layout, gpu::MemSpan src,
                                 ddt::LayoutPtr dst_layout,
                                 gpu::MemSpan dst) override;
  bool done(const Ticket& t) override;
  sim::Task<void> progress() override;
  sim::Task<void> flush() override;

  std::size_t cpuPathOps() const { return cpu_path_.cpuPathOps(); }
  std::size_t fusedOps() const { return fusion_path_.submissions(); }

 private:
  /// Tickets from the CPU path are offset into a disjoint id range so
  /// done() can route queries without extra bookkeeping.
  static constexpr std::int64_t kCpuBase = std::int64_t{1} << 61;

  CpuGpuHybridEngine cpu_path_;
  FusionEngine fusion_path_;
};

}  // namespace dkf::schemes
