#include "schemes/adaptive_gdr.hpp"

namespace dkf::schemes {

namespace {
CpuGpuHybridEngine::Tuning productionTuning() {
  CpuGpuHybridEngine::Tuning t;
  // The production library switches to the CPU path only for genuinely
  // small-and-dense data, and its per-block loop carries more runtime
  // bookkeeping than the research prototype of [24].
  t.cpu_max_bytes = 64 * 1024;
  t.cpu_max_blocks = 128;
  t.per_block_cost = ns(75);
  return t;
}
}  // namespace

AdaptiveGdrEngine::AdaptiveGdrEngine(sim::Engine& eng, sim::CpuTimeline& cpu,
                                     gpu::Gpu& gpu)
    : inner_(eng, cpu, gpu, productionTuning()) {}

sim::Task<Ticket> AdaptiveGdrEngine::submitPack(ddt::LayoutPtr layout,
                                                gpu::MemSpan origin,
                                                gpu::MemSpan packed) {
  ++submissions_;
  Ticket t = co_await inner_.submitPack(std::move(layout), origin, packed);
  breakdown_ += inner_.breakdown();
  inner_.breakdown().reset();
  co_return t;
}

sim::Task<Ticket> AdaptiveGdrEngine::submitUnpack(ddt::LayoutPtr layout,
                                                  gpu::MemSpan packed,
                                                  gpu::MemSpan origin) {
  ++submissions_;
  Ticket t = co_await inner_.submitUnpack(std::move(layout), packed, origin);
  breakdown_ += inner_.breakdown();
  inner_.breakdown().reset();
  co_return t;
}

bool AdaptiveGdrEngine::done(const Ticket& t) { return inner_.done(t); }

sim::Task<void> AdaptiveGdrEngine::progress() { co_return; }

}  // namespace dkf::schemes
