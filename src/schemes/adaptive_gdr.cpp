#include "schemes/adaptive_gdr.hpp"

#include <string>

namespace dkf::schemes {

namespace {
CpuGpuHybridEngine::Tuning productionTuning() {
  CpuGpuHybridEngine::Tuning t;
  // The production library switches to the CPU path only for genuinely
  // small-and-dense data, and its per-block loop carries more runtime
  // bookkeeping than the research prototype of [24].
  t.cpu_max_bytes = 64 * 1024;
  t.cpu_max_blocks = 128;
  t.per_block_cost = ns(75);
  return t;
}
}  // namespace

AdaptiveGdrEngine::AdaptiveGdrEngine(sim::Engine& eng, sim::CpuTimeline& cpu,
                                     gpu::Gpu& gpu)
    : eng_(&eng), inner_(eng, cpu, gpu, productionTuning()) {}

void AdaptiveGdrEngine::setTracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ && tracer_->isEnabled()) {
    track_ = tracer_->track("MVAPICH2-GDR");
  }
}

void AdaptiveGdrEngine::traceRoute(const ddt::Layout& layout,
                                   const char* what) {
  if (!tracer_ || !tracer_->isEnabled()) return;
  const char* route = inner_.usesCpuPath(layout) ? "gdrcopy" : "gpu-sync";
  tracer_->instant(track_,
                   std::string(route) + " " + what + "[" +
                       std::to_string(layout.size()) + " B]",
                   eng_->now(), "adaptive");
}

sim::Task<Ticket> AdaptiveGdrEngine::submitPack(ddt::LayoutPtr layout,
                                                gpu::MemSpan origin,
                                                gpu::MemSpan packed) {
  ++submissions_;
  traceRoute(*layout, "pack");
  Ticket t = co_await inner_.submitPack(std::move(layout), origin, packed);
  breakdown_ += inner_.breakdown();
  inner_.breakdown().reset();
  co_return t;
}

sim::Task<Ticket> AdaptiveGdrEngine::submitUnpack(ddt::LayoutPtr layout,
                                                  gpu::MemSpan packed,
                                                  gpu::MemSpan origin) {
  ++submissions_;
  traceRoute(*layout, "unpack");
  Ticket t = co_await inner_.submitUnpack(std::move(layout), packed, origin);
  breakdown_ += inner_.breakdown();
  inner_.breakdown().reset();
  co_return t;
}

bool AdaptiveGdrEngine::done(const Ticket& t) { return inner_.done(t); }

sim::Task<void> AdaptiveGdrEngine::progress() { co_return; }

}  // namespace dkf::schemes
