// GPU-Async [23]: every operation gets its own kernel on a round-robin
// stream pool; completion is tracked with cudaEventRecord at submit time and
// polled with cudaEventQuery from the progress loop — the ASYNCHRONOUS lane
// of Fig. 2. Overlap is possible in principle, but each operation still
// pays a full kernel launch plus the event-management driver calls, which
// is exactly why the paper finds it can run *behind* GPU-Sync on fast
// machines (§V-B).
#pragma once

#include <unordered_map>
#include <vector>

#include "gpu/gpu.hpp"
#include "sim/cpu.hpp"
#include "schemes/ddt_engine.hpp"
#include "sim/engine.hpp"

namespace dkf::schemes {

class GpuAsyncEngine final : public DdtEngine {
 public:
  GpuAsyncEngine(sim::Engine& eng, sim::CpuTimeline& cpu, gpu::Gpu& gpu,
                 std::size_t streams = 4);

  std::string_view name() const override { return "GPU-Async"; }

  sim::Task<Ticket> submitPack(ddt::LayoutPtr layout, gpu::MemSpan origin,
                               gpu::MemSpan packed) override;
  sim::Task<Ticket> submitUnpack(ddt::LayoutPtr layout, gpu::MemSpan packed,
                                 gpu::MemSpan origin) override;
  bool done(const Ticket& t) override;
  sim::Task<void> progress() override;

  std::size_t outstanding() const { return events_.size(); }

 private:
  sim::Task<Ticket> launchOne(gpu::Gpu::Op op);

  sim::Engine* eng_;
  sim::CpuTimeline* cpu_;
  gpu::Gpu* gpu_;
  std::vector<gpu::Gpu::StreamId> streams_;
  std::size_t next_stream_{0};
  std::unordered_map<std::int64_t, gpu::Gpu::EventId> events_;
  std::int64_t next_id_{0};
  DurationNs deferred_query_cost_{0};  ///< cudaEventQuery calls issued by
                                       ///< done(); paid at the next
                                       ///< progress() pass
};

}  // namespace dkf::schemes
