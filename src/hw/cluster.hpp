// Cluster assembly: nodes of GPUs connected by a fabric, built from a
// MachineSpec. This is the root object every experiment constructs.
#pragma once

#include <memory>
#include <vector>

#include "gpu/gpu.hpp"
#include "hw/spec.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace dkf::hw {

class Node {
 public:
  Node(sim::Engine& eng, const MachineSpec& machine, int node_id,
       int first_gpu_id);

  int id() const { return id_; }
  std::size_t gpuCount() const { return gpus_.size(); }
  gpu::Gpu& gpu(std::size_t local_index);
  const NodeSpec& spec() const { return *spec_; }

 private:
  int id_;
  const NodeSpec* spec_;
  std::vector<std::unique_ptr<gpu::Gpu>> gpus_;
};

class Cluster {
 public:
  Cluster(sim::Engine& eng, MachineSpec machine, std::size_t node_count);

  const MachineSpec& machine() const { return machine_; }
  std::size_t nodeCount() const { return nodes_.size(); }
  std::size_t gpuCount() const {
    return nodes_.size() * machine_.node.gpus_per_node;
  }

  Node& node(std::size_t i);
  /// GPU by global id (node-major order).
  gpu::Gpu& gpu(std::size_t global_id);
  int nodeOfGpu(std::size_t global_id) const {
    return static_cast<int>(global_id / machine_.node.gpus_per_node);
  }

  net::Fabric& fabric() { return fabric_; }
  sim::Engine& engine() { return *eng_; }

  /// Wire a fault plan through the whole machine: the fabric (drops,
  /// stalls, degradation windows) and every GPU (launch and allocation
  /// failures). nullptr detaches everywhere.
  void setFaultPlan(fault::FaultPlan* plan);

 private:
  sim::Engine* eng_;
  MachineSpec machine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  net::Fabric fabric_;
};

}  // namespace dkf::hw
