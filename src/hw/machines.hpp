// The two evaluation platforms of the paper (Table II), plus the older GPU
// generations Fig. 1 sweeps across.
#pragma once

#include "hw/spec.hpp"

namespace dkf::hw {

/// LLNL Lassen: POWER9 + 4x V100, NVLink2 everywhere (CPU<->GPU 75 GB/s),
/// dual-rail IB EDR, GDRCopy kernel module available.
MachineSpec lassen();

/// ABCI: Xeon Gold + 4x V100, PCIe Gen3 x16 CPU<->GPU behind shared switches
/// (effective ~12 GB/s), NVLink2 50 GB/s between GPUs, IB EDR x2. No GDRCopy
/// module (the paper notes it "may not be available in all HPC systems").
MachineSpec abci();

/// GPU generations for the Fig. 1 launch-overhead motivation study.
GpuSpec gpuK80();
GpuSpec gpuP100();
GpuSpec gpuV100();

}  // namespace dkf::hw
