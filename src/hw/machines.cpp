#include "hw/machines.hpp"

namespace dkf::hw {

GpuSpec gpuK80() {
  GpuSpec g;
  g.name = "Tesla K80";
  g.sm_count = 13;
  g.blocks_per_sm = 2;
  g.memory_bytes = 12ull << 30;
  g.hbm_bandwidth = GBps(240);
  g.kernel_launch_overhead = ns(12500);
  g.driver_call_overhead = ns(1600);
  g.kernel_fixed_cost = ns(1500);
  return g;
}

GpuSpec gpuP100() {
  GpuSpec g;
  g.name = "Tesla P100";
  g.sm_count = 56;
  g.blocks_per_sm = 2;
  g.memory_bytes = 16ull << 30;
  g.hbm_bandwidth = GBps(720);
  g.kernel_launch_overhead = ns(10800);
  g.driver_call_overhead = ns(1300);
  g.kernel_fixed_cost = ns(950);
  return g;
}

GpuSpec gpuV100() {
  GpuSpec g;  // defaults in GpuSpec are the V100 numbers
  return g;
}

MachineSpec lassen() {
  MachineSpec m;
  m.name = "Lassen (POWER9 + V100, NVLink2, IB EDR x2)";
  m.node.gpus_per_node = 4;
  m.node.gpu = gpuV100();
  m.node.cpu_gpu = LinkSpec{"NVLink2 CPU-GPU", ns(1200), GBps(75)};
  m.node.gpu_gpu = LinkSpec{"NVLink2 GPU-GPU", ns(1100), GBps(75)};
  m.node.gdrcopy = GdrCopySpec{.available = true,
                               .latency = ns(400),
                               .write_bandwidth = GBps(6),
                               .read_bandwidth = MBps(500)};
  m.node.host_memcpy_bandwidth = GBps(14);
  m.internode = LinkSpec{"IB EDR dual-rail", ns(1300), GBps(25)};
  m.rdma_setup = ns(900);
  m.eager_threshold = 8192;
  return m;
}

MachineSpec abci() {
  MachineSpec m;
  m.name = "ABCI (Xeon + V100, PCIe Gen3, IB EDR x2)";
  m.node.gpus_per_node = 4;
  GpuSpec g = gpuV100();
  // Slightly higher driver costs on the x86 + PCIe platform (newer driver,
  // but no NVLink-attached host; matches the paper's ABCI latencies being
  // uniformly above Lassen's for CPU-driven paths).
  g.kernel_launch_overhead = ns(10500);
  g.driver_call_overhead = ns(1300);
  m.node.gpu = g;
  // PCIe Gen3 x16 is 16 GB/s raw; behind the paper's x64 switches the
  // effective host<->device streaming rate is ~12 GB/s.
  m.node.cpu_gpu = LinkSpec{"PCIe Gen3 x16 (switched)", ns(1800), GBps(12)};
  m.node.gpu_gpu = LinkSpec{"NVLink2 GPU-GPU", ns(1100), GBps(50)};
  m.node.gdrcopy = GdrCopySpec{.available = false};
  m.node.host_memcpy_bandwidth = GBps(12);
  m.internode = LinkSpec{"IB EDR x2", ns(1500), GBps(25)};
  m.rdma_setup = ns(1000);
  m.eager_threshold = 8192;
  return m;
}

}  // namespace dkf::hw
