#include "hw/cluster.hpp"

#include "common/check.hpp"

namespace dkf::hw {

Node::Node(sim::Engine& eng, const MachineSpec& machine, int node_id,
           int first_gpu_id)
    : id_(node_id), spec_(&machine.node) {
  gpus_.reserve(machine.node.gpus_per_node);
  for (std::size_t g = 0; g < machine.node.gpus_per_node; ++g) {
    gpus_.push_back(std::make_unique<gpu::Gpu>(
        eng, machine.node, first_gpu_id + static_cast<int>(g)));
  }
}

gpu::Gpu& Node::gpu(std::size_t local_index) {
  DKF_CHECK(local_index < gpus_.size());
  return *gpus_[local_index];
}

Cluster::Cluster(sim::Engine& eng, MachineSpec machine, std::size_t node_count)
    : eng_(&eng),
      machine_(std::move(machine)),
      fabric_(eng, machine_, node_count) {
  DKF_CHECK(node_count > 0);
  nodes_.reserve(node_count);
  for (std::size_t n = 0; n < node_count; ++n) {
    nodes_.push_back(std::make_unique<Node>(
        eng, machine_, static_cast<int>(n),
        static_cast<int>(n * machine_.node.gpus_per_node)));
  }
}

Node& Cluster::node(std::size_t i) {
  DKF_CHECK(i < nodes_.size());
  return *nodes_[i];
}

void Cluster::setFaultPlan(fault::FaultPlan* plan) {
  fabric_.setFaultPlan(plan);
  for (auto& node : nodes_) {
    for (std::size_t g = 0; g < node->gpuCount(); ++g) {
      node->gpu(g).setFaultPlan(plan);
    }
  }
}

gpu::Gpu& Cluster::gpu(std::size_t global_id) {
  DKF_CHECK(global_id < gpuCount());
  const std::size_t n = global_id / machine_.node.gpus_per_node;
  const std::size_t l = global_id % machine_.node.gpus_per_node;
  return nodes_[n]->gpu(l);
}

}  // namespace dkf::hw
