// Hardware specifications: the calibration constants of DESIGN.md §5.
//
// A `MachineSpec` captures everything Table II of the paper reports about
// Lassen and ABCI plus the microarchitectural constants the cost model needs
// (kernel launch overhead, driver call cost, HBM bandwidth, access-efficiency
// knee). Every experiment binary selects a machine spec; nothing else in the
// simulator hard-codes hardware numbers.
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace dkf::hw {

/// One-way point-to-point channel characteristics.
struct LinkSpec {
  std::string name;
  DurationNs latency{us(1)};
  BytesPerSecond bandwidth{GBps(10)};
};

/// GDRCopy-style BAR1 window (CPU load/store into device memory) [34].
/// Writes are fast (posted, write-combined); reads are notoriously slow.
struct GdrCopySpec {
  bool available{false};
  DurationNs latency{ns(400)};
  BytesPerSecond write_bandwidth{GBps(6)};
  BytesPerSecond read_bandwidth{MBps(500)};
};

/// GPU execution model parameters.
struct GpuSpec {
  std::string name{"V100-SXM2-16GB"};
  std::size_t sm_count{80};
  std::size_t blocks_per_sm{2};  ///< resident thread blocks per SM for the
                                 ///< copy-bound kernels we model
  std::size_t memory_bytes{16ull << 30};
  /// Backing-store size for the simulated HBM arena. The experiments'
  /// working sets are tens of MiB, so the simulator does not reserve the
  /// full 16 GB of host RAM per GPU; raise this for bigger workloads.
  std::size_t arena_bytes{96ull << 20};
  BytesPerSecond hbm_bandwidth{GBps(900)};

  /// CPU-side cost of cudaLaunchKernel — the paper's central constant
  /// (Fig. 1: ~10 us on V100, dwarfing the packing kernels themselves).
  DurationNs kernel_launch_overhead{ns(9500)};
  /// CPU-side cost of lightweight driver calls: cudaEventRecord/Query,
  /// cudaMemcpyAsync issue, stream queries [26].
  DurationNs driver_call_overhead{ns(1100)};
  /// GPU-side pipeline setup once a kernel reaches the head of its stream.
  DurationNs kernel_fixed_cost{ns(700)};
  /// Per-wave scheduling cost on the device.
  DurationNs wave_overhead{ns(120)};
  /// Startup latency of a device-local (D2D same-GPU) DMA copy.
  DurationNs local_copy_latency{ns(500)};

  /// Strided-access efficiency: contiguous runs of at least
  /// `full_efficiency_run` bytes stream at peak HBM bandwidth; shorter runs
  /// degrade linearly down to `min_efficiency` (uncoalesced accesses).
  std::size_t full_efficiency_run{4096};
  double min_efficiency{0.10};

  std::size_t totalBlockSlots() const { return sm_count * blocks_per_sm; }

  /// Fraction of peak HBM bandwidth achieved for a mean contiguous run of
  /// `run_bytes`.
  double accessEfficiency(double run_bytes) const;
};

/// A node: CPUs + identical GPUs + one NIC.
struct NodeSpec {
  std::size_t gpus_per_node{4};
  GpuSpec gpu;
  LinkSpec cpu_gpu;   ///< host <-> device staging path (NVLink2 or PCIe)
  LinkSpec gpu_gpu;   ///< peer path between GPUs in the node (NVLink2)
  GdrCopySpec gdrcopy;
  BytesPerSecond host_memcpy_bandwidth{GBps(12)};
  DurationNs host_memcpy_latency{ns(300)};
};

/// A whole machine: homogeneous nodes over an InfiniBand fabric.
struct MachineSpec {
  std::string name;
  NodeSpec node;
  LinkSpec internode;            ///< per-direction IB EDR path
  DurationNs rdma_setup{ns(900)};  ///< verb post + completion handling
  DurationNs nic_per_message{ns(300)};
  std::size_t eager_threshold{8192};  ///< bytes; above this use rendezvous

  /// Effective bandwidth for GPUDirect RDMA: bounded by the slower of the
  /// NIC and the path from the NIC to device memory.
  BytesPerSecond gpuDirectBandwidth() const;
};

}  // namespace dkf::hw
