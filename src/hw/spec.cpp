#include "hw/spec.hpp"

#include <algorithm>

namespace dkf::hw {

double GpuSpec::accessEfficiency(double run_bytes) const {
  if (run_bytes <= 0.0) return min_efficiency;
  const double frac = run_bytes / static_cast<double>(full_efficiency_run);
  return std::clamp(frac, min_efficiency, 1.0);
}

BytesPerSecond MachineSpec::gpuDirectBandwidth() const {
  return BytesPerSecond{
      std::min(internode.bandwidth.value, node.cpu_gpu.bandwidth.value)};
}

}  // namespace dkf::hw
