// CpuTimeline: the serializing one-thread-per-rank resource.
#include <gtest/gtest.h>

#include <vector>

#include "hw/machines.hpp"
#include "sim/cpu.hpp"

namespace dkf::sim {
namespace {

TEST(CpuTimeline, BusySlicesSerialize) {
  Engine eng;
  CpuTimeline cpu(eng);
  std::vector<TimeNs> done;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](CpuTimeline& c, std::vector<TimeNs>& out,
                 Engine& e) -> Task<void> {
      co_await c.busy(us(10));
      out.push_back(e.now());
    }(cpu, done, eng));
  }
  eng.run();
  // Three concurrent claimants of one CPU: 10, 20, 30 us.
  EXPECT_EQ(done, (std::vector<TimeNs>{us(10), us(20), us(30)}));
  EXPECT_EQ(cpu.totalBusy(), us(30));
}

TEST(CpuTimeline, HoldUntilReturnsSpinTime) {
  Engine eng;
  CpuTimeline cpu(eng);
  DurationNs held = 0;
  eng.spawn([](CpuTimeline& c, DurationNs& out) -> Task<void> {
    out = co_await c.holdUntil(us(50));
  }(cpu, held));
  eng.run();
  EXPECT_EQ(held, us(50));
  EXPECT_EQ(eng.now(), us(50));
}

TEST(CpuTimeline, HoldUntilPastTimeIsFree) {
  Engine eng;
  eng.schedule(us(100), [] {});
  eng.run();
  CpuTimeline cpu(eng);
  DurationNs held = 99;
  eng.spawn([](CpuTimeline& c, DurationNs& out) -> Task<void> {
    out = co_await c.holdUntil(us(10));  // already in the past
  }(cpu, held));
  eng.run();
  EXPECT_EQ(held, 0u);
}

TEST(CpuTimeline, HoldQueuesBehindBusyWork) {
  Engine eng;
  CpuTimeline cpu(eng);
  DurationNs held = 0;
  TimeNs hold_done = 0;
  eng.spawn([](CpuTimeline& c) -> Task<void> {
    co_await c.busy(us(30));
  }(cpu));
  eng.spawn([](CpuTimeline& c, DurationNs& h, TimeNs& done,
               Engine& e) -> Task<void> {
    h = co_await c.holdUntil(us(20));  // device ready at 20, CPU free at 30
    done = e.now();
  }(cpu, held, hold_done, eng));
  eng.run();
  EXPECT_EQ(hold_done, us(30));  // could not start before the busy slice
  EXPECT_EQ(held, 0u);           // device was already done: no spin time
}

TEST(CpuTimeline, InterleavedBusyAndIdle) {
  Engine eng;
  CpuTimeline cpu(eng);
  TimeNs second_done = 0;
  eng.spawn([](CpuTimeline& c, Engine& e, TimeNs& out) -> Task<void> {
    co_await c.busy(us(5));
    co_await e.delay(us(100));  // idle (not holding the CPU)
    co_await c.busy(us(5));
    out = e.now();
  }(cpu, eng, second_done));
  TimeNs other_done = 0;
  eng.spawn([](CpuTimeline& c, Engine& e, TimeNs& out) -> Task<void> {
    co_await c.busy(us(20));  // runs while the first task idles
    out = e.now();
  }(cpu, eng, other_done));
  eng.run();
  EXPECT_EQ(other_done, us(25));    // queued behind the first 5 us slice
  EXPECT_EQ(second_done, us(110));  // 5 + 100 idle + 5
  EXPECT_EQ(cpu.totalBusy(), us(30));
}

TEST(CpuTimeline, EachRankHasIndependentCpu) {
  Engine eng;
  CpuTimeline cpu_a(eng), cpu_b(eng);
  std::vector<TimeNs> done;
  for (auto* cpu : {&cpu_a, &cpu_b}) {
    eng.spawn([](CpuTimeline& c, std::vector<TimeNs>& out,
                 Engine& e) -> Task<void> {
      co_await c.busy(us(10));
      out.push_back(e.now());
    }(*cpu, done, eng));
  }
  eng.run();
  EXPECT_EQ(done, (std::vector<TimeNs>{us(10), us(10)}));  // parallel ranks
}

}  // namespace
}  // namespace dkf::sim
