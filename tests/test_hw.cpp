// Machine specs (Table II) and the GPU access-efficiency model.
#include <gtest/gtest.h>

#include "hw/machines.hpp"

namespace dkf::hw {
namespace {

TEST(MachineSpecs, LassenMatchesTableII) {
  const auto m = lassen();
  EXPECT_EQ(m.node.gpus_per_node, 4u);
  EXPECT_DOUBLE_EQ(m.node.cpu_gpu.bandwidth.value, 75e9);   // NVLink2
  EXPECT_DOUBLE_EQ(m.node.gpu_gpu.bandwidth.value, 75e9);
  EXPECT_DOUBLE_EQ(m.internode.bandwidth.value, 25e9);      // IB EDR
  EXPECT_TRUE(m.node.gdrcopy.available);
  EXPECT_EQ(m.node.gpu.sm_count, 80u);  // V100
}

TEST(MachineSpecs, AbciMatchesTableII) {
  const auto m = abci();
  EXPECT_EQ(m.node.gpus_per_node, 4u);
  EXPECT_LT(m.node.cpu_gpu.bandwidth.value, 16e9);          // PCIe switched
  EXPECT_DOUBLE_EQ(m.node.gpu_gpu.bandwidth.value, 50e9);   // NVLink2
  EXPECT_DOUBLE_EQ(m.internode.bandwidth.value, 25e9);
  EXPECT_FALSE(m.node.gdrcopy.available);
}

TEST(MachineSpecs, LaunchOverheadNearTenMicroseconds) {
  // Fig. 1's central constant on every generation.
  for (const auto& g : {gpuK80(), gpuP100(), gpuV100()}) {
    EXPECT_GE(g.kernel_launch_overhead, us(9)) << g.name;
    EXPECT_LE(g.kernel_launch_overhead, us(13)) << g.name;
  }
}

TEST(MachineSpecs, GenerationsGetFasterButLaunchDoesNot) {
  EXPECT_LT(gpuK80().hbm_bandwidth.value, gpuP100().hbm_bandwidth.value);
  EXPECT_LT(gpuP100().hbm_bandwidth.value, gpuV100().hbm_bandwidth.value);
  // Launch overhead stays the same order across generations.
  EXPECT_LT(gpuK80().kernel_launch_overhead,
            2 * gpuV100().kernel_launch_overhead);
}

TEST(AccessEfficiency, MonotoneAndClamped) {
  const auto g = gpuV100();
  EXPECT_DOUBLE_EQ(g.accessEfficiency(0.0), g.min_efficiency);
  EXPECT_DOUBLE_EQ(g.accessEfficiency(-5.0), g.min_efficiency);
  EXPECT_DOUBLE_EQ(g.accessEfficiency(4096.0), 1.0);
  EXPECT_DOUBLE_EQ(g.accessEfficiency(1u << 20), 1.0);
  double prev = 0.0;
  for (double run : {8.0, 64.0, 512.0, 2048.0, 4096.0}) {
    const double eff = g.accessEfficiency(run);
    EXPECT_GE(eff, prev);
    prev = eff;
  }
  EXPECT_DOUBLE_EQ(g.accessEfficiency(2048.0), 0.5);
}

TEST(GpuDirect, BoundByTheSlowerOfNicAndHostLink) {
  // Lassen: NVLink 75 > IB 25 -> bound by IB.
  EXPECT_DOUBLE_EQ(lassen().gpuDirectBandwidth().value, 25e9);
  // ABCI: PCIe 12 < IB 25 -> bound by PCIe.
  EXPECT_DOUBLE_EQ(abci().gpuDirectBandwidth().value, 12e9);
}

TEST(TotalBlockSlots, SmTimesResidency) {
  EXPECT_EQ(gpuV100().totalBlockSlots(), 160u);
  EXPECT_EQ(gpuK80().totalBlockSlots(), 26u);
}

}  // namespace
}  // namespace dkf::hw
