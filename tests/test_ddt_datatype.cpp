// Unit tests for the datatype algebra: sizes, extents, flattening shapes.
#include <gtest/gtest.h>

#include <array>

#include "common/check.hpp"
#include "ddt/datatype.hpp"
#include "ddt/layout.hpp"

namespace dkf::ddt {
namespace {

TEST(Primitives, SizesAndExtents) {
  EXPECT_EQ(Datatype::byte()->size(), 1u);
  EXPECT_EQ(Datatype::char_()->size(), 1u);
  EXPECT_EQ(Datatype::int32()->size(), 4u);
  EXPECT_EQ(Datatype::int64()->size(), 8u);
  EXPECT_EQ(Datatype::float32()->size(), 4u);
  EXPECT_EQ(Datatype::float64()->size(), 8u);
  EXPECT_EQ(Datatype::complexDouble()->size(), 16u);
  for (auto& t : {Datatype::byte(), Datatype::int32(), Datatype::float64()}) {
    EXPECT_EQ(t->size(), t->extent());
    EXPECT_TRUE(t->isContiguousType());
    EXPECT_EQ(t->lb(), 0);
  }
}

TEST(Primitives, SingletonsShareIds) {
  EXPECT_EQ(Datatype::float64()->id(), Datatype::float64()->id());
  EXPECT_NE(Datatype::float64()->id(), Datatype::float32()->id());
}

TEST(Contiguous, SizeExtentAndFlatten) {
  auto t = Datatype::contiguous(10, Datatype::float64());
  EXPECT_EQ(t->size(), 80u);
  EXPECT_EQ(t->extent(), 80u);
  EXPECT_TRUE(t->isContiguousType());
  auto layout = flatten(t, 3);
  EXPECT_TRUE(layout.isContiguous());
  EXPECT_EQ(layout.size(), 240u);
  EXPECT_EQ(layout.blockCount(), 1u);
}

TEST(Contiguous, ZeroCount) {
  auto t = Datatype::contiguous(0, Datatype::int32());
  EXPECT_EQ(t->size(), 0u);
  EXPECT_EQ(t->extent(), 0u);
  EXPECT_EQ(flatten(t, 4).blockCount(), 0u);
}

TEST(Vector, ClassicStridedColumns) {
  // A "column" of a 4x8 double matrix: count=4 rows, blocklength=1,
  // stride=8 doubles.
  auto col = Datatype::vector(4, 1, 8, Datatype::float64());
  EXPECT_EQ(col->size(), 4u * 8u);
  EXPECT_EQ(col->extent(), (3u * 8u + 1u) * 8u);  // 25 doubles
  EXPECT_FALSE(col->isContiguousType());

  auto layout = flatten(col, 1);
  ASSERT_EQ(layout.blockCount(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(layout.materialize()[i].offset, static_cast<std::int64_t>(i * 64));
    EXPECT_EQ(layout.materialize()[i].len, 8u);
  }
}

TEST(Vector, StrideEqualBlocklengthIsContiguous) {
  auto t = Datatype::vector(6, 5, 5, Datatype::int32());
  EXPECT_TRUE(t->isContiguousType());
  EXPECT_EQ(flatten(t, 1).blockCount(), 1u);
  EXPECT_EQ(flatten(t, 1).size(), 6u * 5u * 4u);
}

TEST(Vector, MultipleCountsSpacedByExtent) {
  auto t = Datatype::vector(2, 1, 4, Datatype::byte());
  // extent: last block start 4 + 1 = 5 bytes.
  EXPECT_EQ(t->extent(), 5u);
  auto layout = flatten(t, 2);
  // Element 0: offsets {0, 4}; element 1 at +5: {5, 9} -> {4,5} coalesce.
  ASSERT_EQ(layout.blockCount(), 3u);
  EXPECT_EQ(layout.materialize()[0], (Segment{0, 1}));
  EXPECT_EQ(layout.materialize()[1], (Segment{4, 2}));
  EXPECT_EQ(layout.materialize()[2], (Segment{9, 1}));
}

TEST(Hvector, ByteStride) {
  auto t = Datatype::hvector(3, 2, 32, Datatype::float64());
  auto layout = flatten(t, 1);
  ASSERT_EQ(layout.blockCount(), 3u);
  EXPECT_EQ(layout.materialize()[1].offset, 32);
  EXPECT_EQ(layout.materialize()[1].len, 16u);
  EXPECT_EQ(t->size(), 48u);
  EXPECT_EQ(t->extent(), 2u * 32u + 16u);
}

TEST(Indexed, IrregularBlocks) {
  const std::array<std::size_t, 3> lens{2, 1, 3};
  const std::array<std::int64_t, 3> displs{0, 5, 9};
  auto t = Datatype::indexed(lens, displs, Datatype::int32());
  EXPECT_EQ(t->size(), 6u * 4u);
  EXPECT_EQ(t->extent(), (9u + 3u) * 4u);
  auto layout = flatten(t, 1);
  ASSERT_EQ(layout.blockCount(), 3u);
  EXPECT_EQ(layout.materialize()[0], (Segment{0, 8}));
  EXPECT_EQ(layout.materialize()[1], (Segment{20, 4}));
  EXPECT_EQ(layout.materialize()[2], (Segment{36, 12}));
}

TEST(Indexed, AdjacentBlocksCoalesce) {
  const std::array<std::size_t, 2> lens{3, 2};
  const std::array<std::int64_t, 2> displs{0, 3};
  auto t = Datatype::indexed(lens, displs, Datatype::float64());
  auto layout = flatten(t, 1);
  EXPECT_EQ(layout.blockCount(), 1u);
  EXPECT_EQ(layout.size(), 40u);
}

TEST(Hindexed, ByteDisplacements) {
  const std::array<std::size_t, 2> lens{1, 1};
  const std::array<std::int64_t, 2> displs{0, 100};
  auto t = Datatype::hindexed(lens, displs, Datatype::float64());
  auto layout = flatten(t, 1);
  ASSERT_EQ(layout.blockCount(), 2u);
  EXPECT_EQ(layout.materialize()[1].offset, 100);
  EXPECT_EQ(t->extent(), 108u);
}

TEST(IndexedBlock, UniformBlocks) {
  const std::array<std::int64_t, 4> displs{0, 4, 8, 12};
  auto t = Datatype::indexedBlock(2, displs, Datatype::int32());
  EXPECT_EQ(t->size(), 8u * 4u);
  auto layout = flatten(t, 1);
  // Blocks of 2 ints at 0,4,8,12 ints: [0,8),[16,24),[32,40),[48,56).
  ASSERT_EQ(layout.blockCount(), 4u);
  EXPECT_EQ(layout.materialize()[3], (Segment{48, 8}));
}

TEST(Struct, MixedMemberTypes) {
  // struct { double d; int i[2]; } with explicit displacements 0 and 8.
  const std::array<std::size_t, 2> lens{1, 2};
  const std::array<std::int64_t, 2> displs{0, 8};
  const std::array<DatatypePtr, 2> types{Datatype::float64(),
                                         Datatype::int32()};
  auto t = Datatype::struct_(lens, displs, types);
  EXPECT_EQ(t->size(), 16u);
  EXPECT_EQ(t->extent(), 16u);
  EXPECT_TRUE(t->isContiguousType());

  // With a hole: int at byte 12.
  const std::array<std::int64_t, 2> displs2{0, 12};
  auto t2 = Datatype::struct_(lens, displs2, types);
  EXPECT_EQ(t2->size(), 16u);
  EXPECT_EQ(t2->extent(), 20u);
  EXPECT_FALSE(t2->isContiguousType());
  auto layout = flatten(t2, 1);
  ASSERT_EQ(layout.blockCount(), 2u);
  EXPECT_EQ(layout.materialize()[1], (Segment{12, 8}));
}

TEST(Struct, OnIndexedNests) {
  // The specfem3D_cm shape: struct over an indexed type.
  const std::array<std::size_t, 2> ilens{1, 1};
  const std::array<std::int64_t, 2> idispls{0, 3};
  auto inner = Datatype::indexed(ilens, idispls, Datatype::float32());
  const std::array<std::size_t, 1> slens{2};
  const std::array<std::int64_t, 1> sdispls{0};
  const std::array<DatatypePtr, 1> stypes{inner};
  auto t = Datatype::struct_(slens, sdispls, stypes);
  auto layout = flatten(t, 1);
  // inner extent = 16 bytes; two copies give runs at {0,12} and {16,28};
  // the runs at 12 and 16 are adjacent and coalesce.
  ASSERT_EQ(layout.blockCount(), 3u);
  EXPECT_EQ(layout.materialize()[1], (Segment{12, 8}));
  EXPECT_EQ(layout.materialize()[2], (Segment{28, 4}));
}

TEST(Subarray, TwoDimensionalCOrder) {
  // 4x6 array of doubles, 2x3 sub-block starting at (1,2).
  const std::array<std::size_t, 2> sizes{4, 6};
  const std::array<std::size_t, 2> subsizes{2, 3};
  const std::array<std::size_t, 2> starts{1, 2};
  auto t = Datatype::subarray(sizes, subsizes, starts, Datatype::Order::C,
                              Datatype::float64());
  EXPECT_EQ(t->size(), 6u * 8u);
  EXPECT_EQ(t->extent(), 24u * 8u);
  auto layout = flatten(t, 1);
  ASSERT_EQ(layout.blockCount(), 2u);
  EXPECT_EQ(layout.materialize()[0], (Segment{(1 * 6 + 2) * 8, 24u}));
  EXPECT_EQ(layout.materialize()[1], (Segment{(2 * 6 + 2) * 8, 24u}));
}

TEST(Subarray, FortranOrderMatchesTransposedC) {
  const std::array<std::size_t, 2> sizes{6, 4};     // (fast, slow) in Fortran
  const std::array<std::size_t, 2> subsizes{3, 2};
  const std::array<std::size_t, 2> starts{2, 1};
  auto f = Datatype::subarray(sizes, subsizes, starts,
                              Datatype::Order::Fortran, Datatype::float64());
  const std::array<std::size_t, 2> csizes{4, 6};
  const std::array<std::size_t, 2> csub{2, 3};
  const std::array<std::size_t, 2> cstarts{1, 2};
  auto c = Datatype::subarray(csizes, csub, cstarts, Datatype::Order::C,
                              Datatype::float64());
  EXPECT_EQ(flatten(f, 1).materialize(), flatten(c, 1).materialize());
}

TEST(Subarray, FullSubarrayIsContiguous) {
  const std::array<std::size_t, 3> sizes{4, 5, 6};
  const std::array<std::size_t, 3> starts{0, 0, 0};
  auto t = Datatype::subarray(sizes, sizes, starts, Datatype::Order::C,
                              Datatype::float32());
  EXPECT_TRUE(t->isContiguousType());
  EXPECT_EQ(flatten(t, 1).blockCount(), 1u);
}

TEST(Subarray, OutOfBoundsThrows) {
  const std::array<std::size_t, 1> sizes{4};
  const std::array<std::size_t, 1> subsizes{3};
  const std::array<std::size_t, 1> starts{2};
  EXPECT_THROW(Datatype::subarray(sizes, subsizes, starts, Datatype::Order::C,
                                  Datatype::byte()),
               CheckFailure);
}

TEST(Resized, OverridesExtent) {
  auto t = Datatype::resized(0, 64, Datatype::float64());
  EXPECT_EQ(t->size(), 8u);
  EXPECT_EQ(t->extent(), 64u);
  auto layout = flatten(t, 3);
  ASSERT_EQ(layout.blockCount(), 3u);
  EXPECT_EQ(layout.materialize()[1].offset, 64);
  EXPECT_EQ(layout.materialize()[2].offset, 128);
}

TEST(NestedVector, MilcLikeShape) {
  // Nested vector-of-vector: the MILC 4-D face pattern in miniature.
  auto inner = Datatype::vector(3, 2, 4, Datatype::complexDouble());
  auto outer = Datatype::vector(2, 1, 3, inner);
  auto layout = flatten(outer, 1);
  EXPECT_EQ(layout.size(), 2u * 3u * 2u * 16u);
  EXPECT_EQ(layout.blockCount(), 6u);
  EXPECT_EQ(layout.minBlock(), 32u);
}

TEST(Layout, StatsAndDensity) {
  const std::array<std::size_t, 3> lens{1, 2, 3};
  const std::array<std::int64_t, 3> displs{0, 10, 20};
  auto t = Datatype::indexed(lens, displs, Datatype::int32());
  auto layout = flatten(t, 1);
  EXPECT_EQ(layout.minBlock(), 4u);
  EXPECT_EQ(layout.maxBlock(), 12u);
  EXPECT_DOUBLE_EQ(layout.meanBlock(), 8.0);
  EXPECT_DOUBLE_EQ(layout.density(),
                   static_cast<double>(layout.size()) /
                       static_cast<double>(layout.extent()));
}

TEST(Layout, EmptyLayout) {
  auto t = Datatype::contiguous(0, Datatype::byte());
  auto layout = flatten(t, 5);
  EXPECT_EQ(layout.blockCount(), 0u);
  EXPECT_EQ(layout.size(), 0u);
  EXPECT_TRUE(layout.isContiguous());
  EXPECT_DOUBLE_EQ(layout.meanBlock(), 0.0);
}

TEST(LayoutCache, HitsAndMisses) {
  LayoutCache cache;
  auto t = Datatype::vector(8, 2, 4, Datatype::float64());
  auto a = cache.get(t, 10);
  EXPECT_EQ(cache.misses(), 1u);  // element form flattened once
  EXPECT_EQ(cache.hits(), 0u);
  auto b = cache.get(t, 10);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a.get(), b.get());  // shared entry
  // A different count is NOT a second flatten: the cached element form is
  // re-derived in O(groups), which counts as a hit.
  auto c = cache.get(t, 11);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  // Only count=11 is a derivation *from the cached form*; count=10 rode the
  // miss that created the form.
  EXPECT_EQ(cache.counters().derivations, 1u);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.entries(), 2u);  // the two derived (type, count) layouts
  EXPECT_EQ(cache.elementForms(), 1u);
  EXPECT_GT(cache.residentBytes(), 0u);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.residentBytes(), 0u);
}

TEST(LayoutCache, LruEvictionRespectsEntryBudget) {
  LayoutCacheLimits limits;
  limits.max_entries = 4;
  LayoutCache cache(limits);
  auto t1 = Datatype::vector(4, 1, 2, Datatype::float64());
  auto t2 = Datatype::vector(5, 1, 2, Datatype::float64());
  auto t3 = Datatype::vector(6, 1, 2, Datatype::float64());
  cache.get(t1, 2);  // resident: t1-elem, t1@2
  cache.get(t2, 2);  // + t2-elem, t2@2 = 4 total
  EXPECT_EQ(cache.entries() + cache.elementForms(), 4u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.get(t3, 2);  // 2 inserts -> 2 evictions of the LRU (t1) entries
  EXPECT_EQ(cache.entries() + cache.elementForms(), 4u);
  EXPECT_EQ(cache.evictions(), 2u);
  // t1 was evicted: fetching it again re-flattens (a fresh miss).
  const auto misses_before = cache.misses();
  cache.get(t1, 2);
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(LayoutCache, ByteBudgetBoundsResidency) {
  LayoutCacheLimits limits;
  limits.max_bytes = 2048;
  LayoutCache cache(limits);
  for (std::size_t n = 1; n <= 32; ++n) {
    std::vector<std::int64_t> displs(2 * n);
    for (std::size_t i = 0; i < displs.size(); ++i) {
      displs[i] = static_cast<std::int64_t>(3 * i);
    }
    auto t = Datatype::indexedBlock(1, displs, Datatype::float64());
    cache.get(t, 4);
  }
  EXPECT_LE(cache.residentBytes(), 2048u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(LayoutCache, CountSweepIsOneFlatten) {
  // The headline property: sweeping count over one type costs ONE flatten
  // total; every other lookup is served from the cached element form.
  LayoutCache cache;
  auto t = Datatype::vector(16, 2, 4, Datatype::float64());
  std::size_t lookups = 0;
  for (std::size_t count = 1; count <= 512; ++count) {
    auto l = cache.get(t, count);
    EXPECT_EQ(l->size(), count * 16u * 2u * 8u);
    ++lookups;
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), lookups - 1);
  const double hit_rate = static_cast<double>(cache.hits()) /
                          static_cast<double>(cache.hits() + cache.misses());
  EXPECT_GE(hit_rate, 0.99);
}

TEST(Describe, MentionsShape) {
  auto t = Datatype::vector(4, 1, 8, Datatype::float64());
  EXPECT_NE(t->describe().find("hvector"), std::string::npos);
  EXPECT_NE(Datatype::float64()->describe().find("double"), std::string::npos);
}

}  // namespace
}  // namespace dkf::ddt
