// Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start):
// restartability, data correctness across restarts, misuse checks, and the
// iterative-halo usage pattern.
#include <gtest/gtest.h>

#include <cstring>

#include "common/check.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"

namespace dkf::mpi {
namespace {

struct PersistWorld {
  PersistWorld()
      : cluster(eng, hw::lassen(), 2),
        rt(cluster, [] {
          RuntimeConfig cfg;
          cfg.scheme = schemes::Scheme::Proposed;
          return cfg;
        }()) {}

  sim::Engine eng;
  hw::Cluster cluster;
  Runtime rt;
};

TEST(Persistent, RestartDeliversFreshData) {
  PersistWorld w;
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto type = ddt::Datatype::vector(64, 2, 6, ddt::Datatype::float64());
  const auto region = static_cast<std::size_t>(type->extent());
  auto sbuf = p0.allocDevice(region);
  auto rbuf = p4.allocDevice(region);

  constexpr int kRounds = 4;
  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.sendInit(b, t, 1, 4, 0);
    EXPECT_FALSE(req->active);
    for (int round = 0; round < kRounds; ++round) {
      // New payload each round: the restarted send must pick it up.
      std::memset(b.bytes.data(), 0x30 + round, b.size());
      co_await p.start(req);
      EXPECT_TRUE(req->active);
      co_await p.wait(req);
      EXPECT_FALSE(req->active);
      co_await p.barrier(2);
    }
  }(p0, sbuf, type));
  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.recvInit(b, t, 1, 0, 0);
    for (int round = 0; round < kRounds; ++round) {
      co_await p.start(req);
      co_await p.wait(req);
      // Data of THIS round (layout bytes carry the round marker).
      EXPECT_EQ(b.bytes[0], static_cast<std::byte>(0x30 + round)) << round;
      co_await p.barrier(2);
    }
  }(p4, rbuf, type));
  w.eng.run();
  EXPECT_EQ(w.eng.unfinishedTasks(), 0u);
}

TEST(Persistent, StartingTwiceThrows) {
  PersistWorld w;
  auto& p0 = w.rt.proc(0);
  auto sbuf = p0.allocDevice(256);
  bool threw = false;
  w.eng.spawn([](Proc& p, gpu::MemSpan b, bool& out) -> sim::Task<void> {
    auto req = co_await p.sendInit(b, ddt::Datatype::byte(), 256, 4, 0);
    co_await p.start(req);
    try {
      co_await p.start(req);
    } catch (const CheckFailure&) {
      out = true;
    }
  }(p0, sbuf, threw));
  // Drain: post the matching recv so the world finishes cleanly.
  auto rbuf = w.rt.proc(4).allocDevice(256);
  w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
    auto req = co_await p.irecv(b, ddt::Datatype::byte(), 256, 0, 0);
    co_await p.wait(req);
  }(w.rt.proc(4), rbuf));
  w.eng.run();
  EXPECT_TRUE(threw);
}

TEST(Persistent, StartOnNonPersistentThrows) {
  PersistWorld w;
  auto& p0 = w.rt.proc(0);
  auto sbuf = p0.allocDevice(64);
  auto rbuf = w.rt.proc(4).allocDevice(64);
  bool threw = false;
  w.eng.spawn([](Proc& p, gpu::MemSpan b, bool& out) -> sim::Task<void> {
    auto req = co_await p.isend(b, ddt::Datatype::byte(), 64, 4, 0);
    try {
      co_await p.start(req);
    } catch (const CheckFailure&) {
      out = true;
    }
    co_await p.wait(req);
  }(p0, sbuf, threw));
  w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
    auto req = co_await p.irecv(b, ddt::Datatype::byte(), 64, 0, 0);
    co_await p.wait(req);
  }(w.rt.proc(4), rbuf));
  w.eng.run();
  EXPECT_TRUE(threw);
}

TEST(Persistent, StartallHaloPattern) {
  // The iterative-application pattern: init all twelve face requests once,
  // then startall + waitall per timestep.
  PersistWorld w;
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto type = ddt::Datatype::vector(32, 4, 12, ddt::Datatype::float64());
  const auto region = static_cast<std::size_t>(type->extent());
  constexpr int kFaces = 6;

  std::vector<gpu::MemSpan> sbufs, rbufs;
  for (int f = 0; f < kFaces; ++f) {
    sbufs.push_back(p0.allocDevice(region));
    rbufs.push_back(p4.allocDevice(region));
  }

  w.eng.spawn([](Proc& p, std::vector<gpu::MemSpan>& bufs,
                 ddt::DatatypePtr t) -> sim::Task<void> {
    std::vector<RequestPtr> reqs;
    for (int f = 0; f < kFaces; ++f) {
      std::memset(bufs[f].bytes.data(), 0x60 + f, bufs[f].size());
      reqs.push_back(co_await p.sendInit(bufs[f], t, 1, 4, f));
    }
    for (int step = 0; step < 3; ++step) {
      co_await p.startall(reqs);
      co_await p.waitall(reqs);
      co_await p.barrier(2);
    }
  }(p0, sbufs, type));
  w.eng.spawn([](Proc& p, std::vector<gpu::MemSpan>& bufs,
                 ddt::DatatypePtr t) -> sim::Task<void> {
    std::vector<RequestPtr> reqs;
    for (int f = 0; f < kFaces; ++f) {
      reqs.push_back(co_await p.recvInit(bufs[f], t, 1, 0, f));
    }
    for (int step = 0; step < 3; ++step) {
      co_await p.startall(reqs);
      co_await p.waitall(reqs);
      co_await p.barrier(2);
    }
  }(p4, rbufs, type));
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);
  for (int f = 0; f < kFaces; ++f) {
    EXPECT_EQ(rbufs[f].bytes[0], static_cast<std::byte>(0x60 + f));
  }
  // All staging reclaimed after three rounds.
  EXPECT_EQ(p0.gpu().memory().liveAllocations(), kFaces);
  EXPECT_EQ(p4.gpu().memory().liveAllocations(), kFaces);
}

}  // namespace
}  // namespace dkf::mpi
