// Per-engine unit tests: data-movement correctness through the DdtEngine
// interface, path-selection heuristics, cost accounting, and the behaviours
// that differentiate the schemes in the paper's evaluation.
#include <gtest/gtest.h>

#include <cstring>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ddt/pack.hpp"
#include "hw/machines.hpp"
#include "schemes/adaptive_gdr.hpp"
#include "schemes/cpu_gpu_hybrid.hpp"
#include "schemes/factory.hpp"
#include "schemes/fusion_engine.hpp"
#include "schemes/gpu_async.hpp"
#include "schemes/gpu_sync.hpp"
#include "schemes/hybrid_fusion.hpp"
#include "schemes/naive_copy.hpp"

namespace dkf::schemes {
namespace {

class SchemeFixture : public ::testing::Test {
 public:
  SchemeFixture()
      : machine_(hw::lassen()), cpu_(eng_), gpu_(eng_, machine_.node, 0) {}

  ddt::LayoutPtr makeLayout(std::size_t blocks, std::size_t blocklen,
                            std::size_t stride) {
    return std::make_shared<const ddt::Layout>(ddt::flatten(
        ddt::Datatype::vector(blocks, blocklen,
                              static_cast<std::int64_t>(stride),
                              ddt::Datatype::byte()),
        1));
  }

  gpu::MemSpan filled(std::size_t bytes, std::uint64_t seed) {
    auto span = gpu_.memory().allocate(bytes);
    Rng rng(seed);
    for (auto& b : span.bytes) b = static_cast<std::byte>(rng.below(256));
    return span;
  }

  /// Drive the engine until ticket completion (flush + poll loop).
  void completeTicket(DdtEngine& engine, Ticket t) {
    eng_.spawn([](sim::Engine& eng, DdtEngine& e, Ticket tk) -> sim::Task<void> {
      co_await e.flush();
      while (!e.done(tk)) {
        co_await e.progress();
        co_await e.flush();
        co_await eng.delay(200);
      }
    }(eng_, engine, t));
    eng_.run();
  }

  /// Pack through `engine` and compare with the host reference.
  void verifyPackRoundTrip(DdtEngine& engine) {
    auto layout = makeLayout(32, 16, 48);
    auto origin = filled(static_cast<std::size_t>(layout->endOffset()), 1);
    auto packed = gpu_.memory().allocate(layout->size());

    Ticket ticket;
    eng_.spawn([](DdtEngine& e, ddt::LayoutPtr l, gpu::MemSpan o,
                  gpu::MemSpan p, Ticket& out) -> sim::Task<void> {
      out = co_await e.submitPack(std::move(l), o, p);
    }(engine, layout, origin, packed, ticket));
    eng_.run();
    completeTicket(engine, ticket);

    std::vector<std::byte> expect(layout->size());
    ddt::packCpu(*layout, origin.bytes, expect);
    ASSERT_EQ(std::memcmp(packed.bytes.data(), expect.data(), expect.size()),
              0)
        << engine.name();
    EXPECT_EQ(engine.submissions(), 1u);
  }

  sim::Engine eng_;
  hw::MachineSpec machine_;
  sim::CpuTimeline cpu_;
  gpu::Gpu gpu_;
};

// ---- Cross-scheme correctness ----

class EveryScheme : public SchemeFixture,
                    public ::testing::WithParamInterface<Scheme> {};

TEST_P(EveryScheme, PackMatchesHostReference) {
  auto engine = makeEngine(GetParam(), eng_, cpu_, gpu_);
  verifyPackRoundTrip(*engine);
}

TEST_P(EveryScheme, UnpackMatchesHostReference) {
  auto engine = makeEngine(GetParam(), eng_, cpu_, gpu_);
  auto layout = makeLayout(16, 8, 24);
  auto packed = filled(layout->size(), 5);
  auto origin = gpu_.memory().allocate(
      static_cast<std::size_t>(layout->endOffset()));
  std::memset(origin.bytes.data(), 0, origin.size());

  Ticket ticket;
  eng_.spawn([](DdtEngine& e, ddt::LayoutPtr l, gpu::MemSpan p, gpu::MemSpan o,
                Ticket& out) -> sim::Task<void> {
    out = co_await e.submitUnpack(std::move(l), p, o);
  }(*engine, layout, packed, origin, ticket));
  eng_.run();
  completeTicket(*engine, ticket);

  std::vector<std::byte> expect(origin.size(), std::byte{0});
  ddt::unpackCpu(*layout, packed.bytes, expect);
  ASSERT_EQ(std::memcmp(origin.bytes.data(), expect.data(), expect.size()), 0)
      << engine->name();
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryScheme,
    ::testing::ValuesIn(std::begin(kAllSchemes), std::end(kAllSchemes)),
    [](const ::testing::TestParamInfo<Scheme>& info_param) {
      std::string n{schemeName(info_param.param)};
      for (auto& ch : n) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return n;
    });

// ---- GPU-Sync specifics ----

TEST_F(SchemeFixture, GpuSyncBlocksUntilComplete) {
  GpuSyncEngine engine(eng_, cpu_, gpu_);
  auto layout = makeLayout(8, 32, 64);
  auto origin = filled(static_cast<std::size_t>(layout->endOffset()), 2);
  auto packed = gpu_.memory().allocate(layout->size());

  bool returned = false;
  eng_.spawn([](GpuSyncEngine& e, ddt::LayoutPtr l, gpu::MemSpan o,
                gpu::MemSpan p, bool& flag) -> sim::Task<void> {
    auto t = co_await e.submitPack(std::move(l), o, p);
    EXPECT_TRUE(e.done(t));  // synchronous: complete at return
    flag = true;
  }(engine, layout, origin, packed, returned));
  eng_.run();
  EXPECT_TRUE(returned);
  EXPECT_EQ(engine.breakdown().launching,
            gpu_.spec().kernel_launch_overhead);
  EXPECT_GT(engine.breakdown().synchronize, 0u);
  EXPECT_EQ(engine.breakdown().scheduling, 0u);
}

// ---- GPU-Async specifics ----

TEST_F(SchemeFixture, GpuAsyncReturnsBeforeKernelFinishes) {
  GpuAsyncEngine engine(eng_, cpu_, gpu_);
  auto layout = makeLayout(64, 512, 1024);  // sizable kernel
  auto origin = filled(static_cast<std::size_t>(layout->endOffset()), 3);
  auto packed = gpu_.memory().allocate(layout->size());

  eng_.spawn([](GpuAsyncEngine& e, ddt::LayoutPtr l, gpu::MemSpan o,
                gpu::MemSpan p) -> sim::Task<void> {
    auto t = co_await e.submitPack(std::move(l), o, p);
    EXPECT_FALSE(e.done(t));  // asynchronous: kernel still in flight
    EXPECT_EQ(e.outstanding(), 1u);
  }(engine, layout, origin, packed));
  eng_.run();
  // After the event queue drains, the kernel has completed.
  EXPECT_EQ(engine.breakdown().scheduling,
            gpu_.spec().driver_call_overhead);  // one cudaEventRecord
}

TEST_F(SchemeFixture, GpuAsyncQueryCostAccrues) {
  GpuAsyncEngine engine(eng_, cpu_, gpu_);
  auto layout = makeLayout(64, 512, 1024);
  auto origin = filled(static_cast<std::size_t>(layout->endOffset()), 4);
  auto packed = gpu_.memory().allocate(layout->size());

  eng_.spawn([](sim::Engine& eng, GpuAsyncEngine& e, ddt::LayoutPtr l,
                gpu::MemSpan o, gpu::MemSpan p) -> sim::Task<void> {
    auto t = co_await e.submitPack(std::move(l), o, p);
    int queries = 0;
    while (!e.done(t)) {
      ++queries;
      co_await e.progress();
      co_await eng.delay(us(1));
    }
    EXPECT_GT(queries, 0);
    co_await e.progress();  // pay the final query
    // Each done() call deferred one cudaEventQuery driver cost.
    EXPECT_GE(e.breakdown().synchronize,
              static_cast<DurationNs>(queries) *
                  e.breakdown().synchronize / (queries + 1));
    EXPECT_GT(e.breakdown().synchronize, 0u);
  }(eng_, engine, layout, origin, packed));
  eng_.run();
}

// ---- CPU-GPU-Hybrid specifics ----

TEST_F(SchemeFixture, HybridSelectsCpuPathForSmallDense) {
  CpuGpuHybridEngine engine(eng_, cpu_, gpu_);
  auto dense_small = makeLayout(8, 512, 600);     // 4 KiB, 8 blocks
  auto sparse = makeLayout(2048, 4, 16);          // 8 KiB, 2048 blocks
  auto huge = makeLayout(64, 65536, 131072);      // 4 MiB
  EXPECT_TRUE(engine.usesCpuPath(*dense_small));
  EXPECT_FALSE(engine.usesCpuPath(*sparse));  // too many blocks
  EXPECT_FALSE(engine.usesCpuPath(*huge));    // too large
}

TEST_F(SchemeFixture, HybridCountsPathUsage) {
  CpuGpuHybridEngine engine(eng_, cpu_, gpu_);
  auto dense = makeLayout(4, 256, 512);
  auto sparse = makeLayout(2048, 4, 16);
  auto o1 = filled(static_cast<std::size_t>(dense->endOffset()), 6);
  auto p1 = gpu_.memory().allocate(dense->size());
  auto o2 = filled(static_cast<std::size_t>(sparse->endOffset()), 7);
  auto p2 = gpu_.memory().allocate(sparse->size());

  eng_.spawn([](CpuGpuHybridEngine& e, ddt::LayoutPtr a, gpu::MemSpan ao,
                gpu::MemSpan ap, ddt::LayoutPtr b, gpu::MemSpan bo,
                gpu::MemSpan bp) -> sim::Task<void> {
    co_await e.submitPack(std::move(a), ao, ap);
    co_await e.submitPack(std::move(b), bo, bp);
  }(engine, dense, o1, p1, sparse, o2, p2));
  eng_.run();
  EXPECT_EQ(engine.cpuPathOps(), 1u);
  EXPECT_EQ(engine.gpuPathOps(), 1u);
}

TEST_F(SchemeFixture, HybridWithoutGdrcopyAlwaysUsesGpu) {
  auto abci = hw::abci();
  ASSERT_FALSE(abci.node.gdrcopy.available);
  gpu::Gpu abci_gpu(eng_, abci.node, 1);
  CpuGpuHybridEngine engine(eng_, cpu_, abci_gpu);
  auto dense_small = makeLayout(8, 512, 600);
  EXPECT_FALSE(engine.usesCpuPath(*dense_small));
}

// ---- NaiveCopy specifics ----

TEST_F(SchemeFixture, GpuAsyncUnknownTicketThrowsInsteadOfPhantomDone) {
  // Regression: done() on a ticket this engine never issued used to return
  // true ("already retired") — the same unknown-vs-retired confusion as the
  // request list's rejected-uid bug.
  GpuAsyncEngine engine(eng_, cpu_, gpu_);
  EXPECT_FALSE(engine.done(Ticket{-1}));              // invalid: not done
  EXPECT_THROW(engine.done(Ticket{0}), CheckFailure);  // never issued

  auto layout = makeLayout(8, 32, 64);
  auto origin = filled(static_cast<std::size_t>(layout->endOffset()), 5);
  auto packed = gpu_.memory().allocate(layout->size());
  Ticket t;
  eng_.spawn([](GpuAsyncEngine& e, ddt::LayoutPtr l, gpu::MemSpan o,
                gpu::MemSpan p, Ticket& out) -> sim::Task<void> {
    out = co_await e.submitPack(std::move(l), o, p);
  }(engine, layout, origin, packed, t));
  eng_.run();
  ASSERT_TRUE(t.valid());
  completeTicket(engine, t);
  EXPECT_TRUE(engine.done(t));  // retired: stays done
  EXPECT_THROW(engine.done(Ticket{t.id + 1}), CheckFailure);
}

TEST_F(SchemeFixture, NaiveCopyIssuesOneCopyPerBlock) {
  NaiveCopyEngine engine(eng_, cpu_, gpu_);
  auto layout = makeLayout(300, 8, 24);
  auto origin = filled(static_cast<std::size_t>(layout->endOffset()), 8);
  auto packed = gpu_.memory().allocate(layout->size());

  eng_.spawn([](NaiveCopyEngine& e, ddt::LayoutPtr l, gpu::MemSpan o,
                gpu::MemSpan p) -> sim::Task<void> {
    co_await e.submitPack(std::move(l), o, p);
  }(engine, layout, origin, packed));
  eng_.run();
  EXPECT_EQ(engine.copyCallsIssued(), 300u);
  // 300 driver calls on the CPU timeline — milliseconds of overhead.
  EXPECT_GE(engine.breakdown().launching,
            300u * gpu_.spec().driver_call_overhead);
}

TEST_F(SchemeFixture, NaiveCopyScalesWithBlockCountNotBytes) {
  auto timeFor = [&](std::size_t blocks, std::size_t blocklen) {
    sim::Engine eng;
    sim::CpuTimeline cpu(eng);
    gpu::Gpu gpu(eng, machine_.node, 0);
    NaiveCopyEngine engine(eng, cpu, gpu);
    auto layout = std::make_shared<const ddt::Layout>(ddt::flatten(
        ddt::Datatype::vector(blocks, blocklen,
                              static_cast<std::int64_t>(blocklen * 3),
                              ddt::Datatype::byte()),
        1));
    auto origin = gpu.memory().allocate(
        static_cast<std::size_t>(layout->endOffset()));
    auto packed = gpu.memory().allocate(layout->size());
    TimeNs done = 0;
    eng.spawn([](sim::Engine& e, NaiveCopyEngine& en, ddt::LayoutPtr l,
                 gpu::MemSpan o, gpu::MemSpan p, TimeNs& out) -> sim::Task<void> {
      co_await en.submitPack(std::move(l), o, p);
      out = e.now();
    }(eng, engine, layout, origin, packed, done));
    eng.run();
    return done;
  };
  // Same total bytes (64 KiB), 64 vs 4096 blocks.
  const TimeNs few_blocks = timeFor(64, 1024);
  const TimeNs many_blocks = timeFor(4096, 16);
  EXPECT_GT(many_blocks, few_blocks * 20);
}

// ---- Fusion engine specifics ----

TEST_F(SchemeFixture, FusionFallsBackWhenListFull) {
  core::FusionPolicy policy;
  policy.list_capacity = 2;
  policy.threshold_bytes = 1u << 30;  // never launch -> list stays full
  FusionEngine engine(eng_, cpu_, gpu_, policy);
  auto layout = makeLayout(4, 64, 128);

  eng_.spawn([](SchemeFixture& f, FusionEngine& e,
                ddt::LayoutPtr l) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      auto o = f.filled(static_cast<std::size_t>(l->endOffset()),
                        static_cast<std::uint64_t>(i));
      auto p = f.gpu_.memory().allocate(l->size());
      auto t = co_await e.submitPack(l, o, p);
      EXPECT_TRUE(t.valid());
      if (i >= 2) {
        EXPECT_TRUE(e.done(t));  // fallback ops are synchronous
      }
    }
  }(*this, engine, layout));
  eng_.run();
  EXPECT_EQ(engine.fallbacks(), 2u);
}

TEST_F(SchemeFixture, FusionDirectCopiesBetweenLayouts) {
  FusionEngine engine(eng_, cpu_, gpu_);
  ASSERT_TRUE(engine.supportsDirect());
  auto src_layout = makeLayout(16, 32, 64);
  auto dst_layout = makeLayout(32, 16, 48);
  ASSERT_EQ(src_layout->size(), dst_layout->size());
  auto src = filled(static_cast<std::size_t>(src_layout->endOffset()), 9);
  auto dst = gpu_.memory().allocate(
      static_cast<std::size_t>(dst_layout->endOffset()));
  std::memset(dst.bytes.data(), 0, dst.size());

  Ticket ticket;
  eng_.spawn([](FusionEngine& e, ddt::LayoutPtr sl, gpu::MemSpan s,
                ddt::LayoutPtr dl, gpu::MemSpan d,
                Ticket& out) -> sim::Task<void> {
    out = co_await e.submitDirect(std::move(sl), s, std::move(dl), d);
  }(engine, src_layout, src, dst_layout, dst, ticket));
  eng_.run();
  ASSERT_TRUE(ticket.valid());
  completeTicket(engine, ticket);

  std::vector<std::byte> expect(dst.size(), std::byte{0});
  ddt::copyStrided(*src_layout, src.bytes, *dst_layout, expect);
  EXPECT_EQ(std::memcmp(dst.bytes.data(), expect.data(), expect.size()), 0);
}

TEST_F(SchemeFixture, FusionBatchesManySubmissionsIntoFewKernels) {
  core::FusionPolicy policy;
  policy.threshold_bytes = 512 * 1024;
  FusionEngine engine(eng_, cpu_, gpu_, policy);
  auto layout = makeLayout(16, 64, 128);  // 1 KiB per op

  eng_.spawn([](SchemeFixture& f, FusionEngine& e,
                ddt::LayoutPtr l) -> sim::Task<void> {
    std::vector<Ticket> tickets;
    for (int i = 0; i < 24; ++i) {
      auto o = f.filled(static_cast<std::size_t>(l->endOffset()),
                        static_cast<std::uint64_t>(100 + i));
      auto p = f.gpu_.memory().allocate(l->size());
      tickets.push_back(co_await e.submitPack(l, o, p));
    }
    co_await e.flush();
    for (auto& t : tickets) {
      while (!e.done(t)) co_await f.eng_.delay(200);
    }
  }(*this, engine, layout));
  eng_.run();
  EXPECT_EQ(engine.scheduler().requestsFused(), 24u);
  EXPECT_EQ(engine.scheduler().fusedKernelsLaunched(), 1u);  // one flush
  EXPECT_EQ(engine.fallbacks(), 0u);
}

// ---- Names and factory ----

TEST(FactoryNames, MatchPaperLegends) {
  EXPECT_EQ(schemeName(Scheme::GpuSync), "GPU-Sync");
  EXPECT_EQ(schemeName(Scheme::GpuAsync), "GPU-Async");
  EXPECT_EQ(schemeName(Scheme::CpuGpuHybrid), "CPU-GPU-Hybrid");
  EXPECT_EQ(schemeName(Scheme::AdaptiveGdr), "MVAPICH2-GDR");
  EXPECT_EQ(schemeName(Scheme::Proposed), "Proposed");
  EXPECT_EQ(schemeName(Scheme::ProposedTuned), "Proposed-Tuned");
}

TEST_F(SchemeFixture, FactoryTunedPolicyApplies) {
  core::FusionPolicy tuned;
  tuned.threshold_bytes = 12345;
  auto engine = makeEngine(Scheme::ProposedTuned, eng_, cpu_, gpu_, tuned);
  auto* fusion = dynamic_cast<FusionEngine*>(engine.get());
  ASSERT_NE(fusion, nullptr);
  EXPECT_EQ(fusion->scheduler().policy().threshold_bytes, 12345u);
  EXPECT_EQ(fusion->name(), "Proposed-Tuned");
}

}  // namespace
}  // namespace dkf::schemes

namespace dkf::schemes {
namespace {

TEST_F(SchemeFixture, HybridFusionRoutesBySparsity) {
  auto engine = makeEngine(Scheme::ProposedHybrid, eng_, cpu_, gpu_);
  auto* hf = dynamic_cast<HybridFusionEngine*>(engine.get());
  ASSERT_NE(hf, nullptr);
  EXPECT_EQ(hf->name(), "Proposed+Hybrid");
  EXPECT_TRUE(hf->supportsDirect());

  auto dense_small = makeLayout(4, 512, 1024);   // 2 KiB, 4 blocks -> CPU
  auto sparse = makeLayout(2048, 4, 16);         // 8 KiB, 2048 blocks -> fusion
  auto o1 = filled(static_cast<std::size_t>(dense_small->endOffset()), 40);
  auto p1 = gpu_.memory().allocate(dense_small->size());
  auto o2 = filled(static_cast<std::size_t>(sparse->endOffset()), 41);
  auto p2 = gpu_.memory().allocate(sparse->size());

  eng_.spawn([](HybridFusionEngine& e, ddt::LayoutPtr a, gpu::MemSpan ao,
                gpu::MemSpan ap, ddt::LayoutPtr b, gpu::MemSpan bo,
                gpu::MemSpan bp) -> sim::Task<void> {
    auto t1 = co_await e.submitPack(a, ao, ap);
    EXPECT_TRUE(e.done(t1));  // CPU path: synchronous
    auto t2 = co_await e.submitPack(b, bo, bp);
    EXPECT_FALSE(e.done(t2));  // fusion path: pending until flush
    co_await e.flush();
  }(*hf, dense_small, o1, p1, sparse, o2, p2));
  eng_.run();
  EXPECT_EQ(hf->cpuPathOps(), 1u);
  EXPECT_EQ(hf->fusedOps(), 1u);

  // Both paths moved the right bytes.
  std::vector<std::byte> e1(dense_small->size());
  ddt::packCpu(*dense_small, o1.bytes, e1);
  EXPECT_EQ(std::memcmp(p1.bytes.data(), e1.data(), e1.size()), 0);
  std::vector<std::byte> e2(sparse->size());
  ddt::packCpu(*sparse, o2.bytes, e2);
  EXPECT_EQ(std::memcmp(p2.bytes.data(), e2.data(), e2.size()), 0);
}

TEST_F(SchemeFixture, HybridFusionTicketSpacesAreStructurallyDisjoint) {
  // Regression: done() used to classify ANY ticket with id >= 2^61 as a
  // CPU-path ticket, so a fusion uid (or the fusion engine's fallback ids
  // at 2^62) growing into that range silently reported unfinished fusion
  // requests as done. The spaces are now partitioned by a tag bit.
  HybridFusionEngine engine(eng_, cpu_, gpu_);

  auto dense_small = makeLayout(4, 512, 1024);  // CPU path
  auto sparse = makeLayout(2048, 4, 16);        // fusion path
  auto o1 = filled(static_cast<std::size_t>(dense_small->endOffset()), 50);
  auto p1 = gpu_.memory().allocate(dense_small->size());
  auto o2 = filled(static_cast<std::size_t>(sparse->endOffset()), 51);
  auto p2 = gpu_.memory().allocate(sparse->size());

  Ticket cpu_ticket, fusion_ticket;
  eng_.spawn([](HybridFusionEngine& e, ddt::LayoutPtr a, gpu::MemSpan ao,
                gpu::MemSpan ap, ddt::LayoutPtr b, gpu::MemSpan bo,
                gpu::MemSpan bp, Ticket& ct, Ticket& ft) -> sim::Task<void> {
    ct = co_await e.submitPack(a, ao, ap);
    ft = co_await e.submitPack(b, bo, bp);
    co_await e.flush();
  }(engine, dense_small, o1, p1, sparse, o2, p2, cpu_ticket, fusion_ticket));
  eng_.run();

  ASSERT_TRUE(cpu_ticket.valid());
  ASSERT_TRUE(fusion_ticket.valid());
  EXPECT_NE(cpu_ticket.id & HybridFusionEngine::kCpuTag, 0);   // tagged
  EXPECT_EQ(fusion_ticket.id & HybridFusionEngine::kCpuTag, 0);  // untagged
  EXPECT_TRUE(engine.done(cpu_ticket));
  completeTicket(engine, fusion_ticket);
  EXPECT_TRUE(engine.done(fusion_ticket));
}

TEST_F(SchemeFixture, HybridFusionFallbackTicketsStayOutOfCpuTagSpace) {
  // Fusion-path fallback ids live at 2^62; bit 61 stays clear, so done()
  // must route them to the fusion path (which knows they are synchronous),
  // not misclassify them as CPU tickets.
  core::FusionPolicy policy;
  policy.list_capacity = 1;
  policy.threshold_bytes = 1u << 30;  // never launch -> list fills
  HybridFusionEngine engine(eng_, cpu_, gpu_, policy);
  auto sparse = makeLayout(2048, 4, 16);  // fusion-path layout

  eng_.spawn([](SchemeFixture& f, HybridFusionEngine& e,
                ddt::LayoutPtr l) -> sim::Task<void> {
    auto o1 = f.filled(static_cast<std::size_t>(l->endOffset()), 60);
    auto p1 = f.gpu_.memory().allocate(l->size());
    Ticket queued = co_await e.submitPack(l, o1, p1);  // fills the list
    auto o2 = f.filled(static_cast<std::size_t>(l->endOffset()), 61);
    auto p2 = f.gpu_.memory().allocate(l->size());
    Ticket fallback = co_await e.submitPack(l, o2, p2);  // synchronous
    EXPECT_EQ(fallback.id & HybridFusionEngine::kCpuTag, 0);
    EXPECT_TRUE(e.done(fallback));
    EXPECT_FALSE(e.done(queued));
    co_await e.flush();
  }(*this, engine, sparse));
  eng_.run();
}

}  // namespace
}  // namespace dkf::schemes
