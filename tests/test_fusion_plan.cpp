// Compiled FusionPlan API (ROADMAP item 1): plan signatures, the solver
// registry's applicability contract, compile/fallback reporting, the
// PlanCache's LRU/budget/counter behaviour, and the end-to-end property
// the whole layer exists for — repeat-layout traffic through mpi::Runtime
// compiles each structure once and serves the rest from cache.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fusion_plan.hpp"
#include "ddt/datatype.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "schemes/solver.hpp"
#include "workloads/workloads.hpp"

namespace dkf {
namespace {

ddt::LayoutPtr layoutOf(const ddt::DatatypePtr& type, std::size_t count) {
  return std::make_shared<const ddt::Layout>(ddt::flatten(type, count));
}

/// A periodic strided type: counts >= 1 all share one layout signature.
ddt::DatatypePtr stridedType() {
  return ddt::Datatype::vector(8, 2, 5, ddt::Datatype::float64());
}

// ---- FusionPlan signatures ----

TEST(FusionPlanSignature, CountIndependentForPeriodicLayouts) {
  const auto type = stridedType();
  core::FusionPlan a, b;
  a.addPack(layoutOf(type, 2));
  b.addPack(layoutOf(type, 7));
  EXPECT_EQ(a.signature(), b.signature());
}

TEST(FusionPlanSignature, OpKindAndOrderChangeTheSignature) {
  const auto l = layoutOf(stridedType(), 4);
  core::FusionPlan pack, unpack, both;
  pack.addPack(l);
  unpack.addUnpack(l);
  both.addPack(l);
  both.addUnpack(l);
  EXPECT_NE(pack.signature(), unpack.signature());
  EXPECT_NE(pack.signature(), both.signature());

  core::FusionPlan reversed;
  reversed.addUnpack(l);
  reversed.addPack(l);
  EXPECT_NE(both.signature(), reversed.signature());
}

TEST(FusionPlanSignature, DistinctStructuresDiverge) {
  core::FusionPlan a, b;
  a.addPack(layoutOf(stridedType(), 2));
  b.addPack(layoutOf(
      ddt::Datatype::vector(8, 3, 5, ddt::Datatype::float64()), 2));
  EXPECT_NE(a.signature(), b.signature());
}

// ---- Solver applicability contract ----

TEST(SolverRegistry, EveryschemeHasASolverInFigureOrder) {
  const auto& reg = schemes::SolverRegistry::instance();
  ASSERT_EQ(reg.all().size(), std::size(schemes::kAllSchemes));
  for (const auto scheme : schemes::kAllSchemes) {
    EXPECT_EQ(reg.at(scheme).scheme(), scheme);
  }
}

TEST(SolverRegistry, NoSolverAcceptsTheEmptyPlan) {
  const core::FusionPlan empty;
  const auto hw = hw::lassen().node;
  for (const auto* s : schemes::SolverRegistry::instance().all()) {
    EXPECT_FALSE(s->isApplicable(empty, hw)) << s->name();
  }
  EXPECT_EQ(schemes::SolverRegistry::instance().firstApplicable(empty, hw),
            nullptr);
}

TEST(SolverRegistry, NonDirectSolversRejectStridedCopyPlans) {
  const auto l = layoutOf(stridedType(), 2);
  core::FusionPlan direct;
  direct.addStridedCopy(l, l);
  const auto hw = hw::lassen().node;
  const auto& reg = schemes::SolverRegistry::instance();
  EXPECT_FALSE(reg.at(schemes::Scheme::GpuSync).isApplicable(direct, hw));
  EXPECT_FALSE(reg.at(schemes::Scheme::NaiveCopy).isApplicable(direct, hw));
  EXPECT_TRUE(reg.at(schemes::Scheme::Proposed).isApplicable(direct, hw));
}

TEST(SolverRegistry, HybridSolverNeedsGdrcopyHardware) {
  core::FusionPlan plan;
  plan.addPack(layoutOf(stridedType(), 2));
  const auto& hybrid =
      schemes::SolverRegistry::instance().at(schemes::Scheme::CpuGpuHybrid);
  EXPECT_TRUE(hybrid.isApplicable(plan, hw::lassen().node));
  EXPECT_FALSE(hybrid.isApplicable(plan, hw::abci().node));  // no GDRCopy
}

TEST(SolverRegistry, HwSignatureSeparatesGdrcopyCapability) {
  EXPECT_NE(schemes::hwSignature(hw::lassen().node),
            schemes::hwSignature(hw::abci().node));
}

// ---- compilePlan: resolution and reported fallback ----

TEST(CompilePlan, PreferredSolverWinsWhenApplicable) {
  core::FusionPlan plan;
  plan.addPack(layoutOf(stridedType(), 3));
  plan.addUnpack(layoutOf(stridedType(), 3));
  const auto compiled =
      schemes::compilePlan(plan, schemes::Scheme::GpuSync, hw::lassen().node);
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->solver_scheme,
            static_cast<int>(schemes::Scheme::GpuSync));
  EXPECT_FALSE(compiled->fallback);
  EXPECT_TRUE(compiled->fallback_reason.empty());
  ASSERT_EQ(compiled->steps.size(), 2u);
  EXPECT_EQ(compiled->steps[0].op, core::FusionOp::Packing);
  EXPECT_EQ(compiled->steps[1].op, core::FusionOp::Unpacking);
  EXPECT_EQ(compiled->plan_signature, plan.signature());
}

TEST(CompilePlan, InapplicablePreferredReroutesAndReports) {
  const auto l = layoutOf(stridedType(), 2);
  core::FusionPlan direct;
  direct.addStridedCopy(l, l);
  const auto compiled =
      schemes::compilePlan(direct, schemes::Scheme::GpuSync, hw::lassen().node);
  ASSERT_NE(compiled, nullptr);
  EXPECT_TRUE(compiled->fallback);
  // First applicable in figure order: the strided-copy-capable Proposed.
  EXPECT_EQ(compiled->solver_scheme,
            static_cast<int>(schemes::Scheme::Proposed));
  EXPECT_NE(compiled->fallback_reason.find("GPU-Sync"), std::string::npos);
}

TEST(CompilePlan, UnsolvablePlanIsAReportedFallback) {
  const core::FusionPlan empty;
  const auto compiled =
      schemes::compilePlan(empty, schemes::Scheme::Proposed, hw::lassen().node);
  ASSERT_NE(compiled, nullptr);
  EXPECT_TRUE(compiled->fallback);
  EXPECT_EQ(compiled->solver_scheme, -1);
  EXPECT_FALSE(compiled->fallback_reason.empty());
  EXPECT_TRUE(compiled->steps.empty());
}

// ---- PlanCache: hit/miss/LRU/budgets ----

core::CompiledPlanPtr dummyPlan(std::uint64_t sig) {
  auto p = std::make_shared<core::CompiledPlan>();
  p->plan_signature = sig;
  p->solver_scheme = static_cast<int>(schemes::Scheme::Proposed);
  return p;
}

TEST(PlanCache, FindCountsMissesAndHits) {
  core::PlanCache cache;
  const core::PlanKey key{1, 2, 3};
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  auto plan = dummyPlan(1);
  cache.insert(key, plan);
  EXPECT_EQ(cache.find(key), plan);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(PlanCache, EntryBudgetEvictsLeastRecentlyUsed) {
  core::PlanCache cache(core::PlanCacheLimits{.max_entries = 2,
                                              .max_bytes = 0});
  const core::PlanKey a{1, 0, 0}, b{2, 0, 0}, c{3, 0, 0};
  cache.insert(a, dummyPlan(1));
  cache.insert(b, dummyPlan(2));
  EXPECT_NE(cache.find(a), nullptr);  // refresh a: b becomes LRU
  cache.insert(c, dummyPlan(3));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(b), nullptr);  // the LRU victim
  EXPECT_NE(cache.find(a), nullptr);
  EXPECT_NE(cache.find(c), nullptr);
}

TEST(PlanCache, ByteBudgetEvictsButKeepsTheNewEntry) {
  core::PlanCache cache(core::PlanCacheLimits{.max_entries = 0,
                                              .max_bytes = 1});
  const core::PlanKey a{1, 0, 0}, b{2, 0, 0};
  auto big = std::make_shared<core::CompiledPlan>();
  big->solver_name = "a-name-long-enough-to-out-heap-the-budget";
  big->steps.resize(4);
  cache.insert(a, big);
  EXPECT_EQ(cache.entries(), 1u);  // over budget, but never evict the insert
  auto big2 = std::make_shared<core::CompiledPlan>();
  big2->steps.resize(4);
  cache.insert(b, big2);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(a), nullptr);
  EXPECT_NE(cache.find(b), nullptr);
}

TEST(PlanCache, FallbackInsertsAreCounted) {
  core::PlanCache cache;
  const auto compiled = schemes::compilePlan(
      core::FusionPlan{}, schemes::Scheme::Proposed, hw::lassen().node);
  cache.insert(core::PlanKey{compiled->plan_signature, 0,
                             static_cast<int>(schemes::Scheme::Proposed)},
               compiled);
  EXPECT_EQ(cache.counters().fallbacks, 1u);
}

TEST(PlanCache, ClearResetsEntriesAndCounters) {
  core::PlanCache cache;
  cache.insert(core::PlanKey{1, 0, 0}, dummyPlan(1));
  (void)cache.find(core::PlanKey{1, 0, 0});
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.residentBytes(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

// ---- compilePlanCached: one compile serves a count sweep ----

TEST(CompilePlanCached, CountSweepOverOneTypeCompilesOnce) {
  core::PlanCache cache;
  const auto type = stridedType();
  const auto hw = hw::lassen().node;
  core::CompiledPlanPtr first;
  for (const std::size_t count : {2u, 3u, 5u, 9u}) {
    core::FusionPlan plan;
    plan.addPack(layoutOf(type, count));
    const auto compiled =
        schemes::compilePlanCached(cache, plan, schemes::Scheme::Proposed, hw);
    if (!first) first = compiled;
    EXPECT_EQ(compiled, first);  // the same cached object every count
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 3u);
}

TEST(CompilePlanCached, SchemeAndHardwareAreCacheDimensions) {
  core::PlanCache cache;
  core::FusionPlan plan;
  plan.addPack(layoutOf(stridedType(), 2));
  const auto a = schemes::compilePlanCached(cache, plan,
                                            schemes::Scheme::Proposed,
                                            hw::lassen().node);
  const auto b = schemes::compilePlanCached(cache, plan,
                                            schemes::Scheme::GpuSync,
                                            hw::lassen().node);
  const auto c = schemes::compilePlanCached(cache, plan,
                                            schemes::Scheme::Proposed,
                                            hw::abci().node);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.entries(), 3u);
}

// ---- End to end: the runtime's plan cache on repeat-layout traffic ----

TEST(RuntimePlanCache, RepeatTrafficHitsAfterFirstCompile) {
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), 2);
  mpi::RuntimeConfig config;
  config.scheme = schemes::Scheme::Proposed;
  config.plan_cache.max_entries = 64;  // limits plumb through RuntimeConfig
  mpi::Runtime runtime(cluster, config);

  auto& a = runtime.proc(0);
  auto& b = runtime.proc(4);  // other node: the inter-node bulk path
  EXPECT_EQ(a.planCache().limits().max_entries, 64u);

  const auto wl = workloads::milcZdown(16);
  constexpr int kRounds = 6;
  const std::size_t region = wl.regionBytes();
  auto sa = a.allocDevice(region), ra = a.allocDevice(region);
  auto sb = b.allocDevice(region), rb = b.allocDevice(region);

  auto body = [](mpi::Proc& p, gpu::MemSpan send, gpu::MemSpan recv,
                 const workloads::Workload& w, int peer) -> sim::Task<void> {
    for (int round = 0; round < kRounds; ++round) {
      auto rr = co_await p.irecv(recv, w.type, w.count, peer, round);
      auto sr = co_await p.isend(send, w.type, w.count, peer, round);
      co_await p.wait(rr);
      co_await p.wait(sr);
    }
  };
  eng.spawn(body(a, sa, ra, wl, 4));
  eng.spawn(body(b, sb, rb, wl, 0));
  eng.run();

  // Same layout every round: each rank compiles its pack and unpack plan
  // once, every later message is a hit.
  for (auto* p : {&a, &b}) {
    EXPECT_LE(p->planCache().misses(), 2u);
    EXPECT_GT(p->planCache().hits(), p->planCache().misses());
    EXPECT_EQ(p->planCache().counters().fallbacks, 0u);
  }
}

}  // namespace
}  // namespace dkf
