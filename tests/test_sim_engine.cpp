// Regression tests for the zero-allocation event core and the parallel
// deterministic sweep runner: heap ordering determinism against a
// stable-sort reference, move-only inline callbacks, completion-driven
// coroutine reaping, the watchdog-fires-before-pop contract, and
// byte-identical serial-vs-parallel sweep output.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_util/parallel.hpp"
#include "bench_util/sweeps.hpp"
#include "common/rng.hpp"
#include "hw/machines.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "workloads/workloads.hpp"

namespace dkf::sim {
namespace {

// ---- Determinism: the 4-ary heap + slot pool must execute events in ----
// ---- exactly (time, then insertion sequence) order -------------------

TEST(EngineDeterminism, MatchesStableSortReference) {
  // Randomized schedules with heavy time collisions (times drawn from a
  // tiny range) exercise every sift path; the reference order is a stable
  // sort by time, which preserves insertion order on ties.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 0xDEADull}) {
    Engine eng;
    Rng rng(seed);
    const std::size_t n = 500;
    std::vector<std::pair<TimeNs, std::size_t>> ref;  // (time, id)
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < n; ++i) {
      const TimeNs t = rng.below(16);  // few distinct times: many ties
      ref.emplace_back(t, i);
      eng.scheduleAt(t, [&order, i] { order.push_back(i); });
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    eng.run();
    ASSERT_EQ(order.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(order[i], ref[i].second) << "seed " << seed << " pos " << i;
    }
  }
}

TEST(EngineDeterminism, TenThousandEventScheduleWithNesting) {
  // A large schedule where callbacks themselves schedule more events (as
  // fabric hops and copy engines do). Two independent runs must produce
  // identical execution orders, and ties must still break by sequence.
  auto run_once = [] {
    Engine eng;
    Rng rng(7);
    std::vector<std::uint32_t> order;
    order.reserve(10'000);
    std::uint32_t next_id = 0;
    // Self-rescheduling chains: 100 chains x 100 events = 10k events.
    struct Chain {
      Engine* eng;
      Rng* rng;
      std::vector<std::uint32_t>* order;
      std::uint32_t* next_id;
      int left;
      void fire() {
        order->push_back((*next_id)++);
        if (--left > 0) {
          eng->schedule(rng->below(8), [this] { fire(); });
        }
      }
    };
    std::vector<Chain> chains(100);
    for (auto& c : chains) {
      c = Chain{&eng, &rng, &order, &next_id, 100};
      eng.schedule(rng.below(8), [&c] { c.fire(); });
    }
    const std::size_t processed = eng.run();
    EXPECT_EQ(processed, 10'000u);
    return order;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

// ---- Move-only callbacks --------------------------------------------

TEST(EngineCallback, MoveOnlyCaptures) {
  Engine eng;
  auto value = std::make_unique<int>(41);
  int seen = 0;
  eng.schedule(10, [v = std::move(value), &seen] { seen = *v + 1; });
  eng.run();
  EXPECT_EQ(seen, 42);
}

TEST(InlineFunctionTest, SmallCapturesStayInline) {
  int x = 5;
  SmallCallback cb = [&x] { ++x; };
  EXPECT_FALSE(cb.heapAllocated());
  cb();
  EXPECT_EQ(x, 6);
}

TEST(InlineFunctionTest, OversizedCapturesFallBackToHeap) {
  struct Big {
    char data[kSmallCallbackBytes + 1];
  };
  Big big{};
  big.data[0] = 3;
  SmallCallback cb = [big] { (void)big; };
  EXPECT_TRUE(cb.heapAllocated());
  cb();  // still callable
  // Moving a heap-backed callback transfers the pointer, not the payload.
  SmallCallback moved = std::move(cb);
  EXPECT_TRUE(moved.heapAllocated());
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move)
  moved();
}

TEST(InlineFunctionTest, EventSlotHoldsNestedFabricShapedClosure) {
  // The engine's event budget must keep a fabric-delivery-shaped closure
  // (two span-like payloads + a user callback + a predicate) inline.
  struct SpanLike {
    void* ptr;
    std::size_t len;
    int space;
  };
  SpanLike src{nullptr, 0, 0}, dst{nullptr, 0, 1};
  int fired = 0;
  SmallCallback on_done = [&fired] { ++fired; };
  SmallPredicate still_wanted = [] { return true; };
  Engine::Callback ev = [src, dst, cb = std::move(on_done),
                         pred = std::move(still_wanted)]() mutable {
    if (pred()) cb();
    (void)src;
    (void)dst;
  };
  EXPECT_FALSE(ev.heapAllocated());
  ev();
  EXPECT_EQ(fired, 1);
}

// ---- Completion-driven coroutine reaping -----------------------------

Task<void> sleepTask(Engine& eng, DurationNs d) { co_await eng.delay(d); }

TEST(EngineSpawn, TasksRetireOnCompletionNotByScan) {
  Engine eng;
  // Tasks completing at distinct times: unfinishedTasks() must drop as
  // each finishes, not only after a drain or an unrelated event.
  eng.spawn(sleepTask(eng, 10));
  eng.spawn(sleepTask(eng, 20));
  eng.spawn(sleepTask(eng, 30));
  EXPECT_EQ(eng.unfinishedTasks(), 3u);
  eng.runUntil(10);
  EXPECT_EQ(eng.unfinishedTasks(), 2u);
  eng.runUntil(20);
  EXPECT_EQ(eng.unfinishedTasks(), 1u);
  eng.runUntil(30);
  EXPECT_EQ(eng.unfinishedTasks(), 0u);
  EXPECT_TRUE(eng.empty());
}

TEST(EngineSpawn, ManyTasksAllReaped) {
  Engine eng;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    eng.spawn(sleepTask(eng, rng.below(1000)));
  }
  EXPECT_EQ(eng.unfinishedTasks(), 200u);
  eng.run();
  EXPECT_EQ(eng.unfinishedTasks(), 0u);
}

TEST(EngineSpawn, ImmediatelyCompleteTaskNeverCountsAsLive) {
  Engine eng;
  eng.spawn([]() -> Task<void> { co_return; }());
  EXPECT_EQ(eng.unfinishedTasks(), 0u);
}

// ---- Watchdog fires before the offending event is popped -------------

TEST(EngineWatchdog, TripsBeforePopLeavingQueueIntact) {
  Engine eng;
  int fired = 0;
  eng.schedule(100, [&fired] { ++fired; });
  eng.schedule(5'000, [&fired] { ++fired; });
  eng.schedule(9'000, [&fired] { ++fired; });
  eng.setWatchdog(1'000);
  try {
    eng.run();
    FAIL() << "watchdog did not trip";
  } catch (const CheckFailure& e) {
    // The event at t=5000 tripped the check *before* being removed: it and
    // everything behind it must still be pending, and the diagnostic must
    // carry its timestamp.
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eng.pendingEvents(), 2u);
    EXPECT_NE(std::string(e.what()).find("5000"), std::string::npos)
        << e.what();
  }
  // Clearing the watchdog lets the run resume from the intact queue.
  eng.clearWatchdog();
  eng.run();
  EXPECT_EQ(fired, 3);
}

// ---- Parallel sweep runner ------------------------------------------

std::string sweepOutput(unsigned threads) {
  const unsigned prev = bench::setSweepThreads(threads);
  std::ostringstream os;
  bench::schemeSweepTable(
      os, hw::lassen(), workloads::milcZdown, {8, 16},
      {schemes::Scheme::GpuSync, schemes::Scheme::Proposed},
      /*n_ops=*/4, /*iterations=*/3, /*warmup=*/1);
  bench::setSweepThreads(prev);
  return os.str();
}

TEST(ParallelSweep, OutputByteIdenticalToSerial) {
  const std::string serial = sweepOutput(1);
  const std::string parallel = sweepOutput(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelSweep, ParallelForRunsEveryIndexExactlyOnce) {
  const unsigned prev = bench::setSweepThreads(4);
  std::vector<std::atomic<int>> hits(257);
  bench::parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  bench::setSweepThreads(prev);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelSweep, FirstExceptionPropagates) {
  const unsigned prev = bench::setSweepThreads(4);
  EXPECT_THROW(
      bench::parallelFor(64,
                         [](std::size_t i) {
                           if (i == 13) throw std::runtime_error("cell 13");
                         }),
      std::runtime_error);
  bench::setSweepThreads(prev);
}

}  // namespace
}  // namespace dkf::sim
