// Cross-scheme conformance: every registered DdtEngine must produce
// byte-identical unpacked receive buffers for all four ddtbench workloads,
// across seeds and buffer counts — in a fault-free world AND under a lossy
// FaultPlan with the retransmission layer enabled. The expected image is
// built on the host from the flattened layout: segment bytes equal the
// sender's buffer, every other byte keeps the 0xAA sentinel (no scheme may
// scribble outside the datatype's footprint).
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "schemes/factory.hpp"
#include "workloads/workloads.hpp"

namespace dkf {
namespace {

constexpr std::byte kSentinel{0xAA};

struct RunSpec {
  schemes::Scheme scheme;
  workloads::Workload wl;
  int n_bufs{1};
  std::uint64_t seed{1};
  bool lossy{false};
  mpi::Protocol rendezvous{mpi::Protocol::RGet};
  bool intra_node{false};
};

/// The lossy environment every scheme must survive: ~12% loss on both data
/// and control packets plus occasional NIC stalls, with retransmission on
/// and a watchdog that turns any livelock into a loud test failure.
fault::FaultSpec lossySpec(std::uint64_t seed) {
  fault::FaultSpec fs;
  fs.seed = seed * 0x9E3779B9ull + 11;
  fs.data_loss = 0.12;
  fs.control_loss = 0.12;
  fs.nic_stall_prob = 0.05;
  fs.nic_stall = us(3);
  return fs;
}

void runConformance(const RunSpec& rs) {
  SCOPED_TRACE(std::string(schemes::schemeName(rs.scheme)) + " / " +
               rs.wl.name + " / bufs=" + std::to_string(rs.n_bufs) +
               " / seed=" + std::to_string(rs.seed) +
               (rs.lossy ? " / lossy" : " / fault-free") +
               (rs.rendezvous == mpi::Protocol::RPut ? " / rput" : "") +
               (rs.intra_node ? " / intra" : ""));

  sim::Engine eng;
  hw::MachineSpec machine = hw::lassen();
  const std::size_t region = std::max<std::size_t>(rs.wl.regionBytes(), 64);
  const std::size_t needed =
      region * static_cast<std::size_t>(rs.n_bufs) * 3 + (8u << 20);
  machine.node.gpu.arena_bytes =
      std::max(machine.node.gpu.arena_bytes, needed);
  machine.node.gpus_per_node = rs.intra_node ? 2 : 1;
  hw::Cluster cluster(eng, machine, rs.intra_node ? 1 : 2);

  std::optional<fault::FaultPlan> plan;
  mpi::RuntimeConfig cfg;
  cfg.scheme = rs.scheme;
  cfg.rendezvous = rs.rendezvous;
  if (rs.lossy) {
    plan.emplace(eng, lossySpec(rs.seed));
    cluster.setFaultPlan(&*plan);
    cfg.reliability.enabled = true;
    cfg.reliability.base_timeout = us(40);
    cfg.reliability.max_timeout = us(2000);
    cfg.reliability.max_retries = 60;
    eng.setWatchdog(sec(1));  // a hang must trip loudly, not time out
  }
  mpi::Runtime rt(cluster, cfg);
  auto& p0 = rt.proc(0);
  auto& p1 = rt.proc(1);

  Rng fill(rs.seed);
  std::vector<gpu::MemSpan> send0, recv0, send1, recv1;
  for (int i = 0; i < rs.n_bufs; ++i) {
    auto s0 = p0.allocDevice(region);
    auto r0 = p0.allocDevice(region);
    auto s1 = p1.allocDevice(region);
    auto r1 = p1.allocDevice(region);
    for (auto& b : s0.bytes) b = static_cast<std::byte>(fill.below(256));
    for (auto& b : s1.bytes) b = static_cast<std::byte>(fill.below(256));
    std::memset(r0.bytes.data(), 0xAA, region);
    std::memset(r1.bytes.data(), 0xAA, region);
    send0.push_back(s0);
    recv0.push_back(r0);
    send1.push_back(s1);
    recv1.push_back(r1);
  }

  auto body = [](mpi::Proc& p, std::vector<gpu::MemSpan>& sends,
                 std::vector<gpu::MemSpan>& recvs,
                 const workloads::Workload& wl, int peer) -> sim::Task<void> {
    std::vector<mpi::RequestPtr> reqs;
    for (std::size_t i = 0; i < recvs.size(); ++i) {
      reqs.push_back(co_await p.irecv(recvs[i], wl.type, wl.count, peer,
                                      static_cast<int>(i)));
    }
    for (std::size_t i = 0; i < sends.size(); ++i) {
      reqs.push_back(co_await p.isend(sends[i], wl.type, wl.count, peer,
                                      static_cast<int>(i)));
    }
    co_await p.waitall(std::move(reqs));
  };
  eng.spawn(body(p0, send0, recv0, rs.wl, 1));
  eng.spawn(body(p1, send1, recv1, rs.wl, 0));
  eng.run();
  ASSERT_EQ(eng.unfinishedTasks(), 0u) << "exchange deadlocked";

  const auto layout = ddt::flatten(rs.wl.type, rs.wl.count);
  std::vector<std::byte> expect(region);
  auto verify = [&](const gpu::MemSpan& recv, const gpu::MemSpan& send) {
    std::memset(expect.data(), 0xAA, region);
    for (const auto& seg : layout.materialize()) {
      std::memcpy(expect.data() + seg.offset, send.bytes.data() + seg.offset,
                  seg.len);
    }
    ASSERT_EQ(std::memcmp(recv.bytes.data(), expect.data(), region), 0);
  };
  for (int i = 0; i < rs.n_bufs; ++i) {
    verify(recv1[i], send0[i]);
    verify(recv0[i], send1[i]);
  }
  (void)kSentinel;
}

/// The four ddtbench workloads at sizes straddling the eager/rendezvous
/// boundary: oc/cm are eager (~1-1.5 KB packed), MILC/NAS rendezvous
/// (24/18 KB packed).
std::vector<workloads::Workload> conformanceWorkloads() {
  return {workloads::specfem3dOc(8), workloads::specfem3dCm(8),
          workloads::milcZdown(32), workloads::nasMgFace(48)};
}

class SchemeConformance : public ::testing::TestWithParam<schemes::Scheme> {};

TEST_P(SchemeConformance, ByteIdenticalFaultFree) {
  for (const auto& wl : conformanceWorkloads()) {
    for (const std::uint64_t seed : {0x11ull, 0x22ull}) {
      for (const int n_bufs : {1, 3}) {
        RunSpec rs;
        rs.scheme = GetParam();
        rs.wl = wl;
        rs.n_bufs = n_bufs;
        rs.seed = seed;
        runConformance(rs);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST_P(SchemeConformance, ByteIdenticalUnderLossWithRetransmission) {
  for (const auto& wl : conformanceWorkloads()) {
    for (const std::uint64_t seed : {0x11ull, 0x22ull}) {
      for (const int n_bufs : {1, 3}) {
        RunSpec rs;
        rs.scheme = GetParam();
        rs.wl = wl;
        rs.n_bufs = n_bufs;
        rs.seed = seed;
        rs.lossy = true;
        runConformance(rs);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST_P(SchemeConformance, ByteIdenticalUnderLossRPut) {
  // The RPut handshake has its own loss-recovery paths (lost CTS, dropped
  // RDMA write); exercise them with the rendezvous-sized workloads.
  for (const auto& wl :
       {workloads::milcZdown(32), workloads::nasMgFace(48)}) {
    for (const std::uint64_t seed : {0x33ull, 0x44ull}) {
      RunSpec rs;
      rs.scheme = GetParam();
      rs.wl = wl;
      rs.n_bufs = 2;
      rs.seed = seed;
      rs.lossy = true;
      rs.rendezvous = mpi::Protocol::RPut;
      runConformance(rs);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_P(SchemeConformance, ByteIdenticalIntraNodeUnderLoss) {
  // Intra-node: DirectIPC for the schemes that support it, the pack path
  // for the rest — both must survive lost RTS/FIN control packets.
  RunSpec rs;
  rs.scheme = GetParam();
  rs.wl = workloads::specfem3dCm(8);
  rs.n_bufs = 2;
  rs.seed = 0x55;
  rs.lossy = true;
  rs.intra_node = true;
  runConformance(rs);
}

INSTANTIATE_TEST_SUITE_P(
    All, SchemeConformance, ::testing::ValuesIn(schemes::kAllSchemes),
    [](const ::testing::TestParamInfo<schemes::Scheme>& param_info) {
      std::string name{schemes::schemeName(param_info.param)};
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Collective dimension: the ring and tree algorithms must reproduce the
// flat (seed) algorithm byte-for-byte on the same inputs — alltoallv and
// allgatherv with per-rank varying counts of a sparse derived datatype,
// plus a Float64 derived-datatype allreduce (the canonical rank-order fold
// makes the sum independent of which topology carried the contributions).
// Checked per scheme, fault-free and under the same 12% lossy FaultPlan the
// point-to-point conformance runs use.
// ---------------------------------------------------------------------------

/// Runs one 8-rank world through alltoallv + allgatherv + allreduceDdt with
/// the given tuning and returns the concatenated receive/result images of
/// every rank. Inputs depend only on `seed`, never on the tuning, so two
/// snapshots with the same seed are comparable byte-for-byte.
std::vector<std::byte> runCollectiveWorld(schemes::Scheme scheme,
                                          mpi::CollTuning tuning, bool lossy,
                                          std::uint64_t seed) {
  constexpr int kRanks = 8;
  const workloads::Workload blk = workloads::specfem3dOc(2);
  const workloads::Workload red = workloads::nasMgFace(8);
  const std::size_t ext1 = blk.type->extent();
  // Per-pair v-counts: 1..3 elements of the sparse type, asymmetric in
  // (src, dst) so every rank sends and receives differently sized blocks.
  auto cnt = [](int s, int d) {
    return static_cast<std::size_t>(1 + (s * 3 + d) % 3);
  };
  auto gcnt = [](int r) { return static_cast<std::size_t>(1 + r % 3); };

  std::size_t ag_total = 0;
  for (int r = 0; r < kRanks; ++r) ag_total += gcnt(r) * ext1;
  const std::size_t red_region = red.regionBytes();

  sim::Engine eng;
  hw::MachineSpec machine = hw::lassen();
  machine.node.gpus_per_node = 4;
  const std::size_t per_rank =
      kRanks * 3 * ext1 * 2 + ag_total * 2 + red_region + (2u << 20);
  machine.node.gpu.arena_bytes = std::max<std::size_t>(per_rank, 4u << 20);
  hw::Cluster cluster(eng, machine, 2);

  std::optional<fault::FaultPlan> plan;
  mpi::RuntimeConfig cfg;
  cfg.scheme = scheme;
  if (lossy) {
    plan.emplace(eng, lossySpec(seed));
    cluster.setFaultPlan(&*plan);
    cfg.reliability.enabled = true;
    cfg.reliability.base_timeout = us(40);
    cfg.reliability.max_timeout = us(2000);
    cfg.reliability.max_retries = 60;
    eng.setWatchdog(sec(2));
  }
  mpi::Runtime rt(cluster, cfg);

  struct RankBufs {
    gpu::MemSpan a2a_send, a2a_recv, ag_send, ag_recv, red_buf;
    std::vector<mpi::VBlock> sblocks, rblocks, gblocks;
  };
  std::vector<RankBufs> bufs(kRanks);
  for (int me = 0; me < kRanks; ++me) {
    auto& p = rt.proc(me);
    auto& b = bufs[me];
    std::size_t soff = 0;
    std::size_t roff = 0;
    for (int peer = 0; peer < kRanks; ++peer) {
      b.sblocks.push_back({blk.type, cnt(me, peer), soff});
      soff += cnt(me, peer) * ext1;
      b.rblocks.push_back({blk.type, cnt(peer, me), roff});
      roff += cnt(peer, me) * ext1;
    }
    std::size_t goff = 0;
    for (int r = 0; r < kRanks; ++r) {
      b.gblocks.push_back({blk.type, gcnt(r), goff});
      goff += gcnt(r) * ext1;
    }
    b.a2a_send = p.allocDevice(soff);
    b.a2a_recv = p.allocDevice(roff);
    b.ag_send = p.allocDevice(ag_total);
    b.ag_recv = p.allocDevice(ag_total);
    b.red_buf = p.allocDevice(red_region);

    Rng fill(seed * 0x100000001b3ull + static_cast<std::uint64_t>(me));
    for (auto& byte : b.a2a_send.bytes) {
      byte = static_cast<std::byte>(fill.below(256));
    }
    for (auto& byte : b.ag_send.bytes) {
      byte = static_cast<std::byte>(fill.below(256));
    }
    std::memset(b.a2a_recv.bytes.data(), 0xAA, b.a2a_recv.size());
    std::memset(b.ag_recv.bytes.data(), 0xAA, b.ag_recv.size());
    // Finite, rank-distinct doubles for the reduction (raw random bytes
    // could form NaNs, whose payload propagation is not worth pinning).
    std::memset(b.red_buf.bytes.data(), 0, red_region);
    auto* vals = reinterpret_cast<double*>(b.red_buf.bytes.data());
    for (std::size_t i = 0; i < red_region / 8; ++i) {
      vals[i] =
          static_cast<double>(me * 4096) + static_cast<double>(i) * 0.25;
    }
  }

  auto body = [&](mpi::Proc& p) -> sim::Task<void> {
    auto& b = bufs[static_cast<std::size_t>(p.rank())];
    co_await mpi::alltoallv(p, b.a2a_send, b.a2a_recv, b.sblocks, b.rblocks,
                            tuning);
    co_await mpi::allgatherv(p, b.ag_send, b.ag_recv, b.gblocks, tuning);
    co_await mpi::allreduceDdt(p, b.red_buf, red.type, red.count,
                               mpi::ReduceType::Float64, mpi::ReduceOp::Sum,
                               tuning);
  };
  rt.runAll(body);
  EXPECT_EQ(eng.unfinishedTasks(), 0u) << "collective deadlocked";

  std::vector<std::byte> image;
  for (const auto& b : bufs) {
    image.insert(image.end(), b.a2a_recv.bytes.begin(), b.a2a_recv.bytes.end());
    image.insert(image.end(), b.ag_recv.bytes.begin(), b.ag_recv.bytes.end());
    image.insert(image.end(), b.red_buf.bytes.begin(), b.red_buf.bytes.end());
  }
  return image;
}

class CollectiveConformance
    : public ::testing::TestWithParam<schemes::Scheme> {};

TEST_P(CollectiveConformance, AlgorithmsByteIdenticalFaultFree) {
  const std::uint64_t seed = 0x77;
  const auto flat =
      runCollectiveWorld(GetParam(), {mpi::CollAlgo::Flat, 2}, false, seed);
  const auto ring =
      runCollectiveWorld(GetParam(), {mpi::CollAlgo::Ring, 2}, false, seed);
  const auto tree2 =
      runCollectiveWorld(GetParam(), {mpi::CollAlgo::Tree, 2}, false, seed);
  const auto tree3 =
      runCollectiveWorld(GetParam(), {mpi::CollAlgo::Tree, 3}, false, seed);
  ASSERT_EQ(flat.size(), ring.size());
  ASSERT_EQ(flat.size(), tree2.size());
  EXPECT_TRUE(ring == flat) << "ring diverges from the flat algorithm";
  EXPECT_TRUE(tree2 == flat) << "tree (radix 2) diverges from flat";
  EXPECT_TRUE(tree3 == flat) << "tree (radix 3) diverges from flat";
}

TEST_P(CollectiveConformance, AlgorithmsByteIdenticalUnderLoss) {
  const std::uint64_t seed = 0x99;
  const auto flat =
      runCollectiveWorld(GetParam(), {mpi::CollAlgo::Flat, 2}, true, seed);
  const auto ring =
      runCollectiveWorld(GetParam(), {mpi::CollAlgo::Ring, 2}, true, seed);
  const auto tree2 =
      runCollectiveWorld(GetParam(), {mpi::CollAlgo::Tree, 2}, true, seed);
  ASSERT_EQ(flat.size(), ring.size());
  EXPECT_TRUE(ring == flat) << "ring diverges from flat under 12% loss";
  EXPECT_TRUE(tree2 == flat) << "tree diverges from flat under 12% loss";
}

INSTANTIATE_TEST_SUITE_P(
    All, CollectiveConformance, ::testing::ValuesIn(schemes::kAllSchemes),
    [](const ::testing::TestParamInfo<schemes::Scheme>& param_info) {
      std::string name{schemes::schemeName(param_info.param)};
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dkf
