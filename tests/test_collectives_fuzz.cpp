// Collective fuzz: randomized worlds (rank counts 2..512), random roots,
// random derived-datatype layouts and v-counts (zero-count blocks included),
// random algorithm/radix picks — every collective checked byte-for-byte
// against a serial host-side shadow model. Reductions are checked against
// the exact pinned-order fold (res = c_0, then res op= c_r for r = 1..n-1),
// so a topology that combined in any other order fails in the last ulp.
//
// The iterations run under bench::parallelFor; gtest assertions are not
// thread-safe, so workers record failure strings and the main thread
// asserts after the join.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/parallel.hpp"
#include "common/rng.hpp"
#include "ddt/layout.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "schemes/factory.hpp"

namespace dkf {
namespace {

using mpi::CollAlgo;
using mpi::CollTuning;
using mpi::ReduceOp;
using mpi::ReduceType;
using mpi::VBlock;

// ---- Random datatype / tuning generators --------------------------------

ddt::DatatypePtr randomBase(Rng& rng) {
  switch (rng.below(3)) {
    case 0:
      return ddt::Datatype::int32();
    case 1:
      return ddt::Datatype::float64();
    default:
      return ddt::Datatype::char_();
  }
}

/// A random non-overlapping derived type over `base` (overlapping unpack
/// targets would make the result order-dependent, which MPI forbids too).
ddt::DatatypePtr randomType(Rng& rng, ddt::DatatypePtr base) {
  switch (rng.below(4)) {
    case 0:
      return ddt::Datatype::contiguous(1 + rng.below(4), base);
    case 1: {
      const std::size_t bl = 1 + rng.below(3);
      return ddt::Datatype::vector(
          1 + rng.below(4), bl, static_cast<std::int64_t>(bl + rng.below(4)),
          base);
    }
    case 2: {
      const std::size_t bl = 1 + rng.below(3);
      std::vector<std::int64_t> disp;
      std::int64_t cur = static_cast<std::int64_t>(rng.below(3));
      const std::size_t k = 1 + rng.below(4);
      for (std::size_t i = 0; i < k; ++i) {
        disp.push_back(cur);
        cur += static_cast<std::int64_t>(bl + rng.below(3));
      }
      return ddt::Datatype::indexedBlock(bl, disp, base);
    }
    default: {
      const std::size_t bl = 1 + rng.below(3);
      const auto stride_bytes =
          static_cast<std::int64_t>((bl + rng.below(3)) * base->size());
      return ddt::Datatype::hvector(1 + rng.below(3), bl, stride_bytes, base);
    }
  }
}

/// Small gappy float64 type for the large-world runs (kept tiny so a
/// 512-rank world's buffers stay in the low kilobytes per rank).
ddt::DatatypePtr tinyType(Rng& rng) {
  if (rng.below(2) == 0) {
    return ddt::Datatype::contiguous(1 + rng.below(2),
                                     ddt::Datatype::float64());
  }
  return ddt::Datatype::vector(2, 1, 2, ddt::Datatype::float64());
}

CollTuning randomTuning(Rng& rng) {
  CollTuning t;
  switch (rng.below(3)) {
    case 0:
      t.algo = CollAlgo::Flat;
      break;
    case 1:
      t.algo = CollAlgo::Ring;
      break;
    default:
      t.algo = CollAlgo::Tree;
      break;
  }
  t.radix = 2 + static_cast<int>(rng.below(3));
  return t;
}

ReduceOp randomOp(Rng& rng) {
  switch (rng.below(3)) {
    case 0:
      return ReduceOp::Sum;
    case 1:
      return ReduceOp::Min;
    default:
      return ReduceOp::Max;
  }
}

// ---- Host-side shadow primitives ----------------------------------------

std::vector<std::byte> hostPack(const std::vector<std::byte>& image,
                                const VBlock& b, const ddt::Layout& layout) {
  std::vector<std::byte> out(layout.size());
  std::size_t pos = 0;
  for (const auto& seg : layout.materialize()) {
    std::memcpy(out.data() + pos,
                image.data() + b.offset + static_cast<std::size_t>(seg.offset),
                seg.len);
    pos += seg.len;
  }
  return out;
}

void hostUnpack(std::vector<std::byte>& image, const VBlock& b,
                const ddt::Layout& layout, const std::byte* packed) {
  std::size_t pos = 0;
  for (const auto& seg : layout.materialize()) {
    std::memcpy(image.data() + b.offset + static_cast<std::size_t>(seg.offset),
                packed + pos, seg.len);
    pos += seg.len;
  }
}

template <typename T>
void foldTyped(std::byte* acc, const std::byte* contrib, std::size_t count,
               ReduceOp op) {
  for (std::size_t i = 0; i < count; ++i) {
    T a;
    T c;
    std::memcpy(&a, acc + i * sizeof(T), sizeof(T));
    std::memcpy(&c, contrib + i * sizeof(T), sizeof(T));
    switch (op) {
      case ReduceOp::Sum:
        a = a + c;
        break;
      case ReduceOp::Min:
        a = std::min(a, c);
        break;
      case ReduceOp::Max:
        a = std::max(a, c);
        break;
    }
    std::memcpy(acc + i * sizeof(T), &a, sizeof(T));
  }
}

/// acc op= contrib, element-wise — the exact operations the runtime's
/// combine performs, in the same order, so doubles match bitwise.
void hostFold(std::vector<std::byte>& acc, const std::vector<std::byte>& c,
              ReduceType type, ReduceOp op) {
  if (type == ReduceType::Float64) {
    foldTyped<double>(acc.data(), c.data(), acc.size() / 8, op);
  } else {
    foldTyped<std::int64_t>(acc.data(), c.data(), acc.size() / 8, op);
  }
}

/// Fill `image` with finite elements (raw random bytes could form NaNs,
/// whose payload propagation through min/max is not worth pinning).
void fillFinite(std::vector<std::byte>& image, ReduceType type, Rng& rng) {
  for (std::size_t i = 0; i + 8 <= image.size(); i += 8) {
    if (type == ReduceType::Float64) {
      const double v =
          (static_cast<double>(rng.below(4001)) - 2000.0) * 0.25;
      std::memcpy(image.data() + i, &v, 8);
    } else {
      const std::int64_t v =
          static_cast<std::int64_t>(rng.below(4001)) - 2000;
      std::memcpy(image.data() + i, &v, 8);
    }
  }
}

std::string describeDiff(const gpu::MemSpan& got,
                         const std::vector<std::byte>& want,
                         const char* what, int rank) {
  if (got.size() != want.size()) {
    std::ostringstream os;
    os << what << " rank " << rank << ": size mismatch " << got.size()
       << " vs " << want.size();
    return os.str();
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got.bytes[i] != want[i]) {
      std::ostringstream os;
      os << what << " rank " << rank << ": byte " << i << " is 0x" << std::hex
         << static_cast<int>(got.bytes[i]) << ", shadow says 0x"
         << static_cast<int>(want[i]);
      return os.str();
    }
  }
  return {};
}

// ---- One fuzz world ------------------------------------------------------

struct FuzzParams {
  std::uint64_t seed{1};
  int n{0};              ///< 0 = random in [2, 24]
  bool tiny{false};      ///< tiny float64 types + 0/1 v-counts (large worlds)
  bool forced{false};    ///< force `tuning` for every collective
  CollTuning tuning{};
  bool run_a2a{true};    ///< bruck at 512 ranks is the one genuinely slow case
};

/// Builds a world from `fp.seed`, runs alltoallv + allgatherv + ddt
/// allreduce + contiguous allreduce + reduce + bcast, and compares every
/// output buffer against the serial shadow. Returns "" on success, a
/// description of the first divergence otherwise. No gtest calls — safe to
/// run from parallelFor workers.
std::string runCollectiveFuzz(const FuzzParams& fp) {
  Rng rng(fp.seed * 0x9E3779B97F4A7C15ull + 1);
  const int n = fp.n > 0 ? fp.n : 2 + static_cast<int>(rng.below(23));
  const auto scheme =
      schemes::kAllSchemes[rng.below(std::size(schemes::kAllSchemes))];
  auto tuning = [&] { return fp.forced ? fp.tuning : randomTuning(rng); };
  const CollTuning t_a2a = tuning();
  const CollTuning t_ag = tuning();
  const CollTuning t_ar = tuning();
  const CollTuning t_arc = tuning();
  const CollTuning t_red = tuning();

  std::ostringstream trace;
  trace << "seed=0x" << std::hex << fp.seed << std::dec << " n=" << n
        << " scheme=" << schemes::schemeName(scheme)
        << " a2a=" << mpi::collAlgoName(t_a2a.algo) << "/" << t_a2a.radix
        << " ag=" << mpi::collAlgoName(t_ag.algo) << "/" << t_ag.radix
        << " ar=" << mpi::collAlgoName(t_ar.algo) << "/" << t_ar.radix;

  auto makeType = [&] {
    return fp.tiny ? tinyType(rng) : randomType(rng, randomBase(rng));
  };
  auto vcount = [&] { return fp.tiny ? rng.below(2) : rng.below(4); };
  // True data span of `c` elements — some derived types (e.g. indexed with
  // a trailing gap) end past count * extent(), and resolveBlock checks the
  // flattened endOffset, so block offsets must stride by it.
  auto extentOf = [](const ddt::DatatypePtr& t, std::size_t c) {
    return c == 0 ? std::size_t{0}
                  : static_cast<std::size_t>(ddt::flatten(t, c).endOffset());
  };

  // Alltoallv: per-pair counts, zero allowed (zero blocks skip the wire).
  const auto type_a2a = makeType();
  std::vector<std::size_t> cnt;
  if (fp.run_a2a) {
    cnt.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (auto& c : cnt) c = vcount();
  }
  auto cnt_at = [&](int s, int d) {
    return cnt[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(d)];
  };

  // Allgatherv: one block per rank, zero allowed.
  const auto type_ag = makeType();
  std::vector<std::size_t> gcnt(static_cast<std::size_t>(n));
  for (auto& c : gcnt) c = vcount();

  // Derived-datatype allreduce (element base fixed by the reduce type).
  const ReduceType elem_ar =
      rng.below(2) == 0 ? ReduceType::Float64 : ReduceType::Int64;
  const auto type_ar =
      fp.tiny ? tinyType(rng)
              : randomType(rng, elem_ar == ReduceType::Float64
                                    ? ddt::Datatype::float64()
                                    : ddt::Datatype::int64());
  const std::size_t count_ar = 1 + rng.below(3);
  const ReduceOp op_ar = randomOp(rng);

  // Contiguous allreduce + rooted reduce + typed bcast, random roots.
  const ReduceType elem_arc =
      rng.below(2) == 0 ? ReduceType::Float64 : ReduceType::Int64;
  const std::size_t count_arc = 1 + rng.below(6);
  const ReduceOp op_arc = randomOp(rng);
  const ReduceType elem_red =
      rng.below(2) == 0 ? ReduceType::Float64 : ReduceType::Int64;
  const std::size_t count_red = 1 + rng.below(6);
  const ReduceOp op_red = randomOp(rng);
  const int red_root = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const auto type_bc = makeType();
  const std::size_t count_bc = 1 + rng.below(3);
  const int bc_root = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));

  // Blocks and buffer footprints (host side, identical on every rank).
  std::vector<std::vector<VBlock>> sblocks(static_cast<std::size_t>(n));
  std::vector<std::vector<VBlock>> rblocks(static_cast<std::size_t>(n));
  std::vector<std::size_t> ssize(static_cast<std::size_t>(n), 1);
  std::vector<std::size_t> rsize(static_cast<std::size_t>(n), 1);
  if (fp.run_a2a) {
    for (int s = 0; s < n; ++s) {
      std::size_t off = 0;
      for (int d = 0; d < n; ++d) {
        sblocks[static_cast<std::size_t>(s)].push_back(
            {type_a2a, cnt_at(s, d), off});
        off += extentOf(type_a2a, cnt_at(s, d));
      }
      ssize[static_cast<std::size_t>(s)] = std::max<std::size_t>(off, 1);
    }
    for (int d = 0; d < n; ++d) {
      std::size_t off = 0;
      for (int s = 0; s < n; ++s) {
        rblocks[static_cast<std::size_t>(d)].push_back(
            {type_a2a, cnt_at(s, d), off});
        off += extentOf(type_a2a, cnt_at(s, d));
      }
      rsize[static_cast<std::size_t>(d)] = std::max<std::size_t>(off, 1);
    }
  }
  std::vector<VBlock> gblocks;
  std::size_t ag_total = 0;
  for (int r = 0; r < n; ++r) {
    gblocks.push_back({type_ag, gcnt[static_cast<std::size_t>(r)], ag_total});
    ag_total += extentOf(type_ag, gcnt[static_cast<std::size_t>(r)]);
  }
  ag_total = std::max<std::size_t>(ag_total, 1);
  const std::size_t ar_region = extentOf(type_ar, count_ar);
  const std::size_t arc_region = count_arc * 8;
  const std::size_t red_region = count_red * 8;
  const std::size_t bc_region = extentOf(type_bc, count_bc);

  sim::Engine eng;
  hw::MachineSpec machine = hw::lassen();
  machine.node.gpus_per_node = 1;
  const std::size_t max_pair =
      *std::max_element(ssize.begin(), ssize.end()) +
      *std::max_element(rsize.begin(), rsize.end());
  const std::size_t per_rank = max_pair + 2 * ag_total + ar_region +
                               arc_region + red_region + bc_region;
  machine.node.gpu.arena_bytes =
      per_rank * 3 + (n > 64 ? (256u << 10) : (1u << 20));
  hw::Cluster cluster(eng, machine, n);
  mpi::RuntimeConfig cfg;
  cfg.scheme = scheme;
  mpi::Runtime rt(cluster, cfg);

  struct RankState {
    gpu::MemSpan a2a_send, a2a_recv, ag_send, ag_recv;
    gpu::MemSpan ar_buf, arc_buf, red_buf, bc_buf;
    std::vector<std::byte> h_a2a_send, h_ag_send;
    std::vector<std::byte> h_ar, h_arc, h_red, h_bc;
  };
  std::vector<RankState> st(static_cast<std::size_t>(n));
  for (int me = 0; me < n; ++me) {
    auto& p = rt.proc(me);
    auto& s = st[static_cast<std::size_t>(me)];
    if (fp.run_a2a) {
      s.a2a_send = p.allocDevice(ssize[static_cast<std::size_t>(me)]);
      s.a2a_recv = p.allocDevice(rsize[static_cast<std::size_t>(me)]);
    }
    s.ag_send = p.allocDevice(ag_total);
    s.ag_recv = p.allocDevice(ag_total);
    s.ar_buf = p.allocDevice(std::max<std::size_t>(ar_region, 8));
    s.arc_buf = p.allocDevice(arc_region);
    s.red_buf = p.allocDevice(red_region);
    s.bc_buf = p.allocDevice(std::max<std::size_t>(bc_region, 1));

    Rng fill(fp.seed * 0x100000001b3ull + static_cast<std::uint64_t>(me) + 7);
    auto randomImage = [&](std::size_t bytes) {
      std::vector<std::byte> img(bytes);
      for (auto& b : img) b = static_cast<std::byte>(fill.below(256));
      return img;
    };
    if (fp.run_a2a) {
      s.h_a2a_send = randomImage(s.a2a_send.size());
      std::memcpy(s.a2a_send.bytes.data(), s.h_a2a_send.data(),
                  s.h_a2a_send.size());
      std::memset(s.a2a_recv.bytes.data(), 0xAA, s.a2a_recv.size());
    }
    s.h_ag_send = randomImage(ag_total);
    std::memcpy(s.ag_send.bytes.data(), s.h_ag_send.data(), ag_total);
    std::memset(s.ag_recv.bytes.data(), 0xAA, ag_total);

    s.h_ar.resize(s.ar_buf.size());
    fillFinite(s.h_ar, elem_ar, fill);
    std::memcpy(s.ar_buf.bytes.data(), s.h_ar.data(), s.h_ar.size());
    s.h_arc.resize(arc_region);
    fillFinite(s.h_arc, elem_arc, fill);
    std::memcpy(s.arc_buf.bytes.data(), s.h_arc.data(), arc_region);
    s.h_red.resize(red_region);
    fillFinite(s.h_red, elem_red, fill);
    std::memcpy(s.red_buf.bytes.data(), s.h_red.data(), red_region);
    s.h_bc = randomImage(s.bc_buf.size());
    std::memcpy(s.bc_buf.bytes.data(), s.h_bc.data(), s.h_bc.size());
  }

  auto body = [&](mpi::Proc& p) -> sim::Task<void> {
    auto& s = st[static_cast<std::size_t>(p.rank())];
    if (fp.run_a2a) {
      co_await mpi::alltoallv(p, s.a2a_send, s.a2a_recv,
                              sblocks[static_cast<std::size_t>(p.rank())],
                              rblocks[static_cast<std::size_t>(p.rank())],
                              t_a2a);
    }
    co_await mpi::allgatherv(p, s.ag_send, s.ag_recv, gblocks, t_ag);
    co_await mpi::allreduceDdt(p, s.ar_buf, type_ar, count_ar, elem_ar,
                               op_ar, t_ar);
    co_await mpi::allreduce(p, s.arc_buf, count_arc, elem_arc, op_arc, t_arc);
    co_await mpi::reduce(p, s.red_buf, count_red, elem_red, op_red, red_root,
                         t_red);
    co_await mpi::bcast(p, s.bc_buf, type_bc, count_bc, bc_root);
  };
  rt.runAll(body);
  if (eng.unfinishedTasks() != 0) {
    return "deadlock (" + std::to_string(eng.unfinishedTasks()) +
           " unfinished tasks): " + trace.str();
  }

  // ---- Shadow model + comparison ----
  auto layoutOf = [&](const ddt::DatatypePtr& t, std::size_t c) {
    return ddt::flatten(t, c);
  };

  if (fp.run_a2a) {
    for (int d = 0; d < n; ++d) {
      std::vector<std::byte> expect(rsize[static_cast<std::size_t>(d)]);
      std::memset(expect.data(), 0xAA, expect.size());
      for (int s = 0; s < n; ++s) {
        const std::size_t c = cnt_at(s, d);
        if (c == 0) continue;
        const auto layout = layoutOf(type_a2a, c);
        const auto packed = hostPack(
            st[static_cast<std::size_t>(s)].h_a2a_send,
            sblocks[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)],
            layout);
        hostUnpack(expect,
                   rblocks[static_cast<std::size_t>(d)]
                          [static_cast<std::size_t>(s)],
                   layout, packed.data());
      }
      const auto err =
          describeDiff(st[static_cast<std::size_t>(d)].a2a_recv, expect,
                       "alltoallv", d);
      if (!err.empty()) return err + " | " + trace.str();
    }
  }

  {
    std::vector<std::byte> expect(ag_total);
    std::memset(expect.data(), 0xAA, expect.size());
    for (int r = 0; r < n; ++r) {
      const std::size_t c = gcnt[static_cast<std::size_t>(r)];
      if (c == 0) continue;
      const auto layout = layoutOf(type_ag, c);
      const auto packed =
          hostPack(st[static_cast<std::size_t>(r)].h_ag_send,
                   gblocks[static_cast<std::size_t>(r)], layout);
      hostUnpack(expect, gblocks[static_cast<std::size_t>(r)], layout,
                 packed.data());
    }
    for (int r = 0; r < n; ++r) {
      const auto err = describeDiff(st[static_cast<std::size_t>(r)].ag_recv,
                                    expect, "allgatherv", r);
      if (!err.empty()) return err + " | " + trace.str();
    }
  }

  {
    const auto layout = layoutOf(type_ar, count_ar);
    const VBlock whole{type_ar, count_ar, 0};
    auto acc = hostPack(st[0].h_ar, whole, layout);
    for (int r = 1; r < n; ++r) {
      const auto contrib =
          hostPack(st[static_cast<std::size_t>(r)].h_ar, whole, layout);
      hostFold(acc, contrib, elem_ar, op_ar);
    }
    for (int r = 0; r < n; ++r) {
      auto expect = st[static_cast<std::size_t>(r)].h_ar;
      hostUnpack(expect, whole, layout, acc.data());
      const auto err = describeDiff(st[static_cast<std::size_t>(r)].ar_buf,
                                    expect, "allreduceDdt", r);
      if (!err.empty()) return err + " | " + trace.str();
    }
  }

  {
    auto acc = st[0].h_arc;
    for (int r = 1; r < n; ++r) {
      hostFold(acc, st[static_cast<std::size_t>(r)].h_arc, elem_arc, op_arc);
    }
    for (int r = 0; r < n; ++r) {
      const auto err = describeDiff(st[static_cast<std::size_t>(r)].arc_buf,
                                    acc, "allreduce", r);
      if (!err.empty()) return err + " | " + trace.str();
    }
  }

  {
    auto acc = st[0].h_red;
    for (int r = 1; r < n; ++r) {
      hostFold(acc, st[static_cast<std::size_t>(r)].h_red, elem_red, op_red);
    }
    for (int r = 0; r < n; ++r) {
      // Root gets the fold; every other rank's buffer must be untouched.
      const auto& expect =
          r == red_root ? acc : st[static_cast<std::size_t>(r)].h_red;
      const auto err = describeDiff(st[static_cast<std::size_t>(r)].red_buf,
                                    expect, "reduce", r);
      if (!err.empty()) return err + " | " + trace.str();
    }
  }

  {
    const auto layout = layoutOf(type_bc, count_bc);
    const VBlock whole{type_bc, count_bc, 0};
    const auto root_packed =
        hostPack(st[static_cast<std::size_t>(bc_root)].h_bc, whole, layout);
    for (int r = 0; r < n; ++r) {
      auto expect = st[static_cast<std::size_t>(r)].h_bc;
      hostUnpack(expect, whole, layout, root_packed.data());
      const auto err = describeDiff(st[static_cast<std::size_t>(r)].bc_buf,
                                    expect, "bcast", r);
      if (!err.empty()) return err + " | " + trace.str();
    }
  }

  return {};
}

// ---- Tests ---------------------------------------------------------------

TEST(CollectiveFuzz, RandomSmallWorlds) {
  constexpr std::size_t kIters = 24;
  std::vector<std::string> errs(kIters);
  bench::parallelFor(kIters, [&](std::size_t i) {
    FuzzParams fp;
    fp.seed = 0xC0FFEE + i * 977;
    errs[i] = runCollectiveFuzz(fp);
  });
  for (const auto& err : errs) {
    EXPECT_TRUE(err.empty()) << err;
  }
}

TEST(CollectiveFuzz, LargeWorldRing129) {
  FuzzParams fp;
  fp.seed = 0x129;
  fp.n = 129;
  fp.tiny = true;
  fp.forced = true;
  fp.tuning = {CollAlgo::Ring, 2};
  const auto err = runCollectiveFuzz(fp);
  EXPECT_TRUE(err.empty()) << err;
}

TEST(CollectiveFuzz, LargeWorldTree257Radix3) {
  FuzzParams fp;
  fp.seed = 0x257;
  fp.n = 257;
  fp.tiny = true;
  fp.forced = true;
  fp.tuning = {CollAlgo::Tree, 3};
  const auto err = runCollectiveFuzz(fp);
  EXPECT_TRUE(err.empty()) << err;
}

TEST(CollectiveFuzz, LargeWorldTree512) {
  FuzzParams fp;
  fp.seed = 0x512;
  fp.n = 512;
  fp.tiny = true;
  fp.forced = true;
  fp.tuning = {CollAlgo::Tree, 2};
  fp.run_a2a = false;  // bruck at 512 is covered at 257; keep the test fast
  const auto err = runCollectiveFuzz(fp);
  EXPECT_TRUE(err.empty()) << err;
}

TEST(CollectiveFuzz, LargeWorldFlat64) {
  // Flat at a mid-size world: 63 simultaneous peers per rank.
  FuzzParams fp;
  fp.seed = 0x64;
  fp.n = 64;
  fp.tiny = true;
  fp.forced = true;
  fp.tuning = {CollAlgo::Flat, 2};
  const auto err = runCollectiveFuzz(fp);
  EXPECT_TRUE(err.empty()) << err;
}

}  // namespace
}  // namespace dkf
