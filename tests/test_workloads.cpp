// Workload generators: the paper's sparse/dense classification, scaling
// behaviour, determinism, and the 3-D halo face geometry.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ddt/layout.hpp"
#include "workloads/workloads.hpp"

namespace dkf::workloads {
namespace {

TEST(Specfem3dOc, SparseThousandsOfTinyBlocks) {
  const auto wl = specfem3dOc(64);
  EXPECT_TRUE(wl.sparse);
  const auto layout = ddt::flatten(wl.type, wl.count);
  EXPECT_GE(layout.blockCount(), 1000u);   // "thousands of small blocks"
  EXPECT_LE(layout.meanBlock(), 16.0);     // single floats
  EXPECT_EQ(wl.packedBytes(), 32u * 64u * 4u);
}

TEST(Specfem3dOc, DeterministicAcrossCalls) {
  const auto a = ddt::flatten(specfem3dOc(32).type, 1);
  const auto b = ddt::flatten(specfem3dOc(32).type, 1);
  EXPECT_EQ(a.materialize(), b.materialize());
}

TEST(Specfem3dCm, StructOnIndexedTriplesTheBlocks) {
  const auto wl = specfem3dCm(64);
  EXPECT_TRUE(wl.sparse);
  const auto layout = ddt::flatten(wl.type, 1);
  const auto field = ddt::flatten(specfem3dOc(32).type, 1);  // 16*64 points
  // Three field arrays, same boundary list each.
  EXPECT_GE(layout.blockCount(), 2 * field.blockCount());
  EXPECT_EQ(wl.packedBytes(), 3u * 16u * 64u * 4u);
}

TEST(Milc, DenseFewBlocks) {
  const auto wl = milcZdown(64);
  EXPECT_FALSE(wl.sparse);
  const auto layout = ddt::flatten(wl.type, 1);
  EXPECT_EQ(layout.blockCount(), 64u);          // one run per lattice row
  EXPECT_EQ(layout.minBlock(), 32u * 48u);      // dim/2 su3 vectors of 48 B
  EXPECT_EQ(wl.packedBytes(), 64u * 32u * 48u);
}

TEST(Milc, BlockSizeGrowsWithDim) {
  const auto small = ddt::flatten(milcZdown(16).type, 1);
  const auto large = ddt::flatten(milcZdown(128).type, 1);
  EXPECT_LT(small.meanBlock(), large.meanBlock());
  EXPECT_EQ(small.blockCount(), 16u);
  EXPECT_EQ(large.blockCount(), 128u);
}

TEST(NasMg, VectorFaceOfCubicGrid) {
  const auto wl = nasMgFace(32);
  EXPECT_FALSE(wl.sparse);
  const auto layout = ddt::flatten(wl.type, 1);
  EXPECT_EQ(layout.blockCount(), 32u);
  EXPECT_EQ(layout.minBlock(), 32u * 8u);      // a row of doubles
  EXPECT_EQ(wl.regionBytes(),
            static_cast<std::size_t>(wl.type->extent()));
  // The face lives inside the full dim^3 grid.
  EXPECT_GE(wl.type->extent(), 31u * 32u * 32u * 8u);
}

TEST(PaperWorkloads, FourInFigureOrder) {
  const auto wls = paperWorkloads(16);
  ASSERT_EQ(wls.size(), 4u);
  EXPECT_EQ(wls[0].name, "specfem3D_oc");
  EXPECT_EQ(wls[1].name, "specfem3D_cm");
  EXPECT_EQ(wls[2].name, "MILC");
  EXPECT_EQ(wls[3].name, "NAS_MG");
  EXPECT_TRUE(wls[0].sparse && wls[1].sparse);
  EXPECT_FALSE(wls[2].sparse || wls[3].sparse);
}

TEST(SparseVsDense, MeanBlockSeparatesClasses) {
  for (std::size_t dim : {16u, 64u, 128u}) {
    for (const auto& wl : paperWorkloads(dim)) {
      const auto layout = ddt::flatten(wl.type, 1);
      if (wl.sparse) {
        EXPECT_LT(layout.meanBlock(), 64.0) << wl.name << " dim " << dim;
      } else {
        EXPECT_GT(layout.meanBlock(), 100.0) << wl.name << " dim " << dim;
      }
    }
  }
}

TEST(Halo3d, SixFacesWithCorrectNeighbors) {
  const auto faces = halo3dFaces(8);
  ASSERT_EQ(faces.size(), 6u);
  int axis_count[3] = {0, 0, 0};
  for (const auto& f : faces) {
    int nonzero = 0;
    for (int a = 0; a < 3; ++a) {
      if (f.neighbor_dx[a] != 0) {
        ++nonzero;
        ++axis_count[a];
        EXPECT_TRUE(f.neighbor_dx[a] == 1 || f.neighbor_dx[a] == -1);
      }
    }
    EXPECT_EQ(nonzero, 1);  // face neighbors only (no edges/corners)
  }
  EXPECT_EQ(axis_count[0], 2);
  EXPECT_EQ(axis_count[1], 2);
  EXPECT_EQ(axis_count[2], 2);
}

TEST(Halo3d, FaceTypesCoverExactlyOneShell) {
  constexpr std::size_t n = 8, g = 1, total = n + 2 * g;
  const auto faces = halo3dFaces(n, g);
  for (const auto& f : faces) {
    const auto send = ddt::flatten(f.send_type, 1);
    const auto recv = ddt::flatten(f.recv_type, 1);
    // One ghost-thick slab of the owned region: n*n*g doubles.
    EXPECT_EQ(send.size(), n * n * g * 8);
    EXPECT_EQ(recv.size(), n * n * g * 8);
    // Both live inside the (n+2g)^3 block.
    EXPECT_LE(static_cast<std::size_t>(send.endOffset()),
              total * total * total * 8);
    EXPECT_LE(static_cast<std::size_t>(recv.endOffset()),
              total * total * total * 8);
    // Send (owned layer) and recv (ghost layer) must not overlap.
    EXPECT_NE(send.materialize(), recv.materialize());
  }
}

TEST(Halo3d, OppositeFacesMirror) {
  constexpr std::size_t n = 6;
  const auto faces = halo3dFaces(n);
  // Faces come in (-axis, +axis) pairs: the send layer of one must be the
  // size of the recv layer of the other.
  for (std::size_t f = 0; f < faces.size(); f += 2) {
    const auto send_a = ddt::flatten(faces[f].send_type, 1);
    const auto recv_b = ddt::flatten(faces[f + 1].recv_type, 1);
    EXPECT_EQ(send_a.size(), recv_b.size());
  }
}

TEST(Halo3d, GhostMustBeSmallerThanBlock) {
  EXPECT_THROW(halo3dFaces(2, 1), CheckFailure);
  EXPECT_NO_THROW(halo3dFaces(3, 1));
}

TEST(RegionBytes, CoversLayoutEnd) {
  for (const auto& wl : paperWorkloads(32)) {
    const auto layout = ddt::flatten(wl.type, wl.count);
    EXPECT_GE(wl.regionBytes(),
              static_cast<std::size_t>(layout.endOffset()))
        << wl.name;
  }
}

}  // namespace
}  // namespace dkf::workloads
