// Shape tests for the experiment harness: the qualitative findings of the
// paper's evaluation must hold in the simulator — who wins on which layout,
// the threshold U-shape, and the production-library gap. These back the
// claims recorded in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "bench_util/experiment.hpp"
#include "hw/machines.hpp"

namespace dkf::bench {
namespace {

ExchangeConfig baseConfig(hw::MachineSpec machine, schemes::Scheme scheme,
                          workloads::Workload wl) {
  ExchangeConfig cfg;
  cfg.machine = std::move(machine);
  cfg.scheme = scheme;
  cfg.workload = std::move(wl);
  cfg.n_ops = 16;
  cfg.iterations = 20;
  cfg.warmup = 3;
  return cfg;
}

double latencyOf(schemes::Scheme scheme, const workloads::Workload& wl,
                 hw::MachineSpec machine, int n_ops = 16) {
  auto cfg = baseConfig(std::move(machine), scheme, wl);
  cfg.n_ops = n_ops;
  return runBulkExchange(cfg).meanLatencyUs();
}

TEST(ExperimentShape, FusionBeatsSyncAndAsyncOnSparseLayout) {
  const auto wl = workloads::specfem3dCm(32);
  const auto machine = hw::lassen();
  const double fusion = latencyOf(schemes::Scheme::Proposed, wl, machine);
  const double sync = latencyOf(schemes::Scheme::GpuSync, wl, machine);
  const double async = latencyOf(schemes::Scheme::GpuAsync, wl, machine);
  EXPECT_LT(fusion * 2.0, sync);   // at least 2x on bulk sparse
  EXPECT_LT(fusion * 2.0, async);
}

TEST(ExperimentShape, HybridWinsSmallDenseOnLassen) {
  // Fig. 12(c): CPU-GPU-Hybrid is best for small, dense MILC layouts.
  const auto wl = workloads::milcZdown(16);  // 16 blocks x 384 B
  const auto machine = hw::lassen();
  const double hybrid = latencyOf(schemes::Scheme::CpuGpuHybrid, wl, machine);
  const double fusion = latencyOf(schemes::Scheme::Proposed, wl, machine);
  const double sync = latencyOf(schemes::Scheme::GpuSync, wl, machine);
  EXPECT_LT(hybrid, sync);
  EXPECT_LT(hybrid, fusion);
}

TEST(ExperimentShape, FusionWinsLargeDense) {
  // Fig. 12(d): for large dense layouts the proposed design wins again.
  const auto wl = workloads::nasMgFace(128);  // 128 blocks x 1 KiB rows
  const auto machine = hw::lassen();
  const double fusion = latencyOf(schemes::Scheme::Proposed, wl, machine);
  const double hybrid = latencyOf(schemes::Scheme::CpuGpuHybrid, wl, machine);
  const double sync = latencyOf(schemes::Scheme::GpuSync, wl, machine);
  EXPECT_LT(fusion, hybrid);
  EXPECT_LT(fusion, sync);
}

TEST(ExperimentShape, NaiveProductionLibrariesOrdersOfMagnitudeSlower) {
  // Fig. 14: SpectrumMPI/OpenMPI per-block copies on a sparse layout.
  const auto wl = workloads::specfem3dOc(64);  // 2048 blocks
  const auto machine = hw::lassen();
  const double fusion = latencyOf(schemes::Scheme::Proposed, wl, machine, 8);
  const double naive = latencyOf(schemes::Scheme::NaiveCopy, wl, machine, 8);
  EXPECT_GT(naive, fusion * 50.0);
}

TEST(ExperimentShape, ThresholdSweepIsUShaped) {
  // Fig. 8: under-fused (tiny threshold) and over-fused (huge threshold)
  // both lose to the 512 KB sweet spot for a sparse bulk workload.
  const auto wl = workloads::specfem3dCm(64);
  auto run = [&](std::size_t threshold) {
    auto cfg = baseConfig(hw::lassen(), schemes::Scheme::ProposedTuned, wl);
    cfg.tuned_threshold = threshold;
    cfg.n_ops = 32;
    return runBulkExchange(cfg).meanLatencyUs();
  };
  const double under = run(16 * 1024);
  const double sweet = run(512 * 1024);
  const double over = run(64 * 1024 * 1024);
  EXPECT_LT(sweet, under);
  EXPECT_LE(sweet, over);
}

TEST(ExperimentShape, FusionLaunchesFarFewerKernelsThanOpsSubmitted) {
  auto cfg = baseConfig(hw::lassen(), schemes::Scheme::Proposed,
                        workloads::specfem3dCm(64));
  cfg.n_ops = 32;
  cfg.iterations = 10;
  const auto result = runBulkExchange(cfg);
  // 32 packs + 32 unpacks per iteration on rank 0; fusion must batch them.
  const double ops = 64.0 * (cfg.iterations + cfg.warmup);
  EXPECT_LT(static_cast<double>(result.fused_kernels), ops / 3.0);
  EXPECT_EQ(result.fallbacks, 0u);
  // Repeat-layout traffic: each rank compiles its pack and unpack plan
  // once; every later message resolves from the plan cache.
  EXPECT_LE(result.plan_cache.misses, 4u);
  EXPECT_GT(result.plan_cache.hits, result.plan_cache.misses);
  EXPECT_EQ(result.plan_cache.fallbacks, 0u);
}

TEST(ExperimentShape, BreakdownCategoriesConsistent) {
  auto cfg = baseConfig(hw::lassen(), schemes::Scheme::GpuSync,
                        workloads::milcZdown(64));
  const auto result = runBulkExchange(cfg);
  // GPU-Sync: zero scheduling cost, nonzero launch + sync.
  EXPECT_EQ(result.breakdown.scheduling, 0u);
  EXPECT_GT(result.breakdown.launching, 0u);
  EXPECT_GT(result.breakdown.synchronize, 0u);
  // pack_unpack (GPU-side kernel time) and synchronize (CPU wait for those
  // kernels) overlap in wall time, so only each category individually is
  // bounded by the elapsed time.
  EXPECT_LE(result.breakdown.launching, result.total_elapsed);
  EXPECT_LE(result.breakdown.synchronize, result.total_elapsed);
  EXPECT_LE(result.breakdown.communication, result.total_elapsed);
}

TEST(ExperimentShape, DeterministicAcrossRuns) {
  auto cfg = baseConfig(hw::abci(), schemes::Scheme::Proposed,
                        workloads::nasMgFace(64));
  cfg.iterations = 5;
  const auto a = runBulkExchange(cfg);
  const auto b = runBulkExchange(cfg);
  EXPECT_EQ(a.latency_us.samples(), b.latency_us.samples());
}

}  // namespace
}  // namespace dkf::bench
