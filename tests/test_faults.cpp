// Fault-injection subsystem tests: watchdog semantics, FaultPlan
// determinism/replay, end-to-end reproducibility of lossy runs, the
// liveness guarantee (a hung run trips the watchdog instead of spinning),
// graceful-degradation paths (CPU pack fallback, host staging fallback),
// and a seeded fuzz sweep asserting byte-correctness under sustained loss.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "bench_util/experiment.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "schemes/factory.hpp"
#include "schemes/fusion_engine.hpp"
#include "workloads/workloads.hpp"

namespace dkf {
namespace {

// ---------------------------------------------------------------- watchdog

TEST(Watchdog, TripsWhenVirtualTimeExceedsDeadline) {
  sim::Engine eng;
  eng.setWatchdog(us(10));
  eng.schedule(us(20), [] {});
  EXPECT_THROW(eng.run(), CheckFailure);
}

TEST(Watchdog, ClearDisarms) {
  sim::Engine eng;
  eng.setWatchdog(us(10));
  eng.clearWatchdog();
  EXPECT_FALSE(eng.watchdogArmed());
  bool ran = false;
  eng.schedule(us(20), [&] { ran = true; });
  EXPECT_NO_THROW(eng.run());
  EXPECT_TRUE(ran);
}

TEST(Watchdog, EventsBeforeDeadlineRunNormally) {
  sim::Engine eng;
  eng.setWatchdog(us(100));
  int ticks = 0;
  eng.schedule(us(10), [&] { ++ticks; });
  eng.schedule(us(50), [&] { ++ticks; });
  EXPECT_NO_THROW(eng.run());
  EXPECT_EQ(ticks, 2);
}

// ------------------------------------------------------ plan determinism

std::vector<bool> drawSequence(fault::FaultPlan& plan, int n) {
  std::vector<bool> seq;
  for (int i = 0; i < n; ++i) {
    seq.push_back(plan.dropData());
    seq.push_back(plan.dropControl());
    seq.push_back(plan.nicStallDelay() > 0);
    seq.push_back(plan.failLaunch());
    seq.push_back(plan.failAlloc());
  }
  return seq;
}

TEST(FaultPlanDeterminism, SameSeedSameDrawsAndLog) {
  fault::FaultSpec fs;
  fs.seed = 0xDECAF;
  fs.data_loss = 0.3;
  fs.control_loss = 0.2;
  fs.nic_stall_prob = 0.25;
  fs.launch_failure = 0.15;
  fs.alloc_failure = 0.1;

  sim::Engine eng_a, eng_b;
  fault::FaultPlan a(eng_a, fs), b(eng_b, fs);
  EXPECT_EQ(drawSequence(a, 200), drawSequence(b, 200));
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_EQ(a.log(), b.log());
  EXPECT_GT(a.counters().total(), 0u);
}

TEST(FaultPlanDeterminism, DistinctSeedsDiverge) {
  fault::FaultSpec fs;
  fs.data_loss = 0.3;
  fs.control_loss = 0.3;
  fs.seed = 1;
  sim::Engine eng_a, eng_b;
  fault::FaultPlan a(eng_a, fs);
  fs.seed = 2;
  fault::FaultPlan b(eng_b, fs);
  EXPECT_NE(drawSequence(a, 200), drawSequence(b, 200));
}

TEST(FaultPlanDeterminism, CategoryStreamsAreIndependent) {
  // Adding a launch-failure rate must not change which packets drop.
  fault::FaultSpec fs;
  fs.seed = 0xABCD;
  fs.data_loss = 0.3;
  sim::Engine eng_a, eng_b;
  fault::FaultPlan a(eng_a, fs);
  fs.launch_failure = 0.9;
  fault::FaultPlan b(eng_b, fs);
  std::vector<bool> drops_a, drops_b;
  for (int i = 0; i < 200; ++i) {
    drops_a.push_back(a.dropData());
    (void)b.failLaunch();  // interleave draws from the other stream
    drops_b.push_back(b.dropData());
  }
  EXPECT_EQ(drops_a, drops_b);
}

// ------------------------------------------------- end-to-end replayability

bench::ExchangeConfig lossyExchange(std::uint64_t seed) {
  bench::ExchangeConfig cfg;
  cfg.machine = hw::lassen();
  cfg.scheme = schemes::Scheme::Proposed;
  cfg.workload = workloads::milcZdown(32);
  cfg.n_ops = 8;
  cfg.iterations = 5;
  cfg.warmup = 1;
  cfg.inject_faults = true;
  cfg.faults.seed = seed;
  cfg.faults.data_loss = 0.1;
  cfg.faults.control_loss = 0.1;
  cfg.faults.nic_stall_prob = 0.05;
  cfg.faults.nic_stall = us(3);
  cfg.reliability.enabled = true;
  cfg.reliability.base_timeout = us(40);
  cfg.reliability.max_timeout = us(2000);
  cfg.reliability.max_retries = 60;
  cfg.watchdog = sec(2);
  return cfg;
}

TEST(Replay, SameSeedReproducesTimestampsAndCounters) {
  const auto a = bench::runBulkExchange(lossyExchange(0x1234));
  const auto b = bench::runBulkExchange(lossyExchange(0x1234));
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.fault_counters, b.fault_counters);
  EXPECT_EQ(a.transport.retransmissions, b.transport.retransmissions);
  EXPECT_EQ(a.transport.acks_sent, b.transport.acks_sent);
  EXPECT_EQ(a.transport.duplicates_ignored, b.transport.duplicates_ignored);
  EXPECT_EQ(a.meanLatencyUs(), b.meanLatencyUs());
  EXPECT_GT(a.fault_counters.total(), 0u) << "faults should actually fire";
}

TEST(Replay, DistinctSeedsProduceDistinctFaultTraces) {
  const auto a = bench::runBulkExchange(lossyExchange(0x1234));
  const auto c = bench::runBulkExchange(lossyExchange(0x9999));
  EXPECT_TRUE(a.end_time != c.end_time ||
              !(a.fault_counters == c.fault_counters))
      << "different fault seeds should perturb the run";
}

// ----------------------------------------------------------------- liveness

TEST(Liveness, TotalControlLossWithoutRetransmissionTripsWatchdog) {
  // 100% control loss kills every RTS, so the rendezvous never matches.
  // Without the reliability layer this is a livelock: the progress engine
  // polls forever. The engine watchdog must convert it into a clean error.
  auto cfg = lossyExchange(0x77);
  cfg.faults.data_loss = 0.0;
  cfg.faults.control_loss = 1.0;
  cfg.faults.nic_stall_prob = 0.0;
  cfg.reliability = {};  // retransmission disabled
  cfg.watchdog = ms(50);
  EXPECT_THROW(bench::runBulkExchange(cfg), CheckFailure);
}

TEST(Liveness, SameLossHealsWithRetransmissionEnabled) {
  // The same world, but only the first 25 control packets are lost and the
  // reliability layer is on: the run must complete (and must have actually
  // retransmitted something to do so).
  auto cfg = lossyExchange(0x77);
  cfg.faults.data_loss = 0.0;
  cfg.faults.control_loss = 1.0;
  cfg.faults.max_control_drops = 25;
  cfg.faults.nic_stall_prob = 0.0;
  const auto r = bench::runBulkExchange(cfg);
  EXPECT_EQ(r.fault_counters.control_drops, 25u);
  EXPECT_GT(r.transport.retransmissions, 0u);
}

// ----------------------------------------------- graceful degradation paths

/// One 2-rank, byte-verified exchange under an arbitrary FaultSpec.
struct FaultedWorld {
  explicit FaultedWorld(schemes::Scheme scheme, workloads::Workload workload,
                        const fault::FaultSpec& fs,
                        mpi::ReliabilityConfig rel = {},
                        mpi::Protocol rendezvous = mpi::Protocol::RGet)
      : wl(std::move(workload)) {
    hw::MachineSpec machine = hw::lassen();
    region = std::max<std::size_t>(wl.regionBytes(), 64);
    machine.node.gpu.arena_bytes =
        std::max(machine.node.gpu.arena_bytes, region * 8 + (8u << 20));
    machine.node.gpus_per_node = 1;
    cluster.emplace(eng, machine, 2);
    plan.emplace(eng, fs);
    cluster->setFaultPlan(&*plan);
    mpi::RuntimeConfig cfg;
    cfg.scheme = scheme;
    cfg.rendezvous = rendezvous;
    cfg.reliability = rel;
    rt.emplace(*cluster, cfg);
    eng.setWatchdog(sec(1));
  }

  /// Rank 0 sends one workload datatype to rank 1; returns true when the
  /// unpacked bytes match the flattened layout exactly.
  bool exchangeAndVerify(std::uint64_t fill_seed = 7) {
    auto& p0 = rt->proc(0);
    auto& p1 = rt->proc(1);
    auto sbuf = p0.allocDevice(region);
    auto rbuf = p1.allocDevice(region);
    Rng fill(fill_seed);
    for (auto& b : sbuf.bytes) b = static_cast<std::byte>(fill.below(256));
    std::memset(rbuf.bytes.data(), 0xAA, region);

    eng.spawn([](mpi::Proc& p, gpu::MemSpan b, const workloads::Workload& w)
                  -> sim::Task<void> {
      auto req = co_await p.isend(b, w.type, w.count, 1, 0);
      co_await p.wait(req);
    }(p0, sbuf, wl));
    eng.spawn([](mpi::Proc& p, gpu::MemSpan b, const workloads::Workload& w)
                  -> sim::Task<void> {
      auto req = co_await p.irecv(b, w.type, w.count, 0, 0);
      co_await p.wait(req);
    }(p1, rbuf, wl));
    eng.run();
    if (eng.unfinishedTasks() != 0) return false;

    const auto layout = ddt::flatten(wl.type, wl.count);
    std::vector<std::byte> expect(region, std::byte{0xAA});
    for (const auto& seg : layout.materialize()) {
      std::memcpy(expect.data() + seg.offset, sbuf.bytes.data() + seg.offset,
                  seg.len);
    }
    return std::memcmp(rbuf.bytes.data(), expect.data(), region) == 0;
  }

  workloads::Workload wl;
  std::size_t region{0};
  sim::Engine eng;
  std::optional<hw::Cluster> cluster;
  std::optional<fault::FaultPlan> plan;
  std::optional<mpi::Runtime> rt;
};

TEST(Degradation, FusionSchedulerFallsBackToCpuPack) {
  fault::FaultSpec fs;
  fs.launch_failure = 1.0;  // every launch attempt fails, forever
  FaultedWorld w(schemes::Scheme::Proposed, workloads::milcZdown(32), fs);
  EXPECT_TRUE(w.exchangeAndVerify());
  auto* fe =
      dynamic_cast<schemes::FusionEngine*>(&w.rt->proc(0).ddtEngine());
  ASSERT_NE(fe, nullptr);
  EXPECT_GT(fe->scheduler().counters().cpu_fallback_batches, 0u);
  EXPECT_GT(w.plan->counters().launch_failures, 0u);
}

TEST(Degradation, StagingAllocFailureFallsBackToHostMemory) {
  fault::FaultSpec fs;
  fs.alloc_failure = 1.0;
  FaultedWorld w(schemes::Scheme::GpuAsync, workloads::milcZdown(32), fs);
  EXPECT_TRUE(w.exchangeAndVerify());
  const auto& t0 = w.rt->proc(0).transport();
  const auto& t1 = w.rt->proc(1).transport();
  EXPECT_GT(t0.host_staging_fallbacks + t1.host_staging_fallbacks, 0u);
  EXPECT_GT(w.plan->counters().alloc_failures, 0u);
}

TEST(Degradation, SingleEagerDropRecoveredByOneRetransmission) {
  fault::FaultSpec fs;
  fs.data_loss = 1.0;
  fs.max_data_drops = 1;  // drop exactly the first payload, then heal
  mpi::ReliabilityConfig rel;
  rel.enabled = true;
  rel.base_timeout = ms(1);  // generously past worst-case delivery
  FaultedWorld w(schemes::Scheme::GpuAsync, workloads::specfem3dOc(8), fs,
                 rel);
  EXPECT_TRUE(w.exchangeAndVerify());
  EXPECT_EQ(w.plan->counters().data_drops, 1u);
  const auto& t0 = w.rt->proc(0).transport();
  EXPECT_EQ(t0.retransmissions, 1u);
}

TEST(Degradation, NicStallsDelayButDoNotBreakTransfers) {
  fault::FaultSpec fs;
  fs.nic_stall_prob = 1.0;
  fs.nic_stall = us(5);
  FaultedWorld w(schemes::Scheme::Proposed, workloads::nasMgFace(48), fs);
  EXPECT_TRUE(w.exchangeAndVerify());
  EXPECT_GT(w.plan->counters().nic_stalls, 0u);
}

TEST(Degradation, DegradedLinkWindowSlowsButCompletes) {
  fault::FaultSpec fs;
  fs.link_windows.push_back({ns(0), sec(10), 0.5});
  FaultedWorld w(schemes::Scheme::Proposed, workloads::milcZdown(32), fs);
  EXPECT_TRUE(w.exchangeAndVerify());
  EXPECT_GT(w.plan->counters().degraded_transfers, 0u);
}

TEST(Degradation, LinkFlapHealsWithRetransmission) {
  // Link fully down for the first 200 us (every packet in the window is
  // lost), then back up: the retransmission layer must ride it out.
  fault::FaultSpec fs;
  fs.link_windows.push_back({ns(0), us(200), 0.0});
  mpi::ReliabilityConfig rel;
  rel.enabled = true;
  rel.base_timeout = us(40);
  rel.max_timeout = us(2000);
  rel.max_retries = 60;
  FaultedWorld w(schemes::Scheme::Proposed, workloads::milcZdown(32), fs,
                 rel);
  EXPECT_TRUE(w.exchangeAndVerify());
  EXPECT_GT(w.plan->counters().degraded_transfers, 0u);
}

// --------------------------------------------------------------- fault fuzz

TEST(FaultFuzz, SeededLossSweepStaysByteCorrect) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    fault::FaultSpec fs;
    fs.seed = seed * 0x9E3779B97F4A7C15ull;
    fs.data_loss = 0.15;
    fs.control_loss = 0.15;
    fs.nic_stall_prob = 0.1;
    fs.nic_stall = us(2);
    mpi::ReliabilityConfig rel;
    rel.enabled = true;
    rel.base_timeout = us(40);
    rel.max_timeout = us(2000);
    rel.max_retries = 60;
    const auto proto =
        seed % 2 == 0 ? mpi::Protocol::RPut : mpi::Protocol::RGet;
    FaultedWorld w(schemes::Scheme::Proposed, workloads::milcZdown(24), fs,
                   rel, proto);
    EXPECT_TRUE(w.exchangeAndVerify(seed)) << "corrupted or hung exchange";
  }
}

}  // namespace
}  // namespace dkf
