// Randomized equivalence testing of the count-compressed layout engine.
//
// Every property here is checked against a *naive shadow*: the seed
// implementation's semantics, re-derived independently — enumerate all
// count x blocks runs via forEachBlock(count), globally sort and coalesce,
// and move bytes one segment at a time. The compressed form must be
// indistinguishable from that shadow: identical segment lists, bit-identical
// statistics, and byte-identical pack/unpack/copyStrided results — including
// the ragged and non-periodic layouts that take the materializing fallback.
#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ddt/datatype.hpp"
#include "ddt/layout.hpp"
#include "ddt/pack.hpp"

namespace dkf::ddt {
namespace {

// ------------------------------------------------------------ the shadow ----

/// Seed-equivalent flatten: materialize every run, sort, coalesce.
std::vector<Segment> shadowFlatten(const DatatypePtr& type, std::size_t count) {
  std::vector<Segment> segs;
  type->forEachBlock(count, [&](std::int64_t offset, std::size_t len) {
    segs.push_back(Segment{offset, len});
  });
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) {
              return a.offset < b.offset;
            });
  std::vector<Segment> merged;
  for (const Segment& s : segs) {
    if (s.len == 0) continue;
    if (!merged.empty() &&
        merged.back().offset + static_cast<std::int64_t>(merged.back().len) ==
            s.offset) {
      merged.back().len += s.len;
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

std::vector<std::byte> shadowPack(const std::vector<Segment>& segs,
                                  const std::vector<std::byte>& origin) {
  std::vector<std::byte> out;
  for (const Segment& s : segs) {
    const auto off = static_cast<std::size_t>(s.offset);
    out.insert(out.end(), origin.begin() + off, origin.begin() + off + s.len);
  }
  return out;
}

void shadowUnpack(const std::vector<Segment>& segs,
                  const std::vector<std::byte>& packed,
                  std::vector<std::byte>& origin) {
  std::size_t in = 0;
  for (const Segment& s : segs) {
    std::memcpy(origin.data() + s.offset, packed.data() + in, s.len);
    in += s.len;
  }
}

// ------------------------------------------------------ random datatypes ----

DatatypePtr randomPrimitive(std::mt19937& rng) {
  switch (rng() % 4) {
    case 0: return Datatype::byte();
    case 1: return Datatype::int32();
    case 2: return Datatype::float64();
    default: return Datatype::complexDouble();
  }
}

/// Build a random non-overlapping nested type. Displacements are generated
/// ascending with slack so elements never self-overlap; this mirrors real
/// MPI application types (which must be non-overlapping to be packable).
DatatypePtr randomType(std::mt19937& rng, int depth) {
  if (depth <= 0) return randomPrimitive(rng);
  auto sub = [&] { return randomType(rng, depth - 1); };
  switch (rng() % 6) {
    case 0:
      return Datatype::contiguous(1 + rng() % 3, sub());
    case 1: {
      const std::size_t bl = 1 + rng() % 3;
      return Datatype::vector(1 + rng() % 4, bl,
                              static_cast<std::int64_t>(bl + rng() % 3),
                              sub());
    }
    case 2: {
      auto old = sub();
      const std::size_t bl = 1 + rng() % 3;
      const auto stride_b = static_cast<std::int64_t>(
          bl * old->extent() + (rng() % 3) * old->extent());
      return Datatype::hvector(1 + rng() % 4, bl, stride_b, old);
    }
    case 3: {
      auto old = sub();
      const std::size_t n = 1 + rng() % 4;
      std::vector<std::size_t> lens(n);
      std::vector<std::int64_t> displs(n);
      std::int64_t at = 0;
      for (std::size_t i = 0; i < n; ++i) {
        lens[i] = 1 + rng() % 3;
        displs[i] = at;
        at += static_cast<std::int64_t>(lens[i]) + 1 + rng() % 3;
      }
      return Datatype::indexed(lens, displs, old);
    }
    case 4: {
      auto old = sub();
      const std::size_t bl = 1 + rng() % 2;
      std::vector<std::int64_t> displs(1 + rng() % 4);
      std::int64_t at = 0;
      for (auto& d : displs) {
        d = at;
        at += static_cast<std::int64_t>(bl) + 1 + rng() % 2;
      }
      return Datatype::indexedBlock(bl, displs, old);
    }
    default: {
      auto old = sub();
      const std::size_t rows = 2 + rng() % 3;
      const std::size_t cols = 3 + rng() % 3;
      const std::size_t sr = 1 + rng() % rows;
      const std::size_t sc = 1 + rng() % cols;
      const std::array<std::size_t, 2> sizes{rows, cols};
      const std::array<std::size_t, 2> subsizes{sr, sc};
      const std::array<std::size_t, 2> starts{rows - sr, cols - sc};
      return Datatype::subarray(sizes, subsizes, starts, Datatype::Order::C,
                                old);
    }
  }
}

void fillPattern(std::vector<std::byte>& buf, std::uint32_t seed) {
  std::mt19937 rng(seed);
  for (auto& b : buf) b = static_cast<std::byte>(rng() & 0xff);
}

void expectEquivalent(const DatatypePtr& type, std::size_t count) {
  SCOPED_TRACE(type->describe() + " x " + std::to_string(count));
  const Layout layout = flatten(type, count);
  const std::vector<Segment> shadow = shadowFlatten(type, count);

  // Identical canonical run sequence.
  EXPECT_EQ(layout.materialize(), shadow);

  // Bit-identical statistics.
  std::size_t size = 0, minb = 0, maxb = 0;
  for (const Segment& s : shadow) {
    size += s.len;
    minb = minb == 0 ? s.len : std::min(minb, s.len);
    maxb = std::max(maxb, s.len);
  }
  EXPECT_EQ(layout.size(), size);
  EXPECT_EQ(layout.blockCount(), shadow.size());
  EXPECT_EQ(layout.minBlock(), minb);
  EXPECT_EQ(layout.maxBlock(), maxb);
  EXPECT_EQ(layout.extent(), count * type->extent());
  if (!shadow.empty()) {
    EXPECT_EQ(layout.minOffset(), shadow.front().offset);
    EXPECT_EQ(layout.endOffset(),
              shadow.back().offset +
                  static_cast<std::int64_t>(shadow.back().len));
  }
  const double mean =
      shadow.empty() ? 0.0
                     : static_cast<double>(size) /
                           static_cast<double>(shadow.size());
  EXPECT_DOUBLE_EQ(layout.meanBlock(), mean);
  const double density =
      layout.extent() == 0
          ? 1.0
          : static_cast<double>(size) / static_cast<double>(layout.extent());
  EXPECT_DOUBLE_EQ(layout.density(), density);

  // Byte-identical data plane (only meaningful for non-negative offsets).
  if (layout.minOffset() < 0 || layout.size() == 0) return;
  const auto origin_size = static_cast<std::size_t>(layout.endOffset());
  std::vector<std::byte> origin(origin_size);
  fillPattern(origin, 0xda7a + static_cast<std::uint32_t>(count));

  std::vector<std::byte> packed(layout.size());
  EXPECT_EQ(packCpu(layout, origin, packed), layout.size());
  EXPECT_EQ(packed, shadowPack(shadow, origin));

  std::vector<std::byte> unpacked(origin_size);
  std::vector<std::byte> shadow_unpacked(origin_size);
  EXPECT_EQ(unpackCpu(layout, packed, unpacked), layout.size());
  shadowUnpack(shadow, packed, shadow_unpacked);
  EXPECT_EQ(unpacked, shadow_unpacked);
}

// --------------------------------------------------------------- the fuzz ----

TEST(LayoutFuzz, CompressedMatchesShadowOnRandomTypes) {
  std::mt19937 rng(20200907);  // deterministic
  for (int trial = 0; trial < 60; ++trial) {
    auto type = randomType(rng, 1 + static_cast<int>(rng() % 3));
    if (type->size() == 0) continue;
    for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{7},
                                    std::size_t{16}}) {
      expectEquivalent(type, count);
    }
  }
}

TEST(LayoutFuzz, CopyStridedMatchesShadow) {
  std::mt19937 rng(77002);
  for (int trial = 0; trial < 20; ++trial) {
    auto src_t = randomType(rng, 2);
    auto dst_t = randomType(rng, 2);
    if (src_t->size() == 0 || dst_t->size() == 0) continue;
    // Scale counts so both sides carry the same number of bytes.
    const std::size_t bytes = src_t->size() * dst_t->size();
    const std::size_t src_count = bytes / src_t->size();
    const std::size_t dst_count = bytes / dst_t->size();
    const Layout src_l = flatten(src_t, src_count);
    const Layout dst_l = flatten(dst_t, dst_count);
    ASSERT_EQ(src_l.size(), dst_l.size());
    if (src_l.minOffset() < 0 || dst_l.minOffset() < 0) continue;

    std::vector<std::byte> src(static_cast<std::size_t>(src_l.endOffset()));
    fillPattern(src, 0x5eed + static_cast<std::uint32_t>(trial));
    std::vector<std::byte> dst(static_cast<std::size_t>(dst_l.endOffset()));
    std::vector<std::byte> dst_shadow = dst;

    EXPECT_EQ(copyStrided(src_l, src, dst_l, dst), src_l.size());

    // Shadow: pack src per segment, unpack into dst per segment.
    const auto packed = shadowPack(shadowFlatten(src_t, src_count), src);
    shadowUnpack(shadowFlatten(dst_t, dst_count), packed, dst_shadow);
    EXPECT_EQ(dst, dst_shadow);
  }
}

// ------------------------------------------------------- directed corners ----

TEST(LayoutFuzz, NonPeriodicOverhangFallback) {
  // indexedBlock runs at elements {0, 7} of byte, then resized to extent 3:
  // each element spans [0, 9) but repeats every 3 bytes, so consecutive
  // elements interleave — the non-periodic fallback must re-sort globally.
  const std::array<std::int64_t, 2> displs{0, 7};
  auto ragged = Datatype::resized(
      0, 3, Datatype::indexedBlock(2, displs, Datatype::byte()));
  ASSERT_EQ(ragged->extent(), 3u);
  expectEquivalent(ragged, 1);
  expectEquivalent(ragged, 2);  // runs {0,2},{3,2},{7,2},{10,2}

  const Layout two = flatten(ragged, 2);
  const std::vector<Segment> expected{
      {0, 2}, {3, 2}, {7, 2}, {10, 2}};
  EXPECT_EQ(two.materialize(), expected);

  // Three repetitions make element 0's run at 7 collide with element 2's run
  // at 6+... — actually overlap: element 0 covers [7,9), element 2 covers
  // [6,8). The layout is invalid and must be rejected, as the seed did.
  EXPECT_THROW(flatten(ragged, 3), dkf::CheckFailure);
}

TEST(LayoutFuzz, BoundaryCoalescingAcrossElements) {
  // vector(2, 2, 3, int32): element runs {0,8},{12,8} with extent 20... the
  // element's last run ends at 20 == extent, so consecutive elements coalesce
  // at every boundary exactly like the seed's global merge.
  auto t = Datatype::vector(2, 2, 3, Datatype::int32());
  ASSERT_EQ(t->extent(), 20u);
  for (std::size_t count : {2u, 3u, 5u, 17u}) expectEquivalent(t, count);
}

TEST(LayoutFuzz, RaggedLayoutsDegradeGracefully) {
  // Irregular indexed type: no arithmetic progression, all-ungrouped groups.
  const std::array<std::size_t, 4> lens{1, 3, 2, 5};
  const std::array<std::int64_t, 4> displs{0, 2, 9, 13};
  auto t = Datatype::indexed(lens, displs, Datatype::int32());
  for (std::size_t count : {1u, 2u, 4u, 9u}) expectEquivalent(t, count);
}

TEST(LayoutFuzz, CompressedMemoryIsCountIndependent) {
  // The MILC-like nested vector: compressed size must not grow with count.
  auto inner = Datatype::vector(4, 2, 4, Datatype::complexDouble());
  auto outer = Datatype::vector(3, 1, 4, inner);
  const Layout small = flatten(outer, 4);
  const Layout big = flatten(outer, 1024);
  EXPECT_EQ(small.compressedBytes(), big.compressedBytes());
  EXPECT_EQ(small.groupCount(), big.groupCount());
  EXPECT_GT(big.blockCount(), 1000u);
  EXPECT_LT(big.groupCount() * sizeof(RunGroup),
            big.blockCount() * sizeof(Segment) / 100);
}

}  // namespace
}  // namespace dkf::ddt
