// Device memory allocator: first-fit free list with coalescing, plus a
// randomized stress property (no overlap, full reclamation).
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "gpu/memory.hpp"

namespace dkf::gpu {
namespace {

TEST(DeviceMemory, AllocateAndTrackUsage) {
  DeviceMemory mem(1024, 0);
  auto a = mem.allocate(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_TRUE(a.onDevice());
  EXPECT_EQ(a.device, 0);
  EXPECT_EQ(mem.bytesInUse(), 100u);
  EXPECT_EQ(mem.liveAllocations(), 1u);
  mem.deallocate(a);
  EXPECT_EQ(mem.bytesInUse(), 0u);
  EXPECT_EQ(mem.liveAllocations(), 0u);
}

TEST(DeviceMemory, AlignmentRespected) {
  DeviceMemory mem(4096, 1);
  auto a = mem.allocate(3, 1);
  auto b = mem.allocate(64, 256);
  const auto base = reinterpret_cast<std::uintptr_t>(mem.arena().data());
  EXPECT_EQ((reinterpret_cast<std::uintptr_t>(b.bytes.data()) - base) % 256, 0u);
  mem.deallocate(a);
  mem.deallocate(b);
}

TEST(DeviceMemory, ExhaustionThrows) {
  DeviceMemory mem(256, 0);
  auto a = mem.allocate(200, 1);
  EXPECT_THROW(mem.allocate(100, 1), CheckFailure);
  mem.deallocate(a);
  EXPECT_NO_THROW(mem.allocate(256, 1));
}

TEST(DeviceMemory, DoubleFreeThrows) {
  DeviceMemory mem(256, 0);
  auto a = mem.allocate(64, 1);
  mem.deallocate(a);
  EXPECT_THROW(mem.deallocate(a), CheckFailure);
}

TEST(DeviceMemory, ForeignSpanThrows) {
  DeviceMemory mem_a(256, 0), mem_b(256, 1);
  auto a = mem_a.allocate(64);
  EXPECT_THROW(mem_b.deallocate(a), CheckFailure);
  mem_a.deallocate(a);
}

TEST(DeviceMemory, CoalescingAllowsFullReuse) {
  DeviceMemory mem(1024, 0);
  auto a = mem.allocate(256, 1);
  auto b = mem.allocate(256, 1);
  auto c = mem.allocate(256, 1);
  // Free middle, then neighbors: the holes must merge back to one region.
  mem.deallocate(b);
  mem.deallocate(a);
  mem.deallocate(c);
  EXPECT_NO_THROW(mem.allocate(1024, 1));
}

TEST(DeviceMemory, SubspanViewsShareStorage) {
  DeviceMemory mem(1024, 0);
  auto a = mem.allocate(100);
  auto sub = a.subspan(10, 20);
  sub.bytes[0] = std::byte{0x5A};
  EXPECT_EQ(a.bytes[10], std::byte{0x5A});
  EXPECT_THROW(a.subspan(90, 20), CheckFailure);
  mem.deallocate(a);
}

TEST(DeviceMemoryProperty, RandomAllocFreeNeverOverlapsAndFullyReclaims) {
  Rng rng(123);
  DeviceMemory mem(1 << 20, 0);
  std::vector<MemSpan> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || (rng.chance(0.6) && mem.bytesFree() > (1 << 18))) {
      const std::size_t size = rng.range(1, 8192);
      const std::size_t align = std::size_t{1} << rng.range(0, 8);
      auto span = mem.allocate(size, align);
      // Check no overlap with any live allocation.
      for (const auto& other : live) {
        const auto* lo = span.bytes.data();
        const auto* hi = lo + span.size();
        const auto* olo = other.bytes.data();
        const auto* ohi = olo + other.size();
        ASSERT_TRUE(hi <= olo || ohi <= lo) << "overlapping allocation";
      }
      live.push_back(span);
    } else {
      const std::size_t victim = rng.below(live.size());
      mem.deallocate(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  for (const auto& span : live) mem.deallocate(span);
  EXPECT_EQ(mem.bytesInUse(), 0u);
  // After total reclamation the arena must be one block again.
  EXPECT_NO_THROW(mem.allocate(1 << 20, 1));
}

}  // namespace
}  // namespace dkf::gpu
