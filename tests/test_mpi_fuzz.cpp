// Randomized integration fuzz: random mixes of message sizes, datatypes,
// tags, protocols, and posting orders between two ranks, verified
// byte-exactly against a host-side oracle. Parameterized over schemes and
// seeds (TEST_P sweep). Also covers MPI_Test-based completion loops.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.hpp"
#include "ddt/pack.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"

namespace dkf::mpi {
namespace {

using ddt::Datatype;

struct FuzzParam {
  schemes::Scheme scheme;
  std::uint64_t seed;
};

class MpiFuzz : public ::testing::TestWithParam<FuzzParam> {};

ddt::DatatypePtr randomMsgType(Rng& rng) {
  switch (rng.below(4)) {
    case 0:  // contiguous
      return Datatype::contiguous(rng.range(1, 4096), Datatype::byte());
    case 1:  // strided vector
      return Datatype::vector(rng.range(2, 64), rng.range(1, 16),
                              static_cast<std::int64_t>(rng.range(17, 32)),
                              Datatype::float32());
    case 2: {  // sparse indexed
      const std::size_t n = rng.range(4, 128);
      std::vector<std::size_t> lens(n);
      std::vector<std::int64_t> displs(n);
      std::int64_t cursor = 0;
      for (std::size_t i = 0; i < n; ++i) {
        lens[i] = rng.range(1, 3);
        displs[i] = cursor;
        cursor += static_cast<std::int64_t>(lens[i] + rng.range(1, 4));
      }
      return Datatype::indexed(lens, displs, Datatype::float64());
    }
    default: {  // 2-D subarray
      std::array<std::size_t, 2> sizes{rng.range(4, 32), rng.range(4, 32)};
      std::array<std::size_t, 2> sub{rng.range(1, sizes[0]),
                                     rng.range(1, sizes[1])};
      std::array<std::size_t, 2> starts{rng.range(0, sizes[0] - sub[0]),
                                        rng.range(0, sizes[1] - sub[1])};
      return Datatype::subarray(sizes, sub, starts, Datatype::Order::C,
                                Datatype::float64());
    }
  }
}

TEST_P(MpiFuzz, RandomTrafficDeliversExactly) {
  const auto param = GetParam();
  Rng rng(param.seed);

  sim::Engine eng;
  auto machine = hw::lassen();
  machine.node.gpus_per_node = 1;
  hw::Cluster cluster(eng, machine, 2);
  RuntimeConfig cfg;
  cfg.scheme = param.scheme;
  cfg.rendezvous = rng.chance(0.5) ? Protocol::RGet : Protocol::RPut;
  Runtime rt(cluster, cfg);

  auto& p0 = rt.proc(0);
  auto& p1 = rt.proc(1);

  struct Msg {
    ddt::DatatypePtr type;
    gpu::MemSpan sbuf, rbuf;
    int tag;
    int direction;  // 0: p0->p1, 1: p1->p0
  };
  const int n_msgs = static_cast<int>(rng.range(4, 12));
  std::vector<Msg> msgs;
  for (int i = 0; i < n_msgs; ++i) {
    Msg m;
    m.type = randomMsgType(rng);
    m.tag = i;  // unique tags keep the oracle simple
    m.direction = rng.chance(0.5) ? 0 : 1;
    const auto region =
        std::max<std::size_t>(static_cast<std::size_t>(m.type->extent()), 64);
    auto& sender = m.direction == 0 ? p0 : p1;
    auto& receiver = m.direction == 0 ? p1 : p0;
    m.sbuf = sender.allocDevice(region);
    m.rbuf = receiver.allocDevice(region);
    for (auto& b : m.sbuf.bytes) b = static_cast<std::byte>(rng.below(256));
    std::memset(m.rbuf.bytes.data(), 0, region);
    msgs.push_back(std::move(m));
  }

  // Each side posts its sends/recvs in a random (per-seed) order, half of
  // the ranks driving completion with MPI_Test loops instead of Waitall.
  const bool use_test_loop = rng.chance(0.4);
  auto body = [](Proc& p, std::vector<Msg>& all, int side,
                 bool test_loop) -> sim::Task<void> {
    std::vector<RequestPtr> reqs;
    for (auto& m : all) {
      const bool is_sender = (m.direction == 0 && side == 0) ||
                             (m.direction == 1 && side == 1);
      if (is_sender) {
        reqs.push_back(co_await p.isend(m.sbuf, m.type, 1, 1 - side, m.tag));
      } else {
        reqs.push_back(co_await p.irecv(m.rbuf, m.type, 1, 1 - side, m.tag));
      }
    }
    if (test_loop) {
      while (!co_await p.testall(reqs)) {
        co_await p.engine().delay(us(1));
      }
    } else {
      co_await p.waitall(std::move(reqs));
    }
  };
  eng.spawn(body(p0, msgs, 0, use_test_loop));
  eng.spawn(body(p1, msgs, 1, !use_test_loop));
  eng.run();
  ASSERT_EQ(eng.unfinishedTasks(), 0u);

  // Oracle: receiver's layout bytes must equal the sender's.
  for (const auto& m : msgs) {
    const auto layout = ddt::flatten(m.type, 1);
    for (const auto& seg : layout.materialize()) {
      ASSERT_EQ(std::memcmp(m.rbuf.bytes.data() + seg.offset,
                            m.sbuf.bytes.data() + seg.offset, seg.len),
                0)
          << "tag " << m.tag << " " << m.type->describe();
    }
  }
  // No staging leaks.
  const std::size_t live0 = p0.gpu().memory().liveAllocations();
  const std::size_t live1 = p1.gpu().memory().liveAllocations();
  std::size_t expected0 = 0, expected1 = 0;
  for (const auto& m : msgs) {
    (m.direction == 0 ? expected0 : expected1) += 1;  // sbuf
    (m.direction == 0 ? expected1 : expected0) += 1;  // rbuf
  }
  EXPECT_EQ(live0, expected0);
  EXPECT_EQ(live1, expected1);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, MpiFuzz,
    ::testing::Values(FuzzParam{schemes::Scheme::Proposed, 1},
                      FuzzParam{schemes::Scheme::Proposed, 2},
                      FuzzParam{schemes::Scheme::Proposed, 3},
                      FuzzParam{schemes::Scheme::GpuSync, 4},
                      FuzzParam{schemes::Scheme::GpuAsync, 5},
                      FuzzParam{schemes::Scheme::CpuGpuHybrid, 6},
                      FuzzParam{schemes::Scheme::AdaptiveGdr, 7},
                      FuzzParam{schemes::Scheme::ProposedTuned, 8},
                      FuzzParam{schemes::Scheme::Proposed, 9},
                      FuzzParam{schemes::Scheme::GpuAsync, 10}),
    [](const ::testing::TestParamInfo<FuzzParam>& pinfo) {
      std::string n{schemes::schemeName(pinfo.param.scheme)};
      for (auto& ch : n) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return n + "_seed" + std::to_string(pinfo.param.seed);
    });

TEST(MpiTest, TestReturnsFalseThenTrue) {
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), 2);
  RuntimeConfig cfg;
  cfg.scheme = schemes::Scheme::Proposed;
  Runtime rt(cluster, cfg);
  auto& p0 = rt.proc(0);
  auto& p4 = rt.proc(4);
  auto type = Datatype::vector(256, 8, 24, Datatype::float64());
  auto sbuf = p0.allocDevice(static_cast<std::size_t>(type->extent()));
  auto rbuf = p4.allocDevice(static_cast<std::size_t>(type->extent()));

  eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.isend(b, t, 1, 4, 0);
    // A rendezvous send cannot be complete right away.
    EXPECT_FALSE(co_await p.test(req));
    while (!co_await p.test(req)) {
      co_await p.engine().delay(us(2));
    }
    EXPECT_TRUE(req->complete);
  }(p0, sbuf, type));
  eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.irecv(b, t, 1, 0, 0);
    co_await p.wait(req);
  }(p4, rbuf, type));
  eng.run();
  EXPECT_EQ(eng.unfinishedTasks(), 0u);
}

}  // namespace
}  // namespace dkf::mpi
