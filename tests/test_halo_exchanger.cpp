// HaloExchanger: geometry, neighbor mapping, data correctness of a full
// periodic 3-D exchange, and repeated-exchange stability.
#include <gtest/gtest.h>

#include <cstring>

#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "workloads/halo_exchanger.hpp"

namespace dkf::workloads {
namespace {

constexpr std::size_t kN = 6;
constexpr std::size_t kGhost = 1;
constexpr std::size_t kTotal = kN + 2 * kGhost;

struct HaloWorld {
  HaloWorld()
      : cluster(eng, hw::lassen(), 2),
        rt(cluster, [] {
          mpi::RuntimeConfig cfg;
          cfg.scheme = schemes::Scheme::Proposed;
          return cfg;
        }()) {
    for (int r = 0; r < rt.worldSize(); ++r) {
      blocks.push_back(rt.proc(r).allocDevice(kTotal * kTotal * kTotal * 8));
      auto* cells = reinterpret_cast<double*>(blocks.back().bytes.data());
      for (std::size_t i = 0; i < kTotal * kTotal * kTotal; ++i) {
        cells[i] = r;
      }
    }
  }

  double cellAt(int rank, std::size_t x, std::size_t y, std::size_t z) {
    const auto* cells =
        reinterpret_cast<const double*>(blocks[rank].bytes.data());
    return cells[(x * kTotal + y) * kTotal + z];
  }

  sim::Engine eng;
  hw::Cluster cluster;
  mpi::Runtime rt;
  std::vector<gpu::MemSpan> blocks;
};

TEST(HaloExchanger, CoordinateMappingRoundTrips) {
  HaloWorld w;
  HaloExchanger::Config cfg{kN, kGhost, {2, 2, 2}};
  for (int r = 0; r < 8; ++r) {
    HaloExchanger ex(w.rt.proc(r), w.blocks[r], cfg);
    EXPECT_EQ(ex.rankAt(ex.coords()), r);
  }
  // Periodic wrap: in a 2-wide grid, -1 == 1.
  HaloExchanger ex0(w.rt.proc(0), w.blocks[0], cfg);
  EXPECT_EQ(ex0.rankAt({-1, 0, 0}), ex0.rankAt({1, 0, 0}));
  EXPECT_EQ(ex0.rankAt({3, 0, 0}), ex0.rankAt({1, 0, 0}));
}

TEST(HaloExchanger, SixFacesTwelveMessages) {
  HaloWorld w;
  HaloExchanger ex(w.rt.proc(0), w.blocks[0],
                   HaloExchanger::Config{kN, kGhost, {2, 2, 2}});
  EXPECT_EQ(ex.messagesPerExchange(), 12u);
  EXPECT_EQ(ex.bytesPerExchange(), 6u * kN * kN * kGhost * 8);
}

TEST(HaloExchanger, BlockTooSmallThrows) {
  HaloWorld w;
  auto tiny = w.rt.proc(0).allocDevice(64);
  EXPECT_THROW(HaloExchanger(w.rt.proc(0), tiny,
                             HaloExchanger::Config{kN, kGhost, {2, 2, 2}}),
               CheckFailure);
}

TEST(HaloExchanger, ExchangeFillsAllSixGhostFaces) {
  HaloWorld w;
  HaloExchanger::Config cfg{kN, kGhost, {2, 2, 2}};
  std::vector<std::unique_ptr<HaloExchanger>> exchangers;
  for (int r = 0; r < 8; ++r) {
    exchangers.push_back(
        std::make_unique<HaloExchanger>(w.rt.proc(r), w.blocks[r], cfg));
    w.eng.spawn([](HaloExchanger& ex) -> sim::Task<void> {
      co_await ex.exchange();
    }(*exchangers.back()));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);

  // Every rank's six ghost faces must hold the right neighbor's value.
  for (int r = 0; r < 8; ++r) {
    auto& ex = *exchangers[r];
    const auto c = ex.coords();
    struct Probe {
      std::size_t x, y, z;
      std::array<int, 3> dc;
    };
    const std::size_t mid = kGhost + kN / 2;
    const Probe probes[] = {
        {0, mid, mid, {-1, 0, 0}},          {kTotal - 1, mid, mid, {1, 0, 0}},
        {mid, 0, mid, {0, -1, 0}},          {mid, kTotal - 1, mid, {0, 1, 0}},
        {mid, mid, 0, {0, 0, -1}},          {mid, mid, kTotal - 1, {0, 0, 1}},
    };
    for (const auto& p : probes) {
      const int expected =
          ex.rankAt({c[0] + p.dc[0], c[1] + p.dc[1], c[2] + p.dc[2]});
      EXPECT_EQ(w.cellAt(r, p.x, p.y, p.z), static_cast<double>(expected))
          << "rank " << r << " ghost at (" << p.x << "," << p.y << "," << p.z
          << ")";
    }
    // Owned interior untouched.
    EXPECT_EQ(w.cellAt(r, mid, mid, mid), static_cast<double>(r));
  }
}

TEST(HaloExchanger, RepeatedExchangesAreStable) {
  HaloWorld w;
  HaloExchanger::Config cfg{kN, kGhost, {2, 2, 2}};
  std::vector<std::unique_ptr<HaloExchanger>> exchangers;
  for (int r = 0; r < 8; ++r) {
    exchangers.push_back(
        std::make_unique<HaloExchanger>(w.rt.proc(r), w.blocks[r], cfg));
    w.eng.spawn([](HaloExchanger& ex, mpi::Proc& p) -> sim::Task<void> {
      for (int i = 0; i < 4; ++i) {
        co_await ex.exchange();
        co_await p.barrier();
      }
    }(*exchangers.back(), w.rt.proc(r)));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);
  for (auto& ex : exchangers) EXPECT_EQ(ex->exchangesDone(), 4u);
  // Values are idempotent across iterations (same sources).
  EXPECT_EQ(w.cellAt(0, 0, kGhost + kN / 2, kGhost + kN / 2),
            static_cast<double>(exchangers[0]->rankAt({-1, 0, 0})));
  // No leaked staging memory on any GPU.
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(w.rt.proc(r).gpu().memory().liveAllocations(), 1u) << r;
  }
}

}  // namespace
}  // namespace dkf::workloads
