// Unit tests for src/common: units, checks, rng, stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace dkf {
namespace {

TEST(Units, DurationConstructors) {
  EXPECT_EQ(ns(7), 7u);
  EXPECT_EQ(us(3), 3'000u);
  EXPECT_EQ(ms(2), 2'000'000u);
  EXPECT_EQ(sec(1), 1'000'000'000u);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(toUs(us(12)), 12.0);
  EXPECT_DOUBLE_EQ(toMs(ms(5)), 5.0);
  EXPECT_DOUBLE_EQ(toSec(sec(2)), 2.0);
}

TEST(Units, ByteHelpers) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(MiB(2), 2u * 1024 * 1024);
  EXPECT_EQ(GiB(1), 1024ull * 1024 * 1024);
}

TEST(Units, BandwidthTransferTime) {
  // 1 GB/s == 1 byte/ns: 1000 bytes take 1000 ns.
  EXPECT_EQ(GBps(1).transferTime(1000), 1000u);
  // 75 GB/s moves 75 bytes per ns.
  EXPECT_EQ(GBps(75).transferTime(75), 1u);
  EXPECT_EQ(GBps(75).transferTime(0), 0u);
  // Rounds up: 1 byte at 2 GB/s is half a ns -> 1 ns.
  EXPECT_EQ(GBps(2).transferTime(1), 1u);
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(formatDuration(ns(500)), "500 ns");
  EXPECT_EQ(formatDuration(us(123)), "123.00 us");
  EXPECT_EQ(formatDuration(ms(45)), "45.00 ms");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(KiB(512)), "512.0 KiB");
  EXPECT_EQ(formatBytes(MiB(3)), "3.0 MiB");
}

TEST(Check, ThrowsOnFailure) {
  EXPECT_THROW(DKF_CHECK(false), CheckFailure);
  EXPECT_NO_THROW(DKF_CHECK(true));
}

TEST(Check, MessageIncludesExpressionAndText) {
  try {
    DKF_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    auto v = r.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RunningStat, Basics) {
  RunningStat s;
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(TimeBreakdown, AccumulateAndTotal) {
  TimeBreakdown a{.pack_unpack = 10, .launching = 20, .scheduling = 5,
                  .synchronize = 7, .communication = 100};
  TimeBreakdown b = a;
  b += a;
  EXPECT_EQ(b.pack_unpack, 20u);
  EXPECT_EQ(b.total(), 2 * a.total());
  b.reset();
  EXPECT_EQ(b.total(), 0u);
}

}  // namespace
}  // namespace dkf
