// Payload plane: PayloadRef/PayloadPool semantics (net/payload.hpp) and
// the reliable transport's capture-once retransmission path.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "bench_util/parallel.hpp"
#include "common/check.hpp"
#include "ddt/datatype.hpp"
#include "fault/fault_plan.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "net/payload.hpp"
#include "sim/engine.hpp"

namespace dkf::net {
namespace {

std::vector<std::byte> patternBytes(std::size_t n, unsigned salt = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + salt * 17 + 7) & 0xff);
  }
  return v;
}

TEST(PayloadPool, InlineSlabBoundary) {
  PayloadPool pool;
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, kInlinePayloadBytes,
                        kInlinePayloadBytes + 1, std::size_t{4096}}) {
    const auto src = patternBytes(n);
    PayloadRef r = pool.capture(src);
    EXPECT_EQ(r.size(), n);
    EXPECT_EQ(r.isInline(), n <= kInlinePayloadBytes);
    EXPECT_EQ(std::memcmp(r.data(), src.data(), n), 0);
  }
  // Only the two above-threshold captures touched a slab.
  EXPECT_EQ(pool.counters().captures, 5u);
  EXPECT_EQ(pool.counters().inline_captures, 3u);
  EXPECT_EQ(pool.counters().slab_allocs + pool.counters().slab_reuses, 2u);
  EXPECT_EQ(pool.liveBuffers(), 0u);  // all refs died in the loop
}

TEST(PayloadPool, SizeClassReuse) {
  PayloadPool pool;
  const auto src = patternBytes(500);  // class 512
  { PayloadRef a = pool.capture(src); }
  EXPECT_EQ(pool.counters().slab_allocs, 1u);
  EXPECT_EQ(pool.cachedBytes(), 512u);
  {
    // Different size, same power-of-two class: served from the free list.
    PayloadRef b = pool.capture(patternBytes(300));
    EXPECT_EQ(pool.counters().slab_reuses, 1u);
    EXPECT_EQ(pool.counters().slab_allocs, 1u);
    EXPECT_EQ(pool.liveBuffers(), 1u);
    EXPECT_EQ(pool.cachedBytes(), 0u);
  }
  EXPECT_DOUBLE_EQ(pool.hitRate(), 0.5);
  EXPECT_EQ(pool.peakLiveBuffers(), 1u);
}

TEST(PayloadPool, RefcountCopyMoveSemantics) {
  PayloadPool pool;
  const auto src = patternBytes(1000);
  PayloadRef a = pool.capture(src);
  EXPECT_EQ(a.refCount(), 1u);

  PayloadRef b = a;  // copy: ref bump, shared slab
  EXPECT_EQ(a.refCount(), 2u);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(pool.liveBuffers(), 1u);

  PayloadRef c = std::move(b);  // move: steals the ref
  EXPECT_EQ(a.refCount(), 2u);
  EXPECT_EQ(b.size(), 0u);  // NOLINT(bugprone-use-after-move): reset state
  EXPECT_EQ(c.data(), a.data());

  b = c;  // copy-assign back
  EXPECT_EQ(a.refCount(), 3u);
  b = a;  // self-aliasing slab assign must not free
  EXPECT_EQ(a.refCount(), 3u);

  c.reset();
  b.reset();
  EXPECT_EQ(a.refCount(), 1u);
  EXPECT_EQ(std::memcmp(a.data(), src.data(), src.size()), 0);
  a.reset();
  EXPECT_EQ(pool.liveBuffers(), 0u);
  EXPECT_EQ(pool.counters().slab_allocs, 1u);  // one slab all along
}

TEST(PayloadPool, InlineCopiesAreIndependent) {
  PayloadPool pool;
  const auto src = patternBytes(32);
  PayloadRef a = pool.capture(src);
  PayloadRef b = a;
  ASSERT_TRUE(a.isInline());
  EXPECT_NE(a.data(), b.data());  // separate inline storage
  a.span()[0] = std::byte{0xEE};
  EXPECT_EQ(b.span()[0], src[0]);
  EXPECT_EQ(pool.liveBuffers(), 0u);  // inline handles never hit the pool
}

TEST(PayloadPool, OversizePayloadsAreNotCached) {
  PayloadPool pool;
  const std::size_t big = (1u << 20) + 1;  // past the largest size class
  { PayloadRef r = pool.capture(patternBytes(big)); }
  EXPECT_EQ(pool.counters().oversize_allocs, 1u);
  EXPECT_EQ(pool.cachedBytes(), 0u);
  { PayloadRef r = pool.capture(patternBytes(big)); }
  EXPECT_EQ(pool.counters().oversize_allocs, 2u);  // never reused
}

TEST(PayloadPool, CacheBudgetTrimsReleases) {
  PayloadPoolConfig cfg;
  cfg.max_cached_bytes = 1024;
  PayloadPool pool(cfg);
  // Two 1024-byte-class slabs live at once; only one fits the budget on
  // release, the second is freed outright.
  {
    PayloadRef a = pool.capture(patternBytes(700));
    PayloadRef b = pool.capture(patternBytes(700));
    EXPECT_EQ(pool.liveBuffers(), 2u);
  }
  EXPECT_EQ(pool.cachedBytes(), 1024u);
  EXPECT_EQ(pool.counters().trims, 1u);
}

TEST(PayloadPool, AllocateIsZeroFilledAndSlabBacked) {
  PayloadPool pool;
  PayloadRef r = pool.allocate(16);  // under the inline limit, still a slab
  EXPECT_FALSE(r.isInline());
  EXPECT_EQ(r.size(), 16u);
  for (std::byte b : r.span()) EXPECT_EQ(b, std::byte{0});
  const std::byte* before = r.data();
  PayloadRef moved = std::move(r);
  EXPECT_EQ(moved.data(), before);  // address stable across handle moves
}

TEST(PayloadPool, CheckQuiescentFlagsLiveRefs) {
  PayloadPool pool;
  PayloadRef r = pool.capture(patternBytes(512));
  EXPECT_THROW(pool.checkQuiescent(), CheckFailure);
  r.reset();
  EXPECT_NO_THROW(pool.checkQuiescent());
}

TEST(PayloadPool, OrphanedRefsReleaseSafelyAfterPoolDeath) {
  std::optional<PayloadPool> pool;
  pool.emplace();
  PayloadRef r = pool->capture(patternBytes(512));
  PayloadRef r2 = r;
  pool.reset();  // pool dies first; the slab is orphaned
  EXPECT_EQ(std::memcmp(r.data(), patternBytes(512).data(), 512), 0);
  r.reset();
  r2.reset();  // last ref frees the orphan (ASan would flag a leak/UAF)
}

// Refcount semantics under the parallel sweep model: every cell owns its
// engine, cluster and therefore its pool (pools are single-threaded by
// design). Named PayloadPoolParallelSweep so the CI TSan job's filter
// picks it up alongside the other sweep tests.
TEST(PayloadPoolParallelSweep, PerCellPoolsAreRaceFree) {
  constexpr std::size_t kCells = 8;
  std::vector<std::size_t> captures(kCells, 0);
  bench::parallelFor(kCells, [&](std::size_t cell) {
    sim::Engine eng;
    hw::Cluster cluster(eng, hw::lassen(), 2);
    mpi::RuntimeConfig cfg;
    mpi::Runtime rt(cluster, cfg);
    const std::size_t bytes = 256 + cell * 64;
    std::vector<gpu::MemSpan> bufs;
    for (int r = 0; r < 2; ++r) {
      bufs.push_back(rt.proc(r).allocDevice(bytes));
    }
    std::memset(bufs[0].bytes.data(), static_cast<int>(cell + 1), bytes);
    rt.runAll([&](mpi::Proc& p) -> sim::Task<void> {
      auto type = ddt::Datatype::byte();
      if (p.rank() == 0) {
        auto s = co_await p.isend(bufs[0], type, bytes, 1, 0);
        co_await p.wait(std::move(s));
      } else if (p.rank() == 1) {
        auto r = co_await p.irecv(bufs[1], type, bytes, 0, 0);
        co_await p.wait(std::move(r));
      }
      // lassen packs 4 ranks per node; the other ranks sit this one out.
    });
    EXPECT_EQ(std::memcmp(bufs[1].bytes.data(), bufs[0].bytes.data(), bytes),
              0);
    auto& pool = cluster.fabric().payloadPool();
    EXPECT_EQ(pool.liveBuffers(), 0u);
    captures[cell] = pool.counters().captures;
  });
  for (std::size_t c : captures) EXPECT_GE(c, 1u);
}

// Satellite regression: under loss with the reliable transport, a
// retransmission must resend the *original* capture (a ref bump), so the
// received bytes match the first attempt even if the sender's buffer was
// scribbled after isend returned. The seed re-snapshotted the staging
// buffer on every attempt, which this pins down.
TEST(PayloadRetransmit, RetransmissionReusesOriginalCapture) {
  constexpr int kMsgs = 200;
  constexpr std::size_t kBytes = 1024;  // eager on lassen
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), 2);
  fault::FaultSpec fs;
  fs.seed = 0x51ab5;
  fs.data_loss = 0.12;
  fs.control_loss = 0.12;
  fault::FaultPlan plan(eng, fs);
  cluster.setFaultPlan(&plan);
  eng.setWatchdog(sec(30));

  mpi::RuntimeConfig cfg;
  cfg.reliability.enabled = true;
  cfg.reliability.base_timeout = us(40);
  cfg.reliability.max_timeout = us(2000);
  cfg.reliability.max_retries = 60;
  mpi::Runtime rt(cluster, cfg);
  // Cross-node pair (lassen packs 4 ranks per node): sender rank 0,
  // receiver the first rank of the second node.
  const int dst = rt.worldSize() / 2;

  auto sbuf = rt.proc(0).allocDevice(kMsgs * kBytes);
  auto rbuf = rt.proc(dst).allocDevice(kMsgs * kBytes);
  const auto original = patternBytes(kMsgs * kBytes, 3);
  std::memcpy(sbuf.bytes.data(), original.data(), original.size());
  std::memset(rbuf.bytes.data(), 0, kMsgs * kBytes);

  rt.runAll([&](mpi::Proc& p) -> sim::Task<void> {
    auto type = ddt::Datatype::byte();
    std::vector<mpi::RequestPtr> reqs;
    for (int i = 0; i < kMsgs; ++i) {
      if (p.rank() == 0) {
        reqs.push_back(co_await p.isend(sbuf.subspan(i * kBytes, kBytes),
                                        type, kBytes, dst, i));
        // MPI eager semantics: the buffer is reusable once isend returns.
        // Scribbling it proves retransmissions don't re-read it.
        std::memset(sbuf.subspan(i * kBytes, kBytes).bytes.data(), 0xAB,
                    kBytes);
      } else if (p.rank() == dst) {
        reqs.push_back(co_await p.irecv(rbuf.subspan(i * kBytes, kBytes),
                                        type, kBytes, 0, i));
      }
    }
    co_await p.waitall(std::move(reqs));
  });

  EXPECT_EQ(std::memcmp(rbuf.bytes.data(), original.data(), original.size()),
            0);
  // The loss rate guarantees retransmissions actually happened...
  EXPECT_GT(rt.proc(0).transport().retransmissions, 0u);
  auto& pool = cluster.fabric().payloadPool();
  // ...and each message was captured exactly once regardless.
  EXPECT_EQ(pool.counters().captures, static_cast<std::size_t>(kMsgs));
  EXPECT_EQ(pool.liveBuffers(), 0u);  // every ref released at teardown
}

}  // namespace
}  // namespace dkf::net
