// GPU device model: kernel timing, fused per-op completion, streams, events,
// copy engine routing, and data correctness of device-side operations.
#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "common/check.hpp"
#include "ddt/datatype.hpp"
#include "gpu/gpu.hpp"
#include "hw/machines.hpp"

namespace dkf::gpu {
namespace {

class GpuDeviceTest : public ::testing::Test {
 protected:
  GpuDeviceTest() : machine_(hw::lassen()), gpu_(eng_, machine_.node, 0) {}

  ddt::LayoutPtr contiguousLayout(std::size_t bytes) {
    return std::make_shared<const ddt::Layout>(
        ddt::flatten(ddt::Datatype::contiguous(bytes, ddt::Datatype::byte()), 1));
  }

  ddt::LayoutPtr stridedLayout(std::size_t blocks, std::size_t blocklen,
                               std::size_t stride) {
    return std::make_shared<const ddt::Layout>(ddt::flatten(
        ddt::Datatype::vector(blocks, blocklen, static_cast<std::int64_t>(stride),
                              ddt::Datatype::byte()),
        1));
  }

  sim::Engine eng_;
  hw::MachineSpec machine_;
  Gpu gpu_;
};

TEST_F(GpuDeviceTest, PackKernelMovesBytesAtCompletion) {
  auto layout = stridedLayout(4, 8, 32);
  auto origin = gpu_.memory().allocate(256);
  auto packed = gpu_.memory().allocate(layout->size());
  for (std::size_t i = 0; i < origin.size(); ++i)
    origin.bytes[i] = static_cast<std::byte>(i);

  bool completed = false;
  Gpu::Op op{Gpu::Op::Kind::Pack, layout, nullptr, origin.bytes, packed.bytes,
             [&] { completed = true; }};
  auto handle = gpu_.launchKernel(0, std::move(op));
  EXPECT_FALSE(completed);
  EXPECT_GT(handle.end, handle.start);
  eng_.run();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(handle.done->isOpen());
  // First segment: bytes 0..7; second: 32..39.
  EXPECT_EQ(packed.bytes[8], static_cast<std::byte>(32));
}

TEST_F(GpuDeviceTest, UnpackKernelScatters) {
  auto layout = stridedLayout(2, 4, 16);
  auto packed = gpu_.memory().allocate(8);
  auto origin = gpu_.memory().allocate(64);
  for (std::size_t i = 0; i < 8; ++i)
    packed.bytes[i] = static_cast<std::byte>(0x40 + i);
  Gpu::Op op{Gpu::Op::Kind::Unpack, layout, nullptr, packed.bytes,
             origin.bytes, nullptr};
  gpu_.launchKernel(0, std::move(op));
  eng_.run();
  EXPECT_EQ(origin.bytes[16], static_cast<std::byte>(0x44));
}

TEST_F(GpuDeviceTest, FusedOpsCompleteIndividuallyBeforeKernelEnd) {
  // One small op and one large op fused: the small op must complete at an
  // earlier virtual time than the big one (per-wave completion).
  auto small_layout = contiguousLayout(1024);
  auto big_layout = contiguousLayout(32 * 1024 * 1024);
  auto s_src = gpu_.memory().allocate(1024);
  auto s_dst = gpu_.memory().allocate(1024);
  auto b_src = gpu_.memory().allocate(32 * 1024 * 1024);
  auto b_dst = gpu_.memory().allocate(32 * 1024 * 1024);

  TimeNs small_done = 0, big_done = 0;
  std::vector<Gpu::Op> ops;
  ops.push_back(Gpu::Op{Gpu::Op::Kind::Pack, small_layout, nullptr,
                        s_src.bytes, s_dst.bytes,
                        [&] { small_done = eng_.now(); }});
  ops.push_back(Gpu::Op{Gpu::Op::Kind::Pack, big_layout, nullptr, b_src.bytes,
                        b_dst.bytes, [&] { big_done = eng_.now(); }});
  auto handle = gpu_.launchKernel(0, std::move(ops));
  eng_.run();
  EXPECT_GT(handle.waves, 0u);
  EXPECT_LT(small_done, big_done);
  EXPECT_EQ(big_done, handle.end);
}

TEST_F(GpuDeviceTest, FusedKernelCostsOneLaunchNotN) {
  // GPU-side time of a fused kernel over N small ops must be far below N
  // separate kernels' GPU-side time (N-1 fixed costs saved) — and the CPU
  // side saves (N-1) launch overheads on top (accounted by schemes).
  constexpr int kN = 16;
  auto layout = contiguousLayout(2048);
  std::vector<MemSpan> srcs, dsts;
  for (int i = 0; i < kN; ++i) {
    srcs.push_back(gpu_.memory().allocate(2048));
    dsts.push_back(gpu_.memory().allocate(2048));
  }

  std::vector<Gpu::Op> fused;
  for (int i = 0; i < kN; ++i) {
    fused.push_back(Gpu::Op{Gpu::Op::Kind::Pack, layout, nullptr,
                            srcs[i].bytes, dsts[i].bytes, nullptr});
  }
  auto fused_handle = gpu_.launchKernel(0, std::move(fused));
  const DurationNs fused_time = fused_handle.end - fused_handle.start;

  DurationNs serial_time = 0;
  for (int i = 0; i < kN; ++i) {
    Gpu::Op op{Gpu::Op::Kind::Pack, layout, nullptr, srcs[i].bytes,
               dsts[i].bytes, nullptr};
    auto h = gpu_.launchKernel(0, std::move(op));
    serial_time += h.end - h.start;
  }
  eng_.run();
  EXPECT_LT(fused_time * 4, serial_time);
}

TEST_F(GpuDeviceTest, SparseLayoutSlowerThanDenseSameBytes) {
  const std::size_t bytes = 1 << 20;
  auto dense = contiguousLayout(bytes);
  auto sparse = stridedLayout(bytes / 64, 64, 256);  // 64B runs
  ASSERT_EQ(dense->size(), sparse->size());
  auto src = gpu_.memory().allocate(4 * bytes);
  auto dst = gpu_.memory().allocate(bytes);

  auto h_dense = gpu_.launchKernel(
      0, Gpu::Op{Gpu::Op::Kind::Pack, dense, nullptr, src.bytes, dst.bytes,
                 nullptr});
  auto h_sparse = gpu_.launchKernel(
      0, Gpu::Op{Gpu::Op::Kind::Pack, sparse, nullptr, src.bytes, dst.bytes,
                 nullptr});
  eng_.run();
  EXPECT_GT(h_sparse.end - h_sparse.start, (h_dense.end - h_dense.start) * 4);
}

TEST_F(GpuDeviceTest, StreamsSerializeKernels) {
  auto layout = contiguousLayout(1 << 20);
  auto src = gpu_.memory().allocate(1 << 20);
  auto dst = gpu_.memory().allocate(1 << 20);
  Gpu::Op op{Gpu::Op::Kind::Pack, layout, nullptr, src.bytes, dst.bytes,
             nullptr};
  auto h1 = gpu_.launchKernel(0, op.clone());
  auto h2 = gpu_.launchKernel(0, op.clone());
  EXPECT_GE(h2.start, h1.end);
  // A different stream starts independently.
  auto s2 = gpu_.createStream();
  auto h3 = gpu_.launchKernel(s2, std::move(op));
  EXPECT_LT(h3.start, h2.end);
  eng_.run();
}

TEST_F(GpuDeviceTest, EventRecordQuerySynchronize) {
  auto layout = contiguousLayout(1 << 22);
  auto src = gpu_.memory().allocate(1 << 22);
  auto dst = gpu_.memory().allocate(1 << 22);
  auto h = gpu_.launchKernel(
      0, Gpu::Op{Gpu::Op::Kind::Pack, layout, nullptr, src.bytes, dst.bytes,
                 nullptr});
  auto ev = gpu_.createEvent();
  gpu_.eventRecord(ev, 0);
  EXPECT_FALSE(gpu_.eventQuery(ev));

  TimeNs woke_at = 0;
  eng_.spawn([](sim::Engine& eng, Gpu& gpu, Gpu::EventId e,
                TimeNs& woke) -> sim::Task<void> {
    co_await gpu.eventSynchronize(e);
    woke = eng.now();
  }(eng_, gpu_, ev, woke_at));
  eng_.run();
  EXPECT_EQ(woke_at, h.end);
  EXPECT_TRUE(gpu_.eventQuery(ev));
}

TEST_F(GpuDeviceTest, StreamSynchronizeWaitsForQueuedWork) {
  auto layout = contiguousLayout(1 << 22);
  auto src = gpu_.memory().allocate(1 << 22);
  auto dst = gpu_.memory().allocate(1 << 22);
  auto h = gpu_.launchKernel(
      0, Gpu::Op{Gpu::Op::Kind::Pack, layout, nullptr, src.bytes, dst.bytes,
                 nullptr});
  TimeNs woke_at = 0;
  eng_.spawn([](sim::Engine& eng, Gpu& gpu, TimeNs& woke) -> sim::Task<void> {
    co_await gpu.streamSynchronize(0);
    woke = eng.now();
  }(eng_, gpu_, woke_at));
  eng_.run();
  EXPECT_EQ(woke_at, h.end);
  EXPECT_TRUE(gpu_.streamIdle(0));
}

TEST_F(GpuDeviceTest, MemcpyRoutesAndCopies) {
  std::vector<std::byte> host(4096, std::byte{0x11});
  auto dev = gpu_.memory().allocate(4096);
  auto h2d = gpu_.memcpyAsync(0, dev, MemSpan::host(host));
  eng_.run();
  EXPECT_EQ(dev.bytes[100], std::byte{0x11});

  // D2H goes back.
  std::vector<std::byte> host2(4096);
  dev.bytes[7] = std::byte{0x77};
  gpu_.memcpyAsync(0, MemSpan::host(host2), dev);
  eng_.run();
  EXPECT_EQ(host2[7], std::byte{0x77});
  EXPECT_GT(h2d.end, 0u);
  EXPECT_EQ(gpu_.copiesIssued(), 2u);
}

TEST_F(GpuDeviceTest, PeerCopySlowerLinkThanLocal) {
  Gpu peer(eng_, machine_.node, 1);
  auto a = gpu_.memory().allocate(1 << 24);
  auto b = peer.memory().allocate(1 << 24);
  auto local_dst = gpu_.memory().allocate(1 << 24);

  const TimeNs t0 = eng_.now();
  auto local = gpu_.memcpyAsync(0, local_dst, a);
  auto s2 = gpu_.createStream();
  auto remote = gpu_.memcpyAsync(s2, b, a);
  eng_.run();
  // HBM/2 (450 GB/s) local vs 75 GB/s NVLink peer.
  EXPECT_LT(local.end - t0, remote.end - t0);
}

TEST_F(GpuDeviceTest, StridedCopyMovesBetweenLayouts) {
  auto src_layout = stridedLayout(4, 16, 64);
  auto dst_layout = stridedLayout(8, 8, 32);
  ASSERT_EQ(src_layout->size(), dst_layout->size());
  auto src = gpu_.memory().allocate(512);
  auto dst = gpu_.memory().allocate(512);
  for (std::size_t i = 0; i < 512; ++i)
    src.bytes[i] = static_cast<std::byte>(i % 251);
  gpu_.launchKernel(0, Gpu::Op{Gpu::Op::Kind::StridedCopy, src_layout,
                               dst_layout, src.bytes, dst.bytes, nullptr});
  eng_.run();
  // Spot-check: 9th packed byte (index 8) comes from src offset 64+? No —
  // src runs: [0,16),[64,80),...; dst runs: [0,8),[32,40),...
  // Packed stream byte 8 lands at dst offset 32 and comes from src offset 8.
  EXPECT_EQ(dst.bytes[32], src.bytes[8]);
}

TEST_F(GpuDeviceTest, ZeroByteOpCompletesImmediately) {
  auto layout = contiguousLayout(0);
  bool completed = false;
  auto src = gpu_.memory().allocate(16);
  auto dst = gpu_.memory().allocate(16);
  gpu_.launchKernel(0, Gpu::Op{Gpu::Op::Kind::Pack, layout, nullptr,
                               src.bytes, dst.bytes,
                               [&] { completed = true; }});
  eng_.run();
  EXPECT_TRUE(completed);
}

}  // namespace
}  // namespace dkf::gpu

namespace dkf::gpu {
namespace {

TEST_F(GpuDeviceTest, SynchronizingUnrecordedEventThrows) {
  auto ev = gpu_.createEvent();
  EXPECT_FALSE(gpu_.eventQuery(ev));
  bool threw = false;
  eng_.spawn([](Gpu& g, Gpu::EventId e, bool& out) -> sim::Task<void> {
    try {
      co_await g.eventSynchronize(e);
    } catch (const CheckFailure&) {
      out = true;
    }
  }(gpu_, ev, threw));
  eng_.run();
  EXPECT_TRUE(threw);
}

TEST_F(GpuDeviceTest, MemcpyDestinationTooSmallThrows) {
  auto small = gpu_.memory().allocate(64);
  auto big = gpu_.memory().allocate(128);
  EXPECT_THROW(gpu_.memcpyAsync(0, small, big), CheckFailure);
}

TEST_F(GpuDeviceTest, InvalidStreamThrows) {
  auto layout = contiguousLayout(64);
  auto src = gpu_.memory().allocate(64);
  auto dst = gpu_.memory().allocate(64);
  Gpu::Op op{Gpu::Op::Kind::Pack, layout, nullptr, src.bytes, dst.bytes,
             nullptr};
  EXPECT_THROW(gpu_.launchKernel(999, std::move(op)), CheckFailure);
}

TEST_F(GpuDeviceTest, EmptyKernelThrows) {
  EXPECT_THROW(gpu_.launchKernel(0, std::vector<Gpu::Op>{}), CheckFailure);
}

TEST_F(GpuDeviceTest, BusyTimeAccumulates) {
  auto layout = contiguousLayout(1 << 20);
  auto src = gpu_.memory().allocate(1 << 20);
  auto dst = gpu_.memory().allocate(1 << 20);
  EXPECT_EQ(gpu_.busyTime(), 0u);
  auto h = gpu_.launchKernel(0, Gpu::Op{Gpu::Op::Kind::Pack, layout, nullptr,
                                        src.bytes, dst.bytes, nullptr});
  eng_.run();
  EXPECT_EQ(gpu_.busyTime(), h.end - h.start);
  EXPECT_EQ(gpu_.kernelsLaunched(), 1u);
}

}  // namespace
}  // namespace dkf::gpu
