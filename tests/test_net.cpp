// Network link and fabric: serialization, latency, byte conservation,
// GPUDirect bandwidth caps, RDMA verbs.
#include <gtest/gtest.h>

#include <vector>

#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "net/fabric.hpp"
#include "net/link.hpp"

namespace dkf::net {
namespace {

TEST(Link, LatencyPlusSerialization) {
  sim::Engine eng;
  Link link(eng, hw::LinkSpec{"test", us(1), GBps(1)});  // 1 B/ns
  const TimeNs d = link.transfer(1000);
  EXPECT_EQ(d, 1000u + us(1));
  EXPECT_EQ(link.bytesCarried(), 1000u);
}

TEST(Link, BackToBackTransfersSerialize) {
  sim::Engine eng;
  Link link(eng, hw::LinkSpec{"test", us(1), GBps(1)});
  const TimeNs d1 = link.transfer(1000);
  const TimeNs d2 = link.transfer(1000);
  EXPECT_EQ(d2, d1 + 1000u);  // second queues behind the first
  EXPECT_EQ(link.messagesCarried(), 2u);
}

TEST(Link, BandwidthOverrideCapsRate) {
  sim::Engine eng;
  Link link(eng, hw::LinkSpec{"test", ns(0), GBps(10)});
  const TimeNs fast = link.transfer(10'000);            // 1 us at 10 B/ns
  Link link2(eng, hw::LinkSpec{"test", ns(0), GBps(10)});
  const TimeNs slow = link2.transfer(10'000, GBps(1).bytesPerNs());
  EXPECT_EQ(fast, 1000u);
  EXPECT_EQ(slow, 10'000u);
}

TEST(Link, EarliestStartRespected) {
  sim::Engine eng;
  Link link(eng, hw::LinkSpec{"test", ns(0), GBps(1)});
  const TimeNs d = link.transferAt(us(5), 100);
  EXPECT_EQ(d, us(5) + 100u);
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest()
      : machine_(hw::lassen()), fabric_(eng_, machine_, 2) {}

  sim::Engine eng_;
  hw::MachineSpec machine_;
  Fabric fabric_;
};

TEST_F(FabricTest, SendDataCopiesPayloadAtDelivery) {
  std::vector<std::byte> src(4096, std::byte{0xAB});
  std::vector<std::byte> dst(4096, std::byte{0});
  bool delivered = false;
  const TimeNs d = fabric_.sendData(0, 1, gpu::MemSpan::host(src),
                                    gpu::MemSpan::host(dst),
                                    [&] { delivered = true; });
  EXPECT_FALSE(delivered);
  EXPECT_EQ(dst[0], std::byte{0});  // not copied yet
  eng_.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(dst[4095], std::byte{0xAB});
  EXPECT_GT(d, machine_.internode.latency);
}

TEST_F(FabricTest, ControlPacketsAreSmallAndFast) {
  std::vector<std::byte> src(1 << 20, std::byte{1});
  std::vector<std::byte> dst(1 << 20);
  const TimeNs data = fabric_.sendData(0, 1, gpu::MemSpan::host(src),
                                       gpu::MemSpan::host(dst), nullptr);
  sim::Engine eng2;
  Fabric fabric2(eng2, machine_, 2);
  const TimeNs ctrl = fabric2.sendControl(0, 1, nullptr);
  EXPECT_LT(ctrl, data);
  eng_.run();
  eng2.run();
}

TEST_F(FabricTest, IntraNodeUsesPeerLink) {
  // Same node: NVLink-2 (75 GB/s) beats IB EDR (25 GB/s) for bulk payloads.
  std::vector<std::byte> src(16 << 20), dst(16 << 20);
  const TimeNs intra = fabric_.sendData(0, 0, gpu::MemSpan::host(src),
                                        gpu::MemSpan::host(dst), nullptr);
  sim::Engine eng2;
  Fabric fabric2(eng2, machine_, 2);
  const TimeNs inter = fabric2.sendData(0, 1, gpu::MemSpan::host(src),
                                        gpu::MemSpan::host(dst), nullptr);
  EXPECT_LT(intra, inter);
  eng_.run();
  eng2.run();
}

TEST_F(FabricTest, RdmaReadPullsData) {
  std::vector<std::byte> src(8192, std::byte{0x3C});
  std::vector<std::byte> dst(8192);
  bool done = false;
  fabric_.rdmaRead(1, 0, gpu::MemSpan::host(src), gpu::MemSpan::host(dst),
                   [&] { done = true; });
  eng_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dst[8191], std::byte{0x3C});
}

TEST_F(FabricTest, RdmaWritePushesData) {
  std::vector<std::byte> src(8192, std::byte{0x7E});
  std::vector<std::byte> dst(8192);
  bool done = false;
  fabric_.rdmaWrite(0, 1, gpu::MemSpan::host(src), gpu::MemSpan::host(dst),
                    [&] { done = true; });
  eng_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dst[0], std::byte{0x7E});
}

TEST_F(FabricTest, ByteConservation) {
  std::vector<std::byte> src(1000), dst(1000);
  fabric_.sendData(0, 1, gpu::MemSpan::host(src), gpu::MemSpan::host(dst),
                   nullptr);
  fabric_.sendControl(1, 0, nullptr);
  eng_.run();
  EXPECT_EQ(fabric_.totalBytesCarried(), 1000u + 64u);
  EXPECT_EQ(fabric_.totalMessages(), 2u);
}

TEST(FabricAbci, GpuDirectCapBindsOnPcie) {
  // On ABCI the PCIe path (12 GB/s) is slower than IB (25 GB/s): a device-
  // resident payload must stream slower than a host-resident one.
  sim::Engine eng;
  auto machine = hw::abci();
  Fabric fabric(eng, machine, 2);
  std::vector<std::byte> host_buf(32 << 20), dst(32 << 20);
  const TimeNs host_t =
      fabric.sendData(0, 1, gpu::MemSpan::host(host_buf),
                      gpu::MemSpan::host(dst), nullptr);

  sim::Engine eng2;
  Fabric fabric2(eng2, machine, 2);
  hw::Cluster cluster(eng2, machine, 1);
  auto dev = cluster.gpu(0).memory().allocate(32 << 20);
  const TimeNs dev_t = fabric2.sendData(0, 1, dev,
                                        gpu::MemSpan::host(dst), nullptr);
  EXPECT_GT(dev_t, host_t);
  eng.run();
  eng2.run();
}

TEST(FabricLassen, GpuDirectCapDoesNotBindOnNvlink) {
  sim::Engine eng;
  auto machine = hw::lassen();
  Fabric fabric(eng, machine, 2);
  hw::Cluster cluster(eng, machine, 1);
  std::vector<std::byte> dst(32 << 20);
  auto dev = cluster.gpu(0).memory().allocate(32 << 20);
  const TimeNs t0 = eng.now();
  const TimeNs dev_t =
      fabric.sendData(0, 1, dev, gpu::MemSpan::host(dst), nullptr);

  sim::Engine eng2;
  Fabric fabric2(eng2, machine, 2);
  std::vector<std::byte> host_buf(32 << 20);
  const TimeNs host_t = fabric2.sendData(0, 1, gpu::MemSpan::host(host_buf),
                                         gpu::MemSpan::host(dst), nullptr);
  EXPECT_EQ(dev_t - t0, host_t);  // NVLink (75) never caps IB (25)
  eng.run();
  eng2.run();
}

TEST(Cluster, TopologyAndGlobalIds) {
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), 2);
  EXPECT_EQ(cluster.nodeCount(), 2u);
  EXPECT_EQ(cluster.gpuCount(), 8u);
  EXPECT_EQ(cluster.gpu(0).id(), 0);
  EXPECT_EQ(cluster.gpu(5).id(), 5);
  EXPECT_EQ(cluster.nodeOfGpu(3), 0);
  EXPECT_EQ(cluster.nodeOfGpu(4), 1);
  EXPECT_EQ(cluster.node(1).gpuCount(), 4u);
}

}  // namespace
}  // namespace dkf::net
