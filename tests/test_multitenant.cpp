// Multi-tenant serving plane (MODEL.md §14): link-level contention math,
// DRR delivery arbitration, weighted-fair batch claims, per-tenant
// admission/backpressure, and end-to-end determinism of the arbitrated
// plane — byte-identical reruns, serial-vs-parallel sweeps, fault-free and
// at 12% loss. Every suite is named MultiTenant* so the TSan CI job can
// select the whole plane with one filter.
//
// The determinism sweep runs under bench::parallelFor; gtest assertions
// are not thread-safe, so workers record failure strings and the main
// thread asserts after the join.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/parallel.hpp"
#include "common/rng.hpp"
#include "core/request_list.hpp"
#include "ddt/datatype.hpp"
#include "fault/fault_plan.hpp"
#include "gpu/memory.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "net/arbiter.hpp"
#include "net/fabric.hpp"
#include "net/link.hpp"
#include "net/link_batcher.hpp"
#include "sim/engine.hpp"

namespace dkf {
namespace {

// ---- Link: weighted processor sharing --------------------------------

hw::LinkSpec testLink() { return {"test", ns(1000), GBps(10)}; }

TEST(MultiTenantLink, SingleTenantSharedMatchesFifo) {
  sim::Engine eng_a, eng_b;
  net::Link fifo(eng_a, testLink());
  TenantWeights weights;
  net::Link shared(eng_b, testLink());
  shared.setSharing(&weights);
  for (std::size_t bytes : {100u, 4096u, 1u, 65536u}) {
    EXPECT_EQ(fifo.transferAt(0, bytes),
              shared.transferSharedAt(0, 0, bytes));
  }
}

TEST(MultiTenantLink, OverlappingTenantsSplitBandwidthByWeight) {
  sim::Engine eng;
  TenantWeights weights;
  weights.set(0, 3.0);
  weights.set(1, 1.0);
  net::Link link(eng, testLink());
  link.setSharing(&weights);
  // 10 GB/s = 10 B/ns. Tenant 1 reserves a long transfer first; tenant 0
  // then arrives and must stream at 3/4 of the rate (tenant 1 busy), not
  // behind tenant 1's whole backlog as FIFO would queue it.
  const TimeNs t1 = link.transferSharedAt(1, 0, 100000);  // 10 us + lat
  const TimeNs t0 = link.transferSharedAt(0, 0, 7500);
  EXPECT_EQ(t1, TimeNs(10000 + 1000));
  // 7500 B at 7.5 B/ns = 1 us serialization + 1 us latency.
  EXPECT_EQ(t0, TimeNs(1000 + 1000));
  // A tenant alone on the link streams at the full rate again.
  sim::Engine eng2;
  net::Link alone(eng2, testLink());
  alone.setSharing(&weights);
  EXPECT_EQ(alone.transferSharedAt(0, 0, 7500), TimeNs(750 + 1000));
}

TEST(MultiTenantLink, PerTenantDeliveryTimesNonDecreasing) {
  sim::Engine eng;
  TenantWeights weights;
  net::Link link(eng, testLink());
  link.setSharing(&weights);
  Rng rng(0x7E47);
  std::vector<TimeNs> last(3, 0);
  for (int i = 0; i < 200; ++i) {
    const TenantId t = static_cast<TenantId>(rng.below(3));
    const TimeNs d = link.transferSharedAt(t, 0, 1 + rng.below(8192));
    EXPECT_GE(d, last[t]);
    last[t] = d;
  }
}

// ---- LinkBatcher: DRR delivery arbitration ---------------------------

std::vector<int> drrDeliveryOrder(std::size_t quantum) {
  sim::Engine eng;
  net::LinkBatcher b(eng, ns(0));
  TenantWeights weights;
  weights.set(0, 2.0);
  weights.set(1, 1.0);
  net::ArbiterConfig cfg;
  cfg.policy = net::ArbiterPolicy::Drr;
  cfg.weights = &weights;
  cfg.quantum_bytes = quantum;
  b.setArbiter(cfg);
  std::vector<int> order;
  // Two tenants, all entries ripe at the same instant: DRR must interleave
  // by deficit, not drain tenant 0 wholesale.
  for (int i = 0; i < 6; ++i) {
    b.enqueue(ns(100), 0, 1024, [&order, i] { order.push_back(i); });
    b.enqueue(ns(100), 1, 1024, [&order, i] { order.push_back(100 + i); });
  }
  eng.run();
  return order;
}

TEST(MultiTenantBatcher, DrrServesEveryEntryDeterministically) {
  const auto first = drrDeliveryOrder(1024);
  EXPECT_EQ(first.size(), 12u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(std::find(first.begin(), first.end(), i), first.end());
    EXPECT_NE(std::find(first.begin(), first.end(), 100 + i), first.end());
  }
  // Byte-identical rerun: same construction, same order.
  EXPECT_EQ(first, drrDeliveryOrder(1024));
  // Weight 2:1 with a one-entry quantum: tenant 0 drains two entries per
  // rotation to tenant 1's one, so tenant 1's last entry is served last.
  EXPECT_EQ(first.back(), 105);
}

TEST(MultiTenantBatcher, TenantDeliveryCountersTrackServes) {
  sim::Engine eng;
  net::LinkBatcher b(eng, ns(0));
  TenantWeights weights;
  net::ArbiterConfig cfg;
  cfg.policy = net::ArbiterPolicy::Drr;
  cfg.weights = &weights;
  b.setArbiter(cfg);
  for (int i = 0; i < 4; ++i) b.enqueue(ns(10) * (i + 1), 0, 64, [] {});
  for (int i = 0; i < 3; ++i) b.enqueue(ns(15) * (i + 1), 2, 64, [] {});
  eng.run();
  ASSERT_GE(b.tenantDeliveries().size(), 3u);
  EXPECT_EQ(b.tenantDeliveries()[0], 4u);
  EXPECT_EQ(b.tenantDeliveries()[1], 0u);
  EXPECT_EQ(b.tenantDeliveries()[2], 3u);
  EXPECT_EQ(b.deliveries(), 7u);
}

// Regression: sendPayload once read payload.size() *after* moving the ref
// into the delivery closure — PayloadRef's move ctor zeroes the source, so
// every eager message parked in the DRR batcher with bytes=0 and drained
// for free, disabling deficit accounting. FIFO ignores bytes (which is why
// the conformance suites stayed green), so this pins the eager path through
// a DRR fabric: with quantum == message size, equal weights, and a window
// wide enough to make every delivery ripe in a single fire, correct byte
// accounting serves exactly one message per tenant per rotation — each
// consecutive pair of deliveries holds one message from each tenant.
// Zero-byte entries would drain all of tenant 0 before tenant 1's first.
TEST(MultiTenantFabric, EagerPayloadBytesDriveDrrDeficit) {
  sim::Engine eng;
  const hw::MachineSpec machine = hw::lassen();
  net::Fabric fabric(eng, machine, 2);
  constexpr std::size_t kMsgBytes = 4096;
  net::ContentionConfig cfg;
  cfg.enabled = true;
  cfg.quantum_bytes = kMsgBytes;
  fabric.setContention(cfg);
  fabric.setBatchWindow(ms(10));
  std::vector<std::byte> payload(kMsgBytes, std::byte{0x5A});
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    for (const TenantId t : {TenantId{0}, TenantId{1}}) {
      fabric.sendMessage(
          0, 1, gpu::MemSpan::host(payload),
          [&order, t](net::PayloadRef) { order.push_back(static_cast<int>(t)); },
          t);
    }
  }
  eng.run();
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); i += 2) {
    EXPECT_NE(order[i], order[i + 1])
        << "DRR rotation " << i / 2 << " did not interleave tenants";
  }
  const auto served = fabric.tenantDeliveries();
  ASSERT_GE(served.size(), 2u);
  EXPECT_EQ(served[0], 4u);
  EXPECT_EQ(served[1], 4u);
}

// ---- RequestList: weighted-fair claim --------------------------------

core::FusionRequest tenantRequest(TenantId t, std::size_t bytes) {
  core::FusionRequest req;
  req.op = core::FusionOp::Packing;
  req.tenant = t;
  req.layout = std::make_shared<const ddt::Layout>(ddt::flatten(
      ddt::Datatype::contiguous(bytes, ddt::Datatype::byte()), 1));
  return req;
}

TEST(MultiTenantClaim, WeightedClaimDrainsTenantsByWeightInUidOrder) {
  core::RequestList list(64);
  list.setAudit(true);
  // Tenant 0 floods 12 entries before tenant 1's 4 arrive.
  for (int i = 0; i < 12; ++i) list.tryEnqueue(tenantRequest(0, 1024));
  for (int i = 0; i < 4; ++i) list.tryEnqueue(tenantRequest(1, 1024));
  EXPECT_TRUE(list.hasPendingFor(0));
  EXPECT_TRUE(list.hasPendingFor(1));
  EXPECT_FALSE(list.hasPendingFor(7));

  TenantWeights weights;  // default weight 1.0 each
  const auto batch = list.claimPendingBatchWeighted(8, weights, 1024);
  ASSERT_EQ(batch.size(), 8u);
  // Equal weights, equal bytes: the oversubscribed claim takes 4 from each
  // tenant instead of the first 8 FIFO entries (all tenant 0's).
  std::size_t t0 = 0, t1 = 0;
  std::int64_t prev_uid = -1;
  for (const std::size_t slot : batch) {
    const auto& r = list.slot(slot);
    (r.tenant == 0 ? t0 : t1)++;
    EXPECT_GT(r.uid, prev_uid);  // batch stays in UID order
    prev_uid = r.uid;
  }
  EXPECT_EQ(t0, 4u);
  EXPECT_EQ(t1, 4u);
  EXPECT_TRUE(list.hasPendingFor(0));
  EXPECT_FALSE(list.hasPendingFor(1));  // tenant 1 fully claimed
}

TEST(MultiTenantClaim, DegeneratesToFifoWhenEverythingFits) {
  core::RequestList weighted(32), fifo(32);
  weighted.setAudit(true);
  fifo.setAudit(true);
  for (int i = 0; i < 6; ++i) {
    const TenantId t = i % 2;
    weighted.tryEnqueue(tenantRequest(t, 256));
    fifo.tryEnqueue(tenantRequest(t, 256));
  }
  TenantWeights weights;
  EXPECT_EQ(weighted.claimPendingBatchWeighted(16, weights, 64 * 1024),
            fifo.claimPendingBatch(16));
}

// ---- Runtime: admission, backpressure, determinism -------------------

struct TenantTrace {
  std::vector<std::byte> recv_bytes;
  TimeNs end_time{0};
  std::size_t events{0};
  std::vector<mpi::TenantStats> sender_stats;
};

bool sameStats(const mpi::TenantStats& a, const mpi::TenantStats& b) {
  return a.admitted == b.admitted && a.inflight == b.inflight &&
         a.peak_inflight == b.peak_inflight &&
         a.throttle_waits == b.throttle_waits &&
         a.throttled_ns == b.throttled_ns;
}

bool operator==(const TenantTrace& a, const TenantTrace& b) {
  return a.recv_bytes == b.recv_bytes && a.end_time == b.end_time &&
         a.events == b.events &&
         a.sender_stats.size() == b.sender_stats.size() &&
         std::equal(a.sender_stats.begin(), a.sender_stats.end(),
                    b.sender_stats.begin(), sameStats);
}

struct TenantWorldCfg {
  bool drr{false};           // contention + DRR + weighted fair batching
  std::size_t limit{0};      // tenant_inflight_limit
  double loss{0.0};          // with reliability when > 0
  std::uint64_t seed{0xC0FFEE};
};

constexpr int kMsgsPerTenant = 24;
constexpr std::size_t kMsgBytes = 512;
constexpr std::size_t kRegion = 1024;

sim::Task<void> tenantSenderTask(mpi::Proc& p, TenantId tenant,
                                 gpu::MemSpan buf) {
  auto byte_t = ddt::Datatype::byte();
  auto vec_t = ddt::Datatype::vector(16, 32, 64, ddt::Datatype::byte());
  std::vector<mpi::Proc::SendSpec> specs;
  for (int i = 0; i < kMsgsPerTenant; ++i) {
    const bool strided = i % 4 == 3;  // exercise the fused pack path
    specs.push_back({buf.subspan(i * kRegion, strided ? kRegion : kMsgBytes),
                     strided ? vec_t : byte_t,
                     strided ? 1u : static_cast<unsigned>(kMsgBytes), 1,
                     static_cast<int>(tenant) * 1000 + i, tenant});
  }
  co_await p.waitall(co_await p.isendBatch(std::move(specs)));
}

sim::Task<void> tenantReceiverTask(mpi::Proc& p,
                                   std::vector<gpu::MemSpan> bufs) {
  auto byte_t = ddt::Datatype::byte();
  auto vec_t = ddt::Datatype::vector(16, 32, 64, ddt::Datatype::byte());
  std::vector<mpi::Proc::RecvSpec> specs;
  for (TenantId t = 0; t < bufs.size(); ++t) {
    for (int i = 0; i < kMsgsPerTenant; ++i) {
      const bool strided = i % 4 == 3;
      specs.push_back(
          {bufs[t].subspan(i * kRegion, strided ? kRegion : kMsgBytes),
           strided ? vec_t : byte_t,
           strided ? 1u : static_cast<unsigned>(kMsgBytes), 0,
           static_cast<int>(t) * 1000 + i, t});
    }
  }
  co_await p.waitall(co_await p.irecvBatch(std::move(specs)));
}

TenantTrace runTenantWorld(const TenantWorldCfg& wc) {
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), 2);
  std::optional<fault::FaultPlan> plan;
  mpi::RuntimeConfig cfg;
  if (wc.drr) {
    cfg.contention.enabled = true;
    cfg.contention.weights.set(0, 4.0);
    cfg.contention.weights.set(1, 1.0);
    cfg.weighted_fair_batching = true;
  }
  cfg.tenant_inflight_limit = wc.limit;
  if (wc.loss > 0.0) {
    fault::FaultSpec fs;
    fs.seed = wc.seed;
    fs.data_loss = wc.loss;
    fs.control_loss = wc.loss;
    plan.emplace(eng, fs);
    cluster.setFaultPlan(&*plan);
    cfg.reliability.enabled = true;
    cfg.reliability.base_timeout = us(40);
    cfg.reliability.max_timeout = us(2000);
    cfg.reliability.max_retries = 60;
    eng.setWatchdog(sec(5));
  }
  mpi::Runtime rt(cluster, cfg);

  constexpr std::size_t kTenants = 2;
  std::vector<gpu::MemSpan> send_bufs, recv_bufs;
  for (TenantId t = 0; t < kTenants; ++t) {
    send_bufs.push_back(
        rt.proc(0).allocDevice(kMsgsPerTenant * kRegion));
    recv_bufs.push_back(
        rt.proc(1).allocDevice(kMsgsPerTenant * kRegion));
    Rng fill(wc.seed ^ (0xABCD + t));
    for (auto& b : send_bufs.back().bytes) {
      b = static_cast<std::byte>(fill.below(256));
    }
    std::memset(recv_bufs.back().bytes.data(), 0, kMsgsPerTenant * kRegion);
  }
  for (TenantId t = 0; t < kTenants; ++t) {
    eng.spawn(tenantSenderTask(rt.proc(0), t, send_bufs[t]));
  }
  eng.spawn(tenantReceiverTask(rt.proc(1), recv_bufs));
  eng.run();
  EXPECT_EQ(eng.unfinishedTasks(), 0u);

  TenantTrace trace;
  for (const auto& r : recv_bufs) {
    trace.recv_bytes.insert(trace.recv_bytes.end(), r.bytes.begin(),
                            r.bytes.end());
  }
  trace.end_time = eng.now();
  trace.events = eng.processedEvents();
  trace.sender_stats = rt.proc(0).tenantStats();
  return trace;
}

TEST(MultiTenantAdmission, CapBoundsInflightAndCountsBackpressure) {
  TenantWorldCfg wc;
  wc.drr = true;
  wc.limit = 4;
  const TenantTrace capped = runTenantWorld(wc);
  ASSERT_GE(capped.sender_stats.size(), 2u);
  for (TenantId t = 0; t < 2; ++t) {
    const auto& ts = capped.sender_stats[t];
    EXPECT_EQ(ts.admitted, static_cast<std::size_t>(kMsgsPerTenant));
    EXPECT_LE(ts.peak_inflight, 4u);
    EXPECT_GT(ts.throttle_waits, 0u);
    EXPECT_GT(ts.throttled_ns, 0);
    EXPECT_EQ(ts.inflight, 0u);  // every token returned at drain
  }
  // Backpressure reschedules, it never drops or corrupts payloads.
  TenantWorldCfg open = wc;
  open.limit = 0;
  EXPECT_EQ(capped.recv_bytes, runTenantWorld(open).recv_bytes);
}

TEST(MultiTenantDeterminism, ArbitratedPlaneIsByteIdenticalAcrossReruns) {
  for (const bool drr : {false, true}) {
    for (const double loss : {0.0, 0.12}) {
      TenantWorldCfg wc;
      wc.drr = drr;
      wc.loss = loss;
      wc.limit = drr ? 6 : 0;
      const TenantTrace a = runTenantWorld(wc);
      const TenantTrace b = runTenantWorld(wc);
      EXPECT_TRUE(a == b) << "drr=" << drr << " loss=" << loss;
    }
  }
}

TEST(MultiTenantDeterminism, DrrIsASchedulingChangeNotADataChange) {
  TenantWorldCfg fifo, drr;
  drr.drr = true;
  EXPECT_EQ(runTenantWorld(fifo).recv_bytes, runTenantWorld(drr).recv_bytes);
}

TEST(MultiTenantDeterminism, SweepSerialMatchesParallel) {
  // The same config sweep evaluated serially and under parallelFor must
  // produce identical traces — simulations share no hidden global state.
  std::vector<TenantWorldCfg> sweep;
  for (const bool drr : {false, true}) {
    for (const double loss : {0.0, 0.12}) {
      for (const std::uint64_t seed : {0x51EEull, 0xF00Dull}) {
        TenantWorldCfg wc;
        wc.drr = drr;
        wc.loss = loss;
        wc.limit = drr ? 5 : 0;
        wc.seed = seed;
        sweep.push_back(wc);
      }
    }
  }
  std::vector<TenantTrace> serial(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    serial[i] = runTenantWorld(sweep[i]);
  }
  std::vector<TenantTrace> parallel(sweep.size());
  std::mutex mu;
  std::vector<std::string> failures;
  bench::parallelFor(sweep.size(), [&](std::size_t i) {
    parallel[i] = runTenantWorld(sweep[i]);
    if (!(parallel[i] == serial[i])) {
      std::ostringstream err;
      err << "sweep index " << i << " diverged between serial and parallel";
      const std::lock_guard<std::mutex> lock(mu);
      failures.push_back(err.str());
    }
  });
  EXPECT_TRUE(failures.empty()) << failures.front();
}

TEST(MultiTenantDefault, DefaultConfigKeepsFifoWireInert) {
  mpi::RuntimeConfig cfg;
  EXPECT_FALSE(cfg.contention.enabled);
  EXPECT_EQ(cfg.tenant_inflight_limit, 0u);
  EXPECT_FALSE(cfg.weighted_fair_batching);
  // A default-config run never routes through the DRR arbiter: the
  // per-tenant delivery counters stay empty (FIFO head policy untouched).
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), 2);
  mpi::Runtime rt(cluster, cfg);
  eng.spawn(tenantSenderTask(rt.proc(0), 0,
                             rt.proc(0).allocDevice(kMsgsPerTenant * kRegion)));
  eng.spawn(tenantReceiverTask(
      rt.proc(1), {rt.proc(1).allocDevice(kMsgsPerTenant * kRegion)}));
  eng.run();
  EXPECT_EQ(eng.unfinishedTasks(), 0u);
  EXPECT_TRUE(cluster.fabric().tenantDeliveries().empty());
}

}  // namespace
}  // namespace dkf
