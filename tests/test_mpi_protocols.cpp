// Protocol edge cases and runtime internals: zero-size messages, message
// ordering, layout-cache reuse, staging reclamation, RPUT with derived
// types, all-to-all traffic, DirectIPC fallback for engines without the
// capability, and eager/rendezvous boundary behaviour.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"

namespace dkf::mpi {
namespace {

using ddt::Datatype;

struct World {
  explicit World(RuntimeConfig cfg = {}, hw::MachineSpec machine = hw::lassen(),
                 std::size_t nodes = 2)
      : cluster(eng, std::move(machine), nodes), rt(cluster, cfg) {}

  sim::Engine eng;
  hw::Cluster cluster;
  Runtime rt;
};

TEST(ZeroSize, EmptyMessageCompletesBothSides) {
  World w;
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto sbuf = p0.allocDevice(16);
  auto rbuf = p4.allocDevice(16);

  bool send_done = false, recv_done = false;
  w.eng.spawn([](Proc& p, gpu::MemSpan b, bool& flag) -> sim::Task<void> {
    auto req = co_await p.isend(b, Datatype::byte(), 0, 4, 1);
    co_await p.wait(req);
    flag = true;
  }(p0, sbuf, send_done));
  w.eng.spawn([](Proc& p, gpu::MemSpan b, bool& flag) -> sim::Task<void> {
    auto req = co_await p.irecv(b, Datatype::byte(), 0, 0, 1);
    co_await p.wait(req);
    flag = true;
  }(p4, rbuf, recv_done));
  w.eng.run();
  EXPECT_TRUE(send_done);
  EXPECT_TRUE(recv_done);
  EXPECT_EQ(w.eng.unfinishedTasks(), 0u);
}

TEST(Ordering, SameTagMessagesArriveInPostOrder) {
  World w;
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  std::vector<gpu::MemSpan> sbufs, rbufs;
  for (int i = 0; i < 4; ++i) {
    auto s = p0.allocDevice(64);
    std::memset(s.bytes.data(), 0x10 + i, 64);
    sbufs.push_back(s);
    rbufs.push_back(p4.allocDevice(64));
  }
  w.eng.spawn([](Proc& p, std::vector<gpu::MemSpan>& bufs) -> sim::Task<void> {
    std::vector<RequestPtr> reqs;
    for (auto& b : bufs) {
      reqs.push_back(co_await p.isend(b, Datatype::byte(), 64, 4, 0));
    }
    co_await p.waitall(std::move(reqs));
  }(p0, sbufs));
  w.eng.spawn([](Proc& p, std::vector<gpu::MemSpan>& bufs) -> sim::Task<void> {
    std::vector<RequestPtr> reqs;
    for (auto& b : bufs) {
      reqs.push_back(co_await p.irecv(b, Datatype::byte(), 64, 0, 0));
    }
    co_await p.waitall(std::move(reqs));
  }(p4, rbufs));
  w.eng.run();
  // MPI non-overtaking: i-th recv matches i-th send of the same (src, tag).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rbufs[i].bytes[0], static_cast<std::byte>(0x10 + i));
  }
}

TEST(LayoutCache, ReusedAcrossRepeatedSends) {
  World w;
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto type = Datatype::vector(32, 2, 8, Datatype::float64());
  auto sbuf = p0.allocDevice(static_cast<std::size_t>(type->extent()));
  auto rbuf = p4.allocDevice(static_cast<std::size_t>(type->extent()));

  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      auto req = co_await p.isend(b, t, 1, 4, i);
      co_await p.wait(req);
    }
  }(p0, sbuf, type));
  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      auto req = co_await p.irecv(b, t, 1, 0, i);
      co_await p.wait(req);
    }
  }(p4, rbuf, type));
  w.eng.run();
  EXPECT_EQ(p0.layoutCache().misses(), 1u);  // flattened once
  EXPECT_EQ(p0.layoutCache().hits(), 4u);    // reused 4 times
}

TEST(Staging, DeviceMemoryReclaimedAfterCompletion) {
  RuntimeConfig cfg;
  cfg.scheme = schemes::Scheme::Proposed;
  World w(cfg);
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto type = Datatype::vector(256, 16, 48, Datatype::float64());  // rndv size
  auto sbuf = p0.allocDevice(static_cast<std::size_t>(type->extent()));
  auto rbuf = p4.allocDevice(static_cast<std::size_t>(type->extent()));
  const std::size_t base0 = p0.gpu().memory().bytesInUse();
  const std::size_t base4 = p4.gpu().memory().bytesInUse();

  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto req = co_await p.isend(b, t, 1, 4, i);
      co_await p.wait(req);
    }
  }(p0, sbuf, type));
  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto req = co_await p.irecv(b, t, 1, 0, i);
      co_await p.wait(req);
    }
  }(p4, rbuf, type));
  w.eng.run();
  // All pack/unpack staging buffers must be returned to the arena.
  EXPECT_EQ(p0.gpu().memory().bytesInUse(), base0);
  EXPECT_EQ(p4.gpu().memory().bytesInUse(), base4);
}

TEST(Rput, DerivedTypeRendezvousBothDirections) {
  RuntimeConfig cfg;
  cfg.rendezvous = Protocol::RPut;
  World w(cfg);
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto type = Datatype::vector(512, 8, 24, Datatype::float64());  // 32 KiB
  const auto region = static_cast<std::size_t>(type->extent());

  auto s0 = p0.allocDevice(region);
  auto r0 = p0.allocDevice(region);
  auto s4 = p4.allocDevice(region);
  auto r4 = p4.allocDevice(region);
  Rng rng(17);
  for (auto& b : s0.bytes) b = static_cast<std::byte>(rng.below(256));
  for (auto& b : s4.bytes) b = static_cast<std::byte>(rng.below(256));

  auto body = [](Proc& p, gpu::MemSpan send, gpu::MemSpan recv,
                 ddt::DatatypePtr t, int peer) -> sim::Task<void> {
    auto rr = co_await p.irecv(recv, t, 1, peer, 0);
    auto sr = co_await p.isend(send, t, 1, peer, 0);
    std::vector<RequestPtr> reqs{rr, sr};
    co_await p.waitall(std::move(reqs));
  };
  w.eng.spawn(body(p0, s0, r0, type, 4));
  w.eng.spawn(body(p4, s4, r4, type, 0));
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);

  const auto layout = ddt::flatten(type, 1);
  for (const auto& seg : layout.materialize()) {
    ASSERT_EQ(std::memcmp(r4.bytes.data() + seg.offset,
                          s0.bytes.data() + seg.offset, seg.len),
              0);
    ASSERT_EQ(std::memcmp(r0.bytes.data() + seg.offset,
                          s4.bytes.data() + seg.offset, seg.len),
              0);
  }
}

TEST(DirectIpcFallback, EngineWithoutDirectUsesPackPath) {
  RuntimeConfig cfg;
  cfg.scheme = schemes::Scheme::GpuSync;  // no DirectIPC support
  cfg.enable_direct_ipc = true;
  World w(cfg, hw::lassen(), 1);
  auto& p0 = w.rt.proc(0);
  auto& p1 = w.rt.proc(1);
  auto type = Datatype::vector(64, 4, 12, Datatype::float64());
  const auto region = static_cast<std::size_t>(type->extent());
  auto sbuf = p0.allocDevice(region);
  auto rbuf = p1.allocDevice(region);
  Rng rng(23);
  for (auto& b : sbuf.bytes) b = static_cast<std::byte>(rng.below(256));

  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.isend(b, t, 1, 1, 0);
    co_await p.wait(req);
  }(p0, sbuf, type));
  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.irecv(b, t, 1, 0, 0);
    co_await p.wait(req);
  }(p1, rbuf, type));
  w.eng.run();

  const auto layout = ddt::flatten(type, 1);
  for (const auto& seg : layout.materialize()) {
    ASSERT_EQ(std::memcmp(rbuf.bytes.data() + seg.offset,
                          sbuf.bytes.data() + seg.offset, seg.len),
              0);
  }
}

TEST(AllToAll, EightRanksExchangeUniquePayloads) {
  RuntimeConfig cfg;
  cfg.scheme = schemes::Scheme::Proposed;
  World w(cfg);
  const int n = w.rt.worldSize();
  ASSERT_EQ(n, 8);
  constexpr std::size_t kBytes = 2048;

  // buf[r][peer]: rank r's send and recv buffers for each peer.
  std::vector<std::vector<gpu::MemSpan>> sbuf(n), rbuf(n);
  for (int r = 0; r < n; ++r) {
    for (int peer = 0; peer < n; ++peer) {
      auto s = w.rt.proc(r).allocDevice(kBytes);
      std::memset(s.bytes.data(), r * 16 + peer, kBytes);
      sbuf[r].push_back(s);
      rbuf[r].push_back(w.rt.proc(r).allocDevice(kBytes));
    }
  }

  for (int r = 0; r < n; ++r) {
    w.eng.spawn([](Proc& p, std::vector<gpu::MemSpan>& sends,
                   std::vector<gpu::MemSpan>& recvs, int world) -> sim::Task<void> {
      std::vector<RequestPtr> reqs;
      for (int peer = 0; peer < world; ++peer) {
        if (peer == p.rank()) continue;
        reqs.push_back(
            co_await p.irecv(recvs[peer], Datatype::byte(), kBytes, peer, 0));
        reqs.push_back(
            co_await p.isend(sends[peer], Datatype::byte(), kBytes, peer, 0));
      }
      co_await p.waitall(std::move(reqs));
    }(w.rt.proc(r), sbuf[r], rbuf[r], n));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);

  for (int r = 0; r < n; ++r) {
    for (int peer = 0; peer < n; ++peer) {
      if (peer == r) continue;
      EXPECT_EQ(rbuf[r][peer].bytes[0],
                static_cast<std::byte>(peer * 16 + r))
          << "rank " << r << " from " << peer;
    }
  }
}

TEST(EagerBoundary, MessagesEitherSideOfThresholdDeliver) {
  World w;
  const std::size_t threshold = w.cluster.machine().eager_threshold;
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  for (const std::size_t bytes :
       {threshold - 1, threshold, threshold + 1, 4 * threshold}) {
    auto sbuf = p0.allocDevice(bytes);
    auto rbuf = p4.allocDevice(bytes);
    std::memset(sbuf.bytes.data(), static_cast<int>(bytes % 251), bytes);
    std::memset(rbuf.bytes.data(), 0, bytes);
    w.eng.spawn([](Proc& p, gpu::MemSpan b, std::size_t n) -> sim::Task<void> {
      auto req = co_await p.isend(b, Datatype::byte(), n, 4, 5);
      co_await p.wait(req);
    }(p0, sbuf, bytes));
    w.eng.spawn([](Proc& p, gpu::MemSpan b, std::size_t n) -> sim::Task<void> {
      auto req = co_await p.irecv(b, Datatype::byte(), n, 0, 5);
      co_await p.wait(req);
    }(p4, rbuf, bytes));
    w.eng.run();
    EXPECT_EQ(std::memcmp(rbuf.bytes.data(), sbuf.bytes.data(), bytes), 0)
        << bytes;
    p0.freeDevice(sbuf);
    p4.freeDevice(rbuf);
  }
}

TEST(Aggregate, RuntimeBreakdownSumsEngines) {
  RuntimeConfig cfg;
  cfg.scheme = schemes::Scheme::GpuSync;
  World w(cfg);
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto type = Datatype::vector(128, 4, 12, Datatype::float64());
  auto sbuf = p0.allocDevice(static_cast<std::size_t>(type->extent()));
  auto rbuf = p4.allocDevice(static_cast<std::size_t>(type->extent()));

  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.isend(b, t, 1, 4, 0);
    co_await p.wait(req);
  }(p0, sbuf, type));
  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.irecv(b, t, 1, 0, 0);
    co_await p.wait(req);
  }(p4, rbuf, type));
  w.eng.run();

  const auto total = w.rt.aggregateBreakdown();
  EXPECT_EQ(total.launching, p0.ddtEngine().breakdown().launching +
                                 p4.ddtEngine().breakdown().launching);
  EXPECT_GT(total.launching, 0u);
}

}  // namespace
}  // namespace dkf::mpi

namespace dkf::mpi {
namespace {

TEST(AnySource, ReceivesFromWhoeverSendsFirst) {
  World w;
  auto& p4 = w.rt.proc(4);
  auto rbuf1 = p4.allocDevice(128);
  auto rbuf2 = p4.allocDevice(128);

  for (int sender : {0, 1}) {
    auto& p = w.rt.proc(sender);
    auto sbuf = p.allocDevice(128);
    std::memset(sbuf.bytes.data(), 0x50 + sender, 128);
    w.eng.spawn([](Proc& proc, gpu::MemSpan b, int delay_us) -> sim::Task<void> {
      co_await proc.engine().delay(us(static_cast<std::uint64_t>(delay_us)));
      auto req = co_await proc.isend(b, ddt::Datatype::byte(), 128, 4, 7);
      co_await proc.wait(req);
    }(p, sbuf, sender == 0 ? 1 : 100));
  }
  w.eng.spawn([](Proc& p, gpu::MemSpan a, gpu::MemSpan b) -> sim::Task<void> {
    auto r1 = co_await p.irecv(a, ddt::Datatype::byte(), 128, kAnySource, 7);
    auto r2 = co_await p.irecv(b, ddt::Datatype::byte(), 128, kAnySource, 7);
    std::vector<RequestPtr> reqs{r1, r2};
    co_await p.waitall(std::move(reqs));
  }(p4, rbuf1, rbuf2));
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);
  // Rank 0 sends ~99 us before rank 1: first posted recv gets rank 0's data.
  EXPECT_EQ(rbuf1.bytes[0], std::byte{0x50});
  EXPECT_EQ(rbuf2.bytes[0], std::byte{0x51});
}

TEST(AnySource, WithAnyTagMatchesAnything) {
  World w;
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto sbuf = p0.allocDevice(64);
  auto rbuf = p4.allocDevice(64);
  std::memset(sbuf.bytes.data(), 0x77, 64);

  w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
    auto req = co_await p.isend(b, ddt::Datatype::byte(), 64, 4, 31337);
    co_await p.wait(req);
  }(p0, sbuf));
  w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
    auto req =
        co_await p.irecv(b, ddt::Datatype::byte(), 64, kAnySource, kAnyTag);
    co_await p.wait(req);
  }(p4, rbuf));
  w.eng.run();
  EXPECT_EQ(rbuf.bytes[63], std::byte{0x77});
}

}  // namespace
}  // namespace dkf::mpi
