// Batched message plane (MODEL.md §13): calendar-tier order equivalence,
// the DKF_AUDIT invariant checker, MatchTable / ArrivalQueue equivalence
// with the seed's linear scans, LinkBatcher coalescing semantics, and
// end-to-end determinism of the batched plane against the seed shadow —
// identical completion order and bytes, fault-free and under 12% loss.
//
// The determinism fuzz runs under bench::parallelFor; gtest assertions are
// not thread-safe, so workers record failure strings and the main thread
// asserts after the join.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/parallel.hpp"
#include "common/rng.hpp"
#include "ddt/datatype.hpp"
#include "fault/fault_plan.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/match_table.hpp"
#include "mpi/runtime.hpp"
#include "net/link_batcher.hpp"
#include "sim/engine.hpp"

namespace dkf {
namespace {

// ---- Calendar tier: exact (time, seq) order equivalence -----------------

/// Drive `eng` with a self-expanding event cascade and record the pop order
/// of event ids. Both tiers must produce the identical sequence.
std::vector<std::uint64_t> popOrder(sim::Engine& eng, std::uint64_t seed,
                                    std::size_t target) {
  std::vector<std::uint64_t> order;
  order.reserve(target);
  auto rng = std::make_shared<Rng>(seed);
  auto next_id = std::make_shared<std::uint64_t>(0);
  // Each callback records its id and fans out into 0..2 children at a
  // random future offset (same-time children included), so the queue
  // breathes across the engage/disengage thresholds instead of only
  // draining monotonically.
  struct Spawner {
    sim::Engine* eng;
    std::shared_ptr<Rng> rng;
    std::shared_ptr<std::uint64_t> next_id;
    std::vector<std::uint64_t>* order;
    std::size_t target;
    void fire(std::uint64_t id) const {
      order->push_back(id);
      if (*next_id >= target) return;
      const std::uint64_t kids = rng->below(3);
      for (std::uint64_t k = 0; k < kids && *next_id < target; ++k) {
        const std::uint64_t child = (*next_id)++;
        auto self = *this;
        eng->schedule(rng->below(512), [self, child] { self.fire(child); });
      }
    }
  };
  Spawner sp{&eng, rng, next_id, &order, target};
  for (std::size_t i = 0; i < 4096; ++i) {
    const std::uint64_t id = (*next_id)++;
    eng.scheduleAt(rng->below(4096), [sp, id] { sp.fire(id); });
  }
  eng.run();
  return order;
}

TEST(MsgPlaneCalendar, PopOrderIdenticalToHeapTier) {
  constexpr std::size_t kTarget = 50'000;
  sim::Engine heap_only;
  heap_only.setCalendarThreshold(0);  // calendar tier disabled
  sim::Engine tiered;
  tiered.setCalendarThreshold(512);  // force engage/disengage traffic
  const auto a = popOrder(heap_only, 0xC0FFEE, kTarget);
  const auto b = popOrder(tiered, 0xC0FFEE, kTarget);
  ASSERT_EQ(heap_only.queueTier(), sim::Engine::QueueTier::Heap);
  EXPECT_EQ(heap_only.calendarEngagements(), 0u);
  EXPECT_GT(tiered.calendarEngagements(), 0u);  // the tier actually switched
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b) << "calendar tier reordered events";
  EXPECT_EQ(heap_only.now(), tiered.now());
  EXPECT_EQ(heap_only.processedEvents(), tiered.processedEvents());
  EXPECT_GE(tiered.peakPending(), 512u);
}

TEST(MsgPlaneCalendar, DisengagesAfterDrain) {
  sim::Engine eng;
  eng.setCalendarThreshold(256);
  popOrder(eng, 7, 20'000);
  // Fully drained: whatever tier we ended in, the queue is empty and a
  // fresh small workload runs on the heap path again.
  EXPECT_EQ(eng.pendingEvents(), 0u);
  std::size_t fired = 0;
  eng.scheduleAt(eng.now() + 5, [&fired] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1u);
}

// ---- DKF_AUDIT invariant checker ----------------------------------------

TEST(MsgPlaneAudit, InvariantsHoldAcrossTierSwitches) {
  sim::Engine eng;
  eng.setCalendarThreshold(512);
  eng.setAudit(true);
  ASSERT_TRUE(eng.auditEnabled());
  // The audit runs after every step; a violated heap order, stale calendar
  // bucket, leaked slot or duplicate seq throws CheckFailure mid-run.
  EXPECT_NO_THROW(popOrder(eng, 0xAD17, 30'000));
  EXPECT_GT(eng.calendarEngagements(), 0u);
  EXPECT_NO_THROW(eng.auditInvariants());  // and on the drained queue
}

TEST(MsgPlaneAudit, EnvVarEnablesAtConstruction) {
  ::setenv("DKF_AUDIT", "1", 1);
  sim::Engine on;
  EXPECT_TRUE(on.auditEnabled());
  ::setenv("DKF_AUDIT", "0", 1);
  sim::Engine off;
  EXPECT_FALSE(off.auditEnabled());
  ::unsetenv("DKF_AUDIT");
}

// ---- MatchTable / ArrivalQueue vs the seed's linear scans ---------------

mpi::RequestPtr makeRecv(int peer, int tag) {
  auto r = std::make_shared<mpi::Request>();
  r->kind = mpi::Request::Kind::Recv;
  r->peer = peer;
  r->tag = tag;
  return r;
}

TEST(MsgPlaneMatchTable, FuzzMatchesPostOrderScan) {
  Rng rng(0x5CA7);
  mpi::MatchTable table;
  std::vector<mpi::RequestPtr> shadow;  // post order, the seed structure
  for (int iter = 0; iter < 20'000; ++iter) {
    if (shadow.empty() || rng.below(100) < 55) {
      const int peer =
          rng.below(8) == 0 ? mpi::kAnySource : static_cast<int>(rng.below(6));
      const int tag =
          rng.below(8) == 0 ? mpi::kAnyTag : static_cast<int>(rng.below(6));
      auto r = makeRecv(peer, tag);
      table.post(r);
      shadow.push_back(std::move(r));
    } else {
      const int src = static_cast<int>(rng.below(6));
      const int tag = static_cast<int>(rng.below(6));
      auto it = std::find_if(shadow.begin(), shadow.end(),
                             [&](const mpi::RequestPtr& r) {
                               return r->matches(src, tag);
                             });
      mpi::RequestPtr got = table.match(src, tag);
      if (it == shadow.end()) {
        ASSERT_EQ(got, nullptr) << "table matched; scan did not";
      } else {
        ASSERT_EQ(got.get(), it->get())
            << "earliest-posted winner differs from the linear scan";
        shadow.erase(it);
      }
      ASSERT_EQ(table.size(), shadow.size());
    }
  }
}

TEST(MsgPlaneMatchTable, ArrivalQueueFuzzMatchesArrivalOrderScan) {
  struct Arrived {
    int src, tag, value;
  };
  Rng rng(0xA221);
  mpi::ArrivalQueue<int> queue;
  std::vector<Arrived> shadow;  // arrival order
  int next_value = 0;
  for (int iter = 0; iter < 20'000; ++iter) {
    if (shadow.empty() || rng.below(100) < 55) {
      const int src = static_cast<int>(rng.below(6));
      const int tag = static_cast<int>(rng.below(6));
      queue.push(src, tag, next_value);
      shadow.push_back(Arrived{src, tag, next_value});
      ++next_value;
    } else {
      const int peer =
          rng.below(8) == 0 ? mpi::kAnySource : static_cast<int>(rng.below(6));
      const int tag =
          rng.below(8) == 0 ? mpi::kAnyTag : static_cast<int>(rng.below(6));
      auto it = std::find_if(shadow.begin(), shadow.end(),
                             [&](const Arrived& a) {
                               return (peer == mpi::kAnySource ||
                                       peer == a.src) &&
                                      (tag == mpi::kAnyTag || tag == a.tag);
                             });
      int got = -1;
      const bool took = queue.take(peer, tag, got);
      if (it == shadow.end()) {
        ASSERT_FALSE(took);
      } else {
        ASSERT_TRUE(took);
        ASSERT_EQ(got, it->value)
            << "earliest-arrival winner differs from the linear scan";
        shadow.erase(it);
      }
      ASSERT_EQ(queue.size(), shadow.size());
    }
  }
}

// ---- LinkBatcher: contiguous-seq coalescing, exact order ----------------

TEST(MsgPlaneBatcher, ContiguousSameTimeRunCoalescesIntoOneEvent) {
  sim::Engine eng;
  net::LinkBatcher batcher(eng);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    batcher.enqueue(100, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(batcher.deliveries(), 4u);
  EXPECT_EQ(batcher.armedEvents(), 1u);  // one heap event carried all four
  EXPECT_EQ(batcher.coalescedRuns(), 1u);
  EXPECT_EQ(batcher.coalescedDeliveries(), 3u);
  EXPECT_EQ(eng.now(), 100u);
}

TEST(MsgPlaneBatcher, ForeignEventBetweenReservedSeqsBlocksCoalescing) {
  // A foreign event scheduled between two enqueues takes the seq between
  // them; running the parked entries in one event would jump it. The
  // batcher must fire them separately with the foreign event in between.
  sim::Engine eng;
  net::LinkBatcher batcher(eng);
  std::vector<std::string> order;
  batcher.enqueue(100, [&order] { order.push_back("d0"); });
  eng.scheduleAt(100, [&order] { order.push_back("foreign"); });
  batcher.enqueue(100, [&order] { order.push_back("d1"); });
  eng.run();
  EXPECT_EQ(order, (std::vector<std::string>{"d0", "foreign", "d1"}));
  EXPECT_EQ(batcher.armedEvents(), 2u);
  EXPECT_EQ(batcher.coalescedDeliveries(), 0u);
}

TEST(MsgPlaneBatcher, WindowCoalescesNearbyTimesAtWindowEdge) {
  sim::Engine eng;
  net::LinkBatcher batcher(eng, ns(10));
  std::vector<std::pair<int, TimeNs>> fired;
  batcher.enqueue(100, [&] { fired.push_back({0, eng.now()}); });
  batcher.enqueue(104, [&] { fired.push_back({1, eng.now()}); });
  batcher.enqueue(109, [&] { fired.push_back({2, eng.now()}); });
  batcher.enqueue(200, [&] { fired.push_back({3, eng.now()}); });
  eng.run();
  ASSERT_EQ(fired.size(), 4u);
  // First three land together at head.time + W; the far one fires alone.
  EXPECT_EQ(fired[0].second, 110u);
  EXPECT_EQ(fired[1].second, 110u);
  EXPECT_EQ(fired[2].second, 110u);
  EXPECT_EQ(fired[3].second, 210u);
  EXPECT_EQ(batcher.armedEvents(), 2u);
  EXPECT_EQ(batcher.coalescedDeliveries(), 2u);
}

TEST(MsgPlaneBatcher, ReentrantEnqueueFromDeliveryIsDeferredNotLost) {
  sim::Engine eng;
  net::LinkBatcher batcher(eng);
  std::vector<int> order;
  batcher.enqueue(100, [&] {
    order.push_back(0);
    batcher.enqueue(150, [&order] { order.push_back(1); });
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(eng.now(), 150u);
  EXPECT_EQ(batcher.pending(), 0u);
}

// ---- End-to-end determinism: batched plane vs seed shadow ---------------

struct WorldTrace {
  std::vector<std::uint64_t> completion_order;  // (rank << 32) | tag
  std::vector<std::byte> recv_bytes;            // all ranks, concatenated
  TimeNs end_time{0};
  std::size_t processed_events{0};
};

sim::Task<void> traceWait(mpi::Proc& p, mpi::RequestPtr req,
                          std::uint64_t id,
                          std::vector<std::uint64_t>& order) {
  co_await p.wait(std::move(req));
  order.push_back(id);
}

sim::Task<void> tracedRank(mpi::Proc& p, int ranks, int msgs,
                           std::size_t msg_bytes, gpu::MemSpan sbuf,
                           gpu::MemSpan rbuf,
                           std::vector<std::uint64_t>& order) {
  const int me = p.rank();
  const int to = (me + 1) % ranks;
  const int from = (me + ranks - 1) % ranks;
  auto type = ddt::Datatype::byte();
  // Post everything back to back: all ranks issue at the same virtual
  // times, piling same-time deliveries onto shared links.
  for (int i = 0; i < msgs; ++i) {
    auto rr = co_await p.irecv(rbuf.subspan(i * msg_bytes, msg_bytes), type,
                               msg_bytes, from, i);
    p.engine().spawn(traceWait(
        p, std::move(rr),
        (static_cast<std::uint64_t>(me) << 32) | static_cast<std::uint64_t>(i),
        order));
  }
  for (int i = 0; i < msgs; ++i) {
    auto sr = co_await p.isend(sbuf.subspan(i * msg_bytes, msg_bytes), type,
                               msg_bytes, to, i);
    p.engine().spawn(traceWait(p, std::move(sr),
                               (static_cast<std::uint64_t>(me) << 32) |
                                   static_cast<std::uint64_t>(i) | (1ull << 63),
                               order));
  }
}

WorldTrace runTracedWorld(bool batched, double loss, std::uint64_t seed) {
  constexpr int kMsgs = 24;
  constexpr std::size_t kBytes = 512;  // eager on lassen
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), 2);
  std::optional<fault::FaultPlan> plan;
  mpi::RuntimeConfig cfg;
  cfg.batched_message_plane = batched;
  cfg.delivery_batching = batched;
  if (loss > 0.0) {
    fault::FaultSpec fs;
    fs.seed = seed;
    fs.data_loss = loss;
    fs.control_loss = loss;
    plan.emplace(eng, fs);
    cluster.setFaultPlan(&*plan);
    cfg.reliability.enabled = true;
    cfg.reliability.base_timeout = us(40);
    cfg.reliability.max_timeout = us(2000);
    cfg.reliability.max_retries = 60;
    eng.setWatchdog(sec(5));
  }
  mpi::Runtime rt(cluster, cfg);
  const int ranks = rt.worldSize();

  WorldTrace trace;
  std::vector<gpu::MemSpan> sbufs, rbufs;
  for (int r = 0; r < ranks; ++r) {
    auto& p = rt.proc(r);
    sbufs.push_back(p.allocDevice(kMsgs * kBytes));
    rbufs.push_back(p.allocDevice(kMsgs * kBytes));
    Rng fill(seed ^ static_cast<std::uint64_t>(r));
    for (auto& b : sbufs.back().bytes) {
      b = static_cast<std::byte>(fill.below(256));
    }
    std::memset(rbufs.back().bytes.data(), 0, kMsgs * kBytes);
  }
  for (int r = 0; r < ranks; ++r) {
    eng.spawn(tracedRank(rt.proc(r), ranks, kMsgs, kBytes, sbufs[r], rbufs[r],
                         trace.completion_order));
  }
  eng.run();
  EXPECT_EQ(eng.unfinishedTasks(), 0u);

  for (int r = 0; r < ranks; ++r) {
    trace.recv_bytes.insert(trace.recv_bytes.end(), rbufs[r].bytes.begin(),
                            rbufs[r].bytes.end());
  }
  trace.end_time = eng.now();
  trace.processed_events = eng.processedEvents();
  return trace;
}

/// Compare the batched plane against the shadow for one seed; returns a
/// diagnostic string (empty on success). Runs from parallelFor workers, so
/// no gtest assertions here.
std::string compareModes(double loss, std::uint64_t seed) {
  const WorldTrace batched = runTracedWorld(true, loss, seed);
  const WorldTrace shadow = runTracedWorld(false, loss, seed);
  std::ostringstream err;
  if (batched.completion_order != shadow.completion_order) {
    err << "completion order diverged (seed " << seed << ", loss " << loss
        << "); ";
  }
  if (batched.recv_bytes != shadow.recv_bytes) {
    err << "received bytes diverged (seed " << seed << ", loss " << loss
        << "); ";
  }
  if (batched.end_time != shadow.end_time) {
    err << "virtual end time diverged: " << batched.end_time << " vs "
        << shadow.end_time << " (seed " << seed << ", loss " << loss << "); ";
  }
  if (batched.processed_events > shadow.processed_events) {
    err << "batched plane processed MORE events than the shadow (seed "
        << seed << "); ";
  }
  return err.str();
}

TEST(MsgPlaneDeterminism, BatchedMatchesShadowFaultFree) {
  EXPECT_EQ(compareModes(0.0, 0x00D0), "");
}

TEST(MsgPlaneDeterminism, BatchedMatchesShadowUnderLoss) {
  EXPECT_EQ(compareModes(0.12, 0x10551), "");
}

TEST(MsgPlaneDeterminism, FuzzSeedsParallel) {
  constexpr std::size_t kIters = 6;
  std::mutex mu;
  std::vector<std::string> failures;
  bench::parallelFor(kIters, [&](std::size_t i) {
    const std::uint64_t seed = 0xFA5D + i * 7919;
    std::string err = compareModes(0.0, seed);
    err += compareModes(0.12, seed);
    if (!err.empty()) {
      const std::lock_guard<std::mutex> lock(mu);
      failures.push_back(err);
    }
  });
  for (const std::string& f : failures) ADD_FAILURE() << f;
}

}  // namespace
}  // namespace dkf
