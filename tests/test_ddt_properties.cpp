// Algebraic property sweeps for the datatype engine (TEST_P): invariants
// that must hold for EVERY constructor — size/extent laws, flattening
// consistency between counts, coalescing idempotence, and containment.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.hpp"
#include "ddt/datatype.hpp"
#include "ddt/layout.hpp"

namespace dkf::ddt {
namespace {

/// A catalog of representative types, one per constructor family.
std::vector<std::pair<std::string, DatatypePtr>> catalog() {
  std::vector<std::pair<std::string, DatatypePtr>> types;
  types.emplace_back("primitive", Datatype::float64());
  types.emplace_back("contiguous", Datatype::contiguous(7, Datatype::int32()));
  types.emplace_back("vector",
                     Datatype::vector(5, 3, 8, Datatype::float32()));
  types.emplace_back("hvector",
                     Datatype::hvector(4, 2, 40, Datatype::float64()));
  {
    const std::array<std::size_t, 3> lens{1, 2, 3};
    const std::array<std::int64_t, 3> displs{0, 4, 9};
    types.emplace_back("indexed",
                       Datatype::indexed(lens, displs, Datatype::int32()));
  }
  {
    const std::array<std::int64_t, 3> displs{0, 3, 7};
    types.emplace_back(
        "indexed_block",
        Datatype::indexedBlock(2, displs, Datatype::float32()));
  }
  {
    const std::array<std::size_t, 2> lens{1, 2};
    const std::array<std::int64_t, 2> displs{0, 16};
    const std::array<DatatypePtr, 2> members{Datatype::float64(),
                                             Datatype::int32()};
    types.emplace_back("struct", Datatype::struct_(lens, displs, members));
  }
  {
    const std::array<std::size_t, 2> sizes{6, 8};
    const std::array<std::size_t, 2> sub{3, 4};
    const std::array<std::size_t, 2> starts{2, 1};
    types.emplace_back("subarray",
                       Datatype::subarray(sizes, sub, starts,
                                          Datatype::Order::C,
                                          Datatype::float64()));
  }
  types.emplace_back(
      "resized", Datatype::resized(0, 100, Datatype::contiguous(
                                               3, Datatype::int32())));
  types.emplace_back(
      "nested", Datatype::vector(3, 1, 2,
                                 Datatype::vector(2, 2, 5,
                                                  Datatype::float32())));
  return types;
}

class TypeLaw : public ::testing::TestWithParam<std::size_t> {
 public:
  static std::vector<std::pair<std::string, DatatypePtr>> types_;
  const DatatypePtr& type() const { return types_[GetParam()].second; }
  const std::string& name() const { return types_[GetParam()].first; }
};
std::vector<std::pair<std::string, DatatypePtr>> TypeLaw::types_ = catalog();

TEST_P(TypeLaw, SizeNeverExceedsExtent) {
  // With non-negative displacements and no overlap, data fits the span.
  EXPECT_LE(type()->size(), type()->extent()) << name();
}

TEST_P(TypeLaw, FlattenSizeMatchesTypeSize) {
  for (std::size_t count : {1u, 2u, 5u}) {
    const auto layout = flatten(type(), count);
    EXPECT_EQ(layout.size(), count * type()->size()) << name();
    EXPECT_EQ(layout.extent(), count * type()->extent()) << name();
  }
}

TEST_P(TypeLaw, CountedFlattenIsShiftedUnion) {
  // flatten(type, 2)'s bytes == flatten(type,1) plus the same layout
  // shifted by extent (after coalescing, compare via membership).
  const auto one = flatten(type(), 1);
  const auto two = flatten(type(), 2);
  const auto extent = static_cast<std::int64_t>(type()->extent());

  auto covered = [](const Layout& l, std::int64_t off) {
    for (const auto& seg : l.materialize()) {
      if (off >= seg.offset &&
          off < seg.offset + static_cast<std::int64_t>(seg.len)) {
        return true;
      }
    }
    return false;
  };
  for (const auto& seg : one.materialize()) {
    for (std::int64_t o = seg.offset;
         o < seg.offset + static_cast<std::int64_t>(seg.len); ++o) {
      EXPECT_TRUE(covered(two, o)) << name() << " offset " << o;
      EXPECT_TRUE(covered(two, o + extent))
          << name() << " shifted offset " << o + extent;
    }
  }
}

TEST_P(TypeLaw, SegmentsSortedDisjointCoalesced) {
  const auto layout = flatten(type(), 3);
  const auto& segs = layout.materialize();
  for (std::size_t i = 1; i < segs.size(); ++i) {
    // Strictly increasing with a gap (adjacent runs must have merged).
    EXPECT_GT(segs[i].offset,
              segs[i - 1].offset + static_cast<std::int64_t>(segs[i - 1].len))
        << name();
  }
  for (const auto& s : segs) EXPECT_GT(s.len, 0u) << name();
}

TEST_P(TypeLaw, ContiguousWrapPreservesLayout) {
  // contiguous(1, T) flattens identically to T.
  const auto wrapped = Datatype::contiguous(1, type());
  EXPECT_EQ(flatten(wrapped, 1).materialize(), flatten(type(), 1).materialize())
      << name();
  EXPECT_EQ(wrapped->size(), type()->size());
}

TEST_P(TypeLaw, VectorOfOneEqualsCountedFlatten) {
  // vector(n, 1, 1, T) == n back-to-back copies of T.
  const auto vec = Datatype::vector(3, 1, 1, type());
  EXPECT_EQ(flatten(vec, 1).materialize(), flatten(type(), 3).materialize())
      << name();
}

TEST_P(TypeLaw, DistinctTypesGetDistinctIds) {
  const auto wrapped = Datatype::contiguous(1, type());
  EXPECT_NE(wrapped->id(), type()->id());
}

INSTANTIATE_TEST_SUITE_P(
    AllConstructors, TypeLaw,
    ::testing::Range<std::size_t>(0, catalog().size()),
    [](const ::testing::TestParamInfo<std::size_t>& pinfo) {
      return TypeLaw::types_[pinfo.param].first;
    });

}  // namespace
}  // namespace dkf::ddt
