// Unit tests for the discrete-event engine, coroutine tasks, and sync
// primitives.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace dkf::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(30, [&] { order.push_back(3); });
  eng.schedule(10, [&] { order.push_back(1); });
  eng.schedule(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule(100, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedSchedulingAdvancesClock) {
  Engine eng;
  TimeNs inner_time = 0;
  eng.schedule(5, [&] {
    eng.schedule(7, [&] { inner_time = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(inner_time, 12u);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.schedule(10, [] {});
  eng.run();
  EXPECT_THROW(eng.scheduleAt(5, [] {}), CheckFailure);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine eng;
  int fired = 0;
  eng.schedule(10, [&] { ++fired; });
  eng.schedule(20, [&] { ++fired; });
  eng.runUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 15u);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ProcessedEventCount) {
  Engine eng;
  for (int i = 0; i < 4; ++i) eng.schedule(i, [] {});
  eng.run();
  EXPECT_EQ(eng.processedEvents(), 4u);
}

Task<void> delayTwice(Engine& eng, std::vector<TimeNs>& stamps) {
  co_await eng.delay(us(1));
  stamps.push_back(eng.now());
  co_await eng.delay(us(2));
  stamps.push_back(eng.now());
}

TEST(Task, DelaysAdvanceVirtualTime) {
  Engine eng;
  std::vector<TimeNs> stamps;
  eng.spawn(delayTwice(eng, stamps));
  eng.run();
  EXPECT_EQ(stamps, (std::vector<TimeNs>{us(1), us(3)}));
}

Task<int> childValue(Engine& eng) {
  co_await eng.delay(10);
  co_return 42;
}

Task<void> parentAwaits(Engine& eng, int& out) {
  out = co_await childValue(eng);
}

TEST(Task, AwaitChildPropagatesValue) {
  Engine eng;
  int out = 0;
  eng.spawn(parentAwaits(eng, out));
  eng.run();
  EXPECT_EQ(out, 42);
}

Task<void> throwsAfterDelay(Engine& eng) {
  co_await eng.delay(5);
  throw std::runtime_error("boom");
}

TEST(Task, SpawnedExceptionSurfacesFromRun) {
  Engine eng;
  eng.spawn(throwsAfterDelay(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

Task<void> awaitsThrowingChild(Engine& eng, bool& caught) {
  try {
    co_await throwsAfterDelay(eng);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ParentCanCatchChildException) {
  Engine eng;
  bool caught = false;
  eng.spawn(awaitsThrowingChild(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

Task<void> waitOnGate(Engine&, Gate& g, int& hits) {
  co_await g.wait();
  ++hits;
}

TEST(Gate, ReleasesAllWaitersOnce) {
  Engine eng;
  Gate gate(eng);
  int hits = 0;
  for (int i = 0; i < 3; ++i) eng.spawn(waitOnGate(eng, gate, hits));
  eng.run();
  EXPECT_EQ(hits, 0);
  gate.open();
  eng.run();
  EXPECT_EQ(hits, 3);
  gate.open();  // idempotent
  eng.run();
  EXPECT_EQ(hits, 3);
}

Task<void> waitOpenGate(Engine& eng, int& hits) {
  Gate g(eng);
  g.open();
  co_await g.wait();  // must not suspend forever
  ++hits;
}

TEST(Gate, OpenGateDoesNotBlock) {
  Engine eng;
  int hits = 0;
  eng.spawn(waitOpenGate(eng, hits));
  eng.run();
  EXPECT_EQ(hits, 1);
}

Task<void> condWaiter(CondVar& cv, int& wakeups) {
  co_await cv.wait();
  ++wakeups;
  co_await cv.wait();
  ++wakeups;
}

TEST(CondVar, NotifyWakesOnlyCurrentWaiters) {
  Engine eng;
  CondVar cv(eng);
  int wakeups = 0;
  eng.spawn(condWaiter(cv, wakeups));
  eng.run();
  EXPECT_EQ(cv.waiterCount(), 1u);
  cv.notifyAll();
  eng.run();
  EXPECT_EQ(wakeups, 1);  // re-waiting, not woken by the first notify
  cv.notifyAll();
  eng.run();
  EXPECT_EQ(wakeups, 2);
}

Task<void> latchWorker(Engine& eng, Latch& l, DurationNs d) {
  co_await eng.delay(d);
  l.countDown();
}

Task<void> latchJoiner(Latch& l, TimeNs& done_at, Engine& eng) {
  co_await l.wait();
  done_at = eng.now();
}

TEST(Latch, ReleasesAtZero) {
  Engine eng;
  Latch latch(eng, 3);
  TimeNs done_at = 0;
  eng.spawn(latchJoiner(latch, done_at, eng));
  eng.spawn(latchWorker(eng, latch, 10));
  eng.spawn(latchWorker(eng, latch, 30));
  eng.spawn(latchWorker(eng, latch, 20));
  eng.run();
  EXPECT_EQ(done_at, 30u);
  EXPECT_EQ(latch.remaining(), 0u);
}

TEST(Latch, ZeroCountOpensImmediately) {
  Engine eng;
  Latch latch(eng, 0);
  TimeNs done_at = 99;
  eng.spawn(latchJoiner(latch, done_at, eng));
  eng.run();
  EXPECT_EQ(done_at, 0u);
}

TEST(PollUntil, PollsAtInterval) {
  Engine eng;
  bool flag = false;
  eng.schedule(us(10), [&] { flag = true; });
  TimeNs done_at = 0;
  eng.spawn([](Engine& e, bool& f, TimeNs& done) -> Task<void> {
    co_await pollUntil(e, [&f] { return f; }, us(3));
    done = e.now();
  }(eng, flag, done_at));
  eng.run();
  // Polls at 3,6,9,12 us; sees the flag at 12 us.
  EXPECT_EQ(done_at, us(12));
}

TEST(Determinism, TwoIdenticalRunsMatch) {
  auto runOnce = [] {
    Engine eng;
    std::vector<TimeNs> stamps;
    Gate gate(eng);
    eng.spawn([](Engine& e, Gate& g, std::vector<TimeNs>& s) -> Task<void> {
      co_await e.delay(7);
      s.push_back(e.now());
      g.open();
    }(eng, gate, stamps));
    eng.spawn([](Engine& e, Gate& g, std::vector<TimeNs>& s) -> Task<void> {
      co_await g.wait();
      co_await e.delay(5);
      s.push_back(e.now());
    }(eng, gate, stamps));
    eng.run();
    return stamps;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace dkf::sim

namespace dkf::sim {
namespace {

TEST(EngineStress, HundredThousandRandomEventsRunInOrder) {
  // Property: regardless of insertion order, execution times are monotone
  // and every event runs exactly once.
  Engine eng;
  dkf::Rng rng(2024);
  constexpr int kEvents = 100'000;
  std::size_t executed = 0;
  TimeNs last = 0;
  bool monotone = true;
  for (int i = 0; i < kEvents; ++i) {
    eng.schedule(rng.below(1'000'000), [&] {
      ++executed;
      monotone = monotone && eng.now() >= last;
      last = eng.now();
    });
  }
  eng.run();
  EXPECT_EQ(executed, static_cast<std::size_t>(kEvents));
  EXPECT_TRUE(monotone);
  EXPECT_EQ(eng.processedEvents(), static_cast<std::size_t>(kEvents));
}

TEST(EngineStress, CascadingSpawnsComplete) {
  // Tasks that spawn further tasks down a chain must all be reaped.
  Engine eng;
  int completed = 0;
  std::function<Task<void>(int)> makeChain = [&](int depth) -> Task<void> {
    return [](Engine& e, int d, int& done,
              std::function<Task<void>(int)>& rec) -> Task<void> {
      co_await e.delay(10);
      if (d > 0) e.spawn(rec(d - 1));
      ++done;
    }(eng, depth, completed, makeChain);
  };
  eng.spawn(makeChain(500));
  eng.run();
  EXPECT_EQ(completed, 501);
  EXPECT_EQ(eng.unfinishedTasks(), 0u);
}

}  // namespace
}  // namespace dkf::sim
