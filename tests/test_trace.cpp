// Tracer: track management, span/instant/counter recording, JSON export,
// and the GPU/fabric integration hooks.
#include <gtest/gtest.h>

#include <sstream>

#include "gpu/gpu.hpp"
#include "hw/machines.hpp"
#include "net/fabric.hpp"
#include "sim/trace.hpp"

namespace dkf::sim {
namespace {

TEST(Tracer, DisabledTracerDropsEverything) {
  Tracer t;
  EXPECT_FALSE(t.isEnabled());
  const auto track = t.track("cpu0");
  t.span(track, "work", 0, 100);
  t.instant(track, "tick", 50);
  t.counter("queue", 10, 3.0);
  EXPECT_EQ(t.eventCount(), 0u);
}

TEST(Tracer, EnabledTracerRecords) {
  auto t = Tracer::enabled();
  const auto track = t.track("cpu0");
  t.span(track, "work", 0, 100);
  t.instant(track, "tick", 50);
  t.counter("queue", 10, 3.0);
  EXPECT_EQ(t.eventCount(), 3u);
}

TEST(Tracer, TrackNamesAreStable) {
  auto t = Tracer::enabled();
  const auto a = t.track("alpha");
  const auto b = t.track("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.track("alpha"), a);  // same name -> same id
}

TEST(Tracer, BackwardsSpanThrows) {
  auto t = Tracer::enabled();
  const auto track = t.track("x");
  EXPECT_THROW(t.span(track, "bad", 100, 50), CheckFailure);
}

TEST(Tracer, JsonContainsEventsAndMetadata) {
  auto t = Tracer::enabled();
  const auto track = t.track("rank0.cpu");
  t.span(track, "kernel launch", us(1), us(11), "kernel");
  t.instant(track, "RTS", us(5));
  t.counter("pending", us(2), 7.0);
  std::ostringstream os;
  t.exportJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("rank0.cpu"), std::string::npos);
  EXPECT_NE(json.find("kernel launch"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("\"dur\":10.000"), std::string::npos);
}

TEST(Tracer, JsonEscapesSpecialCharacters) {
  auto t = Tracer::enabled();
  const auto track = t.track("na\"me");
  t.span(track, "with\\slash", 0, 1);
  std::ostringstream os;
  t.exportJson(os);
  EXPECT_NE(os.str().find("na\\\"me"), std::string::npos);
  EXPECT_NE(os.str().find("with\\\\slash"), std::string::npos);
}

TEST(TraceSpan, RaiiHelperRecordsOnce) {
  auto t = Tracer::enabled();
  const auto track = t.track("x");
  TraceSpan span(t, track, "op", 10);
  span.finish(20);
  span.finish(30);  // idempotent
  EXPECT_EQ(t.eventCount(), 1u);
}

TEST(TraceIntegration, GpuKernelsEmitStreamSpans) {
  Engine eng;
  auto machine = hw::lassen();
  gpu::Gpu gpu(eng, machine.node, 0);
  auto tracer = Tracer::enabled();
  gpu.setTracer(&tracer);

  auto layout = std::make_shared<const ddt::Layout>(ddt::flatten(
      ddt::Datatype::contiguous(4096, ddt::Datatype::byte()), 1));
  auto src = gpu.memory().allocate(4096);
  auto dst = gpu.memory().allocate(4096);
  gpu.launchKernel(0, gpu::Gpu::Op{gpu::Gpu::Op::Kind::Pack, layout, nullptr,
                                   src.bytes, dst.bytes, nullptr});
  gpu.memcpyAsync(0, dst, src);
  eng.run();
  EXPECT_EQ(tracer.eventCount(), 2u);
  std::ostringstream os;
  tracer.exportJson(os);
  EXPECT_NE(os.str().find("gpu0.stream0"), std::string::npos);
  EXPECT_NE(os.str().find("kernel[1 ops"), std::string::npos);
  EXPECT_NE(os.str().find("memcpy[4096 B]"), std::string::npos);
}

TEST(TraceIntegration, FabricTransfersEmitChannelSpans) {
  Engine eng;
  auto machine = hw::lassen();
  net::Fabric fabric(eng, machine, 2);
  auto tracer = Tracer::enabled();
  fabric.setTracer(&tracer);

  std::vector<std::byte> src(1024), dst(1024);
  fabric.sendData(0, 1, gpu::MemSpan::host(src), gpu::MemSpan::host(dst),
                  nullptr);
  fabric.sendControl(1, 0, nullptr);
  eng.run();
  EXPECT_EQ(tracer.eventCount(), 2u);
  std::ostringstream os;
  tracer.exportJson(os);
  EXPECT_NE(os.str().find("fabric.0->1"), std::string::npos);
  EXPECT_NE(os.str().find("data[1024 B]"), std::string::npos);
  EXPECT_NE(os.str().find("ctrl[64 B]"), std::string::npos);
}

}  // namespace
}  // namespace dkf::sim
