// End-to-end MPI runtime tests: protocol correctness (eager, RGET, RPUT,
// DirectIPC), data integrity for contiguous and derived-datatype transfers
// under every DDT-processing scheme, unexpected messages, explicit
// pack/unpack, barriers, and determinism.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "ddt/pack.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"

namespace dkf::mpi {
namespace {

using ddt::Datatype;

void fillPattern(gpu::MemSpan span, std::uint64_t seed) {
  Rng rng(seed);
  for (auto& b : span.bytes) b = static_cast<std::byte>(rng.below(256));
}

struct World {
  World(hw::MachineSpec machine, std::size_t nodes, RuntimeConfig cfg = {})
      : cluster(eng, std::move(machine), nodes), rt(cluster, cfg) {}

  sim::Engine eng;
  hw::Cluster cluster;
  Runtime rt;
};

// ---- Contiguous transfers over each protocol ----

class ContigTransfer
    : public ::testing::TestWithParam<std::tuple<std::size_t, Protocol>> {};

TEST_P(ContigTransfer, DeliversExactBytesInterNode) {
  const auto [bytes, rndv] = GetParam();
  RuntimeConfig cfg;
  cfg.scheme = schemes::Scheme::Proposed;
  cfg.rendezvous = rndv;
  World w(hw::lassen(), 2, cfg);

  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);  // first GPU of node 1
  auto sbuf = p0.allocDevice(std::max<std::size_t>(bytes, 1));
  auto rbuf = p4.allocDevice(std::max<std::size_t>(bytes, 1));
  fillPattern(sbuf, 42);

  auto type = Datatype::byte();
  w.eng.spawn([](Proc& p, gpu::MemSpan buf, ddt::DatatypePtr t,
                 std::size_t n) -> sim::Task<void> {
    auto req = co_await p.isend(buf, t, n, 4, 7);
    co_await p.wait(req);
  }(p0, sbuf, type, bytes));
  w.eng.spawn([](Proc& p, gpu::MemSpan buf, ddt::DatatypePtr t,
                 std::size_t n) -> sim::Task<void> {
    auto req = co_await p.irecv(buf, t, n, 0, 7);
    co_await p.wait(req);
  }(p4, rbuf, type, bytes));
  w.eng.run();

  EXPECT_EQ(std::memcmp(rbuf.bytes.data(), sbuf.bytes.data(), bytes), 0);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndProtocols, ContigTransfer,
    ::testing::Combine(
        // 1 KiB is eager; 64 KiB / 1 MiB exercise rendezvous.
        ::testing::Values<std::size_t>(1024, 65536, 1 << 20),
        ::testing::Values(Protocol::RGet, Protocol::RPut)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, Protocol>>& i) {
      return "b" + std::to_string(std::get<0>(i.param)) +
             (std::get<1>(i.param) == Protocol::RGet ? "_rget" : "_rput");
    });

// ---- Derived-datatype transfers under every scheme ----

class SchemeTransfer : public ::testing::TestWithParam<schemes::Scheme> {};

TEST_P(SchemeTransfer, VectorColumnExchangeInterNode) {
  RuntimeConfig cfg;
  cfg.scheme = GetParam();
  World w(hw::lassen(), 2, cfg);

  // 256 x 256 double matrix; exchange 4 columns.
  constexpr std::size_t kRows = 256, kCols = 256, kNCols = 4;
  auto type = Datatype::vector(kRows, kNCols, kCols, Datatype::float64());
  const std::size_t matrix_bytes = kRows * kCols * 8;

  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto smat = p0.allocDevice(matrix_bytes);
  auto rmat = p4.allocDevice(matrix_bytes);
  fillPattern(smat, 7);
  std::memset(rmat.bytes.data(), 0, matrix_bytes);

  w.eng.spawn([](Proc& p, gpu::MemSpan buf, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.isend(buf, t, 1, 4, 0);
    co_await p.wait(req);
  }(p0, smat, type));
  w.eng.spawn([](Proc& p, gpu::MemSpan buf, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.irecv(buf, t, 1, 0, 0);
    co_await p.wait(req);
  }(p4, rmat, type));
  w.eng.run();

  // Validate against the host reference pack/unpack.
  const auto layout = ddt::flatten(type, 1);
  std::vector<std::byte> expect(matrix_bytes, std::byte{0});
  std::vector<std::byte> packed(layout.size());
  ddt::packCpu(layout, smat.bytes, packed);
  ddt::unpackCpu(layout, packed, expect);
  EXPECT_EQ(std::memcmp(rmat.bytes.data(), expect.data(), matrix_bytes), 0)
      << schemes::schemeName(GetParam());
}

TEST_P(SchemeTransfer, SparseIndexedExchangeInterNode) {
  RuntimeConfig cfg;
  cfg.scheme = GetParam();
  World w(hw::abci(), 2, cfg);

  // Sparse indexed type: 300 blocks of 2 doubles with gaps.
  constexpr std::size_t kBlocks = 300;
  std::vector<std::size_t> lens(kBlocks, 2);
  std::vector<std::int64_t> displs(kBlocks);
  for (std::size_t i = 0; i < kBlocks; ++i)
    displs[i] = static_cast<std::int64_t>(i * 5);
  auto type = Datatype::indexed(lens, displs, Datatype::float64());
  const std::size_t region = static_cast<std::size_t>(type->extent());

  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto sbuf = p0.allocDevice(region);
  auto rbuf = p4.allocDevice(region);
  fillPattern(sbuf, 99);
  std::memset(rbuf.bytes.data(), 0, region);

  w.eng.spawn([](Proc& p, gpu::MemSpan buf, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.isend(buf, t, 1, 4, 3);
    co_await p.wait(req);
  }(p0, sbuf, type));
  w.eng.spawn([](Proc& p, gpu::MemSpan buf, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.irecv(buf, t, 1, 0, 3);
    co_await p.wait(req);
  }(p4, rbuf, type));
  w.eng.run();

  const auto layout = ddt::flatten(type, 1);
  for (const auto& seg : layout.materialize()) {
    ASSERT_EQ(std::memcmp(rbuf.bytes.data() + seg.offset,
                          sbuf.bytes.data() + seg.offset, seg.len),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeTransfer,
    ::testing::ValuesIn(std::begin(schemes::kAllSchemes),
                        std::end(schemes::kAllSchemes)),
    [](const ::testing::TestParamInfo<schemes::Scheme>& i) {
      std::string n{schemes::schemeName(i.param)};
      for (auto& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ---- DirectIPC (intra-node zero-copy) ----

TEST(DirectIpc, IntraNodeStridedExchangeSkipsPacking) {
  RuntimeConfig cfg;
  cfg.scheme = schemes::Scheme::Proposed;
  cfg.enable_direct_ipc = true;
  World w(hw::lassen(), 1, cfg);

  auto type = Datatype::vector(128, 2, 8, Datatype::float64());
  auto& p0 = w.rt.proc(0);
  auto& p1 = w.rt.proc(1);
  const auto region = static_cast<std::size_t>(type->extent());
  auto sbuf = p0.allocDevice(region);
  auto rbuf = p1.allocDevice(region);
  fillPattern(sbuf, 1);
  std::memset(rbuf.bytes.data(), 0, region);

  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.isend(b, t, 1, 1, 0);
    co_await p.wait(req);
  }(p0, sbuf, type));
  w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
    auto req = co_await p.irecv(b, t, 1, 0, 0);
    co_await p.wait(req);
  }(p1, rbuf, type));
  w.eng.run();

  const auto layout = ddt::flatten(type, 1);
  for (const auto& seg : layout.materialize()) {
    ASSERT_EQ(std::memcmp(rbuf.bytes.data() + seg.offset,
                          sbuf.bytes.data() + seg.offset, seg.len),
              0);
  }
}

// ---- Unexpected messages and tag matching ----

TEST(Matching, UnexpectedEagerIsBufferedUntilRecvPosted) {
  World w(hw::lassen(), 2, RuntimeConfig{});
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto sbuf = p0.allocDevice(512);
  auto rbuf = p4.allocDevice(512);
  fillPattern(sbuf, 5);

  w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
    auto req = co_await p.isend(b, Datatype::byte(), 512, 4, 9);
    co_await p.wait(req);
  }(p0, sbuf));
  // Receiver posts long after the message has arrived.
  w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
    co_await p.engine().delay(ms(1));
    auto req = co_await p.irecv(b, Datatype::byte(), 512, 0, 9);
    co_await p.wait(req);
  }(p4, rbuf));
  w.eng.run();
  EXPECT_EQ(std::memcmp(rbuf.bytes.data(), sbuf.bytes.data(), 512), 0);
}

TEST(Matching, TagsSeparateMessageStreams) {
  World w(hw::lassen(), 2, RuntimeConfig{});
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto a = p0.allocDevice(64);
  auto b = p0.allocDevice(64);
  auto ra = p4.allocDevice(64);
  auto rb = p4.allocDevice(64);
  std::memset(a.bytes.data(), 0xAA, 64);
  std::memset(b.bytes.data(), 0xBB, 64);

  w.eng.spawn([](Proc& p, gpu::MemSpan x, gpu::MemSpan y) -> sim::Task<void> {
    auto r1 = co_await p.isend(x, Datatype::byte(), 64, 4, 1);
    auto r2 = co_await p.isend(y, Datatype::byte(), 64, 4, 2);
    std::vector<RequestPtr> reqs{r1, r2};
    co_await p.waitall(std::move(reqs));
  }(p0, a, b));
  w.eng.spawn([](Proc& p, gpu::MemSpan x, gpu::MemSpan y) -> sim::Task<void> {
    // Post in reverse tag order: matching must be by tag, not arrival.
    auto r2 = co_await p.irecv(y, Datatype::byte(), 64, 0, 2);
    auto r1 = co_await p.irecv(x, Datatype::byte(), 64, 0, 1);
    std::vector<RequestPtr> reqs{r1, r2};
    co_await p.waitall(std::move(reqs));
  }(p4, ra, rb));
  w.eng.run();
  EXPECT_EQ(ra.bytes[0], std::byte{0xAA});
  EXPECT_EQ(rb.bytes[0], std::byte{0xBB});
}

TEST(Matching, AnyTagReceives) {
  World w(hw::lassen(), 2, RuntimeConfig{});
  auto& p0 = w.rt.proc(0);
  auto& p4 = w.rt.proc(4);
  auto sbuf = p0.allocDevice(128);
  auto rbuf = p4.allocDevice(128);
  std::memset(sbuf.bytes.data(), 0x5C, 128);

  w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
    auto req = co_await p.isend(b, Datatype::byte(), 128, 4, 1234);
    co_await p.wait(req);
  }(p0, sbuf));
  w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
    auto req = co_await p.irecv(b, Datatype::byte(), 128, 0, kAnyTag);
    co_await p.wait(req);
  }(p4, rbuf));
  w.eng.run();
  EXPECT_EQ(rbuf.bytes[127], std::byte{0x5C});
}

// ---- Explicit pack/unpack (Algorithm 1 building blocks) ----

TEST(ExplicitPack, PackThenUnpackRoundTrips) {
  World w(hw::lassen(), 1, RuntimeConfig{});
  auto& p = w.rt.proc(0);
  auto type = Datatype::vector(16, 4, 8, Datatype::float64());
  const auto layout = ddt::flatten(type, 1);
  auto origin = p.allocDevice(static_cast<std::size_t>(type->extent()));
  auto packed = p.allocDevice(layout.size());
  auto restored = p.allocDevice(static_cast<std::size_t>(type->extent()));
  fillPattern(origin, 31);
  std::memset(restored.bytes.data(), 0, restored.size());

  w.eng.spawn([](Proc& proc, gpu::MemSpan o, gpu::MemSpan pk, gpu::MemSpan r,
                 ddt::DatatypePtr t) -> sim::Task<void> {
    co_await proc.pack(o, t, 1, pk);
    co_await proc.unpack(pk, r, t, 1);
  }(p, origin, packed, restored, type));
  w.eng.run();

  for (const auto& seg : layout.materialize()) {
    ASSERT_EQ(std::memcmp(restored.bytes.data() + seg.offset,
                          origin.bytes.data() + seg.offset, seg.len),
              0);
  }
}

// ---- Barrier ----

TEST(Barrier, ReleasesAllRanksTogether) {
  World w(hw::lassen(), 2, RuntimeConfig{});
  std::vector<TimeNs> released(w.rt.worldSize(), 0);
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    w.eng.spawn([](Proc& p, std::vector<TimeNs>& out) -> sim::Task<void> {
      co_await p.engine().delay(us(static_cast<std::uint64_t>(p.rank()) * 10));
      co_await p.barrier();
      out[static_cast<std::size_t>(p.rank())] = p.engine().now();
    }(w.rt.proc(r), released));
  }
  w.eng.run();
  const TimeNs slowest_arrival = us(10) * 7;
  for (auto t : released) EXPECT_GE(t, slowest_arrival);
}

// ---- Determinism across runs ----

TEST(Determinism, IdenticalRunsProduceIdenticalVirtualTimes) {
  auto runOnce = [] {
    RuntimeConfig cfg;
    cfg.scheme = schemes::Scheme::Proposed;
    World w(hw::lassen(), 2, cfg);
    auto type = Datatype::vector(64, 2, 8, Datatype::float64());
    auto& p0 = w.rt.proc(0);
    auto& p4 = w.rt.proc(4);
    auto sbuf = p0.allocDevice(static_cast<std::size_t>(type->extent()));
    auto rbuf = p4.allocDevice(static_cast<std::size_t>(type->extent()));
    fillPattern(sbuf, 3);

    TimeNs done_at = 0;
    w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t) -> sim::Task<void> {
      auto req = co_await p.isend(b, t, 1, 4, 0);
      co_await p.wait(req);
    }(p0, sbuf, type));
    w.eng.spawn([](Proc& p, gpu::MemSpan b, ddt::DatatypePtr t,
                   TimeNs& out) -> sim::Task<void> {
      auto req = co_await p.irecv(b, t, 1, 0, 0);
      co_await p.wait(req);
      out = p.engine().now();
    }(p4, rbuf, type, done_at));
    w.eng.run();
    return done_at;
  };
  const TimeNs a = runOnce();
  const TimeNs b = runOnce();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

// ---- Bulk bidirectional exchange, both directions at once ----

TEST(BulkExchange, SixteenBuffersEachWayWithFusion) {
  RuntimeConfig cfg;
  cfg.scheme = schemes::Scheme::Proposed;
  World w(hw::lassen(), 2, cfg);
  constexpr int kBuffers = 16;
  auto type = Datatype::vector(64, 2, 6, Datatype::float64());
  const auto region = static_cast<std::size_t>(type->extent());

  struct RankBufs {
    std::vector<gpu::MemSpan> send, recv;
  };
  std::array<RankBufs, 2> bufs;
  std::array<Proc*, 2> procs{&w.rt.proc(0), &w.rt.proc(4)};
  for (int side = 0; side < 2; ++side) {
    for (int i = 0; i < kBuffers; ++i) {
      auto s = procs[side]->allocDevice(region);
      auto r = procs[side]->allocDevice(region);
      fillPattern(s, static_cast<std::uint64_t>(side * 100 + i));
      std::memset(r.bytes.data(), 0, region);
      bufs[side].send.push_back(s);
      bufs[side].recv.push_back(r);
    }
  }

  for (int side = 0; side < 2; ++side) {
    const int peer = side == 0 ? 4 : 0;
    w.eng.spawn([](Proc& p, RankBufs& b, ddt::DatatypePtr t,
                   int peer_rank) -> sim::Task<void> {
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < kBuffers; ++i) {
        reqs.push_back(co_await p.irecv(b.recv[i], t, 1, peer_rank, i));
        reqs.push_back(co_await p.isend(b.send[i], t, 1, peer_rank, i));
      }
      co_await p.waitall(std::move(reqs));
    }(*procs[side], bufs[side], type, peer));
  }
  w.eng.run();

  const auto layout = ddt::flatten(type, 1);
  for (int side = 0; side < 2; ++side) {
    const int other = 1 - side;
    for (int i = 0; i < kBuffers; ++i) {
      for (const auto& seg : layout.materialize()) {
        ASSERT_EQ(std::memcmp(
                      bufs[side].recv[i].bytes.data() + seg.offset,
                      bufs[other].send[i].bytes.data() + seg.offset, seg.len),
                  0)
            << "side " << side << " buffer " << i;
      }
    }
  }
}

}  // namespace
}  // namespace dkf::mpi
