// The model-based threshold predictor (paper future work, §IV-C/VII):
// analytic properties plus end-to-end validation that the predicted
// threshold lands within the empirically good region of the Fig. 8 sweep.
#include <gtest/gtest.h>

#include "bench_util/experiment.hpp"
#include "core/threshold_model.hpp"
#include "hw/machines.hpp"
#include "workloads/workloads.hpp"

namespace dkf::core {
namespace {

ThresholdModel lassenModel() {
  const auto m = hw::lassen();
  return ThresholdModel(m.node.gpu, m.internode.bandwidth);
}

TEST(ThresholdModel, PackBandwidthTracksAccessEfficiency) {
  const auto model = lassenModel();
  EXPECT_LT(model.packBandwidth(8.0), model.packBandwidth(4096.0));
  EXPECT_DOUBLE_EQ(model.packBandwidth(4096.0),
                   hw::gpuV100().hbm_bandwidth.bytesPerNs());
}

TEST(ThresholdModel, KernelTimeMonotoneInBytes) {
  const auto model = lassenModel();
  DurationNs prev = 0;
  for (std::size_t bytes : {1024u, 65536u, 1048576u, 16777216u}) {
    const auto t = model.kernelTime(bytes, 256.0);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(ThresholdModel, SparseLayoutsNeedSmallerBatches) {
  // Sparse (4 B runs) packs ~10x slower than dense: the same launch
  // amortization is reached with ~10x fewer bytes.
  const auto model = lassenModel();
  const auto sparse = model.predict(12 * 1024, 4.0);
  const auto dense = model.predict(12 * 1024, 4096.0);
  EXPECT_LT(sparse, dense);
}

TEST(ThresholdModel, RespectsClampBounds) {
  const auto m = hw::lassen();
  ThresholdModelParams params;
  params.min_threshold = 32 * 1024;
  params.max_threshold = 1024 * 1024;
  ThresholdModel model(m.node.gpu, m.internode.bandwidth, params);
  EXPECT_GE(model.predict(64, 4096.0), 32u * 1024);
  EXPECT_LE(model.predict(64 * 1024 * 1024, 4.0), 1024u * 1024);
}

TEST(ThresholdModel, QuantizesToWholeOperations) {
  const auto model = lassenModel();
  const std::size_t op = 100 * 1000;  // odd op size
  const auto t = model.predict(op, 64.0);
  if (t > model.params().min_threshold &&
      t < model.params().max_threshold) {
    EXPECT_EQ(t % op, 0u);
  }
}

TEST(ThresholdModel, PredictionLandsInEmpiricallyGoodRegion) {
  // End-to-end: run the Fig. 8 sweep for one workload and check the model's
  // threshold is within 25% of the best measured latency.
  const auto wl = workloads::specfem3dCm(64);
  const auto layout = ddt::flatten(wl.type, 1);
  const auto m = hw::lassen();
  ThresholdModel model(m.node.gpu, m.internode.bandwidth);
  const std::size_t predicted = model.predict(layout);

  auto latencyAt = [&](std::size_t threshold) {
    bench::ExchangeConfig cfg;
    cfg.machine = m;
    cfg.scheme = schemes::Scheme::ProposedTuned;
    cfg.tuned_threshold = threshold;
    cfg.workload = wl;
    cfg.n_ops = 32;
    cfg.iterations = 10;
    cfg.warmup = 2;
    return bench::runBulkExchange(cfg).meanLatencyUs();
  };

  double best = 1e300;
  for (std::size_t th : {16u * 1024, 64u * 1024, 256u * 1024, 512u * 1024,
                         2048u * 1024, 8192u * 1024}) {
    best = std::min(best, latencyAt(th));
  }
  const double at_predicted = latencyAt(predicted);
  EXPECT_LE(at_predicted, best * 1.25)
      << "model predicted " << predicted << " bytes";
}

}  // namespace
}  // namespace dkf::core
