// bench_util: table rendering, cell formatting, and the experiment result
// helpers that feed EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <sstream>

#include "bench_util/experiment.hpp"
#include "bench_util/table.hpp"
#include "common/check.hpp"

namespace dkf::bench {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"A", "Longer header", "C"});
  t.addRow({"1", "x", "33333"});
  t.addRow({"22", "yy", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| A  | Longer header | C     |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | yy            | 4     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"A", "B"});
  EXPECT_THROW(t.addRow({"only one"}), CheckFailure);
}

TEST(Cells, FixedPrecisionAndUnits) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell(10.0, 0), "10");
  EXPECT_EQ(cellUs(12.345), "12.35 us");
  EXPECT_EQ(cellUs(25000.0), "25.00 ms");
}

TEST(Banner, ContainsTitleAndSubtitle) {
  std::ostringstream os;
  banner(os, "Title here", "sub");
  EXPECT_NE(os.str().find("Title here"), std::string::npos);
  EXPECT_NE(os.str().find("sub"), std::string::npos);
}

TEST(ExchangeResult, ObservedCommunicationResidual) {
  ExchangeResult r;
  r.total_elapsed = us(100);
  r.breakdown.launching = us(30);
  r.breakdown.scheduling = us(10);
  r.breakdown.synchronize = us(20);
  r.breakdown.pack_unpack = us(500);  // GPU-side, not subtracted
  EXPECT_EQ(r.observedCommunication(), us(40));
  r.breakdown.launching = us(200);  // attribution exceeds elapsed
  EXPECT_EQ(r.observedCommunication(), 0u);
}

TEST(ExchangeResult, MeanLatencyFromSamples) {
  ExchangeResult r;
  r.latency_us.add(10.0);
  r.latency_us.add(30.0);
  EXPECT_DOUBLE_EQ(r.meanLatencyUs(), 20.0);
}

}  // namespace
}  // namespace dkf::bench
