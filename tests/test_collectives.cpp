// Collectives built on the runtime: bcast, reduce, allreduce, gather,
// alltoall, and the derived-datatype neighborhood alltoall-w — each
// validated against a host oracle across multiple roots and sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/collectives.hpp"
#include "workloads/workloads.hpp"

namespace dkf::mpi {
namespace {

struct CollWorld {
  CollWorld()
      : cluster(eng, hw::lassen(), 2),
        rt(cluster, [] {
          RuntimeConfig cfg;
          cfg.scheme = schemes::Scheme::Proposed;
          return cfg;
        }()) {}

  sim::Engine eng;
  hw::Cluster cluster;
  Runtime rt;
};

class BcastRoots : public ::testing::TestWithParam<int> {};

TEST_P(BcastRoots, AllRanksReceiveRootData) {
  const int root = GetParam();
  CollWorld w;
  const std::size_t bytes = 4096;
  std::vector<gpu::MemSpan> bufs;
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    auto b = w.rt.proc(r).allocDevice(bytes);
    std::memset(b.bytes.data(), r == root ? 0xCD : 0, bytes);
    bufs.push_back(b);
  }
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    w.eng.spawn([](Proc& p, gpu::MemSpan b, std::size_t n,
                   int rt_root) -> sim::Task<void> {
      co_await bcast(p, b, ddt::Datatype::byte(), n, rt_root);
    }(w.rt.proc(r), bufs[r], bytes, root));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    EXPECT_EQ(bufs[r].bytes[0], std::byte{0xCD}) << "rank " << r;
    EXPECT_EQ(bufs[r].bytes[bytes - 1], std::byte{0xCD}) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Roots, BcastRoots, ::testing::Values(0, 3, 7));

TEST(Reduce, SumLandsOnRoot) {
  CollWorld w;
  constexpr std::size_t kCount = 64;
  std::vector<gpu::MemSpan> bufs;
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    auto b = w.rt.proc(r).allocDevice(kCount * 8);
    auto* vals = reinterpret_cast<double*>(b.bytes.data());
    for (std::size_t i = 0; i < kCount; ++i) {
      vals[i] = static_cast<double>(r + 1);
    }
    bufs.push_back(b);
  }
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
      co_await reduce(p, b, kCount, ReduceType::Float64, ReduceOp::Sum, 2);
    }(w.rt.proc(r), bufs[r]));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);
  // sum(1..8) = 36 on root rank 2.
  const auto* result = reinterpret_cast<const double*>(bufs[2].bytes.data());
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_DOUBLE_EQ(result[i], 36.0);
  }
}

TEST(Allreduce, MaxEverywhere) {
  CollWorld w;
  constexpr std::size_t kCount = 16;
  std::vector<gpu::MemSpan> bufs;
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    auto b = w.rt.proc(r).allocDevice(kCount * 8);
    auto* vals = reinterpret_cast<std::int64_t*>(b.bytes.data());
    for (std::size_t i = 0; i < kCount; ++i) {
      vals[i] = (r * 7 + static_cast<int>(i)) % 13;
    }
    bufs.push_back(b);
  }
  // Oracle: element-wise max across ranks.
  std::vector<std::int64_t> expect(kCount, INT64_MIN);
  for (int r = 0; r < 8; ++r) {
    for (std::size_t i = 0; i < kCount; ++i) {
      expect[i] = std::max<std::int64_t>(expect[i],
                                         (r * 7 + static_cast<int>(i)) % 13);
    }
  }
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
      co_await allreduce(p, b, kCount, ReduceType::Int64, ReduceOp::Max);
    }(w.rt.proc(r), bufs[r]));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    const auto* vals =
        reinterpret_cast<const std::int64_t*>(bufs[r].bytes.data());
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(vals[i], expect[i]) << "rank " << r << " elem " << i;
    }
  }
}

TEST(Gather, RankMajorAtRoot) {
  CollWorld w;
  constexpr std::size_t kBytes = 256;
  const int root = 1;
  std::vector<gpu::MemSpan> sends;
  gpu::MemSpan recv{};
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    auto s = w.rt.proc(r).allocDevice(kBytes);
    std::memset(s.bytes.data(), 0xA0 + r, kBytes);
    sends.push_back(s);
  }
  recv = w.rt.proc(root).allocDevice(kBytes * 8);
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    w.eng.spawn([](Proc& p, gpu::MemSpan s, gpu::MemSpan d,
                   int rt_root) -> sim::Task<void> {
      co_await gather(p, s, d, kBytes, rt_root);
    }(w.rt.proc(r), sends[r], recv, root));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(recv.bytes[static_cast<std::size_t>(r) * kBytes],
              static_cast<std::byte>(0xA0 + r));
  }
}

TEST(Alltoall, FullPairwiseExchange) {
  CollWorld w;
  constexpr std::size_t kBytes = 128;
  const int n = w.rt.worldSize();
  std::vector<gpu::MemSpan> sends, recvs;
  for (int r = 0; r < n; ++r) {
    auto s = w.rt.proc(r).allocDevice(kBytes * static_cast<std::size_t>(n));
    auto d = w.rt.proc(r).allocDevice(kBytes * static_cast<std::size_t>(n));
    for (int peer = 0; peer < n; ++peer) {
      std::memset(s.bytes.data() + static_cast<std::size_t>(peer) * kBytes,
                  r * 16 + peer, kBytes);
    }
    sends.push_back(s);
    recvs.push_back(d);
  }
  for (int r = 0; r < n; ++r) {
    w.eng.spawn([](Proc& p, gpu::MemSpan s, gpu::MemSpan d) -> sim::Task<void> {
      co_await alltoall(p, s, d, kBytes);
    }(w.rt.proc(r), sends[r], recvs[r]));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);
  for (int r = 0; r < n; ++r) {
    for (int peer = 0; peer < n; ++peer) {
      // recvs[r][peer] came from sends[peer][r].
      EXPECT_EQ(recvs[r].bytes[static_cast<std::size_t>(peer) * kBytes],
                static_cast<std::byte>(peer * 16 + r))
          << "rank " << r << " from " << peer;
    }
  }
}

TEST(NeighborAlltoallw, MatchesHaloExchangerSemantics) {
  // Build the 3-D halo as a neighborhood collective and verify the same
  // ghost-cell postcondition the HaloExchanger test checks.
  CollWorld w;
  constexpr std::size_t kN = 4, kGhost = 1, kTotal = kN + 2 * kGhost;
  const auto faces = workloads::halo3dFaces(kN, kGhost);

  auto rankOf = [](int x, int y, int z) {
    auto wrap = [](int v) { return (v + 2) % 2; };
    return (wrap(x) * 2 + wrap(y)) * 2 + wrap(z);
  };
  std::vector<gpu::MemSpan> blocks;
  for (int r = 0; r < 8; ++r) {
    auto b = w.rt.proc(r).allocDevice(kTotal * kTotal * kTotal * 8);
    auto* cells = reinterpret_cast<double*>(b.bytes.data());
    for (std::size_t i = 0; i < kTotal * kTotal * kTotal; ++i) cells[i] = r;
    blocks.push_back(b);
  }
  for (int r = 0; r < 8; ++r) {
    const int cx = r / 4, cy = (r / 2) % 2, cz = r % 2;
    std::vector<NeighborOp> ops;
    for (std::size_t f = 0; f < faces.size(); ++f) {
      NeighborOp op;
      op.neighbor = rankOf(cx + faces[f].neighbor_dx[0],
                           cy + faces[f].neighbor_dx[1],
                           cz + faces[f].neighbor_dx[2]);
      op.send_type = faces[f].send_type;
      op.recv_type = faces[f].recv_type;
      op.send_tag = static_cast<int>(f);
      op.recv_tag = static_cast<int>(f ^ 1);
      ops.push_back(std::move(op));
    }
    w.eng.spawn([](Proc& p, gpu::MemSpan b,
                   std::vector<NeighborOp> o) -> sim::Task<void> {
      co_await neighborAlltoallw(p, b, o);
    }(w.rt.proc(r), blocks[r], std::move(ops)));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);

  // Spot check: rank 0's -x ghost face holds its x-neighbor's id.
  const auto* cells =
      reinterpret_cast<const double*>(blocks[0].bytes.data());
  const std::size_t mid = kGhost + kN / 2;
  EXPECT_EQ(cells[(0 * kTotal + mid) * kTotal + mid],
            static_cast<double>(rankOf(-1, 0, 0)));
  EXPECT_EQ(cells[((kTotal - 1) * kTotal + mid) * kTotal + mid],
            static_cast<double>(rankOf(1, 0, 0)));
}

}  // namespace
}  // namespace dkf::mpi

namespace dkf::mpi {
namespace {

// Collectives must be correct under every DDT engine, not just fusion.
class CollectiveScheme : public ::testing::TestWithParam<schemes::Scheme> {};

TEST_P(CollectiveScheme, AllreduceSumCorrectUnderScheme) {
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), 2);
  RuntimeConfig cfg;
  cfg.scheme = GetParam();
  Runtime rt(cluster, cfg);
  constexpr std::size_t kCount = 8;
  std::vector<gpu::MemSpan> bufs;
  for (int r = 0; r < rt.worldSize(); ++r) {
    auto b = rt.proc(r).allocDevice(kCount * 8);
    auto* vals = reinterpret_cast<double*>(b.bytes.data());
    for (std::size_t i = 0; i < kCount; ++i) vals[i] = r + 0.5;
    bufs.push_back(b);
  }
  for (int r = 0; r < rt.worldSize(); ++r) {
    eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
      co_await allreduce(p, b, kCount, ReduceType::Float64, ReduceOp::Sum);
    }(rt.proc(r), bufs[r]));
  }
  eng.run();
  ASSERT_EQ(eng.unfinishedTasks(), 0u);
  // sum over r of (r + 0.5) for r in 0..7 = 28 + 4 = 32.
  for (int r = 0; r < rt.worldSize(); ++r) {
    const auto* vals = reinterpret_cast<const double*>(bufs[r].bytes.data());
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_DOUBLE_EQ(vals[i], 32.0) << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CollectiveScheme,
    ::testing::Values(schemes::Scheme::GpuSync, schemes::Scheme::GpuAsync,
                      schemes::Scheme::CpuGpuHybrid,
                      schemes::Scheme::Proposed),
    [](const ::testing::TestParamInfo<schemes::Scheme>& pinfo) {
      std::string n{schemes::schemeName(pinfo.param)};
      for (auto& ch : n) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return n;
    });

// ---- Min/Max over both element types, reduce and allreduce ----
//
// Regression matrix for the silent-combine bug: `combine` returned `a` for
// any ReduceOp it did not handle, so Min/Max "succeeded" with rank-0 data.

/// Deterministic per-(rank, elem) value with negatives and, for Float64,
/// fractional parts — so Min/Max differ from Sum and from rank 0's data.
double sourceValue(int rank, std::size_t i, ReduceType type) {
  const double base = static_cast<double>((rank * 7 + static_cast<int>(i)) % 13) - 6.0;
  return type == ReduceType::Float64 ? base + 0.25 * rank : base;
}

struct MinMaxCase {
  bool all{false};  // allreduce vs reduce-to-root
  ReduceOp op{ReduceOp::Min};
  ReduceType type{ReduceType::Float64};
};

class ReduceMinMax : public ::testing::TestWithParam<MinMaxCase> {};

TEST_P(ReduceMinMax, MatchesElementwiseOracle) {
  const MinMaxCase c = GetParam();
  CollWorld w;
  constexpr std::size_t kCount = 24;
  constexpr int kRoot = 2;
  std::vector<gpu::MemSpan> bufs;
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    auto b = w.rt.proc(r).allocDevice(kCount * 8);
    for (std::size_t i = 0; i < kCount; ++i) {
      const double v = sourceValue(r, i, c.type);
      if (c.type == ReduceType::Float64) {
        reinterpret_cast<double*>(b.bytes.data())[i] = v;
      } else {
        reinterpret_cast<std::int64_t*>(b.bytes.data())[i] =
            static_cast<std::int64_t>(v);
      }
    }
    bufs.push_back(b);
  }
  std::vector<double> expect(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    double acc = sourceValue(0, i, c.type);
    for (int r = 1; r < 8; ++r) {
      const double v = sourceValue(r, i, c.type);
      acc = c.op == ReduceOp::Min ? std::min(acc, v) : std::max(acc, v);
    }
    expect[i] = acc;
  }
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    w.eng.spawn([](Proc& p, gpu::MemSpan b, MinMaxCase cs) -> sim::Task<void> {
      if (cs.all) {
        co_await allreduce(p, b, kCount, cs.type, cs.op);
      } else {
        co_await reduce(p, b, kCount, cs.type, cs.op, kRoot);
      }
    }(w.rt.proc(r), bufs[r], c));
  }
  w.eng.run();
  ASSERT_EQ(w.eng.unfinishedTasks(), 0u);
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    if (!c.all && r != kRoot) continue;  // reduce: result only on root
    for (std::size_t i = 0; i < kCount; ++i) {
      const double got =
          c.type == ReduceType::Float64
              ? reinterpret_cast<const double*>(bufs[r].bytes.data())[i]
              : static_cast<double>(reinterpret_cast<const std::int64_t*>(
                    bufs[r].bytes.data())[i]);
      const double want = c.type == ReduceType::Float64
                              ? expect[i]
                              : std::trunc(expect[i]);
      ASSERT_DOUBLE_EQ(got, want) << "rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndTypes, ReduceMinMax,
    ::testing::Values(MinMaxCase{false, ReduceOp::Min, ReduceType::Float64},
                      MinMaxCase{false, ReduceOp::Min, ReduceType::Int64},
                      MinMaxCase{false, ReduceOp::Max, ReduceType::Float64},
                      MinMaxCase{false, ReduceOp::Max, ReduceType::Int64},
                      MinMaxCase{true, ReduceOp::Min, ReduceType::Float64},
                      MinMaxCase{true, ReduceOp::Min, ReduceType::Int64},
                      MinMaxCase{true, ReduceOp::Max, ReduceType::Float64},
                      MinMaxCase{true, ReduceOp::Max, ReduceType::Int64}),
    [](const ::testing::TestParamInfo<MinMaxCase>& pinfo) {
      const MinMaxCase& c = pinfo.param;
      std::string n = c.all ? "Allreduce" : "Reduce";
      n += c.op == ReduceOp::Min ? "Min" : "Max";
      n += c.type == ReduceType::Float64 ? "Float64" : "Int64";
      return n;
    });

// ---- Guard rails: undersized buffers and unhandled enumerators fail loudly

TEST(Gather, UndersizedSendBufferFailsCheck) {
  // Regression: gather read `bytes_per_rank` from `send` with no size
  // check — an undersized span was silent out-of-bounds traffic.
  CollWorld w;
  constexpr std::size_t kBytes = 256;
  std::vector<gpu::MemSpan> sends;
  for (int r = 0; r < w.rt.worldSize(); ++r) {
    sends.push_back(w.rt.proc(r).allocDevice(kBytes / 2));  // too small
  }
  auto recv = w.rt.proc(0).allocDevice(kBytes * 8);
  const auto drive = [&] {
    for (int r = 0; r < w.rt.worldSize(); ++r) {
      w.eng.spawn(
          [](Proc& p, gpu::MemSpan s, gpu::MemSpan d) -> sim::Task<void> {
            co_await gather(p, s, d, kBytes, 0);
          }(w.rt.proc(r), sends[r], recv));
    }
    w.eng.run();
  };
  EXPECT_THROW(drive(), CheckFailure);
}

TEST(Reduce, UnhandledReduceOpFailsCheck) {
  // Regression: `combine` silently returned `a` for ops outside its
  // switch; now every unhandled enumerator is a loud CheckFailure.
  CollWorld w;
  const auto drive = [&] {
    for (int r = 0; r < w.rt.worldSize(); ++r) {
      w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
        co_await allreduce(p, b, 8, ReduceType::Float64,
                           static_cast<ReduceOp>(99));
      }(w.rt.proc(r), w.rt.proc(r).allocDevice(64)));
    }
    w.eng.run();
  };
  EXPECT_THROW(drive(), CheckFailure);
}

TEST(Reduce, UnhandledReduceTypeFailsCheck) {
  CollWorld w;
  const auto drive = [&] {
    for (int r = 0; r < w.rt.worldSize(); ++r) {
      w.eng.spawn([](Proc& p, gpu::MemSpan b) -> sim::Task<void> {
        co_await reduce(p, b, 8, static_cast<ReduceType>(99), ReduceOp::Sum,
                        0);
      }(w.rt.proc(r), w.rt.proc(r).allocDevice(64)));
    }
    w.eng.run();
  };
  EXPECT_THROW(drive(), CheckFailure);
}

// ---- Per-collective tag allocator ---------------------------------------

TEST(CollectiveTags, SpansAreDisjointAndMonotone) {
  CollWorld w;
  auto& p = w.rt.proc(0);
  const int a = p.allocCollectiveTags(8);
  EXPECT_EQ(a, kCollectiveTagBase);
  const int b = p.allocCollectiveTags(16);
  EXPECT_EQ(b, a + 8);
  const int c = p.allocCollectiveTags(1);
  EXPECT_EQ(c, b + 16);
  // The allocator is per-rank state; rank 1 starts at the base too.
  EXPECT_EQ(w.rt.proc(1).allocCollectiveTags(4), kCollectiveTagBase);
}

TEST(CollectiveTags, ZeroSpanFailsCheck) {
  CollWorld w;
  EXPECT_THROW(w.rt.proc(0).allocCollectiveTags(0), CheckFailure);
}

TEST(CollectiveTags, ExhaustionFailsCheckInsteadOfWrapping) {
  CollWorld w;
  auto& p = w.rt.proc(0);
  const auto exhaust = [&] {
    for (int i = 0; i < 4096; ++i) {
      p.allocCollectiveTags(1 << 20);
    }
  };
  EXPECT_THROW(exhaust(), CheckFailure);
}

TEST(CollectiveTags, AllreducePastOldTagBoundary) {
  // Regression for the seed's fixed tag bases: allreduce gave its bcast
  // phase tags at `tag_base + (1 << 10)`, so past ~2k ranks the reduce
  // phase's `tag_base + rank` tags collided with them and payloads crossed
  // phases. 2304 ranks is past that boundary; with per-invocation tag
  // spans the result must still match the exact rank-order fold.
  constexpr int kRanks = 2304;
  sim::Engine eng;
  hw::MachineSpec machine = hw::lassen();
  machine.node.gpus_per_node = 32;  // 72 nodes
  machine.node.gpu.arena_bytes = 64u << 10;
  hw::Cluster cluster(eng, machine, kRanks / 32);
  Runtime rt(cluster, [] {
    RuntimeConfig cfg;
    cfg.scheme = schemes::Scheme::Proposed;
    return cfg;
  }());
  ASSERT_EQ(rt.worldSize(), kRanks);

  std::vector<gpu::MemSpan> bufs;
  bufs.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    auto b = rt.proc(r).allocDevice(8);
    *reinterpret_cast<double*>(b.bytes.data()) =
        static_cast<double>(r) + 0.25;
    bufs.push_back(b);
  }
  rt.runAll([&](Proc& p) -> sim::Task<void> {
    co_await allreduce(p, bufs[static_cast<std::size_t>(p.rank())], 1,
                       ReduceType::Float64, ReduceOp::Sum,
                       {CollAlgo::Tree, 2});
  });
  ASSERT_EQ(eng.unfinishedTasks(), 0u);
  // Sum of r + 0.25 over r in [0, 2304): every partial sum is an exact
  // multiple of 0.25 well under 2^52, so the fold is exact and the
  // comparison can demand equality.
  const double expect = static_cast<double>(kRanks) *
                            static_cast<double>(kRanks - 1) / 2.0 +
                        0.25 * static_cast<double>(kRanks);
  for (int r = 0; r < kRanks; r += 289) {
    EXPECT_EQ(*reinterpret_cast<const double*>(bufs[r].bytes.data()), expect)
        << "rank " << r;
  }
}

}  // namespace
}  // namespace dkf::mpi
