// Golden-shape tests for the headline claims in EXPERIMENTS.md. These do
// not pin exact latencies (machine-model constants may be retuned); they
// pin the *shape* of the figures the paper stands on:
//   Fig. 9  — fusion speedup grows monotonically with the number of
//             concurrently communicated buffers and exceeds 3x at 16.
//   Fig. 8  — a 16 KB fusion threshold (the paper's motivating bad choice)
//             is strictly slower than the tuned optimum.
//   Fig. 14 — the proposed scheme beats per-block naive copies by orders
//             of magnitude and datatype-granularity GDR by a wide margin.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_util/experiment.hpp"
#include "hw/machines.hpp"

namespace dkf {
namespace {

using bench::ExchangeConfig;
using schemes::Scheme;

ExchangeConfig baseConfig(Scheme scheme, workloads::Workload wl, int n_ops) {
  ExchangeConfig cfg;
  cfg.machine = hw::lassen();
  cfg.scheme = scheme;
  cfg.workload = std::move(wl);
  cfg.n_ops = n_ops;
  cfg.iterations = 10;
  cfg.warmup = 3;
  return cfg;
}

double latencyOf(Scheme scheme, const workloads::Workload& wl, int n_ops) {
  return bench::runBulkExchange(baseConfig(scheme, wl, n_ops)).meanLatencyUs();
}

TEST(Fig9Shape, SpeedupMonotonicallyNonDecreasingInBufferCount) {
  // Speedup of the proposed fused scheme over the best conventional GPU
  // baseline, per buffer count — Fig. 9's x-axis.
  const auto wl = workloads::specfem3dCm(16);
  std::vector<double> speedup;
  for (const int n_ops : {1, 2, 4, 8, 16}) {
    const double baseline =
        std::min({latencyOf(Scheme::GpuSync, wl, n_ops),
                  latencyOf(Scheme::GpuAsync, wl, n_ops),
                  latencyOf(Scheme::CpuGpuHybrid, wl, n_ops)});
    const double proposed = latencyOf(Scheme::Proposed, wl, n_ops);
    ASSERT_GT(proposed, 0.0);
    speedup.push_back(baseline / proposed);
  }
  for (std::size_t i = 0; i + 1 < speedup.size(); ++i) {
    // Allow a sliver of numerical slack; the trend must not invert.
    EXPECT_GE(speedup[i + 1], speedup[i] * 0.999)
        << "speedup regressed between buffer counts " << (1 << i) << " and "
        << (1 << (i + 1));
  }
  EXPECT_GT(speedup.back(), 3.0)
      << "fusion speedup at 16 buffers fell below the paper's >3x claim";
}

TEST(Fig8Shape, SixteenKbThresholdStrictlySlowerThanOptimum) {
  // Fig. 8: the 16 KB threshold pays per-launch overhead on every small
  // block; larger thresholds let the fused kernel absorb them.
  const auto wl = workloads::specfem3dCm(64);
  auto at_threshold = [&](std::size_t threshold) {
    auto cfg = baseConfig(Scheme::ProposedTuned, wl, 32);
    cfg.tuned_threshold = threshold;
    return bench::runBulkExchange(cfg).meanLatencyUs();
  };
  const double bad = at_threshold(16u << 10);
  double best = bad;
  for (const std::size_t kb : {64u, 256u, 512u, 1024u, 4096u}) {
    best = std::min(best, at_threshold(std::size_t{kb} << 10));
  }
  EXPECT_GT(bad, 1.1 * best)
      << "16 KB threshold (" << bad << " us) should be >10% slower than the "
      << "optimum (" << best << " us)";
}

TEST(Fig14Shape, ProposedDominatesNaiveAndGdrBaselines) {
  const auto wl = workloads::specfem3dOc(32);
  const double proposed = latencyOf(Scheme::Proposed, wl, 8);
  const double naive = latencyOf(Scheme::NaiveCopy, wl, 8);
  const double gdr = latencyOf(Scheme::AdaptiveGdr, wl, 8);
  ASSERT_GT(proposed, 0.0);
  EXPECT_GT(naive / proposed, 50.0)
      << "per-block naive copies should be orders of magnitude slower";
  EXPECT_GT(gdr / proposed, 2.0)
      << "datatype-granularity GDR should trail fused packing";
}

TEST(FaultFreeIsBaseline, InjectionDisabledMatchesPlainRun) {
  // Guard for the acceptance criterion: compiling the fault layer in and
  // leaving it disabled must not perturb the simulation by a nanosecond.
  auto cfg = baseConfig(Scheme::Proposed, workloads::milcZdown(32), 8);
  const auto plain = bench::runBulkExchange(cfg);
  cfg.inject_faults = false;  // explicit: spec present but not attached
  cfg.faults.data_loss = 0.5;
  cfg.reliability = {};  // disabled
  const auto again = bench::runBulkExchange(cfg);
  EXPECT_EQ(plain.end_time, again.end_time);
  EXPECT_EQ(plain.meanLatencyUs(), again.meanLatencyUs());
  EXPECT_EQ(again.fault_counters.data_drops, 0u);
  EXPECT_EQ(again.transport.retransmissions, 0u);
}

}  // namespace
}  // namespace dkf
