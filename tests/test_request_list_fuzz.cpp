// Randomized differential fuzz for core::RequestList (§IV-A1).
//
// Drives the real structure against a naive shadow model through long
// interleavings of tryEnqueue / claimPendingBatch / signalCompletion /
// queryAndRetire with out-of-order retirement across many ring
// wraparounds. The list's own checkInvariants() oracle runs after every
// mutating step (setAudit), auditing the O(1) structures — free list <->
// Idle slots, pending ring <-> Pending slots in uid order, uid window <->
// occupied slots — against a full scan; the shadow model independently
// checks the externally visible contract (uid assignment, claim order,
// retired-vs-live query results, unknown-uid rejection).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/request_list.hpp"
#include "ddt/datatype.hpp"

namespace dkf::core {
namespace {

enum class Phase { Pending, Busy, Completed, Retired };

class RequestListFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RequestListFuzz, MatchesShadowModelThroughRandomInterleavings) {
  Rng rng(GetParam());
  const std::size_t capacity = 1 + rng.below(24);
  RequestList list(capacity);
  list.setAudit(true);  // full invariant audit after every mutating step
  auto layout = std::make_shared<const ddt::Layout>(ddt::flatten(
      ddt::Datatype::contiguous(1 + rng.below(512), ddt::Datatype::byte()),
      1));

  std::map<std::int64_t, Phase> phase;       // every uid ever issued
  std::map<std::int64_t, std::size_t> slot;  // uid -> slot while Busy
  std::int64_t issued = 0;

  const auto makeReq = [&] {
    FusionRequest req;
    req.op = FusionOp::Packing;
    req.layout = layout;
    return req;
  };

  for (int step = 0; step < 20000; ++step) {
    switch (rng.below(8)) {
      case 0:
      case 1:
      case 2: {  // enqueue (weighted to drive wraparound)
        const bool was_full = list.full();
        const auto uid = list.tryEnqueue(makeReq());
        if (was_full) {
          EXPECT_LT(uid, 0);
        } else {
          ASSERT_EQ(uid, issued);  // monotonic, gapless
          phase[uid] = Phase::Pending;
          ++issued;
        }
        break;
      }
      case 3:
      case 4: {  // claim a batch: the n oldest pending uids, in uid order
        std::vector<std::int64_t> expect;
        for (const auto& [uid, p] : phase) {
          if (p == Phase::Pending) expect.push_back(uid);
        }
        const std::size_t want = 1 + rng.below(capacity);
        if (expect.size() > want) expect.resize(want);
        const auto batch = list.claimPendingBatch(want);
        ASSERT_EQ(batch.size(), expect.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const FusionRequest& r = list.slot(batch[i]);
          EXPECT_EQ(r.uid, expect[i]);
          EXPECT_EQ(r.request_status, Status::Busy);
          phase[r.uid] = Phase::Busy;
          slot[r.uid] = batch[i];
        }
        break;
      }
      case 5: {  // complete a random busy request (out of claim order)
        if (slot.empty()) break;
        auto it = slot.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(rng.below(slot.size())));
        list.signalCompletion(it->second);
        phase[it->first] = Phase::Completed;
        slot.erase(it);
        break;
      }
      case 6: {  // query a random issued uid; result must match the model
        if (issued == 0) break;
        const auto uid = static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(issued)));
        const bool retired = list.queryAndRetire(uid);
        switch (phase[uid]) {
          case Phase::Pending:
          case Phase::Busy:
            EXPECT_FALSE(retired);
            break;
          case Phase::Completed:  // retires as a side effect
            EXPECT_TRUE(retired);
            phase[uid] = Phase::Retired;
            break;
          case Phase::Retired:  // stays retired, never "unknown"
            EXPECT_TRUE(retired);
            break;
        }
        break;
      }
      default: {  // unknown uids must throw, not report phantom completion
        EXPECT_THROW(list.queryAndRetire(issued), CheckFailure);
        EXPECT_THROW(list.queryAndRetire(-1), CheckFailure);
        break;
      }
    }
  }

  // Drain: claim, complete, and retire everything still in flight.
  for (const auto s : list.claimPendingBatch(capacity)) {
    const FusionRequest& r = list.slot(s);
    phase[r.uid] = Phase::Busy;
    slot[r.uid] = s;
  }
  while (!slot.empty()) {
    auto it = slot.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng.below(slot.size())));
    list.signalCompletion(it->second);
    phase[it->first] = Phase::Completed;
    slot.erase(it);
  }
  for (const auto& [uid, p] : phase) {
    if (p == Phase::Completed) {
      EXPECT_TRUE(list.queryAndRetire(uid));
    }
  }
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.lowestLiveUid(), list.nextUid());
  EXPECT_EQ(list.totalEnqueued(), static_cast<std::size_t>(issued));
  EXPECT_EQ(list.totalRetired(), static_cast<std::size_t>(issued));
  list.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequestListFuzz,
                         ::testing::Values(1u, 7u, 42u, 1234u, 0xdeadbeefu));

}  // namespace
}  // namespace dkf::core
