// Pack/unpack correctness: directed cases plus parameterized property sweeps
// over randomized layouts (round-trip identity, untouched-byte preservation,
// strided-copy equivalence).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ddt/datatype.hpp"
#include "ddt/layout.hpp"
#include "ddt/pack.hpp"

namespace dkf::ddt {
namespace {

std::vector<std::byte> randomBytes(std::size_t n, Rng& rng) {
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.below(256));
  return v;
}

TEST(PackCpu, GathersSegmentsInOrder) {
  const std::array<std::size_t, 2> lens{2, 3};
  const std::array<std::int64_t, 2> displs{1, 5};
  auto t = Datatype::indexed(lens, displs, Datatype::byte());
  auto layout = flatten(t, 1);
  std::vector<std::byte> origin(16);
  std::iota(reinterpret_cast<unsigned char*>(origin.data()),
            reinterpret_cast<unsigned char*>(origin.data()) + origin.size(),
            0);
  std::vector<std::byte> packed(layout.size());
  EXPECT_EQ(packCpu(layout, origin, packed), 5u);
  const unsigned char expect[5] = {1, 2, 5, 6, 7};
  EXPECT_EQ(std::memcmp(packed.data(), expect, 5), 0);
}

TEST(UnpackCpu, ScattersSegmentsInOrder) {
  const std::array<std::size_t, 2> lens{2, 3};
  const std::array<std::int64_t, 2> displs{1, 5};
  auto t = Datatype::indexed(lens, displs, Datatype::byte());
  auto layout = flatten(t, 1);
  const unsigned char src[5] = {10, 11, 12, 13, 14};
  std::vector<std::byte> origin(16, std::byte{0xEE});
  EXPECT_EQ(unpackCpu(layout,
                      std::span(reinterpret_cast<const std::byte*>(src), 5),
                      origin),
            5u);
  EXPECT_EQ(static_cast<unsigned char>(origin[1]), 10);
  EXPECT_EQ(static_cast<unsigned char>(origin[6]), 13);
  // Holes untouched.
  EXPECT_EQ(origin[0], std::byte{0xEE});
  EXPECT_EQ(origin[3], std::byte{0xEE});
  EXPECT_EQ(origin[8], std::byte{0xEE});
}

TEST(PackCpu, BufferTooSmallThrows) {
  auto t = Datatype::contiguous(8, Datatype::byte());
  auto layout = flatten(t, 1);
  std::vector<std::byte> origin(8), packed(4);
  EXPECT_THROW(packCpu(layout, origin, packed), CheckFailure);
}

TEST(PackCpu, SegmentBeyondOriginThrows) {
  auto t = Datatype::contiguous(8, Datatype::byte());
  auto layout = flatten(t, 1);
  std::vector<std::byte> origin(4), packed(8);
  EXPECT_THROW(packCpu(layout, origin, packed), CheckFailure);
}

TEST(CopyStrided, DifferentShapesSameSize) {
  // src: 4 blocks of 2 bytes; dst: 2 blocks of 4 bytes.
  const std::array<std::int64_t, 4> sdispls{0, 3, 6, 9};
  auto st = Datatype::indexedBlock(2, sdispls, Datatype::byte());
  const std::array<std::int64_t, 2> ddispls{2, 10};
  auto dt = Datatype::indexedBlock(4, ddispls, Datatype::byte());
  auto sl = flatten(st, 1);
  auto dl = flatten(dt, 1);
  ASSERT_EQ(sl.size(), dl.size());

  std::vector<std::byte> src(12);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i);
  std::vector<std::byte> dst(16, std::byte{0});
  EXPECT_EQ(copyStrided(sl, src, dl, dst), 8u);

  // Equivalent pack->unpack path must agree byte-for-byte.
  std::vector<std::byte> staged(sl.size());
  packCpu(sl, src, staged);
  std::vector<std::byte> dst2(16, std::byte{0});
  unpackCpu(dl, staged, dst2);
  EXPECT_EQ(dst, dst2);
}

TEST(CopyStrided, SizeMismatchThrows) {
  auto a = flatten(Datatype::contiguous(4, Datatype::byte()), 1);
  auto b = flatten(Datatype::contiguous(5, Datatype::byte()), 1);
  std::vector<std::byte> src(8), dst(8);
  EXPECT_THROW(copyStrided(a, src, b, dst), CheckFailure);
}

// ---- Property sweep: random datatype trees round-trip exactly ----

struct SweepParam {
  std::uint64_t seed;
  std::size_t count;  // datatype count per operation
};

class PackRoundTrip : public ::testing::TestWithParam<SweepParam> {};

/// Build a random (possibly nested) datatype with bounded extent.
DatatypePtr randomType(Rng& rng, int depth) {
  const auto base = [&]() -> DatatypePtr {
    switch (rng.below(4)) {
      case 0: return Datatype::byte();
      case 1: return Datatype::int32();
      case 2: return Datatype::float64();
      default: return Datatype::complexDouble();
    }
  };
  if (depth <= 0) return base();
  switch (rng.below(5)) {
    case 0:
      return Datatype::contiguous(rng.range(1, 4), randomType(rng, depth - 1));
    case 1:
      return Datatype::vector(rng.range(1, 5), rng.range(1, 3),
                              static_cast<std::int64_t>(rng.range(3, 6)),
                              randomType(rng, depth - 1));
    case 2: {
      const std::size_t n = rng.range(1, 5);
      std::vector<std::size_t> lens(n);
      std::vector<std::int64_t> displs(n);
      std::int64_t cursor = 0;
      for (std::size_t i = 0; i < n; ++i) {
        lens[i] = rng.range(1, 3);
        displs[i] = cursor;
        cursor += static_cast<std::int64_t>(lens[i] + rng.range(0, 3));
      }
      return Datatype::indexed(lens, displs, randomType(rng, depth - 1));
    }
    case 3: {
      std::array<std::size_t, 2> sizes{rng.range(2, 6), rng.range(2, 6)};
      std::array<std::size_t, 2> subsizes{rng.range(1, sizes[0]),
                                          rng.range(1, sizes[1])};
      std::array<std::size_t, 2> starts{
          rng.range(0, sizes[0] - subsizes[0]),
          rng.range(0, sizes[1] - subsizes[1])};
      return Datatype::subarray(sizes, subsizes, starts, Datatype::Order::C,
                                randomType(rng, depth - 1));
    }
    default: {
      auto inner = randomType(rng, depth - 1);
      return Datatype::resized(
          0, inner->extent() + rng.range(0, 16), inner);
    }
  }
}

TEST_P(PackRoundTrip, PackUnpackIsIdentityOnLayoutBytes) {
  const auto param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 8; ++trial) {
    auto type = randomType(rng, 2);
    auto layout = flatten(type, param.count);
    ASSERT_GE(layout.minOffset(), 0);
    const auto span = static_cast<std::size_t>(layout.endOffset());
    auto origin = randomBytes(span + 8, rng);
    const auto original = origin;

    std::vector<std::byte> packed(layout.size(), std::byte{0});
    ASSERT_EQ(packCpu(layout, origin, packed), layout.size());

    // Clear the layout bytes, then unpack: origin must be fully restored.
    for (const Segment& s : layout.materialize()) {
      std::memset(origin.data() + s.offset, 0xA5, s.len);
    }
    ASSERT_EQ(unpackCpu(layout, packed, origin), layout.size());
    EXPECT_EQ(origin, original) << type->describe();
  }
}

TEST_P(PackRoundTrip, PackedBytesMatchSegmentWalk) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0xabcdef);
  auto type = randomType(rng, 2);
  auto layout = flatten(type, param.count);
  const auto span = static_cast<std::size_t>(layout.endOffset());
  auto origin = randomBytes(span + 1, rng);
  std::vector<std::byte> packed(layout.size());
  packCpu(layout, origin, packed);
  std::size_t pos = 0;
  for (const Segment& s : layout.materialize()) {
    for (std::size_t i = 0; i < s.len; ++i, ++pos) {
      ASSERT_EQ(packed[pos], origin[static_cast<std::size_t>(s.offset) + i]);
    }
  }
  EXPECT_EQ(pos, layout.size());
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedLayouts, PackRoundTrip,
    ::testing::Values(SweepParam{1, 1}, SweepParam{2, 2}, SweepParam{3, 3},
                      SweepParam{4, 5}, SweepParam{5, 8}, SweepParam{6, 13},
                      SweepParam{7, 16}, SweepParam{8, 32}),
    [](const ::testing::TestParamInfo<SweepParam>& pinfo) {
      return "seed" + std::to_string(pinfo.param.seed) + "_count" +
             std::to_string(pinfo.param.count);
    });

}  // namespace
}  // namespace dkf::ddt
