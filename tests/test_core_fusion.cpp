// The fusion framework: request-list circular buffer semantics (§IV-A1),
// scheduler launch policy (§IV-C), per-request GPU-side completion
// signalling, and the <=2 us/message scheduler-overhead claim (§V-B).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/request_list.hpp"
#include "core/scheduler.hpp"
#include "fault/fault_plan.hpp"
#include "sim/cpu.hpp"
#include "ddt/datatype.hpp"
#include "hw/machines.hpp"

namespace dkf::core {
namespace {

ddt::LayoutPtr bytesLayout(std::size_t n) {
  return std::make_shared<const ddt::Layout>(
      ddt::flatten(ddt::Datatype::contiguous(n, ddt::Datatype::byte()), 1));
}

FusionRequest makeReq(FusionOp op, ddt::LayoutPtr layout,
                      gpu::MemSpan origin = {}, gpu::MemSpan target = {}) {
  FusionRequest r;
  r.op = op;
  r.layout = std::move(layout);
  r.origin = origin;
  r.target = target;
  return r;
}

TEST(RequestList, EnqueueAssignsMonotonicUids) {
  RequestList list(4);
  auto layout = bytesLayout(64);
  const auto a = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  const auto b = list.tryEnqueue(makeReq(FusionOp::Unpacking, layout));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(list.pendingCount(), 2u);
  EXPECT_EQ(list.pendingBytes(), 128u);
  list.checkInvariants();
}

TEST(RequestList, FullListRejectsWithNegativeUid) {
  RequestList list(2);
  auto layout = bytesLayout(8);
  EXPECT_GE(list.tryEnqueue(makeReq(FusionOp::Packing, layout)), 0);
  EXPECT_GE(list.tryEnqueue(makeReq(FusionOp::Packing, layout)), 0);
  EXPECT_TRUE(list.full());
  EXPECT_LT(list.tryEnqueue(makeReq(FusionOp::Packing, layout)), 0);
  EXPECT_EQ(list.totalRejected(), 1u);
  list.checkInvariants();
}

TEST(RequestList, BatchClaimsOldestFirstAndMarksBusy) {
  RequestList list(8);
  auto layout = bytesLayout(16);
  for (int i = 0; i < 5; ++i) {
    list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  }
  auto batch = list.claimPendingBatch(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(list.slot(batch[0]).uid, 0);
  EXPECT_EQ(list.slot(batch[1]).uid, 1);
  EXPECT_EQ(list.slot(batch[2]).uid, 2);
  EXPECT_EQ(list.pendingCount(), 2u);
  EXPECT_EQ(list.busyCount(), 3u);
  list.checkInvariants();
}

TEST(RequestList, CompletionAndRetirementRecycleSlots) {
  RequestList list(2);
  auto layout = bytesLayout(16);
  const auto a = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  const auto b = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  auto batch = list.claimPendingBatch(8);
  ASSERT_EQ(batch.size(), 2u);

  EXPECT_FALSE(list.queryAndRetire(a));  // still busy
  list.signalCompletion(batch[0]);
  EXPECT_TRUE(list.queryAndRetire(a));
  EXPECT_FALSE(list.full());  // slot recycled

  // New request reuses the freed slot while b is still busy.
  const auto c = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  EXPECT_GE(c, 0);
  list.signalCompletion(batch[1]);
  EXPECT_TRUE(list.queryAndRetire(b));
  EXPECT_TRUE(list.queryAndRetire(b));  // re-query of a retired uid: true
  list.checkInvariants();
}

TEST(RequestList, QueryOfNeverIssuedUidThrows) {
  // "Unknown" is NOT "already retired": polling a uid that tryEnqueue never
  // returned is a caller bug and must fail loudly instead of reporting a
  // phantom completion.
  RequestList list(2);
  auto layout = bytesLayout(16);
  EXPECT_THROW(list.queryAndRetire(0), CheckFailure);   // nothing enqueued
  EXPECT_THROW(list.queryAndRetire(-1), CheckFailure);  // rejection sentinel
  const auto a = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  EXPECT_EQ(a, 0);
  EXPECT_FALSE(list.queryAndRetire(a));                // live, in flight
  EXPECT_THROW(list.queryAndRetire(1), CheckFailure);  // not issued yet
  list.checkInvariants();
}

TEST(RequestList, RejectedEnqueueUidNeverPhantomCompletes) {
  // Regression: a caller that fell back on rejection but kept polling the
  // -1 sentinel used to see `true` ("already retired") from the seed
  // implementation — a phantom completion for work that never ran here.
  RequestList list(1);
  auto layout = bytesLayout(16);
  EXPECT_GE(list.tryEnqueue(makeReq(FusionOp::Packing, layout)), 0);
  const auto rejected = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  ASSERT_LT(rejected, 0);
  EXPECT_THROW(list.queryAndRetire(rejected), CheckFailure);
}

TEST(RequestList, LowestLiveUidAdvancesPastOutOfOrderRetirement) {
  RequestList list(4);
  list.setAudit(true);
  auto layout = bytesLayout(16);
  std::int64_t uid[3];
  for (auto& u : uid) u = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  auto batch = list.claimPendingBatch(8);
  for (auto s : batch) list.signalCompletion(s);
  EXPECT_EQ(list.lowestLiveUid(), 0);
  EXPECT_TRUE(list.queryAndRetire(uid[1]));  // out of order
  EXPECT_EQ(list.lowestLiveUid(), 0);        // uid 0 still live
  EXPECT_TRUE(list.queryAndRetire(uid[0]));
  EXPECT_EQ(list.lowestLiveUid(), 2);        // window skips retired uid 1
  EXPECT_TRUE(list.queryAndRetire(uid[1]));  // below the window: retired
  EXPECT_TRUE(list.queryAndRetire(uid[2]));
  EXPECT_EQ(list.lowestLiveUid(), list.nextUid());
  EXPECT_TRUE(list.empty());
}

TEST(RequestList, UidWindowSurvivesStragglerAcrossManyWraparounds) {
  // One request held Busy forever pins the uid window open while hundreds
  // of later uids cycle through — the window ring must grow (preserving
  // every live mapping) instead of aliasing.
  RequestList list(4);
  list.setAudit(true);
  auto layout = bytesLayout(16);
  const auto straggler = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  const auto straggler_slot = list.claimPendingBatch(1);
  ASSERT_EQ(straggler_slot.size(), 1u);

  for (int i = 0; i < 300; ++i) {
    const auto u = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
    ASSERT_GE(u, 0);
    const auto b = list.claimPendingBatch(8);
    ASSERT_EQ(b.size(), 1u);
    list.signalCompletion(b[0]);
    EXPECT_FALSE(list.queryAndRetire(straggler));  // still busy
    EXPECT_TRUE(list.queryAndRetire(u));
    EXPECT_EQ(list.lowestLiveUid(), straggler);
  }
  list.signalCompletion(straggler_slot[0]);
  EXPECT_TRUE(list.queryAndRetire(straggler));
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.lowestLiveUid(), list.nextUid());
}

TEST(RequestList, SignalOnNonBusySlotThrows) {
  RequestList list(2);
  auto layout = bytesLayout(16);
  list.tryEnqueue(makeReq(FusionOp::Packing, layout));
  EXPECT_THROW(list.signalCompletion(0), CheckFailure);  // pending, not busy
  EXPECT_THROW(list.signalCompletion(1), CheckFailure);  // idle
}

TEST(RequestListProperty, RandomizedLifecycleKeepsInvariants) {
  Rng rng(77);
  RequestList list(16);
  auto layout = bytesLayout(32);
  std::vector<std::int64_t> pending_uids;
  std::vector<std::pair<std::int64_t, std::size_t>> busy;  // uid, slot

  for (int step = 0; step < 5000; ++step) {
    switch (rng.below(4)) {
      case 0: {  // enqueue
        const auto uid = list.tryEnqueue(makeReq(FusionOp::Packing, layout));
        if (uid >= 0) pending_uids.push_back(uid);
        break;
      }
      case 1: {  // claim a batch
        const auto batch = list.claimPendingBatch(rng.range(1, 6));
        for (auto slot : batch) {
          const auto uid = list.slot(slot).uid;
          std::erase(pending_uids, uid);
          busy.emplace_back(uid, slot);
        }
        break;
      }
      case 2: {  // complete a random busy request
        if (busy.empty()) break;
        const auto pick = rng.below(busy.size());
        list.signalCompletion(busy[pick].second);
        // Retire immediately half the time; otherwise leave it parked.
        if (rng.chance(0.5)) {
          EXPECT_TRUE(list.queryAndRetire(busy[pick].first));
        } else {
          // Park: retire later via a sweep below.
        }
        busy.erase(busy.begin() + static_cast<std::ptrdiff_t>(pick));
        break;
      }
      default: {  // query a random issued uid (unknown uids throw)
        if (list.nextUid() == 0) {
          EXPECT_THROW(list.queryAndRetire(0), CheckFailure);
          break;
        }
        const auto uid = static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(list.nextUid())));
        const bool retired = list.queryAndRetire(uid);
        if (uid < list.lowestLiveUid()) {
          EXPECT_TRUE(retired);
        }
        EXPECT_THROW(list.queryAndRetire(list.nextUid()), CheckFailure);
        break;
      }
    }
    list.checkInvariants();
  }
}

// ---- Scheduler behaviour ----

class SchedulerTest : public ::testing::Test {
 public:
  SchedulerTest()
      : machine_(hw::lassen()), cpu_(eng_), gpu_(eng_, machine_.node, 0) {}

  FusionRequest packReq(std::size_t bytes) {
    auto layout = bytesLayout(bytes);
    auto src = gpu_.memory().allocate(bytes);
    auto dst = gpu_.memory().allocate(bytes);
    return makeReq(FusionOp::Packing, layout, src, dst);
  }

  sim::Engine eng_;
  hw::MachineSpec machine_;
  sim::CpuTimeline cpu_;
  gpu::Gpu gpu_;
};

TEST_F(SchedulerTest, BelowThresholdDefersLaunch) {
  FusionPolicy policy;
  policy.threshold_bytes = 512 * 1024;
  FusionScheduler sched(eng_, cpu_, gpu_, policy);
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t) -> sim::Task<void> {
    const auto uid = co_await s.enqueue(t.packReq(1024));
    EXPECT_GE(uid, 0);
  }(sched, *this));
  eng_.run();
  EXPECT_EQ(sched.fusedKernelsLaunched(), 0u);
  EXPECT_EQ(sched.requests().pendingCount(), 1u);
}

TEST_F(SchedulerTest, ThresholdTriggersSingleFusedKernel) {
  FusionPolicy policy;
  policy.threshold_bytes = 64 * 1024;
  FusionScheduler sched(eng_, cpu_, gpu_, policy);
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      co_await s.enqueue(t.packReq(16 * 1024));  // crosses 64 KiB at i=3
    }
  }(sched, *this));
  eng_.run();
  // 8 x 16 KiB = 128 KiB total: the threshold fires at 64 KiB and again
  // when the second 64 KiB accumulates -> exactly 2 fused kernels.
  EXPECT_EQ(sched.fusedKernelsLaunched(), 2u);
  EXPECT_EQ(sched.requestsFused(), 8u);
  EXPECT_DOUBLE_EQ(sched.meanBatchSize(), 4.0);
}

TEST_F(SchedulerTest, FlushLaunchesPendingImmediately) {
  FusionScheduler sched(eng_, cpu_, gpu_, FusionPolicy{});
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t) -> sim::Task<void> {
    co_await s.enqueue(t.packReq(1024));
    co_await s.enqueue(t.packReq(1024));
    EXPECT_EQ(s.fusedKernelsLaunched(), 0u);
    co_await s.flush();
    EXPECT_EQ(s.fusedKernelsLaunched(), 1u);
  }(sched, *this));
  eng_.run();
  EXPECT_EQ(sched.requestsFused(), 2u);
}

TEST_F(SchedulerTest, QueryRetiresCompletedRequests) {
  FusionScheduler sched(eng_, cpu_, gpu_, FusionPolicy{});
  std::int64_t uid = -1;
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t,
                std::int64_t& out) -> sim::Task<void> {
    out = co_await s.enqueue(t.packReq(2048));
    EXPECT_FALSE(s.query(out));  // not even launched
    co_await s.flush();
  }(sched, *this, uid));
  eng_.run();  // fused kernel completes in virtual time
  EXPECT_TRUE(sched.query(uid));
  EXPECT_TRUE(sched.requests().empty());
}

TEST_F(SchedulerTest, DataActuallyMovesThroughFusedKernel) {
  FusionScheduler sched(eng_, cpu_, gpu_, FusionPolicy{});
  auto layout = bytesLayout(4096);
  auto src = gpu_.memory().allocate(4096);
  auto dst = gpu_.memory().allocate(4096);
  for (std::size_t i = 0; i < 4096; ++i)
    src.bytes[i] = static_cast<std::byte>(i % 131);

  eng_.spawn([](FusionScheduler& s, ddt::LayoutPtr l, gpu::MemSpan a,
                gpu::MemSpan b) -> sim::Task<void> {
    co_await s.enqueue(makeReq(FusionOp::Packing, std::move(l), a, b));
    co_await s.flush();
  }(sched, layout, src, dst));
  eng_.run();
  for (std::size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(dst.bytes[i], src.bytes[i]);
  }
}

TEST_F(SchedulerTest, SchedulerOverheadWithinTwoMicrosecondsPerMessage) {
  // §V-B: "The scheduling overhead of the proposed scheduler ... as low as
  // 2 us per message." Our policy charges enqueue_cost + query_cost.
  FusionPolicy policy;
  FusionScheduler sched(eng_, cpu_, gpu_, policy);
  constexpr int kMessages = 64;
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t) -> sim::Task<void> {
    for (int i = 0; i < kMessages; ++i) {
      const auto uid = co_await s.enqueue(t.packReq(1024));
      (void)uid;
    }
    co_await s.flush();
  }(sched, *this));
  eng_.run();
  for (int uid = 0; uid < kMessages; ++uid) EXPECT_TRUE(sched.query(uid));
  const double per_message =
      static_cast<double>(sched.breakdown().scheduling +
                          sched.breakdown().synchronize) /
      kMessages;
  EXPECT_LE(per_message, 2000.0);  // <= 2 us
}

TEST_F(SchedulerTest, RejectedEnqueueChargedSeparatelyFromScheduling) {
  // Regression: the seed charged enqueue_cost to breakdown_.scheduling even
  // for rejected enqueues, so Fig. 11-style breakdowns double-counted the
  // message (the fallback path accounts for its own work).
  FusionPolicy policy;
  policy.list_capacity = 1;
  policy.threshold_bytes = 1u << 30;  // never launch -> list stays full
  FusionScheduler sched(eng_, cpu_, gpu_, policy);
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t) -> sim::Task<void> {
    EXPECT_GE(co_await s.enqueue(t.packReq(1024)), 0);
    EXPECT_LT(co_await s.enqueue(t.packReq(1024)), 0);  // full: rejected
  }(sched, *this));
  eng_.run();
  EXPECT_EQ(sched.breakdown().scheduling, sched.policy().enqueue_cost);
  EXPECT_EQ(sched.rejectedSchedulingCost(), sched.policy().enqueue_cost);
  EXPECT_EQ(sched.counters().enqueues, 1u);
  EXPECT_EQ(sched.counters().rejections, 1u);
  EXPECT_EQ(sched.requests().totalRejected(), 1u);
}

TEST_F(SchedulerTest, CountersTrackBatchesAndSizeHistogram) {
  FusionPolicy policy;
  policy.threshold_bytes = 1u << 30;  // batch by count / flush only
  policy.max_requests_per_kernel = 4;
  FusionScheduler sched(eng_, cpu_, gpu_, policy);
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t) -> sim::Task<void> {
    for (int i = 0; i < 6; ++i) co_await s.enqueue(t.packReq(512));
    co_await s.flush();  // 4 (count cap) + 2 (flush remainder)
  }(sched, *this));
  eng_.run();
  EXPECT_EQ(sched.counters().enqueues, 6u);
  EXPECT_EQ(sched.counters().rejections, 0u);
  EXPECT_EQ(sched.counters().batches, 2u);
  ASSERT_EQ(sched.counters().batch_size_hist.size(),
            sched.policy().max_requests_per_kernel + 1);
  EXPECT_EQ(sched.counters().batch_size_hist[4], 1u);
  EXPECT_EQ(sched.counters().batch_size_hist[2], 1u);
}

TEST_F(SchedulerTest, TracerRecordsEnqueuesBatchesAndBacklog) {
  auto tracer = sim::Tracer::enabled();
  FusionPolicy policy;
  policy.list_capacity = 1;
  policy.threshold_bytes = 1u << 30;
  FusionScheduler sched(eng_, cpu_, gpu_, policy);
  sched.setTracer(&tracer, "Proposed");
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t) -> sim::Task<void> {
    co_await s.enqueue(t.packReq(1024));
    co_await s.enqueue(t.packReq(1024));  // rejected -> "reject" instant
    co_await s.flush();                   // -> "fused[...]" span
  }(sched, *this));
  eng_.run();
  // 1 enqueue instant + 1 reject instant + 1 batch span + backlog counters.
  EXPECT_GE(tracer.eventCount(), 4u);
}

TEST_F(SchedulerTest, MaxRequestCapSplitsBatches) {
  FusionPolicy policy;
  policy.threshold_bytes = 1 << 30;  // never trigger by bytes
  policy.max_requests_per_kernel = 4;
  FusionScheduler sched(eng_, cpu_, gpu_, policy);
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t) -> sim::Task<void> {
    for (int i = 0; i < 9; ++i) co_await s.enqueue(t.packReq(512));
    co_await s.flush();
  }(sched, *this));
  eng_.run();
  // Cap fires at 4 pending (twice); flush picks up the 9th.
  EXPECT_EQ(sched.fusedKernelsLaunched(), 3u);
  EXPECT_EQ(sched.requestsFused(), 9u);
}

/// Total backoff the retry loop sleeps for `retries` failed attempts under
/// the clamped exponential policy: base << attempt, ceiling at `cap`.
DurationNs expectedBackoffSum(DurationNs base, DurationNs cap,
                              std::size_t retries) {
  DurationNs total = 0;
  DurationNs step = base;
  for (std::size_t a = 0; a < retries; ++a) {
    total += std::min(step, cap);
    if (step < cap) step *= 2;
  }
  return total;
}

TEST_F(SchedulerTest, RetryBackoffStaysClampedPastShiftWidth) {
  // Regression: the retry loop computed `launch_retry_backoff << attempt`
  // with no bound — undefined behaviour once `attempt` reaches the width
  // of DurationNs (max_launch_attempts is policy, not a constant), and
  // hours of virtual sleep well before that. Drive 69 consecutive injected
  // launch failures (attempts 0..68, past the 64-bit width) and pin total
  // virtual time to the clamped-backoff sum.
  FusionPolicy policy;
  policy.max_launch_attempts = 70;
  fault::FaultSpec fs;
  fs.launch_failure = 1.0;
  fs.max_launch_failures = 69;  // the 70th attempt succeeds
  fault::FaultPlan plan(eng_, fs);
  gpu_.setFaultPlan(&plan);

  FusionScheduler sched(eng_, cpu_, gpu_, policy);
  std::int64_t uid = -1;
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t,
                std::int64_t& out) -> sim::Task<void> {
    out = co_await s.enqueue(t.packReq(1024));
    co_await s.flush();
  }(sched, *this, uid));
  eng_.run();

  EXPECT_TRUE(sched.query(uid));
  EXPECT_EQ(sched.counters().launch_failures, 69u);
  EXPECT_EQ(sched.counters().cpu_fallback_batches, 0u);
  EXPECT_EQ(sched.fusedKernelsLaunched(), 1u);
  const DurationNs floor = expectedBackoffSum(
      policy.launch_retry_backoff, policy.max_launch_retry_backoff, 69);
  EXPECT_GE(eng_.now(), floor);
  // Unclamped, attempt 32 alone would sleep base << 32 ~ 2.4 hours of
  // virtual time; the clamped schedule finishes in ~120 ms plus work.
  EXPECT_LE(eng_.now(), floor + ms(5));
}

TEST_F(SchedulerTest, ExhaustedRetriesReachCpuFallbackInBoundedTime) {
  // Same clamp, failure never heals: after max_launch_attempts the batch
  // must land on the CPU fallback path, again in clamped-backoff time.
  FusionPolicy policy;
  policy.max_launch_attempts = 70;
  fault::FaultSpec fs;
  fs.launch_failure = 1.0;  // every attempt fails, forever
  fault::FaultPlan plan(eng_, fs);
  gpu_.setFaultPlan(&plan);

  FusionScheduler sched(eng_, cpu_, gpu_, policy);
  std::int64_t uid = -1;
  eng_.spawn([](FusionScheduler& s, SchedulerTest& t,
                std::int64_t& out) -> sim::Task<void> {
    out = co_await s.enqueue(t.packReq(1024));
    co_await s.flush();
  }(sched, *this, uid));
  eng_.run();

  EXPECT_TRUE(sched.query(uid));
  EXPECT_EQ(sched.counters().launch_failures, 70u);
  EXPECT_EQ(sched.counters().cpu_fallback_batches, 1u);
  EXPECT_EQ(sched.counters().cpu_fallback_requests, 1u);
  EXPECT_EQ(sched.fusedKernelsLaunched(), 0u);
  const DurationNs floor = expectedBackoffSum(
      policy.launch_retry_backoff, policy.max_launch_retry_backoff, 69);
  EXPECT_GE(eng_.now(), floor);
  EXPECT_LE(eng_.now(), floor + ms(5));
}

}  // namespace
}  // namespace dkf::core
