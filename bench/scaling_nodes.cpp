// Node-count scaling of the 3-D halo exchange — the paper's motivating
// "running at scale" scenario (§VII: bulk non-contiguous transfer
// "dominates the overall communication time" at scale). Sweeps the rank
// grid from 8 to 64 ranks (one GPU per node, periodic 3-D torus, one
// HaloExchanger per rank) and reports per-iteration halo latency for
// GPU-Sync vs the fusion engine. The fusion advantage must persist — the
// per-rank message count is constant (6 faces), so the win comes from
// batching each rank's 12 operations, independent of scale.
#include <iostream>
#include <memory>

#include "bench_util/table.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "workloads/halo_exchanger.hpp"

namespace {

using namespace dkf;

constexpr std::size_t kN = 16;
constexpr std::size_t kGhost = 1;
constexpr std::size_t kTotal = kN + 2 * kGhost;
constexpr int kIters = 8;

TimeNs runGrid(schemes::Scheme scheme, std::array<int, 3> grid) {
  const int ranks = grid[0] * grid[1] * grid[2];
  sim::Engine engine;
  auto machine = hw::lassen();
  machine.node.gpus_per_node = 1;  // one rank per node: all traffic inter-node
  machine.node.gpu.arena_bytes = kTotal * kTotal * kTotal * 8 + (8u << 20);
  hw::Cluster cluster(engine, machine, static_cast<std::size_t>(ranks));
  mpi::RuntimeConfig config;
  config.scheme = scheme;
  mpi::Runtime rt(cluster, config);

  std::vector<std::unique_ptr<workloads::HaloExchanger>> exchangers;
  TimeNs per_iter = 0;
  for (int r = 0; r < ranks; ++r) {
    auto block = rt.proc(r).allocDevice(kTotal * kTotal * kTotal * 8);
    exchangers.push_back(std::make_unique<workloads::HaloExchanger>(
        rt.proc(r), block, workloads::HaloExchanger::Config{kN, kGhost, grid}));
    engine.spawn([](mpi::Proc& p, workloads::HaloExchanger& ex,
                    TimeNs& out) -> sim::Task<void> {
      TimeNs total = 0;
      for (int i = 0; i < kIters; ++i) {
        co_await p.barrier();
        const TimeNs t0 = p.engine().now();
        co_await ex.exchange();
        total += p.engine().now() - t0;
      }
      if (p.rank() == 0) out = total / kIters;
    }(rt.proc(r), *exchangers.back(), per_iter));
  }
  engine.run();
  DKF_CHECK_MSG(engine.unfinishedTasks() == 0, "scaling run deadlocked");
  return per_iter;
}

}  // namespace

int main() {
  using namespace dkf;
  bench::banner(std::cout,
                "Scaling — 3-D halo exchange latency vs node count "
                "(16^3 doubles per rank, 1 GPU/node, Lassen fabric)",
                "per-iteration rank-0 latency; fusion advantage should be "
                "scale-independent");

  bench::Table table({"Grid", "Ranks", "GPU-Sync", "Proposed", "Speedup"});
  const std::array<std::array<int, 3>, 4> grids = {
      std::array<int, 3>{2, 2, 2}, {4, 2, 2}, {4, 4, 2}, {4, 4, 4}};
  for (const auto& grid : grids) {
    const TimeNs sync = runGrid(schemes::Scheme::GpuSync, grid);
    const TimeNs fused = runGrid(schemes::Scheme::Proposed, grid);
    table.addRow({std::to_string(grid[0]) + "x" + std::to_string(grid[1]) +
                      "x" + std::to_string(grid[2]),
                  std::to_string(grid[0] * grid[1] * grid[2]),
                  bench::cellUs(toUs(sync)), bench::cellUs(toUs(fused)),
                  bench::cell(static_cast<double>(sync) /
                                  static_cast<double>(fused),
                              2) +
                      "x"});
  }
  table.print(std::cout);
  std::cout << "\nShape: per-rank latency is scale-flat (each neighbor "
               "pair has a dedicated channel; no shared-switch contention "
               "is modeled) and the fusion speedup is constant across node "
               "counts — each rank amortizes its own 12 launches "
               "regardless of scale, which is why the paper's per-pair "
               "evaluation generalizes.\n";
  return 0;
}
