// Node-count scaling — the paper's motivating "running at scale" scenario
// (§VII: bulk non-contiguous transfer "dominates the overall communication
// time" at scale).
//
// Part 1 — the original 3-D halo sweep: rank grids from 8 to 64 ranks (one
// GPU per node, periodic torus), per-iteration halo latency for GPU-Sync
// vs the fusion engine. The fusion advantage must persist: the per-rank
// message count is constant (6 faces), so the win comes from batching each
// rank's 12 operations, independent of scale.
//
// Part 2 — collective scaling to hundreds/thousands of simulated ranks:
// alltoallv, allgatherv and derived-datatype allreduce over every
// algorithm (flat / ring / tree radix 2 / tree radix 8) at 64, 256 and
// 1024 ranks (4 GPUs per node). Every cell runs one warm-up invocation,
// resets the per-rank PlanCache counters, then measures one invocation:
// after warm-up every pack/unpack plan lookup must be a cache hit (the
// "compile once per hop" contract), so the summed post-warm-up hit rate
// is reported and expected to be ~1.
//
// Caps (logged, never silent): the flat algorithm posts n-1 concurrent
// requests per rank and the ring alltoallv moves O(n^2) messages, so both
// are swept only to 256 ranks; tree covers 1024.
//
// Emits BENCH_collectives.json (or argv[1]); `--smoke` restricts the
// collective sweep to {64, 256} ranks for CI.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/table.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/collectives.hpp"
#include "workloads/halo_exchanger.hpp"

namespace {

using namespace dkf;

constexpr std::size_t kN = 16;
constexpr std::size_t kGhost = 1;
constexpr std::size_t kTotal = kN + 2 * kGhost;
constexpr int kIters = 8;

TimeNs runGrid(schemes::Scheme scheme, std::array<int, 3> grid) {
  const int ranks = grid[0] * grid[1] * grid[2];
  sim::Engine engine;
  auto machine = hw::lassen();
  machine.node.gpus_per_node = 1;  // one rank per node: all traffic inter-node
  machine.node.gpu.arena_bytes = kTotal * kTotal * kTotal * 8 + (8u << 20);
  hw::Cluster cluster(engine, machine, static_cast<std::size_t>(ranks));
  mpi::RuntimeConfig config;
  config.scheme = scheme;
  mpi::Runtime rt(cluster, config);

  std::vector<std::unique_ptr<workloads::HaloExchanger>> exchangers;
  TimeNs per_iter = 0;
  for (int r = 0; r < ranks; ++r) {
    auto block = rt.proc(r).allocDevice(kTotal * kTotal * kTotal * 8);
    exchangers.push_back(std::make_unique<workloads::HaloExchanger>(
        rt.proc(r), block, workloads::HaloExchanger::Config{kN, kGhost, grid}));
    engine.spawn([](mpi::Proc& p, workloads::HaloExchanger& ex,
                    TimeNs& out) -> sim::Task<void> {
      TimeNs total = 0;
      for (int i = 0; i < kIters; ++i) {
        co_await p.barrier();
        const TimeNs t0 = p.engine().now();
        co_await ex.exchange();
        total += p.engine().now() - t0;
      }
      if (p.rank() == 0) out = total / kIters;
    }(rt.proc(r), *exchangers.back(), per_iter));
  }
  engine.run();
  DKF_CHECK_MSG(engine.unfinishedTasks() == 0, "scaling run deadlocked");
  return per_iter;
}

// ---- Collective scaling ---------------------------------------------------

enum class Coll { Alltoallv, Allgatherv, Allreduce };

const char* collName(Coll c) {
  switch (c) {
    case Coll::Alltoallv:
      return "alltoallv";
    case Coll::Allgatherv:
      return "allgatherv";
    default:
      return "allreduce";
  }
}

struct CollCell {
  Coll coll{Coll::Alltoallv};
  mpi::CollTuning tuning{};
  int ranks{0};
  // outputs
  TimeNs virtual_time{0};
  core::PlanCacheCounters counters;
  std::size_t fabric_bytes{0};
  std::size_t fabric_messages{0};
};

/// One warm-up invocation, counter reset, one measured invocation. The
/// payload is a small gappy float64 layout (the same signature for every
/// destination), so the measured pass must resolve every pack/unpack plan
/// from the cache.
void runCollCell(CollCell& cell) {
  const int n = cell.ranks;
  const auto type = ddt::Datatype::vector(2, 1, 2, ddt::Datatype::float64());
  const auto ext = static_cast<std::size_t>(ddt::flatten(type, 1).endOffset());

  sim::Engine eng;
  hw::MachineSpec machine = hw::lassen();
  machine.node.gpus_per_node = 4;
  machine.node.gpu.arena_bytes =
      2 * static_cast<std::size_t>(n) * ext * 4 + (128u << 10);
  hw::Cluster cluster(eng, machine, static_cast<std::size_t>(n) / 4);
  mpi::RuntimeConfig cfg;
  cfg.scheme = schemes::Scheme::Proposed;
  mpi::Runtime rt(cluster, cfg);
  DKF_CHECK(rt.worldSize() == n);

  std::vector<mpi::VBlock> blocks;
  for (int r = 0; r < n; ++r) {
    blocks.push_back({type, 1, static_cast<std::size_t>(r) * ext});
  }
  struct Bufs {
    gpu::MemSpan send, recv;
  };
  std::vector<Bufs> bufs(static_cast<std::size_t>(n));
  const std::size_t region = static_cast<std::size_t>(n) * ext;
  constexpr std::size_t kRedCount = 4;
  for (int r = 0; r < n; ++r) {
    auto& p = rt.proc(r);
    auto& b = bufs[static_cast<std::size_t>(r)];
    switch (cell.coll) {
      case Coll::Alltoallv:
      case Coll::Allgatherv:
        b.send = p.allocDevice(region);
        b.recv = p.allocDevice(region);
        std::memset(b.send.bytes.data(), 0x3C, region);
        break;
      case Coll::Allreduce: {
        b.send = p.allocDevice(
            static_cast<std::size_t>(ddt::flatten(type, kRedCount)
                                         .endOffset()));
        auto* vals = reinterpret_cast<double*>(b.send.bytes.data());
        for (std::size_t i = 0; i < b.send.size() / 8; ++i) {
          vals[i] = static_cast<double>(r % 17) + 0.5;
        }
        break;
      }
    }
  }

  auto pass = [&] {
    rt.runAll([&](mpi::Proc& p) -> sim::Task<void> {
      auto& b = bufs[static_cast<std::size_t>(p.rank())];
      switch (cell.coll) {
        case Coll::Alltoallv:
          co_await mpi::alltoallv(p, b.send, b.recv, blocks, blocks,
                                  cell.tuning);
          break;
        case Coll::Allgatherv:
          co_await mpi::allgatherv(p, b.send, b.recv, blocks, cell.tuning);
          break;
        case Coll::Allreduce:
          co_await mpi::allreduceDdt(p, b.send, type, kRedCount,
                                     mpi::ReduceType::Float64,
                                     mpi::ReduceOp::Sum, cell.tuning);
          break;
      }
    });
    DKF_CHECK_MSG(eng.unfinishedTasks() == 0, "collective cell deadlocked");
  };

  pass();  // warm-up: populates every PlanCache entry
  for (int r = 0; r < n; ++r) {
    rt.proc(r).planCache().resetCounters();
  }
  const std::size_t bytes0 = cluster.fabric().totalBytesCarried();
  const std::size_t msgs0 = cluster.fabric().totalMessages();
  const TimeNs t0 = eng.now();
  pass();  // measured
  cell.virtual_time = eng.now() - t0;
  for (int r = 0; r < n; ++r) {
    cell.counters += rt.proc(r).planCache().counters();
  }
  cell.fabric_bytes = cluster.fabric().totalBytesCarried() - bytes0;
  cell.fabric_messages = cluster.fabric().totalMessages() - msgs0;
}

struct AlgoSpec {
  mpi::CollTuning tuning;
  std::string label;
  int max_ranks;  ///< explicit cap; cells above it are logged as skipped
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dkf;
  std::string json_path = "BENCH_collectives.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  bench::banner(std::cout,
                "Scaling — 3-D halo exchange latency vs node count "
                "(16^3 doubles per rank, 1 GPU/node, Lassen fabric)",
                "per-iteration rank-0 latency; fusion advantage should be "
                "scale-independent");

  struct HaloRow {
    int ranks;
    TimeNs sync;
    TimeNs fused;
  };
  std::vector<HaloRow> halo_rows;
  bench::Table table({"Grid", "Ranks", "GPU-Sync", "Proposed", "Speedup"});
  const std::array<std::array<int, 3>, 4> grids = {
      std::array<int, 3>{2, 2, 2}, {4, 2, 2}, {4, 4, 2}, {4, 4, 4}};
  for (const auto& grid : grids) {
    const TimeNs sync = runGrid(schemes::Scheme::GpuSync, grid);
    const TimeNs fused = runGrid(schemes::Scheme::Proposed, grid);
    halo_rows.push_back({grid[0] * grid[1] * grid[2], sync, fused});
    table.addRow({std::to_string(grid[0]) + "x" + std::to_string(grid[1]) +
                      "x" + std::to_string(grid[2]),
                  std::to_string(grid[0] * grid[1] * grid[2]),
                  bench::cellUs(toUs(sync)), bench::cellUs(toUs(fused)),
                  bench::cell(static_cast<double>(sync) /
                                  static_cast<double>(fused),
                              2) +
                      "x"});
  }
  table.print(std::cout);
  std::cout << "\nShape: per-rank latency is scale-flat (each neighbor "
               "pair has a dedicated channel; no shared-switch contention "
               "is modeled) and the fusion speedup is constant across node "
               "counts — each rank amortizes its own 12 launches "
               "regardless of scale, which is why the paper's per-pair "
               "evaluation generalizes.\n";

  bench::banner(
      std::cout,
      smoke ? "Collective scaling — flat/ring/tree at 64 and 256 ranks "
              "(smoke)"
            : "Collective scaling — flat/ring/tree to 1024 ranks",
      "one warmed invocation per cell; post-warm-up plan-cache hit rate "
      "must be ~1 (compile once per hop)");

  const std::vector<int> rank_counts =
      smoke ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024};
  const std::vector<AlgoSpec> algos = {
      {{mpi::CollAlgo::Flat, 2}, "flat", 256},
      {{mpi::CollAlgo::Ring, 2}, "ring", 1024},
      {{mpi::CollAlgo::Tree, 2}, "tree2", 1024},
      {{mpi::CollAlgo::Tree, 8}, "tree8", 1024},
  };
  std::vector<CollCell> cells;
  for (const Coll coll : {Coll::Alltoallv, Coll::Allgatherv, Coll::Allreduce}) {
    bench::Table ct({"Algorithm", "Ranks", "Virtual time", "Fabric msgs",
                     "Plan hits", "Plan misses", "Hit rate"});
    for (const AlgoSpec& algo : algos) {
      for (const int ranks : rank_counts) {
        if (ranks > algo.max_ranks ||
            (coll == Coll::Alltoallv && algo.tuning.algo == mpi::CollAlgo::Ring &&
             ranks > 256)) {
          std::cout << "  capped: " << collName(coll) << "/" << algo.label
                    << " skipped at " << ranks << " ranks ("
                    << (algo.tuning.algo == mpi::CollAlgo::Flat
                            ? "n-1 concurrent requests per rank"
                            : "O(n^2) pairwise messages")
                    << ")\n";
          continue;
        }
        CollCell cell;
        cell.coll = coll;
        cell.tuning = algo.tuning;
        cell.ranks = ranks;
        runCollCell(cell);
        ct.addRow({algo.label, std::to_string(ranks),
                   bench::cellUs(toUs(cell.virtual_time)),
                   std::to_string(cell.fabric_messages),
                   std::to_string(cell.counters.hits),
                   std::to_string(cell.counters.misses),
                   bench::cell(cell.counters.hitRate(), 3)});
        cells.push_back(cell);
      }
    }
    std::cout << "\n" << collName(coll) << ":\n";
    ct.print(std::cout);
  }
  std::cout << "\nShape: tree virtual time grows ~log(n) per hop count "
               "while flat grows with the serialized request fan-out; the "
               "post-warm-up hit rate column must read 1.000 everywhere — "
               "every destination of a collective shares one layout "
               "signature, so the pack/unpack plan compiles once and every "
               "further hop is a cache hit.\n";

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot open " << json_path << " for writing\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"scaling_nodes\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"claim\": \"collectives scale to 1024 simulated ranks with a "
          "post-warm-up plan-cache hit rate of ~1 on every algorithm\",\n"
       << "  \"halo\": [\n";
  for (std::size_t i = 0; i < halo_rows.size(); ++i) {
    json << "    {\"ranks\": " << halo_rows[i].ranks
         << ", \"gpu_sync_ns\": " << halo_rows[i].sync
         << ", \"proposed_ns\": " << halo_rows[i].fused << "}"
         << (i + 1 < halo_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"collectives\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CollCell& c = cells[i];
    const char* algo = mpi::collAlgoName(c.tuning.algo);
    json << "    {\"coll\": \"" << collName(c.coll) << "\", \"algo\": \""
         << algo << "\", \"radix\": " << c.tuning.radix
         << ", \"ranks\": " << c.ranks << ", \"virtual_ns\": "
         << c.virtual_time << ", \"fabric_bytes\": " << c.fabric_bytes
         << ", \"fabric_messages\": " << c.fabric_messages
         << ", \"plan_hits\": " << c.counters.hits
         << ", \"plan_misses\": " << c.counters.misses
         << ", \"hit_rate\": " << c.counters.hitRate() << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\ncollective scaling record written to " << json_path << "\n";
  return 0;
}
