// Fig. 13(a-d) — the same four application kernels on ABCI (PCIe Gen3 host
// link, no GDRCopy). Paper shape: the proposed design reduces latency for
// ALL workloads (up to 19x sparse / 14.7x dense); GPU-Async can slightly
// beat GPU-Sync here because the slower PCIe interconnect leaves room for
// overlap; CPU-GPU-Hybrid degenerates to the GPU path without GDRCopy.
#include <iostream>

#include "bench_util/sweeps.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

int main() {
  using namespace dkf;
  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync, schemes::Scheme::GpuAsync,
      schemes::Scheme::CpuGpuHybrid, schemes::Scheme::Proposed,
      schemes::Scheme::ProposedTuned};

  struct Panel {
    const char* title;
    workloads::Workload (*make)(std::size_t);
    std::vector<std::size_t> dims;
  };
  const std::vector<Panel> panels = {
      {"Fig. 13(a) — specfem3D_oc (sparse, indexed)", workloads::specfem3dOc,
       {8, 16, 32, 64, 128}},
      {"Fig. 13(b) — specfem3D_cm (sparse, struct-on-indexed)",
       workloads::specfem3dCm, {8, 16, 32, 64, 128}},
      {"Fig. 13(c) — MILC (dense, nested vector)", workloads::milcZdown,
       {8, 16, 32, 64, 128}},
      {"Fig. 13(d) — NAS_MG (dense, vector)", workloads::nasMgFace,
       {16, 32, 64, 96, 128}},
  };

  for (const auto& panel : panels) {
    bench::banner(std::cout, panel.title,
                  "ABCI, 32 Isend/Irecv per iteration; latency, lower is "
                  "better");
    bench::schemeSweepTable(std::cout, hw::abci(), panel.make, panel.dims,
                            scheme_list, /*n_ops=*/32);
  }
  std::cout << "\nPaper shape: Proposed lowest for every workload on ABCI; "
               "no GDRCopy on ABCI, so CPU-GPU-Hybrid tracks GPU-Sync.\n";
  return 0;
}
