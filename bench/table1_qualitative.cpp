// Table I — the paper's qualitative comparison of approaches, regenerated
// from *measured* quantities on a common workload (specfem3D_cm, 16 bulk
// transfers, Lassen): layout-cache use, GPU driver overhead (launch +
// driver-call time per message), overall latency, throughput, and overlap
// (non-overlapped communication share).
#include <iostream>

#include "bench_util/experiment.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

namespace {

std::string grade(double value, double low, double high, bool invert = false) {
  // Map a measured value to the paper's Low/Medium/High scale.
  const char* labels[3] = {"Low", "Medium", "High"};
  int idx = value <= low ? 0 : value <= high ? 1 : 2;
  if (invert) idx = 2 - idx;
  return labels[idx];
}

}  // namespace

int main() {
  using namespace dkf;
  bench::banner(std::cout,
                "Table I — Qualitative comparison, regenerated from "
                "measured metrics (specfem3D_cm, 16 transfers, Lassen)");

  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync,      schemes::Scheme::GpuAsync,
      schemes::Scheme::CpuGpuHybrid, schemes::Scheme::NaiveCopy,
      schemes::Scheme::Proposed,
  };

  bench::Table table({"Scheme", "Layout cache", "Driver overhead/msg",
                      "Overall latency", "Throughput", "Non-overlapped comm",
                      "Async submit (overlap)"});
  for (const auto scheme : scheme_list) {
    bench::ExchangeConfig cfg;
    cfg.machine = hw::lassen();
    cfg.scheme = scheme;
    cfg.workload = workloads::specfem3dCm(32);
    cfg.n_ops = 16;
    cfg.iterations = 30;
    cfg.warmup = 5;
    const auto r = bench::runBulkExchange(cfg);

    // 16 sends + 16 recvs processed by rank 0 per iteration.
    const double msgs = 32.0;
    const double driver_us =
        toUs(r.breakdown.launching + r.breakdown.scheduling +
             r.breakdown.synchronize) /
        msgs;
    const double latency_us = r.meanLatencyUs();
    const double throughput_gbps =
        static_cast<double>(cfg.workload.packedBytes()) * msgs /
        (latency_us * 1e-6) / 1e9;

    // Overlap capability is a design property: can the engine return a
    // ticket before the operation completes on the GPU? (Table I's
    // "Overlap with Communication".)
    const bool async_submit = scheme == schemes::Scheme::GpuAsync ||
                              scheme == schemes::Scheme::Proposed;

    // All runtime schemes flatten through the runtime's layout cache; the
    // paper's "N" rows are the application-level kernels of [14], [16],
    // [17], which this runtime replaces.
    table.addRow({std::string(schemes::schemeName(scheme)), "Y",
                  bench::cellUs(driver_us) + " (" +
                      grade(driver_us, 5.0, 15.0) + ")",
                  bench::cellUs(latency_us) + " (" +
                      grade(latency_us, 150.0, 600.0) + ")",
                  bench::cell(throughput_gbps, 3) + " GB/s",
                  bench::cellUs(toUs(r.breakdown.communication)),
                  async_submit ? "Y (High)" : "N (Low)"});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape (Table I): Proposed = low driver overhead, "
               "low latency, high throughput, high overlap; GPU-Sync/Async "
               "= high driver overhead; Hybrid = medium overhead, high "
               "overlap.\n";
  return 0;
}
