// Ablation benches for the design choices DESIGN.md calls out:
//   A. Request-list capacity — how often the fallback path fires and what
//      it costs (the paper's negative-UID fallback, §IV-A2 ①).
//   B. Rendezvous sub-protocol — RGET vs RPUT with fusion (§IV-B1).
//   C. DirectIPC on/off for intra-node sparse exchanges ([24] integration).
//   D. Max-requests-per-kernel cap — batch granularity vs completion lag.
#include <iostream>

#include "bench_util/experiment.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"
#include "core/threshold_model.hpp"
#include "mpi/runtime.hpp"

namespace {

using namespace dkf;

bench::ExchangeConfig baseCfg() {
  bench::ExchangeConfig cfg;
  cfg.machine = hw::lassen();
  cfg.scheme = schemes::Scheme::Proposed;
  cfg.workload = workloads::specfem3dCm(64);
  cfg.n_ops = 32;
  cfg.iterations = 20;
  cfg.warmup = 3;
  return cfg;
}

}  // namespace

int main() {
  using namespace dkf;

  // ---- A: request-list capacity ----
  bench::banner(std::cout,
                "Ablation A — Request-list capacity vs fallback rate "
                "(specfem3D_cm, 32 ops, Lassen)");
  {
    bench::Table table({"Capacity", "Latency", "Fallbacks", "Fused kernels"});
    for (const std::size_t cap : {2u, 4u, 8u, 32u, 256u}) {
      // ProposedTuned path lets us inject a custom policy via threshold;
      // capacity needs a dedicated runtime config, so run the raw harness
      // with a tuned engine: reuse tuned_threshold for the default 512 KB
      // and vary capacity through a local machine tweak is not possible —
      // instead construct the config with the scheme's policy override.
      auto cfg = baseCfg();
      cfg.scheme = schemes::Scheme::ProposedTuned;
      cfg.tuned_threshold = 512 * 1024;
      cfg.list_capacity = cap;
      const auto r = bench::runBulkExchange(cfg);
      table.addRow({std::to_string(cap), bench::cellUs(r.meanLatencyUs()),
                    std::to_string(r.fallbacks),
                    std::to_string(r.fused_kernels)});
    }
    table.print(std::cout);
    std::cout << "Shape: tiny lists overflow into the synchronous fallback "
                 "and lose the fusion benefit; modest capacity suffices.\n";
  }

  // ---- B: rendezvous sub-protocol ----
  bench::banner(std::cout, "Ablation B — RGET vs RPUT rendezvous with fusion");
  {
    bench::Table table({"Workload", "RGET", "RPUT"});
    for (auto make : {workloads::specfem3dCm, workloads::nasMgFace}) {
      const auto wl = make(96);
      auto cfg = baseCfg();
      cfg.workload = wl;
      cfg.rendezvous = mpi::Protocol::RGet;
      const double rget = bench::runBulkExchange(cfg).meanLatencyUs();
      cfg.rendezvous = mpi::Protocol::RPut;
      const double rput = bench::runBulkExchange(cfg).meanLatencyUs();
      table.addRow({wl.name, bench::cellUs(rget), bench::cellUs(rput)});
    }
    table.print(std::cout);
    std::cout << "Shape: RPUT overlaps the handshake with packing (§IV-B1) "
                 "and edges out RGET for rendezvous-sized messages.\n";
  }

  // ---- C: DirectIPC on/off, intra-node ----
  bench::banner(std::cout,
                "Ablation C — Intra-node DirectIPC zero-copy vs pack+copy+"
                "unpack");
  {
    bench::Table table({"Workload", "DirectIPC on", "DirectIPC off"});
    for (auto make : {workloads::specfem3dCm, workloads::milcZdown}) {
      const auto wl = make(64);
      auto cfg = baseCfg();
      cfg.workload = wl;
      cfg.intra_node = true;
      cfg.enable_direct_ipc = true;
      const double on = bench::runBulkExchange(cfg).meanLatencyUs();
      cfg.enable_direct_ipc = false;
      const double off = bench::runBulkExchange(cfg).meanLatencyUs();
      table.addRow({wl.name, bench::cellUs(on), bench::cellUs(off)});
    }
    table.print(std::cout);
    std::cout << "Shape: skipping pack+unpack via fused strided NVLink "
                 "copies wins intra-node.\n";
  }

  // ---- D: batch cap ----
  bench::banner(std::cout,
                "Ablation D — max requests per fused kernel (batch "
                "granularity)");
  {
    bench::Table table({"Cap", "Latency", "Fused kernels"});
    for (const std::size_t cap : {1u, 2u, 8u, 32u, 128u}) {
      auto cfg = baseCfg();
      cfg.scheme = schemes::Scheme::ProposedTuned;
      cfg.tuned_threshold = 512 * 1024;
      cfg.max_requests_per_kernel = cap;
      const auto r = bench::runBulkExchange(cfg);
      table.addRow({std::to_string(cap), bench::cellUs(r.meanLatencyUs()),
                    std::to_string(r.fused_kernels)});
    }
    table.print(std::cout);
    std::cout << "Shape: cap=1 degenerates to GPU-Async-like one-kernel-"
                 "per-op; wide caps recover the fused behaviour.\n";
  }

  // ---- E: heuristic 512 KB vs model-based threshold prediction ----
  bench::banner(std::cout,
                "Ablation E — heuristic 512 KB threshold vs model-based "
                "prediction (paper future work, core/threshold_model)");
  {
    bench::Table table({"Workload", "dim", "Model threshold",
                        "Heuristic 512 KB", "Model-predicted"});
    const auto machine = hw::lassen();
    const core::ThresholdModel model(machine.node.gpu,
                                     machine.internode.bandwidth);
    struct Case {
      workloads::Workload (*make)(std::size_t);
      std::size_t dim;
    };
    const Case cases[] = {
        {workloads::specfem3dCm, 64},  {workloads::specfem3dCm, 512},
        {workloads::milcZdown, 32},    {workloads::milcZdown, 128},
        {workloads::nasMgFace, 64},
    };
    for (const auto& c : cases) {
      const auto wl = c.make(c.dim);
      const auto predicted = model.predict(ddt::flatten(wl.type, wl.count));
      auto cfg = baseCfg();
      cfg.workload = wl;
      cfg.scheme = schemes::Scheme::Proposed;  // heuristic default
      const double heuristic = bench::runBulkExchange(cfg).meanLatencyUs();
      cfg.scheme = schemes::Scheme::ProposedTuned;
      cfg.tuned_threshold = predicted;
      const double tuned = bench::runBulkExchange(cfg).meanLatencyUs();
      table.addRow({wl.name, std::to_string(c.dim), formatBytes(predicted),
                    bench::cellUs(heuristic), bench::cellUs(tuned)});
    }
    table.print(std::cout);
    std::cout << "Shape: the model matches or beats the one-size heuristic, "
                 "especially off the 512 KB sweet spot (very sparse or very "
                 "large workloads).\n";
  }
  return 0;
}
