// Million-message end-to-end throughput bench for the batched message
// plane (MODEL.md §13) and the zero-copy payload plane (MODEL.md §15).
//
// Windowed eager ring traffic over a multi-node lassen cluster: every rank
// streams small contiguous messages to its right neighbour while sinking
// the same stream from its left. Posting goes through the bulk front door
// (irecvBatch/isendBatch, one MPI call overhead per window), so each
// window's activations run back to back and the whole window is in flight
// at once — thousands of pending requests per rank, the regime the batched
// plane exists for. Tags are window-slot indices (legitimate MPI tag
// reuse: windows are serialized by waitall), so the runtime's matching
// structures reach a steady state instead of growing one key per message.
//
// Five configurations run the same traffic shape:
//
//   batched        table-driven MsgPlane + LinkBatcher, window 0 (exact)
//   batched_w64    same, with a 64 ns coalescing window (approximation)
//   shadow         the seed path: per-request progress coroutines and
//                  eagerly scheduled per-delivery events
//                  (batched_message_plane = delivery_batching = false)
//   batched_loss12 batched plane, reliable transport, 12% data+control loss
//   shadow_loss12  seed path under the identical fault plan
//
// Allocation accounting: when the build replaces operator new
// (-DDKF_COUNT_ALLOCS=ON, common/alloc_count.hpp), each mode arms a probe
// once every rank has finished its first window — the payload pool,
// request arena, coroutine frame pool and matching tables are warm by then
// — and reports steady-state allocations per message over the rest of the
// run. The fault-free batched mode is gated against
// kMaxSteadyAllocsPerMsg: the zero-copy payload plane's contract is that
// the hot path stops touching the allocator once pools are warm.
//
// Checks: received bytes hash-identical across the fault-free modes and
// across the loss modes; virtual end time byte-identical batched vs shadow
// both fault-free and at 12% loss (the window-0 plane and the pooled
// payload path are exact reimplementations, not approximations); host-side
// messages/s speedup of the batched plane over the shadow. Emits
// BENCH_msgplane.json (or argv[1]); `--smoke` shrinks the workload for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util/table.hpp"
#include "common/alloc_count.hpp"
#include "core/fusion_plan.hpp"
#include "ddt/datatype.hpp"
#include "fault/fault_plan.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "net/payload.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dkf;

constexpr std::size_t kMsgBytes = 1024;  // well under lassen's 8 KiB eager cut
constexpr std::size_t kChunk = 4096;     // in-flight window per rank
constexpr std::size_t kNodes = 4;
constexpr double kLossRate = 0.12;
/// Steady-state allocation budget for the fault-free batched mode. The
/// payload pool, request arena and frame pool take the per-message
/// allocations themselves to zero; what remains is sub-linear churn in the
/// matching structures (deque block turnover ~1/32 per message).
constexpr double kMaxSteadyAllocsPerMsg = 0.25;

static_assert(kMsgBytes % sizeof(std::uint64_t) == 0);

/// Word-wise FNV-1a over the payload. Word granularity keeps the bench's
/// own hashing cost small relative to the runtime paths under test while
/// still flipping on any corrupted or mis-matched delivery.
std::uint64_t fnv1a(std::uint64_t h, std::span<const std::byte> bytes) {
  for (std::size_t i = 0; i < bytes.size(); i += sizeof(std::uint64_t)) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, sizeof w);
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic payload for message `idx` from rank `me` — cheap to
/// generate (one xorshift step per 8 bytes) and distinct enough that a
/// mis-matched or corrupted delivery flips the stream hash.
void fillPayload(gpu::MemSpan span, int me, std::size_t idx) {
  std::uint64_t x = (static_cast<std::uint64_t>(me) << 40) ^ idx ^
                    0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < span.bytes.size(); i += sizeof x) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::memcpy(span.bytes.data() + i, &x, sizeof x);
  }
}

/// Steady-state allocation probe: arms once every rank has completed its
/// first window (all pools warm), then the mode's tail is measured against
/// the global allocation counter. Single-threaded engine — plain fields.
struct AllocProbe {
  int pending_ranks{0};
  bool armed{false};
  std::uint64_t allocs_at_arm{0};
  std::size_t msgs_at_arm{0};  ///< messages already delivered when armed
};

/// One rank of the ring: stream `per_rank` messages to the right neighbour
/// in bulk-posted windows of `kChunk`, sink the mirror stream from the
/// left, folding every received byte into `hash` in posting order.
sim::Task<void> rankBody(mpi::Proc& p, int ranks, std::size_t per_rank,
                         std::uint64_t& hash, AllocProbe& probe) {
  const int me = p.rank();
  const int to = (me + 1) % ranks;
  const int from = (me + ranks - 1) % ranks;
  auto type = ddt::Datatype::byte();
  auto sbuf = p.allocDevice(kChunk * kMsgBytes);
  auto rbuf = p.allocDevice(kChunk * kMsgBytes);
  bool warmed = false;

  for (std::size_t done = 0; done < per_rank;) {
    const std::size_t n = std::min(kChunk, per_rank - done);
    for (std::size_t i = 0; i < n; ++i) {
      fillPayload(sbuf.subspan(i * kMsgBytes, kMsgBytes), me, done + i);
    }
    std::vector<mpi::Proc::RecvSpec> recvs;
    std::vector<mpi::Proc::SendSpec> sends;
    recvs.reserve(n);
    sends.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Window-slot tag: windows are serialized by waitall, so slot i of
      // window w can only match slot i of window w on the peer.
      const int tag = static_cast<int>(i);
      recvs.push_back({rbuf.subspan(i * kMsgBytes, kMsgBytes), type,
                       kMsgBytes, from, tag});
      sends.push_back({sbuf.subspan(i * kMsgBytes, kMsgBytes), type,
                       kMsgBytes, to, tag});
    }
    std::vector<mpi::RequestPtr> reqs = co_await p.irecvBatch(std::move(recvs));
    auto sr = co_await p.isendBatch(std::move(sends));
    reqs.insert(reqs.end(), sr.begin(), sr.end());
    co_await p.waitall(std::move(reqs));
    for (std::size_t i = 0; i < n; ++i) {
      hash = fnv1a(hash, rbuf.subspan(i * kMsgBytes, kMsgBytes).bytes);
    }
    done += n;
    if (!warmed) {
      warmed = true;
      probe.msgs_at_arm += n;
      if (--probe.pending_ranks == 0) {
        probe.armed = true;
        probe.allocs_at_arm = allocCount();
      }
    }
  }
  p.freeDevice(sbuf);
  p.freeDevice(rbuf);
}

struct ModeResult {
  std::string name;
  double loss{0.0};
  double wall_s{};
  TimeNs vtime{};
  std::uint64_t hash{};
  std::size_t messages{};
  std::size_t events{};
  std::size_t peak_pending{};
  std::size_t calendar_engagements{};
  std::size_t batched_deliveries{};
  std::size_t armed_events{};
  std::size_t coalesced_deliveries{};
  std::size_t retransmissions{};
  // Steady-state allocation accounting (zeros unless DKF_COUNT_ALLOCS).
  bool steady_window{false};  ///< the probe armed (>= 2 windows ran)
  std::size_t steady_allocs{};
  std::size_t steady_msgs{};
  std::size_t total_allocs{};
  // Payload-pool telemetry (net/payload.hpp).
  net::PayloadPoolCounters pool{};
  double pool_hit_rate{1.0};
  std::size_t pool_peak_live_buffers{};
  std::size_t pool_peak_live_bytes{};
  std::size_t pool_live_end{};
  /// Compiled-plan cache traffic summed over all ranks, with the
  /// per-tenant attribution (this bench is single-tenant: index 0 only).
  core::PlanCacheCounters plan_cache{};
  std::vector<core::PlanCacheCounters> tenant_plan_cache{};
  double msgs_per_sec() const { return static_cast<double>(messages) / wall_s; }
  double allocsPerMsg() const {
    // Fall back to whole-run accounting when the probe never armed or
    // armed with nothing left to measure (single-window runs have no
    // steady-state tail).
    const bool tail = steady_window && steady_msgs > 0;
    const std::size_t a = tail ? steady_allocs : total_allocs;
    const std::size_t m = tail ? steady_msgs : messages;
    return m > 0 ? static_cast<double>(a) / static_cast<double>(m) : 0.0;
  }
};

ModeResult runMode(const std::string& name, std::size_t total_msgs,
                   bool batched_plane, DurationNs window, double loss) {
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), kNodes);
  std::optional<fault::FaultPlan> plan;
  mpi::RuntimeConfig cfg;
  cfg.batched_message_plane = batched_plane;
  cfg.delivery_batching = batched_plane;
  cfg.msg_batch_window = window;
  if (loss > 0.0) {
    fault::FaultSpec fs;
    fs.seed = 0xd1ce;
    fs.data_loss = loss;
    fs.control_loss = loss;
    plan.emplace(eng, fs);
    cluster.setFaultPlan(&*plan);
    cfg.reliability.enabled = true;
    cfg.reliability.base_timeout = us(40);
    cfg.reliability.max_timeout = us(2000);
    cfg.reliability.max_retries = 60;
    eng.setWatchdog(sec(120));
  }
  mpi::Runtime rt(cluster, cfg);

  const int ranks = rt.worldSize();
  const std::size_t per_rank = total_msgs / static_cast<std::size_t>(ranks);
  std::vector<std::uint64_t> hashes(static_cast<std::size_t>(ranks),
                                    1469598103934665603ull);
  AllocProbe probe;
  probe.pending_ranks = ranks;
  const std::uint64_t allocs0 = allocCount();

  const auto t0 = std::chrono::steady_clock::now();
  rt.runAll([&](mpi::Proc& p) -> sim::Task<void> {
    return rankBody(p, ranks, per_rank,
                    hashes[static_cast<std::size_t>(p.rank())], probe);
  });
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs1 = allocCount();

  ModeResult r;
  r.name = name;
  r.loss = loss;
  r.wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  r.vtime = eng.now();
  r.hash = 0;
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    // Order-independent across ranks, position-sensitive within a rank.
    r.hash ^= hashes[i] * (2 * i + 1);
  }
  r.messages = per_rank * static_cast<std::size_t>(ranks);
  r.events = eng.processedEvents();
  r.peak_pending = eng.peakPending();
  r.calendar_engagements = eng.calendarEngagements();
  r.batched_deliveries = cluster.fabric().batchedDeliveries();
  r.armed_events = cluster.fabric().batchedArmedEvents();
  r.coalesced_deliveries = cluster.fabric().coalescedDeliveries();
  r.total_allocs = static_cast<std::size_t>(allocs1 - allocs0);
  r.steady_window = probe.armed;
  if (probe.armed) {
    r.steady_allocs = static_cast<std::size_t>(allocs1 - probe.allocs_at_arm);
    r.steady_msgs = r.messages - probe.msgs_at_arm;
  }
  const net::PayloadPool& pool = cluster.fabric().payloadPool();
  r.pool = pool.counters();
  r.pool_hit_rate = pool.hitRate();
  r.pool_peak_live_buffers = pool.peakLiveBuffers();
  r.pool_peak_live_bytes = pool.peakLiveBytes();
  r.pool_live_end = pool.liveBuffers();
  for (int rank = 0; rank < ranks; ++rank) {
    r.retransmissions += rt.proc(rank).transport().retransmissions;
    const core::PlanCache& pc = rt.proc(rank).planCache();
    r.plan_cache += pc.counters();
    const auto& per_tenant = pc.tenantCounters();
    if (per_tenant.size() > r.tenant_plan_cache.size()) {
      r.tenant_plan_cache.resize(per_tenant.size());
    }
    for (std::size_t t = 0; t < per_tenant.size(); ++t) {
      r.tenant_plan_cache[t] += per_tenant[t];
    }
  }
  return r;
}

std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string fmt4(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_msgplane.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  // Smoke still needs >= 2 windows per rank so the steady-state allocation
  // probe has a tail to measure (16 ranks x 4096-message windows).
  const std::size_t total_msgs = smoke ? 200'000 : 1'000'000;
  const std::size_t loss_msgs = total_msgs / 20;

  bench::banner(std::cout,
                "Throughput — batched message plane vs seed shadow, " +
                    std::to_string(total_msgs) + " eager messages (" +
                    std::to_string(kMsgBytes) + " B, ring, " +
                    std::to_string(kNodes) + " lassen nodes)");

  std::vector<ModeResult> modes;
  modes.push_back(runMode("batched", total_msgs, true, ns(0), 0.0));
  modes.push_back(runMode("batched_w64", total_msgs, true, ns(64), 0.0));
  modes.push_back(runMode("shadow", total_msgs, false, ns(0), 0.0));
  modes.push_back(
      runMode("batched_loss12", loss_msgs, true, ns(0), kLossRate));
  modes.push_back(
      runMode("shadow_loss12", loss_msgs, false, ns(0), kLossRate));

  const ModeResult& batched = modes[0];
  const ModeResult& shadow = modes[2];
  const ModeResult& batched_loss = modes[3];
  const ModeResult& shadow_loss = modes[4];

  bench::Table table({"Mode", "Wall s", "Msgs/s", "Events", "PeakPend",
                      "Retrans", "Allocs/msg", "PoolHit", "VTime ms"});
  for (const ModeResult& m : modes) {
    table.addRow({m.name, fmt2(m.wall_s), fmt1(m.msgs_per_sec()),
                  std::to_string(m.events), std::to_string(m.peak_pending),
                  std::to_string(m.retransmissions), fmt4(m.allocsPerMsg()),
                  fmt2(m.pool_hit_rate), fmt2(toMs(m.vtime))});
  }
  table.print(std::cout);

  bool hashes_ok = true;
  for (std::size_t i = 0; i < 3; ++i) {
    hashes_ok &= modes[i].hash == batched.hash;
  }
  const bool loss_hash_ok = batched_loss.hash == shadow_loss.hash;
  const bool vtime_ok = batched.vtime == shadow.vtime;
  const bool loss_vtime_ok = batched_loss.vtime == shadow_loss.vtime;
  const double speedup = batched.msgs_per_sec() / shadow.msgs_per_sec();
  const bool counting = allocCountingEnabled();
  const bool allocs_ok =
      !counting || batched.allocsPerMsg() <= kMaxSteadyAllocsPerMsg;

  std::cout << "\nReceived-bytes hash: "
            << (hashes_ok ? "identical across fault-free modes" : "MISMATCH")
            << "\nReceived-bytes hash at " << fmt2(kLossRate * 100)
            << "% loss: " << (loss_hash_ok ? "identical" : "MISMATCH")
            << "\nVirtual end time batched vs shadow: "
            << (vtime_ok ? "byte-identical" : "MISMATCH") << " ("
            << batched.vtime << " ns vs " << shadow.vtime << " ns)"
            << "\nVirtual end time at loss: "
            << (loss_vtime_ok ? "byte-identical" : "MISMATCH") << " ("
            << batched_loss.vtime << " ns vs " << shadow_loss.vtime << " ns)"
            << "\nSteady-state allocations/message (batched): "
            << (counting ? fmt4(batched.allocsPerMsg()) +
                               " (budget " + fmt2(kMaxSteadyAllocsPerMsg) + ")"
                         : std::string("not measured (DKF_COUNT_ALLOCS off)"))
            << "\nHeadline: " << fmt2(speedup)
            << "x messages/s over the unbatched shadow (window 0, exact "
               "event order).\n";

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot open " << json_path << " for writing\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"throughput_msgplane\",\n"
       << "  \"claim\": \"the table-driven message plane with coalesced "
          "same-link delivery and pool-backed zero-copy payloads reproduces "
          "the seed's event stream exactly at window 0 — fault-free and "
          "under 12% loss — while multiplying end-to-end messages/s and "
          "driving steady-state allocations per message to ~0; the seed "
          "path is kept as the shadow baseline\",\n"
       << "  \"total_messages\": " << total_msgs << ",\n"
       << "  \"loss_mode_messages\": " << loss_msgs << ",\n"
       << "  \"message_bytes\": " << kMsgBytes << ",\n"
       << "  \"window_per_rank\": " << kChunk << ",\n"
       << "  \"nodes\": " << kNodes << ",\n"
       << "  \"loss_rate\": " << kLossRate << ",\n"
       << "  \"alloc_counting\": " << (counting ? "true" : "false") << ",\n"
       << "  \"max_steady_allocs_per_msg\": " << kMaxSteadyAllocsPerMsg
       << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    json << "    {\"mode\": \"" << m.name << "\", \"loss\": " << m.loss
         << ", \"wall_s\": " << m.wall_s
         << ", \"msgs_per_sec\": " << m.msgs_per_sec()
         << ", \"messages\": " << m.messages
         << ", \"events\": " << m.events
         << ", \"peak_pending\": " << m.peak_pending
         << ", \"calendar_engagements\": " << m.calendar_engagements
         << ", \"batched_deliveries\": " << m.batched_deliveries
         << ", \"armed_events\": " << m.armed_events
         << ", \"coalesced_deliveries\": " << m.coalesced_deliveries
         << ", \"retransmissions\": " << m.retransmissions
         << ", \"allocs_per_msg\": " << m.allocsPerMsg()
         << ", \"steady_window\": " << (m.steady_window ? "true" : "false")
         << ", \"steady_allocs\": " << m.steady_allocs
         << ", \"steady_msgs\": " << m.steady_msgs
         << ", \"total_allocs\": " << m.total_allocs
         << ", \"payload_pool\": {\"captures\": " << m.pool.captures
         << ", \"inline_captures\": " << m.pool.inline_captures
         << ", \"slab_allocs\": " << m.pool.slab_allocs
         << ", \"slab_reuses\": " << m.pool.slab_reuses
         << ", \"oversize_allocs\": " << m.pool.oversize_allocs
         << ", \"trims\": " << m.pool.trims
         << ", \"hit_rate\": " << m.pool_hit_rate
         << ", \"peak_live_buffers\": " << m.pool_peak_live_buffers
         << ", \"peak_live_bytes\": " << m.pool_peak_live_bytes
         << ", \"live_at_end\": " << m.pool_live_end << "}"
         << ", \"plan_cache\": {\"hits\": " << m.plan_cache.hits
         << ", \"misses\": " << m.plan_cache.misses
         << ", \"fallbacks\": " << m.plan_cache.fallbacks
         << ", \"tenant_hits\": [";
    for (std::size_t t = 0; t < m.tenant_plan_cache.size(); ++t) {
      json << (t ? ", " : "") << m.tenant_plan_cache[t].hits;
    }
    json << "], \"tenant_misses\": [";
    for (std::size_t t = 0; t < m.tenant_plan_cache.size(); ++t) {
      json << (t ? ", " : "") << m.tenant_plan_cache[t].misses;
    }
    json << "]}"
         << ", \"virtual_end_ns\": " << m.vtime << "}"
         << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"hash_identical\": " << (hashes_ok ? "true" : "false") << ",\n"
       << "  \"hash_identical_at_loss\": "
       << (loss_hash_ok ? "true" : "false") << ",\n"
       << "  \"vtime_identical_batched_vs_shadow\": "
       << (vtime_ok ? "true" : "false") << ",\n"
       << "  \"vtime_identical_at_loss\": "
       << (loss_vtime_ok ? "true" : "false") << ",\n"
       << "  \"steady_allocs_per_msg_batched\": " << batched.allocsPerMsg()
       << ",\n"
       << "  \"speedup_batched_vs_shadow\": " << speedup << "\n}\n";
  std::cout << "record written to " << json_path << "\n";

  if (!hashes_ok || !vtime_ok || !loss_hash_ok || !loss_vtime_ok) {
    std::cerr << "error: batched message plane diverged from the shadow\n";
    return 1;
  }
  if (!allocs_ok) {
    std::cerr << "error: steady-state allocations/message "
              << batched.allocsPerMsg() << " exceeds the committed budget "
              << kMaxSteadyAllocsPerMsg << "\n";
    return 1;
  }
  return 0;
}
