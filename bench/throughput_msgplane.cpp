// Million-message end-to-end throughput bench for the batched message
// plane (MODEL.md §13).
//
// Windowed eager ring traffic over a multi-node lassen cluster: every rank
// streams small contiguous messages to its right neighbour while sinking
// the same stream from its left. Posting goes through the bulk front door
// (irecvBatch/isendBatch, one MPI call overhead per window), so each
// window's activations run back to back and the whole window is in flight
// at once — thousands of pending requests per rank, the regime the batched
// plane exists for. Three configurations run the *same* traffic:
//
//   batched       table-driven MsgPlane + LinkBatcher, window 0 (exact)
//   batched_w64   same, with a 64 ns coalescing window (approximation)
//   shadow        the seed path: per-request progress coroutines and
//                 eagerly scheduled per-delivery events
//                 (batched_message_plane = delivery_batching = false)
//
// The shadow's eager delivery scheduling floods the engine queue (peak
// pending ~= the in-flight window, engaging the calendar tier); the
// batched plane keeps only link heads queued and advances requests
// through the phase tables without coroutine frames.
//
// Checks: received bytes hash-identical across all three; virtual end time
// byte-identical batched vs shadow (the window-0 plane is an exact
// reimplementation, not an approximation); host-side messages/s speedup of
// the batched plane over the shadow. Emits BENCH_msgplane.json (or
// argv[1]); `--smoke` shrinks the workload for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/table.hpp"
#include "core/fusion_plan.hpp"
#include "ddt/datatype.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dkf;

constexpr std::size_t kMsgBytes = 1024;  // well under lassen's 8 KiB eager cut
constexpr std::size_t kChunk = 4096;     // in-flight window per rank
constexpr std::size_t kNodes = 4;

static_assert(kMsgBytes % sizeof(std::uint64_t) == 0);

/// Word-wise FNV-1a over the payload. Word granularity keeps the bench's
/// own hashing cost small relative to the runtime paths under test while
/// still flipping on any corrupted or mis-matched delivery.
std::uint64_t fnv1a(std::uint64_t h, std::span<const std::byte> bytes) {
  for (std::size_t i = 0; i < bytes.size(); i += sizeof(std::uint64_t)) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, sizeof w);
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic payload for message `idx` from rank `me` — cheap to
/// generate (one xorshift step per 8 bytes) and distinct enough that a
/// mis-matched or corrupted delivery flips the stream hash.
void fillPayload(gpu::MemSpan span, int me, std::size_t idx) {
  std::uint64_t x = (static_cast<std::uint64_t>(me) << 40) ^ idx ^
                    0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < span.bytes.size(); i += sizeof x) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::memcpy(span.bytes.data() + i, &x, sizeof x);
  }
}

/// One rank of the ring: stream `per_rank` messages to the right neighbour
/// in bulk-posted windows of `kChunk`, sink the mirror stream from the
/// left, folding every received byte into `hash` in posting order.
sim::Task<void> rankBody(mpi::Proc& p, int ranks, std::size_t per_rank,
                         std::uint64_t& hash) {
  const int me = p.rank();
  const int to = (me + 1) % ranks;
  const int from = (me + ranks - 1) % ranks;
  auto type = ddt::Datatype::byte();
  auto sbuf = p.allocDevice(kChunk * kMsgBytes);
  auto rbuf = p.allocDevice(kChunk * kMsgBytes);

  for (std::size_t done = 0; done < per_rank;) {
    const std::size_t n = std::min(kChunk, per_rank - done);
    for (std::size_t i = 0; i < n; ++i) {
      fillPayload(sbuf.subspan(i * kMsgBytes, kMsgBytes), me, done + i);
    }
    std::vector<mpi::Proc::RecvSpec> recvs;
    std::vector<mpi::Proc::SendSpec> sends;
    recvs.reserve(n);
    sends.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const int tag = static_cast<int>(done + i);
      recvs.push_back({rbuf.subspan(i * kMsgBytes, kMsgBytes), type,
                       kMsgBytes, from, tag});
      sends.push_back({sbuf.subspan(i * kMsgBytes, kMsgBytes), type,
                       kMsgBytes, to, tag});
    }
    std::vector<mpi::RequestPtr> reqs = co_await p.irecvBatch(std::move(recvs));
    auto sr = co_await p.isendBatch(std::move(sends));
    reqs.insert(reqs.end(), sr.begin(), sr.end());
    co_await p.waitall(std::move(reqs));
    for (std::size_t i = 0; i < n; ++i) {
      hash = fnv1a(hash, rbuf.subspan(i * kMsgBytes, kMsgBytes).bytes);
    }
    done += n;
  }
  p.freeDevice(sbuf);
  p.freeDevice(rbuf);
}

struct ModeResult {
  std::string name;
  double wall_s{};
  TimeNs vtime{};
  std::uint64_t hash{};
  std::size_t messages{};
  std::size_t events{};
  std::size_t peak_pending{};
  std::size_t calendar_engagements{};
  std::size_t batched_deliveries{};
  std::size_t armed_events{};
  std::size_t coalesced_deliveries{};
  /// Compiled-plan cache traffic summed over all ranks, with the
  /// per-tenant attribution (this bench is single-tenant: index 0 only).
  core::PlanCacheCounters plan_cache{};
  std::vector<core::PlanCacheCounters> tenant_plan_cache{};
  double msgs_per_sec() const { return static_cast<double>(messages) / wall_s; }
};

ModeResult runMode(const std::string& name, std::size_t total_msgs,
                   bool batched_plane, DurationNs window) {
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), kNodes);
  mpi::RuntimeConfig cfg;
  cfg.batched_message_plane = batched_plane;
  cfg.delivery_batching = batched_plane;
  cfg.msg_batch_window = window;
  mpi::Runtime rt(cluster, cfg);

  const int ranks = rt.worldSize();
  const std::size_t per_rank = total_msgs / static_cast<std::size_t>(ranks);
  std::vector<std::uint64_t> hashes(static_cast<std::size_t>(ranks),
                                    1469598103934665603ull);

  const auto t0 = std::chrono::steady_clock::now();
  rt.runAll([&](mpi::Proc& p) -> sim::Task<void> {
    return rankBody(p, ranks, per_rank,
                    hashes[static_cast<std::size_t>(p.rank())]);
  });
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult r;
  r.name = name;
  r.wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  r.vtime = eng.now();
  r.hash = 0;
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    // Order-independent across ranks, position-sensitive within a rank.
    r.hash ^= hashes[i] * (2 * i + 1);
  }
  r.messages = per_rank * static_cast<std::size_t>(ranks);
  r.events = eng.processedEvents();
  r.peak_pending = eng.peakPending();
  r.calendar_engagements = eng.calendarEngagements();
  r.batched_deliveries = cluster.fabric().batchedDeliveries();
  r.armed_events = cluster.fabric().batchedArmedEvents();
  r.coalesced_deliveries = cluster.fabric().coalescedDeliveries();
  for (int rank = 0; rank < ranks; ++rank) {
    const core::PlanCache& pc = rt.proc(rank).planCache();
    r.plan_cache += pc.counters();
    const auto& per_tenant = pc.tenantCounters();
    if (per_tenant.size() > r.tenant_plan_cache.size()) {
      r.tenant_plan_cache.resize(per_tenant.size());
    }
    for (std::size_t t = 0; t < per_tenant.size(); ++t) {
      r.tenant_plan_cache[t] += per_tenant[t];
    }
  }
  return r;
}

std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_msgplane.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const std::size_t total_msgs = smoke ? 50'000 : 1'000'000;

  bench::banner(std::cout,
                "Throughput — batched message plane vs seed shadow, " +
                    std::to_string(total_msgs) + " eager messages (" +
                    std::to_string(kMsgBytes) + " B, ring, " +
                    std::to_string(kNodes) + " lassen nodes)");

  std::vector<ModeResult> modes;
  modes.push_back(runMode("batched", total_msgs, true, ns(0)));
  modes.push_back(runMode("batched_w64", total_msgs, true, ns(64)));
  modes.push_back(runMode("shadow", total_msgs, false, ns(0)));

  const ModeResult& batched = modes[0];
  const ModeResult& shadow = modes.back();

  bench::Table table({"Mode", "Wall s", "Msgs/s", "Events", "PeakPend",
                      "CalEng", "Armed", "Coalesced", "VTime ms"});
  for (const ModeResult& m : modes) {
    table.addRow({m.name, fmt2(m.wall_s), fmt1(m.msgs_per_sec()),
                  std::to_string(m.events), std::to_string(m.peak_pending),
                  std::to_string(m.calendar_engagements),
                  std::to_string(m.armed_events),
                  std::to_string(m.coalesced_deliveries),
                  fmt2(toMs(m.vtime))});
  }
  table.print(std::cout);

  bool hashes_ok = true;
  for (const ModeResult& m : modes) hashes_ok &= m.hash == batched.hash;
  const bool vtime_ok = batched.vtime == shadow.vtime;
  const double speedup = batched.msgs_per_sec() / shadow.msgs_per_sec();

  std::cout << "\nReceived-bytes hash: "
            << (hashes_ok ? "identical across all modes" : "MISMATCH")
            << "\nVirtual end time batched vs shadow: "
            << (vtime_ok ? "byte-identical" : "MISMATCH") << " ("
            << batched.vtime << " ns vs " << shadow.vtime << " ns)"
            << "\nHeadline: " << fmt2(speedup)
            << "x messages/s over the unbatched shadow (window 0, exact "
               "event order).\n";

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot open " << json_path << " for writing\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"throughput_msgplane\",\n"
       << "  \"claim\": \"the table-driven message plane with coalesced "
          "same-link delivery reproduces the seed's event stream exactly "
          "at window 0 while multiplying end-to-end messages/s; the seed "
          "path is kept as the shadow baseline\",\n"
       << "  \"total_messages\": " << total_msgs << ",\n"
       << "  \"message_bytes\": " << kMsgBytes << ",\n"
       << "  \"window_per_rank\": " << kChunk << ",\n"
       << "  \"nodes\": " << kNodes << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    json << "    {\"mode\": \"" << m.name << "\", \"wall_s\": " << m.wall_s
         << ", \"msgs_per_sec\": " << m.msgs_per_sec()
         << ", \"events\": " << m.events
         << ", \"peak_pending\": " << m.peak_pending
         << ", \"calendar_engagements\": " << m.calendar_engagements
         << ", \"batched_deliveries\": " << m.batched_deliveries
         << ", \"armed_events\": " << m.armed_events
         << ", \"coalesced_deliveries\": " << m.coalesced_deliveries
         << ", \"plan_cache\": {\"hits\": " << m.plan_cache.hits
         << ", \"misses\": " << m.plan_cache.misses
         << ", \"fallbacks\": " << m.plan_cache.fallbacks
         << ", \"tenant_hits\": [";
    for (std::size_t t = 0; t < m.tenant_plan_cache.size(); ++t) {
      json << (t ? ", " : "") << m.tenant_plan_cache[t].hits;
    }
    json << "], \"tenant_misses\": [";
    for (std::size_t t = 0; t < m.tenant_plan_cache.size(); ++t) {
      json << (t ? ", " : "") << m.tenant_plan_cache[t].misses;
    }
    json << "]}"
         << ", \"virtual_end_ns\": " << m.vtime << "}"
         << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"hash_identical\": " << (hashes_ok ? "true" : "false") << ",\n"
       << "  \"vtime_identical_batched_vs_shadow\": "
       << (vtime_ok ? "true" : "false") << ",\n"
       << "  \"speedup_batched_vs_shadow\": " << speedup << "\n}\n";
  std::cout << "record written to " << json_path << "\n";

  if (!hashes_ok || !vtime_ok) {
    std::cerr << "error: batched message plane diverged from the shadow\n";
    return 1;
  }
  return 0;
}
