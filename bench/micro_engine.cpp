// Host-performance micro-benchmark for the discrete-event engine — the
// throughput ceiling of every figure, sweep and conformance run.
//
// The zero-allocation event core claims: (a) scheduling and dispatching an
// event performs no heap allocation for captures within the inline budget
// (the seed's `std::function` heap-allocated at schedule time and *again*
// on every pop, which copied the queue top); (b) pops move 24-byte heap
// keys, not full events; (c) detached-coroutine reaping is completion-
// driven (the seed scanned every spawned task after every event). Each
// claim is measured against a *naive shadow* — the seed engine
// reimplemented locally (std::priority_queue over (time, seq,
// std::function) events, copy-the-top pop, O(spawned) post-event reap
// scan) — on the same workloads: empty callbacks, capture-heavy callbacks,
// and coroutine resume storms. A final section times a real scheme-sweep
// table serially vs over the parallel sweep pool and checks the outputs
// are byte-identical. Emits BENCH_engine.json (or argv[1]).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <cmath>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/parallel.hpp"
#include "bench_util/sweeps.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "hw/machines.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dkf;

volatile std::uint64_t g_sink = 0;

/// The seed engine, reimplemented as the shadow: priority_queue of events
/// holding type-erased std::function callbacks, `top()` copy on every pop
/// (priority_queue::top is const, so the seed copied the handle), and an
/// O(spawned) find_if scan after every event (reapSpawned).
class ShadowEngine {
 public:
  using Callback = std::function<void()>;

  explicit ShadowEngine(std::size_t parked_tasks) {
    parked_.reserve(parked_tasks);
    for (std::size_t i = 0; i < parked_tasks; ++i) {
      parked_.push_back(std::make_unique<bool>(false));
    }
  }

  void schedule(TimeNs t, Callback cb) {
    queue_.push(Event{t, seq_++, std::move(cb)});
  }

  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();  // the seed's copy-the-top pop
    queue_.pop();
    now_ = ev.time;
    ev.cb();
    reapScan();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  TimeNs now() const { return now_; }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void reapScan() {
    // The seed's reapSpawned: after every event, call handle.done() on each
    // spawned task — one heap-allocated coroutine-frame dereference per
    // task, modeled here by a pointer chase per entry.
    auto it = std::find_if(
        parked_.begin(), parked_.end(),
        [](const std::unique_ptr<bool>& done) { return *done; });
    if (it != parked_.end()) g_sink += 1;
  }

  TimeNs now_{0};
  std::uint64_t seq_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::unique_ptr<bool>> parked_;
};

/// Min-of-reps wall time of `fn` in nanoseconds. The minimum approximates
/// the uncontended cost and is far less sensitive to scheduler noise on a
/// shared machine than the median.
template <class F>
double timeNs(F&& fn, int reps = 7) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    static_cast<double>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            t1 - t0)
                            .count()));
  }
  return best;
}

std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

struct Row {
  std::string workload;
  std::size_t events;
  double engine_ns_per_event;
  double shadow_ns_per_event;
  double speedup() const { return shadow_ns_per_event / engine_ns_per_event; }
};

/// Steady-state shape: real simulations keep a bounded queue (hundreds to a
/// few thousand pending events — in-flight messages, copy engines, timers),
/// scheduling new events as old ones fire. The benches therefore run
/// kBatches batches of kQueueDepth events each rather than pre-loading one
/// enormous queue, which would measure DRAM misses instead of engine work.
constexpr std::size_t kQueueDepth = 2048;
constexpr std::size_t kBatches = 100;
constexpr std::size_t kEvents = kQueueDepth * kBatches;
/// Suspended coroutines resident during a typical experiment (rank bodies,
/// transport retransmission timers, progress pollers) — the population the
/// seed's reapSpawned scanned after every event.
constexpr std::size_t kParkedTasks = 64;

/// A capture the size of a fabric delivery closure's payload state.
struct HeavyCapture {
  std::array<std::uint64_t, 12> words{};  // 96 B: inline for the engine,
                                          // a heap allocation per
                                          // schedule + per pop for the seed
};

/// Run kEvents events through `eng` in steady-state batches, scheduling
/// with `sched(rng)` each time.
template <class Eng, class Sched>
void drive(Eng& eng, std::uint64_t seed, const Sched& sched) {
  Rng rng(seed);
  for (std::size_t b = 0; b < kBatches; ++b) {
    for (std::size_t i = 0; i < kQueueDepth; ++i) sched(eng, rng);
    eng.run();
  }
}

Row benchEmpty() {
  const double engine_ns = timeNs([&] {
    sim::Engine eng;
    drive(eng, 42, [](sim::Engine& e, Rng& rng) {
      e.schedule(rng.below(1 << 16), [] { ++g_sink; });
    });
  });
  const double shadow_ns = timeNs([&] {
    ShadowEngine eng(kParkedTasks);
    drive(eng, 42, [](ShadowEngine& e, Rng& rng) {
      e.schedule(e.now() + rng.below(1 << 16), [] { ++g_sink; });
    });
  });
  return Row{"empty_callback", kEvents, engine_ns / kEvents,
             shadow_ns / kEvents};
}

Row benchCaptureHeavy() {
  const double engine_ns = timeNs([&] {
    sim::Engine eng;
    HeavyCapture payload;
    drive(eng, 43, [&payload](sim::Engine& e, Rng& rng) {
      payload.words[0] = rng.next();
      e.schedule(rng.below(1 << 16),
                 [payload] { g_sink += payload.words[0]; });
    });
  });
  const double shadow_ns = timeNs([&] {
    ShadowEngine eng(kParkedTasks);
    HeavyCapture payload;
    drive(eng, 43, [&payload](ShadowEngine& e, Rng& rng) {
      payload.words[0] = rng.next();
      e.schedule(e.now() + rng.below(1 << 16),
                 [payload] { g_sink += payload.words[0]; });
    });
  });
  return Row{"capture_heavy_96B", kEvents, engine_ns / kEvents,
             shadow_ns / kEvents};
}

sim::Task<void> resumeLoop(sim::Engine& eng, std::size_t resumes) {
  for (std::size_t i = 0; i < resumes; ++i) {
    co_await eng.delay(100);
  }
  ++g_sink;
}

sim::Task<void> parkedTask(sim::Engine& eng) {
  co_await eng.delay(sec(3600));
  ++g_sink;
}

Row benchCoroutineResume() {
  constexpr std::size_t kTasks = 1000;
  constexpr std::size_t kResumes = 100;
  constexpr std::size_t total = kTasks * kResumes;
  // Engine side: real coroutines, completion-driven retirement; parked
  // long-delay tasks must cost nothing per event.
  const double engine_ns = timeNs([&] {
    sim::Engine eng;
    for (std::size_t p = 0; p < kParkedTasks; ++p) {
      eng.spawn(parkedTask(eng));
    }
    for (std::size_t t = 0; t < kTasks; ++t) {
      eng.spawn(resumeLoop(eng, kResumes));
    }
    eng.run();
  });
  // Shadow side: the same event pattern (each "resume" reschedules itself,
  // capturing a counter) plus the seed's per-event scan over the parked
  // population. Coroutine frames are identical in both engines; what
  // differs is queue handling and reaping, which is what this measures.
  const double shadow_ns = timeNs([&] {
    ShadowEngine eng(kParkedTasks + kTasks);
    struct Chain {
      ShadowEngine* eng;
      std::size_t left;
      TimeNs at{0};
      void fire() {
        if (left == 0) {
          ++g_sink;
          return;
        }
        --left;
        at += 100;
        eng->schedule(at, [this] { fire(); });
      }
    };
    std::vector<Chain> chains(kTasks);
    for (std::size_t t = 0; t < kTasks; ++t) {
      chains[t] = Chain{&eng, kResumes};
      eng.schedule(0, [&chains, t] { chains[t].fire(); });
    }
    eng.run();
  });
  return Row{"coroutine_resume", total, engine_ns / total,
             shadow_ns / total};
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(std::cout,
                "Micro — zero-allocation event core vs seed shadow "
                "(priority_queue + std::function copy + O(spawned) reap)");

  std::vector<Row> rows{benchEmpty(), benchCaptureHeavy(),
                        benchCoroutineResume()};

  bench::Table table({"Workload", "Events", "Engine ns/ev", "Shadow ns/ev",
                      "Engine ev/s", "Speedup"});
  for (const Row& r : rows) {
    table.addRow({r.workload, std::to_string(r.events),
                  fmt1(r.engine_ns_per_event), fmt1(r.shadow_ns_per_event),
                  fmt1(1e9 / r.engine_ns_per_event),
                  fmt1(r.speedup()) + "x"});
  }
  table.print(std::cout);
  double geomean = 1.0;
  for (const Row& r : rows) geomean *= r.speedup();
  geomean = std::pow(geomean, 1.0 / static_cast<double>(rows.size()));
  std::cout << "\nHeadline: " << fmt1(geomean)
            << "x events/sec over the seed engine (geometric mean across "
               "workloads).\nShape: capture-heavy and coroutine workloads "
               "gain the most — the seed paid two heap allocations per "
               "event (schedule + copy-the-top pop) and a handle.done() "
               "scan over every suspended task after every event; real "
               "simulations are coroutine-resume dominated.\n";

  // ---- Serial vs parallel sweep: wall clock and byte-identity ----------
  bench::banner(std::cout,
                "Micro — parallel sweep runner (Fig. 12-style grid), "
                "serial vs pool");
  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync, schemes::Scheme::GpuAsync,
      schemes::Scheme::Proposed};
  const std::vector<std::size_t> dims = {8, 16, 32};
  auto run_sweep = [&](std::ostream& os) {
    bench::schemeSweepTable(os, hw::lassen(), workloads::milcZdown, dims,
                            scheme_list, /*n_ops=*/8, /*iterations=*/5,
                            /*warmup=*/1);
  };
  std::ostringstream serial_out, parallel_out;
  const unsigned prev = bench::setSweepThreads(1);
  const double serial_ns = timeNs([&] {
    serial_out.str("");
    run_sweep(serial_out);
  }, 3);
  bench::setSweepThreads(0);
  const double parallel_ns = timeNs([&] {
    parallel_out.str("");
    run_sweep(parallel_out);
  }, 3);
  bench::setSweepThreads(prev);
  const bool identical = serial_out.str() == parallel_out.str();
  const double sweep_speedup = serial_ns / parallel_ns;
  std::cout << "cells " << dims.size() * scheme_list.size() << ", serial "
            << fmt1(serial_ns / 1e6) << " ms, parallel ("
            << bench::sweepThreadCount() << " threads) "
            << fmt1(parallel_ns / 1e6) << " ms, speedup "
            << fmt1(sweep_speedup) << "x, output "
            << (identical ? "byte-identical" : "MISMATCH") << "\n";
  if (!identical) {
    std::cerr << "error: parallel sweep output differs from serial\n";
    return 1;
  }

  // ---- JSON record ----
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot open " << json_path << " for writing\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"micro_engine\",\n"
       << "  \"claim\": \"event scheduling and dispatch allocate nothing "
          "for captures within the inline budget, pops move 24-byte heap "
          "keys, and coroutine reaping is completion-driven; the seed "
          "shadow pays two heap allocations per event and an O(spawned) "
          "scan after each\",\n"
       << "  \"event_callback_bytes\": " << sizeof(sim::Engine::Callback)
       << ",\n  \"inline_capacity\": "
       << sim::Engine::Callback::inline_capacity
       << ",\n  \"parked_tasks\": " << kParkedTasks << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"workload\": \"" << r.workload << "\", \"events\": "
         << r.events << ", \"engine_ns_per_event\": " << r.engine_ns_per_event
         << ", \"shadow_ns_per_event\": " << r.shadow_ns_per_event
         << ", \"engine_events_per_sec\": " << 1e9 / r.engine_ns_per_event
         << ", \"speedup\": " << r.speedup() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"headline_speedup_geomean\": " << geomean
       << ",\n  \"sweep\": {\"cells\": "
       << dims.size() * scheme_list.size()
       << ", \"serial_ms\": " << serial_ns / 1e6
       << ", \"parallel_ms\": " << parallel_ns / 1e6
       << ", \"threads\": " << bench::sweepThreadCount()
       << ", \"speedup\": " << sweep_speedup
       << ", \"byte_identical\": " << (identical ? "true" : "false")
       << "}\n}\n";
  std::cout << "\nrecord written to " << json_path << "\n";
  return 0;
}
